#!/usr/bin/env bash
# bench.sh — run the benchmark suite and archive the series as JSON.
#
# Usage:
#   scripts/bench.sh                 # full suite, 1 iteration each
#   scripts/bench.sh Figure3         # only benchmarks matching the regex
#   scripts/bench.sh sharded         # the sharded-campaign throughput family
#                                    # (BenchmarkShardedCampaign: K-shard
#                                    # fan-out + JSONL artefacts + merge)
#   scripts/bench.sh fanout          # supervised + sharded throughput side
#                                    # by side (BenchmarkFanoutCampaign's
#                                    # runs_per_sec next to the hand-sharded
#                                    # BenchmarkShardedCampaign baseline)
#   scripts/bench.sh warm            # machine-reuse ladder: cold rebuild vs
#                                    # per-worker warm scratch vs shared pool
#                                    # (BenchmarkWarmMachineCampaign) next to
#                                    # the BenchmarkCampaignThroughput anchor
#   scripts/bench.sh snapshot        # machine recycling: post-boot image
#                                    # restore vs deep reset per warm run
#                                    # (BenchmarkSnapshotRestore) next to the
#                                    # warm ladder and throughput anchors
#   scripts/bench.sh inspect         # indexed dossier random access vs full
#                                    # sequential scan on a 10k-run artefact,
#                                    # plain and gzip
#                                    # (BenchmarkDossierRandomAccess)
#   scripts/bench.sh serve           # campaign-server result cache: HTTP
#                                    # submit answered from the verified
#                                    # artefact store vs fresh execution
#                                    # (BenchmarkServerCachedRequest,
#                                    # speedup_x is the ≥100x bar)
#   scripts/bench.sh obs             # flight-recorder overhead: identical
#                                    # campaign with metric recording on vs
#                                    # off (BenchmarkObsOverhead) next to the
#                                    # BenchmarkCampaignThroughput anchor —
#                                    # the two rows must stay within 3%
#   scripts/bench.sh adaptive        # CI-driven early stop: the Figure-3
#                                    # campaign under a 5pp Clopper-Pearson
#                                    # width target vs its 4000-run max-N
#                                    # guard (BenchmarkAdaptiveCampaign,
#                                    # runs_saved_pct is the ≥30% bar)
#   scripts/bench.sh soak            # not a benchmark: a quick soak gate —
#                                    # short FuzzFaultInjection sweep plus a
#                                    # -race -short pass over the fault-model
#                                    # and graceful-degradation tests. Use
#                                    # scripts/soak.sh for the 10k-run soak.
#   BENCHTIME=5x scripts/bench.sh    # more iterations per benchmark
#   OUT=mybench.json scripts/bench.sh
#
# Emits BENCH_<YYYYMMDD>.json: one object per benchmark with ns/op,
# allocs/op, B/op and every ReportMetric series (correct_pct,
# runs_per_sec, ...). The static checks (go vet, gofmt) run first so a
# dirty tree never produces an archived measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${1:-.}"
# "soak" is a gate, not a benchmark family: short randomized fuzz over
# the fault-model x seed x experiment space, then the model and
# degradation tests under the race detector. Exits before any
# measurement is archived.
if [ "$PATTERN" = "soak" ]; then
    echo "== soak gate: short fuzz sweep =="
    go test ./internal/core -run '^$' -fuzz 'FuzzFaultInjection' -fuzztime "${FUZZTIME:-5s}"
    echo "== soak gate: -race -short over fault-model tests =="
    go test -race -short ./internal/core \
        -run 'TestSoakFaultModels|TestClassifyGracefulDegradation|TestGracefulRunsAreDeterministic|TestFaultModelRegistryContents|TestFaultNamePlanFileRoundTrip|TestRegisterFactoryMatchesIntensityModel'
    go test -race -short ./internal/dist -run 'TestShardedCampaignMatchesSerialPerModel|TestMergeRejectsCrossModelShardSets'
    echo "soak gate clean"
    exit 0
fi
# Convenience aliases: "sharded" selects the distributed-campaign
# family; "fanout" puts the supervised path next to it.
if [ "$PATTERN" = "sharded" ]; then
    PATTERN='ShardedCampaign'
elif [ "$PATTERN" = "fanout" ]; then
    PATTERN='FanoutCampaign|ShardedCampaign'
elif [ "$PATTERN" = "warm" ]; then
    PATTERN='WarmMachineCampaign|CampaignThroughput'
elif [ "$PATTERN" = "snapshot" ]; then
    PATTERN='SnapshotRestore|WarmMachineCampaign|CampaignThroughput'
elif [ "$PATTERN" = "inspect" ]; then
    PATTERN='DossierRandomAccess'
elif [ "$PATTERN" = "serve" ]; then
    PATTERN='ServerCachedRequest'
elif [ "$PATTERN" = "obs" ]; then
    PATTERN='ObsOverhead|CampaignThroughput'
elif [ "$PATTERN" = "adaptive" ]; then
    PATTERN='AdaptiveCampaign'
fi
BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_$(date +%Y%m%d).json}"

echo "== static checks =="
go vet ./...
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi
# The supervisor, the artefact layer and the warm machine pool are the
# concurrency-heavy packages (worker goroutines, tail polling, shared
# JSONL writers with index bookkeeping, concurrent pool Get/Put and the
# batched-flush timer): run them under the race detector before
# archiving any measurement. internal/dist now includes the index
# footer / dossier code (writer offset metering, footer parse, random
# access + fallback) plus the JSONL close-vs-timed-flush and live-tail
# rescan regressions; internal/core's -short pass keeps the full
# differential-determinism plan × mode matrix — including the
# snapshot-restore fault-model sweep and leak fuzz — while trimming the
# full-duration golden campaigns. internal/serve adds the campaign
# server (fair queue, job lifecycle, cache lookups racing executors,
# event-stream tailers). internal/obs is the flight recorder: sharded
# counters, CAS-folded histogram sums and vec child creation are all
# written to be invoked from every worker goroutine at once.
# internal/analytics holds the adaptive stop policy (Clopper-Pearson
# intervals, sequential estimator) whose decisions shard workers replay.
go test -race -short ./internal/fanout ./internal/dist ./internal/core ./internal/serve ./internal/obs ./internal/analytics

echo "== benchmarks (pattern: $PATTERN, benchtime: $BENCHTIME) =="
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
# The campaign-server benchmark lives in internal/serve (linking
# net/http into the root test binary would disturb its allocation
# goldens); both packages stream into the same archive.
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . ./internal/serve | tee "$RAW"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
    printf "%s%s", (count++ ? ",\n" : ""), "  {\"name\": \"" name "\""
    printf ", \"iterations\": %s", $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)   # ns/op -> ns_per_op
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { if (count) print "" }
' "$RAW" | { echo "["; cat; echo "]"; } >"$OUT"

echo "wrote $OUT"
