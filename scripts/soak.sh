#!/usr/bin/env bash
# soak.sh — the panic-free soak campaign over the full-machine fault
# space: every pluggable fault model x every experiment base x a wide
# randomized seed sweep, asserting that not a single run anywhere ends
# in a sim-fault verdict (i.e. zero recovered Go panics inside the
# machine) and that every model's campaigns replay deterministically.
#
# Usage:
#   scripts/soak.sh                   # ~10k randomized runs + short fuzz
#   SOAK_RUNS=2000 scripts/soak.sh    # runs per model x experiment combo
#   SOAK_SEED=7 scripts/soak.sh       # different seed base, same contract
#   FUZZTIME=30s scripts/soak.sh      # longer randomized fuzz sweep
#
# Stages:
#   1. race-detector pass over the fault-model and degradation tests,
#      so the soak never archives a "clean" verdict off a racy binary;
#   2. TestSoakFaultModels scaled by CERTIFY_SOAK_RUNS — with the
#      default 850 per combo that is 850 x 4 models x 3 experiments =
#      10200 runs, all distribution-mode parallel campaigns;
#   3. per-model sharded-vs-serial equivalence (K in {1,3}), proving
#      the sweep's artefacts are byte-identical however they were cut;
#   4. a bounded `go test -fuzz` sweep of FuzzFaultInjection exploring
#      model x seed x experiment triples beyond the checked-in corpus.
set -euo pipefail
cd "$(dirname "$0")/.."

SOAK_RUNS="${SOAK_RUNS:-850}"
SOAK_SEED="${SOAK_SEED:-1}"
FUZZTIME="${FUZZTIME:-10s}"

echo "== race pass: fault models + graceful degradation =="
go test -race -short ./internal/core \
    -run 'TestSoakFaultModels|TestClassifyGracefulDegradation|TestGracefulRunsAreDeterministic|TestFaultModelRegistryContents|TestFaultNamePlanFileRoundTrip|TestRegisterFactoryMatchesIntensityModel'

echo "== race pass: adaptive stop statistics =="
go test -race -short ./internal/analytics

echo "== soak: ${SOAK_RUNS} runs x 4 models x 3 experiments =="
CERTIFY_SOAK_RUNS="$SOAK_RUNS" CERTIFY_SOAK_SEED="$SOAK_SEED" \
    go test ./internal/core -run 'TestSoakFaultModels' -v 2>&1 | grep -E 'soak:|ok|FAIL|---'

echo "== per-model sharded-vs-serial equivalence =="
go test ./internal/dist -run 'TestShardedCampaignMatchesSerialPerModel'

echo "== randomized fuzz sweep (${FUZZTIME}) =="
go test ./internal/core -run '^$' -fuzz 'FuzzFaultInjection' -fuzztime "$FUZZTIME"

echo "soak clean: zero sim-faults, deterministic replay under every model"
