package analytics

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/dessertlab/certify/internal/core"
)

func TestWilsonKnownValues(t *testing.T) {
	// 30/100 at 95%: interval ≈ [21.9%, 39.6%].
	lo, hi := Wilson(30, 100, Z95)
	if lo < 0.20 || lo > 0.23 || hi < 0.38 || hi > 0.41 {
		t.Fatalf("Wilson(30,100) = [%f, %f]", lo, hi)
	}
	// Extremes stay in [0,1] and don't collapse.
	lo, hi = Wilson(0, 50, Z95)
	if lo != 0 || hi <= 0 {
		t.Fatalf("Wilson(0,50) = [%f, %f]", lo, hi)
	}
	lo, hi = Wilson(50, 50, Z95)
	if hi != 1 || lo >= 1 {
		t.Fatalf("Wilson(50,50) = [%f, %f]", lo, hi)
	}
	if lo, hi = Wilson(1, 0, Z95); lo != 0 || hi != 0 {
		t.Fatal("n=0 must be inert")
	}
}

func TestWilsonProperty(t *testing.T) {
	prop := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := Wilson(k, n, Z95)
		p := float64(k) / float64(n)
		// The interval contains the point estimate and is ordered.
		return lo <= p && p <= hi && lo >= 0 && hi <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTableWithCIAndBand(t *testing.T) {
	d := &Distribution{
		Label: "fig3",
		Counts: map[core.Outcome]int{
			core.OutcomeCorrect:   66,
			core.OutcomePanicPark: 29,
			core.OutcomeCPUPark:   5,
		},
		Order: core.AllOutcomes(),
	}
	out := d.TableWithCI()
	if !strings.Contains(out, "Wilson CI") || !strings.Contains(out, "[") {
		t.Fatalf("TableWithCI = %q", out)
	}
	// The paper's 30% lies inside the panic-park interval for 29/100.
	if !d.WithinBand(core.OutcomePanicPark, 0.30) {
		t.Fatal("paper's 30%% not compatible with 29/100")
	}
	// And 60% does not.
	if d.WithinBand(core.OutcomePanicPark, 0.60) {
		t.Fatal("60%% should be outside the interval")
	}
}
