// Package analytics turns campaign results into the tables and figures
// the paper reports: outcome distributions, percentage tables, ASCII
// renderings of Figure 3, and CSV exports for external plotting.
package analytics

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dessertlab/certify/internal/core"
)

// Distribution is an outcome histogram with a fixed class order.
type Distribution struct {
	Label  string
	Counts map[core.Outcome]int
	Order  []core.Outcome
}

// FromCampaign builds a distribution from a campaign result.
func FromCampaign(label string, res *core.CampaignResult) *Distribution {
	return &Distribution{
		Label:  label,
		Counts: res.Distribution(),
		Order:  core.AllOutcomes(),
	}
}

// classes returns the render order: Order first, then every outcome
// class present in Counts but absent from Order, appended in the
// taxonomy's canonical (numeric) order. Artefacts rendered with a
// stale Order slice — one predating an outcome class, like the PR 6
// degradation classes — must surface the unknown classes instead of
// silently dropping their counts.
func (d *Distribution) classes() []core.Outcome {
	known := make(map[core.Outcome]bool, len(d.Order))
	for _, o := range d.Order {
		known[o] = true
	}
	var extra []core.Outcome
	for o := range d.Counts {
		if !known[o] {
			extra = append(extra, o)
		}
	}
	if len(extra) == 0 {
		return d.Order
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return append(append(make([]core.Outcome, 0, len(d.Order)+len(extra)), d.Order...), extra...)
}

// Total returns the total number of classified runs.
func (d *Distribution) Total() int {
	n := 0
	for _, c := range d.Counts {
		n += c
	}
	return n
}

// Percent returns the percentage of runs in the given class.
func (d *Distribution) Percent(o core.Outcome) float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(d.Counts[o]) / float64(t)
}

// Table renders the distribution as an aligned two-column table.
func (d *Distribution) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", d.Label, d.Total())
	for _, o := range d.classes() {
		fmt.Fprintf(&b, "  %-22s %4d  %6.1f%%\n", o, d.Counts[o], d.Percent(o))
	}
	return b.String()
}

// Bars renders the distribution as a horizontal ASCII bar chart — the
// repository's rendering of Figure 3.
func (d *Distribution) Bars(width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", d.Label, d.Total())
	for _, o := range d.classes() {
		pct := d.Percent(o)
		fill := int(pct / 100 * float64(width))
		if d.Counts[o] > 0 && fill == 0 {
			fill = 1
		}
		fmt.Fprintf(&b, "  %-22s |%-*s| %5.1f%%\n", o, width, strings.Repeat("█", fill), pct)
	}
	return b.String()
}

// CSV renders "class,count,percent" rows with a header.
func (d *Distribution) CSV() string {
	var b strings.Builder
	b.WriteString("outcome,count,percent\n")
	for _, o := range d.classes() {
		fmt.Fprintf(&b, "%s,%d,%.2f\n", o, d.Counts[o], d.Percent(o))
	}
	return b.String()
}

// CompareTable renders several distributions side by side (one column per
// distribution) — the shape used by the A1/A2 ablation sweeps.
func CompareTable(dists []*Distribution) string {
	if len(dists) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "outcome")
	for _, d := range dists {
		fmt.Fprintf(&b, " %14s", truncate(d.Label, 14))
	}
	b.WriteByte('\n')
	for _, o := range core.AllOutcomes() {
		fmt.Fprintf(&b, "%-22s", o.String())
		for _, d := range dists {
			fmt.Fprintf(&b, " %13.1f%%", d.Percent(o))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// ActivationTable renders golden-run profiling counts (the paper's
// injection-point selection step) sorted by activation count.
func ActivationTable(gp *core.GoldenProfile) string {
	type row struct {
		name  string
		count uint64
	}
	var rows []row
	for p, c := range gp.Activation {
		rows = append(rows, row{p.String(), c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	var b strings.Builder
	fmt.Fprintf(&b, "golden-run profile over %v (seed %d)\n", gp.Duration.Duration(), gp.Seed)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %8d activations\n", r.name, r.count)
	}
	fmt.Fprintf(&b, "  cell console lines: %d, LED toggles: %d\n", gp.CellLines, gp.LEDToggles)
	return b.String()
}

// InjectionSummary tabulates which registers were hit across a campaign
// and what the outcomes were — per-register vulnerability, the analysis
// the paper's future work calls for.
func InjectionSummary(res *core.CampaignResult) string {
	type agg struct{ hits, fatal int }
	byField := make(map[string]*agg)
	for _, run := range res.Runs {
		fatal := run.Outcome() == core.OutcomePanicPark || run.Outcome() == core.OutcomeCPUPark
		for _, rec := range run.Injections {
			for _, f := range rec.Fields {
				name := fieldName(int(f))
				a := byField[name]
				if a == nil {
					a = &agg{}
					byField[name] = a
				}
				a.hits++
				if fatal {
					a.fatal++
				}
			}
		}
	}
	names := make([]string, 0, len(byField))
	for n := range byField {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "per-register injection summary for %s\n", res.Plan)
	for _, n := range names {
		a := byField[n]
		fmt.Fprintf(&b, "  %-8s %5d hits  %5d in fatal runs\n", n, a.hits, a.fatal)
	}
	return b.String()
}

// fieldName avoids importing armv7 just for names in this package's API.
func fieldName(f int) string {
	names := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc", "hsr", "spsr", "elr", "hdfar", "cpuid"}
	if f >= 0 && f < len(names) {
		return names[f]
	}
	return fmt.Sprintf("f%d", f)
}
