package analytics

import (
	"fmt"
	"math"
	"strings"

	"github.com/dessertlab/certify/internal/core"
)

// Wilson returns the Wilson score interval for a proportion at the given
// z (1.96 for 95% confidence): the right way to put error bars on
// campaign outcome shares, especially near 0 and 1 where the normal
// approximation misbehaves.
func Wilson(successes, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 0
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	centre := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = centre-half, centre+half
	// At the boundaries the interval touches the boundary exactly in
	// real arithmetic; rounding can leave ±1 ulp of dust. Clamp.
	if successes == 0 {
		lo = 0
	}
	if successes == n {
		hi = 1
	}
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Z95 is the 95% confidence z-score.
const Z95 = 1.96

// TableWithCI renders the distribution with 95% Wilson intervals —
// publication-grade error bars for the Figure 3 reproduction.
func (d *Distribution) TableWithCI() string {
	var b strings.Builder
	n := d.Total()
	fmt.Fprintf(&b, "%s (n=%d, 95%% Wilson CI)\n", d.Label, n)
	for _, o := range d.classes() {
		lo, hi := Wilson(d.Counts[o], n, Z95)
		fmt.Fprintf(&b, "  %-22s %4d  %6.1f%%  [%5.1f%%, %5.1f%%]\n",
			o, d.Counts[o], d.Percent(o), 100*lo, 100*hi)
	}
	return b.String()
}

// WithinBand reports whether the outcome's share is statistically
// compatible with the target proportion at 95% confidence — the check
// EXPERIMENTS.md applies when comparing against the paper's numbers.
func (d *Distribution) WithinBand(o core.Outcome, target float64) bool {
	lo, hi := Wilson(d.Counts[o], d.Total(), Z95)
	return target >= lo && target <= hi
}
