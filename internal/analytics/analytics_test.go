package analytics

import (
	"context"
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/core"
)

func smallCampaign(t *testing.T) *core.CampaignResult {
	t.Helper()
	plan := *core.PlanE3Fig3()
	plan.Duration = 10e9 // 10 virtual seconds: enough for a distribution
	c := &core.Campaign{Plan: &plan, Runs: 12, MasterSeed: 9}
	res, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDistributionTotalsAndPercents(t *testing.T) {
	res := smallCampaign(t)
	d := FromCampaign("fig3-test", res)
	if d.Total() != 12 {
		t.Fatalf("Total = %d", d.Total())
	}
	sum := 0.0
	for _, o := range core.AllOutcomes() {
		p := d.Percent(o)
		if p < 0 || p > 100 {
			t.Fatalf("Percent(%v) = %f", o, p)
		}
		sum += p
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("percentages sum to %f", sum)
	}
}

func TestTableBarsCSVRender(t *testing.T) {
	res := smallCampaign(t)
	d := FromCampaign("fig3-test", res)

	table := d.Table()
	if !strings.Contains(table, "fig3-test (n=12)") || !strings.Contains(table, "correct") {
		t.Fatalf("Table = %q", table)
	}
	bars := d.Bars(40)
	if !strings.Contains(bars, "|") || !strings.Contains(bars, "%") {
		t.Fatalf("Bars = %q", bars)
	}
	csv := d.CSV()
	if !strings.HasPrefix(csv, "outcome,count,percent\n") {
		t.Fatalf("CSV header = %q", csv)
	}
	if got := strings.Count(csv, "\n"); got != len(core.AllOutcomes())+1 {
		t.Fatalf("CSV rows = %d", got)
	}
}

func TestBarsMinimumFill(t *testing.T) {
	d := &Distribution{
		Label:  "x",
		Counts: map[core.Outcome]int{core.OutcomeCorrect: 199, core.OutcomeCPUPark: 1},
		Order:  core.AllOutcomes(),
	}
	bars := d.Bars(30)
	// The 0.5% class still gets one visible cell.
	for _, line := range strings.Split(bars, "\n") {
		if strings.Contains(line, "cpu-park") && !strings.Contains(line, "█") {
			t.Fatalf("tiny class invisible: %q", line)
		}
	}
	if d.Bars(0) == "" {
		t.Fatal("zero width must fall back to default")
	}
}

func TestCompareTable(t *testing.T) {
	res := smallCampaign(t)
	a := FromCampaign("rate-1-50", res)
	b := FromCampaign("rate-1-100-long-label-overflow", res)
	out := CompareTable([]*Distribution{a, b})
	if !strings.Contains(out, "rate-1-50") {
		t.Fatalf("CompareTable missing label:\n%s", out)
	}
	if !strings.Contains(out, "…") {
		t.Fatal("long label not truncated")
	}
	if CompareTable(nil) != "" {
		t.Fatal("empty input must render empty")
	}
}

func TestActivationTable(t *testing.T) {
	gp, err := core.GoldenRun(3, 5e9)
	if err != nil {
		t.Fatal(err)
	}
	out := ActivationTable(gp)
	for _, want := range []string{"irqchip_handle_irq", "arch_handle_trap", "arch_handle_hvc", "activations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ActivationTable missing %q:\n%s", want, out)
		}
	}
	// Hottest first: irqchip line must precede the hvc line.
	if strings.Index(out, "irqchip_handle_irq") > strings.Index(out, "arch_handle_hvc") {
		t.Fatal("activation table not sorted by count")
	}
}

func TestInjectionSummary(t *testing.T) {
	res := smallCampaign(t)
	out := InjectionSummary(res)
	if !strings.Contains(out, "per-register injection summary") {
		t.Fatalf("summary = %q", out)
	}
}

// TestRenderersSurfaceUnknownClasses pins the stale-Order fix: a
// distribution whose Counts hold outcome classes absent from Order
// (e.g. an artefact rendered by code predating a taxonomy extension)
// must append those classes — in canonical numeric order — instead of
// silently dropping their counts from every renderer.
func TestRenderersSurfaceUnknownClasses(t *testing.T) {
	d := &Distribution{
		Label: "stale-order",
		Counts: map[core.Outcome]int{
			core.OutcomeCorrect:      5,
			core.OutcomePanicPark:    2,
			core.OutcomeInconsistent: 1,
		},
		// Order predates panic-park and inconsistent.
		Order: []core.Outcome{core.OutcomeCorrect},
	}
	for name, render := range map[string]func() string{
		"Table":       d.Table,
		"Bars":        func() string { return d.Bars(20) },
		"CSV":         d.CSV,
		"TableWithCI": d.TableWithCI,
	} {
		out := render()
		for _, o := range []core.Outcome{core.OutcomeCorrect, core.OutcomeInconsistent, core.OutcomePanicPark} {
			if !strings.Contains(out, o.String()) {
				t.Fatalf("%s dropped class %s:\n%s", name, o, out)
			}
		}
		// Unknown classes append after Order, in numeric taxonomy order:
		// inconsistent before panic-park.
		if strings.Index(out, core.OutcomeInconsistent.String()) > strings.Index(out, core.OutcomePanicPark.String()) {
			t.Fatalf("%s did not append unknown classes in canonical order:\n%s", name, out)
		}
		if strings.Index(out, core.OutcomeCorrect.String()) > strings.Index(out, core.OutcomeInconsistent.String()) {
			t.Fatalf("%s put unknown classes before Order:\n%s", name, out)
		}
	}
	// And the totals include the hidden classes.
	if d.Total() != 8 {
		t.Fatalf("Total = %d, want 8", d.Total())
	}
}
