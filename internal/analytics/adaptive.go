package analytics

import (
	"fmt"
	"math"

	"github.com/dessertlab/certify/internal/core"
)

// Clopper-Pearson exact intervals and the sequential estimator behind
// the adaptive campaign engine: campaigns stop when every outcome
// class's confidence interval is narrower than a target width instead
// of at a fixed N. The stop decision is a pure function of the outcome
// prefix — no clocks, no randomness — so the same decision replays at
// merge time over shard artefacts and lands on the same run index.

// ClopperPearson returns the exact two-sided confidence interval for a
// binomial proportion at the given confidence level (0.95 for 95%).
// Unlike Wilson, the exact interval never under-covers — the
// conservative choice when the interval gates how much certification
// evidence a campaign collects. Endpoints are the standard beta
// quantiles: lo = B(alpha/2; k, n-k+1), hi = B(1-alpha/2; k+1, n-k),
// with the boundary conventions lo=0 at k=0 and hi=1 at k=n.
func ClopperPearson(successes, n int, conf float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 0
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	k := successes
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	alpha := 1 - conf
	if k > 0 {
		lo = betaQuantile(float64(k), float64(n-k+1), alpha/2)
	}
	hi = 1
	if k < n {
		hi = betaQuantile(float64(k+1), float64(n-k), 1-alpha/2)
	}
	return lo, hi
}

// betaQuantile inverts the regularised incomplete beta function by
// bisection: the x in [0,1] with I_x(a,b) = p. 100 halvings exceed
// float64 resolution; the incomplete beta itself evaluates via a
// continued fraction, so each step is O(few dozen) terms.
func betaQuantile(a, b, p float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if regIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta is the regularised incomplete beta function I_x(a,b),
// evaluated by the symmetric continued fraction (Lentz's method). The
// binomial CDF is P(X <= k) = I_{1-p}(n-k, k+1), which is how the
// reference tests cross-check this implementation against brute-force
// tail sums.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgab, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete beta continued fraction with the
// modified Lentz algorithm.
func betaCF(a, b, x float64) float64 {
	const (
		eps  = 1e-14
		tiny = 1e-30
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 300; m++ {
		mf := float64(m)
		m2 := 2 * mf
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// SequentialEstimator folds a streaming outcome sequence into
// per-outcome-class confidence intervals — the state behind the
// CI-width stop policy, also usable standalone over a finished
// core.CampaignResult. The zero value is not usable; construct with
// NewSequentialEstimator.
type SequentialEstimator struct {
	interval string
	conf     float64
	counts   map[core.Outcome]int
	n        int
}

// NewSequentialEstimator builds an estimator over the given interval
// kind (core.IntervalClopperPearson, core.IntervalWilson; "" defaults
// to Clopper-Pearson) at the given confidence (0 defaults to 0.95).
func NewSequentialEstimator(interval string, conf float64) (*SequentialEstimator, error) {
	switch interval {
	case "":
		interval = core.IntervalClopperPearson
	case core.IntervalClopperPearson, core.IntervalWilson:
	default:
		return nil, fmt.Errorf("analytics: unknown interval kind %q", interval)
	}
	if conf == 0 {
		conf = 0.95
	}
	if conf <= 0 || conf >= 1 {
		return nil, fmt.Errorf("analytics: confidence %v outside (0,1)", conf)
	}
	return &SequentialEstimator{
		interval: interval,
		conf:     conf,
		counts:   make(map[core.Outcome]int, len(core.AllOutcomes())),
	}, nil
}

// Reset discards every observation.
func (e *SequentialEstimator) Reset() {
	clear(e.counts)
	e.n = 0
}

// Observe folds one classified run.
func (e *SequentialEstimator) Observe(o core.Outcome) {
	e.counts[o]++
	e.n++
}

// AddCampaign folds a finished campaign aggregate — the offline path
// for computing the same intervals the stop policy saw.
func (e *SequentialEstimator) AddCampaign(res *core.CampaignResult) {
	for o, c := range res.Distribution() {
		e.counts[o] += c
		e.n += c
	}
}

// N returns how many runs were observed.
func (e *SequentialEstimator) N() int { return e.n }

// Count returns how many observed runs ended in the given class.
func (e *SequentialEstimator) Count(o core.Outcome) int { return e.counts[o] }

// Interval returns the confidence interval of the given outcome
// class's proportion.
func (e *SequentialEstimator) Interval(o core.Outcome) (lo, hi float64) {
	if e.interval == core.IntervalWilson {
		return Wilson(e.counts[o], e.n, Z95)
	}
	return ClopperPearson(e.counts[o], e.n, e.conf)
}

// Width returns the full width (hi - lo) of the class's interval.
func (e *SequentialEstimator) Width(o core.Outcome) float64 {
	lo, hi := e.Interval(o)
	return hi - lo
}

// MaxWidth returns the widest interval across every tracked outcome
// class — including classes not yet observed, whose interval at small n
// is wide by construction. "Every tracked outcome's CI is narrower than
// the target" is exactly MaxWidth() <= target.
func (e *SequentialEstimator) MaxWidth() float64 {
	if e.n == 0 {
		return 1
	}
	widest := 0.0
	for _, o := range core.AllOutcomes() {
		if w := e.Width(o); w > widest {
			widest = w
		}
	}
	return widest
}

// ciStopPolicy implements core.StopPolicy: halt once every outcome
// class's CI is narrower than the spec's target width, checked every
// CheckEvery runs after MinRuns. Pure function of the outcome prefix.
type ciStopPolicy struct {
	spec core.StopSpec
	est  *SequentialEstimator
}

// NewStopPolicy builds the campaign driver's stop policy from its
// serializable identity. The spec is validated (and its defaults
// normalised) first, so a policy constructed from any equal identity
// behaves identically.
func NewStopPolicy(spec *core.StopSpec) (core.StopPolicy, error) {
	if spec == nil {
		return nil, fmt.Errorf("analytics: nil stop spec")
	}
	s := *spec
	if err := s.Validate(); err != nil {
		return nil, err
	}
	est, err := NewSequentialEstimator(s.Interval, 0.95)
	if err != nil {
		return nil, err
	}
	return &ciStopPolicy{spec: s, est: est}, nil
}

// Reset implements core.StopPolicy.
func (p *ciStopPolicy) Reset() { p.est.Reset() }

// Observe implements core.StopPolicy. index is the global run index;
// observations arrive in order from 0, so the run count equals
// index+1.
func (p *ciStopPolicy) Observe(index int, o core.Outcome) bool {
	p.est.Observe(o)
	n := p.est.N()
	if n < p.spec.MinRuns {
		return false
	}
	if n%p.spec.CheckEvery != 0 {
		return false
	}
	return p.est.MaxWidth() <= float64(p.spec.WidthBP)/10000
}
