package analytics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/dessertlab/certify/internal/core"
)

// binomCDF is the brute-force reference P(X <= k) for X ~ Binomial(n,p),
// summed term by term in log space — no incomplete beta involved, so it
// cross-checks the continued-fraction evaluation against the
// definition itself.
func binomCDF(k, n int, p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		if k >= n {
			return 1
		}
		return 0
	}
	lgn, _ := math.Lgamma(float64(n + 1))
	sum := 0.0
	for i := 0; i <= k && i <= n; i++ {
		lgi, _ := math.Lgamma(float64(i + 1))
		lgni, _ := math.Lgamma(float64(n - i + 1))
		sum += math.Exp(lgn - lgi - lgni + float64(i)*math.Log(p) + float64(n-i)*math.Log(1-p))
	}
	return sum
}

// TestClopperPearsonReferenceTails pins the exact interval to its
// defining tail equations, against brute-force binomial sums for every
// k at a ladder of n up to 200: at the lower endpoint the upper tail
// P(X >= k) equals alpha/2, at the upper endpoint the lower tail
// P(X <= k) equals alpha/2.
func TestClopperPearsonReferenceTails(t *testing.T) {
	const conf = 0.95
	const alpha = 1 - conf
	const tol = 1e-8
	for _, n := range []int{1, 2, 3, 5, 10, 23, 40, 100, 200} {
		for k := 0; k <= n; k++ {
			lo, hi := ClopperPearson(k, n, conf)
			if lo < 0 || hi > 1 || lo > hi {
				t.Fatalf("CP(%d,%d) = [%v,%v] not an ordered subinterval of [0,1]", k, n, lo, hi)
			}
			if k == 0 {
				if lo != 0 {
					t.Fatalf("CP(0,%d) lo = %v, want exactly 0", n, lo)
				}
			} else if got := 1 - binomCDF(k-1, n, lo); math.Abs(got-alpha/2) > tol {
				t.Fatalf("CP(%d,%d): P(X>=%d | p=lo) = %v, want %v", k, n, k, got, alpha/2)
			}
			if k == n {
				if hi != 1 {
					t.Fatalf("CP(%d,%d) hi = %v, want exactly 1", n, n, hi)
				}
			} else if got := binomCDF(k, n, hi); math.Abs(got-alpha/2) > tol {
				t.Fatalf("CP(%d,%d): P(X<=%d | p=hi) = %v, want %v", k, n, k, got, alpha/2)
			}
		}
	}
}

// TestClopperPearsonBoundaries pins the closed forms at the boundary
// counts: k=0 gives [0, 1-(alpha/2)^(1/n)], k=n mirrors it, and n=1
// exercises both at the smallest campaign.
func TestClopperPearsonBoundaries(t *testing.T) {
	const alpha = 0.05
	for _, n := range []int{1, 2, 7, 40, 200} {
		want := 1 - math.Pow(alpha/2, 1/float64(n))
		lo, hi := ClopperPearson(0, n, 0.95)
		if lo != 0 || math.Abs(hi-want) > 1e-9 {
			t.Fatalf("CP(0,%d) = [%v,%v], want [0,%v]", n, lo, hi, want)
		}
		lo, hi = ClopperPearson(n, n, 0.95)
		if hi != 1 || math.Abs(lo-(1-want)) > 1e-9 {
			t.Fatalf("CP(%d,%d) = [%v,%v], want [%v,1]", n, n, lo, hi, 1-want)
		}
	}
	if lo, hi := ClopperPearson(3, 0, 0.95); lo != 0 || hi != 0 {
		t.Fatal("n=0 must be inert")
	}
}

// TestClopperPearsonMonotonicInN: at a fixed observed proportion, the
// exact interval must tighten as evidence accumulates — the property
// that makes CI-width stopping terminate.
func TestClopperPearsonMonotonicInN(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.975, 1} {
		prev := math.Inf(1)
		for _, n := range []int{8, 16, 40, 80, 200} {
			k := int(math.Round(frac * float64(n)))
			lo, hi := ClopperPearson(k, n, 0.95)
			if w := hi - lo; w >= prev {
				t.Fatalf("CP width at p=%v not shrinking: n=%d gives %v, previous %v", frac, n, w, prev)
			} else {
				prev = w
			}
		}
	}
}

// TestClopperPearsonProperty: for arbitrary (k, n) the interval is an
// ordered subinterval of [0,1] containing the point estimate, and its
// guaranteed coverage P(lo <= p̂true) is conservative — checked by the
// tail sums at the endpoints staying at or below alpha/2 (never above:
// exact intervals never under-cover).
func TestClopperPearsonProperty(t *testing.T) {
	prop := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := ClopperPearson(k, n, 0.95)
		p := float64(k) / float64(n)
		if !(lo <= p && p <= hi && lo >= 0 && hi <= 1) {
			return false
		}
		if k > 0 && 1-binomCDF(k-1, n, lo) > 0.025+1e-8 {
			return false
		}
		if k < n && binomCDF(k, n, hi) > 0.025+1e-8 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestWilsonEndpointEquation pins Wilson's endpoints to their defining
// equation |p̂ - x| = z·sqrt(x(1-x)/n): the score test statistic equals
// z exactly at both ends (boundary clamps aside).
func TestWilsonEndpointEquation(t *testing.T) {
	check := func(k, n int, x float64) {
		t.Helper()
		p := float64(k) / float64(n)
		lhs := math.Abs(p - x)
		rhs := Z95 * math.Sqrt(x*(1-x)/float64(n))
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("Wilson(%d,%d) endpoint %v: |p̂-x| = %v, z·se = %v", k, n, x, lhs, rhs)
		}
	}
	for _, n := range []int{1, 2, 5, 23, 40, 100, 200} {
		for k := 0; k <= n; k++ {
			lo, hi := Wilson(k, n, Z95)
			if k > 0 {
				check(k, n, lo)
			}
			if k < n {
				check(k, n, hi)
			}
		}
	}
}

// TestSequentialEstimatorFolds: streaming observations and an offline
// campaign fold produce the same counts and intervals, and more
// evidence always narrows MaxWidth.
func TestSequentialEstimatorFolds(t *testing.T) {
	stream, err := NewSequentialEstimator("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stream.MaxWidth() != 1 {
		t.Fatalf("empty estimator MaxWidth = %v, want 1", stream.MaxWidth())
	}
	res := &core.CampaignResult{}
	prev := 1.0
	for i := 0; i < 120; i++ {
		o := core.OutcomeCorrect
		if i%8 == 3 {
			o = core.OutcomePanicPark
		}
		stream.Observe(o)
		res.AddSample(o, 1, -1)
		if i%40 == 39 {
			if w := stream.MaxWidth(); w >= prev {
				t.Fatalf("MaxWidth not shrinking at n=%d: %v >= %v", stream.N(), w, prev)
			} else {
				prev = w
			}
		}
	}
	batch, err := NewSequentialEstimator(core.IntervalClopperPearson, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	batch.AddCampaign(res)
	if stream.N() != batch.N() {
		t.Fatalf("N: stream %d, batch %d", stream.N(), batch.N())
	}
	for _, o := range core.AllOutcomes() {
		slo, shi := stream.Interval(o)
		blo, bhi := batch.Interval(o)
		if slo != blo || shi != bhi {
			t.Fatalf("%s: stream [%v,%v], batch [%v,%v]", o, slo, shi, blo, bhi)
		}
	}
	stream.Reset()
	if stream.N() != 0 || stream.MaxWidth() != 1 {
		t.Fatal("Reset did not clear the estimator")
	}
	if _, err := NewSequentialEstimator("gaussian", 0.95); err == nil {
		t.Fatal("unknown interval kind accepted")
	}
	if _, err := NewSequentialEstimator("", 1.5); err == nil {
		t.Fatal("confidence outside (0,1) accepted")
	}
}

// TestStopPolicyDeterministicReplay: the policy is a pure function of
// the outcome prefix — two replays of the same sequence decide at the
// same index, MinRuns floors the decision and CheckEvery coarsens it.
func TestStopPolicyDeterministicReplay(t *testing.T) {
	seq := make([]core.Outcome, 400)
	for i := range seq {
		seq[i] = core.OutcomeCorrect
		if i%16 == 5 {
			seq[i] = core.OutcomePanicPark
		}
	}
	decide := func(spec *core.StopSpec) int {
		p, err := NewStopPolicy(spec)
		if err != nil {
			t.Fatal(err)
		}
		p.Reset()
		for i, o := range seq {
			if p.Observe(i, o) {
				return i + 1
			}
		}
		return len(seq)
	}
	spec := &core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 5000}
	first := decide(spec)
	if first == len(seq) {
		t.Fatalf("50pp target never met over %d runs", len(seq))
	}
	if again := decide(spec); again != first {
		t.Fatalf("replay decided at %d, first pass at %d", again, first)
	}
	floored := decide(&core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 5000, MinRuns: first + 50})
	if floored < first+50 {
		t.Fatalf("MinRuns %d not honoured: decided at %d", first+50, floored)
	}
	every := decide(&core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 5000, CheckEvery: 7})
	if every%7 != 0 {
		t.Fatalf("CheckEvery 7 decided at %d, not a multiple of 7", every)
	}
	if every < first {
		t.Fatalf("coarser checks decided earlier (%d) than per-run checks (%d)", every, first)
	}
	if _, err := NewStopPolicy(nil); err == nil {
		t.Fatal("nil spec accepted")
	}
	if _, err := NewStopPolicy(&core.StopSpec{Policy: "by-vibes", WidthBP: 100}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewStopPolicy(&core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 0}); err == nil {
		t.Fatal("zero width accepted")
	}
}
