package sim

import "testing"

// populate fills a trace with a representative mix of static, deferred
// and pre-rendered records.
func populate(t *Trace) {
	t.Add(0, KindBoot, -1, "power on")
	for i := 0; i < 200; i++ {
		t.Addf(Time(i)*Millisecond, KindIRQ, i%2, "irq %d asserted on cpu%d", Int(int64(32+i%8)), Int(int64(i%2)))
		t.Addf(Time(i)*Millisecond+1, KindUART, -1, "tx %q", Str("hello"))
		if i%7 == 0 {
			t.Add(Time(i)*Millisecond+2, KindNote, 1, "checkpoint")
		}
	}
	t.Addf(Second, KindPanic, 0, "unhandled trap hsr=%#x", Uint(0x96000045))
}

// TestIncrementalHashMatchesDeferred pins the satellite contract: the
// digest maintained on append is bit-identical to the one computed by
// the end-of-run fold over deferred records.
func TestIncrementalHashMatchesDeferred(t *testing.T) {
	deferred := NewTrace()
	populate(deferred)
	want := deferred.Hash()

	inc := NewTrace()
	inc.SetIncrementalHash(true)
	populate(inc)
	if got := inc.Hash(); got != want {
		t.Fatalf("incremental hash %#x, deferred hash %#x", got, want)
	}

	// Enabling mid-stream must catch up on the records appended before
	// the switch — the runner enables after the machine build's boot
	// records have already landed.
	late := NewTrace()
	late.Add(0, KindBoot, -1, "power on")
	late.Addf(Millisecond, KindIRQ, 0, "irq %d asserted on cpu%d", Int(32), Int(0))
	late.SetIncrementalHash(true)
	late.Addf(Second, KindPanic, 0, "unhandled trap hsr=%#x", Uint(0x96000045))

	ref := NewTrace()
	ref.Add(0, KindBoot, -1, "power on")
	ref.Addf(Millisecond, KindIRQ, 0, "irq %d asserted on cpu%d", Int(32), Int(0))
	ref.Addf(Second, KindPanic, 0, "unhandled trap hsr=%#x", Uint(0x96000045))
	if late.Hash() != ref.Hash() {
		t.Fatalf("mid-stream enable diverged: %#x vs %#x", late.Hash(), ref.Hash())
	}
}

// TestIncrementalHashLeavesRecordsReadable makes sure hashing on append
// does not consume the deferred format state: scans after an
// incremental-hash run still render every message.
func TestIncrementalHashLeavesRecordsReadable(t *testing.T) {
	tr := NewTrace()
	tr.SetIncrementalHash(true)
	tr.Addf(Second, KindTrap, 1, "data abort at %#x", Uint(0xdeadbeef))
	if !tr.Contains("data abort at 0xdeadbeef") {
		t.Fatal("message unreadable after incremental hashing")
	}
	// Hash unchanged by the read.
	h := tr.Hash()
	if tr.Hash() != h {
		t.Fatal("hash not idempotent")
	}
}

// TestHashStreamsAcrossCalls: hashing a prefix and continuing after more
// appends equals hashing everything at once — the property the
// incremental mode is built on.
func TestHashStreamsAcrossCalls(t *testing.T) {
	a := NewTrace()
	a.Add(0, KindBoot, -1, "x")
	_ = a.Hash() // fold the prefix
	a.Addf(Second, KindNote, 0, "n=%d", Int(7))
	b := NewTrace()
	b.Add(0, KindBoot, -1, "x")
	b.Addf(Second, KindNote, 0, "n=%d", Int(7))
	if a.Hash() != b.Hash() {
		t.Fatalf("streamed hash %#x, one-shot hash %#x", a.Hash(), b.Hash())
	}
}

// TestResetClearsIncrementalState: a recycled trace must restart its
// digest and drop incremental mode (the runner re-enables it per run).
func TestResetClearsIncrementalState(t *testing.T) {
	tr := NewTrace()
	tr.SetIncrementalHash(true)
	populate(tr)
	_ = tr.Hash()
	tr.Reset()
	fresh := NewTrace()
	if tr.Hash() != fresh.Hash() {
		t.Fatalf("reset trace hash %#x, fresh empty trace %#x", tr.Hash(), fresh.Hash())
	}
	populate(tr)
	ref := NewTrace()
	populate(ref)
	if tr.Hash() != ref.Hash() {
		t.Fatalf("post-reset hash %#x, fresh-trace hash %#x", tr.Hash(), ref.Hash())
	}
}
