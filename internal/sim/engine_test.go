package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want horizon 100", e.Now())
	}
}

func TestEngineSameInstantIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	if err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want ascending", got)
		}
	}
}

func TestEngineHorizonStopsFutureEvents(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(200, func() { ran = true })
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("event past horizon ran")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.Schedule(10, func() { ran = true })
	ev.Cancel()
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("canceled event ran")
	}
	// Double-cancel and zero-value cancel must be safe.
	ev.Cancel()
	var zero Event
	zero.Cancel()
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() { e.Halt("hypervisor panic_stop") })
	laterRan := false
	e.Schedule(20, func() { laterRan = true })
	err := e.Run(100)
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("Run err = %v, want ErrHalted", err)
	}
	if laterRan {
		t.Fatal("event after halt ran")
	}
	halted, msg := e.Halted()
	if !halted || msg != "hypervisor panic_stop" {
		t.Fatalf("Halted() = %v %q", halted, msg)
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(1)
	n := 0
	cancel := e.Every(10, func() {
		n++
		if n == 5 {
			// cancel from inside the callback must stop future ticks
		}
	})
	e.Schedule(55, func() { cancel() })
	if err := e.Run(200); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 5 {
		t.Fatalf("tick count = %d, want 5 (ticks at 10..50 then canceled at 55)", n)
	}
}

func TestEngineEveryStopsOnHalt(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Every(10, func() { n++ })
	e.Schedule(35, func() { e.Halt("dead") })
	_ = e.Run(1000)
	if n != 3 {
		t.Fatalf("tick count = %d, want 3", n)
	}
}

func TestEngineScheduleInPastClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(50, func() {
		e.Schedule(10, func() { at = e.Now() }) // "past" event
	})
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 50 {
		t.Fatalf("past-scheduled event ran at %v, want 50", at)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(10, func() { count++ })
	e.Schedule(20, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first Step: count = %d", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second Step: count = %d", count)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds produced identical stream")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 40; n++ {
		seen := make(map[int]bool)
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if n > 1 && len(seen) < 2 {
			t.Fatalf("Intn(%d) produced a single value over 200 draws", n)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn with non-positive n should return 0")
	}
}

func TestRNGIntnIsRoughlyUniform(t *testing.T) {
	r := NewRNG(99)
	const n, draws = 16, 16000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGPick(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 3)
	for i := 0; i < 9000; i++ {
		counts[r.Pick([]float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight bucket picked %d times", counts[2])
	}
	if counts[1] < counts[0] {
		t.Fatalf("weight-2 bucket (%d) drew less than weight-1 bucket (%d)", counts[1], counts[0])
	}
	if r.Pick([]float64{0, 0}) != 0 {
		t.Fatal("zero-total weights should pick index 0")
	}
}

func TestSplitMix64DerivedSeedsDiffer(t *testing.T) {
	state := uint64(2022)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		s := SplitMix64(&state)
		if seen[s] {
			t.Fatal("SplitMix64 repeated a seed within 1000 draws")
		}
		seen[s] = true
	}
}

func TestTraceFilterCountContains(t *testing.T) {
	tr := NewTrace()
	tr.Addf(10, KindUART, 0, "hello %s", Str("world"))
	tr.Add(20, KindPanic, 1, "Kernel panic - not syncing")
	tr.Add(30, KindUART, 1, "bye")
	if got := tr.Count(KindUART); got != 2 {
		t.Fatalf("Count(UART) = %d, want 2", got)
	}
	if got := len(tr.Filter(KindPanic)); got != 1 {
		t.Fatalf("Filter(Panic) len = %d, want 1", got)
	}
	if !tr.Contains("not syncing") {
		t.Fatal("Contains failed to find panic text")
	}
	if tr.Contains("no such text") {
		t.Fatal("Contains found text that is not there")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestTraceHashStableAndOrderSensitive(t *testing.T) {
	build := func(order []int) *Trace {
		tr := NewTrace()
		for _, i := range order {
			tr.Addf(Time(i), KindNote, i, "n%d", Int(int64(i)))
		}
		return tr
	}
	a := build([]int{1, 2, 3})
	b := build([]int{1, 2, 3})
	c := build([]int{3, 2, 1})
	if a.Hash() != b.Hash() {
		t.Fatal("identical traces hash differently")
	}
	if a.Hash() == c.Hash() {
		t.Fatal("different traces hash identically")
	}
}

func TestTraceDumpAndSummary(t *testing.T) {
	tr := NewTrace()
	tr.Add(1*Second, KindUART, 0, "line-a")
	tr.Add(2*Second, KindIRQ, -1, "irq 27")
	dump := tr.Dump(KindUART)
	if want := "line-a"; !contains(dump, want) {
		t.Fatalf("Dump(UART) = %q, want it to contain %q", dump, want)
	}
	if contains(dump, "irq 27") {
		t.Fatal("Dump(UART) leaked IRQ record")
	}
	full := tr.Dump()
	if !contains(full, "irq 27") || !contains(full, "line-a") {
		t.Fatalf("Dump() = %q missing records", full)
	}
	sum := tr.Summary()
	if !contains(sum, "UART=1") || !contains(sum, "IRQ=1") {
		t.Fatalf("Summary() = %q", sum)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: with the same seed, an engine running a randomized workload of
// self-rescheduling events produces an identical trace hash.
func TestPropertyDeterministicReplay(t *testing.T) {
	run := func(seed uint64) uint64 {
		e := NewEngine(seed)
		var step func()
		n := 0
		step = func() {
			n++
			e.Trace().Addf(e.Now(), KindNote, n%4, "step %d r=%d", Int(int64(n)), Int(int64(e.RNG().Intn(100))))
			if n < 500 {
				e.After(Time(1+e.RNG().Intn(50)), step)
			}
		}
		e.After(1, step)
		if err := e.Run(1 << 40); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return e.Trace().Hash()
	}
	prop := func(seed uint64) bool { return run(seed) == run(seed) }
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{0, "[    0.000]"},
		{1042 * Millisecond, "[    1.042]"},
		{61 * Second, "[   61.000]"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Time(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}
