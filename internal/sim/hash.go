package sim

import "hash/fnv"

// Stable 64-bit digests (FNV-1a, the same function Trace.Hash uses).
// Campaign manifests fingerprint their test plan with these so that a
// merge of shard artefacts can refuse inputs produced by a different
// plan: the digest of a canonical rendering must stay identical across
// processes, architectures and Go releases.

// HashBytes returns the FNV-1a 64-bit digest of b.
func HashBytes(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}

// HashString returns the FNV-1a 64-bit digest of s.
func HashString(s string) uint64 {
	return HashBytes([]byte(s))
}
