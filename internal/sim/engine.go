package sim

import (
	"errors"
	"fmt"
)

// ErrHalted is returned by Run when the machine was halted by a component
// (for example after a system-wide hypervisor panic) before the requested
// horizon was reached. Reaching the horizon normally is not an error.
var ErrHalted = errors.New("sim: engine halted")

// slot is one entry of the engine's pooled event slab. Slots are recycled
// through a free list: popping an event returns its slot immediately, so a
// campaign's steady-state event population allocates nothing per event.
type slot struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among same-instant events
	fn   func()
	gen  uint32 // bumped on every free; stale handles become no-ops
	// canceled events stay in the heap but are skipped when popped;
	// this keeps cancellation O(1).
	canceled bool
}

// Event is a cheap, copyable handle to a scheduled callback. The zero
// value is valid and cancels nothing. Handles are generation-checked:
// canceling an event that already fired (even if its slot has been reused
// by a newer event) is a safe no-op.
type Event struct {
	eng *Engine
	idx int32
	gen uint32
}

// Cancel prevents a pending event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (ev Event) Cancel() {
	e := ev.eng
	if e == nil || ev.idx < 0 || int(ev.idx) >= len(e.slots) {
		return
	}
	if s := &e.slots[ev.idx]; s.gen == ev.gen {
		s.canceled = true
	}
}

// Engine is the deterministic event loop that drives one simulated machine.
// It is not safe for concurrent use; one goroutine owns one engine.
//
// The event queue is an index-based min-heap over a pooled slab: heap
// entries are slab indices ordered by (when, seq), and freed slots are
// recycled via a free list. Scheduling in steady state therefore performs
// no per-event allocation and no interface boxing.
type Engine struct {
	now      Time
	seq      uint64
	slots    []slot
	freeList []int32 // stack of free slab indices
	heap     []int32 // slab indices ordered by (when, seq)
	rng      *RNG
	trace    *Trace
	halted   bool
	haltMsg  string

	// executed counts events delivered (canceled pops excluded) since
	// the last Reset. Pure telemetry for the flight recorder's
	// sim-event throughput metric: it never feeds the trace, the RNG or
	// any digest, so it cannot perturb determinism.
	executed uint64

	// wedgeLimit bounds how many events may execute at a single virtual
	// instant before Run declares the machine wedged. 0 disables the
	// watchdog. The limit is configuration, not run state: Reset keeps it.
	wedgeLimit int
}

// DefaultWedgeLimit is the bounded-progress watchdog threshold new engines
// start with. Legitimate same-instant bursts (cascaded IRQ deliveries,
// same-tick reschedules) stay in the tens; a fault that turns the event
// loop into a zero-delay self-rescheduling cycle blows past this within
// one virtual instant.
const DefaultWedgeLimit = 1 << 17

// NewEngine returns an engine at time zero with the given seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:        NewRNG(seed),
		trace:      NewTrace(),
		wedgeLimit: DefaultWedgeLimit,
	}
}

// SetWedgeLimit tunes the bounded-progress watchdog: the number of events
// Run may execute at one virtual instant before halting with a machine
// wedge. 0 disables the watchdog entirely.
func (e *Engine) SetWedgeLimit(n int) { e.wedgeLimit = n }

// Reset rewinds the engine to time zero with a fresh seed while keeping
// the event slab, heap and trace buffers allocated — the machine-reuse
// path campaign workers use between consecutive runs. Event handles from
// before the reset are invalidated (their Cancel becomes a no-op).
func (e *Engine) Reset(seed uint64) {
	e.now, e.seq = 0, 0
	e.halted, e.haltMsg = false, ""
	e.executed = 0
	e.heap = e.heap[:0]
	e.freeList = e.freeList[:0]
	for i := range e.slots {
		e.slots[i].fn = nil
		e.slots[i].gen++
		e.freeList = append(e.freeList, int32(i))
	}
	e.rng.Reseed(seed)
	e.trace.Reset()
}

// Now returns current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Trace returns the engine's event trace.
func (e *Engine) Trace() *Trace { return e.trace }

// less orders heap entries by (when, seq).
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.when != sb.when {
		return sa.when < sb.when
	}
	return sa.seq < sb.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.less(h[right], h[left]) {
			least = right
		}
		if !e.less(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Schedule enqueues fn to run at absolute virtual time when. Times in the
// past are clamped to "now" (the event still runs, after already-queued
// events for the current instant). The returned handle can cancel it.
func (e *Engine) Schedule(when Time, fn func()) Event {
	if when < e.now {
		when = e.now
	}
	var idx int32
	if n := len(e.freeList); n > 0 {
		idx = e.freeList[n-1]
		e.freeList = e.freeList[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.when, s.seq, s.fn, s.canceled = when, e.seq, fn, false
	e.seq++
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	return Event{eng: e, idx: idx, gen: s.gen}
}

// After enqueues fn to run d after the current instant.
func (e *Engine) After(d Time, fn func()) Event {
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn at now+d, then every d thereafter, until the returned
// cancel function is called or the engine halts.
func (e *Engine) Every(d Time, fn func()) (cancel func()) {
	if d <= 0 {
		d = Nanosecond
	}
	stopped := false
	var current Event
	var tick func()
	tick = func() {
		if stopped || e.halted {
			return
		}
		fn()
		if !stopped && !e.halted {
			current = e.After(d, tick)
		}
	}
	current = e.After(d, tick)
	return func() {
		stopped = true
		current.Cancel()
	}
}

// Halt stops the run: Run returns ErrHalted once the current event
// completes. Components call this to model system-wide death (e.g. the
// hypervisor's panic_stop bringing every CPU down).
func (e *Engine) Halt(reason string) {
	if !e.halted {
		e.halted = true
		e.haltMsg = reason
	}
}

// Halted reports whether Halt was called, and the recorded reason.
func (e *Engine) Halted() (bool, string) { return e.halted, e.haltMsg }

// pop removes the heap minimum and frees its slot, returning the event
// payload. The slot is recycled before the callback runs, so a callback
// that schedules may reuse the very slot of the event being delivered.
func (e *Engine) pop() (when Time, fn func(), canceled bool) {
	idx := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	s := &e.slots[idx]
	when, fn, canceled = s.when, s.fn, s.canceled
	s.fn = nil
	s.gen++
	e.freeList = append(e.freeList, idx)
	return when, fn, canceled
}

// Run executes events in order until the queue is empty, the horizon is
// passed, or the engine is halted. The engine's clock ends at exactly
// horizon when the horizon is reached normally.
//
// A bounded-progress watchdog counts events executed without virtual time
// advancing; past the wedge limit the run halts with a "machine wedge"
// reason instead of spinning forever — the simulation analogue of a
// livelocked board that a hardware watchdog would reset. The counters are
// locals, so the watchdog adds no run state and cannot perturb digests.
func (e *Engine) Run(horizon Time) error {
	sameInstant := 0
	lastNow := e.now
	for len(e.heap) > 0 {
		if e.halted {
			return fmt.Errorf("%w at %v: %s", ErrHalted, e.now, e.haltMsg)
		}
		if e.slots[e.heap[0]].when > horizon {
			break
		}
		when, fn, canceled := e.pop()
		if canceled {
			continue
		}
		e.now = when
		fn()
		e.executed++
		if e.now != lastNow {
			lastNow = e.now
			sameInstant = 0
		} else if sameInstant++; e.wedgeLimit > 0 && sameInstant >= e.wedgeLimit {
			e.trace.Addf(e.now, KindWedge, -1,
				"machine wedge: %d events without time advancing", Int(int64(sameInstant)))
			e.Halt(fmt.Sprintf("machine wedge: %d events without time advancing at %v", sameInstant, e.now))
		}
	}
	if e.halted {
		return fmt.Errorf("%w at %v: %s", ErrHalted, e.now, e.haltMsg)
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Step executes exactly one pending event (skipping canceled ones) and
// reports whether an event ran. Used by tests that need fine-grained
// control over interleaving.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		when, fn, canceled := e.pop()
		if canceled {
			continue
		}
		e.now = when
		fn()
		e.executed++
		return true
	}
	return false
}

// Executed returns the number of events delivered since the last Reset.
// Diagnostic only — the flight recorder's sim-event throughput source.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently queued, including
// canceled-but-unpopped ones. Diagnostic only.
func (e *Engine) Pending() int { return len(e.heap) }
