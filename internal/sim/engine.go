package sim

import (
	"errors"
	"fmt"
)

// ErrHalted is returned by Run when the machine was halted by a component
// (for example after a system-wide hypervisor panic) before the requested
// horizon was reached. Reaching the horizon normally is not an error.
var ErrHalted = errors.New("sim: engine halted")

// slot is one entry of the engine's pooled event slab. Slots are recycled
// through a free list: popping an event returns its slot immediately, so a
// campaign's steady-state event population allocates nothing per event.
type slot struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among same-instant events
	fn   func()
	// period > 0 marks a periodic event (Every): the slot is not freed on
	// pop — after its callback returns it is re-pushed at when+period with
	// a fresh seq. Keeping periodicity in the slab (instead of closure
	// state inside the tick function) is what makes the scheduler
	// snapshot-restorable: a captured slot array carries everything a
	// periodic timer needs to keep firing after a restore.
	period Time
	gen    uint32 // bumped on every free; stale handles become no-ops
	// canceled events stay in the heap but are skipped when popped;
	// this keeps cancellation O(1).
	canceled bool
}

// heapEnt is one heap entry: the slab index plus a copy of the slot's
// ordering key. Duplicating (when, seq) into the heap keeps comparisons
// inside one contiguous array — no slab dereference per compare on the
// hottest loop in the simulator. The key copy never goes stale: a slot's
// key only changes when it is (re)pushed, and every push writes a fresh
// entry.
type heapEnt struct {
	when Time
	seq  uint64
	idx  int32
}

// Event is a cheap, copyable handle to a scheduled callback. The zero
// value is valid and cancels nothing. Handles are generation-checked:
// canceling an event that already fired (even if its slot has been reused
// by a newer event) is a safe no-op.
type Event struct {
	eng *Engine
	idx int32
	gen uint32
}

// Cancel prevents a pending event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (ev Event) Cancel() {
	e := ev.eng
	if e == nil || ev.idx < 0 || int(ev.idx) >= len(e.slots) {
		return
	}
	if s := &e.slots[ev.idx]; s.gen == ev.gen {
		s.canceled = true
	}
}

// Engine is the deterministic event loop that drives one simulated machine.
// It is not safe for concurrent use; one goroutine owns one engine.
//
// The event queue is an index-based min-heap over a pooled slab: heap
// entries are slab indices ordered by (when, seq), and freed slots are
// recycled via a free list. Scheduling in steady state therefore performs
// no per-event allocation and no interface boxing.
type Engine struct {
	now      Time
	seq      uint64
	slots    []slot
	freeList []int32   // stack of free slab indices
	heap     []heapEnt // slab indices + keys ordered by (when, seq)
	rng      *RNG
	trace    *Trace
	halted   bool
	haltMsg  string

	// executed counts events delivered (canceled pops excluded) since
	// the last Reset. Pure telemetry for the flight recorder's
	// sim-event throughput metric: it never feeds the trace, the RNG or
	// any digest, so it cannot perturb determinism.
	executed uint64

	// wedgeLimit bounds how many events may execute at a single virtual
	// instant before Run declares the machine wedged. 0 disables the
	// watchdog. The limit is configuration, not run state: Reset keeps it.
	wedgeLimit int
}

// DefaultWedgeLimit is the bounded-progress watchdog threshold new engines
// start with. Legitimate same-instant bursts (cascaded IRQ deliveries,
// same-tick reschedules) stay in the tens; a fault that turns the event
// loop into a zero-delay self-rescheduling cycle blows past this within
// one virtual instant.
const DefaultWedgeLimit = 1 << 17

// NewEngine returns an engine at time zero with the given seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:        NewRNG(seed),
		trace:      NewTrace(),
		wedgeLimit: DefaultWedgeLimit,
	}
}

// SetWedgeLimit tunes the bounded-progress watchdog: the number of events
// Run may execute at one virtual instant before halting with a machine
// wedge. 0 disables the watchdog entirely.
func (e *Engine) SetWedgeLimit(n int) { e.wedgeLimit = n }

// Reset rewinds the engine to time zero with a fresh seed while keeping
// the event slab, heap and trace buffers allocated — the machine-reuse
// path campaign workers use between consecutive runs. Event handles from
// before the reset are invalidated (their Cancel becomes a no-op).
func (e *Engine) Reset(seed uint64) {
	e.now, e.seq = 0, 0
	e.halted, e.haltMsg = false, ""
	e.executed = 0
	e.heap = e.heap[:0]
	e.freeList = e.freeList[:0]
	for i := range e.slots {
		e.slots[i].fn = nil
		e.slots[i].period = 0
		e.slots[i].gen++
		e.freeList = append(e.freeList, int32(i))
	}
	e.rng.Reseed(seed)
	e.trace.Reset()
}

// Now returns current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Trace returns the engine's event trace.
func (e *Engine) Trace() *Trace { return e.trace }

// less orders heap entries by (when, seq).
func (e *Engine) less(a, b heapEnt) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.less(h[right], h[left]) {
			least = right
		}
		if !e.less(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Schedule enqueues fn to run at absolute virtual time when. Times in the
// past are clamped to "now" (the event still runs, after already-queued
// events for the current instant). The returned handle can cancel it.
func (e *Engine) Schedule(when Time, fn func()) Event {
	if when < e.now {
		when = e.now
	}
	var idx int32
	if n := len(e.freeList); n > 0 {
		idx = e.freeList[n-1]
		e.freeList = e.freeList[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.when, s.seq, s.fn, s.period, s.canceled = when, e.seq, fn, 0, false
	e.seq++
	e.heap = append(e.heap, heapEnt{when: s.when, seq: s.seq, idx: idx})
	e.siftUp(len(e.heap) - 1)
	return Event{eng: e, idx: idx, gen: s.gen}
}

// After enqueues fn to run d after the current instant.
func (e *Engine) After(d Time, fn func()) Event {
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn at now+d, then every d thereafter, until the returned
// cancel function is called or the engine halts. The periodicity lives in
// the event slot itself (slot.period), not in closure state: the slot is
// kept across deliveries and re-pushed after each callback with a fresh
// sequence number — exactly the seq the old re-scheduling closure would
// have drawn, so same-instant tie-breaks are unchanged. Because the whole
// timer is slab state, a scheduler snapshot captures it and a restore
// revives it, which closure-local stop latches could never survive.
func (e *Engine) Every(d Time, fn func()) (cancel func()) {
	if d <= 0 {
		d = Nanosecond
	}
	ev := e.Schedule(e.now+d, fn)
	e.slots[ev.idx].period = d
	return ev.Cancel
}

// Halt stops the run: Run returns ErrHalted once the current event
// completes. Components call this to model system-wide death (e.g. the
// hypervisor's panic_stop bringing every CPU down).
func (e *Engine) Halt(reason string) {
	if !e.halted {
		e.halted = true
		e.haltMsg = reason
	}
}

// Halted reports whether Halt was called, and the recorded reason.
func (e *Engine) Halted() (bool, string) { return e.halted, e.haltMsg }

// removeRoot removes the heap minimum (the entry itself, not the slot).
func (e *Engine) removeRoot() {
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
}

// free returns a slot to the free list, invalidating outstanding handles.
func (e *Engine) free(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.period = 0
	s.gen++
	e.freeList = append(e.freeList, idx)
}

// rearm re-keys a delivered periodic slot to now+period with a fresh
// sequence number — drawn after the callback ran, matching the seq the
// old closure-based Every consumed when it rescheduled itself. The slot
// was left at the heap root during the callback (nothing the callback can
// schedule sorts before an already-due event, so the root cannot move),
// which makes the re-arm an in-place key update plus one sift-down
// instead of a remove/re-push pair. A halt during the callback, or a
// cancel through the timer's handle, frees the slot instead: the chain
// ends exactly where the closure latch ended it.
func (e *Engine) rearm(idx int32) {
	s := &e.slots[idx]
	pos := 0
	if len(e.heap) == 0 || e.heap[0].idx != idx {
		// Defensive: the callback re-entered the scheduler in a way that
		// displaced the root. Locate the slot the slow way.
		pos = -1
		for i := range e.heap {
			if e.heap[i].idx == idx {
				pos = i
				break
			}
		}
		if pos < 0 {
			return
		}
	}
	if e.halted || s.canceled {
		e.removeAt(pos)
		e.free(idx)
		return
	}
	s.when = e.now + s.period
	s.seq = e.seq
	e.seq++
	e.heap[pos] = heapEnt{when: s.when, seq: s.seq, idx: idx}
	// The key only grew, so sifting down restores the heap invariant.
	e.siftDown(pos)
}

// removeAt removes the heap entry at pos.
func (e *Engine) removeAt(pos int) {
	last := len(e.heap) - 1
	e.heap[pos] = e.heap[last]
	e.heap = e.heap[:last]
	if pos < last {
		e.siftDown(pos)
		e.siftUp(pos)
	}
}

// Run executes events in order until the queue is empty, the horizon is
// passed, or the engine is halted. The engine's clock ends at exactly
// horizon when the horizon is reached normally.
//
// A bounded-progress watchdog counts events executed without virtual time
// advancing; past the wedge limit the run halts with a "machine wedge"
// reason instead of spinning forever — the simulation analogue of a
// livelocked board that a hardware watchdog would reset. The counters are
// locals, so the watchdog adds no run state and cannot perturb digests.
func (e *Engine) Run(horizon Time) error {
	sameInstant := 0
	lastNow := e.now
	for len(e.heap) > 0 {
		if e.halted {
			return fmt.Errorf("%w at %v: %s", ErrHalted, e.now, e.haltMsg)
		}
		top := e.heap[0]
		if top.when > horizon {
			break
		}
		s := &e.slots[top.idx]
		if s.canceled {
			e.removeRoot()
			e.free(top.idx)
			continue
		}
		e.now = top.when
		if s.period > 0 {
			// Periodic: the slot stays at the root while its callback
			// runs; rearm re-keys it in place.
			s.fn()
			e.rearm(top.idx)
		} else {
			// One-shot: freed before the callback runs, so a callback
			// that schedules may reuse the very slot being delivered.
			fn := s.fn
			e.removeRoot()
			e.free(top.idx)
			fn()
		}
		e.executed++
		if e.now != lastNow {
			lastNow = e.now
			sameInstant = 0
		} else if sameInstant++; e.wedgeLimit > 0 && sameInstant >= e.wedgeLimit {
			e.trace.Addf(e.now, KindWedge, -1,
				"machine wedge: %d events without time advancing", Int(int64(sameInstant)))
			e.Halt(fmt.Sprintf("machine wedge: %d events without time advancing at %v", sameInstant, e.now))
		}
	}
	if e.halted {
		return fmt.Errorf("%w at %v: %s", ErrHalted, e.now, e.haltMsg)
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Step executes exactly one pending event (skipping canceled ones) and
// reports whether an event ran. Used by tests that need fine-grained
// control over interleaving.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		top := e.heap[0]
		s := &e.slots[top.idx]
		if s.canceled {
			e.removeRoot()
			e.free(top.idx)
			continue
		}
		e.now = top.when
		if s.period > 0 {
			s.fn()
			e.rearm(top.idx)
		} else {
			fn := s.fn
			e.removeRoot()
			e.free(top.idx)
			fn()
		}
		e.executed++
		return true
	}
	return false
}

// EngineSnapshot is a deep copy of the scheduler at one instant: clock,
// sequence counter, the whole event slab (callbacks included — closures
// are captured by reference, which is safe because every closure a boot
// schedules references the machine object the snapshot belongs to), the
// free list, the heap order and the trace contents. It is immutable after
// capture and may be restored into its engine any number of times.
type EngineSnapshot struct {
	now      Time
	seq      uint64
	slots    []slot
	freeList []int32
	heap     []heapEnt
	trace    traceSnapshot
}

// CaptureSnapshot deep-copies the engine's scheduler and trace state.
// The snapshot belongs to this engine: slot callbacks are closures over
// the machine that scheduled them, so restoring it into a different
// engine would resurrect events that mutate the wrong machine.
func (e *Engine) CaptureSnapshot() *EngineSnapshot {
	s := &EngineSnapshot{now: e.now, seq: e.seq}
	s.slots = append([]slot(nil), e.slots...)
	s.freeList = append([]int32(nil), e.freeList...)
	s.heap = append([]heapEnt(nil), e.heap...)
	e.trace.capture(&s.trace)
	return s
}

// RestoreSnapshot rewinds the engine to a captured state and reseeds the
// RNG, reusing the live slab/heap/trace buffers. Slot generations are
// restored exactly, so Event handles held inside snapshotted closures
// (periodic-timer cancels, watchdog handles) remain valid after the
// restore; handles minted after the capture are invalidated. halted and
// the executed counter reset as Reset would — they are run products, not
// boot products.
func (e *Engine) RestoreSnapshot(s *EngineSnapshot, seed uint64) {
	e.now, e.seq = s.now, s.seq
	e.halted, e.haltMsg = false, ""
	e.executed = 0
	// Slots the run added beyond the snapshot's slab retain closures (and
	// whatever those closures capture); zero them before truncating so the
	// copy-back cannot pin dead run state.
	for i := len(s.slots); i < len(e.slots); i++ {
		e.slots[i] = slot{}
	}
	e.slots = append(e.slots[:0], s.slots...)
	e.freeList = append(e.freeList[:0], s.freeList...)
	e.heap = append(e.heap[:0], s.heap...)
	e.rng.Reseed(seed)
	e.trace.restore(&s.trace)
}

// Executed returns the number of events delivered since the last Reset.
// Diagnostic only — the flight recorder's sim-event throughput source.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently queued, including
// canceled-but-unpopped ones. Diagnostic only.
func (e *Engine) Pending() int { return len(e.heap) }
