package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrHalted is returned by Run when the machine was halted by a component
// (for example after a system-wide hypervisor panic) before the requested
// horizon was reached. Reaching the horizon normally is not an error.
var ErrHalted = errors.New("sim: engine halted")

// Event is a scheduled callback. The callback runs with the engine's
// current virtual time equal to the event deadline.
type Event struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among same-instant events
	fn   func()
	// canceled events stay in the heap but are skipped when popped;
	// this keeps cancellation O(1).
	canceled bool
	idx      int
}

// Cancel prevents a pending event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is the deterministic event loop that drives one simulated machine.
// It is not safe for concurrent use; one goroutine owns one engine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *RNG
	trace   *Trace
	halted  bool
	haltMsg string
}

// NewEngine returns an engine at time zero with the given seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:   NewRNG(seed),
		trace: NewTrace(),
	}
}

// Now returns current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Trace returns the engine's event trace.
func (e *Engine) Trace() *Trace { return e.trace }

// Schedule enqueues fn to run at absolute virtual time when. Times in the
// past are clamped to "now" (the event still runs, after already-queued
// events for the current instant). The returned handle can cancel it.
func (e *Engine) Schedule(when Time, fn func()) *Event {
	if when < e.now {
		when = e.now
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After enqueues fn to run d after the current instant.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn at now+d, then every d thereafter, until the returned
// cancel function is called or the engine halts.
func (e *Engine) Every(d Time, fn func()) (cancel func()) {
	if d <= 0 {
		d = Nanosecond
	}
	stopped := false
	var current *Event
	var tick func()
	tick = func() {
		if stopped || e.halted {
			return
		}
		fn()
		if !stopped && !e.halted {
			current = e.After(d, tick)
		}
	}
	current = e.After(d, tick)
	return func() {
		stopped = true
		current.Cancel()
	}
}

// Halt stops the run: Run returns ErrHalted once the current event
// completes. Components call this to model system-wide death (e.g. the
// hypervisor's panic_stop bringing every CPU down).
func (e *Engine) Halt(reason string) {
	if !e.halted {
		e.halted = true
		e.haltMsg = reason
	}
}

// Halted reports whether Halt was called, and the recorded reason.
func (e *Engine) Halted() (bool, string) { return e.halted, e.haltMsg }

// Run executes events in order until the queue is empty, the horizon is
// passed, or the engine is halted. The engine's clock ends at exactly
// horizon when the horizon is reached normally.
func (e *Engine) Run(horizon Time) error {
	for len(e.queue) > 0 {
		if e.halted {
			return fmt.Errorf("%w at %v: %s", ErrHalted, e.now, e.haltMsg)
		}
		next := e.queue[0]
		if next.when > horizon {
			break
		}
		popped, ok := heap.Pop(&e.queue).(*Event)
		if !ok {
			continue
		}
		if popped.canceled {
			continue
		}
		e.now = popped.when
		popped.fn()
	}
	if e.halted {
		return fmt.Errorf("%w at %v: %s", ErrHalted, e.now, e.haltMsg)
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Step executes exactly one pending event (skipping canceled ones) and
// reports whether an event ran. Used by tests that need fine-grained
// control over interleaving.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		popped, ok := heap.Pop(&e.queue).(*Event)
		if !ok || popped.canceled {
			continue
		}
		e.now = popped.when
		popped.fn()
		return true
	}
	return false
}

// Pending returns the number of events currently queued, including
// canceled-but-unpopped ones. Diagnostic only.
func (e *Engine) Pending() int { return len(e.queue) }
