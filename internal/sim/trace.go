package sim

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Kind classifies trace records so analytics can filter cheaply.
type Kind uint8

// Trace record kinds. They cover every observable the paper's test
// framework collected from the serial line plus hypervisor-internal
// events the real rig could not see (useful for debugging the rig itself).
const (
	KindBoot Kind = iota + 1
	KindUART
	KindIRQ
	KindTrap
	KindHypercall
	KindInjection
	KindCellEvent
	KindPanic
	KindPark
	KindLED
	KindTask
	KindNote
)

var kindNames = map[Kind]string{
	KindBoot:      "BOOT",
	KindUART:      "UART",
	KindIRQ:       "IRQ",
	KindTrap:      "TRAP",
	KindHypercall: "HVC",
	KindInjection: "INJECT",
	KindCellEvent: "CELL",
	KindPanic:     "PANIC",
	KindPark:      "PARK",
	KindLED:       "LED",
	KindTask:      "TASK",
	KindNote:      "NOTE",
}

// String returns the short uppercase tag for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// Record is one timestamped trace entry.
type Record struct {
	At   Time
	Kind Kind
	CPU  int // -1 when not CPU-specific
	Msg  string
}

// String renders the record in the log style used throughout the repo.
func (r Record) String() string {
	cpu := "  -"
	if r.CPU >= 0 {
		cpu = fmt.Sprintf("cpu%d", r.CPU)
	}
	return fmt.Sprintf("%s %-6s %s %s", r.At, r.Kind, cpu, r.Msg)
}

// Trace accumulates records for one run. It is deliberately append-only;
// classifiers and analytics read it after the run completes.
type Trace struct {
	records []Record
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Add appends a record.
func (t *Trace) Add(at Time, kind Kind, cpu int, format string, args ...any) {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	t.records = append(t.records, Record{At: at, Kind: kind, CPU: cpu, Msg: msg})
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.records) }

// Records returns a copy of all records (copy keeps callers from mutating
// the trace; traces are small relative to run cost).
func (t *Trace) Records() []Record {
	out := make([]Record, len(t.records))
	copy(out, t.records)
	return out
}

// Filter returns records of the given kind, in order.
func (t *Trace) Filter(kind Kind) []Record {
	var out []Record
	for _, r := range t.records {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// Count returns how many records have the given kind.
func (t *Trace) Count(kind Kind) int {
	n := 0
	for _, r := range t.records {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

// CountsByKind returns a map kind → record count.
func (t *Trace) CountsByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, r := range t.records {
		m[r.Kind]++
	}
	return m
}

// Contains reports whether any record's message contains substr.
func (t *Trace) Contains(substr string) bool {
	for _, r := range t.records {
		if strings.Contains(r.Msg, substr) {
			return true
		}
	}
	return false
}

// Hash returns a stable FNV-1a digest of the full trace. Two runs with the
// same seed and configuration must produce identical hashes; the
// determinism property tests rely on this.
func (t *Trace) Hash() uint64 {
	h := fnv.New64a()
	for _, r := range t.records {
		fmt.Fprintf(h, "%d|%d|%d|%s\n", r.At, r.Kind, r.CPU, r.Msg)
	}
	return h.Sum64()
}

// Dump renders the whole trace as a multi-line string, optionally limited
// to the given kinds (no kinds = everything).
func (t *Trace) Dump(kinds ...Kind) string {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var b strings.Builder
	for _, r := range t.records {
		if len(kinds) == 0 || want[r.Kind] {
			b.WriteString(r.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Summary renders "KIND=count" pairs sorted by kind for quick inspection.
func (t *Trace) Summary() string {
	counts := t.CountsByKind()
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", Kind(k), counts[Kind(k)]))
	}
	return strings.Join(parts, " ")
}
