package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies trace records so analytics can filter cheaply.
type Kind uint8

// Trace record kinds. They cover every observable the paper's test
// framework collected from the serial line plus hypervisor-internal
// events the real rig could not see (useful for debugging the rig itself).
const (
	KindBoot Kind = iota + 1
	KindUART
	KindIRQ
	KindTrap
	KindHypercall
	KindInjection
	KindCellEvent
	KindPanic
	KindPark
	KindLED
	KindTask
	KindNote
	KindHypTrap
	KindWedge
)

var kindNames = map[Kind]string{
	KindBoot:      "BOOT",
	KindUART:      "UART",
	KindIRQ:       "IRQ",
	KindTrap:      "TRAP",
	KindHypercall: "HVC",
	KindInjection: "INJECT",
	KindCellEvent: "CELL",
	KindPanic:     "PANIC",
	KindPark:      "PARK",
	KindLED:       "LED",
	KindTask:      "TASK",
	KindNote:      "NOTE",
	KindHypTrap:   "HVTRAP",
	KindWedge:     "WEDGE",
}

// String returns the short uppercase tag for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// argKind discriminates the typed argument union.
type argKind uint8

const (
	argInt argKind = iota
	argUint
	argStr
)

// Arg is one deferred format argument. Args are small typed values stored
// unboxed in the trace's argument arena, so recording them costs no heap
// allocation; they are only converted for fmt when a record is rendered.
type Arg struct {
	s string
	n uint64
	k argKind
}

// Int wraps a signed integer argument (for %d, %x, %v of ints).
func Int(v int64) Arg { return Arg{n: uint64(v), k: argInt} }

// Uint wraps an unsigned integer argument (for %d, %#x of uints).
func Uint(v uint64) Arg { return Arg{n: v, k: argUint} }

// Str wraps a string argument (for %s, %q, or pre-rendered %v values).
func Str(s string) Arg { return Arg{s: s, k: argStr} }

// value returns the boxed fmt operand. Only called on the render path.
func (a Arg) value() any {
	switch a.k {
	case argInt:
		return int64(a.n)
	case argUint:
		return a.n
	default:
		return a.s
	}
}

// Record is one timestamped trace entry.
type Record struct {
	At   Time
	Kind Kind
	CPU  int // -1 when not CPU-specific
	Msg  string
}

// String renders the record in the log style used throughout the repo.
func (r Record) String() string {
	cpu := "  -"
	if r.CPU >= 0 {
		cpu = fmt.Sprintf("cpu%d", r.CPU)
	}
	return fmt.Sprintf("%s %-6s %s %s", r.At, r.Kind, cpu, r.Msg)
}

// record is the internal, compact form: formatting is deferred — the
// format string and typed args are kept and only rendered (once, cached)
// when somebody actually reads the message.
type record struct {
	at Time
	// text is the rendered message when rendered is set, otherwise the
	// pending format string. One field for both keeps the record at 40
	// bytes, which matters: the arena holds tens of thousands of records
	// and every append crosses the write barrier once per string field.
	text     string
	argPos   uint32 // index into Trace.args
	argN     uint16
	kind     Kind
	cpu      int16
	rendered bool
}

// Trace accumulates records for one run. It is deliberately append-only;
// classifiers and analytics read it after the run completes. Records store
// their format string and small typed args instead of a rendered message,
// so the per-event hot path performs no fmt work and no allocation beyond
// the amortised growth of the reusable record/argument buffers.
type Trace struct {
	recs []record
	args []Arg

	// Incremental hash state. hstate is the running FNV-1a digest over
	// records [0, hashed); Hash folds the remainder on demand. When
	// incremental is set (SetIncrementalHash), every append folds its
	// record immediately, so end-of-run hashing is O(1) and no rendered
	// message string is ever allocated for hash-only readers.
	hstate      uint64
	hashed      int
	incremental bool
	hbuf        []byte // reusable per-record hash line buffer
	argv        []any  // reusable boxed-operand scratch for fmt.Appendf

	// lastSnap identifies the snapshot whose content is the current
	// prefix of this trace. The trace is append-only between Resets, so
	// while lastSnap matches, restoring that snapshot is a truncation —
	// no prefix copy. Reset and a restore from a different snapshot
	// clear/replace it.
	lastSnap *traceSnapshot
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{hstate: fnvOffset64} }

// Grow pre-sizes the record and argument arenas to hold at least recs
// records and args arguments without reallocating — the plan-profile
// hint campaign runs pass in so a cold machine build performs one
// arena allocation per buffer instead of a doubling cascade (and its
// copies) as the run's events stream in. Existing contents are kept;
// a smaller-than-current hint is a no-op, so warm (reused) traces
// never shrink.
func (t *Trace) Grow(recs, args int) {
	if recs > cap(t.recs) {
		grown := make([]record, len(t.recs), recs)
		copy(grown, t.recs)
		t.recs = grown
	}
	if args > cap(t.args) {
		grown := make([]Arg, len(t.args), args)
		copy(grown, t.args)
		t.args = grown
	}
}

// Reset empties the trace while keeping its buffers for reuse.
func (t *Trace) Reset() {
	for i := range t.recs {
		t.recs[i] = record{} // release retained strings
	}
	for i := range t.args {
		t.args[i] = Arg{}
	}
	t.recs = t.recs[:0]
	t.args = t.args[:0]
	t.hstate = fnvOffset64
	t.hashed = 0
	t.incremental = false
	t.lastSnap = nil
}

// traceSnapshot is a deep copy of a trace's contents and running digest
// at one instant, captured into an EngineSnapshot so a machine restore
// rewinds the trace to its post-boot prefix instead of replaying it.
type traceSnapshot struct {
	recs   []record
	args   []Arg
	hstate uint64
	hashed int
}

// capture deep-copies the trace into s (reusing s's buffers). The trace
// content now equals the snapshot's, so s becomes the truncation anchor.
func (t *Trace) capture(s *traceSnapshot) {
	s.recs = append(s.recs[:0], t.recs...)
	s.args = append(s.args[:0], t.args...)
	s.hstate = t.hstate
	s.hashed = t.hashed
	t.lastSnap = s
}

// restore rewinds the trace to a captured prefix, keeping live buffers.
// When the snapshot is the one this trace's prefix already derives from
// (the steady state of a pooled machine restoring the same post-boot
// image run after run), the prefix is untouched — records are append-only
// between Resets, and render()'s in-place message caching is
// semantics-preserving — so the restore is a truncation with no copy.
// Records and args the run appended beyond the snapshot are zeroed (past
// the new length, within capacity) so their rendered strings are
// released. Incremental hashing is switched off, exactly as Reset does:
// the run harness re-enables it per run when it wants hash-on-append.
func (t *Trace) restore(s *traceSnapshot) {
	oldRecs, oldArgs := len(t.recs), len(t.args)
	if t.lastSnap == s && oldRecs >= len(s.recs) && oldArgs >= len(s.args) {
		t.recs = t.recs[:len(s.recs)]
		t.args = t.args[:len(s.args)]
	} else {
		t.recs = append(t.recs[:0], s.recs...)
		t.args = append(t.args[:0], s.args...)
		t.lastSnap = s
	}
	for i := len(t.recs); i < oldRecs; i++ {
		t.recs[:oldRecs][i] = record{}
	}
	for i := len(t.args); i < oldArgs; i++ {
		t.args[:oldArgs][i] = Arg{}
	}
	t.hstate = s.hstate
	t.hashed = s.hashed
	t.incremental = false
}

// Add appends a record whose message needs no formatting.
func (t *Trace) Add(at Time, kind Kind, cpu int, msg string) {
	t.recs = append(t.recs, record{
		at: at, text: msg, kind: kind, cpu: int16(cpu), rendered: true,
	})
	if t.incremental {
		t.foldTo(len(t.recs))
	}
}

// Addf appends a record with deferred formatting: format and args are
// stored as-is and rendered only if Dump, Hash, Contains or a scan reads
// the message. args must render byte-identically to the values the call
// site would have passed to fmt.Sprintf (use Str(x.String()) for %v/%s of
// Stringers, Str(fmt.Sprint(x)) for exotic values).
func (t *Trace) Addf(at Time, kind Kind, cpu int, format string, args ...Arg) {
	if len(args) == 0 {
		t.Add(at, kind, cpu, format)
		return
	}
	pos := uint32(len(t.args))
	t.args = append(t.args, args...)
	t.recs = append(t.recs, record{
		at: at, text: format, argPos: pos, argN: uint16(len(args)),
		kind: kind, cpu: int16(cpu),
	})
	if t.incremental {
		t.foldTo(len(t.recs))
	}
}

// render materialises (and caches) the message of record i.
func (t *Trace) render(i int) string {
	r := &t.recs[i]
	if r.rendered {
		return r.text
	}
	if r.argN > 0 {
		av := make([]any, r.argN)
		for j := range av {
			av[j] = t.args[int(r.argPos)+j].value()
		}
		r.text = fmt.Sprintf(r.text, av...)
	}
	r.rendered = true
	return r.text
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.recs) }

// at builds the public view of record i, rendering its message.
func (t *Trace) at(i int) Record {
	r := &t.recs[i]
	return Record{At: r.at, Kind: r.kind, CPU: int(r.cpu), Msg: t.render(i)}
}

// Scan visits every record in order without copying the trace. Return
// false from fn to stop early. Messages are rendered lazily (then cached),
// so scans that stop early pay only for what they read.
func (t *Trace) Scan(fn func(Record) bool) {
	for i := range t.recs {
		if !fn(t.at(i)) {
			return
		}
	}
}

// ScanMeta visits every record's metadata in order without rendering any
// message — the zero-cost path for readers that only need kinds and
// timestamps (e.g. detection-latency measurement). Return false to stop.
func (t *Trace) ScanMeta(fn func(at Time, kind Kind, cpu int) bool) {
	for i := range t.recs {
		r := &t.recs[i]
		if !fn(r.at, r.kind, int(r.cpu)) {
			return
		}
	}
}

// Records returns a copy of all records (copy keeps callers from mutating
// the trace). Prefer Scan/ScanMeta on hot paths; Records renders every
// message and clones the slice.
func (t *Trace) Records() []Record {
	out := make([]Record, len(t.recs))
	for i := range t.recs {
		out[i] = t.at(i)
	}
	return out
}

// Filter returns records of the given kind, in order.
func (t *Trace) Filter(kind Kind) []Record {
	var out []Record
	for i := range t.recs {
		if t.recs[i].kind == kind {
			out = append(out, t.at(i))
		}
	}
	return out
}

// Count returns how many records have the given kind.
func (t *Trace) Count(kind Kind) int {
	n := 0
	for i := range t.recs {
		if t.recs[i].kind == kind {
			n++
		}
	}
	return n
}

// CountsByKind returns a map kind → record count.
func (t *Trace) CountsByKind() map[Kind]int {
	m := make(map[Kind]int)
	for i := range t.recs {
		m[t.recs[i].kind]++
	}
	return m
}

// Contains reports whether any record's message contains substr.
func (t *Trace) Contains(substr string) bool {
	for i := range t.recs {
		if strings.Contains(t.render(i), substr) {
			return true
		}
	}
	return false
}

// FNV-1a 64-bit parameters (identical to hash/fnv, kept inline so the
// running digest is a plain uint64 the trace can carry between appends).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// SetIncrementalHash switches the trace to maintaining its digest on
// append. Enabling folds every record already present (rendering them
// once), then each Add/Addf folds its own record as it lands, so Hash
// becomes a constant-time read at end of run — the render pass the
// streaming-artefact campaigns used to pay per run disappears. Records
// folded on append are formatted straight into the hash buffer; their
// deferred format/args stay in place, so later Dump/Scan reads still
// work. Reset disables incremental mode again.
func (t *Trace) SetIncrementalHash(on bool) {
	t.incremental = on
	if on {
		t.foldTo(len(t.recs))
	}
}

// foldTo folds records [hashed, upTo) into the running digest. The byte
// stream is identical to the eager full-trace hash: FNV-1a is a
// sequential fold, so hashing a prefix and continuing later equals
// hashing the whole stream at once.
func (t *Trace) foldTo(upTo int) {
	h := t.hstate
	for i := t.hashed; i < upTo; i++ {
		r := &t.recs[i]
		buf := t.hbuf[:0]
		buf = strconv.AppendInt(buf, int64(r.at), 10)
		buf = append(buf, '|')
		buf = strconv.AppendUint(buf, uint64(r.kind), 10)
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(r.cpu), 10)
		buf = append(buf, '|')
		switch {
		case r.rendered || r.argN == 0:
			buf = append(buf, r.text...)
		default:
			// Format straight into the hash buffer: byte-identical to
			// render()'s fmt.Sprintf, but no message string is retained.
			argv := t.argv[:0]
			for j := 0; j < int(r.argN); j++ {
				argv = append(argv, t.args[int(r.argPos)+j].value())
			}
			buf = fmt.Appendf(buf, r.text, argv...)
			for j := range argv {
				argv[j] = nil // drop boxed values, keep capacity
			}
			t.argv = argv[:0]
		}
		buf = append(buf, '\n')
		t.hbuf = buf
		for _, b := range buf {
			h ^= uint64(b)
			h *= fnvPrime64
		}
	}
	t.hstate = h
	t.hashed = upTo
}

// Hash returns a stable FNV-1a digest of the full trace. Two runs with the
// same seed and configuration must produce identical hashes; the
// determinism property tests rely on this. The digest is computed over the
// rendered records and is unchanged from the eager-formatting engine;
// records already folded (incremental mode or a previous Hash call) are
// not re-rendered.
func (t *Trace) Hash() uint64 {
	t.foldTo(len(t.recs))
	return t.hstate
}

// Dump renders the whole trace as a multi-line string, optionally limited
// to the given kinds (no kinds = everything).
func (t *Trace) Dump(kinds ...Kind) string {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var b strings.Builder
	for i := range t.recs {
		if len(kinds) == 0 || want[t.recs[i].kind] {
			b.WriteString(t.at(i).String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Summary renders "KIND=count" pairs sorted by kind for quick inspection.
func (t *Trace) Summary() string {
	counts := t.CountsByKind()
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", Kind(k), counts[Kind(k)]))
	}
	return strings.Join(parts, " ")
}
