package sim

// RNG is a small, fast, reproducible pseudo-random generator
// (xoshiro256** seeded through SplitMix64). The framework does not use
// math/rand so that experiment outcomes stay stable across Go releases:
// a campaign seed recorded in EXPERIMENTS.md must replay bit-identically
// forever.
type RNG struct {
	s [4]uint64
}

// SplitMix64 advances *state and returns the next SplitMix64 output.
// It is exported because campaign runners use it to derive independent
// per-run seeds from a single master seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed via SplitMix64, per the
// xoshiro authors' recommendation. Any seed, including zero, is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed rewinds the generator to the stream derived from seed, exactly
// as NewRNG(seed) would. Engine reuse between campaign runs relies on
// this to recycle the generator without allocating.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17

	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	// Lemire's multiply-shift rejection method, 64-bit variant reduced to
	// the range we need; bias is negligible for the small n used here but
	// we reject anyway to keep distributions exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Pick returns a uniformly chosen element index weighted by weights.
// Zero-total weights fall back to index 0.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
