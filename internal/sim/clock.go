// Package sim provides the deterministic discrete-event simulation kernel
// underlying every experiment in the certify framework.
//
// A single goroutine owns an Engine. Components (CPUs, devices, guests)
// schedule callbacks on the engine's event queue, keyed by virtual time with
// sequence-number tie-breaking, so a run is a pure function of its inputs and
// its 64-bit seed. Campaign-level parallelism happens across independent
// engines, never inside one.
package sim

import (
	"fmt"
	"time"
)

// Time is virtual time in nanoseconds since machine power-on.
//
// Virtual time is completely decoupled from wall-clock time: a 60-second
// experiment completes in milliseconds of host time.
type Time int64

// Common virtual durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Duration converts a virtual timespan to a time.Duration for reporting.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String renders the virtual instant with millisecond precision, in the
// bracketed style kernel logs use, e.g. "[    1.042]".
func (t Time) String() string {
	return fmt.Sprintf("[%5d.%03d]", int64(t/Second), int64(t%Second)/int64(Millisecond))
}

// After reports the virtual instant d past t.
func (t Time) After(d Time) Time { return t + d }
