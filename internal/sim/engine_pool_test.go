package sim

import "testing"

// The pooled event slab recycles slots aggressively: a popped or canceled
// event's slot may be handed to the very next Schedule. These tests pin
// the safety properties of that reuse.

func TestPoolCancelThenReuseKeepsHandlesStale(t *testing.T) {
	e := NewEngine(1)
	aRan, bRan := false, false
	a := e.Schedule(10, func() { aRan = true })
	a.Cancel()
	if err := e.Run(20); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if aRan {
		t.Fatal("canceled event ran")
	}
	// The canceled event's slot is free now; the next schedule reuses it.
	b := e.Schedule(30, func() { bRan = true })
	// A stale cancel through the old handle must NOT kill the new event,
	// even though both handles may point at the same slab slot.
	a.Cancel()
	if err := e.Run(40); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bRan {
		t.Fatal("slot-reusing event was killed by a stale handle")
	}
	// Canceling b after it fired is a no-op too.
	b.Cancel()
}

func TestPoolSameInstantFIFOAcrossSlabReuse(t *testing.T) {
	e := NewEngine(1)
	var got []int
	// First wave populates and then frees a pile of slots.
	for i := 0; i < 8; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	if err := e.Run(6); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Second wave reuses the freed slots (in whatever free-list order);
	// FIFO among same-instant events must still hold because ordering is
	// by sequence number, not slot index.
	got = got[:0]
	for i := 0; i < 8; i++ {
		i := i
		e.Schedule(10, func() { got = append(got, i) })
	}
	if err := e.Run(20); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant order after slab reuse = %v, want ascending", got)
		}
	}
}

func TestPoolEveryCancellationAfterHalt(t *testing.T) {
	e := NewEngine(1)
	n := 0
	cancel := e.Every(10, func() { n++ })
	e.Schedule(25, func() { e.Halt("panic_stop") })
	_ = e.Run(1000)
	if n != 2 {
		t.Fatalf("ticks before halt = %d, want 2", n)
	}
	// Canceling the periodic chain after the engine halted must be a
	// safe no-op (the pending tick's slot may already be stale or even
	// reused on a later reset).
	cancel()
	cancel()
	if halted, _ := e.Halted(); !halted {
		t.Fatal("engine should stay halted")
	}
}

func TestPoolScheduleFromCallbackReusesDeliveredSlot(t *testing.T) {
	e := NewEngine(1)
	order := []int{}
	// The delivered event's slot is freed before its callback runs, so a
	// schedule from inside the callback may land in the same slot. The
	// rescheduled event must still fire normally.
	e.Schedule(10, func() {
		order = append(order, 1)
		e.Schedule(20, func() { order = append(order, 2) })
	})
	if err := e.Run(30); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestEngineResetRecyclesStateAndInvalidatesHandles(t *testing.T) {
	e := NewEngine(7)
	ran := false
	stale := e.Schedule(10, func() { ran = true })
	e.Trace().Add(5, KindNote, 0, "pre-reset record")
	firstDraw := e.RNG().Uint64()

	e.Reset(7)
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d", e.Now(), e.Pending())
	}
	if e.Trace().Len() != 0 {
		t.Fatalf("after Reset: trace has %d records", e.Trace().Len())
	}
	// Same seed ⇒ same RNG stream from the top.
	if got := e.RNG().Uint64(); got != firstDraw {
		t.Fatalf("RNG after Reset = %#x, want %#x", got, firstDraw)
	}
	// A handle from before the reset must not cancel post-reset events.
	ran2 := false
	e.Schedule(10, func() { ran2 = true })
	stale.Cancel()
	if err := e.Run(20); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("pre-reset event survived the reset")
	}
	if !ran2 {
		t.Fatal("stale pre-reset handle canceled a post-reset event")
	}
}

func TestScheduleIsAllocationFreeInSteadyState(t *testing.T) {
	e := NewEngine(3)
	fn := func() {}
	// Warm the slab.
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), fn)
	}
	if err := e.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %.1f objects/op, want 0", avg)
	}
}
