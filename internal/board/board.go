// Package board models the paper's test hardware: a Banana Pi M1
// (Allwinner A20 SoC — two Cortex-A7 cores, 1 GiB DRAM, 16550-class
// UARTs, a GIC-400 interrupt controller and the LED GPIO bank). The board
// is a passive substrate: the hypervisor and guests drive the CPUs; the
// board provides the physical address map, the devices and per-CPU timers.
package board

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/gic"
	"github.com/dessertlab/certify/internal/gpio"
	"github.com/dessertlab/certify/internal/memmap"
	"github.com/dessertlab/certify/internal/sim"
	"github.com/dessertlab/certify/internal/uart"
)

// Physical address map of the modelled Allwinner A20.
const (
	DRAMBase uint64 = 0x4000_0000
	DRAMSize uint64 = 1 << 30 // 1 GiB

	GPIOBase  uint64 = 0x01C2_0800
	GPIOSize  uint64 = 0x400
	UART0Base uint64 = 0x01C2_8000 // root cell console
	UART7Base uint64 = 0x01C2_9C00 // non-root cell console ("USART" in the paper)
	GICDBase  uint64 = 0x01C8_1000 // distributor (trap-and-emulate for cells)
	GICCBase  uint64 = 0x01C8_2000 // CPU interface
)

// Interrupt lines on the modelled SoC.
const (
	IRQUart0 = 33
	IRQUart7 = 52
)

// NumCPUs is the Banana Pi M1's core count.
const NumCPUs = 2

// mmioRange maps a physical window to device handlers.
type mmioRange struct {
	name  string
	base  uint64
	size  uint64
	read  func(cpu int, off uint64) (uint32, error)
	write func(cpu int, off uint64, v uint32) error
}

// BusFault reports a physical access that hit no device and no RAM —
// an external abort on real hardware.
type BusFault struct {
	Addr  uint64
	Write bool
}

// Error implements error.
func (b *BusFault) Error() string {
	op := "read"
	if b.Write {
		op = "write"
	}
	return fmt.Sprintf("board: bus fault on %s at %#x", op, b.Addr)
}

// Timer is a per-CPU generic timer that raises the virtual-timer PPI.
type Timer struct {
	cancel func()
}

// Board is one simulated Banana Pi M1.
type Board struct {
	Engine *sim.Engine
	CPUs   []*armv7.CPU
	RAM    *memmap.RAM
	GIC    *gic.Distributor
	UART0  *uart.UART
	UART7  *uart.UART
	GPIO   *gpio.Port

	timers []Timer
	mmio   []mmioRange
}

// Scratch holds the reusable heavy buffers of a board — the engine (event
// slab, heap, trace) and the UART capture buffers. A campaign worker keeps
// one Scratch and threads it through consecutive board builds so each run
// recycles the previous run's allocations. Never share between goroutines.
type Scratch struct {
	Engine *sim.Engine
	UART0  *uart.UART
	UART7  *uart.UART
}

// Options tunes board assembly.
type Options struct {
	// Scratch, when non-nil, recycles buffers from a previous board. Empty
	// fields are populated on first use so the next build reuses them.
	Scratch *Scratch
	// NoByteCapture disables the UARTs' raw transmitted-byte logs (line
	// capture is unaffected). Distribution-mode campaigns set this.
	NoByteCapture bool
	// TraceRecordHint/TraceArgHint pre-size the engine trace's arenas
	// (sim.Trace.Grow) — the plan-profile capacity estimate. Zero means
	// no pre-sizing; a reused engine that already grew past the hint is
	// unaffected.
	TraceRecordHint int
	TraceArgHint    int
}

// New builds a powered-on board with the given deterministic seed.
func New(seed uint64) *Board {
	return NewWithOptions(seed, Options{})
}

// NewWithOptions builds a powered-on board, optionally recycling the
// reusable buffers held in opts.Scratch.
func NewWithOptions(seed uint64, opts Options) *Board {
	s := opts.Scratch
	if s == nil {
		s = &Scratch{} // throwaway: same create path, nothing recycled
	}
	if s.Engine == nil {
		s.Engine = sim.NewEngine(seed)
	} else {
		s.Engine.Reset(seed)
	}
	eng := s.Engine
	eng.Trace().Grow(opts.TraceRecordHint, opts.TraceArgHint)
	if s.UART0 == nil {
		s.UART0 = uart.New("uart0", eng.Now)
	} else {
		s.UART0.Reset("uart0", eng.Now)
	}
	if s.UART7 == nil {
		s.UART7 = uart.New("uart7", eng.Now)
	} else {
		s.UART7.Reset("uart7", eng.Now)
	}
	u0, u7 := s.UART0, s.UART7
	u0.SetCaptureBytes(!opts.NoByteCapture)
	u7.SetCaptureBytes(!opts.NoByteCapture)
	b := &Board{
		Engine: eng,
		RAM:    memmap.NewRAM(DRAMBase, DRAMSize),
		GIC:    gic.New(NumCPUs),
		UART0:  u0,
		UART7:  u7,
		GPIO:   gpio.New(eng.Now),
		timers: make([]Timer, NumCPUs),
	}
	for i := 0; i < NumCPUs; i++ {
		b.CPUs = append(b.CPUs, armv7.NewCPU(i))
	}
	b.addMMIO("uart0", UART0Base, uart.RegionSize,
		func(_ int, off uint64) (uint32, error) { return b.UART0.ReadReg(off) },
		func(_ int, off uint64, v uint32) error { return b.UART0.WriteReg(off, v) })
	b.addMMIO("uart7", UART7Base, uart.RegionSize,
		func(_ int, off uint64) (uint32, error) { return b.UART7.ReadReg(off) },
		func(_ int, off uint64, v uint32) error { return b.UART7.WriteReg(off, v) })
	b.addMMIO("gicd", GICDBase, gic.RegionSize,
		func(_ int, off uint64) (uint32, error) { return b.GIC.ReadReg(off) },
		func(cpu int, off uint64, v uint32) error { return b.GIC.WriteReg(off, v, cpu) })
	b.addMMIO("gpio", GPIOBase, GPIOSize,
		func(_ int, off uint64) (uint32, error) {
			if b.GPIO.Get(gpio.LEDGreen) {
				return 1, nil
			}
			return 0, nil
		},
		func(_ int, off uint64, v uint32) error {
			b.GPIO.Set(gpio.LEDGreen, v&1 != 0)
			return nil
		})
	return b
}

// DeepReset restores the whole board to its power-on state in place: the
// engine rewinds to time zero with the new seed, the UARTs, GIC, GPIO
// bank and RAM return to their reset state, every CPU goes back to its
// out-of-reset register file, and all timer programming is dropped. The
// MMIO routing is structural (it closes over the device objects, which
// survive) and needs no rebuild. Nothing is reallocated — this is the
// warm machine-reuse path, and its observable result must be
// indistinguishable from NewWithOptions (the differential determinism
// suite in internal/core holds it to that).
func (b *Board) DeepReset(seed uint64, opts Options) {
	b.Engine.Reset(seed)
	b.Engine.Trace().Grow(opts.TraceRecordHint, opts.TraceArgHint)
	b.UART0.Reset("uart0", b.Engine.Now)
	b.UART7.Reset("uart7", b.Engine.Now)
	b.UART0.SetCaptureBytes(!opts.NoByteCapture)
	b.UART7.SetCaptureBytes(!opts.NoByteCapture)
	b.RAM.Reset()
	b.GIC.Reset()
	b.GPIO.Reset(b.Engine.Now)
	for _, c := range b.CPUs {
		c.Reset()
	}
	for i := range b.timers {
		// The engine reset already dropped the events; the cancel
		// closures are stale and must not survive into the next run.
		b.timers[i] = Timer{}
	}
}

// Snapshot is a deep copy of the whole board at one instant: scheduler
// (events, clock, trace), RAM image, interrupt controller, both UARTs,
// the GPIO bank, every core and the timer bookkeeping. The timer cancel
// closures are Event handles into the engine slab; the engine snapshot
// restores slot generations exactly, so the captured closures remain
// valid after a restore.
type Snapshot struct {
	engine *sim.EngineSnapshot
	ram    *memmap.RAMSnapshot
	gic    *gic.Snapshot
	uart0  *uart.Snapshot
	uart7  *uart.Snapshot
	gpio   *gpio.Snapshot
	cpus   []*armv7.Snapshot
	timers []Timer
}

// RAMPages returns how many RAM pages the snapshot image holds.
func (s *Snapshot) RAMPages() int { return s.ram.Pages() }

// CaptureSnapshot deep-copies the board state and switches the RAM into
// dirty-page tracking so later restores copy back only touched pages.
func (b *Board) CaptureSnapshot() *Snapshot {
	s := &Snapshot{
		engine: b.Engine.CaptureSnapshot(),
		ram:    b.RAM.CaptureSnapshot(),
		gic:    b.GIC.CaptureSnapshot(),
		uart0:  b.UART0.CaptureSnapshot(),
		uart7:  b.UART7.CaptureSnapshot(),
		gpio:   b.GPIO.CaptureSnapshot(),
		timers: append([]Timer(nil), b.timers...),
	}
	for _, c := range b.CPUs {
		s.cpus = append(s.cpus, c.CaptureSnapshot())
	}
	return s
}

// RestoreSnapshot rewinds the board to a captured state with a fresh RNG
// seed, reusing every live buffer. Returns how many RAM pages the
// preceding run dirtied and how many the restore copied back — the
// flight recorder's dirty-page metrics. The observable result must be
// indistinguishable from a cold build followed by the same boot (the
// differential determinism suite in internal/core holds it to that).
func (b *Board) RestoreSnapshot(s *Snapshot, seed uint64) (dirtied, restored int) {
	b.Engine.RestoreSnapshot(s.engine, seed)
	dirtied, restored = b.RAM.RestoreSnapshot(s.ram)
	b.GIC.RestoreSnapshot(s.gic)
	b.UART0.RestoreSnapshot(s.uart0)
	b.UART7.RestoreSnapshot(s.uart7)
	b.GPIO.RestoreSnapshot(s.gpio)
	for i, c := range b.CPUs {
		c.RestoreSnapshot(s.cpus[i])
	}
	b.timers = append(b.timers[:0], s.timers...)
	return dirtied, restored
}

func (b *Board) addMMIO(name string, base, size uint64,
	read func(int, uint64) (uint32, error),
	write func(int, uint64, uint32) error) {
	b.mmio = append(b.mmio, mmioRange{name: name, base: base, size: size, read: read, write: write})
}

// DeviceAt returns the name of the device window covering addr, if any.
func (b *Board) DeviceAt(addr uint64) (string, bool) {
	for _, m := range b.mmio {
		if addr >= m.base && addr < m.base+m.size {
			return m.name, true
		}
	}
	return "", false
}

// Read32 performs a host-physical 32-bit read as seen by cpu.
func (b *Board) Read32(cpu int, addr uint64) (uint32, error) {
	for _, m := range b.mmio {
		if addr >= m.base && addr < m.base+m.size {
			return m.read(cpu, addr-m.base)
		}
	}
	if b.RAM.InRange(addr, 4) {
		return b.RAM.ReadWord(addr)
	}
	return 0, &BusFault{Addr: addr}
}

// Write32 performs a host-physical 32-bit write as seen by cpu.
func (b *Board) Write32(cpu int, addr uint64, v uint32) error {
	for _, m := range b.mmio {
		if addr >= m.base && addr < m.base+m.size {
			return m.write(cpu, addr-m.base, v)
		}
	}
	if b.RAM.InRange(addr, 4) {
		return b.RAM.WriteWord(addr, v)
	}
	return &BusFault{Addr: addr, Write: true}
}

// StartTimer programs cpu's generic timer to raise the virtual-timer PPI
// every period. Any previous programming is replaced.
func (b *Board) StartTimer(cpu int, period sim.Time) {
	b.StopTimer(cpu)
	if cpu < 0 || cpu >= NumCPUs {
		return
	}
	b.timers[cpu].cancel = b.Engine.Every(period, func() {
		_ = b.GIC.RaisePPI(cpu, gic.IRQVirtualTimer)
	})
}

// StopTimer cancels cpu's timer programming.
func (b *Board) StopTimer(cpu int) {
	if cpu < 0 || cpu >= NumCPUs {
		return
	}
	if b.timers[cpu].cancel != nil {
		b.timers[cpu].cancel()
		b.timers[cpu].cancel = nil
	}
}

// Trace returns the engine's trace, the board-wide event record.
func (b *Board) Trace() *sim.Trace { return b.Engine.Trace() }

// Now returns the current virtual time.
func (b *Board) Now() sim.Time { return b.Engine.Now() }
