package board

import (
	"errors"
	"testing"

	"github.com/dessertlab/certify/internal/gic"
	"github.com/dessertlab/certify/internal/gpio"
	"github.com/dessertlab/certify/internal/sim"
)

func TestNewBoardShape(t *testing.T) {
	b := New(1)
	if len(b.CPUs) != NumCPUs {
		t.Fatalf("cpu count = %d", len(b.CPUs))
	}
	if !b.CPUs[0].Online || b.CPUs[1].Online {
		t.Fatal("reset online state wrong (cpu0 on, cpu1 off)")
	}
	if b.RAM.Base() != DRAMBase || b.RAM.Size() != DRAMSize {
		t.Fatal("DRAM geometry wrong")
	}
}

func TestBusRAMAccess(t *testing.T) {
	b := New(1)
	if err := b.Write32(0, DRAMBase+0x100, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	v, err := b.Read32(0, DRAMBase+0x100)
	if err != nil || v != 0xCAFEBABE {
		t.Fatalf("RAM via bus = %#x, %v", v, err)
	}
}

func TestBusUARTAccess(t *testing.T) {
	b := New(1)
	for _, c := range []byte("hi\n") {
		if err := b.Write32(0, UART0Base, uint32(c)); err != nil {
			t.Fatal(err)
		}
	}
	if !b.UART0.Contains("hi") {
		t.Fatal("uart0 missed bus write")
	}
	if b.UART7.LineCount() != 0 {
		t.Fatal("uart7 saw uart0 traffic")
	}
}

func TestBusGICAccess(t *testing.T) {
	b := New(1)
	if err := b.Write32(0, GICDBase+gic.GICDCtlr, 1); err != nil {
		t.Fatal(err)
	}
	if !b.GIC.DistributorEnabled() {
		t.Fatal("GICD write via bus had no effect")
	}
	v, err := b.Read32(0, GICDBase+gic.GICDTyper)
	if err != nil || v == 0 {
		t.Fatalf("TYPER via bus = %#x, %v", v, err)
	}
}

func TestBusGPIOAccess(t *testing.T) {
	b := New(1)
	if err := b.Write32(0, GPIOBase, 1); err != nil {
		t.Fatal(err)
	}
	if !b.GPIO.Get(gpio.LEDGreen) {
		t.Fatal("LED write lost")
	}
	v, _ := b.Read32(0, GPIOBase)
	if v != 1 {
		t.Fatalf("LED readback = %d", v)
	}
}

func TestBusFault(t *testing.T) {
	b := New(1)
	_, err := b.Read32(0, 0x0800_0000)
	var bf *BusFault
	if !errors.As(err, &bf) || bf.Write {
		t.Fatalf("want read bus fault, got %v", err)
	}
	err = b.Write32(0, 0x0800_0000, 1)
	if !errors.As(err, &bf) || !bf.Write {
		t.Fatalf("want write bus fault, got %v", err)
	}
}

func TestDeviceAt(t *testing.T) {
	b := New(1)
	name, ok := b.DeviceAt(GICDBase + 0x100)
	if !ok || name != "gicd" {
		t.Fatalf("DeviceAt(GICD) = %q %v", name, ok)
	}
	if _, ok := b.DeviceAt(DRAMBase); ok {
		t.Fatal("RAM misreported as device")
	}
}

func TestTimerRaisesPPI(t *testing.T) {
	b := New(1)
	b.GIC.EnableDistributor(true)
	b.GIC.EnableCPUInterface(1, true)
	b.GIC.EnableIRQ(gic.IRQVirtualTimer)

	ticks := 0
	b.GIC.DeliverHook = func(cpu, irq int) {
		if cpu == 1 && irq == gic.IRQVirtualTimer {
			ticks++
			b.GIC.ClearCPU(1) // consume so the level stays clean
		}
	}
	b.StartTimer(1, sim.Millisecond)
	if err := b.Engine.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	b.StopTimer(1)
	before := ticks
	if err := b.Engine.Run(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != before {
		t.Fatal("timer survived StopTimer")
	}
}

func TestTimerReprogramReplaces(t *testing.T) {
	b := New(1)
	b.GIC.EnableDistributor(true)
	b.GIC.EnableCPUInterface(0, true)
	b.GIC.EnableIRQ(gic.IRQVirtualTimer)
	n := 0
	b.GIC.DeliverHook = func(cpu, irq int) { n++; b.GIC.ClearCPU(0) }
	b.StartTimer(0, sim.Millisecond)
	b.StartTimer(0, 10*sim.Millisecond) // replaces the 1 ms programming
	_ = b.Engine.Run(30 * sim.Millisecond)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3 (10ms period)", n)
	}
	// Out-of-range CPUs are inert.
	b.StartTimer(99, sim.Millisecond)
	b.StopTimer(-1)
}

func TestDeterministicBoardBuild(t *testing.T) {
	a, b := New(42), New(42)
	_ = a.Write32(0, DRAMBase, 1)
	_ = b.Write32(0, DRAMBase, 1)
	if a.Engine.RNG().Uint64() != b.Engine.RNG().Uint64() {
		t.Fatal("same-seed boards diverged")
	}
}
