package memmap

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegionContainsTranslate(t *testing.T) {
	r := Region{Phys: 0x4000_0000, Virt: 0x0, Size: 0x1000, Flags: FlagRead | FlagWrite}
	if !r.Contains(0) || !r.Contains(0xFFF) {
		t.Fatal("Contains failed inside region")
	}
	if r.Contains(0x1000) {
		t.Fatal("Contains true at end (exclusive bound)")
	}
	if got := r.Translate(0x10); got != 0x4000_0010 {
		t.Fatalf("Translate = %#x", got)
	}
}

func TestRegionOverlap(t *testing.T) {
	a := Region{Phys: 0x1000, Virt: 0x1000, Size: 0x1000}
	tests := []struct {
		name string
		b    Region
		want bool
	}{
		{"disjoint-below", Region{Phys: 0x0, Virt: 0x0, Size: 0x1000}, false},
		{"disjoint-above", Region{Phys: 0x2000, Virt: 0x2000, Size: 0x1000}, false},
		{"identical", a, true},
		{"tail-overlap", Region{Phys: 0x1800, Virt: 0x1800, Size: 0x1000}, true},
		{"contained", Region{Phys: 0x1400, Virt: 0x1400, Size: 0x100}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.OverlapsVirt(tt.b); got != tt.want {
				t.Fatalf("OverlapsVirt = %v, want %v", got, tt.want)
			}
			if got := a.OverlapsPhys(tt.b); got != tt.want {
				t.Fatalf("OverlapsPhys = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFlagsString(t *testing.T) {
	f := FlagRead | FlagWrite | FlagIO
	s := f.String()
	for _, want := range []string{"r", "w", "io"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Flags.String() = %q missing %q", s, want)
		}
	}
	if Flags(0).String() != "-" {
		t.Fatalf("empty flags = %q", Flags(0).String())
	}
}

func TestStage2MapAndResolve(t *testing.T) {
	s := NewStage2()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Map(Region{Phys: 0x4000_0000, Virt: 0x0, Size: 0x10000, Flags: FlagRead | FlagWrite | FlagExecute}))
	must(s.Map(Region{Phys: 0x01C2_8000, Virt: 0x01C2_8000, Size: 0x400, Flags: FlagRead | FlagWrite | FlagIO}))

	hpa, reg, err := s.Resolve(0x100, AccessRead)
	must(err)
	if hpa != 0x4000_0100 || reg.Flags&FlagExecute == 0 {
		t.Fatalf("Resolve = %#x %v", hpa, reg)
	}

	// Permission fault: executing from the device window.
	_, _, err = s.Resolve(0x01C2_8000, AccessExec)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultPermission {
		t.Fatalf("want permission fault, got %v", err)
	}

	// Translation fault: hole between regions.
	_, _, err = s.Resolve(0x2000_0000, AccessWrite)
	if !errors.As(err, &f) || f.Kind != FaultTranslation {
		t.Fatalf("want translation fault, got %v", err)
	}
	if !strings.Contains(f.Error(), "translation") {
		t.Fatalf("fault error = %q", f.Error())
	}
}

func TestStage2RejectsOverlap(t *testing.T) {
	s := NewStage2()
	if err := s.Map(Region{Phys: 0, Virt: 0x1000, Size: 0x1000, Flags: FlagRead}); err != nil {
		t.Fatal(err)
	}
	err := s.Map(Region{Phys: 0x9000, Virt: 0x1800, Size: 0x1000, Flags: FlagRead})
	if !errors.Is(err, ErrOverlap) {
		t.Fatalf("want ErrOverlap, got %v", err)
	}
}

func TestStage2RejectsDegenerateRegions(t *testing.T) {
	s := NewStage2()
	if err := s.Map(Region{Virt: 0, Size: 0}); err == nil {
		t.Fatal("zero-size region accepted")
	}
	if err := s.Map(Region{Virt: ^uint64(0) - 10, Phys: 0, Size: 0x100}); err == nil {
		t.Fatal("wrapping region accepted")
	}
}

func TestStage2Unmap(t *testing.T) {
	s := NewStage2()
	r := Region{Phys: 0x1000, Virt: 0x5000, Size: 0x1000, Flags: FlagRead}
	if err := s.Map(r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Unmap(0x5000)
	if !ok || got != r {
		t.Fatalf("Unmap = %v %v", got, ok)
	}
	if _, ok := s.Lookup(0x5000); ok {
		t.Fatal("region still mapped after Unmap")
	}
	if _, ok := s.Unmap(0x5000); ok {
		t.Fatal("double Unmap succeeded")
	}
}

func TestStage2AccountingHelpers(t *testing.T) {
	s := NewStage2()
	_ = s.Map(Region{Phys: 0, Virt: 0, Size: 0x1000, Flags: FlagRead})
	_ = s.Map(Region{Phys: 0x1000, Virt: 0x8000, Size: 0x3000, Flags: FlagRead})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TotalSize() != 0x4000 {
		t.Fatalf("TotalSize = %#x", s.TotalSize())
	}
	regs := s.Regions()
	if len(regs) != 2 || regs[0].Virt != 0 || regs[1].Virt != 0x8000 {
		t.Fatalf("Regions = %v", regs)
	}
	// Mutating the copy must not affect the stage-2.
	regs[0].Virt = 0xFFFF
	if got, _ := s.Lookup(0); got.Virt != 0 {
		t.Fatal("Regions() exposed internal state")
	}
}

// Property: for any set of non-overlapping regions accepted by Map, every
// in-region address resolves to the translation the region defines and
// every out-of-region address faults.
func TestStage2PropertyResolveMatchesRegions(t *testing.T) {
	prop := func(bases [4]uint16, sizes [4]uint8) bool {
		s := NewStage2()
		var accepted []Region
		for i := range bases {
			r := Region{
				Phys:  uint64(bases[i]) * 0x1000,
				Virt:  uint64(bases[i]) * 0x1000,
				Size:  (uint64(sizes[i]%8) + 1) * 0x1000,
				Flags: FlagRead,
			}
			if err := s.Map(r); err == nil {
				accepted = append(accepted, r)
			}
		}
		for _, r := range accepted {
			mid := r.Virt + r.Size/2
			hpa, _, err := s.Resolve(mid, AccessRead)
			if err != nil || hpa != r.Translate(mid) {
				return false
			}
			if _, _, err := s.Resolve(mid, AccessWrite); err == nil {
				return false // read-only region allowed a write
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRAMReadWriteRoundTrip(t *testing.T) {
	m := NewRAM(0x4000_0000, 1<<30)
	data := []byte("jailhouse cell config blob")
	if err := m.Write(0x4000_1000, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x4000_1000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("roundtrip = %q", got)
	}
}

func TestRAMCrossPageAccess(t *testing.T) {
	m := NewRAM(0, 1<<20)
	data := make([]byte, 3*pageSize)
	for i := range data {
		data[i] = byte(i)
	}
	start := uint64(pageSize - 7) // straddles three pages
	if err := m.Write(start, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(start, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestRAMUntouchedReadsZero(t *testing.T) {
	m := NewRAM(0, 1<<20)
	got, err := m.Read(0x5000, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched RAM returned nonzero")
		}
	}
	if m.PagesAllocated() != 0 {
		t.Fatal("read allocated pages")
	}
}

func TestRAMOutOfBounds(t *testing.T) {
	m := NewRAM(0x1000, 0x1000)
	if err := m.Write(0x0, []byte{1}); err == nil {
		t.Fatal("below-base write accepted")
	}
	if err := m.Write(0x1FFF, []byte{1, 2}); err == nil {
		t.Fatal("straddling-end write accepted")
	}
	if _, err := m.Read(0x2000, 1); err == nil {
		t.Fatal("past-end read accepted")
	}
	if !m.InRange(0x1000, 0x1000) || m.InRange(0x1000, 0x1001) {
		t.Fatal("InRange boundary wrong")
	}
}

func TestRAMWords(t *testing.T) {
	m := NewRAM(0, 0x1000)
	if err := m.WriteWord(0x10, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadWord(0x10)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("ReadWord = %#x, %v", v, err)
	}
	b, _ := m.Read(0x10, 4)
	if b[0] != 0xEF {
		t.Fatal("WriteWord is not little-endian")
	}
}

func TestRAMZero(t *testing.T) {
	m := NewRAM(0, 1<<20)
	if err := m.Write(0, make([]byte, 2*pageSize)); err != nil {
		t.Fatal(err)
	}
	// Fill with ones then zero a window crossing a page boundary.
	ones := make([]byte, 2*pageSize)
	for i := range ones {
		ones[i] = 0xFF
	}
	_ = m.Write(0, ones)
	if err := m.Zero(100, pageSize); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(0, 2*pageSize)
	for i := 0; i < 100; i++ {
		if got[i] != 0xFF {
			t.Fatal("Zero clobbered prefix")
		}
	}
	for i := 100; i < 100+pageSize; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	if got[100+pageSize] != 0xFF {
		t.Fatal("Zero clobbered suffix")
	}
	if err := m.Zero(1<<20-1, 2); err == nil {
		t.Fatal("out-of-range Zero accepted")
	}
}

// Property: RAM write-then-read returns exactly the written bytes for any
// offset/length inside bounds.
func TestRAMPropertyRoundTrip(t *testing.T) {
	m := NewRAM(0x4000_0000, 1<<22)
	prop := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		addr := 0x4000_0000 + uint64(off)
		if err := m.Write(addr, payload); err != nil {
			return false
		}
		got, err := m.Read(addr, len(payload))
		if err != nil {
			return false
		}
		for i := range payload {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: after carving a window out of an identity-mapped space,
// addresses inside the window fault and addresses outside still resolve
// to their identity translation.
func TestPropertyCarveSplitsCorrectly(t *testing.T) {
	prop := func(baseRaw, sizeRaw, carveOffRaw, carveSizeRaw uint8) bool {
		base := uint64(baseRaw) * 0x1000
		size := (uint64(sizeRaw%32) + 8) * 0x1000
		s := NewStage2()
		if err := s.Map(Region{Phys: base, Virt: base, Size: size, Flags: FlagRead}); err != nil {
			return false
		}
		carveOff := (uint64(carveOffRaw) % 6) * 0x1000
		carveSize := (uint64(carveSizeRaw%4) + 1) * 0x1000
		if carveOff+carveSize > size {
			return true // degenerate draw, skip
		}
		s.Carve(base+carveOff, carveSize)

		// Probe every page.
		for off := uint64(0); off < size; off += 0x1000 {
			addr := base + off
			inCarve := off >= carveOff && off < carveOff+carveSize
			hpa, _, err := s.Resolve(addr, AccessRead)
			if inCarve {
				if err == nil {
					return false // carved page still resolves
				}
			} else {
				if err != nil || hpa != addr {
					return false // surviving page lost its identity map
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCarveEdgeCases(t *testing.T) {
	s := NewStage2()
	_ = s.Map(Region{Phys: 0x1000, Virt: 0x1000, Size: 0x3000, Flags: FlagRead})
	// Carving nothing that overlaps leaves the map intact.
	if n := s.Carve(0x10000, 0x1000); n != 0 {
		t.Fatalf("disjoint carve affected %d", n)
	}
	// Carving the whole region removes it entirely.
	if n := s.Carve(0x1000, 0x3000); n != 1 {
		t.Fatalf("full carve affected %d", n)
	}
	if s.Len() != 0 {
		t.Fatalf("regions left = %d", s.Len())
	}
}
