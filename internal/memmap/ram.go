package memmap

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// pageSize is the allocation granule of the sparse RAM. 4 KiB matches the
// MMU granule, though nothing here depends on that.
const pageSize = 4096

// RAM is a sparse byte-addressable physical memory. Pages materialise on
// first write; reads of untouched memory return zeroes, like freshly
// powered DRAM after the boot loader cleared it.
type RAM struct {
	base  uint64
	size  uint64
	pages map[uint64][]byte // page index → page content

	// Dirty-page tracking, enabled by the first CaptureSnapshot. Every
	// Write/Zero marks the pages it touches; RestoreSnapshot then copies
	// back only the dirtied pages instead of rebuilding the whole image.
	tracking bool
	dirty    map[uint64]struct{}
	allDirty bool         // set when a bulk op (Reset) defeats tracking
	lastSnap *RAMSnapshot // snapshot the dirty set is relative to
}

// NewRAM returns size bytes of physical memory starting at base.
func NewRAM(base, size uint64) *RAM {
	return &RAM{base: base, size: size, pages: make(map[uint64][]byte)}
}

// Base returns the first physical address of the RAM.
func (m *RAM) Base() uint64 { return m.base }

// Size returns the RAM size in bytes.
func (m *RAM) Size() uint64 { return m.size }

// InRange reports whether [addr, addr+n) lies entirely inside the RAM.
func (m *RAM) InRange(addr uint64, n int) bool {
	return addr >= m.base && addr-m.base+uint64(n) <= m.size && n >= 0
}

// errOOB builds the out-of-bounds access error.
func (m *RAM) errOOB(addr uint64, n int) error {
	return fmt.Errorf("memmap: physical access [%#x,+%d) outside RAM [%#x,+%#x)", addr, n, m.base, m.size)
}

// Read copies n bytes at physical address addr.
func (m *RAM) Read(addr uint64, n int) ([]byte, error) {
	if !m.InRange(addr, n) {
		return nil, m.errOOB(addr, n)
	}
	out := make([]byte, n)
	off := addr - m.base
	for i := 0; i < n; {
		page, pgOff := off/pageSize, off%pageSize
		chunk := pageSize - pgOff
		if rem := uint64(n - i); chunk > rem {
			chunk = rem
		}
		if p, ok := m.pages[page]; ok {
			copy(out[i:], p[pgOff:pgOff+chunk])
		}
		i += int(chunk)
		off += chunk
	}
	return out, nil
}

// Write stores data at physical address addr.
func (m *RAM) Write(addr uint64, data []byte) error {
	if !m.InRange(addr, len(data)) {
		return m.errOOB(addr, len(data))
	}
	off := addr - m.base
	for i := 0; i < len(data); {
		page, pgOff := off/pageSize, off%pageSize
		p, ok := m.pages[page]
		if !ok {
			p = make([]byte, pageSize)
			m.pages[page] = p
		}
		if m.tracking {
			m.dirty[page] = struct{}{}
		}
		chunk := int(pageSize - pgOff)
		if rem := len(data) - i; chunk > rem {
			chunk = rem
		}
		copy(p[pgOff:], data[i:i+chunk])
		i += chunk
		off += uint64(chunk)
	}
	return nil
}

// ReadWord reads a little-endian 32-bit word.
func (m *RAM) ReadWord(addr uint64) (uint32, error) {
	b, err := m.Read(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// WriteWord stores a little-endian 32-bit word.
func (m *RAM) WriteWord(addr uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return m.Write(addr, b[:])
}

// Zero clears n bytes starting at addr (releasing whole pages where
// possible, so large clears stay cheap).
func (m *RAM) Zero(addr uint64, n int) error {
	if !m.InRange(addr, n) {
		return m.errOOB(addr, n)
	}
	off := addr - m.base
	for i := 0; i < n; {
		page, pgOff := off/pageSize, off%pageSize
		chunk := int(pageSize - pgOff)
		if rem := n - i; chunk > rem {
			chunk = rem
		}
		if pgOff == 0 && chunk == pageSize {
			if _, ok := m.pages[page]; ok {
				delete(m.pages, page)
				if m.tracking {
					m.dirty[page] = struct{}{}
				}
			}
		} else if p, ok := m.pages[page]; ok {
			for j := 0; j < chunk; j++ {
				p[int(pgOff)+j] = 0
			}
			if m.tracking {
				m.dirty[page] = struct{}{}
			}
		}
		i += chunk
		off += uint64(chunk)
	}
	return nil
}

// PagesAllocated returns how many 4 KiB pages have been materialised;
// useful for verifying that simulations stay sparse.
func (m *RAM) PagesAllocated() int { return len(m.pages) }

// Reset drops every materialised page, returning the RAM to its
// power-on (all-zero) content. The page map itself stays allocated — the
// warm machine-reuse path re-materialises the handful of pages a run
// writes. A bulk clear defeats page-granular tracking, so the dirty set
// degrades to "everything" and the next RestoreSnapshot takes the full
// copy path.
func (m *RAM) Reset() {
	clear(m.pages)
	if m.tracking {
		m.allDirty = true
		clear(m.dirty)
	}
}

// RAMSnapshot is an immutable deep copy of the materialised page set at
// capture time. It doubles as the identity token for delta restores: a
// RAM remembers which snapshot its dirty set is relative to, and only a
// restore of that same snapshot may take the dirty-pages-only path.
type RAMSnapshot struct {
	pages map[uint64][]byte
}

// Pages returns how many pages the snapshot image holds.
func (s *RAMSnapshot) Pages() int { return len(s.pages) }

// CaptureSnapshot deep-copies the current content and switches the RAM
// into dirty-page tracking mode: from here on, Write and Zero mark the
// pages they touch so a later RestoreSnapshot of this image copies back
// only what changed.
func (m *RAM) CaptureSnapshot() *RAMSnapshot {
	s := &RAMSnapshot{pages: make(map[uint64][]byte, len(m.pages))}
	for page, p := range m.pages {
		cp := make([]byte, pageSize)
		copy(cp, p)
		s.pages[page] = cp
	}
	m.tracking = true
	if m.dirty == nil {
		m.dirty = make(map[uint64]struct{})
	} else {
		clear(m.dirty)
	}
	m.allDirty = false
	m.lastSnap = s
	return s
}

// RestoreSnapshot rewrites the RAM to exactly the snapshot's content and
// returns (dirtied, restored): how many pages the preceding run touched
// and how many pages the restore had to copy. When the dirty set is
// relative to this very snapshot the restore is a delta — each dirtied
// page is recopied from the image (or dropped, if the image never had
// it); otherwise (first restore of a different image, or after a bulk
// Reset set allDirty) every page is rebuilt from the image.
func (m *RAM) RestoreSnapshot(s *RAMSnapshot) (dirtied, restored int) {
	if m.tracking && m.lastSnap == s && !m.allDirty {
		dirtied = len(m.dirty)
		for page := range m.dirty {
			img, ok := s.pages[page]
			if !ok {
				delete(m.pages, page)
				continue
			}
			p, live := m.pages[page]
			if !live {
				p = make([]byte, pageSize)
				m.pages[page] = p
			}
			copy(p, img)
			restored++
		}
	} else {
		dirtied = len(m.pages)
		clear(m.pages)
		for page, img := range s.pages {
			cp := make([]byte, pageSize)
			copy(cp, img)
			m.pages[page] = cp
			restored++
		}
	}
	if m.dirty == nil {
		m.dirty = make(map[uint64]struct{})
	} else {
		clear(m.dirty)
	}
	m.tracking = true
	m.allDirty = false
	m.lastSnap = s
	return dirtied, restored
}

// Digest folds the materialised content into a 64-bit FNV-1a hash,
// visiting pages in ascending index order so the value is deterministic.
// All-zero pages hash identically whether materialised or not, making
// the digest a content fingerprint rather than an allocation fingerprint.
func (m *RAM) Digest() uint64 {
	idx := make([]uint64, 0, len(m.pages))
	for page, p := range m.pages {
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if !zero {
			idx = append(idx, page)
		}
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	h := fnv.New64a()
	var buf [8]byte
	for _, page := range idx {
		binary.LittleEndian.PutUint64(buf[:], page)
		h.Write(buf[:])
		h.Write(m.pages[page])
	}
	return h.Sum64()
}
