// Package memmap models guest-physical memory: typed regions with
// Jailhouse-style permission flags, per-cell stage-2 maps, and a sparse
// byte-addressable RAM. Cell isolation in a partitioning hypervisor is
// exactly the statement "every access resolves only through the accessing
// cell's region list", so this package is where the paper's isolation
// claims become checkable invariants.
package memmap

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Flags are Jailhouse memory-region permission bits (jailhouse/cell-config.h).
type Flags uint32

// Region permission and semantic flags, numerically identical to
// Jailhouse v0.12's JAILHOUSE_MEM_* constants.
const (
	FlagRead       Flags = 1 << 0
	FlagWrite      Flags = 1 << 1
	FlagExecute    Flags = 1 << 2
	FlagDMA        Flags = 1 << 3
	FlagIO         Flags = 1 << 4
	FlagCommRegion Flags = 1 << 5
	FlagLoadable   Flags = 1 << 6
	FlagRootShared Flags = 1 << 7
)

// String renders flags as the conventional "rwx|io|..." summary.
func (f Flags) String() string {
	var parts []string
	add := func(bit Flags, name string) {
		if f&bit != 0 {
			parts = append(parts, name)
		}
	}
	add(FlagRead, "r")
	add(FlagWrite, "w")
	add(FlagExecute, "x")
	add(FlagDMA, "dma")
	add(FlagIO, "io")
	add(FlagCommRegion, "comm")
	add(FlagLoadable, "loadable")
	add(FlagRootShared, "rootshared")
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// Region describes one guest-physical memory window with access rights,
// mirroring struct jailhouse_memory.
type Region struct {
	Phys  uint64 // host-physical base (what the bus sees)
	Virt  uint64 // guest-physical base (what the cell sees)
	Size  uint64
	Flags Flags
}

// Contains reports whether guest-physical address gpa falls inside the
// region's virtual window.
func (r Region) Contains(gpa uint64) bool {
	return gpa >= r.Virt && gpa-r.Virt < r.Size
}

// Translate converts a guest-physical address inside the region to the
// backing host-physical address.
func (r Region) Translate(gpa uint64) uint64 {
	return r.Phys + (gpa - r.Virt)
}

// OverlapsPhys reports whether two regions' physical windows intersect.
func (r Region) OverlapsPhys(o Region) bool {
	return r.Phys < o.Phys+o.Size && o.Phys < r.Phys+r.Size
}

// OverlapsVirt reports whether two regions' guest-physical windows intersect.
func (r Region) OverlapsVirt(o Region) bool {
	return r.Virt < o.Virt+o.Size && o.Virt < r.Virt+r.Size
}

// String renders the region like Jailhouse's config dumps.
func (r Region) String() string {
	return fmt.Sprintf("phys %#010x → virt %#010x size %#x [%s]", r.Phys, r.Virt, r.Size, r.Flags)
}

// AccessKind distinguishes the three access types permission checks see.
type AccessKind int

// Access kinds.
const (
	AccessRead AccessKind = iota + 1
	AccessWrite
	AccessExec
)

// String returns "read", "write" or "exec".
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return fmt.Sprintf("access(%d)", int(k))
	}
}

// FaultKind classifies a failed translation, mirroring the stage-2 fault
// taxonomy the hypervisor's data-abort handler distinguishes.
type FaultKind int

// Stage-2 fault kinds.
const (
	FaultNone        FaultKind = iota
	FaultTranslation           // no region maps the address
	FaultPermission            // region exists but forbids the access
)

// Fault describes a failed stage-2 resolution.
type Fault struct {
	Kind FaultKind
	GPA  uint64
	Want AccessKind
}

// Error implements error.
func (f *Fault) Error() string {
	k := "translation"
	if f.Kind == FaultPermission {
		k = "permission"
	}
	return fmt.Sprintf("stage-2 %s fault: %s at gpa %#x", k, f.Want, f.GPA)
}

// ErrOverlap is wrapped by Map when a new region's guest-physical window
// collides with an existing mapping.
var ErrOverlap = errors.New("memmap: region overlaps existing mapping")

// Stage2 is one cell's guest-physical address space: an ordered list of
// regions. Lookups are binary-search on Virt.
type Stage2 struct {
	regions []Region // sorted by Virt
}

// NewStage2 returns an empty address space.
func NewStage2() *Stage2 { return &Stage2{} }

// Map inserts a region. Overlapping guest-physical windows are rejected —
// the same check Jailhouse's config validation performs.
func (s *Stage2) Map(r Region) error {
	if r.Size == 0 {
		return fmt.Errorf("memmap: zero-size region %v", r)
	}
	if r.Virt+r.Size < r.Virt || r.Phys+r.Size < r.Phys {
		return fmt.Errorf("memmap: region wraps address space: %v", r)
	}
	for _, ex := range s.regions {
		if ex.OverlapsVirt(r) {
			return fmt.Errorf("%w: new %v vs existing %v", ErrOverlap, r, ex)
		}
	}
	s.regions = append(s.regions, r)
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Virt < s.regions[j].Virt })
	return nil
}

// Unmap removes the region with exactly the given guest-physical base,
// returning it. The boolean reports whether one was found.
func (s *Stage2) Unmap(virt uint64) (Region, bool) {
	for i, r := range s.regions {
		if r.Virt == virt {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			return r, true
		}
	}
	return Region{}, false
}

// Lookup returns the region containing gpa.
func (s *Stage2) Lookup(gpa uint64) (Region, bool) {
	i := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].Virt+s.regions[i].Size > gpa
	})
	if i < len(s.regions) && s.regions[i].Contains(gpa) {
		return s.regions[i], true
	}
	return Region{}, false
}

// Resolve translates gpa for the given access kind, enforcing permissions.
// On failure it returns a *Fault (as error) whose kind feeds the
// hypervisor's abort handling.
func (s *Stage2) Resolve(gpa uint64, kind AccessKind) (hpa uint64, region Region, err error) {
	r, ok := s.Lookup(gpa)
	if !ok {
		return 0, Region{}, &Fault{Kind: FaultTranslation, GPA: gpa, Want: kind}
	}
	allowed := false
	switch kind {
	case AccessRead:
		allowed = r.Flags&FlagRead != 0
	case AccessWrite:
		allowed = r.Flags&FlagWrite != 0
	case AccessExec:
		allowed = r.Flags&FlagExecute != 0
	}
	if !allowed {
		return 0, Region{}, &Fault{Kind: FaultPermission, GPA: gpa, Want: kind}
	}
	return r.Translate(gpa), r, nil
}

// Carve removes the window [start, start+size) from the address space,
// splitting any regions that straddle the boundaries. It models the
// hypervisor unmapping donated memory from the root cell at cell-create
// time. Returns the number of regions affected.
func (s *Stage2) Carve(start, size uint64) int {
	end := start + size
	affected := 0
	var next []Region
	for _, r := range s.regions {
		rEnd := r.Virt + r.Size
		if rEnd <= start || r.Virt >= end {
			next = append(next, r)
			continue
		}
		affected++
		// Left remainder.
		if r.Virt < start {
			next = append(next, Region{
				Phys: r.Phys, Virt: r.Virt, Size: start - r.Virt, Flags: r.Flags,
			})
		}
		// Right remainder.
		if rEnd > end {
			next = append(next, Region{
				Phys:  r.Phys + (end - r.Virt),
				Virt:  end,
				Size:  rEnd - end,
				Flags: r.Flags,
			})
		}
	}
	sort.Slice(next, func(i, j int) bool { return next[i].Virt < next[j].Virt })
	s.regions = next
	return affected
}

// CaptureSnapshot returns a deep copy of the region list, suitable for
// rewinding the address space later with RestoreSnapshot.
func (s *Stage2) CaptureSnapshot() []Region {
	return append([]Region(nil), s.regions...)
}

// RestoreSnapshot replaces the region list with a copy of regions (as
// returned by CaptureSnapshot — already sorted by Virt), reusing the
// live backing array.
func (s *Stage2) RestoreSnapshot(regions []Region) {
	s.regions = append(s.regions[:0], regions...)
}

// Regions returns a copy of the mapped regions in ascending Virt order.
func (s *Stage2) Regions() []Region {
	out := make([]Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// Len returns the number of mapped regions.
func (s *Stage2) Len() int { return len(s.regions) }

// TotalSize returns the summed size of all regions.
func (s *Stage2) TotalSize() uint64 {
	var total uint64
	for _, r := range s.regions {
		total += r.Size
	}
	return total
}
