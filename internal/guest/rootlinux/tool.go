package rootlinux

import (
	"fmt"
	"strings"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// configLoadAddr is where the jailhouse tool stages cell-config blobs in
// root memory before CELL_CREATE (a scratch page well inside root RAM).
const configLoadAddr = board.DRAMBase + 0x0200_0000

// Tool-level errors surface exactly like the userspace jailhouse tool:
// the ioctl's errno is printed on the root console.

// HypervisorEnable models "jailhouse enable sysconfig.cell".
func (l *Linux) HypervisorEnable(sysCfg *jailhouse.SystemConfig) error {
	e := l.hv.Enable(sysCfg)
	if e.Failed() {
		l.console("jailhouse: enable failed: %v", e)
		return fmt.Errorf("jailhouse enable: %v", e)
	}
	if e2 := l.hv.AssignRootInmate(l); e2.Failed() {
		return fmt.Errorf("assign root inmate: %v", e2)
	}
	l.console("The Jailhouse is opening.")
	return nil
}

// CellCreate models "jailhouse cell create freertos.cell": offline the
// cell's CPUs (the hotplug swap), stage the blob, issue CELL_CREATE.
func (l *Linux) CellCreate(cfg *jailhouse.CellConfig) error {
	// CPU hotplug: each donated CPU runs PSCI CPU_OFF on itself.
	for _, cpu := range cfg.CPUs() {
		l.console("CPU%d: shutdown", cpu)
		if ret := l.hv.SMC(cpu, armv7.PSCICPUOff); ret != armv7.PSCIRetSuccess {
			l.console("jailhouse: cpu %d offline failed (%d)", cpu, ret)
			return fmt.Errorf("cpu offline: psci %d", ret)
		}
	}
	blob := cfg.Marshal()
	if err := l.brd.RAM.Write(configLoadAddr, blob); err != nil {
		return fmt.Errorf("stage config: %w", err)
	}
	ret := l.hv.HVC(0, jailhouse.HCCellCreate, uint32(configLoadAddr), 0)
	if ret.Failed() {
		// The tool's perror output — the paper's E1 observable.
		l.console("jailhouse: cell create failed: %v", ret)
		l.reonlineCPUs(cfg)
		return fmt.Errorf("cell create: %v", ret)
	}
	l.CellID = uint32(ret)
	l.console("Created cell \"%s\"", cfg.Name)
	return nil
}

// reonlineCPUs brings donated CPUs back after a failed create (Linux
// hotplugs them online again).
func (l *Linux) reonlineCPUs(cfg *jailhouse.CellConfig) {
	for _, cpu := range cfg.CPUs() {
		if ret := l.hv.SMC(0, armv7.PSCICPUOn, uint32(cpu)); ret == armv7.PSCIRetSuccess {
			l.console("smpboot: CPU%d is up", cpu)
		}
	}
}

// CellLoad models "jailhouse cell load": SET_LOADABLE, write the image
// into the loadable window, attach the inmate object.
func (l *Linux) CellLoad(id uint32, image []byte, inmate jailhouse.Inmate) error {
	if e := l.hv.HVC(0, jailhouse.HCCellSetLoadable, id, 0); e.Failed() {
		l.console("jailhouse: cell set-loadable failed: %v", e)
		return fmt.Errorf("set loadable: %v", e)
	}
	if len(image) > 0 {
		if err := l.brd.RAM.Write(jailhouse.FreeRTOSMemBase, image); err != nil {
			return fmt.Errorf("write image: %w", err)
		}
	}
	if e := l.hv.LoadInmate(id, inmate); e.Failed() {
		return fmt.Errorf("load inmate: %v", e)
	}
	l.console("Cell \"%d\" loaded", id)
	return nil
}

// CellStart models "jailhouse cell start".
func (l *Linux) CellStart(id uint32) error {
	if e := l.hv.HVC(0, jailhouse.HCCellStart, id, 0); e.Failed() {
		l.console("jailhouse: cell start failed: %v", e)
		return fmt.Errorf("cell start: %v", e)
	}
	l.LastStartAt = l.brd.Now()
	l.console("Started cell %d", id)
	return nil
}

// CellShutdown models "jailhouse cell shutdown": the cooperative
// comm-region handshake followed by SET_LOADABLE, which stops the cell's
// CPUs whatever state the inmate is in. The cell stays configured (state
// SHUT_DOWN); destroy returns its resources.
func (l *Linux) CellShutdown(id uint32) error {
	_ = l.hv.RequestShutdown(id) // best effort: broken inmates ignore it
	if e := l.hv.HVC(0, jailhouse.HCCellSetLoadable, id, 0); e.Failed() {
		l.console("jailhouse: cell shutdown failed: %v", e)
		return fmt.Errorf("cell shutdown: %v", e)
	}
	l.console("Cell %d shut down", id)
	return nil
}

// CellDestroy models "jailhouse cell destroy".
func (l *Linux) CellDestroy(id uint32) error {
	if e := l.hv.HVC(0, jailhouse.HCCellDestroy, id, 0); e.Failed() {
		l.console("jailhouse: cell destroy failed: %v", e)
		return fmt.Errorf("cell destroy: %v", e)
	}
	l.console("Closed cell %d", id)
	// The returned CPUs come back online under root.
	for cpu := 1; cpu < board.NumCPUs; cpu++ {
		if l.hv.RootCell() != nil && l.hv.RootCell().HasCPU(cpu) && !l.hv.PerCPU(cpu).OnlineInCell {
			if ret := l.hv.SMC(0, armv7.PSCICPUOn, uint32(cpu)); ret == armv7.PSCIRetSuccess {
				l.console("smpboot: CPU%d is up", cpu)
			}
		}
	}
	return nil
}

// CellList models "jailhouse cell list": the operator-facing table of
// cells and their reported states — the very view E2 shows to be
// misleading for broken cells.
func (l *Linux) CellList() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s%-26s%-18s%s\n", "ID", "Name", "State", "Assigned CPUs")
	for _, c := range l.hv.Cells() {
		cpus := fmt.Sprint(c.CPUList())
		fmt.Fprintf(&b, "%-4d%-26s%-18s%s\n", c.ID, c.Name(), c.State, cpus)
	}
	return b.String()
}

// CellState models "jailhouse cell state <id>". Failures are printed to
// the console like any other tool error (the classifier's evidence of a
// corrupted-but-rejected management call).
func (l *Linux) CellState(id uint32) (jailhouse.CellState, error) {
	ret := l.hv.HVC(0, jailhouse.HCCellGetState, id, 0)
	if ret.Failed() {
		l.console("jailhouse: cell state failed: %v", ret)
		return 0, fmt.Errorf("cell state: %v", ret)
	}
	l.StateQueries++
	l.LastState = jailhouse.CellState(ret)
	return l.LastState, nil
}

// StartStateWatchdog arms the periodic "jailhouse cell state" probe the
// experiments use to show Jailhouse still reports a broken cell as
// RUNNING (E2). It always probes the currently managed cell (l.CellID),
// so it keeps working across recreate cycles.
func (l *Linux) StartStateWatchdog(id uint32) {
	if id != 0 {
		l.CellID = id
	}
	l.cancelBg = append(l.cancelBg, l.brd.Engine.Every(stateQueryEvery, func() {
		if l.paniced || l.CellID == 0 {
			return
		}
		if st, err := l.CellState(l.CellID); err == nil {
			l.brd.Trace().Addf(l.brd.Now(), sim.KindCellEvent, 0, "watchdog: cell %d state=%v", sim.Int(int64(l.CellID)), sim.Str(st.String()))
		}
	}))
}

// StartRecreateLoop arms the E1 workload: repeatedly destroy and recreate
// the cell so the management hypercall path stays hot for the injector.
// period is the cycle time; the loop stops silently after a root panic.
func (l *Linux) StartRecreateLoop(cfg *jailhouse.CellConfig, makeInmate func() jailhouse.Inmate, period sim.Time) {
	l.cancelBg = append(l.cancelBg, l.brd.Engine.Every(period, func() {
		if l.paniced {
			return
		}
		if l.CellID != 0 {
			if err := l.CellDestroy(l.CellID); err == nil {
				l.CellID = 0
			}
		}
		if err := l.CellCreate(cfg); err != nil {
			return // EINVAL path: cell not allocated, try next cycle
		}
		if err := l.CellLoad(l.CellID, nil, makeInmate()); err != nil {
			return
		}
		if err := l.CellStart(l.CellID); err != nil {
			return
		}
	}))
}
