package rootlinux_test

import (
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

func build(t *testing.T, seed uint64) *core.Machine {
	t.Helper()
	m, err := core.BuildMachine(core.DefaultMachineOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBootChatterOnUART0(t *testing.T) {
	m := build(t, 1)
	m.Run(sim.Second)
	u := m.Board.UART0
	for _, want := range []string{
		"Booting Linux on physical CPU 0x0",
		"Linux version 5.10.0-jailhouse",
		"The Jailhouse is opening.",
		"Created cell \"freertos-cell\"",
	} {
		if !u.Contains(want) {
			t.Errorf("uart0 missing %q", want)
		}
	}
}

func TestCellLifecycleViaTool(t *testing.T) {
	m := build(t, 2)
	m.Run(2 * sim.Second)
	st, err := m.Linux.CellState(m.CellID)
	if err != nil || st != jailhouse.CellRunning {
		t.Fatalf("CellState = %v, %v", st, err)
	}
	if err := m.Linux.CellDestroy(m.CellID); err != nil {
		t.Fatal(err)
	}
	// CPU 1 rejoins root and comes back online.
	if !m.HV.RootCell().HasCPU(1) {
		t.Fatal("cpu1 not back in root")
	}
	if !m.Board.UART0.Contains("smpboot: CPU1 is up") {
		t.Fatal("re-online chatter missing")
	}
	if _, err := m.Linux.CellState(m.CellID); err == nil {
		t.Fatal("destroyed cell still queryable")
	}
}

func TestStateWatchdogQueries(t *testing.T) {
	m := build(t, 3)
	m.Run(5 * sim.Second)
	// 500 ms cadence → ~10 queries in 5 s.
	if m.Linux.StateQueries < 8 {
		t.Fatalf("state queries = %d, want ≥8", m.Linux.StateQueries)
	}
	if m.Linux.LastState != jailhouse.CellRunning {
		t.Fatalf("last state = %v", m.Linux.LastState)
	}
}

func TestCreateFailurePrintsEINVALAndReonlines(t *testing.T) {
	m := build(t, 4)
	m.Run(sim.Second)
	// A second create of the same cell name fails EEXIST; use a fresh
	// config with a corrupted-by-construction region to force EINVAL-ish
	// tool error paths through the console.
	cfg := jailhouse.FreeRTOSCellConfig()
	cfg.Name = "second-cell"
	// CPU 1 already belongs to the freertos cell → create must fail
	// (EBUSY) and the tool must print the errno.
	err := m.Linux.CellCreate(cfg)
	if err == nil {
		t.Fatal("create of owned CPU succeeded")
	}
	if !m.Board.UART0.Contains("jailhouse: cell create failed") {
		t.Fatal("tool error missing from console")
	}
}

func TestRegisterImageScratchIsSafe(t *testing.T) {
	m := build(t, 5)
	m.Run(sim.Second)
	m.Linux.OnCorruptedResume(0, []int{armv7.RegR0, armv7.RegR1, armv7.RegR12})
	if panicked, _ := m.Linux.Panicked(); panicked {
		t.Fatal("scratch corruption panicked the kernel")
	}
}

func TestControlFlowCorruptionCanPanic(t *testing.T) {
	m := build(t, 6)
	m.Run(sim.Second)
	// pOopsControl = 0.25: hammer until it fires.
	for i := 0; i < 256; i++ {
		m.Linux.OnCorruptedResume(0, []int{armv7.RegSP})
		if p, _ := m.Linux.Panicked(); p {
			break
		}
	}
	panicked, why := m.Linux.Panicked()
	if !panicked {
		t.Fatal("control-flow corruption never panicked over 256 tries")
	}
	if !strings.Contains(why, "register corruption") {
		t.Fatalf("panic reason = %q", why)
	}
	if !m.Board.UART0.Contains("Kernel panic - not syncing") {
		t.Fatal("kernel panic line missing from uart0 — the classifier keys on it")
	}
	// Panicked kernel goes silent.
	before := m.Board.UART0.LineCount()
	m.Linux.OnCorruptedResume(0, []int{armv7.RegSP})
	m.Run(sim.Second)
	if m.Board.UART0.LineCount() != before {
		t.Fatal("dead kernel kept printing")
	}
}

func TestRecreateLoopCyclesCells(t *testing.T) {
	m, err := core.BuildMachine(core.MachineOptions{
		Seed:           7,
		RecreateLoop:   true,
		RecreatePeriod: 2 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(9 * sim.Second)
	// Cycles at 2,4,6,8 s: the first creates, later ones destroy+create.
	created := 0
	for _, l := range m.Board.UART0.Lines() {
		if strings.Contains(l.Text, "Created cell") {
			created++
		}
	}
	if created < 3 {
		t.Fatalf("created count = %d, want ≥3 (recreate loop)", created)
	}
	// The cell exists and runs after the last cycle.
	cell, ok := m.HV.CellByName("freertos-cell")
	if !ok || cell.State != jailhouse.CellRunning {
		t.Fatalf("cell after cycles: %v %v", cell, ok)
	}
	// The FreeRTOS instance of the last cycle produced output.
	if !m.Board.UART7.Contains("Scheduler started") {
		t.Fatal("no inmate output across cycles")
	}
}

func TestHypercallStreamFeedsInjector(t *testing.T) {
	m := build(t, 8)
	m.Run(3 * sim.Second)
	p := m.HV.PerCPU(0)
	if p.Stats[jailhouse.ExitHVC] < 5 {
		t.Fatalf("cpu0 hvc exits = %d — too quiet for E1 plans", p.Stats[jailhouse.ExitHVC])
	}
	if p.Stats[jailhouse.ExitMMIO] < 5 {
		t.Fatalf("cpu0 mmio exits = %d — too quiet for E1 trap plans", p.Stats[jailhouse.ExitMMIO])
	}
}

func TestCellListRendersTable(t *testing.T) {
	m := build(t, 20)
	m.Run(sim.Second)
	out := m.Linux.CellList()
	for _, want := range []string{"ID", "banana-pi", "freertos-cell", "running"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CellList missing %q:\n%s", want, out)
		}
	}
}

func TestCellShutdownKeepsCellConfigured(t *testing.T) {
	m := build(t, 21)
	m.Run(sim.Second)
	if err := m.Linux.CellShutdown(m.CellID); err != nil {
		t.Fatal(err)
	}
	cell, ok := m.HV.CellByID(m.CellID)
	if !ok {
		t.Fatal("shutdown removed the cell (that is destroy's job)")
	}
	if cell.State != jailhouse.CellShutDown {
		t.Fatalf("state = %v, want shut down", cell.State)
	}
	// The cell console goes silent after shutdown.
	before := m.Board.UART7.LineCount()
	m.Run(2 * sim.Second)
	if m.Board.UART7.LineCount() != before {
		t.Fatal("cell kept printing after shutdown")
	}
	// Destroy still returns everything.
	if err := m.Linux.CellDestroy(m.CellID); err != nil {
		t.Fatal(err)
	}
}
