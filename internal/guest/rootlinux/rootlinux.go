// Package rootlinux models the root cell of the paper's deployment: a
// general-purpose Linux (v5.10, Jailhouse-patched) that boots on the
// board, loads the jailhouse driver, and drives the cell lifecycle from
// userspace — create, load, start, state queries, shutdown, destroy. Its
// console (UART0) carries the kernel log, including the "Kernel panic"
// line that marks the paper's system-wide failure mode.
//
// The model is control-flow level: the pieces that matter to the
// experiments are (a) the hypercall/PSCI sequences the driver issues,
// (b) the background trap/IRQ stream of a live kernel, and (c) the
// register image that maps architectural corruption to an oops/panic.
package rootlinux

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/gic"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
	"github.com/dessertlab/certify/internal/uart"
)

// Kernel timing parameters.
const (
	schedTickPeriod = 4 * sim.Millisecond   // CONFIG_HZ=250
	stateQueryEvery = 500 * sim.Millisecond // watchdog "jailhouse cell state"
	// Steady-state Linux touches the trapped distributor rarely — IRQ
	// affinity rebalancing, not per-tick work (GICC accesses never trap).
	housekeepEvery = 10 * sim.Second
)

// Register image sensitivity: Linux interacts with the hypervisor from
// ioctl context where most registers are reloaded from the kernel stack
// afterwards, so per-flip fatality is low — which is exactly why the
// paper's E1 high-intensity runs see clean EINVAL failures instead of
// root crashes.
const (
	pOopsControl = 0.25 // sp/lr/pc flip actually derails the kernel
	pOopsData    = 0.02 // callee-saved data flip reaches a live pointer
)

// Linux is the root-cell guest.
type Linux struct {
	hv  *jailhouse.Hypervisor
	brd *board.Board

	booted   bool
	paniced  bool
	panicWhy string
	oopses   int
	cancelBg []func()

	// CellID of the managed non-root cell (set by CellCreate).
	CellID uint32

	// StateQueries counts completed GET_STATE probes.
	StateQueries uint64

	// LastState is the most recent GET_STATE answer.
	LastState jailhouse.CellState

	// LastStartAt records when the managed cell last started — the
	// classifier uses it to distinguish "ran, then died" from "never
	// came up".
	LastStartAt sim.Time
}

var _ jailhouse.Inmate = (*Linux)(nil)

// New returns the root Linux model bound to the hypervisor's board.
func New(hv *jailhouse.Hypervisor) *Linux {
	return &Linux{hv: hv, brd: hv.Board()}
}

// Name implements jailhouse.Inmate.
func (l *Linux) Name() string { return "Linux-5.10-jailhouse" }

// DeepReset restores the root-cell guest to its pre-boot power-on state
// in place: not booted, not paniced, no managed cell, no background
// activity and zeroed watchdog statistics. The background cancel
// closures are dropped without being called — the engine reset that
// accompanies a machine-level deep reset already invalidated their
// events. The hypervisor binding survives; the next Boot replays the
// identical bring-up.
func (l *Linux) DeepReset() {
	l.booted = false
	l.paniced, l.panicWhy = false, ""
	l.oopses = 0
	for i := range l.cancelBg {
		l.cancelBg[i] = nil
	}
	l.cancelBg = l.cancelBg[:0]
	l.CellID = 0
	l.StateQueries = 0
	l.LastState = 0
	l.LastStartAt = 0
}

// Snapshot is a deep copy of the root-cell guest's state. The background
// cancel closures are Event handles into the engine slab; the engine
// snapshot restores slot generations exactly, so the captured closures
// stay valid after a restore.
type Snapshot struct {
	booted       bool
	paniced      bool
	panicWhy     string
	oopses       int
	cancelBg     []func()
	cellID       uint32
	stateQueries uint64
	lastState    jailhouse.CellState
	lastStartAt  sim.Time
}

// CaptureSnapshot deep-copies the guest state.
func (l *Linux) CaptureSnapshot() *Snapshot {
	return &Snapshot{
		booted:       l.booted,
		paniced:      l.paniced,
		panicWhy:     l.panicWhy,
		oopses:       l.oopses,
		cancelBg:     append([]func(){}, l.cancelBg...),
		cellID:       l.CellID,
		stateQueries: l.StateQueries,
		lastState:    l.LastState,
		lastStartAt:  l.LastStartAt,
	}
}

// RestoreSnapshot rewinds the guest to a captured state in place.
func (l *Linux) RestoreSnapshot(s *Snapshot) {
	l.booted = s.booted
	l.paniced, l.panicWhy = s.paniced, s.panicWhy
	l.oopses = s.oopses
	old := len(l.cancelBg)
	l.cancelBg = append(l.cancelBg[:0], s.cancelBg...)
	for i := len(l.cancelBg); i < old; i++ {
		l.cancelBg[:old][i] = nil // release run-era closures
	}
	l.CellID = s.cellID
	l.StateQueries = s.stateQueries
	l.LastState = s.lastState
	l.LastStartAt = s.lastStartAt
}

// Panicked reports whether the root kernel died, and why.
func (l *Linux) Panicked() (bool, string) { return l.paniced, l.panicWhy }

// console writes a kernel-log line to UART0.
func (l *Linux) console(format string, args ...any) {
	if l.paniced {
		return
	}
	s := fmt.Sprintf(format, args...)
	for i := 0; i < len(s); i++ {
		_ = l.hv.GuestWrite32(0, board.UART0Base+uart.RegTHR, uint32(s[i]))
	}
	_ = l.hv.GuestWrite32(0, board.UART0Base+uart.RegTHR, uint32('\n'))
}

// Boot implements jailhouse.Inmate: boot chatter, driver load, and the
// background activity that gives CPU 0 its steady trap/IRQ stream.
func (l *Linux) Boot(cpu int) {
	if l.booted || cpu != 0 {
		// Secondary CPUs rejoining the root cell (after cell destroy)
		// just log.
		l.console("smpboot: CPU%d is up", cpu)
		return
	}
	l.booted = true
	l.console("Booting Linux on physical CPU 0x0")
	l.console("Linux version 5.10.0-jailhouse (gcc 9.3.0) #1 SMP")
	l.console("Machine model: LeMaker Banana Pi")
	l.console("jailhouse: loading out-of-tree module taints kernel.")

	// Kernel GIC bring-up: trapped distributor writes on CPU 0.
	for w := 0; w < gic.MaxIRQ/8; w += 4 {
		_ = l.hv.GuestWrite32(0, board.GICDBase+gic.GICDIPriorityr+uint64(w), 0xA0A0A0A0)
	}
	_ = l.hv.GuestWrite32(0, board.GICDBase+gic.GICDISEnabler, 1<<gic.IRQVirtualTimer)
	word := board.IRQUart0 / 32
	_ = l.hv.GuestWrite32(0, board.GICDBase+gic.GICDISEnabler+uint64(4*word), 1<<uint(board.IRQUart0%32))
	_ = l.hv.GuestWrite32(0, board.GICDBase+gic.GICDCtlr, 1)

	l.brd.StartTimer(0, schedTickPeriod)

	// Background housekeeping: periodic distributor reads, the
	// steady-state ArchHandleTrap stream on CPU 0 for E1-class plans.
	l.cancelBg = append(l.cancelBg, l.brd.Engine.Every(housekeepEvery, func() {
		if !l.paniced {
			_, _ = l.hv.GuestRead32(0, board.GICDBase+gic.GICDISEnabler)
		}
	}))
	l.console("VFS: Mounted root (ext4 filesystem) readonly on device 179:2.")
}

// OnIRQ implements jailhouse.Inmate: timer ticks and UART interrupts.
func (l *Linux) OnIRQ(cpu, irq int) {
	// Scheduler ticks need no modelled work; the stream itself is what
	// matters to the injector.
	_ = cpu
	_ = irq
}

// OnCPUParked implements jailhouse.Inmate.
func (l *Linux) OnCPUParked(cpu int) {
	l.console("CPU%d: parked by hypervisor", cpu)
}

// OnShutdown implements jailhouse.Inmate.
func (l *Linux) OnShutdown() {
	for _, c := range l.cancelBg {
		c()
	}
	l.cancelBg = nil
}

// OnCorruptedResume implements jailhouse.Inmate: the Linux register
// image. Control-flow corruption can oops the kernel; data corruption
// rarely does (ioctl path reloads registers from the stack).
func (l *Linux) OnCorruptedResume(cpu int, fields []int) {
	if l.paniced {
		return
	}
	rng := l.brd.Engine.RNG()
	for _, f := range fields {
		fatal := false
		switch {
		case f == armv7.RegSP || f == armv7.RegLR || f == armv7.RegPC ||
			f == int(armv7.FieldELR) || f == int(armv7.FieldSPSR):
			fatal = rng.Bool(pOopsControl)
		case f >= armv7.RegR4 && f <= armv7.RegR11:
			fatal = rng.Bool(pOopsData)
		}
		if fatal {
			l.oops(cpu, armv7.FieldName(armv7.Field(f)))
			return
		}
	}
}

// KernelTextFault models a RAM fault landing in the root kernel's text:
// the next instruction fetch through the damaged cache line executes
// garbage and the kernel oopses — the same death rattle as fatal register
// corruption, attributed to the faulted address.
func (l *Linux) KernelTextFault(addr uint64) {
	if l.paniced || !l.booted {
		return
	}
	l.oops(0, fmt.Sprintf("text@%#x", addr))
}

// oops prints the kernel's death rattle and stops root activity. The
// hypervisor survives a root *guest* crash — but every management
// operation is gone with the root cell, so the run is over for the
// classifier (system failure).
func (l *Linux) oops(cpu int, reg string) {
	l.console("Internal error: Oops - undefined instruction: 0 [#1] SMP ARM")
	l.console("PC is at 0x%08x (corrupted %s)", 0xbf000000+l.brd.Engine.RNG().Uint32()%0xFFFF, reg)
	l.console("Kernel panic - not syncing: Fatal exception in interrupt")
	l.paniced = true
	l.panicWhy = "register corruption (" + reg + ")"
	l.oopses++
	for _, c := range l.cancelBg {
		c()
	}
	l.cancelBg = nil
	l.brd.StopTimer(0)
	l.brd.Trace().Addf(l.brd.Now(), sim.KindPanic, cpu, "root kernel panic: corrupted %s", sim.Str(reg))
}
