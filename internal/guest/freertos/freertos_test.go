package freertos_test

import (
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/gpio"
	"github.com/dessertlab/certify/internal/sim"
)

// boot assembles the full stack and runs it for d.
func boot(t *testing.T, seed uint64, d sim.Time) *core.Machine {
	t.Helper()
	m, err := core.BuildMachine(core.DefaultMachineOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(d)
	return m
}

func TestGoldenRunProducesWorkloadOutput(t *testing.T) {
	m := boot(t, 7, 12*sim.Second)
	u := m.Board.UART7

	for _, want := range []string{
		"FreeRTOS V10.4.3 on Jailhouse cell",
		"Scheduler started",
		"[blink] led=",
		"[recv] ok,",
		"[float0] pi≈",
		"[int00]", // at least the first integer task reports
	} {
		if !u.Contains(want) {
			t.Errorf("uart7 missing %q\n%s", want, u.Transcript())
		}
	}
	if halted, why := m.RTOS.Halted(); halted {
		t.Fatalf("golden run halted: %s", why)
	}
}

func TestGoldenRunBlinksLED(t *testing.T) {
	m := boot(t, 8, 5*sim.Second)
	// 500 ms toggle period → ~10 toggles in 5 s.
	n := m.Board.GPIO.ToggleCount(gpio.LEDGreen)
	if n < 8 || n > 12 {
		t.Fatalf("LED toggles = %d, want ≈10", n)
	}
	if m.RTOS.LEDToggleCount() != n {
		t.Fatal("kernel LED count disagrees with GPIO capture")
	}
}

func TestGoldenRunTaskInventory(t *testing.T) {
	m := boot(t, 9, sim.Second)
	tasks := m.RTOS.Tasks()
	// blink + sender + receiver + 2 float + 15 int + stats + IDLE = 22.
	if len(tasks) != 22 {
		t.Fatalf("task count = %d, want 22", len(tasks))
	}
	names := make(map[string]bool)
	for _, tk := range tasks {
		names[tk.Name] = true
	}
	for _, want := range []string{"blink", "sender", "receiver", "float0", "float1", "int00", "int14", "stats", "IDLE"} {
		if !names[want] {
			t.Fatalf("missing task %q (have %v)", want, names)
		}
	}
	if len(m.RTOS.AssertedTasks()) != 0 {
		t.Fatalf("golden run asserted tasks: %v", m.RTOS.AssertedTasks())
	}
}

func TestGoldenRunDeterministic(t *testing.T) {
	a := boot(t, 42, 3*sim.Second)
	b := boot(t, 42, 3*sim.Second)
	if a.Board.UART7.Transcript() != b.Board.UART7.Transcript() {
		t.Fatal("same-seed runs produced different cell transcripts")
	}
	if a.Board.Trace().Hash() != b.Board.Trace().Hash() {
		t.Fatal("same-seed runs produced different traces")
	}
	// Note: golden runs draw nothing from the RNG, so different seeds
	// legitimately produce identical traces; seed sensitivity is tested
	// under injection in the core package.
}

func TestQueueFlowsSequenceNumbers(t *testing.T) {
	m := boot(t, 10, 4*sim.Second)
	if !m.Board.UART7.Contains("[recv] ok,") {
		t.Fatal("receiver produced no reports")
	}
	if m.Board.UART7.Contains("ASSERT: seq") {
		t.Fatal("golden run saw sequence errors")
	}
}

func TestCorruptedWorkRegisterAssertsOneTask(t *testing.T) {
	m, err := core.BuildMachine(core.DefaultMachineOptions(11))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2 * sim.Second)
	// Corrupt task working registers (image slots r8-r11) a few times;
	// whichever self-checking task owns the live registers asserts.
	for i := 0; i < 8; i++ {
		m.RTOS.OnCorruptedResume(1, []int{armv7.RegR9})
		m.Run(200 * sim.Millisecond)
	}
	m.Run(3 * sim.Second)

	if n := len(m.RTOS.AssertedTasks()); n < 1 {
		t.Fatalf("asserted tasks = %d, want at least 1", n)
	}
	if !m.Board.UART7.Contains("ASSERT: checksum") && !m.Board.UART7.Contains("ASSERT: diverged") {
		t.Fatal("no task assert printed")
	}
	// The kernel and the other tasks survive — degraded, not dead.
	if halted, _ := m.RTOS.Halted(); halted {
		t.Fatal("task-level corruption must not halt the kernel")
	}
	before := m.Board.UART7.LineCount()
	m.Run(2 * sim.Second)
	if m.Board.UART7.LineCount() <= before {
		t.Fatal("cell went silent after a task-level assert")
	}
}

func TestScratchRegisterCorruptionIsBenign(t *testing.T) {
	m, err := core.BuildMachine(core.DefaultMachineOptions(12))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(sim.Second)
	m.RTOS.OnCorruptedResume(1, []int{armv7.RegR0, armv7.RegR2, armv7.RegR12})
	m.Run(2 * sim.Second)
	if halted, _ := m.RTOS.Halted(); halted {
		t.Fatal("scratch corruption halted the kernel")
	}
	if len(m.RTOS.AssertedTasks()) != 0 {
		t.Fatal("scratch corruption asserted a task")
	}
}

func TestStackCorruptionHaltsKernel(t *testing.T) {
	// pStackFatal is probabilistic; force repeatedly until it strikes.
	m, err := core.BuildMachine(core.DefaultMachineOptions(13))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(sim.Second)
	for i := 0; i < 64; i++ {
		m.RTOS.OnCorruptedResume(1, []int{armv7.RegSP})
	}
	m.Run(sim.Second)
	halted, why := m.RTOS.Halted()
	if !halted || !strings.Contains(why, "stack overflow") {
		t.Fatalf("Halted = %v %q, want stack overflow", halted, why)
	}
	if !m.Board.UART7.Contains("ASSERT FAILED") {
		t.Fatal("halt not visible on console")
	}
	// After the halt the cell is silent but the hypervisor still
	// reports RUNNING — the inconsistency the paper warns about.
	before := m.Board.UART7.LineCount()
	m.Run(2 * sim.Second)
	if m.Board.UART7.LineCount() != before {
		t.Fatal("halted kernel kept printing")
	}
	cell, ok := m.HV.CellByID(m.CellID)
	if !ok || cell.State.String() != "running" {
		t.Fatalf("cell state after guest death = %v", cell.State)
	}
}

func TestWildJumpGetsCPUParked(t *testing.T) {
	m, err := core.BuildMachine(core.DefaultMachineOptions(14))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(sim.Second)
	for i := 0; i < 32; i++ { // beat pWildFatal
		m.RTOS.OnCorruptedResume(1, []int{armv7.RegPC})
	}
	m.Run(sim.Second)
	p := m.HV.PerCPU(1)
	if !p.Parked {
		t.Fatal("wild jump did not park the CPU")
	}
	if !m.HV.ConsoleContains("Parking CPU 1") {
		t.Fatal("missing park console evidence")
	}
	// Root cell unaffected; destroy still succeeds (paper E3).
	if err := m.Linux.CellDestroy(m.CellID); err != nil {
		t.Fatalf("destroy after park: %v", err)
	}
}

func TestTickSkewIsTolerated(t *testing.T) {
	m, err := core.BuildMachine(core.DefaultMachineOptions(15))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(sim.Second)
	m.RTOS.OnCorruptedResume(1, []int{armv7.RegR6})
	m.Run(2 * sim.Second)
	if halted, _ := m.RTOS.Halted(); halted {
		t.Fatal("tick skew halted the kernel")
	}
}

func TestHaltedKernelIgnoresFurtherCorruption(t *testing.T) {
	m, err := core.BuildMachine(core.DefaultMachineOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(sim.Second)
	for i := 0; i < 64; i++ {
		m.RTOS.OnCorruptedResume(1, []int{armv7.RegSP})
	}
	m.Run(sim.Second)
	if halted, _ := m.RTOS.Halted(); !halted {
		t.Skip("stack corruption did not strike with this seed")
	}
	// Must not panic or change state.
	m.RTOS.OnCorruptedResume(1, []int{armv7.RegPC, armv7.RegR4})
	m.RTOS.OnIRQ(1, 27)
}
