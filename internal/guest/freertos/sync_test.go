package freertos

import (
	"testing"

	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/jailhouse"
)

// bareKernel returns a kernel without booting the full machine — the
// primitives under test don't touch the hypervisor.
func bareKernel() *Kernel {
	brd := board.New(1)
	hv := jailhouse.New(brd)
	return NewKernel(hv, 1)
}

func TestSemaphoreTakeGive(t *testing.T) {
	k := bareKernel()
	s := k.NewSemaphore("pool", 2, 2)
	a := k.CreateTask("a", 1, nil)
	b := k.CreateTask("b", 1, nil)
	c := k.CreateTask("c", 1, nil)

	if !s.Take(k, a) || !s.Take(k, b) {
		t.Fatal("initial takes failed")
	}
	if s.Count() != 0 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Take(k, c) {
		t.Fatal("empty semaphore granted")
	}
	if c.State != StateBlocked {
		t.Fatal("failed taker not blocked")
	}
	if !s.Give(k, a) {
		t.Fatal("give failed")
	}
	if c.State != StateReady {
		t.Fatal("waiter not woken by give")
	}
	// The unit went to the waiter conceptually; count stays consumable.
	if s.Gives != 1 || s.Takes != 2 {
		t.Fatalf("stats = %d/%d", s.Gives, s.Takes)
	}
}

func TestSemaphoreOverGive(t *testing.T) {
	k := bareKernel()
	s := k.NewSemaphore("sig", 1, 1)
	a := k.CreateTask("a", 1, nil)
	if s.Give(k, a) {
		t.Fatal("over-give accepted at max")
	}
	if k.NewSemaphore("x", -3, 0).Count() != 0 {
		t.Fatal("degenerate bounds not clamped")
	}
}

func TestMutexPriorityInheritance(t *testing.T) {
	k := bareKernel()
	m := k.NewMutex("uart")
	low := k.CreateTask("low", 1, nil)
	high := k.CreateTask("high", 5, nil)

	if !m.Lock(k, low) {
		t.Fatal("uncontended lock failed")
	}
	if m.Lock(k, high) {
		t.Fatal("contended lock granted")
	}
	// The low-priority holder inherited the waiter's priority.
	if low.Priority != 5 {
		t.Fatalf("holder priority = %d, want inherited 5", low.Priority)
	}
	if m.Inherits != 1 {
		t.Fatalf("inherits = %d", m.Inherits)
	}
	if !m.Unlock(k, low) {
		t.Fatal("unlock failed")
	}
	// Base priority restored; lock handed to the waiter.
	if low.Priority != 1 {
		t.Fatalf("holder priority after unlock = %d", low.Priority)
	}
	if m.Holder() != high || high.State != StateReady {
		t.Fatal("lock not handed to the high-priority waiter")
	}
}

func TestMutexHandoffPicksHighestWaiter(t *testing.T) {
	k := bareKernel()
	m := k.NewMutex("bus")
	holder := k.CreateTask("h", 2, nil)
	mid := k.CreateTask("mid", 3, nil)
	top := k.CreateTask("top", 6, nil)

	if !m.Lock(k, holder) {
		t.Fatal("lock")
	}
	m.Lock(k, mid)
	m.Lock(k, top)
	if !m.Unlock(k, holder) {
		t.Fatal("unlock")
	}
	if m.Holder() != top {
		t.Fatalf("handoff to %v, want top", m.Holder().Name)
	}
	// mid still blocked.
	if mid.State != StateBlocked {
		t.Fatal("mid woke without the lock")
	}
}

func TestMutexWrongUnlocker(t *testing.T) {
	k := bareKernel()
	m := k.NewMutex("x")
	a := k.CreateTask("a", 1, nil)
	b := k.CreateTask("b", 1, nil)
	if !m.Lock(k, a) {
		t.Fatal("lock")
	}
	if m.Unlock(k, b) {
		t.Fatal("non-holder unlock accepted")
	}
	if m.Lock(k, a) != true {
		t.Fatal("recursive hold must be tolerated")
	}
}
