package freertos

import (
	"math"

	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/gpio"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/uart"
)

// Workload parameters for the paper's task set.
const (
	blinkPeriodTicks = 500 // LED toggle every 500 ms
	senderPeriod     = 20  // send a sequence number every 20 ms
	receiverReport   = 50  // report every 50 received messages
	floatPeriod      = 100 // FP tasks iterate every 100 ms
	intPeriod        = 40  // integer tasks iterate every 40 ms
	intReport        = 250 // integer summary every 250 iterations
	NumIntegerTasks  = 15  // "fifteen integer ones"
	NumFloatTasks    = 2   // "two floating-point arithmetic tasks"
)

// NewPaperWorkload builds the kernel with the exact task mix of the
// paper's experiments: "a task to blink an onboard led, a couple of
// send/receive tasks, two floating-point arithmetic tasks and fifteen
// integer ones" — plus a low-priority runtime-stats reporter
// (vTaskGetRunTimeStats-style) whose periodic line gives the classifier
// a whole-system liveness summary.
func NewPaperWorkload(hv *jailhouse.Hypervisor, cpu int) *Kernel {
	k := NewKernel(hv, cpu)
	k.InstallPaperWorkload()
	return k
}

// InstallPaperWorkload populates the kernel with the paper's task set.
// It assumes a pristine kernel — freshly built, or just deep-reset; the
// warm machine path calls it after DeepReset to rebuild the workload
// from recycled control blocks with fresh step closures (closures carry
// per-task mutable state and are the one thing a reset cannot rewind).
func (k *Kernel) InstallPaperWorkload() {
	q := k.NewQueue("seq", 8)

	k.CreateTask("blink", 3, blinkTask())
	k.CreateTask("sender", 2, senderTask(q))
	k.CreateTask("receiver", 2, receiverTask(q))
	for i := 0; i < NumFloatTasks; i++ {
		k.CreateTask(taskName("float", i), 1, floatTask(i))
	}
	for i := 0; i < NumIntegerTasks; i++ {
		k.CreateTask(taskName("int", i), 1, integerTask(i))
	}
	k.CreateTask("stats", 1, statsTask())
}

// statsPeriod is the runtime-stats reporting interval in ticks (10 s).
const statsPeriod = 10000

// statsTask periodically prints scheduler-level health: runnable tasks,
// context switches and any asserted tasks.
func statsTask() StepFunc {
	return func(k *Kernel, t *TCB) bool {
		runnable, asserted := 0, 0
		for _, tk := range k.Tasks() {
			switch {
			case tk.Asserted:
				asserted++
			case tk.State != StateSuspended:
				runnable++
			}
		}
		k.Printf("[stats] tick=%d tasks=%d asserted=%d ctxsw=%d\r\n",
			k.Tick(), runnable, asserted, k.ContextSwitches)
		k.Delay(t, statsPeriod)
		return true
	}
}

func taskName(base string, i int) string {
	if base == "float" {
		return base + string(rune('0'+i%10))
	}
	return base + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// blinkTask toggles the board LED and reports, the cell's most visible
// liveness signal.
func blinkTask() StepFunc {
	on := false
	return func(k *Kernel, t *TCB) bool {
		on = !on
		v := uint32(0)
		if on {
			v = 1
		}
		_ = k.hv.GuestWrite32(k.cpu, board.GPIOBase, v)
		k.Printf("[blink] led=%d tick=%d\r\n", v, k.tick)
		k.Delay(t, blinkPeriodTicks)
		return true
	}
}

// senderTask pushes an increasing sequence number into the queue.
func senderTask(q *Queue) StepFunc {
	seq := uint32(0)
	return func(k *Kernel, t *TCB) bool {
		if q.Send(k, t, seq) {
			seq++
			k.Delay(t, senderPeriod)
		}
		return true
	}
}

// receiverTask validates the sequence and reports periodically — its
// sequence check is what turns a corrupted r0-r3 operand into visible
// (but survivable) evidence.
func receiverTask(q *Queue) StepFunc {
	expect := uint32(0)
	var got uint32
	return func(k *Kernel, t *TCB) bool {
		if !q.Receive(k, t, &got) {
			return true
		}
		if got != expect {
			k.Printf("[recv] ASSERT: seq %d != expected %d\r\n", got, expect)
			expect = got // resynchronise and continue
		}
		expect++
		if q.Receives%receiverReport == 0 {
			k.Printf("[recv] ok, %d messages\r\n", q.Receives)
		}
		return true
	}
}

// floatTask accumulates a Leibniz series for pi/4 and checks convergence.
// The accumulator lives in the task's register-image slots (Work[0:2]),
// so a flipped working register becomes a diverged sum the task itself
// detects — the floating-point workload's self-check.
func floatTask(id int) StepFunc {
	n := 0
	return func(k *Kernel, t *TCB) bool {
		if t.Asserted {
			return false
		}
		sum := math.Float64frombits(uint64(t.Work[0])<<32 | uint64(t.Work[1]))
		for i := 0; i < 50; i++ {
			term := 1.0 / float64(2*n+1)
			if n%2 == 1 {
				term = -term
			}
			sum += term
			n++
		}
		if n > 1000 && (math.IsNaN(sum) || math.Abs(sum-math.Pi/4) > 0.1) {
			k.Printf("[float%d] ASSERT: diverged sum=%f n=%d\r\n", id, sum, n)
			t.Asserted = true
			return false
		}
		bits := math.Float64bits(sum)
		t.Work[0], t.Work[1] = uint32(bits>>32), uint32(bits)
		if n%5000 == 0 {
			k.Printf("[float%d] pi≈%f after %d terms\r\n", id, 4*sum, n)
		}
		k.Delay(t, floatPeriod)
		return true
	}
}

// integerTask runs a modular checksum loop with a closed-form check,
// detecting working-register corruption (r8-r11 image slots).
func integerTask(id int) StepFunc {
	const rounds = 32
	iter := uint32(0)
	return func(k *Kernel, t *TCB) bool {
		if t.Asserted {
			return false
		}
		if t.Work[1] != iter*rounds {
			k.Printf("[int%02d] ASSERT: checksum %d != %d\r\n", id, t.Work[1], iter*rounds)
			t.Asserted = true
			return false
		}
		for i := uint32(0); i < rounds; i++ {
			t.Work[1]++
		}
		iter++
		if iter%intReport == 0 {
			k.Printf("[int%02d] %d iterations ok\r\n", id, iter)
		}
		k.Delay(t, intPeriod)
		return true
	}
}

// LEDToggleCount reports how many times the blink task has toggled the
// LED — read from the GPIO capture, usable by the classifier.
func (k *Kernel) LEDToggleCount() int {
	return k.brd.GPIO.ToggleCount(gpio.LEDGreen)
}

// AssertedTasks returns the names of tasks that failed their own checks.
func (k *Kernel) AssertedTasks() []string {
	var out []string
	for _, t := range k.tasks {
		if t.Asserted {
			out = append(out, t.Name)
		}
	}
	return out
}

// ConsoleBase re-exports where the cell console lives.
const ConsoleBase = board.UART7Base + uart.RegTHR
