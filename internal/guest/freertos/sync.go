package freertos

// Synchronisation primitives of the FreeRTOS API surface the workload
// uses: counting/binary semaphores and a mutex with priority
// inheritance — the mechanism that keeps a low-priority holder from
// starving a high-priority waiter (unbounded priority inversion being a
// classic certification concern in mixed-criticality systems).

// Semaphore is a counting semaphore with task blocking.
type Semaphore struct {
	name    string
	count   int
	max     int
	waiters []*TCB

	Gives uint64
	Takes uint64
}

// NewSemaphore creates a counting semaphore (initial=max=n for a
// resource pool, initial=0/max=1 for a signal).
func (k *Kernel) NewSemaphore(name string, initial, max int) *Semaphore {
	if max < 1 {
		max = 1
	}
	if initial < 0 {
		initial = 0
	}
	if initial > max {
		initial = max
	}
	return &Semaphore{name: name, count: initial, max: max}
}

// Take acquires one unit on behalf of t, blocking (returning false) when
// none is available; the task retries on its next slice.
func (s *Semaphore) Take(k *Kernel, t *TCB) bool {
	if s.count > 0 {
		s.count--
		s.Takes++
		return true
	}
	t.State = StateBlocked
	s.waiters = append(s.waiters, t)
	return false
}

// Give releases one unit, waking the longest-blocked waiter.
func (s *Semaphore) Give(k *Kernel, t *TCB) bool {
	if s.count >= s.max {
		return false // over-give, FreeRTOS returns errQUEUE_FULL
	}
	s.count++
	s.Gives++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.State = StateReady
	}
	return true
}

// Count returns the available units.
func (s *Semaphore) Count() int { return s.count }

// Mutex is a binary lock with priority inheritance.
type Mutex struct {
	name   string
	holder *TCB
	// basePriority is the holder's priority before inheritance.
	basePriority int
	waiters      []*TCB

	Locks    uint64
	Inherits uint64
}

// NewMutex creates an unlocked mutex.
func (k *Kernel) NewMutex(name string) *Mutex {
	return &Mutex{name: name}
}

// Lock acquires the mutex for t. When the mutex is held by a
// lower-priority task, the holder inherits t's priority — bounding the
// inversion window. Returns false (and blocks t) when contended.
func (m *Mutex) Lock(k *Kernel, t *TCB) bool {
	if m.holder == nil {
		m.holder = t
		m.basePriority = t.Priority
		m.Locks++
		return true
	}
	if m.holder == t {
		return true // recursive hold, counted once in this model
	}
	// Priority inheritance: boost the holder to the waiter's priority.
	if t.Priority > m.holder.Priority {
		m.holder.Priority = t.Priority
		m.Inherits++
	}
	t.State = StateBlocked
	m.waiters = append(m.waiters, t)
	return false
}

// Unlock releases the mutex, restoring the holder's base priority and
// handing the lock to the highest-priority waiter.
func (m *Mutex) Unlock(k *Kernel, t *TCB) bool {
	if m.holder != t {
		return false // not the holder: FreeRTOS asserts here
	}
	m.holder.Priority = m.basePriority
	m.holder = nil
	if len(m.waiters) == 0 {
		return true
	}
	// Highest-priority waiter wins; FIFO among equals.
	best := 0
	for i, w := range m.waiters {
		if w.Priority > m.waiters[best].Priority {
			best = i
		}
	}
	next := m.waiters[best]
	m.waiters = append(m.waiters[:best], m.waiters[best+1:]...)
	m.holder = next
	m.basePriority = next.Priority
	m.Locks++
	next.State = StateReady
	return true
}

// Holder returns the current holder (nil when free).
func (m *Mutex) Holder() *TCB { return m.holder }
