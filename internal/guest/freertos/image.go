package freertos

import "github.com/dessertlab/certify/internal/armv7"

// Register image of the FreeRTOS cell — the documented contract between
// architectural registers and kernel state. When the hypervisor restores
// a frame whose slots were flipped, OnCorruptedResume maps each slot to
// its OS-level consequence:
//
//	r0-r3   operation scratch        → transient; at worst a wrong value
//	                                   in flight (detected by task checks)
//	r4      pxCurrentTCB             → kernel assert (probabilistic: the
//	                                   flip must hit dereferenced bits)
//	r5      ready-list bitmap        → missed wakeups, self-healing
//	r6      xTickCount (low word)    → timing skew, tolerated
//	r7      queue head pointer       → queue spine corruption → assert
//	r8-r11  task working registers   → task checksum asserts (task dies,
//	                                   kernel survives)
//	r12     intra-procedure scratch  → no effect
//	sp      task stack pointer       → stack-overflow check trips at the
//	                                   next context switch
//	lr/pc   control flow             → wild jump → prefetch abort →
//	                                   hypervisor parks the CPU
//	spsr    saved mode bits          → illegal resume state → wild jump
//
// The probabilistic gates model bit-position sensitivity (a flip in a
// pointer's low bits often lands in the same structure): they are
// documented calibration constants, not hidden magic.
const (
	pTCBFatal   = 0.35 // r4 flip actually breaks the TCB dereference
	pQueueFatal = 0.40 // r7 flip poisons the queue spine
	pStackFatal = 0.45 // sp flip escapes the current frame
	pWildFatal  = 0.60 // lr/pc flip leaves the mapped text (high bits)
	pWorkLive   = 0.15 // r8-r11 flip hit a live work register of a task
	pBootFatal  = 0.50 // any GPR flip derails the boot-time init loops
)

// OnCorruptedResume implements jailhouse.Inmate. fields holds the
// trap-context slots (armv7.Field values) the injector flipped.
func (k *Kernel) OnCorruptedResume(cpu int, fields []int) {
	if k.halted {
		return
	}
	rng := k.brd.Engine.RNG()
	// Boot window: the init loops keep nearly everything live — loop
	// counters, base addresses, the return path. A flip here typically
	// leaves the cell "in a non-executable state" with a blank USART
	// (the paper's E2 phenomenology): no output, no scheduler, while
	// the hypervisor keeps reporting the cell RUNNING.
	if !k.started {
		for _, f := range fields {
			if f >= armv7.RegR0 && f <= armv7.RegPC && rng.Bool(pBootFatal) {
				k.halted = true
				k.haltReason = "boot-time corruption (" + armv7.RegName(f) + ")"
				k.brd.StopTimer(k.cpu)
				return
			}
		}
		return
	}
	for _, f := range fields {
		switch {
		case f >= armv7.RegR0 && f <= armv7.RegR3:
			// Scratch: the in-flight operand may be wrong. The
			// send/receive pair detects sequence errors itself.
			continue
		case f == armv7.RegR4:
			if rng.Bool(pTCBFatal) {
				k.kernelPanic("pxCurrentTCB corrupted")
				return
			}
		case f == armv7.RegR5:
			// Ready bitmap: drop a wakeup; delayed tasks re-arm.
			for _, t := range k.tasks {
				if t.State == StateReady {
					t.State = StateDelayed
					t.wakeTick = k.tick + 5
					break
				}
			}
		case f == armv7.RegR6:
			k.tick += uint64(rng.Intn(16)) // timing skew only
		case f == armv7.RegR7:
			if len(k.queues) > 0 && rng.Bool(pQueueFatal) {
				k.queues[rng.Intn(len(k.queues))].poisoned = true
			}
		case f >= armv7.RegR8 && f <= armv7.RegR11:
			// A task's working register: when the flipped slot was
			// live, the owning task's accumulator is damaged and its
			// own checksum assert fires on the next slice.
			if rng.Bool(pWorkLive) {
				k.corruptTaskWork(f-armv7.RegR8, rng.Uint32())
			}
		case f == armv7.RegSP:
			if rng.Bool(pStackFatal) {
				k.stackSmashed = true
			}
		case f == armv7.RegLR, f == armv7.RegPC,
			f == int(armv7.FieldELR), f == int(armv7.FieldSPSR):
			if rng.Bool(pWildFatal) {
				k.wildJump = true
				// Above the cell's 16 MiB RAM: nothing executable.
				k.wildJumpAddr = 0x0300_0000 + uint64(rng.Intn(1<<20))
			}
		}
	}
}

// corruptTaskWork flips a working value of whichever task's context held
// the live registers when the trap fired. Traps are asynchronous with
// respect to the task schedule, so the victim is effectively uniform over
// the task set (the idle task included — those flips die silently, as on
// real hardware).
func (k *Kernel) corruptTaskWork(slot int, garbage uint32) {
	if len(k.tasks) == 0 {
		return
	}
	victim := k.tasks[k.brd.Engine.RNG().Intn(len(k.tasks))]
	if victim.Asserted {
		return
	}
	victim.Work[slot%4] ^= garbage | 1
}
