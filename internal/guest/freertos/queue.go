package freertos

// Queue is a FreeRTOS-style fixed-capacity message queue with blocking
// send and receive. Tasks that would overflow or underflow the queue move
// to the Blocked state and are woken when space or data appears.
type Queue struct {
	name string
	buf  []uint32
	cap  int

	sendWaiters []*TCB
	recvWaiters []*TCB

	// poisoned is set when the queue-head corruption (register image r7)
	// strikes; the next operation asserts.
	poisoned bool

	Sends    uint64
	Receives uint64
}

// NewQueue creates a queue with the given capacity and registers it with
// the kernel for corruption bookkeeping. Control blocks recycled by a
// DeepReset are reused before anything is allocated.
func (k *Kernel) NewQueue(name string, capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	var q *Queue
	if n := len(k.queuePool); n > 0 {
		q = k.queuePool[n-1]
		k.queuePool = k.queuePool[:n-1]
	} else {
		q = &Queue{}
	}
	q.name, q.cap = name, capacity
	k.queues = append(k.queues, q)
	return q
}

// recycle empties the queue for reuse while keeping its buffers
// allocated — the DeepReset path.
func (q *Queue) recycle() {
	for i := range q.sendWaiters {
		q.sendWaiters[i] = nil
	}
	for i := range q.recvWaiters {
		q.recvWaiters[i] = nil
	}
	*q = Queue{
		buf:         q.buf[:0],
		sendWaiters: q.sendWaiters[:0],
		recvWaiters: q.recvWaiters[:0],
	}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.buf) }

// Send enqueues v on behalf of task t. If the queue is full the task
// blocks; returns false in that case (the task retries on its next
// slice, FreeRTOS's portMAX_DELAY behaviour folded into the step model).
func (q *Queue) Send(k *Kernel, t *TCB, v uint32) bool {
	if q.poisoned {
		k.queueAssert(t, q)
		return false
	}
	if len(q.buf) >= q.cap {
		t.State = StateBlocked
		t.waitOn = q
		q.sendWaiters = append(q.sendWaiters, t)
		return false
	}
	q.buf = append(q.buf, v)
	q.Sends++
	// Wake one receiver.
	if len(q.recvWaiters) > 0 {
		w := q.recvWaiters[0]
		q.recvWaiters = q.recvWaiters[1:]
		w.State = StateReady
		w.waitOn = nil
	}
	return true
}

// Receive dequeues into *out on behalf of task t, blocking when empty.
func (q *Queue) Receive(k *Kernel, t *TCB, out *uint32) bool {
	if q.poisoned {
		k.queueAssert(t, q)
		return false
	}
	if len(q.buf) == 0 {
		t.State = StateBlocked
		t.waitOn = q
		q.recvWaiters = append(q.recvWaiters, t)
		return false
	}
	*out = q.buf[0]
	q.buf = q.buf[1:]
	q.Receives++
	if len(q.sendWaiters) > 0 {
		w := q.sendWaiters[0]
		q.sendWaiters = q.sendWaiters[1:]
		w.State = StateReady
		w.waitOn = nil
	}
	return true
}

// queueAssert is the configASSERT on a corrupted queue structure: fatal
// at kernel level, because the queue spine lives in kernel heap.
func (k *Kernel) queueAssert(t *TCB, q *Queue) {
	k.kernelPanic("queue " + q.name + " corrupted (op by " + t.Name + ")")
}
