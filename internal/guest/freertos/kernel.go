// Package freertos models a FreeRTOS-class real-time kernel running as a
// Jailhouse inmate: a preemptive priority scheduler with round-robin
// time-slicing, delayed-task lists, blocking queues, a 1 kHz tick from
// the virtual timer, and the paper's exact workload — one LED-blink task,
// a send/receive pair, two floating-point tasks and fifteen integer
// tasks.
//
// The kernel also defines the cell's *register image*: the documented
// mapping from architectural registers to kernel state that determines
// how a corrupted register frame restored by the hypervisor becomes an
// OS-level failure (task assert, kernel assert, stack-check failure or a
// wild jump that ends in a hypervisor-parked CPU).
package freertos

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/gic"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
	"github.com/dessertlab/certify/internal/uart"
)

// Kernel configuration, FreeRTOSConfig.h-style.
const (
	TickRateHz     = 1000 // configTICK_RATE_HZ
	MaxPriorities  = 8    // configMAX_PRIORITIES
	IdlePriority   = 0
	tickPeriod     = sim.Second / TickRateHz
	housekeepTicks = 500 // distributor hygiene cadence: ~2 traps/s steady
	stackCanary    = 0xA5A5A5A5
)

// TaskState is a task's scheduling state.
type TaskState uint8

// Task states.
const (
	StateReady TaskState = iota + 1
	StateRunning
	StateBlocked
	StateDelayed
	StateSuspended
)

// StepFunc performs one time-slice of a task's work. Returning false
// suspends the task permanently (task exit).
type StepFunc func(k *Kernel, t *TCB) bool

// TCB is a task control block.
type TCB struct {
	Name     string
	Priority int
	State    TaskState

	step     StepFunc
	wakeTick uint64
	waitOn   *Queue

	// Working registers of the task — the state mapped onto r8-r11 in
	// the register image. Tasks keep checksums here; corruption is
	// detected by the tasks themselves (configASSERT style).
	Work [4]uint32

	// stackGuard models the stack canary checked at context switch.
	stackGuard uint32

	// Asserted is set once the task failed its own invariant check and
	// was suspended.
	Asserted bool

	runs uint64
}

// Kernel is one FreeRTOS instance bound to a cell CPU.
type Kernel struct {
	hv  *jailhouse.Hypervisor
	brd *board.Board
	cpu int

	tasks   []*TCB
	current *TCB
	idle    *TCB

	tick       uint64
	started    bool
	halted     bool
	haltReason string

	// wildJump is armed when control-flow registers were corrupted: the
	// next slice fetches from a garbage address instead of running,
	// which the hypervisor turns into an unhandled prefetch abort.
	wildJump     bool
	wildJumpAddr uint64

	// stackSmashed is armed when the stack pointer was corrupted; the
	// check fires at the next context switch.
	stackSmashed bool

	// queues registered for corruption bookkeeping.
	queues []*Queue

	// tcbPool and queuePool recycle control blocks across DeepReset
	// cycles: CreateTask and NewQueue draw from them instead of
	// allocating, so a warm machine's kernel rebuilds its workload
	// allocation-free.
	tcbPool   []*TCB
	queuePool []*Queue

	// stats
	ContextSwitches uint64
	TicksSeen       uint64
}

// NewKernel returns a kernel for the given cell CPU. Call through
// jailhouse.LoadInmate; the hypervisor invokes Boot when the cell starts.
func NewKernel(hv *jailhouse.Hypervisor, cpu int) *Kernel {
	return &Kernel{hv: hv, brd: hv.Board(), cpu: cpu}
}

var _ jailhouse.Inmate = (*Kernel)(nil)

// DeepReset restores the kernel to the state NewKernel establishes, in
// place: no tasks, no queues, tick zero, scheduler not started, no armed
// corruption (wild jump / smashed stack) and zeroed statistics. Existing
// task and queue control blocks are recycled into internal pools that
// the next CreateTask/NewQueue calls drain, so re-installing a workload
// on a deep-reset kernel performs no steady-state allocation. The
// hypervisor binding survives; cpu rebinds the cell CPU.
func (k *Kernel) DeepReset(cpu int) {
	for _, t := range k.tasks {
		*t = TCB{} // release the step closure and any wait edges
		k.tcbPool = append(k.tcbPool, t)
	}
	k.tasks = k.tasks[:0]
	for _, q := range k.queues {
		q.recycle()
		k.queuePool = append(k.queuePool, q)
	}
	k.queues = k.queues[:0]
	k.cpu = cpu
	k.current, k.idle = nil, nil
	k.tick = 0
	k.started = false
	k.halted, k.haltReason = false, ""
	k.wildJump, k.wildJumpAddr = false, 0
	k.stackSmashed = false
	k.ContextSwitches, k.TicksSeen = 0, 0
}

// KernelSnapshot captures a kernel at the machine's post-boot capture
// point: after the workload is installed but before the scheduler has
// run a single task slice. Task step closures carry per-task mutable
// locals that cannot be copied, so the snapshot does not try — it
// records only what distinguishes the capture point (the bound CPU and
// whether Boot already started the scheduler), and RestoreSnapshot
// rebuilds the workload from scratch, which is byte-equivalent exactly
// because nothing had run yet. Capturing a kernel mid-run would not be
// admissible; core.Machine only captures before its first Run.
type KernelSnapshot struct {
	cpu     int
	started bool
}

// CaptureSnapshot records the kernel's capture-point state.
func (k *Kernel) CaptureSnapshot() KernelSnapshot {
	return KernelSnapshot{cpu: k.cpu, started: k.started}
}

// RestoreSnapshot rewinds the kernel to the captured post-boot state:
// deep reset, the paper workload reinstalled with fresh step closures,
// and — when the capture happened after Boot — the idle task and the
// started latch re-established, mirroring the tail of Boot itself.
func (k *Kernel) RestoreSnapshot(s KernelSnapshot) {
	k.DeepReset(s.cpu)
	k.InstallPaperWorkload()
	if s.started {
		k.idle = k.CreateTask("IDLE", IdlePriority, func(*Kernel, *TCB) bool { return true })
		k.started = true
	}
}

// Name implements jailhouse.Inmate.
func (k *Kernel) Name() string { return "FreeRTOS" }

// Halted reports whether the kernel stopped itself (assert/stack check),
// with the reason.
func (k *Kernel) Halted() (bool, string) { return k.halted, k.haltReason }

// Tick returns the current tick count.
func (k *Kernel) Tick() uint64 { return k.tick }

// Tasks returns the task list (for tests and reports).
func (k *Kernel) Tasks() []*TCB {
	out := make([]*TCB, len(k.tasks))
	copy(out, k.tasks)
	return out
}

// Queues returns the registered queues (for tests and the machine-level
// state digest).
func (k *Kernel) Queues() []*Queue {
	out := make([]*Queue, len(k.queues))
	copy(out, k.queues)
	return out
}

// CorruptRandomTCB damages one random task control block in place — the
// RAM fault model's guest-heap stratum. Most draws flip a bit in a
// working register, which the task's own configASSERT-style checks catch
// (task assert, silent degradation); a low draw smashes the stack canary,
// which the scheduler's context-switch check escalates to a kernel-level
// assert. Returns a description of the damage for the injection log.
func (k *Kernel) CorruptRandomTCB(rng *sim.RNG) string {
	if len(k.tasks) == 0 {
		return "no tasks to corrupt"
	}
	t := k.tasks[rng.Intn(len(k.tasks))]
	if rng.Bool(0.25) {
		t.stackGuard ^= 1 << uint(rng.Intn(32))
		return "stack canary of task " + t.Name
	}
	slot := rng.Intn(len(t.Work))
	t.Work[slot] ^= 1 << uint(rng.Intn(32))
	return fmt.Sprintf("work register %d of task %s", slot, t.Name)
}

// CreateTask registers a task. Must be called before Boot completes
// (tasks created later are accepted but start on the next tick).
func (k *Kernel) CreateTask(name string, priority int, step StepFunc) *TCB {
	if priority < 0 {
		priority = 0
	}
	if priority >= MaxPriorities {
		priority = MaxPriorities - 1
	}
	var t *TCB
	if n := len(k.tcbPool); n > 0 {
		t = k.tcbPool[n-1]
		k.tcbPool = k.tcbPool[:n-1]
	} else {
		t = &TCB{}
	}
	*t = TCB{
		Name:       name,
		Priority:   priority,
		State:      StateReady,
		step:       step,
		stackGuard: stackCanary,
	}
	k.tasks = append(k.tasks, t)
	return t
}

// putString writes to the cell's console UART through the guest port —
// a direct-assigned device, so no trap is generated, exactly like the
// real inmate's memory-mapped UART.
func (k *Kernel) putString(s string) {
	for i := 0; i < len(s); i++ {
		_ = k.hv.GuestWrite32(k.cpu, board.UART7Base+uart.RegTHR, uint32(s[i]))
	}
}

// Printf prints a line to the cell console.
func (k *Kernel) Printf(format string, args ...any) {
	if k.halted {
		return
	}
	k.putString(fmt.Sprintf(format, args...))
}

// Boot implements jailhouse.Inmate: the inmate's startup — banner,
// interrupt controller setup (a burst of trapped GICD accesses, the E2
// injection window), timer programming, then the scheduler starts.
func (k *Kernel) Boot(cpu int) {
	if k.started {
		return
	}
	k.cpu = cpu
	k.putString("FreeRTOS V10.4.3 on Jailhouse cell\r\n")

	// Identify the core the way a real port's startup does: trapped
	// CP15 reads of the ID registers (more trap-class variety in the
	// boot window the E2 injections strike).
	midr := k.hv.GuestMRC(k.cpu, armv7.CP15MIDR)
	mpidr := k.hv.GuestMRC(k.cpu, armv7.CP15MPIDR)
	k.Printf("core: midr=%08x mpidr=%08x\r\n", midr, mpidr)
	if k.dead() {
		return
	}

	// GIC distributor initialisation: priority grid and interrupt
	// enables, register by register. Every access traps into
	// ArchHandleTrap for emulation. A corrupted boot access can park
	// the CPU or derail the loop — then the cell never speaks: the
	// paper's blank-USART state.
	for w := 0; w < gic.MaxIRQ; w += 4 {
		k.gicdWrite(uint64(gic.GICDIPriorityr+w), 0xA0A0A0A0)
		if k.dead() {
			return
		}
	}
	k.gicdWrite(gic.GICDISEnabler, 1<<gic.IRQVirtualTimer|1<<0) // timer PPI + start SGI
	word := board.IRQUart7 / 32
	k.gicdWrite(uint64(gic.GICDISEnabler+4*word), 1<<uint(board.IRQUart7%32))
	k.gicdWrite(gic.GICDCtlr, 1)
	if k.dead() {
		return
	}

	// Program the (untrapped) per-CPU virtual timer: the 1 kHz tick.
	k.brd.StartTimer(k.cpu, tickPeriod)

	k.idle = k.CreateTask("IDLE", IdlePriority, func(*Kernel, *TCB) bool { return true })
	k.started = true
	k.putString("Scheduler started\r\n")
}

// dead reports whether the kernel's CPU can no longer run guest code.
func (k *Kernel) dead() bool {
	p := k.hv.PerCPU(k.cpu)
	if p == nil {
		return true
	}
	if halted, _ := k.brd.Engine.Halted(); halted {
		return true
	}
	return p.Parked || k.halted
}

// gicdWrite performs one trapped distributor write.
func (k *Kernel) gicdWrite(off uint64, v uint32) {
	_ = k.hv.GuestWrite32(k.cpu, board.GICDBase+off, v)
}

// gicdRead performs one trapped distributor read.
func (k *Kernel) gicdRead(off uint64) uint32 {
	v, _ := k.hv.GuestRead32(k.cpu, board.GICDBase+off)
	return v
}

// OnIRQ implements jailhouse.Inmate: virtual IRQ delivery.
func (k *Kernel) OnIRQ(cpu, irq int) {
	if k.halted {
		return
	}
	switch irq {
	case gic.IRQVirtualTimer:
		k.onTick()
	case board.IRQUart7:
		// console interrupt: nothing pending in this model
	default:
		k.Printf("unexpected IRQ %d\r\n", irq)
	}
}

// onTick is the tick ISR plus the scheduler.
func (k *Kernel) onTick() {
	if !k.started || k.halted {
		return
	}
	k.tick++
	k.TicksSeen++

	// A pending wild jump executes *before* any scheduling: the guest
	// resumes at the corrupted address and immediately prefetch-aborts
	// into the hypervisor, which parks the CPU (error-code path).
	if k.wildJump {
		k.wildJump = false
		_ = k.hv.GuestFetch(k.cpu, k.wildJumpAddr)
		return
	}

	// Distributor hygiene at a modest cadence: the steady-state
	// ArchHandleTrap stream on the cell CPU that the Figure 3 campaign
	// injects into.
	if k.tick%housekeepTicks == 0 {
		_ = k.gicdRead(gic.GICDISEnabler)
		if k.tick%(housekeepTicks*4) == 0 {
			k.gicdWrite(gic.GICDISEnabler, 1<<gic.IRQVirtualTimer)
		}
		if k.dead() {
			return
		}
	}

	k.reschedule()
	if k.current != nil && !k.halted {
		t := k.current
		t.runs++
		if !t.step(k, t) {
			t.State = StateSuspended
		}
	}
}

// reschedule wakes due delayed tasks, picks the highest-priority ready
// task (round-robin within a priority level), and performs the
// context-switch integrity checks. Waking and selection share one pass
// over the task list: a task woken by this tick is immediately eligible,
// exactly as the separate wake loop that used to precede selection made
// it, and the first task of an equal-priority group still wins because
// the pass visits tasks in list order.
func (k *Kernel) reschedule() {
	// Context-switch stack check (the FreeRTOS
	// configCHECK_FOR_STACK_OVERFLOW hook).
	if k.stackSmashed || (k.current != nil && k.current.stackGuard != stackCanary) {
		k.kernelPanic("stack overflow detected in task " + k.currentName())
		return
	}

	var best *TCB
	bestIdx := -1
	bestPri := 0
	tick := k.tick
	for i, t := range k.tasks {
		st := t.State
		if st == StateDelayed {
			if tick < t.wakeTick {
				continue
			}
			t.State = StateReady
		} else if st != StateReady && st != StateRunning {
			continue
		}
		if best == nil || t.Priority > bestPri {
			best, bestIdx, bestPri = t, i, t.Priority
		}
	}
	if best == nil {
		best = k.idle
		for i, t := range k.tasks {
			if t == best {
				bestIdx = i
				break
			}
		}
	}
	if k.current != best {
		k.ContextSwitches++
		if k.current != nil && k.current.State == StateRunning {
			k.current.State = StateReady
		}
		k.current = best
		best.State = StateRunning
	}
	// Round-robin: rotate the chosen task to the back of its class.
	if bestIdx >= 0 && bestIdx < len(k.tasks)-1 {
		copy(k.tasks[bestIdx:], k.tasks[bestIdx+1:])
		k.tasks[len(k.tasks)-1] = best
	}
}

func (k *Kernel) currentName() string {
	if k.current == nil {
		return "?"
	}
	return k.current.Name
}

// Delay blocks the current task for the given number of ticks.
func (k *Kernel) Delay(t *TCB, ticks uint64) {
	t.State = StateDelayed
	t.wakeTick = k.tick + ticks
}

// kernelPanic is configASSERT failing at kernel level: print and halt the
// whole scheduler. The cell goes silent but the hypervisor still reports
// it RUNNING.
func (k *Kernel) kernelPanic(why string) {
	if k.halted {
		return
	}
	k.putString("ASSERT FAILED: " + why + "\r\n")
	k.putString("FreeRTOS halted.\r\n")
	k.halted = true
	k.haltReason = why
	k.brd.StopTimer(k.cpu)
}

// OnCPUParked implements jailhouse.Inmate.
func (k *Kernel) OnCPUParked(cpu int) {
	// The CPU is gone; the kernel cannot even print. Stop the timer so
	// the simulation does not keep delivering ticks to a parked core.
	k.brd.StopTimer(cpu)
}

// OnShutdown implements jailhouse.Inmate.
func (k *Kernel) OnShutdown() {
	k.brd.StopTimer(k.cpu)
	k.halted = true
	k.haltReason = "cell shutdown"
}
