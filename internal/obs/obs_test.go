package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_counter_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestCounterLocalShardsSum(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_sharded_total", "sharded counter")
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for i := 0; i < workers; i++ {
		l := c.Local()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				l.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_gauge", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_hist", "a histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("Sum = %g, want 555.5", h.Sum())
	}
	s := h.series()
	wantCum := []uint64{1, 2, 3, 4} // le=1, le=10, le=100, le=+Inf
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].UpperBound, 1) {
		t.Errorf("last bucket bound not +Inf")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_conc_hist", "h", []float64{1})
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if h.Sum() != workers*per*0.5 {
		t.Fatalf("Sum = %g, want %g", h.Sum(), float64(workers*per)*0.5)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "first")
	if err := r.Register(&Counter{name: "dup_total"}); err == nil {
		t.Fatal("Register accepted a duplicate metric name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewCounter did not panic on duplicate name")
		}
	}()
	r.NewCounter("dup_total", "second")
}

func TestInvalidNameRejected(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&Counter{name: "bad-name"}); err == nil {
		t.Fatal("Register accepted a malformed metric name")
	}
}

func TestDisabledRecordingIsNoOp(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_disabled_total", "c")
	g := r.NewGauge("test_disabled_gauge", "g")
	h := r.NewHistogram("test_disabled_hist", "h", []float64{1})
	SetEnabled(false)
	defer SetEnabled(true)
	c.Inc()
	c.Local().Add(3)
	g.Set(9)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("recording not gated: counter=%d gauge=%d hist=%d",
			c.Value(), g.Value(), h.Count())
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_vec_total", "by tenant", "tenant")
	cv.With("alice").Add(2)
	cv.With("bob").Inc()
	cv.With("alice").Inc()
	if cv.With("alice").Value() != 3 || cv.With("bob").Value() != 1 {
		t.Fatalf("vec children wrong: alice=%d bob=%d",
			cv.With("alice").Value(), cv.With("bob").Value())
	}
	hv := r.NewHistogramVec("test_vec_hist", "by state", "state", []float64{1, 2})
	hv.With("running").Observe(1.5)
	if hv.With("running").Count() != 1 {
		t.Fatal("histogram vec child lost an observation")
	}
	snaps := r.Snapshot()
	for _, s := range snaps {
		if s.Name == "test_vec_total" {
			if s.Label != "tenant" || len(s.Series) != 2 {
				t.Fatalf("vec snapshot wrong: label=%q series=%d", s.Label, len(s.Series))
			}
			// sorted by label value
			if s.Series[0].Label != "alice" || s.Series[1].Label != "bob" {
				t.Fatalf("vec series not sorted: %+v", s.Series)
			}
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("certify_test_runs_total", "Total runs.")
	c.Add(3)
	g := r.NewGauge("certify_test_slots", "Busy slots.")
	g.Set(2)
	h := r.NewHistogram("certify_test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	cv := r.NewCounterVec("certify_test_jobs_total", "Jobs by state.", "state")
	cv.With("done").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP certify_test_runs_total Total runs.",
		"# TYPE certify_test_runs_total counter",
		"certify_test_runs_total 3",
		"# TYPE certify_test_slots gauge",
		"certify_test_slots 2",
		"# TYPE certify_test_latency_seconds histogram",
		`certify_test_latency_seconds_bucket{le="0.1"} 1`,
		`certify_test_latency_seconds_bucket{le="1"} 1`,
		`certify_test_latency_seconds_bucket{le="+Inf"} 2`,
		"certify_test_latency_seconds_sum 5.05",
		"certify_test_latency_seconds_count 2",
		`certify_test_jobs_total{state="done"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, text)
		}
	}
	// Basic format sanity: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("certify_json_total", "c").Add(9)
	r.NewHistogram("certify_json_hist", "h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if _, ok := doc["certify_json_total"]; !ok {
		t.Fatalf("JSON export missing counter key: %s", buf.String())
	}
	if _, ok := doc["certify_json_hist"]; !ok {
		t.Fatalf("JSON export missing histogram key: %s", buf.String())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_since_seconds", "h", []float64{10})
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("ObserveSince recorded count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zzz_total", "z")
	r.NewCounter("aaa_total", "a")
	s := r.Snapshot()
	if len(s) != 2 || s[0].Name != "aaa_total" || s[1].Name != "zzz_total" {
		t.Fatalf("snapshot not sorted: %+v", s)
	}
}
