package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE comments, then one line per
// series, histogram buckets cumulative with a trailing +Inf.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		for _, ser := range s.Series {
			if err := writeSeries(w, s, ser); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, s Snapshot, ser Series) error {
	label := ""
	if ser.Label != "" {
		label = fmt.Sprintf(`%s=%q`, s.Label, ser.Label)
	}
	if s.Kind != "histogram" {
		suffix := ""
		if label != "" {
			suffix = "{" + label + "}"
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, suffix, formatValue(ser.Value))
		return err
	}
	for _, b := range ser.Buckets {
		le := formatValue(b.UpperBound)
		if math.IsInf(b.UpperBound, 1) {
			le = "+Inf"
		}
		parts := []string{fmt.Sprintf(`le=%q`, le)}
		if label != "" {
			parts = append([]string{label}, parts...)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.Name, strings.Join(parts, ","), b.Count); err != nil {
			return err
		}
	}
	suffix := ""
	if label != "" {
		suffix = "{" + label + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, suffix, formatValue(ser.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, suffix, ser.Count)
	return err
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteJSON renders the registry as one JSON object keyed by metric
// name — the /debug/vars (expvar-style) and -metrics-out shape.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := make(map[string]any)
	for _, s := range r.Snapshot() {
		doc[s.Name] = jsonValue(s)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// jsonValue flattens a snapshot: plain scalars stay scalars, vec and
// histogram metrics become small objects.
func jsonValue(s Snapshot) any {
	if s.Kind != "histogram" && len(s.Series) == 1 && s.Series[0].Label == "" {
		return s.Series[0].Value
	}
	if s.Kind != "histogram" {
		m := make(map[string]float64, len(s.Series))
		for _, ser := range s.Series {
			m[ser.Label] = ser.Value
		}
		return m
	}
	if len(s.Series) == 1 && s.Series[0].Label == "" {
		return histJSON(s.Series[0])
	}
	m := make(map[string]any, len(s.Series))
	for _, ser := range s.Series {
		m[ser.Label] = histJSON(ser)
	}
	return m
}

type histDoc struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []bucketJSON `json:"buckets"`
}

type bucketJSON struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

func histJSON(ser Series) histDoc {
	d := histDoc{Count: ser.Count, Sum: ser.Sum}
	for _, b := range ser.Buckets {
		le := formatValue(b.UpperBound)
		if math.IsInf(b.UpperBound, 1) {
			le = "+Inf"
		}
		d.Buckets = append(d.Buckets, bucketJSON{LE: le, Count: b.Count})
	}
	return d
}
