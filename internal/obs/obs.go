// Package obs is the framework's flight recorder: a zero-dependency
// observability core — atomic counters, gauges and fixed-bucket
// histograms behind a Registry — that the hot layers (core, dist,
// fanout, serve) report into, and that snapshots/exports in Prometheus
// text-exposition and JSON forms.
//
// Design rules, in order of priority:
//
//  1. Observability is out-of-band. Nothing in this package may ever
//     feed back into campaign identity or artefact bytes: metrics read
//     wall clocks and fold into process-local atomics, period. The
//     golden differential suite (internal/dist) pins that an
//     instrumented campaign's artefact is bit-identical to an
//     uninstrumented one.
//  2. Recording must be cheap enough for hot paths: a counter Add is
//     one atomic add behind one atomic enabled-gate load; a histogram
//     Observe adds a short linear bucket walk. Workers that hammer one
//     counter take a Local() shard (its own cache line) so parallel
//     campaigns do not serialise on a shared counter word.
//  3. Metric names are a flat global namespace
//     (certify_<layer>_<what>_<unit>); the Registry rejects duplicate
//     registrations loudly (panic at package init), so a name collision
//     is caught by the first test that links the colliding packages.
//
// All recording respects the package-level enable gate (SetEnabled):
// with the gate off every Add/Set/Observe is a no-op after one atomic
// load — the "metrics off" half of BenchmarkObsOverhead.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the package-wide recording gate. Exposition always works;
// only recording is gated, so flipping the gate never breaks scrapes.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the global recording gate. Used by the overhead
// benchmark and by deployments that want the flight recorder dark.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// validName is the Prometheus metric/label name grammar.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Metric is anything a Registry can hold and export.
type Metric interface {
	Name() string
	Help() string
	// kind is the Prometheus TYPE line value.
	kind() string
	// snapshot renders the metric's current series.
	snapshot() []Series
}

// Series is one exported time series: a label value (empty for plain
// metrics) plus either a scalar or a histogram state.
type Series struct {
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value"`
	// Histogram state (Kind "histogram" only). Buckets are cumulative
	// counts per upper bound, Prometheus-style; the +Inf bucket equals
	// Count.
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// Snapshot is one metric's exported state.
type Snapshot struct {
	Name   string   `json:"name"`
	Help   string   `json:"help"`
	Kind   string   `json:"kind"`
	Label  string   `json:"label_name,omitempty"` // label key for vec metrics
	Series []Series `json:"series"`
}

// Registry holds a flat namespace of metrics. The zero value is not
// usable; construct with NewRegistry. Default is the process-wide
// registry every layer registers into.
type Registry struct {
	mu      sync.RWMutex
	order   []string
	metrics map[string]Metric
}

// Default is the process-wide registry: the serve endpoints and the
// -metrics-out CLI flag export it.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]Metric)}
}

// Register adds m, rejecting duplicate or malformed names. The New*
// constructors wrap it with a panic: a metric-name collision is a
// programming error that must fail the build's first test run, not
// corrupt a scrape at 3am.
func (r *Registry) Register(m Metric) error {
	if !validName.MatchString(m.Name()) {
		return fmt.Errorf("obs: invalid metric name %q", m.Name())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.Name()]; dup {
		return fmt.Errorf("obs: duplicate metric name %q", m.Name())
	}
	r.metrics[m.Name()] = m
	r.order = append(r.order, m.Name())
	return nil
}

func (r *Registry) mustRegister(m Metric) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Lookup returns the registered metric by name.
func (r *Registry) Lookup(name string) (Metric, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.metrics[name]
	return m, ok
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Snapshot renders every metric's current state, sorted by name — the
// stable order both exposition formats share.
func (r *Registry) Snapshot() []Snapshot {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	ms := make([]Metric, 0, len(names))
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.RUnlock()
	out := make([]Snapshot, 0, len(ms))
	for _, m := range ms {
		s := Snapshot{Name: m.Name(), Help: m.Help(), Kind: m.kind(), Series: m.snapshot()}
		if v, ok := m.(labeled); ok {
			s.Label = v.labelName()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// labeled is implemented by vec metrics, which carry a label key.
type labeled interface{ labelName() string }

// --- Counter ---------------------------------------------------------

// counterShards stripes hot counters across cache lines. Eight shards
// cover the worker counts campaigns actually run with; Value sums them.
const counterShards = 8

// pad64 spaces atomic words one cache line apart.
type pad64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing metric. Add/Inc hit shard 0;
// loops that hammer a counter from several workers grab Local() shards
// so they stop sharing a cache line.
type Counter struct {
	name, help string
	shards     [counterShards]pad64
	next       atomic.Uint32 // round-robin Local() assignment
}

// NewCounter registers a counter, panicking on a duplicate name.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.mustRegister(c)
	return c
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Help returns the help text.
func (c *Counter) Help() string { return c.help }

func (c *Counter) kind() string { return "counter" }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.shards[0].v.Add(n)
}

// Value sums all shards.
func (c *Counter) Value() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].v.Load()
	}
	return n
}

func (c *Counter) snapshot() []Series {
	return []Series{{Value: float64(c.Value())}}
}

// Local returns a per-worker shard handle: recording through it touches
// a cache line (approximately) private to this handle. Handles are
// assigned round-robin; create one per long-lived worker, not per
// operation.
func (c *Counter) Local() *LocalCounter {
	i := c.next.Add(1) % counterShards
	return &LocalCounter{s: &c.shards[i]}
}

// LocalCounter is a shard handle of a Counter (see Counter.Local).
type LocalCounter struct{ s *pad64 }

// Inc adds one to the local shard.
func (l *LocalCounter) Inc() { l.Add(1) }

// Add adds n to the local shard.
func (l *LocalCounter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	l.s.v.Add(n)
}

// --- Gauge -----------------------------------------------------------

// Gauge is a settable instantaneous value (slots busy, queue depth).
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers a gauge, panicking on a duplicate name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.mustRegister(g)
	return g
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Help returns the help text.
func (g *Gauge) Help() string { return g.help }

func (g *Gauge) kind() string { return "gauge" }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) snapshot() []Series {
	return []Series{{Value: float64(g.v.Load())}}
}

// --- Histogram -------------------------------------------------------

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; +Inf implicit) and tracks sum and count. All state is
// atomic; Observe never locks.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Uint64 // len(bounds)+1, last = +Inf
	sumBits    atomic.Uint64   // float64 bits, CAS-folded
	count      atomic.Uint64
}

// NewHistogram registers a histogram over the given bucket upper
// bounds (must be ascending and non-empty), panicking on a duplicate
// name or malformed buckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(name, help, buckets)
	r.mustRegister(h)
	return h
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending at %d", name, i))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Help returns the help text.
func (h *Histogram) Help() string { return h.help }

func (h *Histogram) kind() string { return "histogram" }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. Call with the
// time.Now() captured at the start of the operation being timed.
func (h *Histogram) ObserveSince(start time.Time) {
	if !enabled.Load() {
		return
	}
	h.observe(time.Since(start).Seconds())
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) series() Series {
	s := Series{Sum: h.Sum(), Count: h.Count()}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	s.Buckets = append(s.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
	return s
}

func (h *Histogram) snapshot() []Series { return []Series{h.series()} }

// --- Vec variants ----------------------------------------------------

// CounterVec is a family of counters keyed by one label value (e.g.
// per-tenant, per-state). Children are created on first use and live
// for the process lifetime — label values must be low-cardinality.
type CounterVec struct {
	name, help, label string
	mu                sync.RWMutex
	children          map[string]*Counter
}

// NewCounterVec registers a one-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	if !validName.MatchString(label) {
		panic(fmt.Sprintf("obs: invalid label name %q for %q", label, name))
	}
	v := &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	r.mustRegister(v)
	return v
}

// Name returns the metric name.
func (v *CounterVec) Name() string { return v.name }

// Help returns the help text.
func (v *CounterVec) Help() string { return v.help }

func (v *CounterVec) kind() string      { return "counter" }
func (v *CounterVec) labelName() string { return v.label }

// With returns the child counter for the label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[value]; ok {
		return c
	}
	c = &Counter{name: v.name, help: v.help}
	v.children[value] = c
	return c
}

func (v *CounterVec) snapshot() []Series {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]Series, 0, len(v.children))
	for value, c := range v.children {
		out = append(out, Series{Label: value, Value: float64(c.Value())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// HistogramVec is a family of histograms keyed by one label value.
type HistogramVec struct {
	name, help, label string
	buckets           []float64
	mu                sync.RWMutex
	children          map[string]*Histogram
}

// NewHistogramVec registers a one-label histogram family.
func (r *Registry) NewHistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if !validName.MatchString(label) {
		panic(fmt.Sprintf("obs: invalid label name %q for %q", label, name))
	}
	// Validate the bucket layout once, up front.
	probe := newHistogram(name, help, buckets)
	v := &HistogramVec{
		name: name, help: help, label: label,
		buckets: probe.bounds, children: make(map[string]*Histogram),
	}
	r.mustRegister(v)
	return v
}

// Name returns the metric name.
func (v *HistogramVec) Name() string { return v.name }

// Help returns the help text.
func (v *HistogramVec) Help() string { return v.help }

func (v *HistogramVec) kind() string      { return "histogram" }
func (v *HistogramVec) labelName() string { return v.label }

// With returns the child histogram for the label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[value]; ok {
		return h
	}
	h = newHistogram(v.name, v.help, v.buckets)
	v.children[value] = h
	return h
}

func (v *HistogramVec) snapshot() []Series {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]Series, 0, len(v.children))
	for value, h := range v.children {
		s := h.series()
		s.Label = value
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// --- Bucket layouts --------------------------------------------------

// ExpBuckets returns n ascending bucket bounds starting at start,
// multiplying by factor — the standard layout for latencies and sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets covers 10µs … ~160s in ×4 steps: wide enough for a
// pool reset (~µs–ms), an experiment run (~ms–s) and a whole campaign.
var LatencyBuckets = ExpBuckets(10e-6, 4, 13)

// SizeBuckets covers 1 … 4096 in ×2 steps — batch sizes, event counts
// in the thousands.
var SizeBuckets = ExpBuckets(1, 2, 13)
