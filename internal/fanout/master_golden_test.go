package fanout

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/dist"
)

// crossPathCompare holds the two evidence paths against each other run
// for run: the campaign dossier opened through the fan-out's master
// index versus the serial (single-artefact) dossier. Index rows must
// agree on outcome, trace hash, injections and detection latency, and
// the records themselves must be byte-identical — same JSON line for
// the same global run, regardless of which shard file it landed in.
func crossPathCompare(t *testing.T, cd *dist.CampaignDossier, serial *dist.Dossier, runs int) {
	t.Helper()
	if cd.NumRuns() != runs || serial.NumRuns() != runs {
		t.Fatalf("run counts: campaign %d, serial %d, want %d", cd.NumRuns(), serial.NumRuns(), runs)
	}
	serialEntries := serial.Entries()
	for i, e := range cd.Entries() {
		se := serialEntries[i]
		if e.Index != se.Index {
			t.Fatalf("entry %d: index %d in master-index order, %d serial", i, e.Index, se.Index)
		}
		if e.Outcome != se.Outcome || e.TraceHash != se.TraceHash ||
			e.Injections != se.Injections || e.DetectionNS != se.DetectionNS {
			t.Fatalf("run %d: master index disagrees with serial index:\n  fanout: %+v\n  serial: %+v", e.Index, e, se)
		}
		a, err := cd.RawRun(e.Index)
		if err != nil {
			t.Fatalf("campaign RawRun(%d): %v", e.Index, err)
		}
		b, err := serial.RawRun(e.Index)
		if err != nil {
			t.Fatalf("serial RawRun(%d): %v", e.Index, err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("run %d: sharded record diverges from serial record:\n  sharded: %s\n  serial:  %s", e.Index, a, b)
		}
	}
}

// runCrossPath executes the cross-path check for one plan/size: a
// 3-shard fan-out with a killed-and-restarted worker produces a master
// index; a serial execution of the same campaign produces one dossier;
// both must agree run for run.
func runCrossPath(t *testing.T, plan *core.TestPlan, runs int) {
	t.Helper()
	pool := core.NewMachinePool()
	spec := &dist.Spec{Plan: plan, Runs: runs, MasterSeed: 2022, Shards: 3, Mode: core.ModeDistribution}
	dir := t.TempDir()
	res, err := Run(context.Background(), Config{
		Spec: spec, Dir: dir, Retries: 2,
		Launcher: &killFirstLauncher{target: 1, pool: pool}, Poll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MasterIndexPath == "" || res.MasterIndex == nil {
		t.Fatal("fan-out completed without composing a master index")
	}
	if res.Manifest.MasterIndex != dist.MasterIndexFileName {
		t.Fatalf("fanout.json names master index %q, want %q", res.Manifest.MasterIndex, dist.MasterIndexFileName)
	}
	crashed := false
	for _, w := range res.Manifest.Workers {
		for _, a := range w.Attempts {
			if a.Outcome == "crashed" {
				crashed = true
			}
		}
	}
	if !crashed {
		t.Fatal("the doomed worker never crashed — the cross-path test must cover a restarted shard")
	}
	for _, s := range res.MasterIndex.Shards {
		if !s.Indexed {
			t.Fatalf("shard %d not indexed in the master index — the restarted worker's footer is missing", s.Shard)
		}
	}

	cd, err := dist.OpenCampaignFromMaster(res.MasterIndexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()

	serialSpec := &dist.Spec{Plan: plan, Runs: runs, MasterSeed: 2022, Shards: 1, Mode: core.ModeDistribution}
	serialPath := filepath.Join(t.TempDir(), "serial.jsonl")
	if _, _, err := dist.ExecuteShardPool(context.Background(), serialSpec, 0, 0, serialPath, pool); err != nil {
		t.Fatal(err)
	}
	serial, err := dist.OpenDossier(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	if !serial.Indexed() || !serial.Complete() {
		t.Fatalf("serial dossier: indexed=%v complete=%v", serial.Indexed(), serial.Complete())
	}
	crossPathCompare(t, cd, serial, runs)
}

// TestFanoutMasterIndexCrossPath is the fast cross-path check on the
// shortened E3 plan. Sized like TestFanoutKilledWorkerResumes: the
// doomed shard's window must comfortably outlast one JSONL flush
// interval, or warm machines finish the whole shard inside a single
// batch and the killer's tail never sees a record to kill on.
func TestFanoutMasterIndexCrossPath(t *testing.T) {
	runCrossPath(t, shortE3(), 120)
}

// TestFanoutMasterIndexGoldenSeed2022 is the cross-path golden gate:
// the master index built over the pinned seed-2022 E3 fan-out (3
// shards, one worker killed and restarted) agrees with the serial
// dossier's index run for run — 40 byte-identical records, and the
// 23/1/16 split visible straight from the campaign-level counts.
func TestFanoutMasterIndexGoldenSeed2022(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	runCrossPath(t, core.PlanE3Fig3(), 40)
}
