package fanout

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/dist"
)

// StartRequest is everything a launcher needs to run one shard attempt.
type StartRequest struct {
	// Spec is the in-memory campaign description (in-process workers
	// execute it directly).
	Spec *dist.Spec
	// SpecPath is the serialized spec the supervisor published in the
	// campaign directory (re-exec workers load it).
	SpecPath string
	// Index is the shard to execute.
	Index int
	// OutPath is the shard's JSONL artefact.
	OutPath string
	// Workers bounds the campaign parallelism inside the worker
	// (0 = GOMAXPROCS).
	Workers int
}

// Worker is one running shard attempt. The supervisor never interprets
// Wait's error beyond "the attempt ended" — whether the attempt
// actually produced a complete artefact is decided by re-reading the
// artefact, so a worker that lies about its exit status cannot corrupt
// the campaign.
type Worker interface {
	// Wait blocks until the worker exits and returns its terminal error
	// (nil on clean exit).
	Wait() error
	// Kill stops the worker forcefully. Idempotent; Wait still returns.
	Kill()
	// Describe names the worker for the fanout manifest ("pid 1234",
	// "in-process").
	Describe() string
}

// Launcher starts shard workers. Exec re-execs the current binary as
// real processes (the production path); InProcess runs the shard in a
// goroutine of the supervisor's own process (the unit-test path and the
// library embedding path — same supervision logic, no subprocesses).
type Launcher interface {
	Start(ctx context.Context, req StartRequest) (Worker, error)
}

// ---- In-process launcher ----

// InProcess executes shards as goroutines via dist.ExecuteShardPool.
// Kill cancels the shard's context: the campaign stops scheduling runs
// and the artefact is left without a summary, exactly like a crashed
// process after its buffers flushed.
//
// Pool, when non-nil, is the shared warm-machine pool every shard's
// workers draw from: machines booted by one shard are deep-reset and
// reused by the next instead of being rebuilt. The supervisor installs
// one automatically when it defaults to this launcher; wrapping
// launchers that construct InProcess themselves opt in by sharing one
// core.MachinePool across attempts.
type InProcess struct {
	Pool *core.MachinePool
}

type inprocWorker struct {
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

// Start implements Launcher.
func (l InProcess) Start(ctx context.Context, req StartRequest) (Worker, error) {
	if req.Spec == nil {
		return nil, fmt.Errorf("fanout: in-process worker needs a spec")
	}
	wctx, cancel := context.WithCancel(ctx)
	w := &inprocWorker{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(w.done)
		defer cancel()
		_, _, err := dist.ExecuteShardPool(wctx, req.Spec, req.Index, req.Workers, req.OutPath, l.Pool)
		w.err = err
	}()
	return w, nil
}

func (w *inprocWorker) Wait() error {
	<-w.done
	return w.err
}

func (w *inprocWorker) Kill()            { w.cancel() }
func (w *inprocWorker) Describe() string { return "in-process" }

// ---- Re-exec launcher ----

// Exec launches each shard as a separate OS process: the supervisor's
// own binary re-invoked in worker mode, loading the published spec.json
// and executing one shard. This is the paper-scale path — a crashed or
// wedged worker takes down only its shard, and SIGKILL recovery rides
// the artefact resume semantics.
type Exec struct {
	// Binary is the executable to run; empty = os.Executable().
	Binary string
	// Args is the argument prefix before the worker flags, typically
	// {"fanout-worker"} for the certify CLI.
	Args []string
	// Env entries appended to the inherited environment.
	Env []string
	// Stderr receives the workers' stderr (interleaved); nil = discard.
	// Workers' stdout is always discarded — the artefact file is the
	// only channel the supervisor trusts.
	Stderr io.Writer
}

type execWorker struct {
	cmd      *exec.Cmd
	killOnce sync.Once
}

// Start implements Launcher.
func (l *Exec) Start(ctx context.Context, req StartRequest) (Worker, error) {
	bin := l.Binary
	if bin == "" {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("fanout: cannot locate own binary: %w", err)
		}
		bin = self
	}
	if req.SpecPath == "" {
		return nil, fmt.Errorf("fanout: exec worker needs a spec path")
	}
	args := append(append([]string{}, l.Args...),
		"-spec", req.SpecPath,
		"-index", strconv.Itoa(req.Index),
		"-out", req.OutPath,
		"-workers", strconv.Itoa(req.Workers),
	)
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stdout = nil
	cmd.Stderr = l.Stderr
	if len(l.Env) > 0 {
		cmd.Env = append(os.Environ(), l.Env...)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fanout: start shard %d worker: %w", req.Index, err)
	}
	return &execWorker{cmd: cmd}, nil
}

func (w *execWorker) Wait() error { return w.cmd.Wait() }

func (w *execWorker) Kill() {
	w.killOnce.Do(func() {
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
	})
}

func (w *execWorker) Describe() string {
	if w.cmd.Process != nil {
		return fmt.Sprintf("pid %d", w.cmd.Process.Pid)
	}
	return "unstarted process"
}
