package fanout

import (
	"context"
	"testing"
	"time"

	"github.com/dessertlab/certify/internal/analytics"
	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/dist"
)

// adaptiveReference runs the in-memory adaptive campaign and returns
// its aggregate (carrying the stop decision) — the baseline every
// supervised configuration must reproduce exactly.
func adaptiveReference(t *testing.T, plan *core.TestPlan, runs int, seed uint64, stop *core.StopSpec) *core.CampaignResult {
	t.Helper()
	policy, err := analytics.NewStopPolicy(stop)
	if err != nil {
		t.Fatal(err)
	}
	c := &core.Campaign{Plan: plan, Runs: runs, MasterSeed: seed, Mode: core.ModeDistribution, Stop: policy}
	res, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireSameDecision asserts two adaptive aggregates agree on the stop
// decision and the certified prefix's distribution.
func requireSameDecision(t *testing.T, label string, got, want *core.CampaignResult) {
	t.Helper()
	if got.Stop == nil || want.Stop == nil {
		t.Fatalf("%s: stop decision missing (got %+v, want %+v)", label, got.Stop, want.Stop)
	}
	if *got.Stop != *want.Stop {
		t.Fatalf("%s: stop decision %+v, reference %+v", label, got.Stop, want.Stop)
	}
	if got.Total() != want.Total() {
		t.Fatalf("%s: aggregate %d runs, reference %d", label, got.Total(), want.Total())
	}
	for _, o := range core.AllOutcomes() {
		if got.Count(o) != want.Count(o) {
			t.Fatalf("%s: count(%v) = %d, reference %d", label, o, got.Count(o), want.Count(o))
		}
	}
}

// FuzzAdaptiveStopShardInvariance fuzzes the certified-prefix contract
// across deployment shapes: for arbitrary (seed, CI width) the decided
// index and the certified prefix's distribution are identical whether
// the campaign runs in one process or is supervised across K ∈ {1,3,8}
// fan-out workers — including a fan-out where one worker is killed
// mid-shard and restarted. The stop decision is a pure function of the
// seed chain; no amount of re-sharding or crash-recovery may move it.
func FuzzAdaptiveStopShardInvariance(f *testing.F) {
	f.Add(uint64(2022), uint16(3000))
	f.Add(uint64(7), uint16(4500))
	f.Add(uint64(99), uint16(6000))
	plan := shortE3()
	f.Fuzz(func(t *testing.T, seed uint64, widthRaw uint16) {
		// Keep the target loose (30–80pp) so the policy fires within a
		// test-sized campaign for any seed.
		stop := &core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 3000 + int(widthRaw)%5000}
		const runs = 24
		ref := adaptiveReference(t, plan, runs, seed, stop)

		for _, k := range []int{1, 3, 8} {
			spec := &dist.Spec{Plan: plan, Runs: runs, MasterSeed: seed, Shards: k,
				Mode: core.ModeDistribution, Stop: stop.Clone()}
			res, err := Run(context.Background(), Config{
				Spec: spec, Dir: t.TempDir(), Poll: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("shards-%d: %v", k, err)
			}
			requireSameDecision(t, "shards", res.Merged, ref)
		}

		// Crash recovery: a worker killed after streaming at least one
		// record is restarted by the supervisor, and the merged decision
		// is still the reference's. The campaign is sized so the doomed
		// shard's window outlasts a flush interval (see
		// TestFanoutKilledWorkerResumes).
		const killRuns = 120
		killRef := adaptiveReference(t, plan, killRuns, seed, stop)
		spec := &dist.Spec{Plan: plan, Runs: killRuns, MasterSeed: seed, Shards: 3,
			Mode: core.ModeDistribution, Stop: stop.Clone()}
		res, err := Run(context.Background(), Config{
			Spec: spec, Dir: t.TempDir(), Retries: 2,
			Launcher: &killFirstLauncher{target: 1}, Poll: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("killed-worker fanout: %v", err)
		}
		requireSameDecision(t, "killed-worker", res.Merged, killRef)
	})
}
