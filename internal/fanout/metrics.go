package fanout

import "github.com/dessertlab/certify/internal/obs"

// Flight-recorder instrumentation for the supervisor: how often shards
// complete cleanly vs. crash, stall or fail to launch, and how many
// restarts the retry budget actually buys.
var (
	metShardsCompleted = obs.Default.NewCounter(
		"certify_fanout_shards_completed_total",
		"Shard attempts judged complete by their artefact.")
	metCrashes = obs.Default.NewCounter(
		"certify_fanout_crashes_total",
		"Shard attempts that exited without a complete artefact.")
	metStalls = obs.Default.NewCounter(
		"certify_fanout_stalls_total",
		"Shard attempts killed by the stall watchdog.")
	metLaunchFailures = obs.Default.NewCounter(
		"certify_fanout_launch_failures_total",
		"Shard worker launches that failed outright.")
	metRestarts = obs.Default.NewCounter(
		"certify_fanout_restarts_total",
		"Shard relaunches spent from retry budgets.")
)
