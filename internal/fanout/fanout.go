// Package fanout turns the distributed campaign building blocks into a
// one-command system: a supervisor that plans the shard windows of a
// dist.Spec, launches one worker per shard (bounded by Parallel),
// watches each worker's liveness through its streaming JSONL artefact,
// restarts crashed or stalled shards within a bounded retry budget, and
// folds the finished shard files through dist.Merge into the single
// verified campaign aggregate — bit-identical to the serial campaign,
// by the dist subsystem's seed-window construction.
//
// Crash recovery costs nothing extra: workers are dist.ExecuteShard
// under the hood, so a restarted shard skips a completed artefact and
// re-executes a torn one. Killing the supervisor itself loses no
// evidence either — rerunning the same fan-out resumes from whatever
// shard files the previous life left behind.
//
// Every fan-out writes a machine-readable fanout.json manifest next to
// the shard artefacts: per-shard state, every attempt with its worker
// identity and outcome, and whether the campaign completed. The
// manifest is truthful by construction — attempt outcomes are judged by
// re-reading the artefact, never by trusting a worker's exit status.
package fanout

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/dist"
)

// State is a shard's position in the supervision lifecycle.
type State string

// Shard states, as recorded in fanout.json and progress snapshots.
const (
	StatePending   State = "pending"   // not yet launched
	StateRunning   State = "running"   // a worker is executing it
	StateCompleted State = "completed" // artefact verified complete this fan-out
	StateSkipped   State = "skipped"   // artefact was already complete (resume)
	StateFailed    State = "failed"    // retry budget exhausted
	StateAborted   State = "aborted"   // stopped because another shard failed
)

// SpecFileName is the serialized campaign spec the supervisor publishes
// in the campaign directory for re-exec workers (and for humans).
const SpecFileName = "spec.json"

// ManifestFileName is the fan-out status manifest.
const ManifestFileName = "fanout.json"

// Config describes one supervised fan-out.
type Config struct {
	// Spec is the campaign to execute.
	Spec *dist.Spec
	// Dir is the campaign directory: shard artefacts, spec.json and
	// fanout.json all live here.
	Dir string
	// Parallel bounds concurrently running workers; 0 = min(shards,
	// GOMAXPROCS).
	Parallel int
	// Retries is the per-shard restart budget beyond the first attempt.
	Retries int
	// Launcher starts shard workers; nil = InProcess{}.
	Launcher Launcher
	// Gzip selects compressed shard artefacts (shard-NN.jsonl.gz).
	Gzip bool
	// Poll is the artefact tail cadence; 0 = 200ms.
	Poll time.Duration
	// StallTimeout kills a worker whose artefact has not grown for this
	// long and counts the attempt as stalled; 0 disables the watchdog.
	StallTimeout time.Duration
	// OnProgress, when non-nil, receives a snapshot every poll tick and
	// at every shard state change. Deliveries are serialised (never two
	// calls at once), but they originate from supervisor-internal
	// goroutines — keep the callback fast and do not call back into the
	// supervisor from it.
	OnProgress func(Snapshot)
}

// Snapshot is a point-in-time view of the fan-out for progress display.
type Snapshot struct {
	RunsDone  int // run records observed across all shards
	RunsTotal int
	Shards    []ShardSnapshot // ordered by shard index
}

// ShardSnapshot is one shard's progress entry.
type ShardSnapshot struct {
	Index   int
	State   State
	Runs    int // run records observed (window size once finished)
	Window  int // runs this shard owns
	Attempt int // 1-based attempt number (0 before the first launch)
}

// Counts tallies the snapshot's shard states for one-line summaries.
func (s Snapshot) Counts() (running, done, failed int) {
	for _, sh := range s.Shards {
		switch sh.State {
		case StateRunning:
			running++
		case StateCompleted, StateSkipped:
			done++
		case StateFailed, StateAborted:
			failed++
		}
	}
	return
}

// Attempt records one worker launch in the manifest.
type Attempt struct {
	Worker  string `json:"worker"`           // launcher's description (pid, in-process)
	Outcome string `json:"outcome"`          // completed|skipped|crashed|stalled|aborted|launch-failed
	Detail  string `json:"detail,omitempty"` // exit / launch error text
	Runs    int    `json:"runs"`             // run records in the artefact when the attempt ended
	// ElapsedSeconds is the attempt's wall time, launch to judgement.
	// Zero for resume skips (no worker ran).
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// Timing is the fan-out's wall-clock summary in fanout.json: when
// supervision started and finished, and the end-to-end throughput the
// campaign achieved (resumed-and-skipped runs included in the count, so
// a pure resume reports a very high rate — read it next to the
// per-shard attempts).
type Timing struct {
	Started        string  `json:"started"`         // RFC3339Nano, supervisor start
	Finished       string  `json:"finished"`        // RFC3339Nano, manifest write
	ElapsedSeconds float64 `json:"elapsed_seconds"` // finished - started
	RunsPerSec     float64 `json:"runs_per_sec,omitempty"`
}

// ShardStatus is one shard's manifest entry.
type ShardStatus struct {
	Shard    int       `json:"shard"`
	Path     string    `json:"path"`
	Start    int       `json:"start"`
	End      int       `json:"end"`
	State    State     `json:"state"`
	Records  int       `json:"records"`
	Attempts []Attempt `json:"attempts,omitempty"`
}

// Manifest is the fanout.json document: the campaign identity plus the
// full supervision history.
type Manifest struct {
	Plan       string `json:"plan"`
	PlanHash   string `json:"plan_hash"`
	MasterSeed string `json:"master_seed"`
	Runs       int    `json:"runs"`
	Shards     int    `json:"shards"`
	Mode       string `json:"mode"`
	Parallel   int    `json:"parallel"`
	Retries    int    `json:"retries"`
	Completed  bool   `json:"completed"`
	// MasterIndex names the campaign-level index document composed from
	// the shard footers after the merge (relative to the campaign
	// directory); empty until the fan-out completes.
	MasterIndex string `json:"master_index,omitempty"`
	// Timing is the fan-out's wall-clock summary (nil in manifests
	// written by pre-flight-recorder supervisors).
	Timing  *Timing       `json:"timing,omitempty"`
	Workers []ShardStatus `json:"workers"`
}

// Result is a completed fan-out: the merged campaign aggregate, the
// parsed shard artefacts (trace hashes included), the manifest as
// written to fanout.json, and the master index composed from the shard
// artefacts' footers (the entry point for `certify inspect`).
type Result struct {
	Merged          *core.CampaignResult
	Shards          []*dist.ShardFile
	Manifest        *Manifest
	ManifestPath    string
	MasterIndex     *dist.MasterIndex
	MasterIndexPath string
}

// shardState is the supervisor's mutable per-shard bookkeeping.
type shardState struct {
	shard    dist.Shard
	path     string
	state    State
	runs     int
	attempt  int
	attempts []Attempt
}

// supervisor holds the shared state of one Run.
type supervisor struct {
	cfg             Config
	workersPerShard int       // campaign parallelism handed to each worker
	started         time.Time // wall-clock start, for the manifest timing summary
	mu              sync.Mutex
	shards          []*shardState
	cancel          context.CancelFunc // aborts the whole fan-out
	failed          error              // first permanent failure
	progressMu      sync.Mutex         // serialises OnProgress deliveries
}

// stampTiming (re)computes the manifest's wall-clock summary as of now.
// Called at every manifest write so the final (post-merge) fanout.json
// covers the merge and master-index composition too.
func (s *supervisor) stampTiming(m *Manifest) {
	now := time.Now()
	elapsed := now.Sub(s.started).Seconds()
	t := &Timing{
		Started:        s.started.Format(time.RFC3339Nano),
		Finished:       now.Format(time.RFC3339Nano),
		ElapsedSeconds: elapsed,
	}
	if elapsed > 0 {
		done := 0
		s.mu.Lock()
		for _, st := range s.shards {
			if st.state == StateCompleted || st.state == StateSkipped {
				done += st.runs
			}
		}
		s.mu.Unlock()
		t.RunsPerSec = float64(done) / elapsed
	}
	m.Timing = t
}

// ArtefactPath returns the shard artefact path the supervisor uses for
// shard index i of a fan-out rooted at dir.
func ArtefactPath(dir string, i int, gzip bool) string {
	name := fmt.Sprintf("shard-%02d.jsonl", i)
	if gzip {
		name += ".gz"
	}
	return filepath.Join(dir, name)
}

// Run executes the fan-out to completion (or permanent failure). The
// manifest is written in every case, including cancellation — fanout.json
// always tells the truth about what happened. On success the merged
// aggregate is returned; on failure the error names the first shard
// whose retry budget ran out.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("fanout: no campaign spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fanout: no campaign directory")
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("fanout: negative retry budget %d", cfg.Retries)
	}
	if cfg.Launcher == nil {
		// Default in-process workers share one warm-machine pool: every
		// shard after the first mostly deep-resets machines the earlier
		// shards booted.
		cfg.Launcher = InProcess{Pool: core.NewMachinePool()}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = cfg.Spec.Shards
		if p := runtime.GOMAXPROCS(0); p < cfg.Parallel {
			cfg.Parallel = p
		}
	}

	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	specPath := filepath.Join(cfg.Dir, SpecFileName)
	if err := publishSpec(specPath, cfg.Spec); err != nil {
		return nil, err
	}

	windows, err := cfg.Spec.AllShards()
	if err != nil {
		return nil, err
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s := &supervisor{cfg: cfg, cancel: cancel, started: time.Now()}
	// Split the machine between concurrent workers: each shard worker
	// runs its campaign with a fair share of the cores instead of
	// Parallel × GOMAXPROCS oversubscription.
	if s.workersPerShard = runtime.GOMAXPROCS(0) / cfg.Parallel; s.workersPerShard < 1 {
		s.workersPerShard = 1
	}
	for _, sh := range windows {
		s.shards = append(s.shards, &shardState{
			shard: sh,
			path:  ArtefactPath(cfg.Dir, sh.Index, cfg.Gzip),
			state: StatePending,
		})
	}

	// Resume pre-scan: artefacts that are already complete are skipped
	// without spending a worker slot; artefacts of a different campaign
	// abort before anything launches.
	for _, st := range s.shards {
		sf, err := dist.ReadShard(st.path)
		switch {
		case err != nil:
			// Missing, torn or unreadable: the worker (ExecuteShard)
			// decides; a genuinely foreign file fails the first attempt
			// with a permanent refusal below.
		case sf.Complete && sf.Manifest.MatchesShard(st.shard):
			st.state = StateSkipped
			st.runs = sf.Records
			st.attempts = append(st.attempts, Attempt{
				Worker: "resume", Outcome: "skipped", Runs: sf.Records,
			})
		case !sf.Manifest.SameCampaignAs(st.shard):
			return nil, fmt.Errorf("fanout: %s belongs to a different campaign — refusing to supervise over it: %w", st.path, dist.ErrCampaignMismatch)
		}
	}
	s.emitProgress()

	// One goroutine per shard, gated by a slot semaphore.
	slots := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	for _, st := range s.shards {
		if st.state == StateSkipped {
			continue
		}
		st := st
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.superviseShard(ctx, st, specPath, slots)
		}()
	}

	// Progress ticker: one snapshot per poll interval while work runs.
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(cfg.Poll)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.emitProgress()
			}
		}
	}()

	wg.Wait()
	cancel()
	<-tickerDone
	s.emitProgress()

	manifest := s.buildManifest()
	s.stampTiming(manifest)
	manifestPath := filepath.Join(cfg.Dir, ManifestFileName)
	if err := writeManifest(manifestPath, manifest); err != nil {
		return nil, err
	}

	s.mu.Lock()
	failure := s.failed
	s.mu.Unlock()
	if failure != nil {
		return &Result{Manifest: manifest, ManifestPath: manifestPath}, failure
	}
	if err := parent.Err(); err != nil {
		return &Result{Manifest: manifest, ManifestPath: manifestPath},
			fmt.Errorf("fanout: cancelled before completion: %w", err)
	}

	paths := make([]string, len(s.shards))
	for i, st := range s.shards {
		paths[i] = st.path
	}
	merged, shardFiles, err := dist.Merge(paths)
	if err != nil {
		return &Result{Manifest: manifest, ManifestPath: manifestPath},
			fmt.Errorf("fanout: post-completion merge: %w", err)
	}
	// Compose the shard footers into the campaign-level master index —
	// the random-access entry point `certify inspect` opens. Every
	// worker wrote its footer via dist.CreateJSONL; shards that somehow
	// lost theirs still compose (the dossier layer falls back to a scan
	// and the master index records Indexed=false for them).
	masterPath := filepath.Join(cfg.Dir, dist.MasterIndexFileName)
	master, err := dist.WriteMasterIndexFile(masterPath, paths)
	if err != nil {
		return &Result{Manifest: manifest, ManifestPath: manifestPath},
			fmt.Errorf("fanout: master index: %w", err)
	}
	manifest.Completed = true
	manifest.MasterIndex = dist.MasterIndexFileName
	s.stampTiming(manifest)
	if err := writeManifest(manifestPath, manifest); err != nil {
		return nil, err
	}
	return &Result{
		Merged: merged, Shards: shardFiles,
		Manifest: manifest, ManifestPath: manifestPath,
		MasterIndex: master, MasterIndexPath: masterPath,
	}, nil
}

// superviseShard drives one shard through its attempt loop.
func (s *supervisor) superviseShard(ctx context.Context, st *shardState, specPath string, slots chan struct{}) {
	for {
		select {
		case <-ctx.Done():
			s.markAborted(st)
			return
		case slots <- struct{}{}:
		}
		outcome := s.runAttempt(ctx, st, specPath)
		<-slots
		switch outcome {
		case attemptDone:
			return
		case attemptAbort:
			s.markAborted(st)
			return
		case attemptRetry:
			s.mu.Lock()
			spent := len(st.attempts) - 1 // first attempt is free
			s.mu.Unlock()
			if spent >= s.cfg.Retries {
				s.failShard(st, fmt.Errorf(
					"fanout: shard %d failed %d attempt(s) (retry budget %d) — last: %s",
					st.shard.Index, spent+1, s.cfg.Retries, lastDetail(st)))
				return
			}
			metRestarts.Inc()
			// loop: next attempt
		}
	}
}

type attemptOutcome int

const (
	attemptDone attemptOutcome = iota
	attemptRetry
	attemptAbort
)

// runAttempt launches one worker, monitors it, and judges the result by
// the artefact it leaves behind.
func (s *supervisor) runAttempt(ctx context.Context, st *shardState, specPath string) attemptOutcome {
	if ctx.Err() != nil {
		return attemptAbort
	}
	attStart := time.Now()
	s.mu.Lock()
	st.state = StateRunning
	st.attempt++
	s.mu.Unlock()
	s.emitProgress()

	req := StartRequest{
		Spec:     s.cfg.Spec,
		SpecPath: specPath,
		Index:    st.shard.Index,
		OutPath:  st.path,
		Workers:  s.workersPerShard,
	}
	w, err := s.cfg.Launcher.Start(ctx, req)
	if err != nil {
		metLaunchFailures.Inc()
		s.recordAttempt(st, Attempt{
			Worker: "unlaunched", Outcome: "launch-failed", Detail: err.Error(),
			ElapsedSeconds: time.Since(attStart).Seconds(),
		})
		return attemptRetry
	}

	// Monitor: tail the artefact for per-run progress and stall
	// detection until the worker exits.
	waitCh := make(chan error, 1)
	go func() { waitCh <- w.Wait() }()
	tail := dist.NewTail(st.path)
	var (
		waitErr    error
		stalled    bool
		lastChange = time.Now()
		lastBytes  = int64(-1)
		lastRuns   = -1
		ticker     = time.NewTicker(s.cfg.Poll)
	)
	defer ticker.Stop()
monitor:
	for {
		select {
		case waitErr = <-waitCh:
			break monitor
		case <-ctx.Done():
			w.Kill()
			waitErr = <-waitCh
			break monitor
		case <-ticker.C:
			p, perr := tail.Poll()
			if perr != nil {
				continue // transient stat/read race with the worker
			}
			if p.Countable {
				s.mu.Lock()
				st.runs = p.Runs
				s.mu.Unlock()
			}
			if p.Bytes != lastBytes || p.Runs != lastRuns {
				lastBytes, lastRuns = p.Bytes, p.Runs
				lastChange = time.Now()
			} else if s.cfg.StallTimeout > 0 && time.Since(lastChange) > s.cfg.StallTimeout {
				stalled = true
				w.Kill()
				waitErr = <-waitCh
				break monitor
			}
		}
	}

	// Judge by the artefact, not the exit status.
	att := Attempt{Worker: w.Describe(), ElapsedSeconds: time.Since(attStart).Seconds()}
	sf, rerr := dist.ReadShard(st.path)
	complete := rerr == nil && sf.Complete && sf.Manifest.MatchesShard(st.shard)
	if rerr == nil && !sf.Manifest.SameCampaignAs(st.shard) {
		// A foreign artefact appeared under our path: unrecoverable
		// operator error, retrying would refuse forever.
		metCrashes.Inc()
		s.recordAttempt(st, Attempt{
			Worker: att.Worker, Outcome: "crashed",
			Detail:         fmt.Sprintf("artefact %s belongs to a different campaign", st.path),
			ElapsedSeconds: att.ElapsedSeconds,
		})
		s.failShard(st, fmt.Errorf("fanout: %s belongs to a different campaign: %w", st.path, dist.ErrCampaignMismatch))
		return attemptDone
	}
	if rerr == nil {
		att.Runs = sf.Records
	}
	switch {
	case complete:
		att.Outcome = "completed"
		metShardsCompleted.Inc()
		s.mu.Lock()
		st.state = StateCompleted
		st.runs = sf.Records
		st.attempts = append(st.attempts, att)
		s.mu.Unlock()
		s.emitProgress()
		return attemptDone
	case ctx.Err() != nil && !stalled:
		att.Outcome = "aborted"
		att.Detail = detailFrom(waitErr, rerr)
		s.recordAttempt(st, att)
		return attemptAbort
	case stalled:
		att.Outcome = "stalled"
		att.Detail = fmt.Sprintf("no artefact progress for %v; killed", s.cfg.StallTimeout)
		metStalls.Inc()
		s.recordAttempt(st, att)
		return attemptRetry
	default:
		att.Outcome = "crashed"
		att.Detail = detailFrom(waitErr, rerr)
		metCrashes.Inc()
		s.recordAttempt(st, att)
		return attemptRetry
	}
}

// detailFrom compresses the attempt's wait/read errors into one line.
func detailFrom(waitErr, readErr error) string {
	switch {
	case waitErr != nil && readErr != nil:
		return fmt.Sprintf("%v; artefact: %v", waitErr, readErr)
	case waitErr != nil:
		return waitErr.Error()
	case readErr != nil:
		return fmt.Sprintf("exited cleanly but artefact incomplete: %v", readErr)
	default:
		return "exited cleanly but artefact incomplete"
	}
}

func lastDetail(st *shardState) string {
	if len(st.attempts) == 0 {
		return "no attempts recorded"
	}
	last := st.attempts[len(st.attempts)-1]
	if last.Detail == "" {
		return last.Outcome
	}
	return fmt.Sprintf("%s (%s)", last.Outcome, last.Detail)
}

func (s *supervisor) recordAttempt(st *shardState, att Attempt) {
	s.mu.Lock()
	st.attempts = append(st.attempts, att)
	s.mu.Unlock()
}

// failShard marks a permanent failure and aborts the whole fan-out: a
// campaign with a dead shard can never merge, so the other workers'
// remaining work would be wasted (their finished artefacts survive for
// the next resume either way).
func (s *supervisor) failShard(st *shardState, err error) {
	s.mu.Lock()
	st.state = StateFailed
	if s.failed == nil {
		s.failed = err
	}
	s.mu.Unlock()
	s.cancel()
	s.emitProgress()
}

func (s *supervisor) markAborted(st *shardState) {
	s.mu.Lock()
	if st.state == StateRunning || st.state == StatePending {
		st.state = StateAborted
	}
	s.mu.Unlock()
}

// emitProgress delivers a snapshot to the configured observer. Ticks
// and state changes race to call this from different goroutines; the
// progress mutex keeps deliveries one at a time so the callback never
// needs its own locking.
func (s *supervisor) emitProgress() {
	if s.cfg.OnProgress == nil {
		return
	}
	// Snapshot under the delivery lock so observers see monotonic
	// progress (lock order: progressMu, then mu inside snapshot).
	s.progressMu.Lock()
	defer s.progressMu.Unlock()
	s.cfg.OnProgress(s.snapshot())
}

func (s *supervisor) snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{RunsTotal: s.cfg.Spec.Runs}
	for _, st := range s.shards {
		snap.RunsDone += st.runs
		snap.Shards = append(snap.Shards, ShardSnapshot{
			Index: st.shard.Index, State: st.state,
			Runs: st.runs, Window: st.shard.Runs(), Attempt: st.attempt,
		})
	}
	sort.Slice(snap.Shards, func(i, j int) bool { return snap.Shards[i].Index < snap.Shards[j].Index })
	return snap
}

func (s *supervisor) buildManifest() *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	spec := s.cfg.Spec
	m := &Manifest{
		Plan:       spec.Plan.Name,
		PlanHash:   fmt.Sprintf("%#x", spec.Plan.Hash()),
		MasterSeed: fmt.Sprintf("%#x", spec.MasterSeed),
		Runs:       spec.Runs,
		Shards:     spec.Shards,
		Mode:       spec.Mode.String(),
		Parallel:   s.cfg.Parallel,
		Retries:    s.cfg.Retries,
	}
	for _, st := range s.shards {
		m.Workers = append(m.Workers, ShardStatus{
			Shard: st.shard.Index, Path: st.path,
			Start: st.shard.Start, End: st.shard.End,
			State: st.state, Records: st.runs,
			Attempts: append([]Attempt(nil), st.attempts...),
		})
	}
	return m
}

// publishSpec writes spec.json, refusing to replace the spec of a
// different campaign — two fan-outs must not share a directory.
func publishSpec(path string, spec *dist.Spec) error {
	if prev, err := dist.ReadSpecFile(path); err == nil {
		if !spec.SameCampaign(prev) {
			return fmt.Errorf("fanout: %s already describes a different campaign — use a fresh -dir: %w", path, dist.ErrCampaignMismatch)
		}
		return nil // identical spec already published (resume)
	} else if !os.IsNotExist(err) {
		// Unreadable spec remnant: rewrite it below.
		_ = os.Remove(path)
	}
	return dist.WriteSpecFile(path, spec)
}

// writeManifest publishes fanout.json atomically.
func writeManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadManifest loads a fanout.json.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("fanout: %s: %w", path, err)
	}
	return &m, nil
}
