package fanout

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/dist"
	"github.com/dessertlab/certify/internal/sim"
)

// shortE3 shortens the Figure-3 plan so supervised campaigns stay fast.
func shortE3() *core.TestPlan {
	plan := *core.PlanE3Fig3()
	plan.Duration = 8 * sim.Second
	plan.Name = "E3-fanout"
	return &plan
}

// serialReference runs the unsharded campaign and collects per-run
// trace hashes — the bit-identity baseline every fan-out must hit.
func serialReference(t *testing.T, plan *core.TestPlan, runs int, seed uint64) (*core.CampaignResult, map[int]uint64) {
	t.Helper()
	var mu sync.Mutex
	hashes := make(map[int]uint64, runs)
	c := &core.Campaign{
		Plan: plan, Runs: runs, MasterSeed: seed, Mode: core.ModeDistribution,
		OnRun: func(index int, r *core.RunResult) {
			mu.Lock()
			hashes[index] = r.TraceHash
			mu.Unlock()
		},
	}
	res, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, hashes
}

// requireMatchesSerial asserts the supervised result equals the serial
// reference: distribution, injections, latency and per-run trace hash.
func requireMatchesSerial(t *testing.T, res *Result, serial *core.CampaignResult, hashes map[int]uint64) {
	t.Helper()
	if res.Merged.Total() != serial.Total() || res.Merged.InjectionsTotal() != serial.InjectionsTotal() {
		t.Fatalf("merged total/injections = %d/%d, serial = %d/%d",
			res.Merged.Total(), res.Merged.InjectionsTotal(), serial.Total(), serial.InjectionsTotal())
	}
	for _, o := range core.AllOutcomes() {
		if res.Merged.Count(o) != serial.Count(o) {
			t.Fatalf("count(%v) = %d supervised, %d serial", o, res.Merged.Count(o), serial.Count(o))
		}
	}
	if res.Merged.MeanDetectionLatency() != serial.MeanDetectionLatency() {
		t.Fatalf("mean detection latency %v supervised, %v serial",
			res.Merged.MeanDetectionLatency(), serial.MeanDetectionLatency())
	}
	got := make(map[int]uint64, serial.Total())
	for _, sf := range res.Shards {
		for idx, h := range sf.TraceHashes {
			got[idx] = h
		}
	}
	if len(got) != len(hashes) {
		t.Fatalf("supervised artefacts hold %d runs, serial reference %d", len(got), len(hashes))
	}
	for idx, h := range hashes {
		if got[idx] != h {
			t.Fatalf("run %d: trace hash %#x supervised, %#x serial", idx, got[idx], h)
		}
	}
}

// TestFanoutMatchesSerial is the tentpole's core promise: one Run call
// supervises K workers and lands on the bit-identical serial campaign.
func TestFanoutMatchesSerial(t *testing.T) {
	const runs, seed = 24, uint64(2022)
	plan := shortE3()
	serial, hashes := serialReference(t, plan, runs, seed)

	for _, k := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards-%d", k), func(t *testing.T) {
			spec := &dist.Spec{Plan: plan, Runs: runs, MasterSeed: seed, Shards: k, Mode: core.ModeDistribution}
			res, err := Run(context.Background(), Config{
				Spec: spec, Dir: t.TempDir(), Poll: 5 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			requireMatchesSerial(t, res, serial, hashes)
			if !res.Manifest.Completed {
				t.Fatal("manifest not marked completed")
			}
			for _, w := range res.Manifest.Workers {
				if w.State != StateCompleted {
					t.Fatalf("shard %d state %s, want completed", w.Shard, w.State)
				}
				if n := len(w.Attempts); n != 1 || w.Attempts[0].Outcome != "completed" {
					t.Fatalf("shard %d attempts %+v, want one completed", w.Shard, w.Attempts)
				}
			}
		})
	}
}

// killFirstLauncher kills the target shard's first worker once it has
// streamed at least one run record — a deterministic mid-shard crash.
// The doomed attempt runs with a single campaign worker so the kill
// always lands before the window can complete. All attempts — doomed,
// restarted and healthy alike — draw machines from one shared warm
// pool, so the crash-recovery path is exercised on reused machines.
type killFirstLauncher struct {
	target int
	pool   *core.MachinePool
	mu     sync.Mutex
	killed bool
}

func (l *killFirstLauncher) Start(ctx context.Context, req StartRequest) (Worker, error) {
	l.mu.Lock()
	doomed := req.Index == l.target && !l.killed
	if doomed {
		l.killed = true
		req.Workers = 1
	}
	if l.pool == nil {
		l.pool = core.NewMachinePool()
	}
	pool := l.pool
	l.mu.Unlock()
	w, err := InProcess{Pool: pool}.Start(ctx, req)
	if err != nil || !doomed {
		return w, err
	}
	go func() {
		tail := dist.NewTail(req.OutPath)
		for {
			p, _ := tail.Poll()
			if p.Runs >= 1 {
				w.Kill()
				return
			}
			if p.Complete {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	return w, nil
}

// TestFanoutKilledWorkerResumes: a worker dies mid-shard; the
// supervisor restarts it and the merged result is still bit-identical
// to the serial campaign, with a truthful crash in the manifest. The
// campaign is sized so the doomed shard's window comfortably outlasts
// one JSONL flush interval — warm machines made 8-run shards finish
// inside a single batch, which would let the shard complete before the
// killer's tail ever saw a record.
func TestFanoutKilledWorkerResumes(t *testing.T) {
	const runs, seed = 120, uint64(2022)
	plan := shortE3()
	serial, hashes := serialReference(t, plan, runs, seed)

	spec := &dist.Spec{Plan: plan, Runs: runs, MasterSeed: seed, Shards: 3, Mode: core.ModeDistribution}
	res, err := Run(context.Background(), Config{
		Spec: spec, Dir: t.TempDir(), Retries: 2,
		Launcher: &killFirstLauncher{target: 1}, Poll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireMatchesSerial(t, res, serial, hashes)

	st := res.Manifest.Workers[1]
	if st.State != StateCompleted {
		t.Fatalf("killed shard state %s, want completed", st.State)
	}
	if len(st.Attempts) != 2 {
		t.Fatalf("killed shard attempts = %+v, want crash + completion", st.Attempts)
	}
	if st.Attempts[0].Outcome != "crashed" || st.Attempts[1].Outcome != "completed" {
		t.Fatalf("attempt outcomes = %q, %q; want crashed, completed",
			st.Attempts[0].Outcome, st.Attempts[1].Outcome)
	}
}

// TestFanoutGoldenSeed2022KilledWorker is the acceptance gate: the
// pinned E3/Figure-3 campaign (40 one-minute runs, master seed 2022, 3
// shards) supervised in one call, with every worker drawing machines
// from one shared warm pool and one worker killed partway through,
// still reproduces the golden 23/1/16 split and 56 injections.
func TestFanoutGoldenSeed2022KilledWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	pool := core.NewMachinePool()
	spec := &dist.Spec{Plan: core.PlanE3Fig3(), Runs: 40, MasterSeed: 2022, Shards: 3, Mode: core.ModeDistribution}
	res, err := Run(context.Background(), Config{
		Spec: spec, Dir: t.TempDir(), Retries: 2,
		Launcher: &killFirstLauncher{target: 1, pool: pool}, Poll: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[core.Outcome]int{
		core.OutcomeCorrect:      23,
		core.OutcomeInconsistent: 1,
		core.OutcomePanicPark:    16,
	}
	for _, o := range core.AllOutcomes() {
		if res.Merged.Count(o) != want[o] {
			t.Fatalf("count(%v) = %d, want %d", o, res.Merged.Count(o), want[o])
		}
	}
	if res.Merged.Total() != 40 || res.Merged.InjectionsTotal() != 56 {
		t.Fatalf("total=%d injections=%d, want 40/56", res.Merged.Total(), res.Merged.InjectionsTotal())
	}
	if builds, reuses := pool.Stats(); reuses == 0 {
		t.Fatalf("pool stats builds=%d reuses=%d — supervised campaign never reused a machine", builds, reuses)
	}
}

// brokenLauncher fails the target shard's every attempt: the worker
// exits with an error before writing anything.
type brokenLauncher struct{ target int }

type deadWorker struct{ err error }

func (w deadWorker) Wait() error    { return w.err }
func (deadWorker) Kill()            {}
func (deadWorker) Describe() string { return "dead-on-arrival" }
func (l brokenLauncher) Start(ctx context.Context, req StartRequest) (Worker, error) {
	if req.Index == l.target {
		return deadWorker{err: fmt.Errorf("simulated worker crash")}, nil
	}
	return InProcess{}.Start(ctx, req)
}

// TestFanoutRetryExhaustion: a shard that can never complete consumes
// its retry budget, the fan-out fails with a named shard, and
// fanout.json records every attempt truthfully.
func TestFanoutRetryExhaustion(t *testing.T) {
	const retries = 2
	spec := &dist.Spec{Plan: shortE3(), Runs: 12, MasterSeed: 7, Shards: 3, Mode: core.ModeDistribution}
	dir := t.TempDir()
	res, err := Run(context.Background(), Config{
		Spec: spec, Dir: dir, Retries: retries,
		Launcher: brokenLauncher{target: 2}, Poll: 2 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("fan-out with a permanently broken shard reported success")
	}
	if !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("error does not name the failed shard: %v", err)
	}
	if res == nil || res.Manifest == nil {
		t.Fatal("no manifest returned on failure")
	}

	// fanout.json must exist on disk and agree with the returned copy.
	m, merr := ReadManifest(filepath.Join(dir, ManifestFileName))
	if merr != nil {
		t.Fatal(merr)
	}
	if m.Completed {
		t.Fatal("failed fan-out marked completed")
	}
	broken := m.Workers[2]
	if broken.State != StateFailed {
		t.Fatalf("broken shard state %s, want failed", broken.State)
	}
	if len(broken.Attempts) != retries+1 {
		t.Fatalf("broken shard has %d attempts, want %d", len(broken.Attempts), retries+1)
	}
	for _, att := range broken.Attempts {
		if att.Outcome != "crashed" || !strings.Contains(att.Detail, "simulated worker crash") {
			t.Fatalf("untruthful attempt record: %+v", att)
		}
	}
	for _, w := range m.Workers[:2] {
		if w.State != StateCompleted && w.State != StateAborted {
			t.Fatalf("sibling shard %d state %s, want completed or aborted", w.Shard, w.State)
		}
	}
}

// hangOnceLauncher wedges the target shard's first worker: it writes
// nothing and never exits until killed — the stall watchdog's case.
type hangOnceLauncher struct {
	target int
	mu     sync.Mutex
	hung   bool
}

type hangWorker struct {
	once sync.Once
	done chan struct{}
}

func (w *hangWorker) Wait() error {
	<-w.done
	return fmt.Errorf("killed while hung")
}
func (w *hangWorker) Kill()            { w.once.Do(func() { close(w.done) }) }
func (w *hangWorker) Describe() string { return "hung-worker" }

func (l *hangOnceLauncher) Start(ctx context.Context, req StartRequest) (Worker, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if req.Index == l.target && !l.hung {
		l.hung = true
		return &hangWorker{done: make(chan struct{})}, nil
	}
	return InProcess{}.Start(ctx, req)
}

// TestFanoutStallWatchdog: a wedged worker (alive, no artefact
// progress) is killed after StallTimeout and its shard restarted.
func TestFanoutStallWatchdog(t *testing.T) {
	spec := &dist.Spec{Plan: shortE3(), Runs: 9, MasterSeed: 5, Shards: 3, Mode: core.ModeDistribution}
	// The stall window must sit far above one run's wall-clock cost
	// (which the race detector inflates ~10x), or the watchdog would
	// kill healthy workers between record writes.
	res, err := Run(context.Background(), Config{
		Spec: spec, Dir: t.TempDir(), Retries: 1,
		Launcher: &hangOnceLauncher{target: 0},
		Poll:     5 * time.Millisecond, StallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Manifest.Workers[0]
	if len(st.Attempts) != 2 || st.Attempts[0].Outcome != "stalled" {
		t.Fatalf("stalled shard attempts = %+v, want stalled + completed", st.Attempts)
	}
	if st.State != StateCompleted {
		t.Fatalf("stalled shard final state %s, want completed", st.State)
	}
}

// TestFanoutResumeSkipsCompleted: rerunning a finished fan-out executes
// nothing — every shard is recognised complete and the merge result is
// identical.
func TestFanoutResumeSkipsCompleted(t *testing.T) {
	spec := &dist.Spec{Plan: shortE3(), Runs: 9, MasterSeed: 3, Shards: 3, Mode: core.ModeDistribution}
	dir := t.TempDir()
	first, err := Run(context.Background(), Config{Spec: spec, Dir: dir, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(context.Background(), Config{Spec: spec, Dir: dir, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range again.Manifest.Workers {
		if w.State != StateSkipped {
			t.Fatalf("shard %d state %s on resume, want skipped", w.Shard, w.State)
		}
	}
	if again.Merged.Total() != first.Merged.Total() {
		t.Fatalf("resume total %d, first %d", again.Merged.Total(), first.Merged.Total())
	}
	for _, o := range core.AllOutcomes() {
		if again.Merged.Count(o) != first.Merged.Count(o) {
			t.Fatalf("resume count(%v) = %d, first %d", o, again.Merged.Count(o), first.Merged.Count(o))
		}
	}

	// A different campaign must not be supervised over the same dir.
	other := &dist.Spec{Plan: shortE3(), Runs: 9, MasterSeed: 4, Shards: 3, Mode: core.ModeDistribution}
	if _, err := Run(context.Background(), Config{Spec: other, Dir: dir}); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("foreign campaign over an existing dir: %v", err)
	}
}

// TestFanoutGzipArtefacts: the supervised path with compressed shard
// artefacts still reproduces the serial campaign bit-for-bit. (A gzip
// tail is not line-countable, so the kill-mid-shard coverage for
// compressed artefacts lives at the dist layer: torn gzip remnants
// parse as incomplete and are rerun.)
func TestFanoutGzipArtefacts(t *testing.T) {
	const runs, seed = 12, uint64(2022)
	plan := shortE3()
	serial, hashes := serialReference(t, plan, runs, seed)

	spec := &dist.Spec{Plan: plan, Runs: runs, MasterSeed: seed, Shards: 3, Mode: core.ModeDistribution}
	res, err := Run(context.Background(), Config{
		Spec: spec, Dir: t.TempDir(), Gzip: true, Poll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireMatchesSerial(t, res, serial, hashes)
	for _, sf := range res.Shards {
		if !strings.HasSuffix(sf.Path, ".jsonl.gz") {
			t.Fatalf("artefact %s is not gzip-suffixed", sf.Path)
		}
	}
}
