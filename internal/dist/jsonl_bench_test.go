package dist

import (
	"path/filepath"
	"testing"

	"github.com/dessertlab/certify/internal/core"
)

// BenchmarkJSONLWriterFlushPolicy isolates the artefact write path: one
// run record encoded and written per op, under the old per-record flush
// discipline ("sync") versus the timer/batch policy CreateJSONL now
// installs ("batched"). The delta is the flush syscall + (for gzip) the
// flate sync point that every record used to pay.
func BenchmarkJSONLWriterFlushPolicy(b *testing.B) {
	rec := &core.RunResult{Seed: 0xfeed, DetectionLatency: -1}
	for _, tc := range []struct {
		name string
		gz   bool
		sync bool
	}{
		{"plain-sync", false, true},
		{"plain-batched", false, false},
		{"gzip-sync", true, true},
		{"gzip-batched", true, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			name := "runs.jsonl"
			if tc.gz {
				name += ".gz"
			}
			w, err := CreateJSONL(filepath.Join(b.TempDir(), name))
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			if tc.sync {
				w.SetFlushInterval(0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.OnRun(i, rec)
			}
			b.StopTimer()
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
