package dist

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dessertlab/certify/internal/core"
)

// TestTailCountsIncrementally simulates a worker appending to its
// artefact between polls — partial trailing lines and all.
func TestTailCountsIncrementally(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0.jsonl")
	tail := NewTail(path)

	// Before the worker creates the file: zero progress, no error.
	p, err := tail.Poll()
	if err != nil || p.Bytes != 0 || p.Runs != 0 || p.Complete || !p.Countable {
		t.Fatalf("pre-creation poll = %+v err=%v", p, err)
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	write := func(s string) {
		t.Helper()
		if _, err := f.WriteString(s); err != nil {
			t.Fatal(err)
		}
	}

	write(`{"type":"manifest","schema":1}` + "\n")
	write(`{"type":"run","index":0}` + "\n")
	// ...and half of a record the worker has not finished writing.
	write(`{"type":"run","ind`)
	p, err = tail.Poll()
	if err != nil || p.Runs != 1 || p.Complete {
		t.Fatalf("mid-write poll = %+v err=%v", p, err)
	}

	// The torn line completes, two more land, then the summary.
	write(`ex":1}` + "\n")
	write(`{"type":"run","index":2}` + "\n")
	p, err = tail.Poll()
	if err != nil || p.Runs != 3 {
		t.Fatalf("after completion poll = %+v err=%v", p, err)
	}
	write(`{"type":"summary","runs":3}` + "\n")
	p, err = tail.Poll()
	if err != nil || p.Runs != 3 || !p.Complete {
		t.Fatalf("final poll = %+v err=%v", p, err)
	}
}

// TestTailResetsOnTruncation: a restarted worker truncates the
// artefact; the tail must notice and recount from the top.
func TestTailResetsOnTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0.jsonl")
	long := `{"type":"manifest","schema":1}` + "\n" +
		`{"type":"run","index":0}` + "\n" +
		`{"type":"run","index":1}` + "\n" +
		`{"type":"run","index":2}` + "\n"
	if err := os.WriteFile(path, []byte(long), 0o644); err != nil {
		t.Fatal(err)
	}
	tail := NewTail(path)
	if p, _ := tail.Poll(); p.Runs != 3 {
		t.Fatalf("initial runs = %d, want 3", p.Runs)
	}

	short := `{"type":"manifest","schema":1}` + "\n" + `{"type":"run","index":0}` + "\n"
	if err := os.WriteFile(path, []byte(short), 0o644); err != nil {
		t.Fatal(err)
	}
	if p, _ := tail.Poll(); p.Runs != 1 {
		t.Fatalf("post-truncation runs = %d, want 1", p.Runs)
	}
}

// TestBatchedFlushKeepsTailLive pins the JSONL batching contract: run
// records written through CreateJSONL's timer-batched writer become
// visible to a Tail within the flush interval (not only at summary
// time), and a full batch flushes immediately without waiting for the
// timer.
func TestBatchedFlushKeepsTailLive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0.jsonl")
	w, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteManifest(Manifest{Type: "manifest", Schema: SchemaVersion}); err != nil {
		t.Fatal(err)
	}
	tail := NewTail(path)

	// A handful of records — fewer than a batch — must surface via the
	// deadline timer. Allow generous wall-clock slack for CI noise; the
	// contract is "within the interval", the assertion is "well before a
	// summary would have been the first flush".
	rec := &core.RunResult{Seed: 1, DetectionLatency: -1}
	for i := 0; i < 3; i++ {
		w.OnRun(i, rec)
	}
	deadline := time.Now().Add(50 * DefaultFlushInterval)
	for {
		p, err := tail.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if p.Runs == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batched records never reached the artefact (tail sees %d of 3 runs)", p.Runs)
		}
		time.Sleep(time.Millisecond)
	}

	// A full batch flushes synchronously in OnRun — whatever the timer
	// does concurrently, fewer than flushBatch records can be pending
	// after this loop, so at least 3+flushBatch are on disk already.
	for i := 3; i < 3+2*flushBatch; i++ {
		w.OnRun(i, rec)
	}
	p, err := tail.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if p.Runs < 3+flushBatch {
		t.Fatalf("full batch not flushed synchronously: tail sees %d of %d runs", p.Runs, 3+2*flushBatch)
	}

	// The summary flushes immediately and marks completion.
	if err := w.WriteSummary(&core.CampaignResult{}); err != nil {
		t.Fatal(err)
	}
	p, err = tail.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete {
		t.Fatal("summary not visible immediately after WriteSummary")
	}
}

// TestTailGzipLivenessOnly: compressed artefacts report byte growth but
// no record counts.
func TestTailGzipLivenessOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0.jsonl.gz")
	if err := os.WriteFile(path, []byte{0x1f, 0x8b, 0x08, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	tail := NewTail(path)
	p, err := tail.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if p.Countable || p.Bytes != 4 {
		t.Fatalf("gzip poll = %+v, want uncountable 4 bytes", p)
	}
}
