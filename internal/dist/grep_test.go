package dist

import (
	"compress/gzip"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/core"
)

// expectedGrep computes the ground truth the dossier's Grep must
// reproduce: regex over each run record's raw line, sequentially.
func expectedGrep(t *testing.T, path string, re *regexp.Regexp) []int {
	t.Helper()
	var want []int
	for k, line := range sequentialRunLines(t, path) {
		if re.Match(line) {
			want = append(want, k)
		}
	}
	return want
}

func matchIndices(ms []GrepMatch) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.Index
	}
	return out
}

func sameIndexSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, k := range a {
		seen[k] = true
	}
	for _, k := range b {
		if !seen[k] {
			return false
		}
	}
	return true
}

// TestDossierGrep pins the grep contract on a real full-mode campaign,
// plain and gzip: same matches as a sequential regex over the raw
// record lines, served through the indexed path (gzip greps stream one
// restart member at a time), with the matching evidence lines decoded.
func TestDossierGrep(t *testing.T) {
	for _, tc := range []struct {
		name string
		gz   bool
	}{{"plain", false}, {"gzip", true}} {
		t.Run(tc.name, func(t *testing.T) {
			spec := &Spec{Plan: shortE3(), Runs: 4, MasterSeed: 17, Shards: 1, Mode: core.ModeFull}
			name := "runs.jsonl"
			if tc.gz {
				name += ".gz"
			}
			path := filepath.Join(t.TempDir(), name)
			if _, _, err := ExecuteShard(context.Background(), spec, 0, 0, path); err != nil {
				t.Fatal(err)
			}
			d, err := OpenDossier(path)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if !d.Indexed() {
				t.Fatal("executed shard artefact did not open on the indexed path")
			}

			for _, pattern := range []string{
				"cell alive until horizon", // evidence line of correct runs
				"FreeRTOS",                 // cell transcript content
				"no such pattern anywhere", // must match nothing
			} {
				re := regexp.MustCompile(pattern)
				want := expectedGrep(t, path, re)
				got, err := d.Grep(re)
				if err != nil {
					t.Fatalf("grep %q: %v", pattern, err)
				}
				if !sameIndexSet(matchIndices(got), want) {
					t.Errorf("grep %q: matched runs %v, sequential ground truth %v",
						pattern, matchIndices(got), want)
				}
				for i := 1; i < len(got); i++ {
					if got[i-1].Index >= got[i].Index {
						t.Fatalf("grep %q: matches not in run-index order", pattern)
					}
				}
			}

			// A pattern that lives in evidence must surface the decoded line.
			got, err := d.Grep(regexp.MustCompile("cell alive until horizon"))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				t.Skip("no correct runs in this tiny campaign")
			}
			found := false
			for _, line := range got[0].Lines {
				if strings.HasPrefix(line, "evidence:") && strings.Contains(line, "cell alive until horizon") {
					found = true
				}
			}
			if !found {
				t.Errorf("matching evidence line not extracted: %q", got[0].Lines)
			}
		})
	}
}

// TestDossierGrepDegraded pins grep on the fallback paths: pre-index
// artefacts (no footer, so no restart members either) answer the same
// queries through the sequential cache, plain and gzip.
func TestDossierGrepDegraded(t *testing.T) {
	spec := synthSpec(40, 1)
	sh, err := spec.Shard(0)
	if err != nil {
		t.Fatal(err)
	}
	writeLegacy := func(t *testing.T, path string, gz bool) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var w *JSONLWriter
		if gz {
			zw := gzip.NewWriter(f)
			defer zw.Close()
			w = NewJSONLWriter(zw)
		} else {
			w = NewJSONLWriter(f)
		}
		if err := w.WriteManifest(sh.Manifest()); err != nil {
			t.Fatal(err)
		}
		agg := &core.CampaignResult{Plan: spec.Plan.Name}
		for k := 0; k < spec.Runs; k++ {
			r := synthResult(k)
			w.OnRun(k, r)
			agg.AddSample(r.Outcome(), len(r.Injections), r.DetectionLatency)
		}
		if err := w.WriteSummary(agg); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	re := regexp.MustCompile(`synthetic evidence for run \d+`)
	for _, tc := range []struct {
		name string
		gz   bool
	}{{"plain", false}, {"gzip", true}} {
		t.Run(tc.name, func(t *testing.T) {
			name := "legacy.jsonl"
			if tc.gz {
				name += ".gz"
			}
			path := filepath.Join(t.TempDir(), name)
			writeLegacy(t, path, tc.gz)
			d, err := OpenDossier(path)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if d.Indexed() {
				t.Fatal("pre-index artefact claims an index")
			}
			want := expectedGrep(t, path, re)
			if len(want) == 0 {
				t.Fatal("synthetic campaign produced no evidence lines to grep")
			}
			got, err := d.Grep(re)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIndexSet(matchIndices(got), want) {
				t.Errorf("degraded grep matched %v, ground truth %v", matchIndices(got), want)
			}
		})
	}
}

// TestCampaignDossierGrep pins cross-shard routing: a campaign grep
// returns every shard's matches merged in run-index order.
func TestCampaignDossierGrep(t *testing.T) {
	spec := synthSpec(30, 3)
	dir := t.TempDir()
	paths := make([]string, spec.Shards)
	for i := range paths {
		paths[i] = filepath.Join(dir, "shard-"+string(rune('0'+i))+".jsonl")
		writeSyntheticShard(t, paths[i], spec, i)
	}
	cd, err := OpenCampaignDossier(paths)
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()

	re := regexp.MustCompile(`synthetic evidence for run \d+`)
	var want []int
	for _, p := range paths {
		want = append(want, expectedGrep(t, p, re)...)
	}
	if len(want) == 0 {
		t.Fatal("synthetic campaign produced no evidence lines to grep")
	}
	got, err := cd.Grep(re)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIndexSet(matchIndices(got), want) {
		t.Errorf("campaign grep matched %v, ground truth %v", matchIndices(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Index >= got[i].Index {
			t.Fatal("campaign grep matches not in run-index order")
		}
	}
}
