package dist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/core"
)

// TestSpecRoundTrip: a spec published for re-exec workers decodes to
// the identical campaign — same plan hash, seeds, windows and mode.
func TestSpecRoundTrip(t *testing.T) {
	spec := &Spec{Plan: shortE3(), Runs: 40, MasterSeed: 2022, Shards: 3, Mode: core.ModeDistribution}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := WriteSpecFile(path, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.SameCampaign(got) {
		t.Fatalf("round-tripped spec describes a different campaign: %+v vs %+v", got, spec)
	}
	if got.Plan.Hash() != spec.Plan.Hash() {
		t.Fatalf("plan hash %#x after round trip, want %#x", got.Plan.Hash(), spec.Plan.Hash())
	}
	// The shard windows a worker derives from the decoded spec must be
	// the supervisor's windows.
	for i := 0; i < spec.Shards; i++ {
		a, _ := spec.Shard(i)
		b, _ := got.Shard(i)
		if a.Start != b.Start || a.End != b.End {
			t.Fatalf("shard %d window [%d,%d) after round trip, want [%d,%d)", i, b.Start, b.End, a.Start, a.End)
		}
	}
}

// TestSpecRejectsTampering: a spec whose embedded plan no longer hashes
// to the recorded fingerprint must not run.
func TestSpecRejectsTampering(t *testing.T) {
	spec := &Spec{Plan: shortE3(), Runs: 10, MasterSeed: 1, Shards: 2, Mode: core.ModeFull}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := WriteSpecFile(path, spec); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "intensity = medium", "intensity = high", 1)
	if tampered == string(data) {
		t.Fatal("test setup: plan text not found in spec")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpecFile(path); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("tampered spec accepted: %v", err)
	}
}

// TestSpecDecodeRejectsGarbage enumerates the refusal paths.
func TestSpecDecodeRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"not json":    "certainly not json\n",
		"bad plan":    `{"schema":1,"plan":"nope = nope","plan_hash":"0x1","runs":4,"master_seed":"0x1","shards":2,"mode":"full"}`,
		"bad mode":    `{"schema":1,"plan":"","plan_hash":"0x1","runs":4,"master_seed":"0x1","shards":2,"mode":"turbo"}`,
		"future file": `{"schema":99,"plan":"","plan_hash":"0x1","runs":4,"master_seed":"0x1","shards":2,"mode":"full"}`,
	} {
		p := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSpecFile(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
