package dist

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestFooterRoundTrip: encode → parse is the identity, including the
// outcome string table, zig-zag latencies and restart deltas.
func TestFooterRoundTrip(t *testing.T) {
	ix := &shardIndex{
		entries: []IndexEntry{
			{Index: 3, Offset: 120, Length: 80, Outcome: "correct", Injections: 0, TraceHash: 0xdeadbeefcafef00d, DetectionNS: -1},
			{Index: 4, Offset: 440, Length: 91, Outcome: "panic-park", Injections: 2, TraceHash: 1, DetectionNS: 1_500_000},
			{Index: 9, Offset: 200, Length: 77, Outcome: "correct", Injections: 1, TraceHash: 0, DetectionNS: -1},
		},
		restarts: []restart{{0, 0}, {512, 4096}, {900, 8192}},
		summary:  true,
	}
	got, err := parseFooter(encodeFooter(ix))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.entries, ix.entries) {
		t.Fatalf("entries round-trip:\n got %+v\nwant %+v", got.entries, ix.entries)
	}
	if !reflect.DeepEqual(got.restarts, ix.restarts) {
		t.Fatalf("restarts round-trip: got %+v want %+v", got.restarts, ix.restarts)
	}
	if !got.summary {
		t.Fatal("summary flag lost")
	}

	// Unsorted input is sorted by run index on encode.
	ix.entries[0], ix.entries[2] = ix.entries[2], ix.entries[0]
	got, err = parseFooter(encodeFooter(ix))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got.entries); i++ {
		if got.entries[i].Index <= got.entries[i-1].Index {
			t.Fatal("parsed entries not sorted by run index")
		}
	}
}

// TestFooterParserRejectsCorruption: every single-bit flip and every
// truncation of a valid footer block must be rejected (the CRC spans
// the whole block), never panic, and never round-trip to a different
// table.
func TestFooterParserRejectsCorruption(t *testing.T) {
	ix := &shardIndex{
		entries: []IndexEntry{
			{Index: 0, Offset: 100, Length: 50, Outcome: "correct", TraceHash: 42, DetectionNS: -1},
			{Index: 1, Offset: 150, Length: 60, Outcome: "cpu-park", Injections: 1, TraceHash: 43, DetectionNS: 10},
		},
		summary: true,
	}
	block := encodeFooter(ix)

	for i := 0; i < len(block); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), block...)
			mut[i] ^= 1 << bit
			if _, err := parseFooter(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
	for n := 0; n < len(block); n++ {
		if _, err := parseFooter(block[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestGzipTrailerRoundTrip pins the hand-crafted trailer member: fixed
// size, parseable, and rejected byte-for-byte when mutated outside the
// variable fields.
func TestGzipTrailerRoundTrip(t *testing.T) {
	tr := encodeGzipTrailer(12345, 678)
	if len(tr) != gzipTrailerSize {
		t.Fatalf("trailer member is %d bytes, want %d", len(tr), gzipTrailerSize)
	}
	off, n, ok := parseGzipTrailer(tr)
	if !ok || off != 12345 || n != 678 {
		t.Fatalf("trailer round-trip: off=%d len=%d ok=%v", off, n, ok)
	}
	for _, i := range []int{0, 1, 2, 3, 11, 12, 13, 33, 40, 41, 45, 49} {
		mut := append([]byte(nil), tr...)
		mut[i] ^= 0xff
		if _, _, ok := parseGzipTrailer(mut); ok {
			t.Fatalf("mutated trailer byte %d accepted", i)
		}
	}
	if _, _, ok := parseGzipTrailer(tr[:gzipTrailerSize-1]); ok {
		t.Fatal("short trailer accepted")
	}
}

// TestPlainTrailerRejectsMutation covers the plain 24-byte trailer.
func TestPlainTrailerRejectsMutation(t *testing.T) {
	tr := encodePlainTrailer(777, 88)
	off, n, ok := parsePlainTrailer(tr)
	if !ok || off != 777 || n != 88 {
		t.Fatalf("plain trailer round-trip: off=%d len=%d ok=%v", off, n, ok)
	}
	for i := 16; i < plainTrailerSize; i++ { // the magic bytes
		mut := append([]byte(nil), tr...)
		mut[i] ^= 1
		if _, _, ok := parsePlainTrailer(mut); ok {
			t.Fatalf("mutated trailer magic byte %d accepted", i)
		}
	}
}

// corruptTailCases enumerates deterministic footer-corruption shapes;
// the fuzz target below explores the space around them.
func corruptTailCases(data []byte, gz bool) map[string][]byte {
	cases := map[string][]byte{
		"trailer-cut":      data[:len(data)-7],
		"footer-half":      data[:len(data)-len(data)/8],
		"no-footer-midrec": data[:len(data)*3/4],
	}
	flip := func(off int) []byte {
		mut := append([]byte(nil), data...)
		mut[len(mut)+off] ^= 0x20
		return mut
	}
	cases["flip-in-trailer"] = flip(-4)
	cases["flip-in-footer"] = flip(-40)
	if gz {
		cases["flip-in-member"] = flip(-len(data) / 3)
	}
	return cases
}

// TestDossierFooterCorruptionDegrades: truncated, bit-flipped and torn
// footers must degrade to the sequential scan — never panic, never
// error out for footer reasons, never misattribute a record. Torn
// variants that also lose record lines just serve fewer records, the
// same set the sequential decode sees.
func TestDossierFooterCorruptionDegrades(t *testing.T) {
	spec := synthSpec(64, 1)
	for _, name := range []string{"shard.jsonl", "shard.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			clean := filepath.Join(dir, name)
			writeSyntheticShard(t, clean, spec, 0)
			data, err := os.ReadFile(clean)
			if err != nil {
				t.Fatal(err)
			}
			for caseName, mut := range corruptTailCases(data, IsGzipPath(name)) {
				t.Run(caseName, func(t *testing.T) {
					path := filepath.Join(dir, caseName+"-"+name)
					if err := os.WriteFile(path, mut, 0o644); err != nil {
						t.Fatal(err)
					}
					d, err := OpenDossier(path)
					if err != nil {
						// Only acceptable when even the manifest is gone —
						// not the case for tail corruption of a 64-run file.
						t.Fatalf("OpenDossier: %v", err)
					}
					defer d.Close()
					want := sequentialRunLines(t, path)
					if d.NumRuns() != len(want) {
						t.Fatalf("dossier holds %d runs, sequential decode of the same bytes %d", d.NumRuns(), len(want))
					}
					for k, line := range want {
						raw, err := d.RawRun(k)
						if err != nil {
							t.Fatalf("RawRun(%d): %v", k, err)
						}
						if !bytes.Equal(raw, line) {
							t.Fatalf("RawRun(%d) diverges after tail corruption", k)
						}
					}
				})
			}
		})
	}
}

// FuzzFooterParser throws arbitrary bytes at the footer block parser:
// it must never panic and never accept a block whose re-encoding does
// not reproduce the input's table (CRC acceptance implies integrity).
func FuzzFooterParser(f *testing.F) {
	ix := &shardIndex{
		entries: []IndexEntry{
			{Index: 0, Offset: 90, Length: 50, Outcome: "correct", TraceHash: 7, DetectionNS: -1},
			{Index: 2, Offset: 140, Length: 61, Outcome: "panic-park", Injections: 3, TraceHash: 8, DetectionNS: 5},
		},
		restarts: []restart{{0, 0}, {77, 1024}},
		summary:  true,
	}
	f.Add(encodeFooter(ix))
	f.Add([]byte(footerMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := parseFooter(data)
		if err != nil {
			return
		}
		// Accepted blocks must be internally consistent: sorted unique
		// indices, positive spans — the invariants random access trusts.
		for i, e := range got.entries {
			if e.Length <= 0 || e.Offset < 0 || e.Index < 0 {
				t.Fatalf("accepted entry %d with bad span: %+v", i, e)
			}
			if i > 0 && e.Index <= got.entries[i-1].Index {
				t.Fatalf("accepted unsorted entries at %d", i)
			}
		}
	})
}

// FuzzDossierTailCorruption mutates the tail of a real indexed
// artefact (where the footer and trailer live) and opens it as a
// dossier: any outcome is fine except a panic or a misattributed
// record — every record served for index k must really be run k's
// line, bit-flips in the table notwithstanding.
func FuzzDossierTailCorruption(f *testing.F) {
	dir, err := os.MkdirTemp("", "dossier-fuzz")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	spec := synthSpec(32, 1)
	seeds := map[string][]byte{}
	for _, name := range []string{"seed.jsonl", "seed.jsonl.gz"} {
		path := filepath.Join(dir, name)
		writeSyntheticShard(f, path, spec, 0)
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		seeds[name] = data
		f.Add(data, true)
	}
	f.Add(seeds["seed.jsonl"][:len(seeds["seed.jsonl"])-11], false)
	f.Add(seeds["seed.jsonl.gz"][:len(seeds["seed.jsonl.gz"])-3], true)

	var n int
	f.Fuzz(func(t *testing.T, data []byte, gz bool) {
		name := "f.jsonl"
		if gz {
			name += ".gz"
		}
		n++
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDossier(path)
		if err != nil {
			return // unreadable is a legal outcome for arbitrary bytes
		}
		defer d.Close()
		for _, e := range d.Entries() {
			rec, err := d.Run(e.Index)
			if err != nil {
				continue // a failed read is legal; a wrong record is not
			}
			if rec.Index != e.Index {
				t.Fatalf("dossier served run %d's record for index %d", rec.Index, e.Index)
			}
		}
	})
}
