package dist

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
)

// GrepMatch is one run whose record matched a Grep pattern, plus the
// decoded evidence and transcript lines that matched — what an operator
// wants printed, without re-reading the record.
type GrepMatch struct {
	Index   int
	Outcome string
	// Lines are the record's decoded lines the pattern matched, each
	// prefixed with its source ("evidence:", "root:", "cell:"). Empty
	// when the match sits in metadata only (seed, outcome, hashes).
	Lines []string
}

// Grep scans the artefact for records matching re and returns them in
// run-index order. The pattern is applied to each record's raw JSONL
// bytes — the same bytes `grep` would see on the artefact line, where
// transcripts are embedded with JSON escaping (a newline is the two
// characters `\n`) — so patterns cannot span transcript lines and
// JSON-escaped characters must be written escaped. Matching records are
// then decoded once to extract the matching evidence/transcript lines.
//
// Cost follows the dossier's access path. Plain artefacts are read span
// by span through the offset table. Indexed gzip artefacts stream one
// restart member at a time through a fixed-size window — each member is
// decompressed exactly once and only regex-matching lines are
// JSON-decoded, so a campaign-scale archive greps in bounded memory
// instead of materialising every record the way the degraded path's
// raw cache does. Degraded gzip dossiers grep their raw cache.
func (d *Dossier) Grep(re *regexp.Regexp) ([]GrepMatch, error) {
	var out []GrepMatch
	visit := func(tok []byte) error {
		if !re.Match(tok) {
			return nil
		}
		var probe struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(tok, &probe) != nil || probe.Type != recordRun {
			return nil // manifest, summary or footer bytes: not greppable runs
		}
		var rec RunRecord
		if err := json.Unmarshal(tok, &rec); err != nil {
			return fmt.Errorf("dist: %s: matched record does not decode: %w", d.path, err)
		}
		out = append(out, matchFromRecord(&rec, re))
		return nil
	}

	switch {
	case !d.gz:
		// Plain artefact, indexed or degraded: the offset table locates
		// every record; read each span positioned.
		for _, e := range d.entries {
			line, err := d.readPlainSpanLenient(e)
			if err != nil {
				return nil, fmt.Errorf("dist: %s run %d: %w", d.path, e.Index, err)
			}
			if err := visit(line); err != nil {
				return nil, err
			}
		}
	case d.indexed:
		if err := d.grepGzipMembers(visit); err != nil {
			return nil, err
		}
	default:
		// Degraded gzip: the sequential decode already cached the lines.
		for _, e := range d.entries {
			if err := visit(d.raw[e.Index]); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// grepGzipMembers streams the artefact one gzip restart member at a
// time — the footer's restart table marks each member's compressed
// start, and Multistream(false) stops the reader at the member
// boundary, so the scan holds one member window in memory at a time.
func (d *Dossier) grepGzipMembers(visit func([]byte) error) error {
	for _, rs := range d.footerRestarts {
		zr, err := gzip.NewReader(bufio.NewReaderSize(io.NewSectionReader(d, rs.comp, d.size-rs.comp), 64<<10))
		if err != nil {
			return fmt.Errorf("dist: %s: restart member at %d: %w", d.path, rs.comp, err)
		}
		zr.Multistream(false)
		sc := bufio.NewScanner(zr)
		sc.Buffer(make([]byte, 64<<10), maxLineBytes)
		for sc.Scan() {
			if err := visit(sc.Bytes()); err != nil {
				zr.Close()
				return err
			}
		}
		serr := sc.Err()
		zr.Close()
		if serr != nil {
			return fmt.Errorf("dist: %s: restart member at %d: %w", d.path, rs.comp, serr)
		}
	}
	return nil
}

// matchFromRecord extracts the decoded lines of rec that re matches.
func matchFromRecord(rec *RunRecord, re *regexp.Regexp) GrepMatch {
	m := GrepMatch{Index: rec.Index, Outcome: rec.Outcome}
	add := func(source, text string) {
		for _, line := range strings.Split(text, "\n") {
			if line != "" && re.MatchString(line) {
				m.Lines = append(m.Lines, source+" "+line)
			}
		}
	}
	for _, e := range rec.Evidence {
		add("evidence:", e)
	}
	add("root:", rec.Root)
	add("cell:", rec.Cell)
	return m
}

// Grep scans every shard of the campaign and returns the matching runs
// in run-index order. Each shard greps through its own access path.
func (cd *CampaignDossier) Grep(re *regexp.Regexp) ([]GrepMatch, error) {
	var out []GrepMatch
	for _, d := range cd.shards {
		ms, err := d.Grep(re)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	// Shards are window-ordered and each shard's matches are index-
	// ordered, so the concatenation already is — but don't rely on it.
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}
