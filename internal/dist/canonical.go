package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/sim"
)

// writeJSONLine appends v as one newline-terminated JSON line, the
// exact bytes JSONLWriter.writeLine would emit.
func writeJSONLine(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// WriteCanonical renders a complete shard artefact as its canonical
// byte stream: the manifest line, every run record in ascending global
// run-index order, then the summary footer — no index footer. Artefact
// files on disk are written in completion order (workers race), so two
// executions of the same campaign produce permuted files; the canonical
// stream is the order-free quotient. Because every run's record content
// is deterministic (seed chain → trace → classification → fixed JSON
// field order) and the summary is rebuilt from the records with
// sorted-key map encoding, two artefacts of the same campaign always
// canonicalise to identical bytes — the byte-identity contract the
// campaign server's result cache is audited against.
func WriteCanonical(w io.Writer, d *Dossier) error {
	if !d.Complete() {
		return fmt.Errorf("dist: %s is incomplete — canonical form is defined only for finished shards", d.Path())
	}
	bw := bufio.NewWriter(w)
	if err := writeJSONLine(bw, d.Manifest()); err != nil {
		return err
	}
	res := &core.CampaignResult{Plan: d.Manifest().Plan}
	for _, e := range d.Entries() {
		line, err := d.RawRun(e.Index)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		o, err := parseOutcome(e.Outcome)
		if err != nil {
			return fmt.Errorf("dist: %s run %d: %w", d.Path(), e.Index, err)
		}
		res.AddSample(o, e.Injections, sim.Time(e.DetectionNS))
	}
	s := summaryFor(res)
	stampStop(&s, d.Manifest(), len(d.Entries()))
	if err := writeJSONLine(bw, s); err != nil {
		return err
	}
	return bw.Flush()
}
