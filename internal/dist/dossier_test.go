package dist

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/sim"
)

// synthOutcomes is the rotation synthetic shards draw outcomes from —
// several classes so ByOutcome and the footer's string table earn
// their keep.
var synthOutcomes = []core.Outcome{
	core.OutcomeCorrect,
	core.OutcomePanicPark,
	core.OutcomeCPUPark,
	core.OutcomeCorrect,
	core.OutcomeSilentDegradation,
	core.OutcomeCorrect,
	core.OutcomeInconsistent,
}

// synthResult builds a deterministic fake RunResult for global run
// index k — cheap enough to write 10k-run dossiers in tests without
// simulating anything.
func synthResult(k int) *core.RunResult {
	seed := uint64(k)
	h := sim.SplitMix64(&seed)
	r := &core.RunResult{
		Plan:             "synthetic",
		Seed:             0xfeed0000 + uint64(k),
		Verdict:          core.Verdict{Outcome: synthOutcomes[k%len(synthOutcomes)]},
		CellLines:        100 + k%7,
		Horizon:          8 * sim.Second,
		DetectionLatency: -1,
		TraceHash:        h,
	}
	if k%3 == 0 {
		r.Injections = make([]core.InjectionRecord, 1+k%3)
	}
	if r.Verdict.Outcome == core.OutcomePanicPark || r.Verdict.Outcome == core.OutcomeCPUPark {
		r.DetectionLatency = sim.Time(1_000_000 + 13*k)
		r.Verdict.Evidence = []string{fmt.Sprintf("synthetic evidence for run %d", k)}
	}
	return r
}

// writeSyntheticShard streams a complete fake shard artefact to path:
// manifest, one record per run of the shard's window (written in a
// scrambled completion order, like a parallel campaign), summary,
// index footer. Returns the spec so callers can open sibling shards.
func writeSyntheticShard(t testing.TB, path string, spec *Spec, index int) {
	t.Helper()
	sh, err := spec.Shard(index)
	if err != nil {
		t.Fatal(err)
	}
	w, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteManifest(sh.Manifest()); err != nil {
		t.Fatal(err)
	}
	agg := &core.CampaignResult{Plan: spec.Plan.Name}
	n := sh.Runs()
	for i := 0; i < n; i++ {
		// Scrambled but deterministic completion order.
		k := sh.Start + (i*7+3)%n
		r := synthResult(k)
		w.OnRun(k, r)
		agg.AddSample(r.Outcome(), len(r.Injections), r.DetectionLatency)
	}
	if err := w.WriteSummary(agg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// synthSpec describes a synthetic campaign of n runs over k shards.
func synthSpec(n, k int) *Spec {
	return &Spec{Plan: shortE3(), Runs: n, MasterSeed: 99, Shards: k, Mode: core.ModeDistribution}
}

// sequentialRunLines decodes an artefact the sequential way (the
// ground truth the dossier must match byte for byte): scan lines,
// collect every run record's raw bytes by index, stop at the first
// non-JSON line exactly as ReadShard does.
func sequentialRunLines(t testing.TB, path string) map[int][]byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, _, err := openShardReader(f, path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	lines := make(map[int][]byte)
	for sc.Scan() {
		var probe struct {
			Type  string `json:"type"`
			Index int    `json:"index"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			break
		}
		if probe.Type == recordRun {
			lines[probe.Index] = append([]byte(nil), sc.Bytes()...)
		}
	}
	return lines
}

// assertDossierMatchesSequential is the differential equivalence
// check: every access path of the dossier must return records
// byte-identical to the sequential decode.
func assertDossierMatchesSequential(t *testing.T, d *Dossier, path string) {
	t.Helper()
	want := sequentialRunLines(t, path)
	if len(want) != d.NumRuns() {
		t.Fatalf("%s: dossier holds %d runs, sequential decode %d", path, d.NumRuns(), len(want))
	}
	start, end := d.Window()

	// Run(k) / RawRun(k) for every k.
	for k, line := range want {
		raw, err := d.RawRun(k)
		if err != nil {
			t.Fatalf("%s: RawRun(%d): %v", path, k, err)
		}
		if !bytes.Equal(raw, line) {
			t.Fatalf("%s: RawRun(%d) diverges from sequential decode:\n  dossier: %s\n  sequential: %s", path, k, raw, line)
		}
		rec, err := d.Run(k)
		if err != nil {
			t.Fatalf("%s: Run(%d): %v", path, k, err)
		}
		if rec.Index != k {
			t.Fatalf("%s: Run(%d) returned record of run %d", path, k, rec.Index)
		}
	}

	// Range reads tile the window and concatenate to the full set.
	mid := start + (end-start)/2
	var got []*RunRecord
	for _, span := range [][2]int{{start, mid}, {mid, end}} {
		recs, err := d.Runs(span[0], span[1])
		if err != nil {
			t.Fatalf("%s: Runs(%d,%d): %v", path, span[0], span[1], err)
		}
		got = append(got, recs...)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: range reads yielded %d records, want %d", path, len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Index <= got[i-1].Index {
			t.Fatalf("%s: range reads out of order at %d", path, i)
		}
	}

	// ByOutcome partitions the record set.
	counts := d.OutcomeCounts()
	totalByOutcome := 0
	for outcome, n := range counts {
		recs, err := d.ByOutcome(outcome)
		if err != nil {
			t.Fatalf("%s: ByOutcome(%s): %v", path, outcome, err)
		}
		if len(recs) != n {
			t.Fatalf("%s: ByOutcome(%s) returned %d records, counts say %d", path, outcome, len(recs), n)
		}
		for _, rec := range recs {
			if rec.Outcome != outcome {
				t.Fatalf("%s: ByOutcome(%s) returned run %d with outcome %s", path, outcome, rec.Index, rec.Outcome)
			}
			if !bytes.Equal(mustRaw(t, d, rec.Index), want[rec.Index]) {
				t.Fatalf("%s: ByOutcome(%s) run %d diverges from sequential decode", path, outcome, rec.Index)
			}
		}
		totalByOutcome += n
	}
	if totalByOutcome != len(want) {
		t.Fatalf("%s: outcome counts sum to %d, want %d", path, totalByOutcome, len(want))
	}
}

func mustRaw(t *testing.T, d *Dossier, k int) []byte {
	t.Helper()
	raw, err := d.RawRun(k)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDossierEquivalenceSynthetic is the fast differential suite: for
// plain and gzip artefacts, every dossier access path returns records
// byte-identical to the sequential decode, on the indexed path.
func TestDossierEquivalenceSynthetic(t *testing.T) {
	spec := synthSpec(300, 2)
	for _, name := range []string{"shard-0.jsonl", "shard-0.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			writeSyntheticShard(t, path, spec, 0)
			d, err := OpenDossier(path)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if !d.Indexed() {
				t.Fatal("freshly written artefact did not open on the indexed path")
			}
			if !d.Complete() {
				t.Fatal("complete artefact reports Complete() == false")
			}
			assertDossierMatchesSequential(t, d, path)

			// The index agrees with ReadShard's fold.
			sf, err := ReadShard(path)
			if err != nil {
				t.Fatal(err)
			}
			if got := d.OutcomeCounts(); got[core.OutcomeCorrect.String()] != sf.Result.Count(core.OutcomeCorrect) {
				t.Fatalf("indexed correct count %d, sequential %d",
					got[core.OutcomeCorrect.String()], sf.Result.Count(core.OutcomeCorrect))
			}
			if d.InjectionsTotal() != sf.Result.InjectionsTotal() {
				t.Fatalf("indexed injections %d, sequential %d", d.InjectionsTotal(), sf.Result.InjectionsTotal())
			}
			for k, h := range sf.TraceHashes {
				e, ok := d.Entry(k)
				if !ok || e.TraceHash != h {
					t.Fatalf("run %d: index trace hash %#x, sequential %#x", k, e.TraceHash, h)
				}
			}
		})
	}
}

// TestDossierEquivalenceRealCampaign runs a real (shortened) sharded
// campaign and holds the dossier to the same byte-identity bar on
// genuinely simulated evidence, in both retention modes.
func TestDossierEquivalenceRealCampaign(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode core.CampaignMode
		gz   bool
	}{
		{"distribution-plain", core.ModeDistribution, false},
		{"full-gzip", core.ModeFull, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := &Spec{Plan: shortE3(), Runs: 6, MasterSeed: 17, Shards: 2, Mode: tc.mode}
			name := "shard-0.jsonl"
			if tc.gz {
				name += ".gz"
			}
			path := filepath.Join(t.TempDir(), name)
			if _, _, err := ExecuteShard(context.Background(), spec, 0, 0, path); err != nil {
				t.Fatal(err)
			}
			d, err := OpenDossier(path)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if !d.Indexed() {
				t.Fatal("executed shard artefact did not open on the indexed path")
			}
			assertDossierMatchesSequential(t, d, path)
			if tc.mode == core.ModeFull {
				rec, err := d.Run(0)
				if err != nil {
					t.Fatal(err)
				}
				if rec.Cell == "" {
					t.Fatal("full-mode dossier record lost its cell transcript")
				}
			}
		})
	}
}

// TestDossierFallbackPreIndex pins backwards compatibility: artefacts
// written without a footer (the pre-index format, here produced by the
// caller-owned writer) still serve every access path — via the
// sequential fallback, with identical records.
func TestDossierFallbackPreIndex(t *testing.T) {
	spec := synthSpec(40, 1)
	sh, err := spec.Shard(0)
	if err != nil {
		t.Fatal(err)
	}
	writeLegacy := func(t *testing.T, path string, gz bool) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var w *JSONLWriter
		if gz {
			// The pre-index gzip shape: one member for the whole file,
			// no restart points, no footer.
			zw := gzip.NewWriter(f)
			defer zw.Close()
			w = NewJSONLWriter(zw)
		} else {
			w = NewJSONLWriter(f)
		}
		if err := w.WriteManifest(sh.Manifest()); err != nil {
			t.Fatal(err)
		}
		agg := &core.CampaignResult{Plan: spec.Plan.Name}
		for k := 0; k < spec.Runs; k++ {
			r := synthResult(k)
			w.OnRun(k, r)
			agg.AddSample(r.Outcome(), len(r.Injections), r.DetectionLatency)
		}
		if err := w.WriteSummary(agg); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		name string
		gz   bool
	}{{"plain", false}, {"gzip", true}} {
		t.Run(tc.name, func(t *testing.T) {
			name := "legacy.jsonl"
			if tc.gz {
				name += ".gz"
			}
			path := filepath.Join(t.TempDir(), name)
			writeLegacy(t, path, tc.gz)
			d, err := OpenDossier(path)
			if err != nil {
				t.Fatalf("pre-index artefact unreadable: %v", err)
			}
			defer d.Close()
			if d.Indexed() {
				t.Fatal("pre-index artefact claims an index")
			}
			if !d.Complete() {
				t.Fatal("complete pre-index artefact reports incomplete")
			}
			assertDossierMatchesSequential(t, d, path)
		})
	}
}

// TestDossierRandomAccessReadCount pins the O(1) access property
// structurally: on a 10k-run dossier, one indexed Run(k) costs a
// bounded number of file reads — not a scan of 10k records. The
// wall-clock counterpart is BenchmarkDossierRandomAccess.
func TestDossierRandomAccessReadCount(t *testing.T) {
	const runs = 10_000
	spec := synthSpec(runs, 1)
	for _, tc := range []struct {
		name     string
		maxReads int64
	}{
		// Plain: trailer + footer at open; one positioned read per record.
		{"shard-0.jsonl", 4},
		// Gzip: a record read decodes one member (≤ 64 records) from its
		// restart point in buffered chunks — bounded by the member size,
		// independent of the dossier size.
		{"shard-0.jsonl.gz", 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), tc.name)
			writeSyntheticShard(t, path, spec, 0)
			d, err := OpenDossier(path)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if !d.Indexed() {
				t.Fatal("10k-run artefact did not open indexed")
			}
			for _, k := range []int{0, 1, runs / 2, runs - 1, 7777} {
				before := d.Reads()
				rec, err := d.Run(k)
				if err != nil {
					t.Fatalf("Run(%d): %v", k, err)
				}
				if rec.Index != k {
					t.Fatalf("Run(%d) returned run %d", k, rec.Index)
				}
				if cost := d.Reads() - before; cost > tc.maxReads {
					t.Fatalf("Run(%d) cost %d file reads, want ≤ %d (full scan would be thousands)", k, cost, tc.maxReads)
				}
			}
		})
	}
}

// TestDossierGoldenSeed2022 is the acceptance-facing differential
// suite: for plain and gzip artefacts of the golden E3/Figure-3
// campaign (40 one-minute runs, master seed 2022), every OpenDossier
// access path returns records byte-identical to the sequential decode,
// and the index reproduces the pinned 23 correct / 1 inconsistent /
// 16 panic-park split with 56 injections without decoding a record.
func TestDossierGoldenSeed2022(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	spec := &Spec{Plan: core.PlanE3Fig3(), Runs: 40, MasterSeed: 2022, Shards: 1, Mode: core.ModeDistribution}
	pool := core.NewMachinePool()
	dir := t.TempDir()
	for _, name := range []string{"golden.jsonl", "golden.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if _, skipped, err := ExecuteShardPool(context.Background(), spec, 0, 0, path, pool); err != nil || skipped {
				t.Fatalf("golden campaign: skipped=%v err=%v", skipped, err)
			}
			d, err := OpenDossier(path)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if !d.Indexed() || !d.Complete() {
				t.Fatalf("golden artefact: indexed=%v complete=%v", d.Indexed(), d.Complete())
			}
			assertDossierMatchesSequential(t, d, path)

			counts := d.OutcomeCounts()
			want := map[string]int{
				core.OutcomeCorrect.String():      23,
				core.OutcomeInconsistent.String(): 1,
				core.OutcomePanicPark.String():    16,
			}
			for _, o := range core.AllOutcomes() {
				if counts[o.String()] != want[o.String()] {
					t.Fatalf("index count(%v) = %d, want %d", o, counts[o.String()], want[o.String()])
				}
			}
			if d.InjectionsTotal() != 56 {
				t.Fatalf("index injections = %d, want 56", d.InjectionsTotal())
			}
		})
	}
}

// TestCampaignDossierAndMasterIndex: shard footers compose into a
// campaign-level master index; the campaign dossier routes queries by
// run index across shard artefacts and the master-index file round-
// trips through disk.
func TestCampaignDossierAndMasterIndex(t *testing.T) {
	const runs, shards = 120, 3
	spec := synthSpec(runs, shards)
	dir := t.TempDir()
	paths := make([]string, shards)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%02d.jsonl", i))
		writeSyntheticShard(t, paths[i], spec, i)
	}

	miPath := filepath.Join(dir, MasterIndexFileName)
	mi, err := WriteMasterIndexFile(miPath, paths)
	if err != nil {
		t.Fatal(err)
	}
	if mi.Runs != runs || mi.ShardCount != shards || len(mi.Shards) != shards {
		t.Fatalf("master index shape: runs=%d shards=%d entries=%d", mi.Runs, mi.ShardCount, len(mi.Shards))
	}
	for _, s := range mi.Shards {
		if !s.Indexed {
			t.Fatalf("shard %d not marked indexed in the master index", s.Shard)
		}
		if filepath.IsAbs(s.Path) {
			t.Fatalf("shard %d path %q not relative to the campaign dir", s.Shard, s.Path)
		}
	}

	cd, err := OpenCampaignFromMaster(miPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()
	if cd.NumRuns() != runs {
		t.Fatalf("campaign dossier holds %d runs, want %d", cd.NumRuns(), runs)
	}
	total := 0
	for _, n := range cd.OutcomeCounts() {
		total += n
	}
	if total != runs {
		t.Fatalf("campaign outcome counts sum to %d, want %d", total, runs)
	}
	for _, k := range []int{0, 39, 40, 41, 80, runs - 1} {
		rec, err := cd.Run(k)
		if err != nil {
			t.Fatalf("campaign Run(%d): %v", k, err)
		}
		if rec.Index != k {
			t.Fatalf("campaign Run(%d) returned run %d", k, rec.Index)
		}
		want := synthResult(k)
		if rec.Outcome != want.Outcome().String() {
			t.Fatalf("campaign Run(%d) outcome %s, want %s", k, rec.Outcome, want.Outcome())
		}
	}
	if _, err := cd.Run(runs); err == nil {
		t.Fatal("campaign Run past the window succeeded")
	}
	recs, err := cd.RunRange(35, 45)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || recs[0].Index != 35 || recs[9].Index != 44 {
		t.Fatalf("campaign RunRange(35,45) = %d records [%d..%d]", len(recs), recs[0].Index, recs[len(recs)-1].Index)
	}

	// An incomplete shard set must be refused, like Merge refuses it.
	if _, err := OpenCampaignDossier(paths[:2]); err == nil {
		t.Fatal("campaign dossier over a missing shard accepted")
	}
	// A foreign shard too.
	other := synthSpec(runs, shards)
	other.MasterSeed = 123
	alien := filepath.Join(dir, "alien.jsonl")
	writeSyntheticShard(t, alien, other, 2)
	if _, err := OpenCampaignDossier([]string{paths[0], paths[1], alien}); err == nil {
		t.Fatal("campaign dossier over a foreign shard accepted")
	}
}
