package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/dessertlab/certify/internal/core"
)

// Spec serialization: the fan-out supervisor hands each re-exec'd shard
// worker the complete campaign description as one JSON file instead of
// a trail of CLI flags. The test plan travels inside it in the
// reviewable plan-file format (core.MarshalPlan), so custom -planfile
// campaigns fan out exactly like the built-in plans, and the plan hash
// is carried alongside as a transport-integrity check.

// specJSON is the wire form of a Spec.
type specJSON struct {
	Schema     int    `json:"schema"`
	Plan       string `json:"plan"`      // core plan-file text
	PlanHash   string `json:"plan_hash"` // hex TestPlan.Hash of the encoded plan
	Runs       int    `json:"runs"`
	MasterSeed string `json:"master_seed"` // hex
	Shards     int    `json:"shards"`
	Mode       string `json:"mode"`
	// Stop / Stratify mirror Spec: campaign identity, omitted when
	// absent so fixed-N spec files stay byte-identical to older writers.
	Stop     *core.StopSpec `json:"stop,omitempty"`
	Stratify bool           `json:"stratify,omitempty"`
}

// EncodeSpec writes the spec as JSON.
func EncodeSpec(w io.Writer, s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(specJSON{
		Schema:     SchemaVersion,
		Plan:       core.MarshalPlan(s.Plan),
		PlanHash:   fmt.Sprintf("%#x", s.Plan.Hash()),
		Runs:       s.Runs,
		MasterSeed: fmt.Sprintf("%#x", s.MasterSeed),
		Shards:     s.Shards,
		Mode:       s.Mode.String(),
		Stop:       s.Stop.Clone(),
		Stratify:   s.Stratify,
	})
}

// DecodeSpec parses a spec written by EncodeSpec and re-validates it,
// including the plan-hash integrity check: a spec whose embedded plan
// does not hash to the recorded fingerprint was corrupted or edited in
// transit and must not silently run a different campaign.
func DecodeSpec(r io.Reader) (*Spec, error) {
	var sj specJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("dist: bad spec: %w", err)
	}
	if sj.Schema > SchemaVersion {
		return nil, fmt.Errorf("dist: spec uses schema %d, this build reads up to %d", sj.Schema, SchemaVersion)
	}
	plan, err := core.ParsePlan(sj.Plan)
	if err != nil {
		return nil, fmt.Errorf("dist: spec plan: %w", err)
	}
	if got := fmt.Sprintf("%#x", plan.Hash()); got != sj.PlanHash {
		return nil, fmt.Errorf("dist: spec plan hash %s does not match embedded plan (%s) — corrupted spec: %w", sj.PlanHash, got, ErrCampaignMismatch)
	}
	seed, err := parseHex(sj.MasterSeed)
	if err != nil {
		return nil, fmt.Errorf("dist: spec master seed %q: %w", sj.MasterSeed, err)
	}
	mode, err := core.ParseCampaignMode(sj.Mode)
	if err != nil {
		return nil, err
	}
	s := &Spec{Plan: plan, Runs: sj.Runs, MasterSeed: seed, Shards: sj.Shards, Mode: mode, Stop: sj.Stop, Stratify: sj.Stratify}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteSpecFile atomically publishes the spec at path (write to a
// temporary sibling, then rename): a crashed supervisor never leaves a
// half-written spec for the next resume to trip over.
func WriteSpecFile(path string, s *Spec) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := EncodeSpec(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadSpecFile loads a spec published by WriteSpecFile.
func ReadSpecFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeSpec(f)
}

// SameCampaign reports whether two specs describe the identical
// campaign: same plan (by hash), run count, master seed, shard count
// and retention mode. The supervisor uses it to refuse pointing a new
// fan-out at a directory that already belongs to a different campaign.
func (s *Spec) SameCampaign(o *Spec) bool {
	return s != nil && o != nil &&
		s.Plan.Hash() == o.Plan.Hash() &&
		s.Runs == o.Runs && s.MasterSeed == o.MasterSeed &&
		s.Shards == o.Shards && s.Mode == o.Mode &&
		s.Stop.Identity() == o.Stop.Identity() && s.Stratify == o.Stratify
}
