package dist

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestDossierLiveTailRescansGrownArtefact pins the fallback-scan cache
// invalidation: a dossier opened on a shard that is still streaming (no
// index footer yet — the serve live-tail path) degrades to the
// sequential scan, and records appended after that scan must become
// visible on the next lookup instead of the cache answering "no record"
// forever. Both artefact flavours are exercised; the gzip writer ends a
// member per flush, so the grown file stays decodable mid-stream.
func TestDossierLiveTailRescansGrownArtefact(t *testing.T) {
	for _, name := range []string{"live.jsonl", "live.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			spec := synthSpec(64, 1)
			sh, err := spec.Shard(0)
			if err != nil {
				t.Fatal(err)
			}
			w, err := CreateJSONL(path)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			w.SetFlushInterval(0) // every record hits the file synchronously
			if err := w.WriteManifest(sh.Manifest()); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 8; k++ {
				w.OnRun(k, synthResult(k))
			}

			d, err := OpenDossier(path)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if d.Indexed() {
				t.Fatal("open mid-stream must fall back to the sequential scan")
			}
			if got := d.NumRuns(); got != 8 {
				t.Fatalf("initial scan sees %d runs, want 8", got)
			}

			// The shard keeps streaming after the scan cached its entries.
			for k := 8; k < 20; k++ {
				w.OnRun(k, synthResult(k))
			}
			for _, k := range []int{8, 13, 19} {
				rec, err := d.Run(k)
				if err != nil {
					t.Fatalf("run %d appended after the scan: %v", k, err)
				}
				if rec.Index != k {
					t.Fatalf("run %d decoded as index %d", k, rec.Index)
				}
				want := fmt.Sprintf("%#x", synthResult(k).Seed)
				if rec.Seed != want {
					t.Fatalf("run %d seed = %s, want %s", k, rec.Seed, want)
				}
			}
			if got := d.NumRuns(); got != 20 {
				t.Fatalf("after rescan NumRuns = %d, want 20", got)
			}

			// A truly absent index still misses — and must not loop
			// rescanning when the size is unchanged.
			if _, err := d.Run(63); err == nil {
				t.Fatal("run 63 was never written, lookup must fail")
			}
			reads := d.Reads()
			if _, err := d.Run(63); err == nil {
				t.Fatal("run 63 still absent")
			}
			if d.gz && d.Reads() != reads {
				t.Fatalf("stable-size miss re-read the file (%d → %d reads): cache not honoured", reads, d.Reads())
			}
		})
	}
}
