package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// MasterIndexFileName is the campaign-level index document a merge (or
// the fan-out supervisor) writes next to the shard artefacts.
const MasterIndexFileName = "master-index.json"

// MasterShard is one shard artefact's row in the master index: where
// the dossier lives, which window it covers, and its aggregate shape.
// The per-run offset table stays in the shard's own footer — the
// master index references footers instead of duplicating them, so it
// stays kilobytes at millions of runs.
type MasterShard struct {
	// Path of the shard artefact, relative to the master index file's
	// directory when written by WriteMasterIndexFile.
	Path    string `json:"path"`
	Shard   int    `json:"shard"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	Records int    `json:"records"`
	// Indexed reports whether the shard carried a verified footer when
	// the master index was built (false = its reads fall back to scans).
	Indexed    bool           `json:"indexed"`
	Outcomes   map[string]int `json:"outcomes"`
	Injections int            `json:"injections"`
}

// MasterIndex is the campaign-level composition of the shard footers:
// the campaign identity (the same fields every shard manifest agrees
// on), the per-shard dossier table, and campaign-wide outcome counts.
// It is JSON, human-inspectable, and the entry point `certify inspect`
// uses to open a whole campaign as one random-access dossier.
type MasterIndex struct {
	Schema     int            `json:"schema"`
	Plan       string         `json:"plan"`
	PlanHash   string         `json:"plan_hash"`
	MasterSeed string         `json:"master_seed"`
	Runs       int            `json:"runs"`
	ShardCount int            `json:"shard_count"`
	Mode       string         `json:"mode"`
	Outcomes   map[string]int `json:"outcomes"`
	Injections int            `json:"injections"`
	Shards     []MasterShard  `json:"shards"`
}

// CampaignDossier serves random access over a whole campaign: the
// shard dossiers opened together, queries routed by run index. It
// accepts exactly the shard sets Merge accepts — one campaign, all
// shards present and complete, windows tiling [0, Runs).
type CampaignDossier struct {
	shards []*Dossier // sorted by window start
	runs   int
}

// OpenCampaignDossier opens every shard artefact and verifies the set
// forms one complete campaign.
func OpenCampaignDossier(paths []string) (*CampaignDossier, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dist: no shard artefacts to open")
	}
	cd := &CampaignDossier{}
	ok := false
	defer func() {
		if !ok {
			cd.Close()
		}
	}()
	for _, p := range paths {
		d, err := OpenDossier(p)
		if err != nil {
			return nil, err
		}
		cd.shards = append(cd.shards, d)
	}
	ref := cd.shards[0].man
	seen := make(map[int]bool, len(cd.shards))
	for _, d := range cd.shards {
		if !d.man.sameCampaign(ref) {
			return nil, fmt.Errorf("dist: %s belongs to a different campaign than %s", d.path, cd.shards[0].path)
		}
		if seen[d.man.Shard] {
			return nil, fmt.Errorf("dist: shard %d appears twice", d.man.Shard)
		}
		seen[d.man.Shard] = true
		if !d.Complete() {
			return nil, fmt.Errorf("dist: %s is incomplete (%d of %d records) — rerun shard %d before inspecting the campaign",
				d.path, d.NumRuns(), d.man.End-d.man.Start, d.man.Shard)
		}
	}
	if len(cd.shards) != ref.Shards {
		return nil, fmt.Errorf("dist: campaign declares %d shards, got %d artefacts", ref.Shards, len(cd.shards))
	}
	sort.Slice(cd.shards, func(i, j int) bool { return cd.shards[i].man.Start < cd.shards[j].man.Start })
	next := 0
	for _, d := range cd.shards {
		if d.man.Start != next {
			return nil, fmt.Errorf("dist: shard windows do not tile the campaign: expected start %d, %s covers [%d,%d)",
				next, d.path, d.man.Start, d.man.End)
		}
		next = d.man.End
	}
	if next != ref.Runs {
		return nil, fmt.Errorf("dist: shard windows end at %d, campaign has %d runs", next, ref.Runs)
	}
	cd.runs = ref.Runs
	ok = true
	return cd, nil
}

// OpenCampaignFromMaster opens the campaign a master index file
// describes, resolving relative shard paths against the file's
// directory. The index is advisory — shard identity, completeness and
// tiling are re-verified from the artefacts themselves.
func OpenCampaignFromMaster(masterPath string) (*CampaignDossier, error) {
	mi, err := ReadMasterIndex(masterPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(masterPath)
	paths := make([]string, 0, len(mi.Shards))
	for _, s := range mi.Shards {
		p := s.Path
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		paths = append(paths, p)
	}
	return OpenCampaignDossier(paths)
}

// Close releases every shard dossier.
func (cd *CampaignDossier) Close() error {
	var first error
	for _, d := range cd.shards {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NumRuns returns the campaign's total run count.
func (cd *CampaignDossier) NumRuns() int { return cd.runs }

// Window returns the campaign's run-index window [0, runs).
func (cd *CampaignDossier) Window() (start, end int) { return 0, cd.runs }

// Shards returns the shard dossiers in window order (read-only).
func (cd *CampaignDossier) Shards() []*Dossier { return cd.shards }

// route returns the shard dossier whose window holds run k.
func (cd *CampaignDossier) route(k int) (*Dossier, error) {
	i := sort.Search(len(cd.shards), func(i int) bool { return cd.shards[i].man.End > k })
	if k < 0 || i >= len(cd.shards) {
		return nil, fmt.Errorf("dist: run %d outside campaign [0,%d)", k, cd.runs)
	}
	return cd.shards[i], nil
}

// Run returns run k's decoded record, wherever its shard put it.
func (cd *CampaignDossier) Run(k int) (*RunRecord, error) {
	d, err := cd.route(k)
	if err != nil {
		return nil, err
	}
	return d.Run(k)
}

// RawRun returns run k's record line bytes.
func (cd *CampaignDossier) RawRun(k int) ([]byte, error) {
	d, err := cd.route(k)
	if err != nil {
		return nil, err
	}
	return d.RawRun(k)
}

// Entry returns run k's index row.
func (cd *CampaignDossier) Entry(k int) (IndexEntry, bool) {
	d, err := cd.route(k)
	if err != nil {
		return IndexEntry{}, false
	}
	return d.Entry(k)
}

// Entries returns the campaign-wide offset table in run-index order.
// Offsets are relative to each entry's own shard artefact.
func (cd *CampaignDossier) Entries() []IndexEntry {
	out := make([]IndexEntry, 0, cd.runs)
	for _, d := range cd.shards {
		out = append(out, d.entries...)
	}
	return out
}

// RunRange returns the decoded records with indices in [from, to).
func (cd *CampaignDossier) RunRange(from, to int) ([]*RunRecord, error) {
	var out []*RunRecord
	for _, d := range cd.shards {
		recs, err := d.Runs(from, to)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// ByOutcome returns the campaign's records with the given outcome, in
// run-index order.
func (cd *CampaignDossier) ByOutcome(outcome string) ([]*RunRecord, error) {
	var out []*RunRecord
	for _, d := range cd.shards {
		recs, err := d.ByOutcome(outcome)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// OutcomeCounts tallies the campaign per outcome name.
func (cd *CampaignDossier) OutcomeCounts() map[string]int {
	out := make(map[string]int, 8)
	for _, d := range cd.shards {
		for o, n := range d.OutcomeCounts() {
			out[o] += n
		}
	}
	return out
}

// InjectionsTotal sums performed injections across the campaign.
func (cd *CampaignDossier) InjectionsTotal() int {
	n := 0
	for _, d := range cd.shards {
		n += d.InjectionsTotal()
	}
	return n
}

// MasterIndex composes the open shard dossiers' footers into the
// campaign-level index document.
func (cd *CampaignDossier) MasterIndex() *MasterIndex {
	ref := cd.shards[0].man
	mi := &MasterIndex{
		Schema:     SchemaVersion,
		Plan:       ref.Plan,
		PlanHash:   ref.PlanHash,
		MasterSeed: ref.MasterSeed,
		Runs:       ref.Runs,
		ShardCount: ref.Shards,
		Mode:       ref.Mode,
		Outcomes:   cd.OutcomeCounts(),
		Injections: cd.InjectionsTotal(),
	}
	for _, d := range cd.shards {
		mi.Shards = append(mi.Shards, MasterShard{
			Path:       d.path,
			Shard:      d.man.Shard,
			Start:      d.man.Start,
			End:        d.man.End,
			Records:    d.NumRuns(),
			Indexed:    d.Indexed(),
			Outcomes:   d.OutcomeCounts(),
			Injections: d.InjectionsTotal(),
		})
	}
	return mi
}

// BuildMasterIndex opens the shard artefacts, verifies they form one
// complete campaign, and composes their footers into a MasterIndex.
func BuildMasterIndex(paths []string) (*MasterIndex, error) {
	cd, err := OpenCampaignDossier(paths)
	if err != nil {
		return nil, err
	}
	defer cd.Close()
	return cd.MasterIndex(), nil
}

// WriteMasterIndexFile builds the master index over the shard
// artefacts and writes it (atomically) to path, with shard paths made
// relative to path's directory when possible so the campaign directory
// stays relocatable.
func WriteMasterIndexFile(path string, artefacts []string) (*MasterIndex, error) {
	mi, err := BuildMasterIndex(artefacts)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	for i := range mi.Shards {
		if rel, err := filepath.Rel(dir, mi.Shards[i].Path); err == nil && !filepath.IsAbs(rel) {
			mi.Shards[i].Path = rel
		}
	}
	data, err := json.MarshalIndent(mi, "", "  ")
	if err != nil {
		return nil, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	return mi, nil
}

// ReadMasterIndex loads a master index document.
func ReadMasterIndex(path string) (*MasterIndex, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mi MasterIndex
	if err := json.Unmarshal(data, &mi); err != nil {
		return nil, fmt.Errorf("dist: %s: %w", path, err)
	}
	if mi.Schema > SchemaVersion {
		return nil, fmt.Errorf("dist: %s uses schema %d, this build reads up to %d", path, mi.Schema, SchemaVersion)
	}
	if mi.Runs <= 0 || len(mi.Shards) == 0 {
		return nil, fmt.Errorf("dist: %s describes no campaign", path)
	}
	return &mi, nil
}
