package dist

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/obs"
)

// TestInstrumentationIsOutOfBand is the differential pin for the flight
// recorder's hard constraint: metrics observe the campaign, they never
// participate in it. The seed-2022 40-run E3 campaign must produce
// byte-identical artefacts and the pinned 23 correct / 1 inconsistent /
// 16 panic-park split whether instrumentation records or not — any
// drift means a metric leaked into the trace, the RNG chain or the
// digest, and the certification evidence can no longer be trusted.
func TestInstrumentationIsOutOfBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	run := func(t *testing.T, enabled bool, path string) *core.CampaignResult {
		t.Helper()
		prev := obs.Enabled()
		obs.SetEnabled(enabled)
		defer obs.SetEnabled(prev)
		spec := &Spec{Plan: core.PlanE3Fig3(), Runs: 40, MasterSeed: 2022, Shards: 1, Mode: core.ModeDistribution}
		res, skipped, err := ExecuteShardPool(context.Background(), spec, 0, 0, path, core.NewMachinePool())
		if err != nil || skipped {
			t.Fatalf("campaign (obs=%v): skipped=%v err=%v", enabled, skipped, err)
		}
		return res
	}

	dir := t.TempDir()
	onPath := filepath.Join(dir, "instrumented.jsonl")
	offPath := filepath.Join(dir, "uninstrumented.jsonl")
	resOn := run(t, true, onPath)
	resOff := run(t, false, offPath)

	for _, tc := range []struct {
		res  *core.CampaignResult
		mode string
	}{{resOn, "instrumented"}, {resOff, "uninstrumented"}} {
		if got := tc.res.Count(core.OutcomeCorrect); got != 23 {
			t.Errorf("%s: correct = %d, want 23", tc.mode, got)
		}
		if got := tc.res.Count(core.OutcomeInconsistent); got != 1 {
			t.Errorf("%s: inconsistent = %d, want 1", tc.mode, got)
		}
		if got := tc.res.Count(core.OutcomePanicPark); got != 16 {
			t.Errorf("%s: panic-park = %d, want 16", tc.mode, got)
		}
		if got := tc.res.InjectionsTotal(); got != 56 {
			t.Errorf("%s: injections = %d, want 56", tc.mode, got)
		}
	}

	on, err := os.ReadFile(onPath)
	if err != nil {
		t.Fatal(err)
	}
	off, err := os.ReadFile(offPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(on, off) {
		t.Fatalf("instrumented artefact differs from uninstrumented: %d vs %d bytes — observability leaked into the evidence", len(on), len(off))
	}
}
