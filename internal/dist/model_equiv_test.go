package dist

import (
	"fmt"
	"testing"

	"github.com/dessertlab/certify/internal/core"
)

// TestShardedCampaignMatchesSerialPerModel extends the subsystem's core
// promise to the full-machine fault space: for every pluggable model and
// K ∈ {1, 3}, the sharded campaign reproduces the serial one exactly —
// same outcome distribution, same injection total, and the same trace
// hash for every run index — and every shard manifest carries the
// model's identity so cross-model merges stay refusable.
func TestShardedCampaignMatchesSerialPerModel(t *testing.T) {
	const runs, seed = 9, uint64(0xC0FFEE)
	for _, model := range []string{"burst", "ram", "gic", "irq-storm"} {
		model := model
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			plan := shortE3()
			plan.FaultName = model
			plan.Name = "equiv-" + model
			if err := plan.Validate(); err != nil {
				t.Fatal(err)
			}
			serial, serialHashes := serialReference(t, plan, runs, seed, core.ModeDistribution)
			if len(serialHashes) != runs {
				t.Fatalf("serial reference produced %d hashes, want %d", len(serialHashes), runs)
			}
			for _, k := range []int{1, 3} {
				t.Run(fmt.Sprintf("shards-%d", k), func(t *testing.T) {
					spec := &Spec{Plan: plan, Runs: runs, MasterSeed: seed, Shards: k, Mode: core.ModeDistribution}
					merged, shards := runSharded(t, spec, t.TempDir())

					if merged.Total() != serial.Total() || merged.InjectionsTotal() != serial.InjectionsTotal() {
						t.Fatalf("merged total/injections = %d/%d, serial = %d/%d",
							merged.Total(), merged.InjectionsTotal(), serial.Total(), serial.InjectionsTotal())
					}
					for _, o := range core.AllOutcomes() {
						if merged.Count(o) != serial.Count(o) {
							t.Errorf("count(%v) = %d sharded, %d serial", o, merged.Count(o), serial.Count(o))
						}
					}
					seen := 0
					for _, sf := range shards {
						if got := sf.Manifest.FaultModel; got != model {
							t.Fatalf("%s: manifest fault_model = %q, want %q", sf.Path, got, model)
						}
						for idx, hash := range sf.TraceHashes {
							if hash != serialHashes[idx] {
								t.Fatalf("run %d: trace hash %#x sharded, %#x serial",
									idx, hash, serialHashes[idx])
							}
							seen++
						}
					}
					if seen != runs {
						t.Fatalf("shard artefacts cover %d runs, want %d", seen, runs)
					}
				})
			}
		})
	}
}
