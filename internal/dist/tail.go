package dist

import (
	"bytes"
	"io"
	"os"
)

// Tail is the supervisor's low-cost per-run progress probe: it follows
// a shard's JSONL artefact as the worker appends to it, counting run
// records and spotting the summary footer without parsing JSON — one
// stat plus a read of the appended bytes per poll. Line classification
// keys on the leading `{"type":"..."` prefix every writeLine emits
// (Type is the first field of each record struct), so a poll costs a
// prefix compare per new line.
//
// Gzip artefacts cannot be line-counted from a live prefix; for them
// the tail degrades to byte-level liveness (Progress.Countable=false):
// the stall watchdog still sees the file grow, and the exact record
// count arrives from ReadShard once the worker exits.
type Tail struct {
	path    string
	gz      bool
	off     int64  // bytes consumed so far
	partial []byte // carried bytes of an unterminated trailing line
	runs    int
	done    bool
}

// Progress is one poll's view of a shard artefact.
type Progress struct {
	// Bytes is the artefact's current size — the liveness signal even
	// when records cannot be counted.
	Bytes int64
	// Runs is the number of complete run records observed (0 when not
	// countable).
	Runs int
	// Complete reports an observed summary footer.
	Complete bool
	// Countable is false for compressed artefacts, where only Bytes is
	// meaningful.
	Countable bool
}

// NewTail starts following the artefact at path. The file does not have
// to exist yet; polls before creation report zero progress.
func NewTail(path string) *Tail {
	return &Tail{path: path, gz: IsGzipPath(path)}
}

// linePrefix* classify artefact lines without JSON decoding.
var (
	linePrefixRun     = []byte(`{"type":"run"`)
	linePrefixSummary = []byte(`{"type":"summary"`)
)

// Poll reads whatever the worker appended since the last call and
// returns the updated progress. A shrinking file (the worker truncated
// and restarted the shard) resets the count and re-reads from the top.
func (t *Tail) Poll() (Progress, error) {
	st, err := os.Stat(t.path)
	if os.IsNotExist(err) {
		t.reset()
		return Progress{Countable: !t.gz}, nil
	}
	if err != nil {
		return Progress{}, err
	}
	size := st.Size()
	if t.gz {
		return Progress{Bytes: size}, nil
	}
	if size < t.off {
		t.reset()
	}
	if size > t.off {
		if err := t.consume(size); err != nil {
			return Progress{}, err
		}
	}
	return Progress{Bytes: size, Runs: t.runs, Complete: t.done, Countable: true}, nil
}

func (t *Tail) reset() {
	t.off = 0
	t.partial = t.partial[:0]
	t.runs = 0
	t.done = false
}

// consume reads [off, size) and folds complete lines into the counts.
func (t *Tail) consume(size int64) error {
	f, err := os.Open(t.path)
	if err != nil {
		if os.IsNotExist(err) {
			t.reset()
			return nil
		}
		return err
	}
	defer f.Close()
	buf := make([]byte, size-t.off)
	n, err := f.ReadAt(buf, t.off)
	buf = buf[:n]
	if err != nil && err != io.EOF {
		return err
	}
	t.off += int64(n)
	data := buf
	if len(t.partial) > 0 {
		data = append(t.partial, buf...)
		t.partial = t.partial[:0]
	}
	for {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			t.partial = append(t.partial[:0], data...)
			return nil
		}
		line := data[:nl]
		data = data[nl+1:]
		switch {
		case bytes.HasPrefix(line, linePrefixRun):
			t.runs++
		case bytes.HasPrefix(line, linePrefixSummary):
			t.done = true
		}
	}
}
