package dist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// This file defines the self-describing index footer appended to every
// file-backed JSONL(.gz) artefact: a binary offset table that turns the
// artefact into a random-access dossier (see dossier.go) while staying
// invisible to sequential readers. The layout is documented in
// DESIGN.md ("Indexed run dossiers"); the essentials:
//
//	plain artefact                gzip artefact
//	--------------                -------------
//	manifest line                 member 0..M: the JSONL line stream
//	run lines ...                 member F: the footer block (deflated)
//	summary line                  member T: hand-crafted empty member
//	footer block                            whose EXTRA header field
//	24-byte trailer                         locates member F
//
// The footer block itself (identical content in both formats) starts
// with footerMagic — never a '{' — so a sequential line scanner that
// reaches it sees one non-JSON line and stops, exactly the way it
// already stops at a torn trailing line. The gzip trailer member is a
// valid RFC 1952 member with an empty payload, so sequential gzip
// decoding runs through it without error. Random access reads the
// fixed-size trailer from the end of the file, locates the footer in
// O(1) seeks, and verifies magic + CRC before trusting a byte of it;
// anything that fails verification degrades to a sequential scan.

// footerMagic opens the footer block. It must not start with '{' (so
// JSON line probes fail cleanly) and must not contain '\n' (so the
// whole magic lands at the start of one scanner token).
const footerMagic = "CFYDOSS1"

// trailerMagic closes the plain-format 24-byte trailer and the gzip
// trailer member's extra payload.
const trailerMagic = "CFYDEND1"

// footerVersion is the footer block's own format generation,
// independent of the JSONL SchemaVersion (the record shapes are
// unchanged by indexing). Readers refuse newer footers — and fall back
// to the sequential path, never to an error.
const footerVersion = 1

// plainTrailerSize is the fixed plain-format trailer:
// footerOff(8) + footerLen(8) + trailerMagic(8), little endian.
const plainTrailerSize = 24

// IndexEntry is one run record's row in the footer's offset table:
// where the record's line lives in the (uncompressed) line stream plus
// the fields a certifying reviewer queries without decoding the record
// — outcome, detection latency, trace hash, injection count.
type IndexEntry struct {
	// Index is the run's global campaign index.
	Index int
	// Offset is the byte offset of the record's line in the artefact's
	// uncompressed line stream (for plain files: the file offset).
	Offset int64
	// Length is the line's byte length including the trailing newline.
	Length int
	// Outcome is the classifier's verdict name.
	Outcome string
	// Injections is the number of injections performed in the run.
	Injections int
	// TraceHash is the run's reproducibility fingerprint.
	TraceHash uint64
	// DetectionNS is the detection latency in virtual nanoseconds;
	// -1 when nothing was detected.
	DetectionNS int64
}

// restart is one gzip random-access restart point: member starts at
// compressed file offset comp and decodes the line stream from
// uncompressed offset uncomp. Plain artefacts have none.
type restart struct {
	comp, uncomp int64
}

// shardIndex is the parsed footer: the offset table sorted by run
// index, the gzip restart points, and whether a summary line was
// written (the writer's completion marker, carried into the index so
// dossiers can answer Complete() without scanning).
type shardIndex struct {
	entries  []IndexEntry
	restarts []restart
	summary  bool
}

// indexBuilder accumulates index state inside JSONLWriter as records
// stream out. Appends happen in completion order; encodeFooter sorts.
type indexBuilder struct {
	entries  []IndexEntry
	restarts []restart
	summary  bool
}

// footerFlagSummary marks an artefact whose summary line was written.
const footerFlagSummary = 1

// encodeFooter serialises the index as the footer block:
//
//	footerMagic
//	uvarint version, uvarint flags
//	uvarint entryCount
//	outcome string table: uvarint count, count × (uvarint len, bytes)
//	entryCount × entry, sorted ascending by run index:
//	    uvarint indexDelta (from the previous entry; first is absolute)
//	    uvarint offset, uvarint length
//	    uvarint outcome (string-table ordinal), uvarint injections
//	    8 bytes trace hash (little endian)
//	    varint detectionNS (zig-zag)
//	restart table: uvarint count, count × (uvarint compDelta, uvarint
//	    uncompDelta) — first pair absolute
//	crc32 (IEEE, little endian) over everything above
func encodeFooter(ix *shardIndex) []byte {
	entries := append([]IndexEntry(nil), ix.entries...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Index < entries[j].Index })

	outcomes := make([]string, 0, 8)
	ordinal := make(map[string]int, 8)
	for _, e := range entries {
		if _, ok := ordinal[e.Outcome]; !ok {
			ordinal[e.Outcome] = len(outcomes)
			outcomes = append(outcomes, e.Outcome)
		}
	}

	buf := make([]byte, 0, 64+len(entries)*24)
	buf = append(buf, footerMagic...)
	buf = binary.AppendUvarint(buf, footerVersion)
	var flags uint64
	if ix.summary {
		flags |= footerFlagSummary
	}
	buf = binary.AppendUvarint(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	buf = binary.AppendUvarint(buf, uint64(len(outcomes)))
	for _, o := range outcomes {
		buf = binary.AppendUvarint(buf, uint64(len(o)))
		buf = append(buf, o...)
	}
	prev := 0
	for i, e := range entries {
		delta := e.Index
		if i > 0 {
			delta = e.Index - prev
		}
		prev = e.Index
		buf = binary.AppendUvarint(buf, uint64(delta))
		buf = binary.AppendUvarint(buf, uint64(e.Offset))
		buf = binary.AppendUvarint(buf, uint64(e.Length))
		buf = binary.AppendUvarint(buf, uint64(ordinal[e.Outcome]))
		buf = binary.AppendUvarint(buf, uint64(e.Injections))
		buf = binary.LittleEndian.AppendUint64(buf, e.TraceHash)
		buf = binary.AppendVarint(buf, e.DetectionNS)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ix.restarts)))
	var pc, pu int64
	for i, r := range ix.restarts {
		dc, du := r.comp, r.uncomp
		if i > 0 {
			dc, du = r.comp-pc, r.uncomp-pu
		}
		pc, pu = r.comp, r.uncomp
		buf = binary.AppendUvarint(buf, uint64(dc))
		buf = binary.AppendUvarint(buf, uint64(du))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// footerReader decodes uvarints with explicit bounds handling so a
// truncated or bit-flipped footer yields an error, never a panic.
type footerReader struct {
	data []byte
	pos  int
	err  error
}

func (r *footerReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *footerReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("dist: footer truncated at byte %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *footerReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("dist: footer truncated at byte %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *footerReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.fail("dist: footer truncated at byte %d (want %d more)", r.pos, n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// maxFooterEntries bounds how many table rows a parse will allocate
// for: a corrupted count must not translate into an OOM-sized make.
// The cap is generous (a shard of 100M runs) and cross-checked against
// the remaining footer bytes before anything is allocated.
const maxFooterEntries = 100_000_000

// parseFooter decodes and verifies one footer block (magic through
// CRC). It is the only parser the fuzz target needs to defeat: every
// return path is an error, never a panic, and a block that decodes but
// fails its CRC is rejected wholesale — a bit-flipped table must not
// misattribute records.
func parseFooter(data []byte) (*shardIndex, error) {
	if len(data) < len(footerMagic)+4 {
		return nil, fmt.Errorf("dist: footer block of %d bytes is too short", len(data))
	}
	if string(data[:len(footerMagic)]) != footerMagic {
		return nil, fmt.Errorf("dist: footer magic mismatch")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("dist: footer CRC mismatch")
	}
	r := &footerReader{data: body, pos: len(footerMagic)}
	if v := r.uvarint(); r.err == nil && v != footerVersion {
		return nil, fmt.Errorf("dist: footer version %d, this build reads %d", v, footerVersion)
	}
	flags := r.uvarint()
	entryCount := r.uvarint()
	outcomeCount := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if entryCount > maxFooterEntries || int(entryCount) > len(body) {
		return nil, fmt.Errorf("dist: footer declares %d entries for %d bytes", entryCount, len(body))
	}
	if outcomeCount > 64 {
		return nil, fmt.Errorf("dist: footer declares %d outcome names", outcomeCount)
	}
	outcomes := make([]string, 0, outcomeCount)
	for i := uint64(0); i < outcomeCount; i++ {
		n := r.uvarint()
		if n > 256 {
			r.fail("dist: footer outcome name of %d bytes", n)
		}
		outcomes = append(outcomes, string(r.bytes(int(n))))
	}
	ix := &shardIndex{summary: flags&footerFlagSummary != 0}
	if r.err == nil && entryCount > 0 {
		ix.entries = make([]IndexEntry, 0, entryCount)
	}
	prev := -1
	for i := uint64(0); i < entryCount && r.err == nil; i++ {
		delta := r.uvarint()
		e := IndexEntry{
			Offset: int64(r.uvarint()),
			Length: int(r.uvarint()),
		}
		o := r.uvarint()
		e.Injections = int(r.uvarint())
		hash := r.bytes(8)
		e.DetectionNS = r.varint()
		if r.err != nil {
			break
		}
		if i == 0 {
			e.Index = int(delta)
		} else {
			e.Index = prev + int(delta)
		}
		if e.Index < prev || e.Index < 0 {
			return nil, fmt.Errorf("dist: footer entry %d: non-increasing run index %d", i, e.Index)
		}
		if i > 0 && e.Index == prev {
			return nil, fmt.Errorf("dist: footer entry %d: duplicate run index %d", i, e.Index)
		}
		if e.Offset < 0 || e.Length <= 0 {
			return nil, fmt.Errorf("dist: footer entry %d: bad span [%d,+%d)", i, e.Offset, e.Length)
		}
		if o >= uint64(len(outcomes)) {
			return nil, fmt.Errorf("dist: footer entry %d: outcome ordinal %d of %d", i, o, len(outcomes))
		}
		e.Outcome = outcomes[o]
		e.TraceHash = binary.LittleEndian.Uint64(hash)
		prev = e.Index
		ix.entries = append(ix.entries, e)
	}
	restartCount := r.uvarint()
	if restartCount > maxFooterEntries || int(restartCount) > len(body) {
		return nil, fmt.Errorf("dist: footer declares %d restart points for %d bytes", restartCount, len(body))
	}
	var pc, pu int64
	for i := uint64(0); i < restartCount && r.err == nil; i++ {
		dc, du := int64(r.uvarint()), int64(r.uvarint())
		if i == 0 {
			pc, pu = dc, du
		} else {
			pc, pu = pc+dc, pu+du
		}
		ix.restarts = append(ix.restarts, restart{comp: pc, uncomp: pu})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("dist: footer holds %d trailing bytes", len(body)-r.pos)
	}
	return ix, nil
}

// encodePlainTrailer builds the fixed 24-byte trailer of a plain
// artefact: where the footer block starts and how long it is, closed
// by the trailer magic. The whole file is then
// lines ++ footer ++ trailer, which is what the reader cross-checks.
func encodePlainTrailer(footerOff, footerLen int64) []byte {
	buf := make([]byte, 0, plainTrailerSize)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(footerOff))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(footerLen))
	return append(buf, trailerMagic...)
}

// parsePlainTrailer decodes the last plainTrailerSize bytes of a plain
// artefact. ok is false when they are not a trailer (a pre-index
// artefact, or one whose tail was cut) — the caller falls back.
func parsePlainTrailer(tail []byte) (footerOff, footerLen int64, ok bool) {
	if len(tail) != plainTrailerSize || string(tail[16:]) != trailerMagic {
		return 0, 0, false
	}
	footerOff = int64(binary.LittleEndian.Uint64(tail[0:8]))
	footerLen = int64(binary.LittleEndian.Uint64(tail[8:16]))
	return footerOff, footerLen, footerOff >= 0 && footerLen > 0
}

// The gzip trailer member is hand-crafted so its size is a compile-time
// constant: a valid RFC 1952 member with an empty deflate payload whose
// EXTRA header field carries the footer member's location. Sequential
// gzip readers decode it to zero bytes and read on to EOF; the dossier
// opener reads the last gzipTrailerSize bytes and pattern-matches it.
//
//	offset  bytes
//	0       1f 8b 08 04 00 00 00 00 00 ff   header: FLG=FEXTRA, OS=unknown
//	10      1c 00                           XLEN = 28
//	12      'C' 'F' 18 00                   subfield id + LEN = 24
//	16      footerOff(8) footerLen(8) trailerMagic(8)
//	40      03 00                           empty deflate stream
//	42      00×4 00×4                       CRC32 and ISIZE of empty
const gzipTrailerSize = 50

// gzipExtraID is the two-byte EXTRA subfield identifier ("CF").
var gzipExtraID = [2]byte{'C', 'F'}

// encodeGzipTrailer builds the 50-byte trailer member locating the
// footer member at [footerOff, footerOff+footerLen) in the file.
func encodeGzipTrailer(footerOff, footerLen int64) []byte {
	buf := make([]byte, 0, gzipTrailerSize)
	buf = append(buf, 0x1f, 0x8b, 0x08, 0x04, 0, 0, 0, 0, 0, 0xff)
	buf = append(buf, 28, 0)                                 // XLEN
	buf = append(buf, gzipExtraID[0], gzipExtraID[1], 24, 0) // subfield header
	buf = binary.LittleEndian.AppendUint64(buf, uint64(footerOff))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(footerLen))
	buf = append(buf, trailerMagic...)
	buf = append(buf, 0x03, 0x00)              // empty final deflate block
	return append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // CRC32 + ISIZE of empty
}

// parseGzipTrailer decodes the last gzipTrailerSize bytes of a gzip
// artefact. ok is false for anything that is not byte-for-byte a
// trailer member — pre-index artefacts, torn files, foreign data.
func parseGzipTrailer(tail []byte) (footerOff, footerLen int64, ok bool) {
	if len(tail) != gzipTrailerSize {
		return 0, 0, false
	}
	want := encodeGzipTrailer(0, 0)
	for _, span := range [][2]int{{0, 16}, {40, gzipTrailerSize}} {
		for i := span[0]; i < span[1]; i++ {
			if tail[i] != want[i] {
				return 0, 0, false
			}
		}
	}
	if string(tail[32:40]) != trailerMagic {
		return 0, 0, false
	}
	footerOff = int64(binary.LittleEndian.Uint64(tail[16:24]))
	footerLen = int64(binary.LittleEndian.Uint64(tail[24:32]))
	return footerOff, footerLen, footerOff >= 0 && footerLen > 0
}
