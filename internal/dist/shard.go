// Package dist turns a single-process fault-injection campaign into a
// distributed one without giving up the repo's core property: bit-exact
// seed reproducibility. A campaign of N runs is split into K contiguous
// shards of the run-index space; every shard derives its per-run seeds
// from the same MasterSeed/SplitMix64 chain (core.Campaign.Offset), so
// the union of the shards' runs is identical — run for run, trace hash
// for trace hash — to the unsharded campaign. Each shard process streams
// one self-describing JSONL record per run as it classifies
// (JSONLWriter), and the merge layer folds the shard artefact files back
// into one core.CampaignResult after verifying their manifests agree.
// Completed shard files are recognised on rerun and skipped, which makes
// cluster fan-out restartable: kill a campaign halfway, rerun the same
// commands, and only the unfinished shards execute.
package dist

import (
	"fmt"

	"github.com/dessertlab/certify/internal/core"
)

// Spec describes a complete sharded campaign: the single-process
// campaign it must reproduce, and how many shards split it. All shard
// processes of one campaign must be constructed from an identical Spec —
// the manifest verification in Merge enforces this after the fact.
type Spec struct {
	// Plan is the test plan every shard executes.
	Plan *core.TestPlan
	// Runs is the total campaign size across all shards.
	Runs int
	// MasterSeed seeds the shared SplitMix64 per-run seed chain.
	MasterSeed uint64
	// Shards is the number of contiguous index windows (K ≥ 1).
	Shards int
	// Mode selects per-run evidence retention inside each shard process.
	Mode core.CampaignMode
	// Stop, when non-nil, runs the campaign adaptively: Runs becomes the
	// max-N guard and the policy may certify a shorter prefix. Part of
	// campaign identity (like the fault model): it travels in every
	// shard manifest and the merge refuses artefacts whose stop identity
	// differs.
	Stop *core.StopSpec
	// Stratify rotates runs over the register-class strata
	// (core.StratifyPlan). Campaign identity as well.
	Stratify bool
}

// Validate checks the spec describes a runnable sharded campaign.
func (s *Spec) Validate() error {
	if s.Plan == nil {
		return fmt.Errorf("dist: spec has no plan")
	}
	if err := s.Plan.Validate(); err != nil {
		return err
	}
	if s.Runs <= 0 {
		return fmt.Errorf("dist: spec needs a positive run count, got %d", s.Runs)
	}
	if s.Shards <= 0 {
		return fmt.Errorf("dist: spec needs at least one shard, got %d", s.Shards)
	}
	if s.Shards > s.Runs {
		return fmt.Errorf("dist: %d shards for %d runs — at most one shard per run", s.Shards, s.Runs)
	}
	if err := s.Stop.Validate(); err != nil {
		return err
	}
	if s.Stratify {
		if _, err := core.StratifyPlan(s.Plan); err != nil {
			return err
		}
	}
	return nil
}

// Shard is one contiguous window [Start, End) of the campaign's
// run-index space, assigned to one process.
type Shard struct {
	Spec  *Spec
	Index int
	Start int // first global run index, inclusive
	End   int // last global run index, exclusive
}

// Runs returns the number of runs in the shard.
func (sh Shard) Runs() int { return sh.End - sh.Start }

// Shard returns the planner's window for shard index i. The split is
// deterministic and balanced: with N runs and K shards, the first N%K
// shards get ⌈N/K⌉ runs and the rest ⌊N/K⌋, all contiguous, covering
// [0, N) exactly. Every process planning the same Spec computes the
// same windows — no coordination needed.
func (s *Spec) Shard(i int) (Shard, error) {
	if err := s.Validate(); err != nil {
		return Shard{}, err
	}
	if i < 0 || i >= s.Shards {
		return Shard{}, fmt.Errorf("dist: shard index %d out of range [0, %d)", i, s.Shards)
	}
	base, rem := s.Runs/s.Shards, s.Runs%s.Shards
	start := i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return Shard{Spec: s, Index: i, Start: start, End: start + size}, nil
}

// AllShards returns every shard window in index order.
func (s *Spec) AllShards() ([]Shard, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := make([]Shard, s.Shards)
	for i := range out {
		sh, err := s.Shard(i)
		if err != nil {
			return nil, err
		}
		out[i] = sh
	}
	return out, nil
}

// Campaign builds the core.Campaign that executes exactly this shard's
// window of the master seed chain. onRun is the streaming artefact hook
// (typically JSONLWriter.OnRun); it may be nil. workers ≤ 0 uses
// GOMAXPROCS inside the shard process.
// The campaign carries the spec's stratification but NOT its stop
// policy: the policy implementation lives in internal/analytics, which
// dist's executor wires in explicitly (ExecuteShardPool) for the shard
// that owns index 0 — only that shard can observe the prefix the
// decision is a function of.
func (sh Shard) Campaign(workers int, onRun func(int, *core.RunResult)) *core.Campaign {
	return &core.Campaign{
		Plan:       sh.Spec.Plan,
		Runs:       sh.Runs(),
		MasterSeed: sh.Spec.MasterSeed,
		Workers:    workers,
		Mode:       sh.Spec.Mode,
		Offset:     sh.Start,
		OnRun:      onRun,
		Stratify:   sh.Spec.Stratify,
	}
}

// MatchesShard reports whether the manifest describes exactly this
// shard of this campaign — the supervisor's completion check.
func (m Manifest) MatchesShard(sh Shard) bool { return m.matches(sh.Manifest()) }

// SameCampaignAs reports whether the manifest belongs to the same
// campaign as the shard's spec (any shard index) — the supervisor's
// foreign-artefact check.
func (m Manifest) SameCampaignAs(sh Shard) bool { return m.sameCampaign(sh.Manifest()) }

// Manifest returns the self-describing header every artefact file of
// this shard must carry.
func (sh Shard) Manifest() Manifest {
	return Manifest{
		Type:       recordManifest,
		Schema:     SchemaVersion,
		Plan:       sh.Spec.Plan.Name,
		PlanHash:   fmt.Sprintf("%#x", sh.Spec.Plan.Hash()),
		MasterSeed: fmt.Sprintf("%#x", sh.Spec.MasterSeed),
		Runs:       sh.Spec.Runs,
		Shards:     sh.Spec.Shards,
		Shard:      sh.Index,
		Start:      sh.Start,
		End:        sh.End,
		Mode:       sh.Spec.Mode.String(),
		FaultModel: manifestFaultModel(sh.Spec.Plan),
		Stop:       sh.Spec.Stop.Clone(),
		Stratify:   sh.Spec.Stratify,
	}
}

// manifestFaultModel renders the plan's fault-model identity for the
// manifest. The default register model is written as "" (omitted by
// omitempty) so register-model artefacts stay byte-identical to files
// written before the fault-model registry existed.
func manifestFaultModel(p *core.TestPlan) string {
	if name := p.EffectiveFaultName(); name != core.DefaultFaultModelName {
		return name
	}
	return ""
}
