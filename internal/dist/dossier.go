package dist

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Dossier is the random-access view of one shard artefact: run K's
// record, outcome queries and range reads without a sequential scan.
// The fast path reads the index footer CreateJSONL appends (O(1) seeks
// to locate it, one bounded read per record after that); artefacts
// written before the index existed, or whose footer is missing, torn
// or fails verification, degrade transparently to one sequential
// decode whose results are cached — same answers, archive-scan cost.
//
// A Dossier is not goroutine-safe: it keeps per-handle read state (the
// fallback cache, the read counter). Open one per goroutine.
type Dossier struct {
	path string
	f    *os.File
	size int64
	gz   bool
	man  Manifest

	// entries is the offset table sorted by run index — footer-decoded
	// on the indexed path, rebuilt by the sequential scan on fallback.
	entries []IndexEntry
	// footerRestarts is the gzip restart table (indexed path only).
	footerRestarts []restart
	// indexed is true while record reads go through footer offsets.
	indexed bool
	summary bool
	// raw caches record lines (without trailing newline) by run index
	// once a *gzip* dossier has degraded to the sequential path — gzip
	// cannot be re-read at an offset without the restart table. Plain
	// fallbacks stay lean: the scan only records each line's span and
	// record reads are positioned re-reads, so counts-only queries on
	// an archive-scale pre-index artefact never hold its records in
	// memory.
	raw map[int][]byte

	reads int64 // ReadAt calls served, for access-cost assertions
}

// OpenDossier opens the artefact at path for random access. The file
// must carry a readable manifest line (anything else is not a shard
// artefact and errors, exactly as ReadShard would); everything about
// the index footer is best-effort — Indexed reports which path serves.
func OpenDossier(path string) (*Dossier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	d := &Dossier{path: path, f: f, size: st.Size()}
	var magic [2]byte
	if n, _ := d.ReadAt(magic[:], 0); n == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		d.gz = true
	}
	if err := d.readManifest(); err != nil {
		f.Close()
		return nil, err
	}
	if ix, err := d.loadFooter(); err == nil {
		if verr := d.adoptIndex(ix); verr == nil {
			metDossierIndexedOpens.Inc()
			return d, nil
		}
	}
	if err := d.degrade(); err != nil {
		f.Close()
		return nil, err
	}
	metDossierFallbackScans.Inc()
	return d, nil
}

// ReadAt serves every file access of the dossier, counting calls so
// tests can assert the indexed path's O(1) cost. Implements io.ReaderAt.
func (d *Dossier) ReadAt(p []byte, off int64) (int, error) {
	d.reads++
	return d.f.ReadAt(p, off)
}

// Reads returns how many file reads the dossier has performed.
func (d *Dossier) Reads() int64 { return d.reads }

// Close releases the underlying file.
func (d *Dossier) Close() error { return d.f.Close() }

// Path returns the artefact path the dossier serves.
func (d *Dossier) Path() string { return d.path }

// Manifest returns the artefact's identity header.
func (d *Dossier) Manifest() Manifest { return d.man }

// Indexed reports whether record reads use the index footer (true) or
// the cached sequential decode (false).
func (d *Dossier) Indexed() bool { return d.indexed }

// Complete reports whether the artefact holds its summary marker and
// one record for every run of its window — the same completion
// predicate ReadShard applies. Shards run under a stop policy may
// finish short of their window (the policy certified a shorter
// prefix): any non-empty record prefix with a summary is a finished
// shard, and the merge's policy replay validates where it ended.
func (d *Dossier) Complete() bool {
	if !d.summary {
		return false
	}
	if d.man.Stop != nil {
		return len(d.entries) > 0 && len(d.entries) <= d.man.End-d.man.Start
	}
	return len(d.entries) == d.man.End-d.man.Start
}

// NumRuns returns how many run records the dossier holds.
func (d *Dossier) NumRuns() int { return len(d.entries) }

// Window returns the artefact's global run-index window [start, end).
func (d *Dossier) Window() (start, end int) { return d.man.Start, d.man.End }

// Entries returns the offset table sorted by run index. The slice is
// the dossier's own — treat it as read-only.
func (d *Dossier) Entries() []IndexEntry { return d.entries }

// OutcomeCounts tallies records per outcome name straight from the
// index — no record decoding.
func (d *Dossier) OutcomeCounts() map[string]int {
	out := make(map[string]int, 8)
	for _, e := range d.entries {
		out[e.Outcome]++
	}
	return out
}

// InjectionsTotal sums performed injections across the indexed runs.
func (d *Dossier) InjectionsTotal() int {
	n := 0
	for _, e := range d.entries {
		n += e.Injections
	}
	return n
}

// Entry returns run k's index row.
func (d *Dossier) Entry(k int) (IndexEntry, bool) {
	i := sort.Search(len(d.entries), func(i int) bool { return d.entries[i].Index >= k })
	if i < len(d.entries) && d.entries[i].Index == k {
		return d.entries[i], true
	}
	return IndexEntry{}, false
}

// RawRun returns run k's record line exactly as written (without the
// trailing newline) — the byte-identity the differential equivalence
// suite compares against the sequential decode. An indexed read whose
// bytes do not decode to run k degrades to the sequential path and
// retries there instead of misattributing a record.
func (d *Dossier) RawRun(k int) ([]byte, error) {
	e, ok := d.Entry(k)
	if !ok && !d.indexed {
		// A degraded dossier may be reading a shard that is still being
		// written (the serve live-tail path): records appended after the
		// sequential scan cached its entries are invisible until the
		// cache is invalidated. A size change is the growth signal.
		if err := d.refreshScan(); err != nil {
			return nil, fmt.Errorf("dist: %s: rescan after growth: %w", d.path, err)
		}
		e, ok = d.Entry(k)
	}
	if !ok {
		return nil, fmt.Errorf("dist: %s holds no record for run %d", d.path, k)
	}
	if !d.indexed {
		if d.gz {
			return d.raw[k], nil
		}
		// Plain fallback: re-read the span the sequential scan recorded.
		line, err := d.readPlainSpanLenient(e)
		if err != nil {
			return nil, fmt.Errorf("dist: %s run %d: %w", d.path, k, err)
		}
		if !verifyRunLine(line, k) {
			return nil, fmt.Errorf("dist: %s changed underneath the dossier: run %d's bytes no longer decode", d.path, k)
		}
		return line, nil
	}
	line, err := d.readSpan(e)
	if err == nil && verifyRunLine(line, k) {
		metDossierIndexedReads.Inc()
		return line, nil
	}
	// The footer lied (bad offset, mid-write corruption): abandon it.
	metDossierFallbackScans.Inc()
	if derr := d.degrade(); derr != nil {
		return nil, fmt.Errorf("dist: %s: indexed read of run %d failed (%v) and sequential fallback too: %w", d.path, k, err, derr)
	}
	line, ok = d.raw[k]
	if !ok {
		return nil, fmt.Errorf("dist: %s holds no record for run %d", d.path, k)
	}
	return line, nil
}

// verifyRunLine checks that a line read through the index really is
// run k's record before anyone trusts it.
func verifyRunLine(line []byte, k int) bool {
	var probe struct {
		Type  string `json:"type"`
		Index int    `json:"index"`
	}
	return json.Unmarshal(line, &probe) == nil &&
		probe.Type == recordRun && probe.Index == k
}

// Run returns run k's decoded record.
func (d *Dossier) Run(k int) (*RunRecord, error) {
	line, err := d.RawRun(k)
	if err != nil {
		return nil, err
	}
	var rec RunRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, fmt.Errorf("dist: %s run %d: %w", d.path, k, err)
	}
	return &rec, nil
}

// Runs returns the decoded records with global indices in [from, to),
// in index order. Indices outside the dossier's holdings are skipped —
// a range read over a half-window artefact returns what is there.
func (d *Dossier) Runs(from, to int) ([]*RunRecord, error) {
	var out []*RunRecord
	for _, e := range d.entries {
		if e.Index < from || e.Index >= to {
			continue
		}
		rec, err := d.Run(e.Index)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// ByOutcome returns the decoded records classified with the given
// outcome name, in index order.
func (d *Dossier) ByOutcome(outcome string) ([]*RunRecord, error) {
	var out []*RunRecord
	for _, e := range d.entries {
		if e.Outcome != outcome {
			continue
		}
		rec, err := d.Run(e.Index)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// readSpan reads the line at entry e through the index: one positioned
// read for plain artefacts; for gzip, a seek to the nearest restart
// offset at or before the line and a bounded decode from there. Cost
// is independent of the artefact's total size.
func (d *Dossier) readSpan(e IndexEntry) ([]byte, error) {
	if e.Length <= 0 || e.Length > maxLineBytes {
		return nil, fmt.Errorf("dist: index entry spans %d bytes", e.Length)
	}
	if !d.gz {
		if e.Offset+int64(e.Length) > d.size {
			return nil, fmt.Errorf("dist: index entry [%d,+%d) beyond file size %d", e.Offset, e.Length, d.size)
		}
		buf := make([]byte, e.Length)
		if _, err := io.ReadFull(io.NewSectionReader(d, e.Offset, int64(e.Length)), buf); err != nil {
			return nil, err
		}
		return bytes.TrimSuffix(buf, []byte("\n")), nil
	}
	ix, err := d.restartFor(e.Offset)
	if err != nil {
		return nil, err
	}
	zr, err := gzip.NewReader(bufio.NewReaderSize(io.NewSectionReader(d, ix.comp, d.size-ix.comp), 32<<10))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	zr.Multistream(false) // the whole line lives inside this member
	if _, err := io.CopyN(io.Discard, zr, e.Offset-ix.uncomp); err != nil {
		return nil, err
	}
	buf := make([]byte, e.Length)
	if _, err := io.ReadFull(zr, buf); err != nil {
		return nil, err
	}
	return bytes.TrimSuffix(buf, []byte("\n")), nil
}

// readPlainSpanLenient reads a plain-file span recorded by the
// fallback scan, tolerating a final record line that was never
// newline-terminated (a torn tail whose JSON still parsed): the span
// may overshoot the file end by the phantom newline, so a short read
// at EOF is fine.
func (d *Dossier) readPlainSpanLenient(e IndexEntry) ([]byte, error) {
	if e.Length <= 0 || e.Length > maxLineBytes {
		return nil, fmt.Errorf("dist: index entry spans %d bytes", e.Length)
	}
	buf := make([]byte, e.Length)
	n, err := d.ReadAt(buf, e.Offset)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return bytes.TrimSuffix(buf[:n], []byte("\n")), nil
}

// restartFor returns the latest gzip restart point at or before
// uncompressed offset off.
func (d *Dossier) restartFor(off int64) (restart, error) {
	rs := d.footerRestarts
	i := sort.Search(len(rs), func(i int) bool { return rs[i].uncomp > off })
	if i == 0 {
		return restart{}, fmt.Errorf("dist: no restart point covers offset %d", off)
	}
	return rs[i-1], nil
}

// readManifest decodes the artefact's first line, with the same
// validation ReadShard applies.
func (d *Dossier) readManifest() error {
	r, _, err := openLineReader(io.NewSectionReader(d, 0, d.size), d.gz, d.path)
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4<<10), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("dist: %s: %w", d.path, err)
		}
		return fmt.Errorf("dist: %s is empty (no manifest line)", d.path)
	}
	var m Manifest
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil || m.Type != recordManifest {
		return fmt.Errorf("dist: %s does not start with a manifest line", d.path)
	}
	if err := validateManifest(d.path, m); err != nil {
		return err
	}
	d.man = m
	return nil
}

// loadFooter locates, reads and parses the index footer. Every failure
// is an error the caller answers with the sequential fallback.
func (d *Dossier) loadFooter() (*shardIndex, error) {
	if d.gz {
		return d.loadGzipFooter()
	}
	if d.size < plainTrailerSize+int64(len(footerMagic))+4 {
		return nil, fmt.Errorf("dist: %s is too small for a footer", d.path)
	}
	tail := make([]byte, plainTrailerSize)
	if _, err := io.ReadFull(io.NewSectionReader(d, d.size-plainTrailerSize, plainTrailerSize), tail); err != nil {
		return nil, err
	}
	footOff, footLen, ok := parsePlainTrailer(tail)
	if !ok {
		return nil, fmt.Errorf("dist: %s carries no index trailer", d.path)
	}
	if footOff+footLen+plainTrailerSize != d.size {
		return nil, fmt.Errorf("dist: %s trailer places the footer at [%d,+%d), file is %d bytes", d.path, footOff, footLen, d.size)
	}
	block := make([]byte, footLen)
	if _, err := io.ReadFull(io.NewSectionReader(d, footOff, footLen), block); err != nil {
		return nil, err
	}
	return parseFooter(block)
}

// maxFooterMemberBytes bounds the compressed footer member a reader
// will buffer — corrupt trailer fields must not allocate the file size.
const maxFooterMemberBytes = 1 << 30

func (d *Dossier) loadGzipFooter() (*shardIndex, error) {
	if d.size < gzipTrailerSize {
		return nil, fmt.Errorf("dist: %s is too small for a trailer member", d.path)
	}
	tail := make([]byte, gzipTrailerSize)
	if _, err := io.ReadFull(io.NewSectionReader(d, d.size-gzipTrailerSize, gzipTrailerSize), tail); err != nil {
		return nil, err
	}
	footOff, footLen, ok := parseGzipTrailer(tail)
	if !ok {
		return nil, fmt.Errorf("dist: %s carries no index trailer member", d.path)
	}
	if footLen > maxFooterMemberBytes || footOff+footLen+gzipTrailerSize != d.size {
		return nil, fmt.Errorf("dist: %s trailer places the footer member at [%d,+%d), file is %d bytes", d.path, footOff, footLen, d.size)
	}
	zr, err := gzip.NewReader(io.NewSectionReader(d, footOff, footLen))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	zr.Multistream(false)
	block, err := io.ReadAll(io.LimitReader(zr, maxFooterMemberBytes))
	if err != nil {
		return nil, err
	}
	return parseFooter(block)
}

// adoptIndex installs a parsed footer after validating it against the
// manifest: indices inside the window, unique (parseFooter enforces
// order), spans inside the file for plain artefacts, restart points
// present for gzip ones.
func (d *Dossier) adoptIndex(ix *shardIndex) error {
	dataEnd := d.size
	if !d.gz {
		// footer + trailer verified to end the file in loadFooter
		dataEnd = d.size - plainTrailerSize
	}
	for _, e := range ix.entries {
		if e.Index < d.man.Start || e.Index >= d.man.End {
			return fmt.Errorf("dist: footer entry %d outside window [%d,%d)", e.Index, d.man.Start, d.man.End)
		}
		if !d.gz && e.Offset+int64(e.Length) > dataEnd {
			return fmt.Errorf("dist: footer entry %d spans beyond the line stream", e.Index)
		}
	}
	if d.gz {
		if len(ix.restarts) == 0 || ix.restarts[0].comp != 0 || ix.restarts[0].uncomp != 0 {
			return fmt.Errorf("dist: gzip footer lacks a leading restart point")
		}
		for i := 1; i < len(ix.restarts); i++ {
			if ix.restarts[i].comp <= ix.restarts[i-1].comp || ix.restarts[i].uncomp <= ix.restarts[i-1].uncomp {
				return fmt.Errorf("dist: gzip footer restart points not increasing")
			}
			if ix.restarts[i].comp >= d.size {
				return fmt.Errorf("dist: gzip footer restart point beyond the file")
			}
		}
	}
	d.entries = ix.entries
	d.footerRestarts = ix.restarts
	d.summary = ix.summary
	d.indexed = true
	return nil
}

// refreshScan re-checks a degraded dossier against its file: if the
// artefact grew since the sequential scan cached its entries (a shard
// still streaming), the stale cache is dropped and the scan runs again
// over the longer file. A stable size keeps the cache — the common case
// for archived artefacts, where the stat is the only cost.
func (d *Dossier) refreshScan() error {
	st, err := d.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == d.size {
		return nil
	}
	d.size = st.Size()
	metDossierFallbackScans.Inc()
	return d.degrade()
}

// degrade abandons the indexed path and rebuilds the entry table from
// one tolerant sequential decode — the behaviour for pre-index
// artefacts, torn footers, and any indexed read that failed
// verification. Plain files keep only the spans (records are re-read
// positioned on demand); gzip files additionally cache the raw lines,
// since a gzip stream cannot be re-entered without restart points.
// Torn tails (crashed writers) are tolerated exactly as ReadShard
// tolerates them; only a file whose records are structurally invalid
// errors.
func (d *Dossier) degrade() error {
	d.indexed = false
	d.entries = nil
	d.footerRestarts = nil
	d.summary = false
	d.raw = nil
	if d.gz {
		d.raw = make(map[int][]byte)
	}

	r, compressed, err := openLineReader(io.NewSectionReader(d, 0, d.size), d.gz, d.path)
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	seen := make(map[int]bool)
	var off int64
	line := 0
	for sc.Scan() {
		line++
		tok := sc.Bytes()
		start := off
		off += int64(len(tok)) + 1
		var probe struct {
			Type  string `json:"type"`
			Index int    `json:"index"`
		}
		if err := json.Unmarshal(tok, &probe); err != nil {
			break // footer block or torn trailing line: line data ends here
		}
		switch probe.Type {
		case recordManifest:
			// the header; already decoded by readManifest
		case recordRun:
			if probe.Index < d.man.Start || probe.Index >= d.man.End {
				return fmt.Errorf("dist: %s line %d: run index %d outside shard window [%d,%d)",
					d.path, line, probe.Index, d.man.Start, d.man.End)
			}
			if seen[probe.Index] {
				return fmt.Errorf("dist: %s line %d: duplicate run index %d", d.path, line, probe.Index)
			}
			seen[probe.Index] = true
			var rec RunRecord
			if err := json.Unmarshal(tok, &rec); err != nil {
				return fmt.Errorf("dist: %s line %d: %w", d.path, line, err)
			}
			hash, err := parseHex(rec.TraceHash)
			if err != nil {
				return fmt.Errorf("dist: %s line %d: bad trace hash %q", d.path, line, rec.TraceHash)
			}
			if d.gz {
				d.raw[probe.Index] = append([]byte(nil), tok...)
			}
			d.entries = append(d.entries, IndexEntry{
				Index:       rec.Index,
				Offset:      start,
				Length:      len(tok) + 1,
				Outcome:     rec.Outcome,
				Injections:  rec.Injections,
				TraceHash:   hash,
				DetectionNS: rec.DetectionNS,
			})
		case recordSummary:
			d.summary = true
		default:
			return fmt.Errorf("dist: %s line %d: unknown record type %q", d.path, line, probe.Type)
		}
	}
	if err := sc.Err(); err != nil && !(compressed && tornGzip(err)) {
		return fmt.Errorf("dist: %s: %w", d.path, err)
	}
	sort.Slice(d.entries, func(i, j int) bool { return d.entries[i].Index < d.entries[j].Index })
	return nil
}

// openLineReader wraps r for line scanning, decompressing when the
// content is gzip — the ReaderAt-based twin of openShardReader.
func openLineReader(r io.Reader, isGzip bool, path string) (io.Reader, bool, error) {
	if !isGzip {
		return r, false, nil
	}
	zr, err := gzip.NewReader(bufio.NewReaderSize(r, 64<<10))
	if err != nil {
		return nil, false, fmt.Errorf("dist: %s: bad gzip header (%v): %w", path, err, ErrTorn)
	}
	return zr, true, nil
}

// validateManifest applies the manifest sanity checks both read paths
// share — ReadShard's sequential decode and the dossier opener.
func validateManifest(path string, m Manifest) error {
	if m.Schema > SchemaVersion {
		return fmt.Errorf("dist: %s uses schema %d, this build reads up to %d", path, m.Schema, SchemaVersion)
	}
	if m.Runs <= 0 || m.Shards <= 0 || m.Shard < 0 || m.Shard >= m.Shards {
		return fmt.Errorf("dist: %s manifest declares shard %d of %d over %d runs — inconsistent", path, m.Shard, m.Shards, m.Runs)
	}
	if m.Start < 0 || m.End < m.Start || m.End > m.Runs {
		return fmt.Errorf("dist: %s manifest window [%d,%d) is invalid for %d runs", path, m.Start, m.End, m.Runs)
	}
	return nil
}
