package dist

import (
	"context"
	"errors"
	"fmt"
	"os"

	"github.com/dessertlab/certify/internal/analytics"
	"github.com/dessertlab/certify/internal/core"
)

// ExecuteShard runs one shard of the campaign, streaming its evidence
// to the JSONL artefact at outPath. It is idempotent per path: when the
// file already holds this exact shard, completed, the run is skipped
// and the stored aggregate is returned (skipped=true) — rerunning a
// half-finished fan-out only executes the shards that did not finish.
// A readable file that belongs to a *different* campaign is never
// overwritten; that is an operator mistake, reported as an error.
func ExecuteShard(ctx context.Context, spec *Spec, index, workers int, outPath string) (res *core.CampaignResult, skipped bool, err error) {
	return ExecuteShardPool(ctx, spec, index, workers, outPath, nil)
}

// ExecuteShardPool is ExecuteShard with an optional shared warm-machine
// pool: shards executing in the same process (the fan-out supervisor's
// in-process launcher, tests, embeddings) hand each other their booted
// machines instead of each shard's workers warming up their own. pool
// may be nil; reuse never changes results — the warm pool's differential
// determinism suite pins warm == cold per run.
func ExecuteShardPool(ctx context.Context, spec *Spec, index, workers int, outPath string, pool *core.MachinePool) (res *core.CampaignResult, skipped bool, err error) {
	sh, err := spec.Shard(index)
	if err != nil {
		return nil, false, err
	}
	if outPath == "" {
		return nil, false, fmt.Errorf("dist: shard %d needs an artefact path", index)
	}
	want := sh.Manifest()

	if st, statErr := os.Stat(outPath); statErr == nil && st.Size() > 0 {
		prev, readErr := ReadShard(outPath)
		switch {
		case errors.Is(readErr, ErrTorn):
			// Cut off before it could name a campaign: a crash remnant
			// (e.g. a gzip artefact killed mid-header), never a finished
			// artefact. Rerun over it.
			prev = nil
		case readErr != nil:
			return nil, false, fmt.Errorf("dist: %s exists but is unreadable (%w) — delete it to rerun the shard", outPath, readErr)
		}
		if prev != nil {
			if !prev.Manifest.matches(want) {
				return nil, false, fmt.Errorf("dist: %s holds a different shard (%s) — refusing to overwrite: %w",
					outPath, prev.Manifest.diff(want), ErrCampaignMismatch)
			}
			if prev.Complete {
				return prev.Result, true, nil
			}
		}
		// Same shard, crashed before its summary (or a torn remnant):
		// fall through and rerun.
	}

	w, err := CreateJSONL(outPath)
	if err != nil {
		return nil, false, err
	}
	defer w.Close()
	if err := w.WriteManifest(want); err != nil {
		return nil, false, err
	}

	// A failed artefact write (disk full, ...) makes the whole shard
	// unusable — cancel the campaign instead of simulating the remaining
	// runs for a file that can never become complete.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	c := sh.Campaign(workers, func(index int, r *core.RunResult) {
		w.OnRun(index, r)
		if w.Err() != nil {
			cancel()
		}
	})
	c.Pool = pool
	// Only the shard that owns index 0 runs the stop policy live: the
	// decision is a function of the outcome prefix from index 0, which
	// no other shard can observe. The other shards run their full
	// window; Merge replays the policy over the union and truncates to
	// the certified prefix.
	if spec.Stop != nil && sh.Start == 0 {
		policy, perr := analytics.NewStopPolicy(spec.Stop)
		if perr != nil {
			return nil, false, perr
		}
		c.Stop = policy
	}
	res, err = c.Execute(ctx)
	if werr := w.Err(); werr != nil {
		return nil, false, fmt.Errorf("dist: shard %d artefact write to %s: %w", index, outPath, werr)
	}
	if err != nil {
		return nil, false, err
	}
	wantRuns := sh.Runs()
	if res != nil && res.Stop != nil && res.Stop.Fired {
		wantRuns = res.Stop.DecidedAt - sh.Start
	}
	if res.Total() != wantRuns {
		// The file is left without a summary so the next invocation reruns
		// it. A cancellation (server job abort, supervisor shutdown) is
		// reported as such — errors.Is(err, context.Canceled) holds and the
		// artefact is a resumable torn-tolerated remnant, exactly like a
		// killed worker's.
		if cerr := ctx.Err(); cerr != nil {
			return res, false, fmt.Errorf("dist: shard %d cancelled after %d of %d runs — artefact left resumable at %s: %w",
				index, res.Total(), wantRuns, outPath, cerr)
		}
		return res, false, fmt.Errorf("dist: shard %d completed %d of %d runs — artefact left incomplete for rerun",
			index, res.Total(), wantRuns)
	}
	if err := w.WriteSummary(res); err != nil {
		return nil, false, err
	}
	if err := w.Close(); err != nil {
		return nil, false, err
	}
	return res, false, nil
}
