package dist

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/dessertlab/certify/internal/core"
)

// TestGzipShardRoundTrip: a .jsonl.gz shard executes, parses and merges
// exactly like its plain twin — same aggregate, same per-run hashes —
// while actually being gzip on disk.
func TestGzipShardRoundTrip(t *testing.T) {
	spec := &Spec{Plan: shortE3(), Runs: 6, MasterSeed: 11, Shards: 2, Mode: core.ModeDistribution}
	dir := t.TempDir()

	plainPaths := make([]string, spec.Shards)
	gzPaths := make([]string, spec.Shards)
	for i := 0; i < spec.Shards; i++ {
		plainPaths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i))
		gzPaths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl.gz", i))
		for _, p := range []string{plainPaths[i], gzPaths[i]} {
			if _, skipped, err := ExecuteShard(context.Background(), spec, i, 0, p); err != nil || skipped {
				t.Fatalf("%s: skipped=%v err=%v", p, skipped, err)
			}
		}
		// The compressed file must really be gzip.
		f, err := os.Open(gzPaths[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gzip.NewReader(f); err != nil {
			t.Fatalf("%s is not gzip: %v", gzPaths[i], err)
		}
		f.Close()
	}

	plain, plainShards, err := Merge(plainPaths)
	if err != nil {
		t.Fatal(err)
	}
	packed, gzShards, err := Merge(gzPaths)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Total() != packed.Total() || plain.InjectionsTotal() != packed.InjectionsTotal() {
		t.Fatalf("gzip merge diverged: %d/%d vs %d/%d",
			packed.Total(), packed.InjectionsTotal(), plain.Total(), plain.InjectionsTotal())
	}
	for _, o := range core.AllOutcomes() {
		if plain.Count(o) != packed.Count(o) {
			t.Fatalf("count(%v): %d gzip, %d plain", o, packed.Count(o), plain.Count(o))
		}
	}
	for i := range plainShards {
		for idx, h := range plainShards[i].TraceHashes {
			if gzShards[i].TraceHashes[idx] != h {
				t.Fatalf("run %d: trace hash %#x gzip, %#x plain", idx, gzShards[i].TraceHashes[idx], h)
			}
		}
	}
}

// TestGzipResumeSkipsCompleted: resume semantics carry over unchanged.
func TestGzipResumeSkipsCompleted(t *testing.T) {
	spec := &Spec{Plan: shortE3(), Runs: 4, MasterSeed: 9, Shards: 2, Mode: core.ModeDistribution}
	path := filepath.Join(t.TempDir(), "shard-0.jsonl.gz")
	first, skipped, err := ExecuteShard(context.Background(), spec, 0, 0, path)
	if err != nil || skipped {
		t.Fatalf("first: skipped=%v err=%v", skipped, err)
	}
	again, skipped, err := ExecuteShard(context.Background(), spec, 0, 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if !skipped || again.Total() != first.Total() {
		t.Fatalf("gzip resume: skipped=%v total=%d want %d", skipped, again.Total(), first.Total())
	}
}

// TestGzipTornRemnantIsRerun: what a SIGKILLed worker leaves behind —
// a gzip stream cut at an arbitrary byte — must parse as an incomplete
// shard (records before the cut intact) and be rerun, not refused.
func TestGzipTornRemnantIsRerun(t *testing.T) {
	spec := &Spec{Plan: shortE3(), Runs: 4, MasterSeed: 13, Shards: 2, Mode: core.ModeDistribution}
	path := filepath.Join(t.TempDir(), "shard-0.jsonl.gz")
	if _, _, err := ExecuteShard(context.Background(), spec, 0, 0, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cut off the last 40% of the compressed bytes: summary (and likely
	// the trailing records) gone.
	if err := os.WriteFile(path, data[:len(data)*6/10], 0o644); err != nil {
		t.Fatal(err)
	}
	sf, err := ReadShard(path)
	if err != nil {
		t.Fatalf("torn gzip shard unreadable: %v", err)
	}
	if sf.Complete {
		t.Fatal("torn gzip shard parsed as complete")
	}
	redone, skipped, err := ExecuteShard(context.Background(), spec, 0, 0, path)
	if err != nil || skipped {
		t.Fatalf("rerun over torn gzip: skipped=%v err=%v", skipped, err)
	}
	if redone.Total() != 2 { // shard 0 of 4 runs / 2 shards
		t.Fatalf("rerun total %d, want 2", redone.Total())
	}

	// Cut inside the gzip header: nothing identifiable survives; the
	// remnant is ErrTorn and ExecuteShard overwrites it.
	if err := os.WriteFile(path, data[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, rerr := ReadShard(path); !errors.Is(rerr, ErrTorn) {
		t.Fatalf("header remnant error = %v, want ErrTorn", rerr)
	}
	if _, skipped, err := ExecuteShard(context.Background(), spec, 0, 0, path); err != nil || skipped {
		t.Fatalf("rerun over header remnant: skipped=%v err=%v", skipped, err)
	}
}
