package dist

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/dessertlab/certify/internal/core"
)

// TestExecuteShardCancelMidCampaign pins the abort contract the serve
// daemon's job cancellation rides on: cancelling the context mid-shard
// returns an error satisfying errors.Is(err, context.Canceled), and the
// artefact left behind is a same-campaign incomplete remnant that a
// later invocation reruns to the full, bit-exact result.
func TestExecuteShardCancelMidCampaign(t *testing.T) {
	dir := t.TempDir()
	spec := &Spec{
		Plan: core.PlanE3Fig3(), Runs: 40, MasterSeed: 2022,
		Shards: 1, Mode: core.ModeDistribution,
	}
	path := filepath.Join(dir, "runs.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, _, err := ExecuteShardPool(ctx, spec, 0, 2, path, nil)
		errc <- err
	}()

	// Wait for real progress, then pull the plug mid-campaign.
	tail := NewTail(path)
	deadline := time.Now().Add(30 * time.Second)
	for {
		p, _ := tail.Poll()
		if p.Runs >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never made progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	err := <-errc
	if err == nil {
		t.Fatal("cancelled shard returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled shard error = %v, want errors.Is(context.Canceled)", err)
	}

	// The remnant parses as this campaign, incomplete — resumable, not
	// poison.
	sf, rerr := ReadShard(path)
	if rerr != nil {
		t.Fatalf("cancelled artefact unreadable: %v", rerr)
	}
	sh, _ := spec.Shard(0)
	if !sf.Manifest.SameCampaignAs(sh) {
		t.Fatalf("cancelled artefact names a foreign campaign: %+v", sf.Manifest)
	}
	if sf.Complete {
		t.Fatal("cancelled artefact claims completeness")
	}
	if sf.Records == 0 {
		t.Fatal("cancelled artefact holds no records despite observed progress")
	}

	// Rerunning the same spec over the remnant completes the shard.
	res, skipped, err := ExecuteShardPool(context.Background(), spec, 0, 2, path, nil)
	if err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	if skipped {
		t.Fatal("incomplete remnant was skipped instead of rerun")
	}
	if res.Total() != spec.Runs {
		t.Fatalf("rerun total = %d, want %d", res.Total(), spec.Runs)
	}
	sf2, rerr := ReadShard(path)
	if rerr != nil || !sf2.Complete {
		t.Fatalf("rerun artefact not complete (err=%v)", rerr)
	}
}

// TestExecuteShardCancelledBeforeFirstRun pins the zero-progress abort:
// a context cancelled before any run completes still classifies as a
// cancellation, not as a generic empty-campaign failure.
func TestExecuteShardCancelledBeforeFirstRun(t *testing.T) {
	spec := &Spec{
		Plan: core.PlanE3Fig3(), Runs: 4, MasterSeed: 9,
		Shards: 1, Mode: core.ModeDistribution,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ExecuteShardPool(ctx, spec, 0, 1, filepath.Join(t.TempDir(), "runs.jsonl"), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled shard error = %v, want errors.Is(context.Canceled)", err)
	}
}
