package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/sim"
)

// shortE3 is the invariance tests' plan: E3/Figure-3 shortened so a
// run costs ~1/8 of the paper's minute.
func shortE3() *core.TestPlan {
	plan := *core.PlanE3Fig3()
	plan.Duration = 8 * sim.Second
	plan.Name = "E3-dist"
	return &plan
}

func TestShardPlannerWindows(t *testing.T) {
	for _, tc := range []struct {
		runs, shards int
		want         [][2]int
	}{
		{10, 1, [][2]int{{0, 10}}},
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{9, 3, [][2]int{{0, 3}, {3, 6}, {6, 9}}},
		{5, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}},
	} {
		spec := &Spec{Plan: shortE3(), Runs: tc.runs, MasterSeed: 1, Shards: tc.shards}
		shards, err := spec.AllShards()
		if err != nil {
			t.Fatalf("%d/%d: %v", tc.runs, tc.shards, err)
		}
		for i, sh := range shards {
			if sh.Start != tc.want[i][0] || sh.End != tc.want[i][1] {
				t.Fatalf("%d runs / %d shards: shard %d = [%d,%d), want [%d,%d)",
					tc.runs, tc.shards, i, sh.Start, sh.End, tc.want[i][0], tc.want[i][1])
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	for name, spec := range map[string]*Spec{
		"no plan":          {Runs: 10, Shards: 2},
		"zero runs":        {Plan: shortE3(), Runs: 0, Shards: 1},
		"zero shards":      {Plan: shortE3(), Runs: 10, Shards: 0},
		"shards over runs": {Plan: shortE3(), Runs: 3, Shards: 4},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	spec := &Spec{Plan: shortE3(), Runs: 10, Shards: 3}
	if _, err := spec.Shard(-1); err == nil {
		t.Error("negative shard index accepted")
	}
	if _, err := spec.Shard(3); err == nil {
		t.Error("out-of-range shard index accepted")
	}
}

// stripIndexFooter rewrites a plain artefact without its index footer
// block — the pre-index layout, which the byte-editing tests below
// manipulate line by line (the binary footer is not line-structured).
func stripIndexFooter(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < plainTrailerSize {
		t.Fatalf("%s: too short to carry an index trailer", path)
	}
	footOff, _, ok := parsePlainTrailer(data[len(data)-plainTrailerSize:])
	if !ok {
		t.Fatalf("%s: no index trailer to strip", path)
	}
	if err := os.WriteFile(path, data[:footOff], 0o644); err != nil {
		t.Fatal(err)
	}
}

// serialReference runs the unsharded campaign, collecting the per-run
// trace hashes the streaming hook sees.
func serialReference(t *testing.T, plan *core.TestPlan, runs int, seed uint64, mode core.CampaignMode) (*core.CampaignResult, map[int]uint64) {
	t.Helper()
	var mu sync.Mutex
	hashes := make(map[int]uint64, runs)
	c := &core.Campaign{
		Plan: plan, Runs: runs, MasterSeed: seed, Mode: mode,
		OnRun: func(index int, r *core.RunResult) {
			mu.Lock()
			hashes[index] = r.TraceHash
			mu.Unlock()
		},
	}
	res, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, hashes
}

// runSharded executes every shard of spec into dir and merges the files.
func runSharded(t *testing.T, spec *Spec, dir string) (*core.CampaignResult, []*ShardFile) {
	t.Helper()
	paths := make([]string, spec.Shards)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%02d.jsonl", i))
		if _, skipped, err := ExecuteShard(context.Background(), spec, i, 0, paths[i]); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		} else if skipped {
			t.Fatalf("shard %d skipped on first execution", i)
		}
	}
	merged, shards, err := Merge(paths)
	if err != nil {
		t.Fatal(err)
	}
	return merged, shards
}

// TestShardedCampaignMatchesSerial is the subsystem's core promise: for
// K ∈ {1, 3, 8}, splitting the campaign into K shard processes and
// merging their artefacts reproduces the serial campaign exactly — the
// same outcome distribution, the same injection total, and the same
// per-run trace hash for every run index.
func TestShardedCampaignMatchesSerial(t *testing.T) {
	const runs, seed = 24, uint64(2022)
	plan := shortE3()
	serial, serialHashes := serialReference(t, plan, runs, seed, core.ModeDistribution)
	if len(serialHashes) != runs {
		t.Fatalf("serial reference produced %d hashes, want %d", len(serialHashes), runs)
	}

	for _, k := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards-%d", k), func(t *testing.T) {
			spec := &Spec{Plan: plan, Runs: runs, MasterSeed: seed, Shards: k, Mode: core.ModeDistribution}
			merged, shards := runSharded(t, spec, t.TempDir())

			if merged.Total() != serial.Total() || merged.InjectionsTotal() != serial.InjectionsTotal() {
				t.Fatalf("merged total/injections = %d/%d, serial = %d/%d",
					merged.Total(), merged.InjectionsTotal(), serial.Total(), serial.InjectionsTotal())
			}
			for _, o := range core.AllOutcomes() {
				if merged.Count(o) != serial.Count(o) {
					t.Fatalf("count(%v) = %d sharded, %d serial", o, merged.Count(o), serial.Count(o))
				}
			}
			if merged.MeanDetectionLatency() != serial.MeanDetectionLatency() {
				t.Fatalf("mean detection latency %v sharded, %v serial",
					merged.MeanDetectionLatency(), serial.MeanDetectionLatency())
			}
			got := make(map[int]uint64, runs)
			for _, sf := range shards {
				for idx, h := range sf.TraceHashes {
					got[idx] = h
				}
			}
			if len(got) != runs {
				t.Fatalf("shard artefacts hold %d run records, want %d", len(got), runs)
			}
			for idx, h := range serialHashes {
				if got[idx] != h {
					t.Fatalf("run %d: trace hash %#x sharded, %#x serial", idx, got[idx], h)
				}
			}
		})
	}
}

// TestShardedCampaignGoldenSeed2022 is the acceptance gate: the pinned
// E3/Figure-3 campaign (40 one-minute runs, master seed 2022, golden
// distribution 23 correct / 1 inconsistent / 16 panic-park — see
// core's TestCampaignDistributionGolden) split across 3 shard
// processes and merged back must land on the identical aggregate.
func TestShardedCampaignGoldenSeed2022(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	spec := &Spec{Plan: core.PlanE3Fig3(), Runs: 40, MasterSeed: 2022, Shards: 3, Mode: core.ModeDistribution}
	merged, shards := runSharded(t, spec, t.TempDir())

	want := map[core.Outcome]int{
		core.OutcomeCorrect:      23,
		core.OutcomeInconsistent: 1,
		core.OutcomePanicPark:    16,
	}
	for _, o := range core.AllOutcomes() {
		if merged.Count(o) != want[o] {
			t.Fatalf("count(%v) = %d, want %d", o, merged.Count(o), want[o])
		}
	}
	if merged.Total() != 40 || merged.InjectionsTotal() != 56 {
		t.Fatalf("total=%d injections=%d, want 40/56", merged.Total(), merged.InjectionsTotal())
	}
	records := 0
	for _, sf := range shards {
		records += sf.Records
	}
	if records != 40 {
		t.Fatalf("JSONL artefacts hold %d run records, want one per run (40)", records)
	}
}

// TestShardedWarmPoolGoldenSeed2022 pins the golden split when all
// three shards execute in one process over a shared warm-machine pool
// (the fan-out in-process configuration): machines booted by shard 0
// are deep-reset and reused by shards 1 and 2, and the merged campaign
// still lands exactly on 23/1/16 with 56 injections — plus per-run
// trace hashes identical to the serial reference.
func TestShardedWarmPoolGoldenSeed2022(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	_, serialHashes := serialReference(t, core.PlanE3Fig3(), 40, 2022, core.ModeDistribution)

	spec := &Spec{Plan: core.PlanE3Fig3(), Runs: 40, MasterSeed: 2022, Shards: 3, Mode: core.ModeDistribution}
	pool := core.NewMachinePool()
	dir := t.TempDir()
	paths := make([]string, spec.Shards)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%02d.jsonl", i))
		if _, skipped, err := ExecuteShardPool(context.Background(), spec, i, 0, paths[i], pool); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		} else if skipped {
			t.Fatalf("shard %d skipped on first execution", i)
		}
	}
	merged, shards, err := Merge(paths)
	if err != nil {
		t.Fatal(err)
	}

	want := map[core.Outcome]int{
		core.OutcomeCorrect:      23,
		core.OutcomeInconsistent: 1,
		core.OutcomePanicPark:    16,
	}
	for _, o := range core.AllOutcomes() {
		if merged.Count(o) != want[o] {
			t.Fatalf("count(%v) = %d, want %d", o, merged.Count(o), want[o])
		}
	}
	if merged.Total() != 40 || merged.InjectionsTotal() != 56 {
		t.Fatalf("total=%d injections=%d, want 40/56", merged.Total(), merged.InjectionsTotal())
	}
	got := make(map[int]uint64, 40)
	for _, sf := range shards {
		for idx, h := range sf.TraceHashes {
			got[idx] = h
		}
	}
	for idx, h := range serialHashes {
		if got[idx] != h {
			t.Fatalf("run %d: trace hash %#x warm-sharded, %#x serial", idx, got[idx], h)
		}
	}
	builds, reuses := pool.Stats()
	if reuses == 0 {
		t.Fatalf("pool stats builds=%d reuses=%d — shards never shared a machine", builds, reuses)
	}
}

// TestExecuteShardResume pins the resume contract: a completed shard
// file short-circuits the rerun; an interrupted one (no summary) is
// re-executed; a file from a different campaign is never overwritten.
func TestExecuteShardResume(t *testing.T) {
	spec := &Spec{Plan: shortE3(), Runs: 6, MasterSeed: 7, Shards: 2, Mode: core.ModeDistribution}
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-0.jsonl")

	first, skipped, err := ExecuteShard(context.Background(), spec, 0, 0, path)
	if err != nil || skipped {
		t.Fatalf("first execution: skipped=%v err=%v", skipped, err)
	}
	again, skipped, err := ExecuteShard(context.Background(), spec, 0, 0, path)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !skipped {
		t.Fatal("completed shard was re-executed")
	}
	if again.Total() != first.Total() || again.InjectionsTotal() != first.InjectionsTotal() {
		t.Fatalf("resumed aggregate %d/%d, original %d/%d",
			again.Total(), again.InjectionsTotal(), first.Total(), first.InjectionsTotal())
	}

	// Simulate a crash: drop the summary footer (and a record). The
	// index footer goes first — a crashed writer never wrote one.
	stripIndexFooter(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-2], "\n") + "\n"
	if err := os.WriteFile(path, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}
	sf, err := ReadShard(path)
	if err != nil {
		t.Fatalf("truncated shard unreadable: %v", err)
	}
	if sf.Complete {
		t.Fatal("truncated shard parsed as complete")
	}
	redone, skipped, err := ExecuteShard(context.Background(), spec, 0, 0, path)
	if err != nil {
		t.Fatalf("rerun after crash: %v", err)
	}
	if skipped {
		t.Fatal("interrupted shard was skipped instead of rerun")
	}
	if redone.Total() != first.Total() {
		t.Fatalf("rerun total %d, want %d", redone.Total(), first.Total())
	}

	// A different campaign's artefact must be refused, not clobbered.
	other := &Spec{Plan: shortE3(), Runs: 6, MasterSeed: 8, Shards: 2, Mode: core.ModeDistribution}
	if _, _, err := ExecuteShard(context.Background(), other, 0, 0, path); err == nil {
		t.Fatal("overwrote an artefact of a different campaign")
	}
}

// TestTornPlainManifestIsRerun: a plain artefact cut off inside its
// very first line (no newline anywhere) cannot be anyone's finished
// evidence — it must classify as ErrTorn and be rerun, exactly like a
// torn gzip header. A newline-terminated garbage file, by contrast,
// stays a hard refusal.
func TestTornPlainManifestIsRerun(t *testing.T) {
	spec := &Spec{Plan: shortE3(), Runs: 4, MasterSeed: 21, Shards: 2, Mode: core.ModeDistribution}
	path := filepath.Join(t.TempDir(), "shard-0.jsonl")
	if err := os.WriteFile(path, []byte(`{"type":"manif`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(path); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn manifest prefix error = %v, want ErrTorn", err)
	}
	if res, skipped, err := ExecuteShard(context.Background(), spec, 0, 0, path); err != nil || skipped {
		t.Fatalf("rerun over torn manifest remnant: skipped=%v err=%v", skipped, err)
	} else if res.Total() != 2 {
		t.Fatalf("rerun total %d, want 2", res.Total())
	}

	other := filepath.Join(filepath.Dir(path), "garbage.jsonl")
	if err := os.WriteFile(other, []byte("not an artefact\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(other); err == nil || errors.Is(err, ErrTorn) {
		t.Fatalf("newline-terminated garbage error = %v, want hard refusal", err)
	}
	if _, _, err := ExecuteShard(context.Background(), spec, 0, 0, other); err == nil {
		t.Fatal("overwrote a newline-terminated foreign file")
	}
}

// TestMergeRejectsBadShardSets enumerates the manifest checks.
func TestMergeRejectsBadShardSets(t *testing.T) {
	spec := &Spec{Plan: shortE3(), Runs: 6, MasterSeed: 7, Shards: 2, Mode: core.ModeDistribution}
	dir := t.TempDir()
	paths := make([]string, spec.Shards)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i))
		if _, _, err := ExecuteShard(context.Background(), spec, i, 0, paths[i]); err != nil {
			t.Fatal(err)
		}
	}

	if _, _, err := Merge(nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, _, err := Merge(paths[:1]); err == nil || !strings.Contains(err.Error(), "missing shard") {
		t.Errorf("missing shard not reported: %v", err)
	}
	if _, _, err := Merge([]string{paths[0], paths[0]}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate shard not reported: %v", err)
	}

	// A shard of a different campaign (other seed) must be rejected.
	other := &Spec{Plan: shortE3(), Runs: 6, MasterSeed: 8, Shards: 2, Mode: core.ModeDistribution}
	alien := filepath.Join(dir, "alien.jsonl")
	if _, _, err := ExecuteShard(context.Background(), other, 1, 0, alien); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge([]string{paths[0], alien}); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Errorf("cross-campaign merge not reported: %v", err)
	}

	// An incomplete shard must be named. (Strip the index footer first
	// so the line surgery below edits the record stream, not the binary
	// footer a complete artefact now ends with.)
	stripIndexFooter(t, paths[1])
	data, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if err := os.WriteFile(paths[1], []byte(strings.Join(lines[:len(lines)-1], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge(paths); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete shard not reported: %v", err)
	}

	// A manifest whose shard index escapes [0, Shards) is rejected at
	// parse time, before any merge bookkeeping can mask it.
	bogus := filepath.Join(dir, "bogus.jsonl")
	manifest := `{"type":"manifest","schema":1,"plan":"x","plan_hash":"0x1","master_seed":"0x7","runs":6,"shards":2,"shard":5,"start":0,"end":3,"mode":"distribution"}` + "\n"
	if err := os.WriteFile(bogus, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(bogus); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("out-of-range manifest shard index not rejected: %v", err)
	}
}

// TestMergeRejectsCrossModelShardSets pins satellite robustness: shard
// artefacts carry their fault-model identity, absent fields normalise
// to the default register model (pre-registry artefacts stay mergeable),
// and Merge refuses shard sets whose models disagree — by name, even
// when every other identity field matches.
func TestMergeRejectsCrossModelShardSets(t *testing.T) {
	spec := &Spec{Plan: shortE3(), Runs: 4, MasterSeed: 11, Shards: 2, Mode: core.ModeDistribution}

	// Manifest-level normalisation: "" and "register" are one identity;
	// any other name is a different campaign.
	sh, err := spec.Shard(0)
	if err != nil {
		t.Fatal(err)
	}
	man := sh.Manifest()
	if man.FaultModel != "" {
		t.Fatalf("register-model manifest writes fault_model %q, want omitted", man.FaultModel)
	}
	explicit := man
	explicit.FaultModel = core.DefaultFaultModelName
	if !man.sameCampaign(explicit) || !man.matches(explicit) {
		t.Error("explicit register model not recognised as the default identity")
	}
	foreign := man
	foreign.FaultModel = "ram"
	if man.sameCampaign(foreign) || man.matches(foreign) {
		t.Error("disagreeing fault models accepted as one campaign")
	}
	if d := man.campaignDiff(foreign); !strings.Contains(d, "fault model") {
		t.Errorf("campaignDiff does not name the fault model: %q", d)
	}

	// End to end: two shards of one campaign, one manifest doctored to
	// claim another model. Merge must refuse and say why.
	dir := t.TempDir()
	paths := make([]string, spec.Shards)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i))
		if _, _, err := ExecuteShard(context.Background(), spec, i, 0, paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(data),
		`"mode":"distribution"`, `"mode":"distribution","fault_model":"ram"`, 1)
	if doctored == string(data) {
		t.Fatal("manifest line did not contain the expected mode field")
	}
	if err := os.WriteFile(paths[1], []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Merge(paths)
	if err == nil || !strings.Contains(err.Error(), "fault model") {
		t.Errorf("cross-model merge not refused by model name: %v", err)
	}
}

// TestJSONLTranscriptRetention pins the evidence contract: full-mode
// shards embed transcripts in their records, distribution-mode shards
// stay lean — the streaming writer restores *per-run* evidence at
// scale without re-enabling transcript retention.
func TestJSONLTranscriptRetention(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		mode core.CampaignMode
		want bool
	}{
		{core.ModeFull, true},
		{core.ModeDistribution, false},
	} {
		spec := &Spec{Plan: shortE3(), Runs: 2, MasterSeed: 3, Shards: 1, Mode: tc.mode}
		path := filepath.Join(dir, "shard-"+tc.mode.String()+".jsonl")
		if _, _, err := ExecuteShard(context.Background(), spec, 0, 0, path); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		has := strings.Contains(string(data), `"cell_transcript"`)
		if has != tc.want {
			t.Errorf("mode %v: transcript present=%v, want %v", tc.mode, has, tc.want)
		}
		sf, err := ReadShard(path)
		if err != nil {
			t.Fatal(err)
		}
		if !sf.Complete || sf.Records != 2 {
			t.Errorf("mode %v: complete=%v records=%d", tc.mode, sf.Complete, sf.Records)
		}
		for idx, h := range sf.TraceHashes {
			if h == 0 {
				t.Errorf("mode %v: run %d has zero trace hash", tc.mode, idx)
			}
		}
	}
}

// TestPlanHashDiscriminates makes sure the manifest fingerprint actually
// separates plans that differ in any campaign-relevant dimension.
func TestPlanHashDiscriminates(t *testing.T) {
	base := shortE3()
	variants := map[string]*core.TestPlan{}
	{
		p := *base
		p.Rate = 25
		variants["rate"] = &p
	}
	{
		p := *base
		p.Intensity = core.IntensityHigh
		variants["intensity"] = &p
	}
	{
		p := *base
		p.Duration = 9 * sim.Second
		variants["duration"] = &p
	}
	h := base.Hash()
	if h == 0 {
		t.Fatal("zero plan hash")
	}
	for name, v := range variants {
		if v.Hash() == h {
			t.Errorf("changing %s did not change the plan hash", name)
		}
	}
	same := *base
	if same.Hash() != h {
		t.Error("copy of the plan hashes differently")
	}
}
