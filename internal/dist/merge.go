package dist

import (
	"bufio"
	"compress/flate"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"github.com/dessertlab/certify/internal/analytics"
	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/sim"
)

// maxLineBytes bounds one JSONL line. Full-mode records embed whole
// serial transcripts, which reach megabytes on minute-long runs.
const maxLineBytes = 64 << 20

// ErrTorn marks an artefact cut off before it could identify itself — a
// crash remnant, not a foreign campaign's file. Every complete artefact
// starts with an intact manifest line, so a file whose compressed
// stream or first line is truncated cannot be anyone's finished
// evidence; ExecuteShard overwrites such remnants instead of refusing.
var ErrTorn = errors.New("dist: artefact truncated before its manifest")

// ErrCampaignMismatch marks every campaign-identity refusal: an artefact
// or spec that names a different plan hash, seed, window, mode or fault
// model than the campaign being assembled. Callers (the certify CLI's
// exit-code policy, the serve daemon's error classes) branch on
// errors.Is(err, ErrCampaignMismatch) to distinguish "you pointed two
// campaigns at each other" from plain I/O failure.
var ErrCampaignMismatch = errors.New("campaign identity mismatch")

// openShardReader opens path and returns a line reader, decompressing
// transparently when the content (magic bytes, not just the suffix) is
// gzip. The returned bool reports whether the stream is compressed —
// readers use it to classify decode errors as torn crash remnants.
func openShardReader(f *os.File, path string) (io.Reader, bool, error) {
	br := bufio.NewReaderSize(f, 64<<10)
	magic, err := br.Peek(2)
	if err != nil {
		// Shorter than the gzip magic: nothing identifiable in there.
		if IsGzipPath(path) {
			return nil, false, fmt.Errorf("dist: %s: %w", path, ErrTorn)
		}
		return br, false, nil
	}
	if magic[0] != 0x1f || magic[1] != 0x8b {
		return br, false, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, false, fmt.Errorf("dist: %s: bad gzip header (%v): %w", path, err, ErrTorn)
	}
	return zr, true, nil
}

// tornGzip reports whether a read error on a compressed stream is the
// signature of a truncated (killed-writer) file rather than bad media:
// everything decoded before the cut still counts, exactly like a torn
// trailing line in a plain artefact.
func tornGzip(err error) bool {
	var corrupt flate.CorruptInputError
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) ||
		errors.Is(err, gzip.ErrChecksum) || errors.As(err, &corrupt)
}

// ShardFile is one parsed shard artefact: its manifest, completion
// state, and the aggregate rebuilt from its run records.
type ShardFile struct {
	Path     string
	Manifest Manifest
	// Complete is true when the file carries a summary footer whose
	// counts match the folded run records — the shard finished cleanly.
	Complete bool
	// HasSummary is true when a summary footer line was parsed at all
	// (it may still disagree with the records; see Complete).
	HasSummary bool
	// Records is the number of run records present.
	Records int
	// Result is the shard's aggregate, rebuilt record by record (not
	// trusted from the footer; the footer only confirms it).
	Result *core.CampaignResult
	// TraceHashes maps global run index → trace hash, the per-run
	// reproducibility fingerprints the invariance checks compare.
	TraceHashes map[int]uint64
	// Samples maps global run index → the per-run aggregate sample, kept
	// only for adaptive shards (manifest Stop != nil): the merge replays
	// the stop policy over the globally index-ordered outcome sequence,
	// which the order-free Result aggregate cannot provide.
	Samples map[int]Sample
}

// Sample is one run's contribution to the campaign aggregate, keyed by
// global index so the merge can refold runs in seed-chain order.
type Sample struct {
	Outcome     core.Outcome
	Injections  int
	DetectionNS int64
}

// parseOutcome maps a taxonomy name back to the classifier's outcome.
func parseOutcome(s string) (core.Outcome, error) {
	for _, o := range core.AllOutcomes() {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown outcome %q", s)
}

func parseHex(s string) (uint64, error) {
	return strconv.ParseUint(s, 0, 64)
}

// ReadShard parses one shard artefact file: manifest first line, run
// records folded into a CampaignResult, optional summary footer. It
// validates record indices against the manifest's window and rejects
// duplicates; a missing or inconsistent footer yields Complete=false
// rather than an error, because that is the normal state of a crashed
// shard awaiting rerun.
func ReadShard(path string) (*ShardFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	r, compressed, err := openShardReader(f, path)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			if compressed && tornGzip(err) {
				return nil, fmt.Errorf("dist: %s: %v: %w", path, err, ErrTorn)
			}
			return nil, fmt.Errorf("dist: %s: %w", path, err)
		}
		if compressed {
			return nil, fmt.Errorf("dist: %s holds no manifest line: %w", path, ErrTorn)
		}
		return nil, fmt.Errorf("dist: %s is empty (no manifest line)", path)
	}
	var m Manifest
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil || m.Type != recordManifest {
		// A plain file whose only content is one unterminated line is a
		// write cut off mid-manifest — the same crash-remnant shape as a
		// torn gzip header, so classify it the same way. (Every complete
		// artefact's lines are newline-terminated; the scanner hands back
		// a final unterminated token verbatim, so "token == whole file"
		// detects the missing newline.)
		if st, serr := f.Stat(); !compressed && serr == nil && int64(len(sc.Bytes())) == st.Size() {
			return nil, fmt.Errorf("dist: %s cut off inside its first line: %w", path, ErrTorn)
		}
		return nil, fmt.Errorf("dist: %s does not start with a manifest line", path)
	}
	if err := validateManifest(path, m); err != nil {
		return nil, err
	}

	sf := &ShardFile{
		Path:        path,
		Manifest:    m,
		Result:      &core.CampaignResult{Plan: m.Plan},
		TraceHashes: make(map[int]uint64, m.End-m.Start),
	}
	if m.Stop != nil {
		sf.Samples = make(map[int]Sample, m.End-m.Start)
	}
	var summary *Summary
	seen := make(map[int]bool, m.End-m.Start)
	line := 1
	for sc.Scan() {
		line++
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			// Either the index footer (its magic can never parse as JSON —
			// the indexed-artefact format appends it after the summary so
			// sequential readers stop exactly here) or a torn trailing
			// line from a killed process. In both cases everything before
			// this point counts and nothing after it is line data.
			break
		}
		switch probe.Type {
		case recordRun:
			var rec RunRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return nil, fmt.Errorf("dist: %s line %d: %w", path, line, err)
			}
			if rec.Index < m.Start || rec.Index >= m.End {
				return nil, fmt.Errorf("dist: %s line %d: run index %d outside shard window [%d,%d)",
					path, line, rec.Index, m.Start, m.End)
			}
			if seen[rec.Index] {
				return nil, fmt.Errorf("dist: %s line %d: duplicate run index %d", path, line, rec.Index)
			}
			seen[rec.Index] = true
			o, err := parseOutcome(rec.Outcome)
			if err != nil {
				return nil, fmt.Errorf("dist: %s line %d: %w", path, line, err)
			}
			hash, err := parseHex(rec.TraceHash)
			if err != nil {
				return nil, fmt.Errorf("dist: %s line %d: bad trace hash %q", path, line, rec.TraceHash)
			}
			sf.Result.AddSample(o, rec.Injections, sim.Time(rec.DetectionNS))
			sf.TraceHashes[rec.Index] = hash
			if sf.Samples != nil {
				sf.Samples[rec.Index] = Sample{Outcome: o, Injections: rec.Injections, DetectionNS: rec.DetectionNS}
			}
			sf.Records++
		case recordSummary:
			var s Summary
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return nil, fmt.Errorf("dist: %s line %d: %w", path, line, err)
			}
			summary = &s
		default:
			return nil, fmt.Errorf("dist: %s line %d: unknown record type %q", path, line, probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		if !(compressed && tornGzip(err)) {
			return nil, fmt.Errorf("dist: %s: %w", path, err)
		}
		// A killed writer truncates the gzip stream mid-block; the lines
		// decoded before the cut are intact evidence and the shard simply
		// parses as incomplete, same as a torn trailing line in plain text.
	}

	sf.HasSummary = summary != nil
	if m.Stop != nil {
		// Adaptive shard: the summary footer is still the completion
		// marker, but the record count may legitimately stop short of the
		// window — the stop policy certified a shorter prefix. Any
		// non-empty prefix whose footer stamp agrees with the records is
		// a finished shard; whether it stopped at the RIGHT index is the
		// merge replay's check, which has the global outcome sequence
		// this single file does not.
		sf.Complete = summary != nil && summaryConfirms(summary, sf) &&
			sf.Records > 0 && sf.Records <= m.End-m.Start
		if sf.Complete {
			sf.Result.Stop = &core.StopDecision{DecidedAt: summary.DecidedAt, Fired: summary.StopFired}
		}
	} else {
		sf.Complete = summary != nil && summaryConfirms(summary, sf) &&
			sf.Records == m.End-m.Start
	}
	return sf, nil
}

// summaryConfirms cross-checks the footer against the folded records,
// including the adaptive stop stamp: a footer claiming a decision index
// other than the one its own record count implies (stampStop) is
// inconsistent.
func summaryConfirms(s *Summary, sf *ShardFile) bool {
	if s.Runs != sf.Result.Total() || s.Injections != sf.Result.InjectionsTotal() {
		return false
	}
	for _, o := range core.AllOutcomes() {
		if s.Distribution[o.String()] != sf.Result.Count(o) {
			return false
		}
	}
	var want Summary
	stampStop(&want, sf.Manifest, sf.Records)
	return s.DecidedAt == want.DecidedAt && s.StopFired == want.StopFired
}

// Merge reads every shard artefact, verifies the set is one complete,
// consistent campaign — same plan hash, master seed, total runs, shard
// count and mode; all K shards present exactly once; windows covering
// [0, Runs) without gap or overlap; every shard complete — and folds
// the shard aggregates into one CampaignResult. The per-shard parses
// are returned alongside for reporting.
func Merge(paths []string) (*core.CampaignResult, []*ShardFile, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("dist: no shard files to merge")
	}
	shards := make([]*ShardFile, 0, len(paths))
	for _, p := range paths {
		sf, err := ReadShard(p)
		if err != nil {
			return nil, nil, err
		}
		shards = append(shards, sf)
	}

	ref := shards[0].Manifest
	byIndex := make(map[int]*ShardFile, len(shards))
	for _, sf := range shards {
		if !sf.Manifest.sameCampaign(ref) {
			return nil, shards, fmt.Errorf(
				"dist: %s belongs to a different campaign than %s (%s): %w",
				sf.Path, shards[0].Path, sf.Manifest.campaignDiff(ref), ErrCampaignMismatch)
		}
		if dup := byIndex[sf.Manifest.Shard]; dup != nil {
			return nil, shards, fmt.Errorf("dist: shard %d appears twice (%s and %s): %w",
				sf.Manifest.Shard, dup.Path, sf.Path, ErrCampaignMismatch)
		}
		byIndex[sf.Manifest.Shard] = sf
		if !sf.Complete {
			state := "missing"
			if sf.HasSummary {
				state = "present but inconsistent with the records"
			}
			return nil, shards, fmt.Errorf(
				"dist: %s is incomplete (%d of %d records, summary %s) — rerun shard %d before merging",
				sf.Path, sf.Records, sf.Manifest.End-sf.Manifest.Start,
				state, sf.Manifest.Shard)
		}
	}
	if len(shards) != ref.Shards {
		missing := make([]int, 0, ref.Shards)
		for i := 0; i < ref.Shards; i++ {
			if byIndex[i] == nil {
				missing = append(missing, i)
			}
		}
		return nil, shards, fmt.Errorf("dist: campaign declares %d shards, got %d files (missing shard indices %v)",
			ref.Shards, len(shards), missing)
	}

	// Windows must tile [0, Runs) exactly.
	sort.Slice(shards, func(i, j int) bool { return shards[i].Manifest.Start < shards[j].Manifest.Start })
	next := 0
	for _, sf := range shards {
		if sf.Manifest.Start != next {
			return nil, shards, fmt.Errorf("dist: shard windows do not tile the campaign: expected start %d, %s covers [%d,%d)",
				next, sf.Path, sf.Manifest.Start, sf.Manifest.End)
		}
		next = sf.Manifest.End
	}
	if next != ref.Runs {
		return nil, shards, fmt.Errorf("dist: shard windows end at %d, campaign has %d runs", next, ref.Runs)
	}

	if ref.Stop != nil {
		return mergeAdaptive(ref, shards)
	}

	merged := &core.CampaignResult{Plan: ref.Plan}
	for _, sf := range shards {
		merged.MergeFrom(sf.Result)
	}
	return merged, shards, nil
}

// mergeAdaptive assembles an adaptive campaign: it replays the stop
// policy over the shards' samples in strict global-index order — the
// exact observation sequence the live campaign's ordered commit fed it
// — and folds only the certified prefix [0, K) into the merged result.
// Purity of the policy guarantees the replay lands on the same K the
// live decision did; the replay also audits the artefacts, refusing a
// shard that stopped anywhere other than the replayed decision index.
// shards are sorted by window start and verified to tile [0, ref.Runs).
func mergeAdaptive(ref Manifest, shards []*ShardFile) (*core.CampaignResult, []*ShardFile, error) {
	policy, err := analytics.NewStopPolicy(ref.Stop)
	if err != nil {
		return nil, shards, err
	}
	policy.Reset()
	merged := &core.CampaignResult{Plan: ref.Plan}
	decided, fired := ref.Runs, false
	si := 0
	for i := 0; i < ref.Runs && !fired; i++ {
		for shards[si].Manifest.End <= i {
			si++
		}
		sf := shards[si]
		s, ok := sf.Samples[i]
		if !ok {
			return nil, shards, fmt.Errorf(
				"dist: %s holds no record for run %d, but the stop policy (%s) has not fired by then — shard stopped early or artefact tampered: %w",
				sf.Path, i, ref.Stop.Identity(), ErrCampaignMismatch)
		}
		merged.AddSample(s.Outcome, s.Injections, sim.Time(s.DetectionNS))
		if policy.Observe(i, s.Outcome) {
			decided, fired = i+1, true
		}
	}
	// Every shard that recorded fewer runs than its window claims the
	// policy stopped it — which is only consistent if it stopped exactly
	// at the replayed decision index.
	for _, sf := range shards {
		if sf.Records == sf.Manifest.End-sf.Manifest.Start {
			continue
		}
		if !fired || sf.Manifest.Start+sf.Records != decided {
			return nil, shards, fmt.Errorf(
				"dist: %s stopped after %d of %d runs but the stop policy (%s) decides at index %d: %w",
				sf.Path, sf.Records, sf.Manifest.End-sf.Manifest.Start, ref.Stop.Identity(), decided, ErrCampaignMismatch)
		}
	}
	merged.Stop = &core.StopDecision{DecidedAt: decided, Fired: fired}
	return merged, shards, nil
}
