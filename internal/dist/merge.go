package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/sim"
)

// maxLineBytes bounds one JSONL line. Full-mode records embed whole
// serial transcripts, which reach megabytes on minute-long runs.
const maxLineBytes = 64 << 20

// ShardFile is one parsed shard artefact: its manifest, completion
// state, and the aggregate rebuilt from its run records.
type ShardFile struct {
	Path     string
	Manifest Manifest
	// Complete is true when the file carries a summary footer whose
	// counts match the folded run records — the shard finished cleanly.
	Complete bool
	// HasSummary is true when a summary footer line was parsed at all
	// (it may still disagree with the records; see Complete).
	HasSummary bool
	// Records is the number of run records present.
	Records int
	// Result is the shard's aggregate, rebuilt record by record (not
	// trusted from the footer; the footer only confirms it).
	Result *core.CampaignResult
	// TraceHashes maps global run index → trace hash, the per-run
	// reproducibility fingerprints the invariance checks compare.
	TraceHashes map[int]uint64
}

// parseOutcome maps a taxonomy name back to the classifier's outcome.
func parseOutcome(s string) (core.Outcome, error) {
	for _, o := range core.AllOutcomes() {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown outcome %q", s)
}

func parseHex(s string) (uint64, error) {
	return strconv.ParseUint(s, 0, 64)
}

// ReadShard parses one shard artefact file: manifest first line, run
// records folded into a CampaignResult, optional summary footer. It
// validates record indices against the manifest's window and rejects
// duplicates; a missing or inconsistent footer yields Complete=false
// rather than an error, because that is the normal state of a crashed
// shard awaiting rerun.
func ReadShard(path string) (*ShardFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("dist: %s: %w", path, err)
		}
		return nil, fmt.Errorf("dist: %s is empty (no manifest line)", path)
	}
	var m Manifest
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil || m.Type != recordManifest {
		return nil, fmt.Errorf("dist: %s does not start with a manifest line", path)
	}
	if m.Schema > SchemaVersion {
		return nil, fmt.Errorf("dist: %s uses schema %d, this build reads up to %d", path, m.Schema, SchemaVersion)
	}
	if m.Runs <= 0 || m.Shards <= 0 || m.Shard < 0 || m.Shard >= m.Shards {
		return nil, fmt.Errorf("dist: %s manifest declares shard %d of %d over %d runs — inconsistent", path, m.Shard, m.Shards, m.Runs)
	}
	if m.Start < 0 || m.End < m.Start || m.End > m.Runs {
		return nil, fmt.Errorf("dist: %s manifest window [%d,%d) is invalid for %d runs", path, m.Start, m.End, m.Runs)
	}

	sf := &ShardFile{
		Path:        path,
		Manifest:    m,
		Result:      &core.CampaignResult{Plan: m.Plan},
		TraceHashes: make(map[int]uint64, m.End-m.Start),
	}
	var summary *Summary
	seen := make(map[int]bool, m.End-m.Start)
	line := 1
	for sc.Scan() {
		line++
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			// A torn trailing line is what a killed process leaves behind;
			// everything before it still counts.
			break
		}
		switch probe.Type {
		case recordRun:
			var rec RunRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return nil, fmt.Errorf("dist: %s line %d: %w", path, line, err)
			}
			if rec.Index < m.Start || rec.Index >= m.End {
				return nil, fmt.Errorf("dist: %s line %d: run index %d outside shard window [%d,%d)",
					path, line, rec.Index, m.Start, m.End)
			}
			if seen[rec.Index] {
				return nil, fmt.Errorf("dist: %s line %d: duplicate run index %d", path, line, rec.Index)
			}
			seen[rec.Index] = true
			o, err := parseOutcome(rec.Outcome)
			if err != nil {
				return nil, fmt.Errorf("dist: %s line %d: %w", path, line, err)
			}
			hash, err := parseHex(rec.TraceHash)
			if err != nil {
				return nil, fmt.Errorf("dist: %s line %d: bad trace hash %q", path, line, rec.TraceHash)
			}
			sf.Result.AddSample(o, rec.Injections, sim.Time(rec.DetectionNS))
			sf.TraceHashes[rec.Index] = hash
			sf.Records++
		case recordSummary:
			var s Summary
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return nil, fmt.Errorf("dist: %s line %d: %w", path, line, err)
			}
			summary = &s
		default:
			return nil, fmt.Errorf("dist: %s line %d: unknown record type %q", path, line, probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dist: %s: %w", path, err)
	}

	sf.HasSummary = summary != nil
	sf.Complete = summary != nil && summaryConfirms(summary, sf) &&
		sf.Records == m.End-m.Start
	return sf, nil
}

// summaryConfirms cross-checks the footer against the folded records.
func summaryConfirms(s *Summary, sf *ShardFile) bool {
	if s.Runs != sf.Result.Total() || s.Injections != sf.Result.InjectionsTotal() {
		return false
	}
	for _, o := range core.AllOutcomes() {
		if s.Distribution[o.String()] != sf.Result.Count(o) {
			return false
		}
	}
	return true
}

// Merge reads every shard artefact, verifies the set is one complete,
// consistent campaign — same plan hash, master seed, total runs, shard
// count and mode; all K shards present exactly once; windows covering
// [0, Runs) without gap or overlap; every shard complete — and folds
// the shard aggregates into one CampaignResult. The per-shard parses
// are returned alongside for reporting.
func Merge(paths []string) (*core.CampaignResult, []*ShardFile, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("dist: no shard files to merge")
	}
	shards := make([]*ShardFile, 0, len(paths))
	for _, p := range paths {
		sf, err := ReadShard(p)
		if err != nil {
			return nil, nil, err
		}
		shards = append(shards, sf)
	}

	ref := shards[0].Manifest
	byIndex := make(map[int]*ShardFile, len(shards))
	for _, sf := range shards {
		if !sf.Manifest.sameCampaign(ref) {
			return nil, shards, fmt.Errorf(
				"dist: %s belongs to a different campaign than %s (plan hash %s vs %s, seed %s vs %s)",
				sf.Path, shards[0].Path, sf.Manifest.PlanHash, ref.PlanHash,
				sf.Manifest.MasterSeed, ref.MasterSeed)
		}
		if dup := byIndex[sf.Manifest.Shard]; dup != nil {
			return nil, shards, fmt.Errorf("dist: shard %d appears twice (%s and %s)",
				sf.Manifest.Shard, dup.Path, sf.Path)
		}
		byIndex[sf.Manifest.Shard] = sf
		if !sf.Complete {
			state := "missing"
			if sf.HasSummary {
				state = "present but inconsistent with the records"
			}
			return nil, shards, fmt.Errorf(
				"dist: %s is incomplete (%d of %d records, summary %s) — rerun shard %d before merging",
				sf.Path, sf.Records, sf.Manifest.End-sf.Manifest.Start,
				state, sf.Manifest.Shard)
		}
	}
	if len(shards) != ref.Shards {
		missing := make([]int, 0, ref.Shards)
		for i := 0; i < ref.Shards; i++ {
			if byIndex[i] == nil {
				missing = append(missing, i)
			}
		}
		return nil, shards, fmt.Errorf("dist: campaign declares %d shards, got %d files (missing shard indices %v)",
			ref.Shards, len(shards), missing)
	}

	// Windows must tile [0, Runs) exactly.
	sort.Slice(shards, func(i, j int) bool { return shards[i].Manifest.Start < shards[j].Manifest.Start })
	next := 0
	for _, sf := range shards {
		if sf.Manifest.Start != next {
			return nil, shards, fmt.Errorf("dist: shard windows do not tile the campaign: expected start %d, %s covers [%d,%d)",
				next, sf.Path, sf.Manifest.Start, sf.Manifest.End)
		}
		next = sf.Manifest.End
	}
	if next != ref.Runs {
		return nil, shards, fmt.Errorf("dist: shard windows end at %d, campaign has %d runs", next, ref.Runs)
	}

	merged := &core.CampaignResult{Plan: ref.Plan}
	for _, sf := range shards {
		merged.MergeFrom(sf.Result)
	}
	return merged, shards, nil
}
