package dist

import "github.com/dessertlab/certify/internal/obs"

// Flight-recorder instrumentation for the artefact layer: how records
// batch into flushes on the write side, and how often reads get the
// indexed fast path vs the sequential fallback on the read side. All
// out-of-band — nothing here touches artefact bytes.
var (
	metRecords = obs.Default.NewCounter(
		"certify_dist_records_total",
		"Run records appended to JSONL shard artefacts.")
	metFlushBatch = obs.Default.NewHistogram(
		"certify_dist_flush_batch_records",
		"Run records made visible per JSONL flush (batch size).",
		obs.SizeBuckets)

	metDossierIndexedOpens = obs.Default.NewCounter(
		"certify_dist_dossier_indexed_opens_total",
		"Dossier opens that adopted a verified index footer.")
	metDossierFallbackScans = obs.Default.NewCounter(
		"certify_dist_dossier_fallback_scans_total",
		"Dossier opens or reads that fell back to a sequential scan.")
	metDossierIndexedReads = obs.Default.NewCounter(
		"certify_dist_dossier_indexed_reads_total",
		"Random-access record reads served through the index.")
)
