package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/sim"
)

// adaptPlan shortens a paper plan for the differential suite and
// optionally swaps its fault model by registry name.
func adaptPlan(base func() *core.TestPlan, fault string) *core.TestPlan {
	p := *base()
	p.Duration = 8 * sim.Second
	p.Name = p.Name + "-adapt"
	p.FaultName = fault
	return &p
}

// canonicalBytes renders the artefact at path in canonical form.
func canonicalBytes(t *testing.T, path string) []byte {
	t.Helper()
	d, err := OpenDossier(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var buf bytes.Buffer
	if err := WriteCanonical(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCertifiedPrefixDifferential is the tentpole's headline suite: for
// seeds × experiments × fault models, the adaptively-stopped artefact
// is byte-identical to a truncation of the full-N artefact — same
// record lines, same trace hashes, same index entries for every
// certified index, a manifest differing only by its stop identity
// block, and a canonical stream whose record section is the exact
// prefix of the full campaign's. A second adaptive execution
// canonicalises to the same bytes, so the stop decision itself is part
// of the deterministic replay.
func TestCertifiedPrefixDifferential(t *testing.T) {
	const n, widthBP = 18, 6000
	plans := []func() *core.TestPlan{core.PlanE1HVC, core.PlanE2Core1, core.PlanE3Fig3}
	fired := 0
	for _, base := range plans {
		for _, fault := range []string{"", "burst"} {
			for _, seed := range []uint64{2022, 7, 99} {
				plan := adaptPlan(base, fault)
				name := fmt.Sprintf("%s/%s/seed-%d", plan.Name, plan.EffectiveFaultName(), seed)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					fullSpec := &Spec{Plan: plan, Runs: n, MasterSeed: seed, Shards: 1, Mode: core.ModeDistribution}
					fullPath := filepath.Join(dir, "full.jsonl")
					if _, _, err := ExecuteShard(context.Background(), fullSpec, 0, 0, fullPath); err != nil {
						t.Fatal(err)
					}
					adSpec := &Spec{Plan: plan, Runs: n, MasterSeed: seed, Shards: 1, Mode: core.ModeDistribution,
						Stop: &core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: widthBP}}
					adPath := filepath.Join(dir, "adaptive.jsonl")
					res, _, err := ExecuteShard(context.Background(), adSpec, 0, 0, adPath)
					if err != nil {
						t.Fatal(err)
					}
					if res.Stop == nil {
						t.Fatal("adaptive execution returned no stop decision")
					}
					k := n
					if res.Stop.Fired {
						k = res.Stop.DecidedAt
						fired++
					}
					if res.Total() != k {
						t.Fatalf("adaptive aggregate holds %d runs, decision says %d", res.Total(), k)
					}

					dFull, err := OpenDossier(fullPath)
					if err != nil {
						t.Fatal(err)
					}
					defer dFull.Close()
					dAd, err := OpenDossier(adPath)
					if err != nil {
						t.Fatal(err)
					}
					defer dAd.Close()

					// Manifest: identical modulo the stop identity block.
					ma, mf := dAd.Manifest(), dFull.Manifest()
					if ma.Stop == nil || ma.Stop.Identity() != adSpec.Stop.Identity() {
						t.Fatalf("adaptive manifest stop block = %+v, want identity %s", ma.Stop, adSpec.Stop.Identity())
					}
					ma.Stop = nil
					if ma != mf {
						t.Fatalf("manifests differ beyond the stop block:\n  adaptive %+v\n  full     %+v", ma, mf)
					}

					// Every certified record and its index entry, byte for byte.
					if got := len(dAd.Entries()); got != k {
						t.Fatalf("adaptive artefact holds %d records, want the %d-run prefix", got, k)
					}
					for i := 0; i < k; i++ {
						// The stop block lengthens the manifest line, so raw
						// file offsets shift; everything else in the entry is
						// evidence identity and must match exactly.
						ea, ef := dAd.Entries()[i], dFull.Entries()[i]
						ea.Offset, ef.Offset = 0, 0
						if ea != ef {
							t.Fatalf("run %d: index entry %+v adaptive, %+v full", i, ea, ef)
						}
						ra, err := dAd.RawRun(i)
						if err != nil {
							t.Fatal(err)
						}
						rf, err := dFull.RawRun(i)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(ra, rf) {
							t.Fatalf("run %d record differs:\n  adaptive %s\n  full     %s", i, ra, rf)
						}
					}

					// Canonical streams: the adaptive record section is the
					// exact byte prefix of the full campaign's.
					canAd := canonicalBytes(t, adPath)
					canFull := canonicalBytes(t, fullPath)
					adLines := bytes.SplitAfter(canAd, []byte("\n"))
					fullLines := bytes.SplitAfter(canFull, []byte("\n"))
					if len(adLines) < k+2 || len(fullLines) < n+2 {
						t.Fatalf("canonical shapes: adaptive %d lines, full %d lines", len(adLines), len(fullLines))
					}
					for i := 1; i <= k; i++ {
						if !bytes.Equal(adLines[i], fullLines[i]) {
							t.Fatalf("canonical record line %d differs", i)
						}
					}

					// Replay determinism: a fresh adaptive execution stops at
					// the same index and canonicalises to the same bytes.
					againPath := filepath.Join(dir, "adaptive-again.jsonl")
					res2, _, err := ExecuteShard(context.Background(), adSpec, 0, 0, againPath)
					if err != nil {
						t.Fatal(err)
					}
					if res2.Stop == nil || *res2.Stop != *res.Stop {
						t.Fatalf("replay stop decision %+v, first execution %+v", res2.Stop, res.Stop)
					}
					if !bytes.Equal(canonicalBytes(t, againPath), canAd) {
						t.Fatal("replayed adaptive artefact canonicalises to different bytes")
					}
				})
			}
		}
	}
	// The suite must actually exercise early stopping, not just the
	// max-N guard: the 60pp target is loose enough that most cells fire.
	if fired < len(plans)*2*3/2 {
		t.Fatalf("stop fired in only %d of %d cells — width target too strict for the suite", fired, len(plans)*2*3)
	}
}

// TestAdaptiveMergeShardInvariance: the certified prefix is shard-count
// independent. Only the shard owning index 0 observes the policy live;
// the merge replays the decision over the globally ordered union and
// truncates every other shard's surplus — landing on the same decided
// index, the same distribution and the same per-run hashes as the
// single-process adaptive campaign, for K ∈ {1, 3, 8}.
func TestAdaptiveMergeShardInvariance(t *testing.T) {
	const runs, seed = 18, uint64(2022)
	plan := shortE3()
	stop := &core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 6000}

	ref, _, err := ExecuteShard(context.Background(),
		&Spec{Plan: plan, Runs: runs, MasterSeed: seed, Shards: 1, Mode: core.ModeDistribution, Stop: stop},
		0, 0, filepath.Join(t.TempDir(), "ref.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stop == nil || !ref.Stop.Fired || ref.Stop.DecidedAt >= runs {
		t.Fatalf("reference decision %+v — want an early stop to make the test meaningful", ref.Stop)
	}

	for _, k := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards-%d", k), func(t *testing.T) {
			spec := &Spec{Plan: plan, Runs: runs, MasterSeed: seed, Shards: k, Mode: core.ModeDistribution, Stop: stop}
			merged, _ := runSharded(t, spec, t.TempDir())
			if merged.Stop == nil || *merged.Stop != *ref.Stop {
				t.Fatalf("merged decision %+v, reference %+v", merged.Stop, ref.Stop)
			}
			if merged.Total() != ref.Total() {
				t.Fatalf("merged aggregate %d runs, reference %d", merged.Total(), ref.Total())
			}
			for _, o := range core.AllOutcomes() {
				if merged.Count(o) != ref.Count(o) {
					t.Fatalf("count(%v) = %d merged, %d reference", o, merged.Count(o), ref.Count(o))
				}
			}
		})
	}
}

// TestAdaptiveMergeRejectsTamperedStop: a shard artefact claiming the
// policy certified a different prefix than the replay derives is
// corrupt evidence, not a mergeable file.
func TestAdaptiveMergeRejectsTamperedStop(t *testing.T) {
	const runs, seed = 18, uint64(2022)
	plan := shortE3()
	stop := &core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 6000}
	spec := &Spec{Plan: plan, Runs: runs, MasterSeed: seed, Shards: 1, Mode: core.ModeDistribution, Stop: stop}

	honest, _, err := ExecuteShard(context.Background(), spec, 0, 0, filepath.Join(t.TempDir(), "honest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if honest.Stop == nil || !honest.Stop.Fired || honest.Stop.DecidedAt < 2 {
		t.Fatalf("need an early stop past index 1 to truncate, got %+v", honest.Stop)
	}

	// Fabricate a self-consistent artefact that stops one run short of
	// the true decision: records, summary counts and the stop stamp all
	// agree with each other — only the policy replay can catch it.
	short := honest.Stop.DecidedAt - 1
	sh, err := spec.Shard(0)
	if err != nil {
		t.Fatal(err)
	}
	tamperPath := filepath.Join(t.TempDir(), "tampered.jsonl")
	w, err := CreateJSONL(tamperPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteManifest(sh.Manifest()); err != nil {
		t.Fatal(err)
	}
	partial := &core.CampaignResult{Plan: plan.Name}
	c := &core.Campaign{Plan: plan, Runs: short, MasterSeed: seed, Mode: core.ModeDistribution,
		OnRun: func(index int, r *core.RunResult) {
			w.OnRun(index, r)
			partial.AddSample(r.Outcome(), len(r.Injections), r.DetectionLatency)
		}}
	if _, err := c.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSummary(partial); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sf, err := ReadShard(tamperPath)
	if err != nil {
		t.Fatalf("tampered artefact must read as a complete shard (self-consistent): %v", err)
	}
	if !sf.Complete || sf.Result.Stop == nil || sf.Result.Stop.DecidedAt != short {
		t.Fatalf("fabrication failed: complete=%v stop=%+v", sf.Complete, sf.Result.Stop)
	}
	if _, _, err := Merge([]string{tamperPath}); !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("merge of tampered stop = %v, want ErrCampaignMismatch", err)
	}
}

// TestSpecRoundTripAdaptive: the stop and stratify identity survive the
// spec wire format, and SameCampaign separates campaigns by them.
func TestSpecRoundTripAdaptive(t *testing.T) {
	spec := &Spec{
		Plan: shortE3(), Runs: 18, MasterSeed: 2022, Shards: 3, Mode: core.ModeDistribution,
		Stop:     &core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 500, MinRuns: 4},
		Stratify: true,
	}
	var buf bytes.Buffer
	if err := EncodeSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.SameCampaign(back) {
		t.Fatal("round-tripped spec is a different campaign")
	}
	if back.Stop == nil || back.Stop.Identity() != spec.Stop.Identity() || !back.Stratify {
		t.Fatalf("stop/stratify lost in transit: %+v stratify=%v", back.Stop, back.Stratify)
	}
	widened := *spec
	widened.Stop = &core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 1000, MinRuns: 4}
	if spec.SameCampaign(&widened) {
		t.Fatal("different CI width treated as the same campaign")
	}
	uniform := *spec
	uniform.Stratify = false
	if spec.SameCampaign(&uniform) {
		t.Fatal("stratified and uniform campaigns treated as the same")
	}
	fixed := *spec
	fixed.Stop = nil
	if spec.SameCampaign(&fixed) {
		t.Fatal("adaptive and fixed-N campaigns treated as the same")
	}
}

// TestAdaptiveGoldenSeed2022Unchanged is the regression pin: a CI
// target the pinned Figure-3 campaign cannot meet (1pp at N=40) leaves
// the golden campaign untouched — all 40 runs execute, the decision
// records the max-N guard (not a fire), and the distribution is the
// seed-2022 golden split 23 correct / 1 inconsistent / 16 panic-park
// with 56 injections.
func TestAdaptiveGoldenSeed2022Unchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	spec := &Spec{
		Plan: core.PlanE3Fig3(), Runs: 40, MasterSeed: 2022, Shards: 1, Mode: core.ModeDistribution,
		Stop: &core.StopSpec{Policy: core.StopPolicyCIWidth, WidthBP: 100},
	}
	path := filepath.Join(t.TempDir(), "golden.jsonl")
	res, _, err := ExecuteShard(context.Background(), spec, 0, 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop == nil || res.Stop.Fired || res.Stop.DecidedAt != 40 {
		t.Fatalf("decision %+v, want max-N guard at 40", res.Stop)
	}
	want := map[core.Outcome]int{
		core.OutcomeCorrect:      23,
		core.OutcomeInconsistent: 1,
		core.OutcomePanicPark:    16,
	}
	for _, o := range core.AllOutcomes() {
		if res.Count(o) != want[o] {
			t.Fatalf("count(%v) = %d, want %d", o, res.Count(o), want[o])
		}
	}
	if res.Total() != 40 || res.InjectionsTotal() != 56 {
		t.Fatalf("total=%d injections=%d, want 40/56", res.Total(), res.InjectionsTotal())
	}
	sf, err := ReadShard(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sf.Complete || sf.Records != 40 {
		t.Fatalf("artefact complete=%v records=%d, want a full 40-run file", sf.Complete, sf.Records)
	}
	if sf.Result.Stop == nil || sf.Result.Stop.Fired || sf.Result.Stop.DecidedAt != 40 {
		t.Fatalf("artefact stop stamp %+v, want not-fired at 40", sf.Result.Stop)
	}
}
