package dist

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dessertlab/certify/internal/core"
)

// TestJSONLCloseRacesTimedFlush pins the timed-flush lifecycle: Close
// stops the deadline timer under the writer mutex, so a flush armed just
// before Close never lands after the gzip member is finalised and the
// file closed. The writer is closed while appenders are still running —
// under -race this caught the timer firing into a finalised writer;
// appends that lose the race surface as the writer's sticky error, never
// as a panic or a torn artefact.
func TestJSONLCloseRacesTimedFlush(t *testing.T) {
	for _, name := range []string{"shard.jsonl", "shard.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			for iter := 0; iter < 25; iter++ {
				path := filepath.Join(t.TempDir(), name)
				w, err := CreateJSONL(path)
				if err != nil {
					t.Fatal(err)
				}
				// A tight interval keeps a deadline flush perpetually in
				// flight, maximising the chance Close overlaps one.
				w.SetFlushInterval(time.Millisecond)
				if err := w.WriteManifest(Manifest{Type: recordManifest, Schema: SchemaVersion}); err != nil {
					t.Fatal(err)
				}

				rec := &core.RunResult{Seed: 1, DetectionLatency: -1}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				for g := 0; g < 4; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							w.OnRun(g*100000+i, rec)
						}
					}(g)
				}

				// Let at least one timer deadline pass with appends live,
				// then close mid-stream.
				time.Sleep(2 * time.Millisecond)
				if err := w.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				close(stop)
				wg.Wait()
				// Second close after racing appends must be a no-op
				// returning the (possibly sticky) error, not a panic.
				_ = w.Close()
			}
		})
	}
}
