package dist

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/dessertlab/certify/internal/core"
)

// SchemaVersion is the JSONL artefact schema generation. Readers refuse
// files written by a newer schema; bump it on any incompatible change to
// the record shapes below.
const SchemaVersion = 1

// Line discriminators (the "type" field every record leads with). Type
// must stay the FIRST field of every record struct: the fan-out
// supervisor's Tail classifies live artefact lines by their
// `{"type":"..."` prefix without decoding JSON.
const (
	recordManifest = "manifest"
	recordRun      = "run"
	recordSummary  = "summary"
)

// Manifest is the first line of a shard artefact file: everything a
// merge needs to decide whether this file belongs to the campaign it is
// assembling — and to refuse it loudly when it does not.
type Manifest struct {
	Type       string `json:"type"`        // "manifest"
	Schema     int    `json:"schema"`      // SchemaVersion
	Plan       string `json:"plan"`        // plan name, for humans
	PlanHash   string `json:"plan_hash"`   // hex core.TestPlan.Hash — the machine check
	MasterSeed string `json:"master_seed"` // hex
	Runs       int    `json:"runs"`        // total campaign runs across all shards
	Shards     int    `json:"shards"`      // shard count K
	Shard      int    `json:"shard"`       // this file's shard index
	Start      int    `json:"start"`       // first global run index, inclusive
	End        int    `json:"end"`         // last global run index, exclusive
	Mode       string `json:"mode"`        // evidence retention mode

	// FaultModel is the registry name of the fault model the shard ran.
	// Omitted (and read back as "") by pre-registry writers; "" and
	// "register" are the same identity, so old artefacts stay mergeable.
	FaultModel string `json:"fault_model,omitempty"`

	// Stop is the adaptive stop policy the campaign runs under, nil for
	// fixed-N campaigns. Like the fault model it is campaign identity:
	// two artefacts whose stop specs differ certify different prefixes
	// and must never merge or answer for each other in the result cache.
	// Absent in pre-adaptive artefacts (read back as nil = fixed-N), so
	// old files stay mergeable and fixed-N manifests byte-identical.
	Stop *core.StopSpec `json:"stop,omitempty"`

	// Stratify records that runs rotate over register-class strata
	// (core.StratifyPlan): run i injects into stratum i mod 3. Campaign
	// identity for the same reason — a stratified run sequence is a
	// different experiment than a uniform one.
	Stratify bool `json:"stratify,omitempty"`
}

// faultModelID normalises the manifest's fault-model identity: absent
// (pre-registry artefact) means the default register model.
func (m Manifest) faultModelID() string {
	if m.FaultModel == "" {
		return core.DefaultFaultModelName
	}
	return m.FaultModel
}

// matches reports whether two manifests describe the same shard of the
// same campaign. The plan hash — not the name — is the identity check.
func (m Manifest) matches(o Manifest) bool {
	return m.Schema == o.Schema && m.PlanHash == o.PlanHash &&
		m.MasterSeed == o.MasterSeed && m.Runs == o.Runs &&
		m.Shards == o.Shards && m.Shard == o.Shard &&
		m.Start == o.Start && m.End == o.End && m.Mode == o.Mode &&
		m.faultModelID() == o.faultModelID() &&
		m.Stop.Identity() == o.Stop.Identity() && m.Stratify == o.Stratify
}

// diff names the fields where m and o disagree, for error messages that
// point at the actual mismatch instead of a generic refusal.
func (m Manifest) diff(o Manifest) string {
	var parts []string
	add := func(field string, a, b any) {
		if a != b {
			parts = append(parts, fmt.Sprintf("%s %v vs %v", field, a, b))
		}
	}
	add("schema", m.Schema, o.Schema)
	add("plan hash", m.PlanHash, o.PlanHash)
	add("master seed", m.MasterSeed, o.MasterSeed)
	add("runs", m.Runs, o.Runs)
	add("shards", m.Shards, o.Shards)
	add("shard index", m.Shard, o.Shard)
	add("window start", m.Start, o.Start)
	add("window end", m.End, o.End)
	add("mode", m.Mode, o.Mode)
	add("fault model", m.faultModelID(), o.faultModelID())
	add("stop policy", m.Stop.Identity(), o.Stop.Identity())
	add("stratify", m.Stratify, o.Stratify)
	if len(parts) == 0 {
		return "identical manifests"
	}
	return strings.Join(parts, ", ")
}

// sameCampaign reports whether two manifests (of different shards) come
// from the same campaign spec.
func (m Manifest) sameCampaign(o Manifest) bool {
	return m.Schema == o.Schema && m.PlanHash == o.PlanHash &&
		m.MasterSeed == o.MasterSeed && m.Runs == o.Runs &&
		m.Shards == o.Shards && m.Mode == o.Mode &&
		m.faultModelID() == o.faultModelID() &&
		m.Stop.Identity() == o.Stop.Identity() && m.Stratify == o.Stratify
}

// campaignDiff names the campaign-identity fields where m and o disagree
// (shard-window fields excluded — those legitimately differ between
// shards of one campaign). Empty when sameCampaign would be true.
func (m Manifest) campaignDiff(o Manifest) string {
	var parts []string
	add := func(field string, a, b any) {
		if a != b {
			parts = append(parts, fmt.Sprintf("%s %v vs %v", field, a, b))
		}
	}
	add("schema", m.Schema, o.Schema)
	add("plan hash", m.PlanHash, o.PlanHash)
	add("master seed", m.MasterSeed, o.MasterSeed)
	add("runs", m.Runs, o.Runs)
	add("shards", m.Shards, o.Shards)
	add("mode", m.Mode, o.Mode)
	add("fault model", m.faultModelID(), o.faultModelID())
	add("stop policy", m.Stop.Identity(), o.Stop.Identity())
	add("stratify", m.Stratify, o.Stratify)
	return strings.Join(parts, ", ")
}

// RunRecord is one line per classified run — the per-run evidence the
// paper's rig logged, reduced to what Distribution mode can afford to
// keep plus whatever the retention mode captured. Transcripts appear
// only when the shard ran in full mode; the streaming writer never
// re-enables transcript retention on its own.
type RunRecord struct {
	Type        string   `json:"type"`  // "run"
	Index       int      `json:"index"` // global run index in [Start, End)
	Seed        string   `json:"seed"`  // hex per-run seed
	Outcome     string   `json:"outcome"`
	Injections  int      `json:"injections"`
	DetectionNS int64    `json:"detection_latency_ns"` // -1 = nothing detected
	HorizonNS   int64    `json:"horizon_ns"`
	CellLines   int      `json:"cell_console_lines"`
	TraceHash   string   `json:"trace_hash"` // hex sim.Trace.Hash
	Evidence    []string `json:"evidence,omitempty"`
	Root        string   `json:"root_transcript,omitempty"` // full mode only
	Cell        string   `json:"cell_transcript,omitempty"` // full mode only
}

// Summary is the footer line: the shard's aggregate distribution. Its
// presence is the completion marker — a file without a summary is a
// crashed shard and is rerun, not merged.
type Summary struct {
	Type         string         `json:"type"` // "summary"
	Runs         int            `json:"runs"`
	Distribution map[string]int `json:"distribution"`
	Injections   int            `json:"injections_total"`
	MeanDetectNS int64          `json:"mean_detection_latency_ns"`

	// DecidedAt / StopFired record the adaptive stop decision for shards
	// run under a stop policy (manifest Stop != nil): the shard's
	// certified prefix ends at global index DecidedAt, and StopFired
	// says the policy halted before the shard's window end. Both are
	// pure functions of the manifest window and the record count
	// (stampStop), so a canonical rewrite reproduces them byte-for-byte.
	// Omitted for fixed-N shards, keeping their footers byte-identical
	// to the pre-adaptive format.
	DecidedAt int  `json:"decided_at,omitempty"`
	StopFired bool `json:"stop_fired,omitempty"`
}

// stampStop derives the summary's stop-decision fields from the
// manifest window and the number of run records the artefact holds.
// DecidedAt = Start + records; StopFired means the policy fired inside
// the window (records < window) — a shard whose target was only met
// exactly at the window end counts as not-fired, the same convention
// core.Campaign uses, so the stamp never disagrees with the in-memory
// decision. Fixed-N artefacts (m.Stop == nil) are left unstamped.
func stampStop(s *Summary, m Manifest, records int) {
	if m.Stop == nil {
		return
	}
	s.DecidedAt = m.Start + records
	s.StopFired = records < m.End-m.Start
}

// DefaultFlushInterval is the batching window CreateJSONL installs: run
// records are pushed through to the file either when a batch fills or
// when a record has been sitting unflushed this long — the liveness
// contract dist.Tail's consumers (the fan-out stall watchdog, progress
// display) rely on. Per-record flushing cost a measurable share of the
// OnRun campaign gap (ROADMAP); batching closes it without letting the
// artefact lag the classification stream by more than this interval.
const DefaultFlushInterval = 25 * time.Millisecond

// flushBatch caps how many run records may sit unflushed regardless of
// the timer: a full batch flushes immediately, so high-rate campaigns
// never buffer more than this many runs.
const flushBatch = 64

// JSONLWriter streams campaign evidence as JSON Lines: one manifest,
// one record per run as it classifies, one summary footer. Its OnRun
// method plugs directly into core.Campaign.OnRun; workers call it
// concurrently, so every write is serialised under an internal mutex.
// Record order in the file is completion order — consumers key on the
// index field, never on line position.
//
// Records are encoded by one persistent json.Encoder per writer (no
// per-record buffer copy) and flushed in batches: immediately when
// flushBatch records are pending, otherwise by a timer within the flush
// interval — see SetFlushInterval.
type JSONLWriter struct {
	mu   sync.Mutex
	w    *bufio.Writer
	enc  *json.Encoder // persistent line encoder over lineCount → w
	gz   *gzip.Writer  // non-nil for .gz artefacts; closed before file
	file *os.File      // nil when wrapping a caller-owned io.Writer
	err  error         // first write error; OnRun cannot return one
	runs int
	man  Manifest // header, kept for the summary's stop stamp
	// haveMan guards man: a writer used without WriteManifest (tests,
	// ad-hoc streams) must not stamp from a zero manifest.
	haveMan bool

	// lineCount meters the uncompressed line stream (the encoder's
	// output), giving every record its byte offset for the index footer.
	lineCount *countingWriter
	// fileCount meters compressed bytes reaching the file — the gzip
	// restart offsets. Nil for plain artefacts.
	fileCount *countingWriter
	// idx accumulates the index footer; nil for caller-owned writers,
	// which stay footer-free (the pre-index format).
	idx *indexBuilder

	flushEvery time.Duration // 0 = flush every record synchronously
	pending    int           // run records since the last flush
	timer      *time.Timer   // deadline-flush timer, reused across batches
	timerArmed bool          // the timer is scheduled to fire
	closed     bool
}

// countingWriter meters bytes passed through to its sink.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewJSONLWriter wraps a caller-owned writer (Close flushes but does not
// close it). Caller-owned writers flush synchronously per record unless
// SetFlushInterval arms batching, and never append an index footer —
// they produce the pre-index artefact format.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	jw := &JSONLWriter{w: bufio.NewWriter(w)}
	jw.lineCount = &countingWriter{w: jw.w}
	jw.enc = json.NewEncoder(jw.lineCount)
	return jw
}

// SetFlushInterval selects the batching window: d > 0 lets run records
// accumulate until a batch fills or a timer fires d after the first
// unflushed record; d == 0 restores synchronous per-record flushing.
// Call before the first OnRun.
func (jw *JSONLWriter) SetFlushInterval(d time.Duration) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if d < 0 {
		d = 0
	}
	jw.flushEvery = d
}

// IsGzipPath reports whether path names a gzip-compressed artefact —
// the ".gz" suffix is the write-side contract (readers additionally
// sniff the magic bytes, so a renamed file still parses).
func IsGzipPath(path string) bool { return strings.HasSuffix(path, ".gz") }

// CreateJSONL creates (or truncates) the artefact file at path. A ".gz"
// suffix selects transparent gzip compression: archive-scale campaigns
// keep per-run evidence at a fraction of the plain-text footprint, and
// ReadShard/Merge decompress on the fly.
//
// File-backed writers index as they write: every run record's offset,
// outcome, trace hash, injection count and detection latency is
// recorded, and Close appends the index footer that OpenDossier uses
// for random access. Gzip artefacts additionally end a gzip member at
// every batch flush, so each flush point doubles as a random-access
// restart offset (gzip decoding cannot otherwise start mid-stream).
func CreateJSONL(path string) (*JSONLWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	jw := &JSONLWriter{file: f, flushEvery: DefaultFlushInterval, idx: &indexBuilder{}}
	if IsGzipPath(path) {
		jw.fileCount = &countingWriter{w: f}
		jw.gz = gzip.NewWriter(jw.fileCount)
		jw.w = bufio.NewWriter(jw.gz)
		jw.idx.restarts = []restart{{comp: 0, uncomp: 0}}
	} else {
		jw.w = bufio.NewWriter(f)
	}
	jw.lineCount = &countingWriter{w: jw.w}
	jw.enc = json.NewEncoder(jw.lineCount)
	return jw, nil
}

// writeLine encodes v and appends it as one line through the writer's
// persistent encoder (which terminates each value with '\n', exactly the
// bytes json.Marshal+newline produced). Callers hold mu.
func (jw *JSONLWriter) writeLine(v any) error {
	if jw.err != nil {
		return jw.err
	}
	if err := jw.enc.Encode(v); err != nil {
		jw.err = err
		return err
	}
	return nil
}

// flushLocked pushes buffered bytes through to the file so the lines
// written so far are visible to a tailing supervisor and survive a
// kill. For gzip artefacts every flush ends the current gzip member
// and starts a new one (a few bytes of header/trailer per batch): the
// member boundary buys the same liveness and torn-file recovery a
// flate sync point did, and doubles as a random-access restart offset
// — decoding can start at any member boundary without the stream
// history a mid-member seek would need. Callers hold mu.
func (jw *JSONLWriter) flushLocked() {
	if jw.pending > 0 {
		metFlushBatch.Observe(float64(jw.pending))
	}
	jw.pending = 0
	if err := jw.w.Flush(); err != nil {
		if jw.err == nil {
			jw.err = err
		}
		return
	}
	if jw.gz != nil {
		jw.closeMemberLocked()
	}
}

// closeMemberLocked ends the current gzip member (when it holds any
// bytes) and records the next member's restart point. Line boundaries
// always coincide with flushes, so no record line ever straddles a
// member boundary — the invariant the dossier's random-access reads
// rely on. Callers hold mu and have flushed jw.w.
func (jw *JSONLWriter) closeMemberLocked() {
	last := jw.idx.restarts[len(jw.idx.restarts)-1]
	if jw.lineCount.n == last.uncomp {
		return // nothing written since the member opened
	}
	if err := jw.gz.Close(); err != nil {
		if jw.err == nil {
			jw.err = err
		}
		return
	}
	jw.gz.Reset(jw.fileCount)
	jw.idx.restarts = append(jw.idx.restarts, restart{comp: jw.fileCount.n, uncomp: jw.lineCount.n})
}

// noteRecordLocked applies the batching policy after a run record was
// appended: flush when the batch is full (or batching is off), else arm
// the deadline timer that bounds how long the record may stay invisible
// to a tail. Callers hold mu.
func (jw *JSONLWriter) noteRecordLocked() {
	jw.pending++
	if jw.flushEvery <= 0 || jw.pending >= flushBatch {
		jw.flushLocked()
		return
	}
	if !jw.timerArmed {
		jw.timerArmed = true
		if jw.timer == nil {
			jw.timer = time.AfterFunc(jw.flushEvery, jw.timedFlush)
		} else {
			jw.timer.Reset(jw.flushEvery)
		}
	}
}

// timedFlush is the deadline flush: whatever accumulated since the
// timer was armed becomes visible now, keeping the tail's liveness
// contract at batch granularity.
func (jw *JSONLWriter) timedFlush() {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	jw.timerArmed = false
	if jw.closed || jw.pending == 0 {
		return
	}
	jw.flushLocked()
}

// WriteManifest emits the header line. Call it exactly once, first.
func (jw *JSONLWriter) WriteManifest(m Manifest) error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	jw.man, jw.haveMan = m, true
	if err := jw.writeLine(m); err != nil {
		return err
	}
	jw.flushLocked()
	return jw.err
}

// OnRun is the campaign streaming hook: it renders r as a RunRecord and
// appends it. Write errors are sticky and surface via Err/Close — the
// campaign callback has nowhere to return them.
func (jw *JSONLWriter) OnRun(index int, r *core.RunResult) {
	rec := RunRecord{
		Type:        recordRun,
		Index:       index,
		Seed:        fmt.Sprintf("%#x", r.Seed),
		Outcome:     r.Outcome().String(),
		Injections:  len(r.Injections),
		DetectionNS: int64(r.DetectionLatency),
		HorizonNS:   int64(r.Horizon),
		CellLines:   r.CellLines,
		TraceHash:   fmt.Sprintf("%#x", r.TraceHash),
		Evidence:    r.Verdict.Evidence,
		Root:        r.RootTranscript,
		Cell:        r.CellTranscript,
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	start := jw.lineCount.n
	if jw.writeLine(rec) == nil {
		jw.runs++
		metRecords.Inc()
		if jw.idx != nil {
			jw.idx.entries = append(jw.idx.entries, IndexEntry{
				Index:       index,
				Offset:      start,
				Length:      int(jw.lineCount.n - start),
				Outcome:     rec.Outcome,
				Injections:  rec.Injections,
				TraceHash:   r.TraceHash,
				DetectionNS: rec.DetectionNS,
			})
		}
		jw.noteRecordLocked()
	}
}

// summaryFor renders a campaign aggregate as the summary footer record.
// Shared by the streaming writer and the canonical re-serialisation
// (WriteCanonical), so a rebuilt footer is byte-identical to a written
// one.
func summaryFor(res *core.CampaignResult) Summary {
	dist := make(map[string]int, len(core.AllOutcomes()))
	for _, o := range core.AllOutcomes() {
		dist[o.String()] = res.Count(o)
	}
	return Summary{
		Type:         recordSummary,
		Runs:         res.Total(),
		Distribution: dist,
		Injections:   res.InjectionsTotal(),
		MeanDetectNS: int64(res.MeanDetectionLatency()),
	}
}

// WriteSummary emits the completion footer from the shard's aggregate
// and flushes immediately — the completion marker must not sit in a
// batch.
func (jw *JSONLWriter) WriteSummary(res *core.CampaignResult) error {
	s := summaryFor(res)
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.haveMan {
		stampStop(&s, jw.man, jw.runs)
	}
	if err := jw.writeLine(s); err != nil {
		return err
	}
	if jw.idx != nil {
		jw.idx.summary = true
	}
	jw.flushLocked()
	return jw.err
}

// Runs returns how many run records were written.
func (jw *JSONLWriter) Runs() int {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.runs
}

// Err returns the first write error, if any.
func (jw *JSONLWriter) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}

// Close flushes, appends the index footer (file-backed writers only)
// and closes the file, returning the first error seen anywhere in the
// stream. The gzip layer, when present, is finalised between the
// buffer flush and the footer — only then does the artefact carry a
// valid trailer. A writer that hit an earlier error skips the footer:
// the artefact stays readable through the sequential fallback rather
// than carrying an index that may not match its bytes.
func (jw *JSONLWriter) Close() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.closed && jw.file == nil {
		return jw.err // second Close: everything already finalised
	}
	jw.closed = true
	// Stop the deadline timer under the mutex: a flush scheduled just
	// before Close must not land after the buffers are finalised and the
	// gzip member ended. Stop can miss a timer that already fired and is
	// waiting on mu — the closed flag makes that late timedFlush a no-op.
	if jw.timer != nil {
		jw.timer.Stop()
		jw.timerArmed = false
	}
	jw.pending = 0
	if err := jw.w.Flush(); err != nil && jw.err == nil {
		jw.err = err
	}
	if jw.gz != nil {
		if jw.idx != nil {
			jw.closeMemberLocked()
		} else if err := jw.gz.Close(); err != nil && jw.err == nil {
			jw.err = err
		}
	}
	if jw.idx != nil && jw.file != nil && jw.err == nil {
		jw.writeFooterLocked()
	}
	jw.gz = nil
	if jw.file != nil {
		if err := jw.file.Close(); err != nil && jw.err == nil {
			jw.err = err
		}
		jw.file = nil
	}
	return jw.err
}

// writeFooterLocked appends the index footer after the line stream:
// the footer block plus the fixed trailer that locates it (plain), or
// a footer gzip member plus the hand-crafted trailer member (gzip).
// Callers hold mu; all line data has been flushed through to the file.
func (jw *JSONLWriter) writeFooterLocked() {
	ix := &shardIndex{entries: jw.idx.entries, summary: jw.idx.summary}
	if jw.fileCount != nil {
		// Drop the restart point that would name the footer member
		// itself: only points inside the line stream are useful.
		for _, r := range jw.idx.restarts {
			if r.uncomp < jw.lineCount.n {
				ix.restarts = append(ix.restarts, r)
			}
		}
	}
	block := encodeFooter(ix)
	var err error
	if jw.fileCount != nil {
		footerOff := jw.fileCount.n
		jw.gz.Reset(jw.fileCount)
		if _, err = jw.gz.Write(block); err == nil {
			err = jw.gz.Close()
		}
		if err == nil {
			_, err = jw.file.Write(encodeGzipTrailer(footerOff, jw.fileCount.n-footerOff))
		}
	} else {
		footerOff := jw.lineCount.n
		if _, err = jw.file.Write(block); err == nil {
			_, err = jw.file.Write(encodePlainTrailer(footerOff, int64(len(block))))
		}
	}
	if err != nil && jw.err == nil {
		jw.err = err
	}
}
