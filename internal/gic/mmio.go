package gic

import "fmt"

// GICv2 distributor register offsets (subset exercised by the guests).
// Guest writes to these trap into the hypervisor (stage-2 fault), which
// validates them against the cell's interrupt assignment and forwards the
// permitted ones here — the exact path Jailhouse's irqchip emulation takes
// and the dominant source of ArchHandleTrap activations in the golden runs.
const (
	GICDCtlr       = 0x000
	GICDTyper      = 0x004
	GICDIidr       = 0x008
	GICDISEnabler  = 0x100 // set-enable, 1 bit per IRQ, 32 IRQs per word
	GICDICEnabler  = 0x180 // clear-enable
	GICDISPendr    = 0x200 // set-pending
	GICDICPendr    = 0x280 // clear-pending
	GICDIPriorityr = 0x400 // priority, 1 byte per IRQ
	GICDITargetsr  = 0x800 // targets, 1 byte per IRQ (SPIs)
	GICDICfgr      = 0xC00 // trigger configuration
	GICDSgir       = 0xF00 // SGI generation
)

// RegionSize is the size of the distributor MMIO window.
const RegionSize = 0x1000

// ErrBadOffset is returned for accesses outside the modelled registers.
type ErrBadOffset struct {
	Offset uint64
	Write  bool
}

// Error implements error.
func (e *ErrBadOffset) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("gic: unhandled distributor %s at offset %#x", op, e.Offset)
}

// ReadReg performs a 32-bit distributor register read at the given offset.
func (d *Distributor) ReadReg(offset uint64) (uint32, error) {
	switch {
	case offset == GICDCtlr:
		if d.ctlr {
			return 1, nil
		}
		return 0, nil
	case offset == GICDTyper:
		// ITLinesNumber = MaxIRQ/32 - 1; CPUNumber = numCPUs-1.
		return uint32(MaxIRQ/32-1) | uint32(d.numCPUs-1)<<5, nil
	case offset == GICDIidr:
		return 0x0200043B, nil // GIC-400, ARM implementer
	case offset >= GICDISEnabler && offset < GICDISEnabler+uint64(MaxIRQ/8):
		return d.enableWord(int(offset-GICDISEnabler) / 4), nil
	case offset >= GICDICEnabler && offset < GICDICEnabler+uint64(MaxIRQ/8):
		return d.enableWord(int(offset-GICDICEnabler) / 4), nil
	case offset >= GICDIPriorityr && offset < GICDIPriorityr+uint64(MaxIRQ):
		base := int(offset - GICDIPriorityr)
		var v uint32
		for i := 0; i < 4; i++ {
			if base+i < MaxIRQ {
				v |= uint32(d.priority[base+i]) << (8 * uint(i))
			}
		}
		return v, nil
	case offset >= GICDITargetsr && offset < GICDITargetsr+uint64(MaxIRQ):
		base := int(offset - GICDITargetsr)
		var v uint32
		for i := 0; i < 4; i++ {
			if base+i < MaxIRQ {
				v |= uint32(d.targets[base+i]) << (8 * uint(i))
			}
		}
		return v, nil
	case offset >= GICDICfgr && offset < GICDICfgr+uint64(MaxIRQ/4):
		return 0, nil // trigger config reads back as level
	default:
		return 0, &ErrBadOffset{Offset: offset}
	}
}

func (d *Distributor) enableWord(word int) uint32 {
	var v uint32
	for bit := 0; bit < 32; bit++ {
		id := word*32 + bit
		if id < MaxIRQ && d.enabled[id] {
			v |= 1 << uint(bit)
		}
	}
	return v
}

// WriteReg performs a 32-bit distributor register write.
func (d *Distributor) WriteReg(offset uint64, value uint32, srcCPU int) error {
	switch {
	case offset == GICDCtlr:
		d.ctlr = value&1 != 0
		return nil
	case offset >= GICDISEnabler && offset < GICDISEnabler+uint64(MaxIRQ/8):
		word := int(offset-GICDISEnabler) / 4
		for bit := 0; bit < 32; bit++ {
			if value&(1<<uint(bit)) != 0 {
				d.EnableIRQ(word*32 + bit)
			}
		}
		return nil
	case offset >= GICDICEnabler && offset < GICDICEnabler+uint64(MaxIRQ/8):
		word := int(offset-GICDICEnabler) / 4
		for bit := 0; bit < 32; bit++ {
			if value&(1<<uint(bit)) != 0 {
				d.DisableIRQ(word*32 + bit)
			}
		}
		return nil
	case offset >= GICDIPriorityr && offset < GICDIPriorityr+uint64(MaxIRQ):
		base := int(offset - GICDIPriorityr)
		for i := 0; i < 4; i++ {
			if base+i < MaxIRQ {
				d.SetPriority(base+i, uint8(value>>(8*uint(i))))
			}
		}
		return nil
	case offset >= GICDITargetsr && offset < GICDITargetsr+uint64(MaxIRQ):
		base := int(offset - GICDITargetsr)
		for i := 0; i < 4; i++ {
			if base+i < MaxIRQ {
				d.SetTargets(base+i, uint8(value>>(8*uint(i))))
			}
		}
		return nil
	case offset >= GICDICfgr && offset < GICDICfgr+uint64(MaxIRQ/4):
		return nil // trigger configuration accepted and ignored
	case offset == GICDSgir:
		// SGIR: [25:24] filter, [23:16] target list, [3:0] SGI id.
		id := int(value & 0xF)
		filter := (value >> 24) & 0x3
		targets := uint8(value >> 16)
		switch filter {
		case 1: // all but self
			targets = uint8((1<<uint(d.numCPUs))-1) &^ (1 << uint(srcCPU))
		case 2: // self only
			targets = 1 << uint(srcCPU)
		}
		return d.SendSGI(srcCPU, targets, id)
	default:
		return &ErrBadOffset{Offset: offset, Write: true}
	}
}
