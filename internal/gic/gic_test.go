package gic

import (
	"testing"
	"testing/quick"
)

// armed returns a distributor with both the distributor and all CPU
// interfaces enabled — the steady state after OS boot.
func armed(numCPUs int) *Distributor {
	d := New(numCPUs)
	d.EnableDistributor(true)
	for i := 0; i < numCPUs; i++ {
		d.EnableCPUInterface(i, true)
	}
	return d
}

func TestIRQClassPredicates(t *testing.T) {
	tests := []struct {
		id            int
		sgi, ppi, spi bool
	}{
		{0, true, false, false},
		{15, true, false, false},
		{16, false, true, false},
		{27, false, true, false},
		{31, false, true, false},
		{32, false, false, true},
		{MaxIRQ - 1, false, false, true},
		{MaxIRQ, false, false, false},
		{-1, false, false, false},
	}
	for _, tt := range tests {
		if IsSGI(tt.id) != tt.sgi || IsPPI(tt.id) != tt.ppi || IsSPI(tt.id) != tt.spi {
			t.Errorf("id %d: got (%v,%v,%v)", tt.id, IsSGI(tt.id), IsPPI(tt.id), IsSPI(tt.id))
		}
	}
}

func TestSPIRoutingToTargets(t *testing.T) {
	d := armed(2)
	const irq = 40
	d.EnableIRQ(irq)
	d.SetTargets(irq, 0b10) // cpu1 only
	if err := d.RaiseSPI(irq); err != nil {
		t.Fatal(err)
	}
	if d.Pending(0, irq) {
		t.Fatal("SPI delivered to untargeted cpu0")
	}
	if !d.Pending(1, irq) {
		t.Fatal("SPI not pending on targeted cpu1")
	}
	got, _ := d.Acknowledge(1)
	if got != irq {
		t.Fatalf("Acknowledge = %d", got)
	}
	if !d.Active(1, irq) || d.Pending(1, irq) {
		t.Fatal("ack did not move pending→active")
	}
	d.EOI(1, irq)
	if d.Active(1, irq) {
		t.Fatal("EOI did not deactivate")
	}
}

func TestPPIIsPerCPU(t *testing.T) {
	d := armed(2)
	d.EnableIRQ(IRQVirtualTimer)
	if err := d.RaisePPI(0, IRQVirtualTimer); err != nil {
		t.Fatal(err)
	}
	if d.Pending(1, IRQVirtualTimer) {
		t.Fatal("PPI leaked to other core")
	}
	if got, _ := d.Acknowledge(0); got != IRQVirtualTimer {
		t.Fatalf("ack = %d", got)
	}
}

func TestRaiseValidation(t *testing.T) {
	d := armed(2)
	if err := d.RaiseSPI(5); err == nil {
		t.Fatal("RaiseSPI accepted an SGI id")
	}
	if err := d.RaisePPI(0, 40); err == nil {
		t.Fatal("RaisePPI accepted an SPI id")
	}
	if err := d.RaisePPI(7, 27); err == nil {
		t.Fatal("RaisePPI accepted bad cpu")
	}
}

func TestSGIFanOut(t *testing.T) {
	d := armed(2)
	d.EnableIRQ(0)
	if err := d.SendSGI(0, 0b11, 0); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 2; cpu++ {
		irq, src := d.Acknowledge(cpu)
		if irq != 0 || src != 0 {
			t.Fatalf("cpu%d ack = irq %d src %d", cpu, irq, src)
		}
	}
	if err := d.SendSGI(0, 0b11, 40); err == nil {
		t.Fatal("SendSGI accepted an SPI id")
	}
}

func TestAcknowledgePriorityOrder(t *testing.T) {
	d := armed(1)
	for _, irq := range []int{40, 41, 42} {
		d.EnableIRQ(irq)
		d.SetTargets(irq, 1)
	}
	d.SetPriority(40, 0xB0)
	d.SetPriority(41, 0x10) // highest (lowest value)
	d.SetPriority(42, 0x60)
	for _, irq := range []int{40, 41, 42} {
		_ = d.RaiseSPI(irq)
	}
	want := []int{41, 42, 40}
	for _, w := range want {
		got, _ := d.Acknowledge(0)
		if got != w {
			t.Fatalf("ack order got %d, want %d", got, w)
		}
		d.EOI(0, got)
	}
}

func TestSpuriousWhenNothingPending(t *testing.T) {
	d := armed(1)
	if irq, _ := d.Acknowledge(0); irq != SpuriousIRQ {
		t.Fatalf("ack on idle = %d", irq)
	}
	if irq, _ := d.Acknowledge(99); irq != SpuriousIRQ {
		t.Fatalf("ack on bad cpu = %d", irq)
	}
}

func TestDisabledPathsBlockDelivery(t *testing.T) {
	const irq = 50
	cases := []struct {
		name string
		prep func(*Distributor)
	}{
		{"distributor off", func(d *Distributor) { d.EnableDistributor(false) }},
		{"cpu iface off", func(d *Distributor) { d.EnableCPUInterface(0, false) }},
		{"irq disabled", func(d *Distributor) { d.DisableIRQ(irq) }},
		{"priority masked", func(d *Distributor) { d.SetPriorityMask(0, 0x10) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := armed(1)
			d.EnableIRQ(irq)
			d.SetTargets(irq, 1)
			d.SetPriority(irq, 0xA0)
			tc.prep(d)
			_ = d.RaiseSPI(irq)
			if got, _ := d.Acknowledge(0); got != SpuriousIRQ {
				t.Fatalf("ack = %d, want spurious", got)
			}
		})
	}
}

func TestDeliverHookFires(t *testing.T) {
	d := armed(2)
	var calls []struct{ cpu, irq int }
	d.DeliverHook = func(cpu, irq int) {
		calls = append(calls, struct{ cpu, irq int }{cpu, irq})
	}
	d.EnableIRQ(40)
	d.SetTargets(40, 0b01)
	_ = d.RaiseSPI(40)
	if len(calls) != 1 || calls[0].cpu != 0 || calls[0].irq != 40 {
		t.Fatalf("hook calls = %v", calls)
	}
	// Undeliverable IRQ must not fire the hook.
	d.DisableIRQ(40)
	_ = d.RaiseSPI(40)
	if len(calls) != 1 {
		t.Fatal("hook fired for masked IRQ")
	}
}

func TestClearCPU(t *testing.T) {
	d := armed(1)
	d.EnableIRQ(40)
	d.SetTargets(40, 1)
	_ = d.RaiseSPI(40)
	d.ClearCPU(0)
	if d.PendingCount(0) != 0 {
		t.Fatal("ClearCPU left pending state")
	}
	if got, _ := d.Acknowledge(0); got != SpuriousIRQ {
		t.Fatal("interrupt survived ClearCPU")
	}
}

func TestMMIOCtlrTyper(t *testing.T) {
	d := New(2)
	v, err := d.ReadReg(GICDCtlr)
	if err != nil || v != 0 {
		t.Fatalf("CTLR = %d, %v", v, err)
	}
	if err := d.WriteReg(GICDCtlr, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !d.DistributorEnabled() {
		t.Fatal("CTLR write did not enable")
	}
	typer, err := d.ReadReg(GICDTyper)
	if err != nil {
		t.Fatal(err)
	}
	if itLines := typer & 0x1F; itLines != uint32(MaxIRQ/32-1) {
		t.Fatalf("TYPER ITLinesNumber = %d", itLines)
	}
	if cpus := (typer >> 5) & 0x7; cpus != 1 {
		t.Fatalf("TYPER CPUNumber = %d, want 1 (two cores)", cpus)
	}
}

func TestMMIOEnableDisableRoundTrip(t *testing.T) {
	d := New(1)
	// Enable IRQs 32..63 via ISENABLER word 1.
	if err := d.WriteReg(GICDISEnabler+4, 0xFFFFFFFF, 0); err != nil {
		t.Fatal(err)
	}
	for id := 32; id < 64; id++ {
		if !d.IRQEnabled(id) {
			t.Fatalf("irq %d not enabled via MMIO", id)
		}
	}
	v, _ := d.ReadReg(GICDISEnabler + 4)
	if v != 0xFFFFFFFF {
		t.Fatalf("ISENABLER readback = %#x", v)
	}
	// Clear two of them via ICENABLER.
	if err := d.WriteReg(GICDICEnabler+4, 0b11, 0); err != nil {
		t.Fatal(err)
	}
	if d.IRQEnabled(32) || d.IRQEnabled(33) || !d.IRQEnabled(34) {
		t.Fatal("ICENABLER write wrong")
	}
}

func TestMMIOPriorityAndTargets(t *testing.T) {
	d := New(2)
	if err := d.WriteReg(GICDIPriorityr+40, 0x10203040, 0); err != nil {
		t.Fatal(err)
	}
	if d.Priority(40) != 0x40 || d.Priority(43) != 0x10 {
		t.Fatalf("priorities = %#x %#x", d.Priority(40), d.Priority(43))
	}
	v, _ := d.ReadReg(GICDIPriorityr + 40)
	if v != 0x10203040 {
		t.Fatalf("priority readback = %#x", v)
	}
	if err := d.WriteReg(GICDITargetsr+40, 0x01020102, 0); err != nil {
		t.Fatal(err)
	}
	if d.Targets(40) != 0x02 || d.Targets(41) != 0x01 {
		t.Fatalf("targets = %#x %#x", d.Targets(40), d.Targets(41))
	}
}

func TestMMIOSGIR(t *testing.T) {
	d := armed(2)
	d.EnableIRQ(3)
	// Filter 0: explicit target list = cpu1 (bit 1 of the list field).
	if err := d.WriteReg(GICDSgir, 2<<16|3, 0); err != nil {
		t.Fatal(err)
	}
	if irq, src := d.Acknowledge(1); irq != 3 || src != 0 {
		t.Fatalf("cpu1 ack = %d src %d", irq, src)
	}
	d.EOI(1, 3)
	// Filter 1: all but self, from cpu1 → cpu0.
	if err := d.WriteReg(GICDSgir, 1<<24|3, 1); err != nil {
		t.Fatal(err)
	}
	if irq, src := d.Acknowledge(0); irq != 3 || src != 1 {
		t.Fatalf("cpu0 ack = %d src %d", irq, src)
	}
	d.EOI(0, 3)
	if d.Pending(1, 3) {
		t.Fatal("filter-1 SGI hit self")
	}
	// Filter 2: self only.
	if err := d.WriteReg(GICDSgir, 2<<24|3, 0); err != nil {
		t.Fatal(err)
	}
	if irq, _ := d.Acknowledge(0); irq != 3 {
		t.Fatal("filter-2 SGI missed self")
	}
}

func TestMMIOBadOffset(t *testing.T) {
	d := New(1)
	if _, err := d.ReadReg(0xFF8); err == nil {
		t.Fatal("bad read offset accepted")
	}
	err := d.WriteReg(0xFF8, 0, 0)
	var bad *ErrBadOffset
	if err == nil {
		t.Fatal("bad write offset accepted")
	}
	if ok := errorsAs(err, &bad); !ok || !bad.Write {
		t.Fatalf("err = %v", err)
	}
}

// errorsAs is a tiny local shim so the test file avoids importing errors
// for one call.
func errorsAs(err error, target **ErrBadOffset) bool {
	if e, ok := err.(*ErrBadOffset); ok {
		*target = e
		return true
	}
	return false
}

// Property: an enabled, targeted, unmasked SPI raised on a fully armed
// distributor is always retrievable by exactly its targeted CPU.
func TestPropertySPIDelivery(t *testing.T) {
	prop := func(irqRaw uint8, cpuRaw uint8) bool {
		irq := 32 + int(irqRaw)%(MaxIRQ-32)
		cpu := int(cpuRaw) % 2
		d := armed(2)
		d.EnableIRQ(irq)
		d.SetTargets(irq, 1<<uint(cpu))
		if err := d.RaiseSPI(irq); err != nil {
			return false
		}
		got, _ := d.Acknowledge(cpu)
		other, _ := d.Acknowledge(1 - cpu)
		return got == irq && other == SpuriousIRQ
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
