// Package gic models a GIC-400-class (GICv2) interrupt controller: a
// shared distributor plus one CPU interface per core. The model covers
// the behaviour a partitioning hypervisor and its guests exercise —
// enable/disable, priority masking, SGI/PPI/SPI routing, acknowledge and
// end-of-interrupt — and exposes the distributor's register file so the
// hypervisor can emulate guest MMIO accesses to it, which is the main
// source of the trap stream the paper injects into.
package gic

import (
	"fmt"
	"math/bits"
)

// Interrupt ID ranges (GICv2).
const (
	NumSGI = 16 // software-generated, IDs 0-15, per-CPU
	NumPPI = 16 // private peripheral, IDs 16-31, per-CPU
	NumSPI = 96 // shared peripheral, IDs 32-127 in this model
	MaxIRQ = NumSGI + NumPPI + NumSPI

	// SpuriousIRQ is returned by Acknowledge when nothing is pending,
	// the architectural 0x3FF value.
	SpuriousIRQ = 1023
)

// Well-known interrupt IDs on the modelled SoC.
const (
	IRQVirtualTimer = 27 // PPI: per-core virtual timer (guest tick source)
	IRQHypTimer     = 26 // PPI: hypervisor timer
)

// IsSGI reports whether id is a software-generated interrupt.
func IsSGI(id int) bool { return id >= 0 && id < NumSGI }

// IsPPI reports whether id is a private peripheral interrupt.
func IsPPI(id int) bool { return id >= NumSGI && id < NumSGI+NumPPI }

// IsSPI reports whether id is a shared peripheral interrupt.
func IsSPI(id int) bool { return id >= NumSGI+NumPPI && id < MaxIRQ }

// irqSet is a fixed-size interrupt-ID bitmap (MaxIRQ bits, two words in
// this model). It replaces the per-CPU pending/active maps: membership
// is a mask test, clearing a core is a word fill, and iteration walks
// set bits in ascending ID order — which is exactly Acknowledge's
// deterministic lowest-ID tie-break, now by construction instead of by
// sorting a scratch slice. Everything is O(words) and allocation-free.
type irqSet [(MaxIRQ + 63) / 64]uint64

func (s *irqSet) set(id int)      { s[id>>6] |= 1 << uint(id&63) }
func (s *irqSet) clear(id int)    { s[id>>6] &^= 1 << uint(id&63) }
func (s *irqSet) has(id int) bool { return s[id>>6]&(1<<uint(id&63)) != 0 }

func (s *irqSet) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// perCPU holds banked per-core interrupt state (SGIs+PPIs pending/active,
// the CPU interface registers).
type perCPU struct {
	pending irqSet
	active  irqSet
	sgiSrc  [NumSGI]int8 // pending SGI id → source CPU
	priMask uint8        // GICC_PMR: only priorities < mask are delivered
	enabled bool         // GICC_CTLR enable bit
}

// Distributor is the shared GICD state plus the per-CPU interfaces.
type Distributor struct {
	numCPUs int
	ctlr    bool // GICD_CTLR group-0 enable

	enabled  [MaxIRQ]bool  // GICD_ISENABLER
	priority [MaxIRQ]uint8 // GICD_IPRIORITYR
	targets  [MaxIRQ]uint8 // GICD_ITARGETSR: CPU bitmask (SPIs only)

	cpus []*perCPU

	// DeliverHook, when set, is called whenever a new interrupt becomes
	// deliverable to a CPU. The board wires this to the hypervisor's IRQ
	// entry path.
	DeliverHook func(cpu, irq int)
}

// New returns a distributor for numCPUs cores, everything disabled, as
// after reset.
func New(numCPUs int) *Distributor {
	d := &Distributor{numCPUs: numCPUs}
	for i := 0; i < numCPUs; i++ {
		d.cpus = append(d.cpus, &perCPU{})
	}
	d.Reset()
	return d
}

// Reset restores the distributor and every CPU interface to the
// power-on state New establishes, in place: all interrupts disabled at
// reset-default priority, no targets, nothing pending or active, and no
// delivery hook. The warm machine-reuse path calls this between runs.
func (d *Distributor) Reset() {
	d.ctlr = false
	d.enabled = [MaxIRQ]bool{}
	for i := range d.priority {
		d.priority[i] = 0xA0 // reset default mid priority
	}
	d.targets = [MaxIRQ]uint8{}
	for _, p := range d.cpus {
		*p = perCPU{
			priMask: 0xFF, // all priorities allowed through once enabled
		}
	}
	d.DeliverHook = nil
}

// Snapshot is a deep copy of the distributor's register file and every
// CPU interface at one instant. The delivery hook is captured as a func
// value — the board wires it to the hypervisor the snapshot belongs to.
type Snapshot struct {
	ctlr     bool
	enabled  [MaxIRQ]bool
	priority [MaxIRQ]uint8
	targets  [MaxIRQ]uint8
	cpus     []perCPU
	hook     func(cpu, irq int)
}

// CaptureSnapshot deep-copies the distributor state.
func (d *Distributor) CaptureSnapshot() *Snapshot {
	s := &Snapshot{
		ctlr:     d.ctlr,
		enabled:  d.enabled,
		priority: d.priority,
		targets:  d.targets,
		cpus:     make([]perCPU, len(d.cpus)),
		hook:     d.DeliverHook,
	}
	for i, p := range d.cpus {
		s.cpus[i] = *p
	}
	return s
}

// RestoreSnapshot rewinds the distributor to a captured state. The
// per-CPU interface objects are written in place (they are plain value
// state — fixed bitmaps and registers).
func (d *Distributor) RestoreSnapshot(s *Snapshot) {
	d.ctlr = s.ctlr
	d.enabled = s.enabled
	d.priority = s.priority
	d.targets = s.targets
	for i, p := range d.cpus {
		*p = s.cpus[i]
	}
	d.DeliverHook = s.hook
}

// NumCPUs returns the number of CPU interfaces.
func (d *Distributor) NumCPUs() int { return d.numCPUs }

// EnableDistributor sets GICD_CTLR.EnableGrp0.
func (d *Distributor) EnableDistributor(on bool) { d.ctlr = on }

// DistributorEnabled reports GICD_CTLR.EnableGrp0.
func (d *Distributor) DistributorEnabled() bool { return d.ctlr }

// EnableCPUInterface sets GICC_CTLR.Enable for one core.
func (d *Distributor) EnableCPUInterface(cpu int, on bool) {
	if p := d.cpu(cpu); p != nil {
		p.enabled = on
	}
}

// CPUInterfaceEnabled reports GICC_CTLR.Enable for one core.
func (d *Distributor) CPUInterfaceEnabled(cpu int) bool {
	p := d.cpu(cpu)
	return p != nil && p.enabled
}

// PriorityMask reads GICC_PMR for one core (0 when out of range).
func (d *Distributor) PriorityMask(cpu int) uint8 {
	if p := d.cpu(cpu); p != nil {
		return p.priMask
	}
	return 0
}

// SGISource returns the recorded source CPU of a pending SGI — state a
// power-on-equivalence check must see, since Acknowledge reads it.
func (d *Distributor) SGISource(cpu, id int) int {
	p := d.cpu(cpu)
	if p == nil || !IsSGI(id) {
		return 0
	}
	return int(p.sgiSrc[id])
}

// SetPriorityMask writes GICC_PMR for one core.
func (d *Distributor) SetPriorityMask(cpu int, mask uint8) {
	if p := d.cpu(cpu); p != nil {
		p.priMask = mask
	}
}

func (d *Distributor) cpu(i int) *perCPU {
	if i < 0 || i >= len(d.cpus) {
		return nil
	}
	return d.cpus[i]
}

// EnableIRQ sets the distributor enable bit for an interrupt.
func (d *Distributor) EnableIRQ(id int) {
	if id >= 0 && id < MaxIRQ {
		d.enabled[id] = true
	}
}

// DisableIRQ clears the distributor enable bit.
func (d *Distributor) DisableIRQ(id int) {
	if id >= 0 && id < MaxIRQ {
		d.enabled[id] = false
	}
}

// IRQEnabled reports the distributor enable bit.
func (d *Distributor) IRQEnabled(id int) bool {
	return id >= 0 && id < MaxIRQ && d.enabled[id]
}

// SetPriority writes an interrupt's priority (0 = highest).
func (d *Distributor) SetPriority(id int, pri uint8) {
	if id >= 0 && id < MaxIRQ {
		d.priority[id] = pri
	}
}

// Priority reads an interrupt's priority.
func (d *Distributor) Priority(id int) uint8 {
	if id < 0 || id >= MaxIRQ {
		return 0
	}
	return d.priority[id]
}

// SetTargets writes GICD_ITARGETSR for an SPI: a bitmask of CPU interfaces.
func (d *Distributor) SetTargets(id int, mask uint8) {
	if IsSPI(id) {
		d.targets[id] = mask
	}
}

// Targets reads the routing mask of an SPI.
func (d *Distributor) Targets(id int) uint8 {
	if id < 0 || id >= MaxIRQ {
		return 0
	}
	return d.targets[id]
}

// RaiseSPI marks a shared peripheral interrupt pending and delivers it to
// every targeted, enabled CPU interface.
func (d *Distributor) RaiseSPI(id int) error {
	if !IsSPI(id) {
		return fmt.Errorf("gic: %d is not an SPI", id)
	}
	delivered := false
	for cpu := 0; cpu < d.numCPUs; cpu++ {
		if d.targets[id]&(1<<uint(cpu)) == 0 {
			continue
		}
		d.cpus[cpu].pending.set(id)
		delivered = true
		d.maybeDeliver(cpu, id)
	}
	if !delivered {
		// Untargeted SPIs stay latched in no-one's queue; hardware drops
		// them at the distributor. Model the drop.
		return nil
	}
	return nil
}

// RaisePPI marks a private interrupt pending on one core.
func (d *Distributor) RaisePPI(cpu, id int) error {
	if !IsPPI(id) {
		return fmt.Errorf("gic: %d is not a PPI", id)
	}
	p := d.cpu(cpu)
	if p == nil {
		return fmt.Errorf("gic: no cpu %d", cpu)
	}
	p.pending.set(id)
	d.maybeDeliver(cpu, id)
	return nil
}

// SendSGI raises a software-generated interrupt from srcCPU on each CPU in
// targetMask — the hypervisor's cross-CPU kick mechanism (cell stop,
// park, resume).
func (d *Distributor) SendSGI(srcCPU int, targetMask uint8, id int) error {
	if !IsSGI(id) {
		return fmt.Errorf("gic: %d is not an SGI", id)
	}
	for cpu := 0; cpu < d.numCPUs; cpu++ {
		if targetMask&(1<<uint(cpu)) == 0 {
			continue
		}
		p := d.cpus[cpu]
		p.pending.set(id)
		p.sgiSrc[id] = int8(srcCPU)
		d.maybeDeliver(cpu, id)
	}
	return nil
}

// deliverable reports whether irq can be signalled to cpu right now.
func (d *Distributor) deliverable(cpu, irq int) bool {
	p := d.cpu(cpu)
	if p == nil || !d.ctlr || !p.enabled {
		return false
	}
	if !d.enabled[irq] {
		return false
	}
	if d.priority[irq] >= p.priMask {
		return false
	}
	return !p.active.has(irq)
}

func (d *Distributor) maybeDeliver(cpu, irq int) {
	if d.deliverable(cpu, irq) && d.DeliverHook != nil {
		d.DeliverHook(cpu, irq)
	}
}

// Acknowledge implements a GICC_IAR read: returns the highest-priority
// pending deliverable interrupt, marks it active, and clears pending.
// Returns SpuriousIRQ when nothing qualifies. For SGIs the source CPU is
// also returned (IAR bits [12:10] architecturally).
func (d *Distributor) Acknowledge(cpu int) (irq int, srcCPU int) {
	p := d.cpu(cpu)
	if p == nil {
		return SpuriousIRQ, 0
	}
	if p.pending == (irqSet{}) {
		// Nothing pending at all — the common second IAR read of every
		// delivery loop.
		return SpuriousIRQ, 0
	}
	if !d.ctlr || !p.enabled {
		// Distributor or CPU interface off: no candidate can qualify, the
		// same answer the per-candidate deliverable scan would reach.
		return SpuriousIRQ, 0
	}
	best, bestPri := SpuriousIRQ, uint16(0x100)
	for w, word := range p.pending {
		for word != 0 {
			id := w*64 + bits.TrailingZeros64(word)
			word &= word - 1 // clear lowest set bit
			// Inline deliverable() with the global gates hoisted above and
			// p already in hand.
			pri := d.priority[id]
			if !d.enabled[id] || pri >= p.priMask || p.active.has(id) {
				continue
			}
			// Strict < keeps the lowest-ID tie-break: bits are visited in
			// ascending ID order, so the first of an equal-priority pair
			// wins, exactly as the sorted-slice implementation did.
			if uint16(pri) < bestPri {
				best, bestPri = id, uint16(pri)
			}
		}
	}
	if best == SpuriousIRQ {
		return SpuriousIRQ, 0
	}
	p.pending.clear(best)
	p.active.set(best)
	var src int
	if IsSGI(best) {
		src = int(p.sgiSrc[best])
		p.sgiSrc[best] = 0
	}
	return best, src
}

// EOI implements a GICC_EOIR write: deactivates the interrupt on the core.
// Out-of-range IDs (including SpuriousIRQ) are ignored, as before.
func (d *Distributor) EOI(cpu, irq int) {
	if p := d.cpu(cpu); p != nil && irq >= 0 && irq < MaxIRQ {
		p.active.clear(irq)
		// A still-pending level interrupt would re-deliver here; our
		// sources re-raise explicitly, so nothing further to do.
	}
}

// Pending reports whether irq is pending (not yet acknowledged) on cpu.
func (d *Distributor) Pending(cpu, irq int) bool {
	p := d.cpu(cpu)
	return p != nil && irq >= 0 && irq < MaxIRQ && p.pending.has(irq)
}

// Active reports whether irq is active (ack'd, not EOI'd) on cpu.
func (d *Distributor) Active(cpu, irq int) bool {
	p := d.cpu(cpu)
	return p != nil && irq >= 0 && irq < MaxIRQ && p.active.has(irq)
}

// PendingCount returns the number of pending interrupts on cpu.
func (d *Distributor) PendingCount(cpu int) int {
	p := d.cpu(cpu)
	if p == nil {
		return 0
	}
	return p.pending.count()
}

// ClearCPU drops all pending/active state for a core — what happens when
// the hypervisor resets a core while reassigning it between cells.
func (d *Distributor) ClearCPU(cpu int) {
	p := d.cpu(cpu)
	if p == nil {
		return
	}
	p.pending = irqSet{}
	p.active = irqSet{}
	p.sgiSrc = [NumSGI]int8{}
}
