package serve

import (
	"context"
	"sync"
)

// fairQueue is the server's multi-tenant admission queue: jobs are FIFO
// within a tenant, and tenants take turns round-robin, so a tenant
// flooding the queue with a burst cannot starve anyone — the next pop
// after a flood always reaches the other tenants' heads first. The
// dispatcher pops only when an execution slot is already free, which is
// what turns the round-robin order into the fairness guarantee the
// tests audit: a newly submitted job of an idle tenant starts within
// one job-slot turnaround, regardless of queue depth.
type fairQueue struct {
	mu       sync.Mutex
	byTenant map[string][]*Job
	// ring is the round-robin tenant order; cursor points at the tenant
	// the next pop serves. Tenants join at the back when their first job
	// arrives and leave when their backlog drains.
	ring   []string
	cursor int
	// wake nudges a pop blocked on an empty queue; buffered so a push
	// never blocks on an absent popper.
	wake chan struct{}
}

func newFairQueue() *fairQueue {
	return &fairQueue{
		byTenant: make(map[string][]*Job),
		wake:     make(chan struct{}, 1),
	}
}

// push appends j to its tenant's FIFO, enrolling the tenant in the
// round-robin ring if it had no backlog.
func (q *fairQueue) push(j *Job) {
	q.mu.Lock()
	if _, ok := q.byTenant[j.tenant]; !ok {
		q.ring = append(q.ring, j.tenant)
	}
	q.byTenant[j.tenant] = append(q.byTenant[j.tenant], j)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// pop blocks until a job is available (or ctx is done, returning nil)
// and returns the head of the cursor tenant's FIFO, advancing the
// round-robin cursor past it. Jobs already cancelled while queued are
// discarded here rather than handed to an execution slot.
func (q *fairQueue) pop(ctx context.Context) *Job {
	for {
		q.mu.Lock()
		for {
			j := q.takeLocked()
			if j == nil {
				break
			}
			if j.State() == StateCancelled {
				continue // cancelled while queued: skip, take the next
			}
			q.mu.Unlock()
			return j
		}
		q.mu.Unlock()
		select {
		case <-q.wake:
		case <-ctx.Done():
			return nil
		}
	}
}

// takeLocked removes and returns the next job in round-robin order, or
// nil when the queue is empty. Callers hold mu.
func (q *fairQueue) takeLocked() *Job {
	if len(q.ring) == 0 {
		return nil
	}
	if q.cursor >= len(q.ring) {
		q.cursor = 0
	}
	tenant := q.ring[q.cursor]
	fifo := q.byTenant[tenant]
	j := fifo[0]
	if len(fifo) == 1 {
		// Backlog drained: the tenant leaves the ring. The cursor now
		// indexes the next tenant (everything after shifts left one), so
		// it stays put.
		delete(q.byTenant, tenant)
		q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
		if q.cursor >= len(q.ring) {
			q.cursor = 0
		}
	} else {
		q.byTenant[tenant] = fifo[1:]
		q.cursor++
		if q.cursor >= len(q.ring) {
			q.cursor = 0
		}
	}
	return j
}

// depth returns the number of queued jobs.
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, fifo := range q.byTenant {
		n += len(fifo)
	}
	return n
}

// drain removes and returns every queued job — shutdown marks them
// cancelled.
func (q *fairQueue) drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*Job
	for {
		j := q.takeLocked()
		if j == nil {
			return out
		}
		out = append(out, j)
	}
}
