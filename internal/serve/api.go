package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Wire types of the campaign server's HTTP/JSON API. Everything here is
// shared between the server's handlers and the Client the certify CLI
// (and the examples) drive it with.

// Seed is a uint64 campaign seed on the wire. JSON numbers silently lose
// precision above 2^53, so Seed marshals as a hex string ("0x7e6") and
// unmarshals from either a string (hex, octal or decimal per Go syntax)
// or a plain JSON number — hand-written clients get to write
// {"seed": 2022} and full-range seeds survive round-trips.
type Seed uint64

// MarshalJSON renders the seed as a hex string.
func (s Seed) MarshalJSON() ([]byte, error) {
	return json.Marshal(fmt.Sprintf("%#x", uint64(s)))
}

// UnmarshalJSON accepts a JSON number or a numeric string.
func (s *Seed) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		// Not a string: try a bare number token.
		var n json.Number
		if nerr := json.Unmarshal(b, &n); nerr != nil {
			return fmt.Errorf("serve: seed must be a number or a numeric string, got %s", b)
		}
		str = n.String()
	}
	u, err := strconv.ParseUint(str, 0, 64)
	if err != nil {
		return fmt.Errorf("serve: bad seed %q: %w", str, err)
	}
	*s = Seed(u)
	return nil
}

// SubmitRequest is the body of POST /campaigns: one campaign spec. Give
// either a built-in plan name or the plan-file text; the fault model,
// when set, overrides the plan's (and becomes part of its identity,
// exactly as `certify -fault` does).
type SubmitRequest struct {
	// Tenant names the submitting principal for queue fairness. Empty
	// falls back to the X-Certify-Tenant header, then to "anonymous".
	Tenant string `json:"tenant,omitempty"`
	// Plan is a built-in plan name ("E3-fig3", ...).
	Plan string `json:"plan,omitempty"`
	// PlanFile is the plan-file text (the `certify -planfile` format);
	// mutually exclusive with Plan.
	PlanFile string `json:"plan_file,omitempty"`
	// Fault optionally overrides the plan's fault model by registry name.
	Fault string `json:"fault,omitempty"`
	// Runs is the campaign size.
	Runs int `json:"runs"`
	// Seed is the master seed of the per-run seed chain.
	Seed Seed `json:"seed"`
	// Mode is "full" or "distribution" (the default).
	Mode string `json:"mode,omitempty"`
	// CIWidth, when positive, runs the campaign adaptively: stop once
	// every outcome class's 95% confidence interval is narrower than
	// this many percentage points (5 = stop at ±2.5pp), with Runs as the
	// max-N guard. Part of campaign identity — same plan and seed with a
	// different width is a different cache entry.
	CIWidth float64 `json:"ci_width,omitempty"`
	// MinRuns forbids the adaptive stop before this many runs.
	MinRuns int `json:"min_runs,omitempty"`
	// MaxRuns is the adaptive max-N guard: it overrides Runs as the
	// campaign size (requires CIWidth). Runs may then be omitted.
	MaxRuns int `json:"max_runs,omitempty"`
	// Stratify rotates runs over register-class strata (full-GPR plans
	// only). Campaign identity as well.
	Stratify bool `json:"stratify,omitempty"`
}

// JobView is the API rendering of one job — returned by submit, job
// lookup and cancel, and embedded in the jobs listing.
type JobView struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  State  `json:"state"`
	// Cached is true when the job was served from the result cache
	// instead of executing.
	Cached bool `json:"cached"`
	// Key is the content-addressed cache key (plan hash + seed + runs +
	// mode) the job resolves to.
	Key        string `json:"key"`
	Plan       string `json:"plan"`
	PlanHash   string `json:"plan_hash"`
	FaultModel string `json:"fault_model"`
	Runs       int    `json:"runs"`
	Seed       Seed   `json:"seed"`
	Mode       string `json:"mode"`
	// StartSeq is the server-wide execution order (1-based; 0 = never
	// started). The fairness tests audit queue policy through it.
	StartSeq int `json:"start_seq,omitempty"`
	// Error and ErrorClass describe a failed job (class as in API error
	// responses: "usage", "mismatch", "internal").
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	// Distribution, InjectionsTotal and MeanDetectionNS carry the
	// campaign aggregate once the job completed.
	Distribution    map[string]int `json:"distribution,omitempty"`
	InjectionsTotal int            `json:"injections_total,omitempty"`
	MeanDetectionNS int64          `json:"mean_detection_latency_ns,omitempty"`
}

// Event is one line of a job's progress stream (GET /jobs/{id}/events,
// NDJSON by default, SSE data frames under Accept: text/event-stream).
type Event struct {
	// Type is "state" (lifecycle transition), "progress" (run records
	// observed in the artefact grew) or "done" (terminal; last event).
	Type  string `json:"type"`
	Job   string `json:"job"`
	State State  `json:"state,omitempty"`
	// Runs/Total report per-run progress from the artefact tail.
	Runs  int   `json:"runs,omitempty"`
	Total int   `json:"total,omitempty"`
	Bytes int64 `json:"bytes,omitempty"`
	// Terminal payload (done events only).
	Cached          bool           `json:"cached,omitempty"`
	Distribution    map[string]int `json:"distribution,omitempty"`
	InjectionsTotal int            `json:"injections_total,omitempty"`
	Error           string         `json:"error,omitempty"`
}

// Health is GET /healthz: liveness plus the engine fingerprint. The
// golden trace hash is computed by a fault-free one-minute golden run at
// server startup — a client can verify the serving engine replays the
// certified golden trace (0xa10df7f198db0642) before trusting results.
type Health struct {
	Status          string `json:"status"`
	GoldenTraceHash string `json:"golden_trace_hash"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	Jobs          int     `json:"jobs"`
	Queued        int     `json:"queued"`
	// Running counts jobs currently executing; CachedJobs counts jobs
	// that were answered from the result cache.
	Running    int `json:"running"`
	CachedJobs int `json:"cached_jobs"`
	Slots      int `json:"slots"`
	// SlotsBusy is the number of execution slots currently occupied.
	SlotsBusy    int `json:"slots_busy"`
	CacheEntries int `json:"cache_entries"`
	// CacheHits / CacheMisses count verified cache probes over the
	// server's lifetime; QueueWaitMeanMS is the mean submission → start
	// wait of executed jobs (0 until a job has executed).
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	QueueWaitMeanMS float64 `json:"queue_wait_mean_ms"`
}

// Error classes carried in API error bodies; `certify submit` maps them
// onto its exit codes (usage=2, mismatch=3, everything else 1).
const (
	ClassUsage    = "usage"     // malformed or unrunnable request
	ClassMismatch = "mismatch"  // campaign identity mismatch
	ClassNotFound = "not-found" // no such job / run record
	ClassConflict = "conflict"  // right request, wrong job state
	ClassInternal = "internal"  // execution or I/O failure
)

// APIError is a non-2xx API response decoded by the Client.
type APIError struct {
	Status int    // HTTP status code
	Class  string // error class (see Class* constants)
	Msg    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (%s, HTTP %d)", e.Msg, e.Class, e.Status)
}

// errorBody is the JSON shape of API error responses.
type errorBody struct {
	Error string `json:"error"`
	Class string `json:"class"`
}
