package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/dessertlab/certify/internal/dist"
)

// cache is the server's content-addressed result store. One campaign
// identity — plan hash, master seed, run count, retention mode — maps
// to one directory holding the single-shard artefact (runs.jsonl) and
// the published spec (spec.json). The artefact itself is the cache
// entry: there is no separate metadata to drift out of sync, and a hit
// is only ever declared after the same verification a merge applies
// (manifest matches the requested shard, records complete and
// consistent with the summary footer). A corrupted, truncated or
// foreign entry therefore can never be served — lookup misses and the
// campaign re-executes, overwriting the bad entry with fresh evidence.
type cache struct {
	dir string
}

func newCache(dir string) (*cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &cache{dir: dir}, nil
}

// cacheKey is the content address of a campaign: every field of the
// identity in fixed-width hex/decimal, so distinct campaigns get
// distinct directories. (The plan hash covers the plan text including
// its fault-model selection.) Collisions cannot misattribute results
// even in theory: a hit additionally requires the stored manifest to
// match the requested shard's.
// Adaptive campaigns append their stop-policy identity (and stratify
// marker) as extra suffix segments: a request that adds, removes or
// retargets a stop policy certifies a different prefix, so it must
// address a different entry. Fixed-N keys are unchanged — existing
// cache stores keep answering.
func cacheKey(spec *dist.Spec) string {
	key := fmt.Sprintf("%016x-%016x-%d-%s", spec.Plan.Hash(), spec.MasterSeed, spec.Runs, spec.Mode)
	if spec.Stop != nil {
		key += "-" + spec.Stop.Identity()
	}
	if spec.Stratify {
		key += "-stratified"
	}
	return key
}

func (c *cache) entryDir(key string) string     { return filepath.Join(c.dir, key) }
func (c *cache) artefactPath(key string) string { return filepath.Join(c.entryDir(key), "runs.jsonl") }

// lookup returns the verified cache entry for spec, or ok=false on any
// miss: absent file, unreadable file, incomplete shard, or a manifest
// that does not match the requested campaign byte for byte.
func (c *cache) lookup(spec *dist.Spec) (*dist.ShardFile, bool) {
	sh, err := spec.Shard(0)
	if err != nil {
		return nil, false
	}
	sf, err := dist.ReadShard(c.artefactPath(cacheKey(spec)))
	if err != nil {
		metCacheMisses.Inc()
		return nil, false
	}
	if !sf.Complete || !sf.Manifest.MatchesShard(sh) {
		metCacheMisses.Inc()
		return nil, false
	}
	metCacheHits.Inc()
	return sf, true
}

// prepare readies spec's entry for execution: the directory exists, the
// spec is published beside the artefact, and any poisoned artefact —
// unreadable, or readable but naming a different campaign — is removed
// so ExecuteShard reruns instead of refusing. A same-campaign
// incomplete artefact is deliberately left in place: it is a resumable
// remnant (of a cancelled or crashed job) and ExecuteShard's own
// idempotence handles it. Returns the artefact path to execute into.
func (c *cache) prepare(spec *dist.Spec) (string, error) {
	sh, err := spec.Shard(0)
	if err != nil {
		return "", err
	}
	key := cacheKey(spec)
	if err := os.MkdirAll(c.entryDir(key), 0o755); err != nil {
		return "", err
	}
	if err := dist.WriteSpecFile(filepath.Join(c.entryDir(key), "spec.json"), spec); err != nil {
		return "", err
	}
	path := c.artefactPath(key)
	sf, rerr := dist.ReadShard(path)
	switch {
	case rerr == nil && !sf.Manifest.SameCampaignAs(sh):
		// The entry's bytes answer to a different campaign than its
		// address — poisoned or tampered. Never serve it, never resume
		// into it: remove and re-execute.
		if err := os.Remove(path); err != nil {
			return "", err
		}
		metCachePoisoned.Inc()
	case rerr != nil && !os.IsNotExist(rerr) && !errors.Is(rerr, dist.ErrTorn):
		// Unreadable non-torn file (corrupted records, flipped bytes):
		// ExecuteShard would refuse to overwrite it, so clear it here —
		// inside the content-addressed store, an unreadable entry is by
		// definition worthless. (Torn crash remnants are already rerun
		// in place by ExecuteShard itself.)
		if err := os.Remove(path); err != nil {
			return "", err
		}
		metCachePoisoned.Inc()
	}
	return path, nil
}

// entries counts the cache's entry directories, for /healthz.
func (c *cache) entries() int {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range des {
		if de.IsDir() {
			n++
		}
	}
	return n
}
