package serve

import (
	"context"
	"testing"
	"time"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/dist"
)

// queueJob builds a minimal job for queue-policy tests.
func queueJob(t *testing.T, tenant, id string) *Job {
	t.Helper()
	spec := &dist.Spec{
		Plan: core.PlanE3Fig3(), Runs: 1, MasterSeed: 1,
		Shards: 1, Mode: core.ModeDistribution,
	}
	return newJob(id, tenant, cacheKey(spec), spec, context.Background())
}

// TestFairQueueRoundRobinAcrossTenants pins the fairness policy at the
// queue level: a flooding tenant's backlog interleaves with other
// tenants' jobs in round-robin order, and each tenant's own jobs stay
// FIFO.
func TestFairQueueRoundRobinAcrossTenants(t *testing.T) {
	q := newFairQueue()
	for _, j := range []struct{ tenant, id string }{
		{"noisy", "a1"}, {"noisy", "a2"}, {"noisy", "a3"}, {"noisy", "a4"},
		{"calm", "b1"}, {"calm", "b2"},
		{"solo", "c1"},
	} {
		q.push(queueJob(t, j.tenant, j.id))
	}
	want := []string{"a1", "b1", "c1", "a2", "b2", "a3", "a4"}
	for i, w := range want {
		j := q.pop(context.Background())
		if j == nil || j.id != w {
			t.Fatalf("pop %d = %v, want %s (round-robin with per-tenant FIFO)", i, j, w)
		}
	}
	if q.depth() != 0 {
		t.Fatalf("queue not drained: depth %d", q.depth())
	}
}

// TestFairQueueFloodCannotStarve pins the bound the HTTP fairness test
// relies on: after a tenant floods N jobs, a second tenant's first job
// is popped second — one turnaround, regardless of backlog depth.
func TestFairQueueFloodCannotStarve(t *testing.T) {
	q := newFairQueue()
	for i := 0; i < 50; i++ {
		q.push(queueJob(t, "noisy", "flood"))
	}
	q.push(queueJob(t, "quiet", "the-one"))
	if j := q.pop(context.Background()); j.tenant != "noisy" {
		t.Fatalf("first pop tenant = %s, want noisy (was queued first)", j.tenant)
	}
	if j := q.pop(context.Background()); j.id != "the-one" {
		t.Fatalf("second pop = %s/%s, want quiet/the-one", j.tenant, j.id)
	}
}

// TestFairQueuePopBlocksAndWakes exercises the block/wake path and the
// context escape hatch.
func TestFairQueuePopBlocksAndWakes(t *testing.T) {
	q := newFairQueue()
	got := make(chan *Job, 1)
	go func() { got <- q.pop(context.Background()) }()
	select {
	case j := <-got:
		t.Fatalf("pop returned %v from an empty queue", j)
	case <-time.After(20 * time.Millisecond):
	}
	q.push(queueJob(t, "t", "late"))
	select {
	case j := <-got:
		if j.id != "late" {
			t.Fatalf("pop = %s, want late", j.id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never woke after push")
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() { got <- q.pop(ctx) }()
	cancel()
	select {
	case j := <-got:
		if j != nil {
			t.Fatalf("cancelled pop returned %v, want nil", j)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop ignored context cancellation")
	}
}

// TestFairQueueDiscardsCancelledJobs: a job cancelled while queued is
// never handed to an execution slot.
func TestFairQueueDiscardsCancelledJobs(t *testing.T) {
	q := newFairQueue()
	doomed := queueJob(t, "t", "doomed")
	survivor := queueJob(t, "t", "survivor")
	q.push(doomed)
	q.push(survivor)
	doomed.requestCancel()
	if doomed.State() != StateCancelled {
		t.Fatalf("queued job after cancel = %s, want cancelled", doomed.State())
	}
	if j := q.pop(context.Background()); j.id != "survivor" {
		t.Fatalf("pop = %s, want survivor (cancelled job skipped)", j.id)
	}
}
