// Package serve is certify-as-a-service: a long-running campaign server
// that accepts fault-injection campaign specs over HTTP/JSON, executes
// them through the dist pipeline on a shared warm machine pool, and
// serves results. Three layers sit on top of the existing engine:
//
//   - a multi-tenant job queue with per-tenant round-robin fairness and
//     a bounded number of concurrent execution slots (fairQueue);
//   - a content-addressed result cache keyed by plan hash, master seed,
//     run count and retention mode, whose entries are ordinary shard
//     artefacts verified with merge-grade manifest checks before reuse
//     (cache) — a repeated identical request is served from the store,
//     canonically byte-identical to a fresh execution;
//   - live streaming: a job's run records can be tailed while the
//     campaign executes (dist.Tail → NDJSON/SSE events) and individual
//     run records served by global index (dist.OpenDossier).
//
// Determinism is what makes the cache sound: the engine guarantees the
// same plan hash and seed chain reproduce every run bit for bit, so a
// verified artefact under the same content address is the result, not
// an approximation of it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/dist"
	"github.com/dessertlab/certify/internal/sim"
)

// Config parameterises a Server.
type Config struct {
	// DataDir is the server's state root; the result cache lives in
	// DataDir/cache. Required.
	DataDir string
	// Slots bounds concurrently executing campaigns (default 2).
	Slots int
	// WorkersPerJob is the campaign parallelism inside one job; 0
	// divides GOMAXPROCS evenly across the slots (at least 1 each).
	WorkersPerJob int
	// Pool is the shared warm machine pool; nil creates a fresh one.
	Pool *core.MachinePool
	// Poll is the artefact tail cadence of event streams (default 50ms).
	Poll time.Duration
	// MaxRuns caps a single request's campaign size (default 100000).
	MaxRuns int
	// SkipGoldenCheck skips the startup golden-run fingerprint (tests
	// that never look at /healthz shave the ~fault-free-minute it costs).
	SkipGoldenCheck bool
	// Logger receives structured job-lifecycle logs (tenant, job, state,
	// durations). Nil discards them.
	Logger *slog.Logger
}

// Server owns the queue, the cache, the warm pool and the job table.
// Construct with New, serve its Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	cache   *cache
	q       *fairQueue
	pool    *core.MachinePool
	golden  uint64 // startup golden-run trace hash (0 when skipped)
	log     *slog.Logger
	started time.Time

	baseCtx context.Context
	stop    context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job ids in submission order, for listings
	jobSeq   int
	startSeq int
	keyBusy  map[string]chan struct{}

	slots chan struct{}
	wg    sync.WaitGroup

	// Flight-recorder aggregates for /healthz, kept per-server (the obs
	// registry is process-global, so two servers in one process would
	// otherwise blend their numbers).
	slotsBusy   atomic.Int64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	waitSumNS   atomic.Int64
	waitCount   atomic.Int64
}

// New builds a Server, runs the startup golden self-check and starts
// the dispatcher. The golden trace hash it computes is exposed on
// /healthz so clients can verify the serving engine replays the
// certified golden trace before trusting cached results.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: Config.DataDir is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	if cfg.WorkersPerJob <= 0 {
		cfg.WorkersPerJob = max(1, runtime.GOMAXPROCS(0)/cfg.Slots)
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 100000
	}
	c, err := newCache(filepath.Join(cfg.DataDir, "cache"))
	if err != nil {
		return nil, err
	}
	pool := cfg.Pool
	if pool == nil {
		pool = core.NewMachinePool()
	}
	var golden uint64
	if !cfg.SkipGoldenCheck {
		// A fault-free golden run's trace hash is seed-independent (the
		// injector never fires), so any seed fingerprints the engine.
		gp, err := core.GoldenRun(2022, sim.Minute)
		if err != nil {
			return nil, fmt.Errorf("serve: startup golden self-check: %w", err)
		}
		golden = gp.TraceHash
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   c,
		q:       newFairQueue(),
		pool:    pool,
		golden:  golden,
		log:     logger,
		started: time.Now(),
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		keyBusy: make(map[string]chan struct{}),
		slots:   make(chan struct{}, cfg.Slots),
	}
	s.log.Info("server started",
		"slots", cfg.Slots, "workers_per_job", cfg.WorkersPerJob,
		"golden_trace_hash", fmt.Sprintf("%#x", golden))
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// GoldenTraceHash returns the startup self-check fingerprint (0 when
// the check was skipped).
func (s *Server) GoldenTraceHash() uint64 { return s.golden }

// Shutdown cancels every running job, discards the queue (marking the
// queued jobs cancelled) and waits for the dispatcher and executors to
// drain, up to ctx's deadline. The drain is logged — queued jobs
// discarded, in-flight jobs at the moment of the stop, and whether the
// drain completed or was cut by the deadline — so an operator reading
// the log can tell a clean drain from a cut.
func (s *Server) Shutdown(ctx context.Context) error {
	inflight := int(s.slotsBusy.Load())
	s.stop()
	queued := s.q.drain()
	for _, j := range queued {
		j.requestCancel()
	}
	s.log.Info("shutdown: draining",
		"queued_discarded", len(queued), "in_flight", inflight)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("shutdown: drain complete", "uptime", time.Since(s.started).String())
		return nil
	case <-ctx.Done():
		s.log.Warn("shutdown: drain cut by deadline",
			"still_in_flight", s.slotsBusy.Load(), "err", ctx.Err())
		return ctx.Err()
	}
}

// Submit validates the request into a job and either answers it from
// the cache on the spot (the job is born completed, Cached=true) or
// enqueues it for execution.
func (s *Server) Submit(req *SubmitRequest) (*Job, error) {
	spec, err := s.buildSpec(req)
	if err != nil {
		return nil, err
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}
	key := cacheKey(spec)

	s.mu.Lock()
	s.jobSeq++
	id := fmt.Sprintf("job-%06d", s.jobSeq)
	j := newJob(id, tenant, key, spec, s.baseCtx)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	// Synchronous cache probe: a verified hit never touches the queue.
	if sf, ok := s.cache.lookup(spec); ok {
		s.cacheHits.Add(1)
		j.finishCompleted(sf.Result, true)
		s.log.Info("job served from cache",
			"job", id, "tenant", tenant, "plan", spec.Plan.Name, "runs", spec.Runs)
		return j, nil
	}
	s.cacheMisses.Add(1)
	s.q.push(j)
	metQueueDepth.Set(int64(s.q.depth()))
	s.log.Info("job queued",
		"job", id, "tenant", tenant, "plan", spec.Plan.Name,
		"runs", spec.Runs, "mode", spec.Mode.String())
	return j, nil
}

// Job returns the job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel aborts the job: queued jobs terminate immediately, running
// jobs stop mid-campaign (their artefact stays resumable) and free
// their slot.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	j.requestCancel()
	return j, true
}

// ArtefactPath returns where the job's shard artefact lives (the
// content-addressed cache entry it executes into or was served from).
func (s *Server) ArtefactPath(j *Job) string { return s.cache.artefactPath(j.key) }

// Health snapshots the server for /healthz.
func (s *Server) Health() Health {
	s.mu.Lock()
	jobs := len(s.jobs)
	running, cached := 0, 0
	for _, j := range s.jobs {
		st, fromCache := j.stateAndCached()
		if st == StateRunning {
			running++
		}
		if fromCache {
			cached++
		}
	}
	s.mu.Unlock()
	h := Health{
		Status:          "ok",
		GoldenTraceHash: fmt.Sprintf("%#x", s.golden),
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Jobs:            jobs,
		Queued:          s.q.depth(),
		Running:         running,
		CachedJobs:      cached,
		Slots:           s.cfg.Slots,
		SlotsBusy:       int(s.slotsBusy.Load()),
		CacheEntries:    s.cache.entries(),
		CacheHits:       s.cacheHits.Load(),
		CacheMisses:     s.cacheMisses.Load(),
	}
	if n := s.waitCount.Load(); n > 0 {
		h.QueueWaitMeanMS = float64(s.waitSumNS.Load()) / float64(n) / 1e6
	}
	return h
}

// dispatch is the admission loop: acquire a free execution slot FIRST,
// then pop the fair queue. Ordering matters — because the round-robin
// choice is made at the moment a slot frees, a job submitted by an idle
// tenant is selected over a flooding tenant's backlog at the very next
// turnaround, which is the fairness bound the tests pin.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case s.slots <- struct{}{}:
		case <-s.baseCtx.Done():
			return
		}
		j := s.q.pop(s.baseCtx)
		if j == nil {
			<-s.slots
			return
		}
		metQueueDepth.Set(int64(s.q.depth()))
		s.slotsBusy.Add(1)
		metSlotsBusy.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				<-s.slots
				s.slotsBusy.Add(-1)
				metSlotsBusy.Dec()
			}()
			s.execute(j)
		}()
	}
}

func (s *Server) nextStartSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.startSeq++
	return s.startSeq
}

// lockKey serialises executions of the same campaign identity: two
// identical requests in flight must not write one artefact
// concurrently — the second waits, then finds the first's result in
// the cache.
func (s *Server) lockKey(key string) func() {
	s.mu.Lock()
	for {
		ch, busy := s.keyBusy[key]
		if !busy {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	ch := make(chan struct{})
	s.keyBusy[key] = ch
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.keyBusy, key)
		s.mu.Unlock()
		close(ch)
	}
}

// execute runs one admitted job inside an execution slot.
func (s *Server) execute(j *Job) {
	wait := time.Since(j.created)
	if !j.begin(s.nextStartSeq()) {
		return // cancelled between pop and begin
	}
	s.waitSumNS.Add(int64(wait))
	s.waitCount.Add(1)
	s.log.Info("job started",
		"job", j.id, "tenant", j.tenant, "shard", 0, "queue_wait", wait.String())
	execStart := time.Now()
	unlock := s.lockKey(j.key)
	defer unlock()

	if j.ctx.Err() != nil {
		j.finishCancelled()
		s.log.Info("job cancelled", "job", j.id, "tenant", j.tenant)
		return
	}
	// Re-check under the key lock: an identical job that just finished
	// ahead of us already paid for the result.
	if sf, ok := s.cache.lookup(j.spec); ok {
		s.cacheHits.Add(1)
		j.finishCompleted(sf.Result, true)
		s.log.Info("job served from cache", "job", j.id, "tenant", j.tenant)
		return
	}
	path, err := s.cache.prepare(j.spec)
	if err != nil {
		j.finishFailed(ClassInternal, err)
		s.log.Error("job failed", "job", j.id, "tenant", j.tenant, "err", err)
		return
	}
	res, _, err := dist.ExecuteShardPool(j.ctx, j.spec, 0, s.cfg.WorkersPerJob, path, s.pool)
	switch {
	case err == nil:
		j.finishCompleted(res, false)
		s.log.Info("job completed",
			"job", j.id, "tenant", j.tenant, "shard", 0,
			"runs", j.spec.Runs, "elapsed", time.Since(execStart).String())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The artefact stays behind as a resumable same-campaign
		// remnant; a future identical request resumes or reruns it.
		j.finishCancelled()
		s.log.Info("job cancelled mid-campaign",
			"job", j.id, "tenant", j.tenant, "elapsed", time.Since(execStart).String())
	case errors.Is(err, dist.ErrCampaignMismatch):
		j.finishFailed(ClassMismatch, err)
		s.log.Error("job failed", "job", j.id, "tenant", j.tenant, "class", ClassMismatch, "err", err)
	default:
		j.finishFailed(ClassInternal, err)
		s.log.Error("job failed", "job", j.id, "tenant", j.tenant, "class", ClassInternal, "err", err)
	}
}

// buildSpec validates a submit request into a runnable single-shard
// campaign spec. Every rejection is a *APIError of class "usage".
func (s *Server) buildSpec(req *SubmitRequest) (*dist.Spec, error) {
	usage := func(format string, args ...any) error {
		return &APIError{Status: 400, Class: ClassUsage, Msg: fmt.Sprintf(format, args...)}
	}
	var plan *core.TestPlan
	switch {
	case req.Plan != "" && req.PlanFile != "":
		return nil, usage("give either plan or plan_file, not both")
	case req.Plan != "":
		p, err := core.PlanByName(req.Plan)
		if err != nil {
			return nil, usage("%v", err)
		}
		plan = p
	case req.PlanFile != "":
		p, err := core.ParsePlan(req.PlanFile)
		if err != nil {
			return nil, usage("%v", err)
		}
		plan = p
	default:
		return nil, usage("request names no plan (set plan or plan_file)")
	}
	if req.Fault != "" {
		if !core.FaultModelRegistered(req.Fault) {
			return nil, usage("unknown fault model %q (known: %s)", req.Fault, core.FaultModelNames())
		}
		plan.FaultName = req.Fault
	}
	runs := req.Runs
	if req.MaxRuns != 0 {
		if req.CIWidth <= 0 {
			return nil, usage("max_runs is the adaptive stop's guard and needs ci_width")
		}
		if runs != 0 && runs != req.MaxRuns {
			return nil, usage("give either runs or max_runs, not conflicting values of both")
		}
		runs = req.MaxRuns
	}
	if runs <= 0 {
		return nil, usage("runs must be positive, got %d", runs)
	}
	if runs > s.cfg.MaxRuns {
		return nil, usage("runs %d exceeds this server's limit of %d", runs, s.cfg.MaxRuns)
	}
	mode := core.ModeDistribution
	if req.Mode != "" {
		m, err := core.ParseCampaignMode(req.Mode)
		if err != nil {
			return nil, usage("%v", err)
		}
		mode = m
	}
	spec := &dist.Spec{
		Plan:       plan,
		Runs:       runs,
		MasterSeed: uint64(req.Seed),
		Shards:     1,
		Mode:       mode,
		Stratify:   req.Stratify,
	}
	if req.CIWidth < 0 {
		return nil, usage("ci_width must be non-negative, got %v", req.CIWidth)
	}
	if req.CIWidth > 0 {
		spec.Stop = &core.StopSpec{
			Policy:  core.StopPolicyCIWidth,
			WidthBP: int(math.Round(req.CIWidth * 100)),
			MinRuns: req.MinRuns,
		}
	} else if req.MinRuns != 0 {
		return nil, usage("min_runs needs ci_width")
	}
	if err := spec.Validate(); err != nil {
		return nil, usage("%v", err)
	}
	return spec, nil
}
