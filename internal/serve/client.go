package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client speaks the campaign server's API — the certify CLI's submit
// and watch subcommands and the examples are built on it. The zero
// Base is rejected; the zero HTTP client falls back to
// http.DefaultClient.
type Client struct {
	Base string // server base URL, e.g. "http://127.0.0.1:8422"
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do performs one JSON round-trip. Non-2xx responses decode into
// *APIError, preserving the server's error class for exit-code mapping;
// a body that is not the API's error shape still yields an APIError
// with class "internal".
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if c.Base == "" {
		return fmt.Errorf("serve: client has no base URL")
	}
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeAPIError(resp *http.Response) error {
	var eb errorBody
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(data, &eb) != nil || eb.Error == "" {
		eb.Error = strings.TrimSpace(string(data))
		if eb.Error == "" {
			eb.Error = resp.Status
		}
	}
	if eb.Class == "" {
		eb.Class = ClassInternal
	}
	return &APIError{Status: resp.StatusCode, Class: eb.Class, Msg: eb.Error}
}

// Submit posts a campaign request and returns the resulting job view —
// terminal already when the server answered it from its result cache.
func (c *Client) Submit(ctx context.Context, req *SubmitRequest) (*JobView, error) {
	var v JobView
	if err := c.do(ctx, http.MethodPost, "/campaigns", req, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Job fetches one job.
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	var v JobView
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]JobView, error) {
	var vs []JobView
	if err := c.do(ctx, http.MethodGet, "/jobs", nil, &vs); err != nil {
		return nil, err
	}
	return vs, nil
}

// Cancel aborts a job.
func (c *Client) Cancel(ctx context.Context, id string) (*JobView, error) {
	var v JobView
	if err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Result fetches a terminal job view (the server answers 409 while the
// job is still in flight).
func (c *Client) Result(ctx context.Context, id string) (*JobView, error) {
	var v JobView
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Health fetches the server's health and engine fingerprint.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// RawRun fetches run k's stored record line.
func (c *Client) RawRun(ctx context.Context, id string, k int) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(fmt.Sprintf("/jobs/%s/runs/%d", id, k)), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Artefact streams the job's canonical artefact into w.
func (c *Client) Artefact(ctx context.Context, w io.Writer, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/jobs/"+id+"/artefact"), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Watch follows the job's NDJSON event stream, invoking fn per event
// until the stream's final "done" event (or an error). It returns the
// job's terminal view. fn may be nil.
func (c *Client) Watch(ctx context.Context, id string, fn func(Event)) (*JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/jobs/"+id+"/events"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	sawDone := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("serve: bad event line %q: %w", line, err)
		}
		if fn != nil {
			fn(ev)
		}
		if ev.Type == "done" {
			sawDone = true
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawDone {
		return nil, fmt.Errorf("serve: event stream for %s ended without a done event", id)
	}
	return c.Result(ctx, id)
}
