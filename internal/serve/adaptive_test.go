package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"testing"
)

// TestAdaptiveSubmissionCachedByteIdentical: an adaptively-stopped
// campaign is a first-class cache citizen. The stopped artefact is
// stored and replayed byte-identically on resubmission — the certified
// prefix is deterministic, so serving it from the store is sound — and
// the stop target is part of the cache identity: the same campaign at a
// different CI width (or at fixed N) is a different key and executes
// fresh.
func TestAdaptiveSubmissionCachedByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Config{SkipGoldenCheck: true, WorkersPerJob: 2})
	req := &SubmitRequest{PlanFile: shortPlanText, Runs: 18, Seed: 2022, CIWidth: 60}

	status, v1 := rawSubmit(t, c.Base, req)
	if status != http.StatusAccepted {
		t.Fatalf("first adaptive submit status = %d, want 202", status)
	}
	v1done := waitTerminal(t, c, v1.ID)
	if v1done.State != StateCompleted || v1done.Cached {
		t.Fatalf("first job = %s cached=%v (%s), want completed fresh", v1done.State, v1done.Cached, v1done.Error)
	}
	ran := 0
	for _, n := range v1done.Distribution {
		ran += n
	}
	if ran >= 18 || ran == 0 {
		t.Fatalf("adaptive campaign ran %d of 18 runs — the 60pp target should stop it early", ran)
	}
	var art1 bytes.Buffer
	if err := c.Artefact(context.Background(), &art1, v1.ID); err != nil {
		t.Fatal(err)
	}

	status, v2 := rawSubmit(t, c.Base, req)
	if status != http.StatusOK || !v2.Cached || v2.State != StateCompleted {
		t.Fatalf("identical adaptive resubmit: status %d cached=%v state=%s, want 200 cache hit", status, v2.Cached, v2.State)
	}
	var art2 bytes.Buffer
	if err := c.Artefact(context.Background(), &art2, v2.ID); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art1.Bytes(), art2.Bytes()) {
		t.Fatal("cached adaptive artefact is not byte-identical to the fresh execution's")
	}

	// A tighter CI target is a different experiment: cache miss.
	narrower := *req
	narrower.CIWidth = 50
	status, v3 := rawSubmit(t, c.Base, &narrower)
	if status != http.StatusAccepted {
		t.Fatalf("different ci-width submit status = %d, want 202 (cache miss)", status)
	}
	if v3done := waitTerminal(t, c, v3.ID); v3done.State != StateCompleted || v3done.Cached {
		t.Fatalf("narrower job = %s cached=%v, want fresh execution", v3done.State, v3done.Cached)
	}

	// So is the fixed-N campaign over the same plan and window.
	fixed := *req
	fixed.CIWidth = 0
	if status, _ := rawSubmit(t, c.Base, &fixed); status != http.StatusAccepted {
		t.Fatalf("fixed-N submit status = %d, want 202 (cache miss)", status)
	}
}

// TestAdaptiveSubmitValidation pins the request-shape rules of the
// adaptive fields: the max-N guard needs a CI target, Runs and MaxRuns
// are mutually exclusive spellings of the same bound, and MinRuns
// without a stop target is meaningless.
func TestAdaptiveSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Config{SkipGoldenCheck: true, MaxRuns: 50})
	for name, req := range map[string]*SubmitRequest{
		"max-runs without ci-width": {PlanFile: shortPlanText, MaxRuns: 10},
		"max-runs conflicts runs":   {PlanFile: shortPlanText, Runs: 10, MaxRuns: 12, CIWidth: 50},
		"min-runs without ci-width": {PlanFile: shortPlanText, Runs: 10, MinRuns: 4},
		"negative ci-width":         {PlanFile: shortPlanText, Runs: 10, CIWidth: -5},
	} {
		_, err := c.Submit(context.Background(), req)
		var ae *APIError
		if !errors.As(err, &ae) || ae.Class != ClassUsage {
			t.Fatalf("%s: err = %v, want APIError class usage", name, err)
		}
	}
	// MaxRuns alone (with a CI target) is the canonical adaptive spelling.
	v, err := c.Submit(context.Background(), &SubmitRequest{PlanFile: shortPlanText, MaxRuns: 18, CIWidth: 60})
	if err != nil {
		t.Fatal(err)
	}
	if done := waitTerminal(t, c, v.ID); done.State != StateCompleted {
		t.Fatalf("max-runs submission = %s (%s), want completed", done.State, done.Error)
	}
}
