package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/dessertlab/certify/internal/dist"
	"github.com/dessertlab/certify/internal/obs"
)

// Handler returns the server's HTTP API:
//
//	POST   /campaigns          submit a campaign (SubmitRequest) → JobView
//	GET    /jobs               list jobs → []JobView
//	GET    /jobs/{id}          one job → JobView
//	DELETE /jobs/{id}          cancel → JobView
//	GET    /jobs/{id}/events   live progress stream (NDJSON; SSE under
//	                           Accept: text/event-stream)
//	GET    /jobs/{id}/runs/{k} run k's record by global index (JSON line)
//	GET    /jobs/{id}/artefact canonical shard artefact (NDJSON)
//	GET    /jobs/{id}/result   terminal JobView (409 while in flight)
//	GET    /healthz            Health + golden engine fingerprint
//	GET    /metrics            flight recorder, Prometheus text exposition
//	GET    /debug/vars         flight recorder, expvar-style JSON
//
// Errors are JSON bodies {"error": ..., "class": ...}; the class is the
// machine-readable half the certify CLI maps onto exit codes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/runs/{k}", s.handleRunRecord)
	mux.HandleFunc("GET /jobs/{id}/artefact", s.handleArtefact)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
	return mux
}

// handleMetrics serves the process-wide flight recorder in Prometheus
// text exposition format: every registered metric family across core,
// pool, dist, fanout and serve.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

// handleDebugVars serves the same registry as one JSON object keyed by
// metric name — the expvar-style view for humans and scripts.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	obs.Default.WriteJSON(w)
}

// writeAPIError emits the uniform error body.
func writeAPIError(w http.ResponseWriter, status int, class, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...), Class: class})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, ClassUsage, "bad request body: %v", err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Certify-Tenant")
	}
	j, err := s.Submit(&req)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) {
			writeAPIError(w, ae.Status, ae.Class, "%s", ae.Msg)
			return
		}
		writeAPIError(w, http.StatusInternalServerError, ClassInternal, "%v", err)
		return
	}
	// A cache hit completes synchronously: 200 with the result in hand.
	// Anything else is admitted for execution: 202.
	status := http.StatusAccepted
	if j.State().Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, j.View())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, views)
}

// job resolves the {id} path segment, answering 404 itself on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeAPIError(w, http.StatusNotFound, ClassNotFound, "no job %q", id)
		return nil
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.View())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	v := j.View()
	if !v.State.Terminal() {
		writeAPIError(w, http.StatusConflict, ClassConflict, "job %s is %s — not terminal yet", v.ID, v.State)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// handleRunRecord serves run k's stored record line, live: while the
// campaign is still executing, the dossier's sequential fallback sees
// whatever records have been flushed so far, so a record is fetchable
// moments after its run classifies.
func (s *Server) handleRunRecord(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	k, err := strconv.Atoi(r.PathValue("k"))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, ClassUsage, "bad run index %q", r.PathValue("k"))
		return
	}
	d, err := dist.OpenDossier(s.ArtefactPath(j))
	if err != nil {
		writeAPIError(w, http.StatusNotFound, ClassNotFound, "job %s holds no readable artefact yet: %v", j.id, err)
		return
	}
	defer d.Close()
	line, err := d.RawRun(k)
	if err != nil {
		writeAPIError(w, http.StatusNotFound, ClassNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(line)
	w.Write([]byte("\n"))
}

// handleArtefact streams the completed job's canonical artefact — the
// byte stream that is identical between a fresh execution and a cache
// hit of the same campaign.
func (s *Server) handleArtefact(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if st := j.State(); st != StateCompleted {
		writeAPIError(w, http.StatusConflict, ClassConflict, "job %s is %s — artefact is served for completed jobs", j.id, st)
		return
	}
	d, err := dist.OpenDossier(s.ArtefactPath(j))
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, ClassInternal, "%v", err)
		return
	}
	defer d.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := dist.WriteCanonical(w, d); err != nil {
		// Headers are gone; the truncated body fails the client's parse.
		return
	}
}

// handleEvents is the live stream: NDJSON events (SSE data frames when
// the client asks for text/event-stream) reporting state transitions,
// artefact growth at run granularity via dist.Tail, and one final
// "done" event carrying the terminal payload.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev Event) {
		ev.Job = j.id
		if sse {
			fmt.Fprint(w, "data: ")
		}
		enc.Encode(ev)
		if sse {
			fmt.Fprint(w, "\n")
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	final := func() {
		v := j.View()
		emit(Event{
			Type: "done", State: v.State, Cached: v.Cached,
			Runs: v.Runs, Total: v.Runs,
			Distribution: v.Distribution, InjectionsTotal: v.InjectionsTotal,
			Error: v.Error,
		})
	}

	lastState := j.State()
	emit(Event{Type: "state", State: lastState})
	if lastState.Terminal() {
		final()
		return
	}
	tail := dist.NewTail(s.ArtefactPath(j))
	total := j.spec.Runs
	lastRuns := -1
	ticker := time.NewTicker(s.cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			final()
			return
		case <-ticker.C:
			if st := j.State(); st != lastState {
				lastState = st
				emit(Event{Type: "state", State: st})
			}
			if p, err := tail.Poll(); err == nil && p.Countable && p.Runs != lastRuns {
				lastRuns = p.Runs
				emit(Event{Type: "progress", Runs: p.Runs, Total: total, Bytes: p.Bytes})
			}
		}
	}
}
