package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServerCachedRequest measures layer 2 of the campaign server:
// a submit whose (plan hash, seed, runs, mode) key already has a
// verified artefact in the result cache is answered synchronously from
// the store — manifest check, summary decode, HTTP round trip — without
// simulating a single run. The fresh execution of the same 40-run E3
// campaign is timed once as the baseline; the acceptance bar is a ≥100×
// speedup for the cached path. (Lives here rather than in the root
// bench harness: linking net/http into the root test binary perturbs
// TestTraceArenaPresize's allocation goldens.)
func BenchmarkServerCachedRequest(b *testing.B) {
	s, err := New(Config{
		DataDir: b.TempDir(), SkipGoldenCheck: true, WorkersPerJob: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	c := &Client{Base: ts.URL, HTTP: ts.Client()}
	ctx := context.Background()
	req := &SubmitRequest{Plan: "E3-fig3", Runs: 40, Seed: 2022}

	// Fresh execution: submit, then poll to completion. Timed once as
	// the baseline the cache is measured against.
	freshStart := time.Now()
	v, err := c.Submit(ctx, req)
	if err != nil {
		b.Fatal(err)
	}
	for !v.State.Terminal() {
		time.Sleep(2 * time.Millisecond)
		if v, err = c.Job(ctx, v.ID); err != nil {
			b.Fatal(err)
		}
	}
	fresh := time.Since(freshStart)
	if v.State != StateCompleted || v.Cached {
		b.Fatalf("baseline job = %s cached=%v", v.State, v.Cached)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := c.Submit(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if !hit.Cached || hit.State != StateCompleted {
			b.Fatalf("request %d missed the cache: %s cached=%v", i, hit.State, hit.Cached)
		}
	}
	b.StopTimer()
	cached := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(fresh.Milliseconds()), "fresh_ms")
	b.ReportMetric(fresh.Seconds()/cached.Seconds(), "speedup_x")
}
