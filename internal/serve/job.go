package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/dist"
)

// State is a job's position in its lifecycle.
type State string

// Job lifecycle states. queued → running → one of the terminal three;
// a queued job may jump straight to cancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateCompleted, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Job is one submitted campaign: its validated spec, cache identity and
// lifecycle. All mutable state sits behind mu; Done() closes exactly
// once, on the transition into a terminal state.
type Job struct {
	id      string
	tenant  string
	key     string
	spec    *dist.Spec
	created time.Time

	// ctx is cancelled by a cancel request or server shutdown; the
	// executor passes it into the dist pipeline, so an abort stops the
	// campaign mid-shard and leaves the artefact resumable.
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	state    State
	cached   bool
	startSeq int
	errText  string
	errClass string
	result   *core.CampaignResult
}

func newJob(id, tenant, key string, spec *dist.Spec, parent context.Context) *Job {
	ctx, cancel := context.WithCancel(parent)
	metJobTransitions.With(string(StateQueued)).Inc()
	return &Job{
		id:      id,
		tenant:  tenant,
		key:     key,
		spec:    spec,
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// stateAndCached snapshots the fields /healthz aggregates over.
func (j *Job) stateAndCached() (State, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.cached
}

// begin claims the job for execution (queued → running), stamping the
// server-wide start sequence. It returns false when the job was
// cancelled while queued — the executor then releases its slot without
// touching the machine pool.
func (j *Job) begin(seq int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.startSeq = seq
	metJobTransitions.With(string(StateRunning)).Inc()
	metQueueWait.With(j.tenant).ObserveSince(j.created)
	return true
}

// finish moves the job into a terminal state exactly once; mutate runs
// under the job lock to attach the terminal payload. Late finishers
// (an executor racing a cancel request) are no-ops.
func (j *Job) finish(state State, mutate func()) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	if mutate != nil {
		mutate()
	}
	j.mu.Unlock()
	metJobTransitions.With(string(state)).Inc()
	close(j.done)
}

func (j *Job) finishCompleted(res *core.CampaignResult, cached bool) {
	j.finish(StateCompleted, func() {
		j.result = res
		j.cached = cached
	})
}

func (j *Job) finishCancelled() {
	j.finish(StateCancelled, nil)
}

func (j *Job) finishFailed(class string, err error) {
	j.finish(StateFailed, func() {
		j.errClass = class
		j.errText = err.Error()
	})
}

// requestCancel asks the job to stop: a queued job becomes cancelled on
// the spot (the dispatcher discards it), a running one has its context
// cancelled and the executor records the abort.
func (j *Job) requestCancel() {
	j.cancel()
	j.finishIfQueuedCancelled()
}

func (j *Job) finishIfQueuedCancelled() {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	j.state = StateCancelled
	j.mu.Unlock()
	metJobTransitions.With(string(StateCancelled)).Inc()
	close(j.done)
}

// View renders the job for the API.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.id,
		Tenant:     j.tenant,
		State:      j.state,
		Cached:     j.cached,
		Key:        j.key,
		Plan:       j.spec.Plan.Name,
		PlanHash:   fmt.Sprintf("%#x", j.spec.Plan.Hash()),
		FaultModel: j.spec.Plan.EffectiveFaultName(),
		Runs:       j.spec.Runs,
		Seed:       Seed(j.spec.MasterSeed),
		Mode:       j.spec.Mode.String(),
		StartSeq:   j.startSeq,
		Error:      j.errText,
		ErrorClass: j.errClass,
	}
	if j.result != nil {
		dist := make(map[string]int, len(core.AllOutcomes()))
		for _, o := range core.AllOutcomes() {
			dist[o.String()] = j.result.Count(o)
		}
		v.Distribution = dist
		v.InjectionsTotal = j.result.InjectionsTotal()
		v.MeanDetectionNS = int64(j.result.MeanDetectionLatency())
	}
	return v
}
