package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// sampleLine is the Prometheus text-exposition sample grammar this repo
// emits: name, optional one-label set, a float value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[-+]?[0-9].*|[-+]?Inf)$`)

// TestMetricsEndpoint drives one campaign through the server and checks
// GET /metrics is valid Prometheus text exposition covering the metric
// families of every instrumented layer — core, pool, dist and serve —
// and that GET /debug/vars serves the same registry as JSON.
func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{SkipGoldenCheck: true, WorkersPerJob: 2})
	v, err := c.Submit(context.Background(), &SubmitRequest{PlanFile: shortPlanText, Runs: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, c, v.ID); fin.State != StateCompleted {
		t.Fatalf("job ended %s (%s)", fin.State, fin.Error)
	}

	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// One family per instrumented layer must be present with HELP/TYPE.
	for _, fam := range []string{
		"certify_core_runs_total",
		"certify_core_run_duration_seconds",
		"certify_pool_get_seconds",
		"certify_dist_records_total",
		"certify_serve_job_transitions_total",
		"certify_serve_queue_wait_seconds",
	} {
		if !strings.Contains(text, "# HELP "+fam+" ") {
			t.Errorf("exposition lacks HELP for %s", fam)
		}
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("exposition lacks TYPE for %s", fam)
		}
	}
	// The completed job must be visible in the serve families.
	if !strings.Contains(text, `certify_serve_job_transitions_total{state="completed"}`) {
		t.Errorf("no completed-state transition sample in exposition")
	}

	// Every non-comment line is a well-formed sample; histograms carry
	// the cumulative +Inf bucket.
	sc := bufio.NewScanner(strings.NewReader(text))
	samples, infBuckets := 0, 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		samples++
		if strings.Contains(line, `le="+Inf"`) {
			infBuckets++
		}
	}
	if samples == 0 {
		t.Fatal("exposition carries no samples")
	}
	if infBuckets == 0 {
		t.Fatal("no histogram +Inf bucket in exposition")
	}

	// /debug/vars: same registry, one JSON object keyed by metric name.
	vresp, err := http.Get(c.Base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	if _, ok := vars["certify_core_runs_total"]; !ok {
		t.Errorf("/debug/vars lacks certify_core_runs_total (keys: %d)", len(vars))
	}

	// The extended /healthz carries the flight-recorder aggregates the
	// watch footer prints: this server executed one uncached job.
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.CacheMisses < 1 {
		t.Errorf("healthz cache_misses = %d, want ≥ 1", h.CacheMisses)
	}
	if h.QueueWaitMeanMS < 0 {
		t.Errorf("healthz queue_wait_mean_ms = %v, want ≥ 0", h.QueueWaitMeanMS)
	}
	if h.UptimeSeconds <= 0 {
		t.Errorf("healthz uptime_seconds = %v, want > 0", h.UptimeSeconds)
	}
	if h.Running != 0 || h.SlotsBusy != 0 {
		t.Errorf("healthz running=%d slots_busy=%d after terminal job, want 0/0", h.Running, h.SlotsBusy)
	}
}
