package serve

import "github.com/dessertlab/certify/internal/obs"

// Flight-recorder instrumentation for the campaign server: queue wait
// per tenant, slot occupancy, cache effectiveness and the job lifecycle
// as a transition stream. Exposed on the server's own mux via
// GET /metrics (Prometheus) and GET /debug/vars (JSON).
var (
	metQueueWait = obs.Default.NewHistogramVec(
		"certify_serve_queue_wait_seconds",
		"Time a job waited from submission to execution start, by tenant.",
		"tenant", obs.LatencyBuckets)
	metSlotsBusy = obs.Default.NewGauge(
		"certify_serve_slots_busy",
		"Execution slots currently occupied.")
	metQueueDepth = obs.Default.NewGauge(
		"certify_serve_queue_depth",
		"Jobs waiting in the fair queue.")

	metCacheHits = obs.Default.NewCounter(
		"certify_serve_cache_hits_total",
		"Submissions answered from the verified result cache.")
	metCacheMisses = obs.Default.NewCounter(
		"certify_serve_cache_misses_total",
		"Cache probes that found no servable entry.")
	metCachePoisoned = obs.Default.NewCounter(
		"certify_serve_cache_poisoned_total",
		"Cache entries removed as poisoned (foreign or unreadable).")

	metJobTransitions = obs.Default.NewCounterVec(
		"certify_serve_job_transitions_total",
		"Job lifecycle transitions, by state entered.",
		"state")
)
