package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dessertlab/certify/internal/core"
	"github.com/dessertlab/certify/internal/dist"
)

// shortPlanText is a plan-file E3 variant with a shortened horizon so
// server tests execute campaigns in milliseconds per run.
const shortPlanText = `name      = E3-serve-short
points    = arch_handle_trap
intensity = medium
cpu       = 1
cell      = freertos-cell
duration  = 8s
workload  = steady
`

// newTestServer boots a server (golden self-check skipped unless the
// test opts in) behind httptest and returns it with a wired client.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Poll == 0 {
		cfg.Poll = 2 * time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, &Client{Base: ts.URL, HTTP: ts.Client()}
}

// waitTerminal polls the job until it leaves the queue/run states.
func waitTerminal(t *testing.T, c *Client, id string) *JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// rawSubmit posts the request without the client, exposing the status
// code (202 admitted vs 200 served from cache).
func rawSubmit(t *testing.T, base string, req *SubmitRequest) (int, JobView) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	return resp.StatusCode, v
}

// TestSubmitValidation pins the usage error class for every malformed
// request shape.
func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Config{SkipGoldenCheck: true, MaxRuns: 10})
	bad := []*SubmitRequest{
		{Runs: 4, Seed: 1}, // no plan
		{Plan: "E3-fig3", PlanFile: shortPlanText, Runs: 4}, // both
		{Plan: "nope", Runs: 4},                             // unknown plan
		{PlanFile: "points =", Runs: 4},                     // unparsable plan file
		{Plan: "E3-fig3", Runs: 0},                          // no runs
		{Plan: "E3-fig3", Runs: 11},                         // over MaxRuns
		{Plan: "E3-fig3", Runs: 4, Mode: "verbose"},         // bad mode
		{Plan: "E3-fig3", Runs: 4, Fault: "not-a-model"},    // unknown fault
	}
	for i, req := range bad {
		_, err := c.Submit(context.Background(), req)
		var ae *APIError
		if !errors.As(err, &ae) || ae.Class != ClassUsage {
			t.Fatalf("bad request %d: err = %v, want APIError class usage", i, err)
		}
	}
	// Unknown JSON fields are usage errors too (strict decode).
	resp, err := http.Post(c.Base+"/campaigns", "application/json",
		bytes.NewReader([]byte(`{"plan":"E3-fig3","runs":4,"sede":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	// Missing jobs are not-found.
	_, err = c.Job(context.Background(), "job-999999")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Class != ClassNotFound {
		t.Fatalf("missing job err = %v, want class not-found", err)
	}
}

// TestSeedWireFormat pins the flexible seed encoding: JSON numbers and
// numeric strings both land on the same campaign.
func TestSeedWireFormat(t *testing.T) {
	for _, in := range []string{`2022`, `"2022"`, `"0x7e6"`} {
		var s Seed
		if err := json.Unmarshal([]byte(in), &s); err != nil {
			t.Fatalf("seed %s: %v", in, err)
		}
		if uint64(s) != 2022 {
			t.Fatalf("seed %s = %d, want 2022", in, s)
		}
	}
	out, err := json.Marshal(Seed(2022))
	if err != nil || string(out) != `"0x7e6"` {
		t.Fatalf("marshal = %s (%v), want \"0x7e6\"", out, err)
	}
	var s Seed
	if err := json.Unmarshal([]byte(`"banana"`), &s); err == nil {
		t.Fatal("non-numeric seed accepted")
	}
}

// canonicalBytes renders the artefact at path in canonical form.
func canonicalBytes(t *testing.T, path string) []byte {
	t.Helper()
	d, err := dist.OpenDossier(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var buf bytes.Buffer
	if err := dist.WriteCanonical(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCacheHitByteIdentical is the short-mode cache contract: the
// second identical submission is answered from the store without
// executing, and the artefact served for it is byte-identical both to
// the first execution's and to an independent in-process execution of
// the same spec.
func TestCacheHitByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Config{SkipGoldenCheck: true, WorkersPerJob: 2})
	req := &SubmitRequest{PlanFile: shortPlanText, Runs: 6, Seed: 2022}

	status, v1 := rawSubmit(t, c.Base, req)
	if status != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", status)
	}
	v1done := waitTerminal(t, c, v1.ID)
	if v1done.State != StateCompleted || v1done.Cached {
		t.Fatalf("first job = %s cached=%v, want completed fresh", v1done.State, v1done.Cached)
	}
	var art1 bytes.Buffer
	if err := c.Artefact(context.Background(), &art1, v1.ID); err != nil {
		t.Fatal(err)
	}

	status, v2 := rawSubmit(t, c.Base, req)
	if status != http.StatusOK {
		t.Fatalf("second submit status = %d, want 200 (cache hit)", status)
	}
	if v2.State != StateCompleted || !v2.Cached {
		t.Fatalf("second job = %s cached=%v, want completed from cache", v2.State, v2.Cached)
	}
	if v2.StartSeq != 0 {
		t.Fatalf("cached job has start seq %d — it executed", v2.StartSeq)
	}
	if fmt.Sprint(v2.Distribution) != fmt.Sprint(v1done.Distribution) ||
		v2.InjectionsTotal != v1done.InjectionsTotal {
		t.Fatalf("cached result %v/%d differs from fresh %v/%d",
			v2.Distribution, v2.InjectionsTotal, v1done.Distribution, v1done.InjectionsTotal)
	}
	var art2 bytes.Buffer
	if err := c.Artefact(context.Background(), &art2, v2.ID); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art1.Bytes(), art2.Bytes()) {
		t.Fatal("cached artefact is not byte-identical to the fresh execution's")
	}

	// Independent execution of the same spec, outside the server.
	plan, err := core.ParsePlan(shortPlanText)
	if err != nil {
		t.Fatal(err)
	}
	spec := &dist.Spec{Plan: plan, Runs: 6, MasterSeed: 2022, Shards: 1, Mode: core.ModeDistribution}
	indep := filepath.Join(t.TempDir(), "indep.jsonl")
	if _, _, err := dist.ExecuteShard(context.Background(), spec, 0, 2, indep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art1.Bytes(), canonicalBytes(t, indep)) {
		t.Fatal("served artefact differs from an independent execution's canonical form")
	}
}

// TestCachePoisoning flips bytes in a cached artefact and pins the
// soundness property: the poisoned entry is never served — the
// campaign re-executes and the client still receives the correct
// result.
func TestCachePoisoning(t *testing.T) {
	s, c := newTestServer(t, Config{SkipGoldenCheck: true, WorkersPerJob: 2})
	req := &SubmitRequest{PlanFile: shortPlanText, Runs: 6, Seed: 3}
	_, v1 := rawSubmit(t, c.Base, req)
	v1done := waitTerminal(t, c, v1.ID)
	if v1done.State != StateCompleted {
		t.Fatalf("seed job: %s (%s)", v1done.State, v1done.Error)
	}
	job, _ := s.Job(v1.ID)
	path := s.ArtefactPath(job)
	golden := canonicalBytes(t, path)

	poisons := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"outcome bit-flip", func(b []byte) []byte {
			// Corrupt the first outcome value's leading letter: the record
			// no longer parses as a known outcome.
			return bytes.Replace(b, []byte(`"outcome":"`), []byte(`"outcome":"X`), 1)
		}},
		{"truncated summary", func(b []byte) []byte {
			// Drop everything from the summary footer on: incomplete shard.
			i := bytes.Index(b, []byte(`{"type":"summary"`))
			if i < 0 {
				t.Fatal("no summary line to truncate")
			}
			return b[:i]
		}},
	}
	for _, p := range poisons {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, p.mut(data), 0o644); err != nil {
			t.Fatal(err)
		}
		_, v := rawSubmit(t, c.Base, req)
		if v.State.Terminal() && v.Cached {
			t.Fatalf("%s: poisoned entry served from cache", p.name)
		}
		done := waitTerminal(t, c, v.ID)
		if done.State != StateCompleted || done.Cached {
			t.Fatalf("%s: job = %s cached=%v (%s), want fresh completion",
				p.name, done.State, done.Cached, done.Error)
		}
		if fmt.Sprint(done.Distribution) != fmt.Sprint(v1done.Distribution) {
			t.Fatalf("%s: re-executed result %v differs from original %v",
				p.name, done.Distribution, v1done.Distribution)
		}
		if !bytes.Equal(canonicalBytes(t, path), golden) {
			t.Fatalf("%s: re-executed artefact not byte-identical to the original", p.name)
		}
	}
}

// TestCancellationFreesSlotAndLeavesResumableArtefact: cancelling an
// in-flight job aborts it mid-campaign, the artefact left behind is a
// resumable same-campaign remnant, the freed slot admits the next job,
// and resubmitting the cancelled campaign completes it.
func TestCancellationFreesSlotAndLeavesResumableArtefact(t *testing.T) {
	s, c := newTestServer(t, Config{SkipGoldenCheck: true, Slots: 1, WorkersPerJob: 1})
	long := &SubmitRequest{Plan: "E3-fig3", Runs: 16, Seed: 7}
	_, v := rawSubmit(t, c.Base, long)

	// Wait until the campaign has made real progress, then cancel.
	job, _ := s.Job(v.ID)
	tail := dist.NewTail(s.ArtefactPath(job))
	deadline := time.Now().Add(60 * time.Second)
	for {
		p, _ := tail.Poll()
		if p.Runs >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.Cancel(context.Background(), v.ID); err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, c, v.ID)
	if done.State != StateCancelled {
		t.Fatalf("cancelled job state = %s", done.State)
	}

	// The artefact is a same-campaign incomplete remnant.
	sf, err := dist.ReadShard(s.ArtefactPath(job))
	if err != nil {
		t.Fatalf("remnant unreadable: %v", err)
	}
	sh, _ := job.spec.Shard(0)
	if sf.Complete || !sf.Manifest.SameCampaignAs(sh) {
		t.Fatalf("remnant complete=%v sameCampaign=%v, want incomplete same-campaign",
			sf.Complete, sf.Manifest.SameCampaignAs(sh))
	}

	// The slot is free: an unrelated small job completes.
	_, quick := rawSubmit(t, c.Base, &SubmitRequest{PlanFile: shortPlanText, Runs: 2, Seed: 11})
	if q := waitTerminal(t, c, quick.ID); q.State != StateCompleted {
		t.Fatalf("post-cancel job = %s (%s) — slot never freed?", q.State, q.Error)
	}

	// Resubmitting the cancelled campaign finishes it (fresh execution
	// over the remnant, not a cache hit).
	_, again := rawSubmit(t, c.Base, long)
	if again.Cached {
		t.Fatal("incomplete remnant served as a cache hit")
	}
	fin := waitTerminal(t, c, again.ID)
	if fin.State != StateCompleted || fin.Cached {
		t.Fatalf("resubmitted campaign = %s cached=%v (%s)", fin.State, fin.Cached, fin.Error)
	}
	total := 0
	for _, n := range fin.Distribution {
		total += n
	}
	if total != 16 {
		t.Fatalf("resumed campaign classified %d runs, want 16", total)
	}
}

// TestHTTPFairnessFloodedTenant pins the end-to-end fairness bound:
// with one execution slot and a tenant flooding the queue, another
// tenant's single job starts within one job-slot turnaround (start
// sequence ≤ 3: the job already running, at most one more flood job,
// then the quiet tenant). Per-tenant submission order is preserved.
func TestHTTPFairnessFloodedTenant(t *testing.T) {
	_, c := newTestServer(t, Config{SkipGoldenCheck: true, Slots: 1, WorkersPerJob: 1})
	// Each flood job simulates 40 minute-horizon runs, so the slot stays
	// occupied for real wall-clock time — long enough that the backlog
	// is still queued when the quiet tenant shows up, even with
	// snapshot-restore machines recycling runs in microseconds. Distinct
	// seeds defeat the result cache.
	var flood []string
	for i := 0; i < 4; i++ {
		_, v := rawSubmit(t, c.Base, &SubmitRequest{
			Tenant: "noisy", Plan: "E3-fig3", Runs: 40, Seed: Seed(100 + i),
		})
		flood = append(flood, v.ID)
	}
	_, quiet := rawSubmit(t, c.Base, &SubmitRequest{
		Tenant: "quiet", Plan: "E3-fig3", Runs: 2, Seed: 999,
	})

	for _, id := range append(append([]string{}, flood...), quiet.ID) {
		if v := waitTerminal(t, c, id); v.State != StateCompleted {
			t.Fatalf("job %s = %s (%s)", id, v.State, v.Error)
		}
	}
	qv, err := c.Job(context.Background(), quiet.ID)
	if err != nil {
		t.Fatal(err)
	}
	if qv.StartSeq == 0 || qv.StartSeq > 3 {
		t.Fatalf("quiet tenant start seq = %d, want 1..3 (one turnaround despite the flood)", qv.StartSeq)
	}
	prev := 0
	for _, id := range flood {
		v, _ := c.Job(context.Background(), id)
		if v.StartSeq <= prev {
			t.Fatalf("flood tenant jobs out of FIFO order: %s started at %d after %d", id, v.StartSeq, prev)
		}
		prev = v.StartSeq
	}
}

// TestEventsAndRunRecords exercises the live-streaming layer: the
// event stream yields state → progress → done, and run records are
// fetchable by global index afterwards.
func TestEventsAndRunRecords(t *testing.T) {
	// Minute-horizon runs take real wall-clock time, so the stream
	// attaches while the campaign is still in flight.
	_, c := newTestServer(t, Config{SkipGoldenCheck: true, WorkersPerJob: 1})
	_, v := rawSubmit(t, c.Base, &SubmitRequest{Plan: "E3-fig3", Runs: 8, Seed: 5})

	var events []Event
	fin, err := c.Watch(context.Background(), v.ID, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCompleted {
		t.Fatalf("watched job = %s (%s)", fin.State, fin.Error)
	}
	if len(events) == 0 || events[0].Type != "state" {
		t.Fatalf("stream did not open with a state event: %+v", events)
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.State != StateCompleted {
		t.Fatalf("stream did not end with a completed done event: %+v", last)
	}
	total := 0
	for _, n := range last.Distribution {
		total += n
	}
	if total != 8 {
		t.Fatalf("done event distribution sums to %d, want 8", total)
	}
	sawProgress := false
	for _, ev := range events {
		if ev.Type == "progress" && ev.Runs > 0 {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Fatal("no per-run progress event observed during execution")
	}

	for _, k := range []int{0, 7} {
		line, err := c.RawRun(context.Background(), v.ID, k)
		if err != nil {
			t.Fatalf("run %d: %v", k, err)
		}
		var rec dist.RunRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Index != k {
			t.Fatalf("run %d record = %s (err %v)", k, line, err)
		}
	}
	if _, err := c.RawRun(context.Background(), v.ID, 8); err == nil {
		t.Fatal("out-of-window run record served")
	}
	var ae *APIError
	if err := c.Artefact(context.Background(), bytes.NewBuffer(nil), "job-424242"); !errors.As(err, &ae) || ae.Class != ClassNotFound {
		t.Fatalf("artefact of missing job: %v, want not-found", err)
	}
}

// TestServerGoldenCampaignE2E is the paper-pinned end-to-end check: the
// seed-2022 40-run E3 campaign submitted over HTTP reproduces the
// golden 23/1/16 split with 56 injections; the second identical request
// is a cache hit serving byte-identical evidence; and /healthz carries
// the engine's golden trace fingerprint 0xa10df7f198db0642.
func TestServerGoldenCampaignE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden campaign")
	}
	_, c := newTestServer(t, Config{WorkersPerJob: 4}) // golden self-check ON
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.GoldenTraceHash != "0xa10df7f198db0642" {
		t.Fatalf("golden trace hash = %s, want 0xa10df7f198db0642", h.GoldenTraceHash)
	}

	req := &SubmitRequest{Plan: "E3-fig3", Runs: 40, Seed: 2022}
	status, v1 := rawSubmit(t, c.Base, req)
	if status != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", status)
	}
	v1done := waitTerminal(t, c, v1.ID)
	if v1done.State != StateCompleted || v1done.Cached {
		t.Fatalf("first job = %s cached=%v (%s)", v1done.State, v1done.Cached, v1done.Error)
	}
	want := map[string]int{
		core.OutcomeCorrect.String():      23,
		core.OutcomeInconsistent.String(): 1,
		core.OutcomePanicPark.String():    16,
	}
	for name, n := range want {
		if v1done.Distribution[name] != n {
			t.Fatalf("distribution[%s] = %d, want %d (full: %v)",
				name, v1done.Distribution[name], n, v1done.Distribution)
		}
	}
	if v1done.InjectionsTotal != 56 {
		t.Fatalf("injections = %d, want 56", v1done.InjectionsTotal)
	}

	var art1 bytes.Buffer
	if err := c.Artefact(context.Background(), &art1, v1.ID); err != nil {
		t.Fatal(err)
	}
	status, v2 := rawSubmit(t, c.Base, req)
	if status != http.StatusOK || !v2.Cached || v2.State != StateCompleted {
		t.Fatalf("second submit: status %d cached=%v state=%s, want 200 cache hit", status, v2.Cached, v2.State)
	}
	for name, n := range want {
		if v2.Distribution[name] != n {
			t.Fatalf("cached distribution[%s] = %d, want %d", name, v2.Distribution[name], n)
		}
	}
	var art2 bytes.Buffer
	if err := c.Artefact(context.Background(), &art2, v2.ID); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art1.Bytes(), art2.Bytes()) {
		t.Fatal("cached golden artefact not byte-identical to the fresh one")
	}

	// The same campaign executed independently canonicalises to the
	// same bytes the server served.
	spec := &dist.Spec{Plan: core.PlanE3Fig3(), Runs: 40, MasterSeed: 2022, Shards: 1, Mode: core.ModeDistribution}
	indep := filepath.Join(t.TempDir(), "indep.jsonl")
	if _, _, err := dist.ExecuteShard(context.Background(), spec, 0, 4, indep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art1.Bytes(), canonicalBytes(t, indep)) {
		t.Fatal("served golden artefact differs from an independent execution's canonical form")
	}
}
