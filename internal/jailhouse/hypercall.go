package jailhouse

import "fmt"

// Hypercall codes, numerically identical to Jailhouse v0.12's
// jailhouse/hypercall.h.
const (
	HCDisable           uint32 = 0
	HCCellCreate        uint32 = 1
	HCCellStart         uint32 = 2
	HCCellSetLoadable   uint32 = 3
	HCCellDestroy       uint32 = 4
	HCHypervisorGetInfo uint32 = 5
	HCCellGetState      uint32 = 6
	HCCPUGetInfo        uint32 = 7
	HCDebugConsolePutc  uint32 = 8

	// numHypercalls bounds the dispatch table; anything at or above it
	// is an unknown code and returns -ENOSYS.
	numHypercalls = 9
)

// HypercallName returns the mnemonic for a hypercall code.
func HypercallName(code uint32) string {
	names := [...]string{
		"HYPERVISOR_DISABLE", "CELL_CREATE", "CELL_START", "CELL_SET_LOADABLE",
		"CELL_DESTROY", "HYPERVISOR_GET_INFO", "CELL_GET_STATE", "CPU_GET_INFO",
		"DEBUG_CONSOLE_PUTC",
	}
	if code < uint32(len(names)) {
		return names[code]
	}
	return fmt.Sprintf("HYPERCALL(%d)", code)
}

// GetInfo item codes for HCHypervisorGetInfo.
const (
	InfoMemPoolSize uint32 = 0
	InfoMemPoolUsed uint32 = 1
	InfoNumCells    uint32 = 2
	InfoCodeVersion uint32 = 3
)

// CPUGetInfo item codes.
const (
	CPUInfoState     uint32 = 0
	CPUInfoStatParks uint32 = 1
)

// CPU states reported by HCCPUGetInfo.
const (
	CPUStateRunning   uint32 = 0
	CPUStateSuspended uint32 = 1
	CPUStateParked    uint32 = 2
	CPUStateOffline   uint32 = 3
)

// CellState is the lifecycle state reported by HCCellGetState, matching
// JAILHOUSE_CELL_* in Jailhouse v0.12.
type CellState uint32

// Cell lifecycle states.
const (
	CellRunning       CellState = 0
	CellRunningLocked CellState = 1
	CellShutDown      CellState = 2
	CellFailed        CellState = 3
)

// String renders the state the way "jailhouse cell list" does.
func (s CellState) String() string {
	switch s {
	case CellRunning:
		return "running"
	case CellRunningLocked:
		return "running/locked"
	case CellShutDown:
		return "shut down"
	case CellFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", uint32(s))
	}
}
