package jailhouse

import (
	"fmt"

	"github.com/dessertlab/certify/internal/memmap"
)

// Inmate is the software loaded into a cell — a guest OS plus its
// workload. Guest models (internal/guest/...) implement it. The
// hypervisor calls these methods; guests call back into the hypervisor
// through the GuestPort API (HVC, GuestRead32/GuestWrite32, SMC).
type Inmate interface {
	// Name identifies the guest in traces.
	Name() string
	// Boot starts the guest on the given CPU. Called once per cell CPU
	// when the cell starts (after CPU reset).
	Boot(cpu int)
	// OnIRQ delivers a virtual interrupt while the guest is running.
	OnIRQ(cpu, irq int)
	// OnCorruptedResume informs the guest that the hypervisor restored a
	// modified register frame: fields lists the trap-context slots whose
	// values changed across the handler. The guest decides — per its
	// documented register image — whether that corruption is fatal,
	// latent or benign.
	OnCorruptedResume(cpu int, fields []int)
	// OnCPUParked tells the guest the hypervisor parked one of its CPUs;
	// the guest stops scheduling work there.
	OnCPUParked(cpu int)
	// OnShutdown delivers the SHUTDOWN_REQUEST comm-region message.
	OnShutdown()
}

// Cell is the runtime state of one partition.
type Cell struct {
	ID     uint32
	Config *CellConfig
	State  CellState

	// Stage2 is the cell's guest-physical address space.
	Stage2 *memmap.Stage2

	// CPUs currently assigned (may differ transiently from the config
	// during create/destroy).
	cpus map[int]bool

	// Loadable reports whether the cell's loadable regions are mapped
	// into the root cell for image loading (SET_LOADABLE issued).
	Loadable bool

	// Guest is the inmate software, attached by LoadInmate.
	Guest Inmate

	// CommPending holds the last comm-region message sent to the cell.
	CommPending uint32

	// virqMsg caches the rendered per-IRQ injection trace line ("vIRQ n →
	// cell name"), indexed by IRQ. The line is emitted once per delivered
	// virtual interrupt — the single hottest trace record in a campaign —
	// and its text depends only on the IRQ number and the cell's fixed
	// configured name, so rendering it once and appending the cached
	// string keeps the per-tick path free of format-arg bookkeeping. Pure
	// cache: not part of any snapshot or digest.
	virqMsg []string
}

// Comm-region messages (subset of JAILHOUSE_MSG_*).
const (
	MsgNone            uint32 = 0
	MsgShutdownRequest uint32 = 1
)

func newCell(id uint32, cfg *CellConfig) (*Cell, error) {
	s2 := memmap.NewStage2()
	for _, r := range cfg.MemRegions {
		if err := s2.Map(r); err != nil {
			return nil, err
		}
	}
	c := &Cell{
		ID:     id,
		Config: cfg,
		State:  CellShutDown,
		Stage2: s2,
		cpus:   make(map[int]bool),
	}
	for _, cpu := range cfg.CPUs() {
		c.cpus[cpu] = true
	}
	return c, nil
}

// Name returns the cell's configured name.
func (c *Cell) Name() string { return c.Config.Name }

// HasCPU reports whether cpu is currently assigned to the cell.
func (c *Cell) HasCPU(cpu int) bool { return c.cpus[cpu] }

// CPUList returns the assigned CPUs in ascending order.
func (c *Cell) CPUList() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if c.cpus[i] {
			out = append(out, i)
		}
	}
	return out
}

// removeCPU detaches a CPU from the cell.
func (c *Cell) removeCPU(cpu int) { delete(c.cpus, cpu) }

// addCPU attaches a CPU to the cell.
func (c *Cell) addCPU(cpu int) { c.cpus[cpu] = true }

// OwnsMMIO reports whether gpa falls inside any of the cell's regions
// carrying the IO flag (direct-assigned device windows).
func (c *Cell) OwnsMMIO(gpa uint64) bool {
	r, ok := c.Stage2.Lookup(gpa)
	return ok && r.Flags&memmap.FlagIO != 0
}

// String renders the cell like "jailhouse cell list" output.
func (c *Cell) String() string {
	return fmt.Sprintf("%-24s %-14s cpus=%v", c.Name(), c.State, c.CPUList())
}
