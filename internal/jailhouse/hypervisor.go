package jailhouse

import (
	"errors"
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/sim"
)

// InjectionPoint identifies one of the three instrumented hypervisor
// entry functions — the paper's candidate fault-injection points chosen
// by profiling golden runs.
type InjectionPoint int

// The instrumented functions.
const (
	PointTrap    InjectionPoint = iota + 1 // arch_handle_trap()
	PointHVC                               // arch_handle_hvc()
	PointIRQChip                           // irqchip_handle_irq()
)

// String returns the Jailhouse source-level function name.
func (p InjectionPoint) String() string {
	switch p {
	case PointTrap:
		return "arch_handle_trap"
	case PointHVC:
		return "arch_handle_hvc"
	case PointIRQChip:
		return "irqchip_handle_irq"
	default:
		return fmt.Sprintf("point(%d)", int(p))
	}
}

// Damage describes collateral corruption of live hypervisor state caused
// by an injection — the component of a register flip that hits hypervisor
// working registers rather than the saved guest frame (see the
// SensitivityProfile discussion in DESIGN.md).
type Damage uint8

// Damage levels.
const (
	// DamageNone: the flip affected only the saved guest frame.
	DamageNone Damage = iota
	// DamagePerCPU: a stray write corrupted this CPU's own per-CPU
	// block; detected by the integrity check on the next handler entry.
	DamagePerCPU
	// DamageCrossCPU: the per-CPU derivation was redirected into the
	// other core's block (the classic masked-stack-pointer failure);
	// detected when that core next enters the hypervisor.
	DamageCrossCPU
	// DamageHypAbort: the hypervisor itself faulted (wild pointer, bad
	// stack, corrupted return address) — immediate panic_stop.
	DamageHypAbort
)

// InjectionResult is what the entry hook reports back: which trap-context
// slots it flipped, plus any live-state damage.
type InjectionResult struct {
	Fields []armv7.Field
	Damage Damage
}

// EntryHook is the instrumentation seam at the entry of the three
// handlers. The fault injector mutates ctx in place and describes what it
// did. A nil hook (production configuration) costs one branch.
type EntryHook func(point InjectionPoint, cpu int, cell string, ctx *armv7.TrapContext) InjectionResult

// ErrNotEnabled is returned by operations requiring an enabled hypervisor.
var ErrNotEnabled = errors.New("jailhouse: hypervisor not enabled")

// Hypervisor is the partitioning hypervisor instance on one board.
type Hypervisor struct {
	brd    *board.Board
	sysCfg *SystemConfig

	enabled  bool
	panicked bool
	panicMsg string

	cells      []*Cell // cells[0] is the root cell once enabled
	nextCellID uint32
	percpu     []*PerCPU

	// rootOfflined tracks CPUs the root cell has released via PSCI
	// CPU_OFF; only these may be donated to a new cell.
	rootOfflined map[int]bool

	// Hook is the fault-injection seam (nil when not testing).
	Hook EntryHook

	// ConsoleLines accumulates the hypervisor's own console output.
	ConsoleLines []string

	// putcAccum buffers DEBUG_CONSOLE_PUTC bytes until newline.
	putcAccum []byte

	// irqCtx is the per-CPU scratch trap frame for the IRQ entry path;
	// irqCtxBusy guards against re-entrant deliveries on the same CPU.
	irqCtx     []armv7.TrapContext
	irqCtxBusy []bool

	// ivshmem holds the registered inter-cell shared-memory links.
	ivshmem []*IvshmemLink

	// fwTainted records that the hypervisor's private firmware region was
	// corrupted (a RAM fault into the control-block stratum). The next
	// handler entry executes the damaged code path and takes an internal
	// HYP-mode trap; hypTraps counts those events.
	fwTainted bool
	hypTraps  uint64
}

// New returns a hypervisor bound to a board, not yet enabled.
func New(b *board.Board) *Hypervisor {
	h := &Hypervisor{
		brd:          b,
		rootOfflined: make(map[int]bool),
		irqCtx:       make([]armv7.TrapContext, board.NumCPUs),
		irqCtxBusy:   make([]bool, board.NumCPUs),
	}
	for i := 0; i < board.NumCPUs; i++ {
		h.percpu = append(h.percpu, newPerCPU(i))
	}
	return h
}

// Board returns the underlying board.
func (h *Hypervisor) Board() *board.Board { return h.brd }

// DeepReset restores the hypervisor to its never-enabled power-on state
// in place: no cells, no ivshmem links, pristine per-CPU blocks with
// zeroed exit statistics, an empty console, no injection hook and no
// pending panic. The board reference survives; the board itself is reset
// separately (board.Board.DeepReset). All slices and maps keep their
// allocations — this is the warm machine-reuse path.
func (h *Hypervisor) DeepReset() {
	h.sysCfg = nil
	h.enabled = false
	h.panicked, h.panicMsg = false, ""
	for i := range h.cells {
		h.cells[i] = nil
	}
	h.cells = h.cells[:0]
	h.nextCellID = 0
	for _, p := range h.percpu {
		p.cell = nil
		p.Parked = false
		p.ParkReason = ""
		p.OnlineInCell = false
		p.Stats = [numExitReasons]uint64{}
		p.repair()
	}
	clear(h.rootOfflined)
	h.Hook = nil
	for i := range h.ConsoleLines {
		h.ConsoleLines[i] = "" // release retained strings
	}
	h.ConsoleLines = h.ConsoleLines[:0]
	h.putcAccum = h.putcAccum[:0]
	for i := range h.irqCtx {
		h.irqCtx[i] = armv7.TrapContext{}
	}
	for i := range h.irqCtxBusy {
		h.irqCtxBusy[i] = false
	}
	for i := range h.ivshmem {
		h.ivshmem[i] = nil
	}
	h.ivshmem = h.ivshmem[:0]
	h.fwTainted = false
	h.hypTraps = 0
}

// TaintFirmware marks the hypervisor's firmware region as corrupted (the
// RAM fault model's control-block stratum). The damage is latent: it
// manifests as an internal HYP-mode trap on the next handler entry.
func (h *Hypervisor) TaintFirmware(reason string) {
	if !h.fwTainted {
		h.fwTainted = true
		h.trace(sim.KindInjection, -1, "firmware region corrupted: %s", sim.Str(reason))
	}
}

// FirmwareTainted reports whether TaintFirmware was called since the last
// reset — observable state the equivalence digest covers.
func (h *Hypervisor) FirmwareTainted() bool { return h.fwTainted }

// HypTraps returns how many internal HYP-mode traps the corrupted
// firmware has produced.
func (h *Hypervisor) HypTraps() uint64 { return h.hypTraps }

// hypTrap models an unexpected exception inside the hypervisor itself:
// the HYP vector catches it, logs it, and parks the offending CPU — the
// recoverable-trap path, distinct from panic_stop's machine-wide death.
func (h *Hypervisor) hypTrap(cpu int, reason string) {
	h.hypTraps++
	h.consolef("Unhandled HYP trap on CPU %d: %s", cpu, reason)
	h.trace(sim.KindHypTrap, cpu, "internal HYP trap: %s", sim.Str(reason))
	h.cpuPark(cpu, "internal HYP trap")
}

// NextCellID returns the ID the next created cell would receive — part
// of the observable state the power-on-equivalence digest covers.
func (h *Hypervisor) NextCellID() uint32 { return h.nextCellID }

// OfflinedCPUs lists the CPUs the root cell has released via PSCI
// CPU_OFF, in ascending order — the hotplug pool a cell create draws
// from, and more state the equivalence digest must see.
func (h *Hypervisor) OfflinedCPUs() []int {
	var out []int
	for cpu := 0; cpu < len(h.percpu); cpu++ {
		if h.rootOfflined[cpu] {
			out = append(out, cpu)
		}
	}
	return out
}

// Enabled reports whether the hypervisor is active.
func (h *Hypervisor) Enabled() bool { return h.enabled }

// Panicked reports whether panic_stop fired, with the recorded reason.
func (h *Hypervisor) Panicked() (bool, string) { return h.panicked, h.panicMsg }

// PerCPU returns the per-CPU block for cpu (nil if out of range).
func (h *Hypervisor) PerCPU(cpu int) *PerCPU {
	if cpu < 0 || cpu >= len(h.percpu) {
		return nil
	}
	return h.percpu[cpu]
}

// RootCell returns the root cell (nil before Enable).
func (h *Hypervisor) RootCell() *Cell {
	if len(h.cells) == 0 {
		return nil
	}
	return h.cells[0]
}

// Cells returns all cells, root first.
func (h *Hypervisor) Cells() []*Cell {
	out := make([]*Cell, len(h.cells))
	copy(out, h.cells)
	return out
}

// CellByID returns the cell with the given ID.
func (h *Hypervisor) CellByID(id uint32) (*Cell, bool) {
	for _, c := range h.cells {
		if c.ID == id {
			return c, true
		}
	}
	return nil, false
}

// CellByName returns the cell with the given name.
func (h *Hypervisor) CellByName(name string) (*Cell, bool) {
	for _, c := range h.cells {
		if c.Name() == name {
			return c, true
		}
	}
	return nil, false
}

// cellOf returns the cell owning cpu (nil before enable).
func (h *Hypervisor) cellOf(cpu int) *Cell {
	if p := h.PerCPU(cpu); p != nil {
		return p.cell
	}
	return nil
}

// cellNameOf is cellOf for trace labels.
func (h *Hypervisor) cellNameOf(cpu int) string {
	if c := h.cellOf(cpu); c != nil {
		return c.Name()
	}
	return "?"
}

// Enable installs the hypervisor: validates the system configuration,
// builds the root cell around the currently running OS and takes over the
// interrupt path. Mirrors "jailhouse enable sysconfig.cell".
func (h *Hypervisor) Enable(sysCfg *SystemConfig) Errno {
	if h.enabled {
		return EBUSY
	}
	if sysCfg == nil {
		return EINVAL
	}
	if err := sysCfg.Validate(); err != nil {
		h.consolef("invalid system config: %v", err)
		return EINVAL
	}
	root, err := newCell(0, &sysCfg.RootCell)
	if err != nil {
		h.consolef("root cell setup failed: %v", err)
		return EINVAL
	}
	root.State = CellRunning
	h.sysCfg = sysCfg
	h.cells = []*Cell{root}
	h.nextCellID = 1
	for _, p := range h.percpu {
		p.cell = root
		p.OnlineInCell = h.brd.CPUs[p.CPUID].Online
		p.repair()
	}
	h.enabled = true
	h.brd.GIC.DeliverHook = func(cpu, irq int) { h.IRQChipHandleIRQ(cpu) }
	// Interrupts route to HYP from now on; the CPU interfaces of the
	// root cell's online cores are armed by the hypervisor.
	for _, p := range h.percpu {
		if p.OnlineInCell {
			h.brd.GIC.EnableCPUInterface(p.CPUID, true)
		}
	}
	h.consolef("Initializing Jailhouse hypervisor v0.12 on CPU %d", 0)
	h.consolef("Page pool usage after late commitment: mem %d/%d", 512, 16384)
	h.consolef("Activating hypervisor")
	h.trace(sim.KindBoot, 0, "hypervisor enabled, root cell %q", sim.Str(root.Name()))
	return EOK
}

// Disable removes the hypervisor. Only legal with no non-root cells,
// mirroring HYPERVISOR_DISABLE semantics.
func (h *Hypervisor) Disable() Errno {
	if !h.enabled {
		return EINVAL
	}
	if len(h.cells) > 1 {
		return EBUSY
	}
	h.enabled = false
	h.brd.GIC.DeliverHook = nil
	h.consolef("Shutting down hypervisor")
	return EOK
}

// consolef emits a hypervisor console line (Jailhouse's printk path).
func (h *Hypervisor) consolef(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	h.ConsoleLines = append(h.ConsoleLines, line)
	h.trace(sim.KindNote, -1, "[JH] %s", sim.Str(line))
}

// trace appends to the board-wide event trace. Formatting is deferred:
// args must be sim.Int/sim.Uint/sim.Str values that render byte-identically
// to what the format verb would have produced on the original operand.
func (h *Hypervisor) trace(kind sim.Kind, cpu int, format string, args ...sim.Arg) {
	h.brd.Trace().Addf(h.brd.Now(), kind, cpu, format, args...)
}

// ConsoleContains reports whether any hypervisor console line contains s.
func (h *Hypervisor) ConsoleContains(s string) bool {
	for _, l := range h.ConsoleLines {
		if containsStr(l, s) {
			return true
		}
	}
	return false
}

func containsStr(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// cpuPark implements cpu_park(): the core leaves guest execution and
// spins in the hypervisor's parking page. The owning cell's state is NOT
// changed — exactly the behaviour the paper flags as dangerous: Jailhouse
// still reports the cell as running.
func (h *Hypervisor) cpuPark(cpu int, reason string) {
	p := h.PerCPU(cpu)
	if p == nil || p.Parked {
		return
	}
	p.Parked = true
	p.ParkReason = reason
	p.OnlineInCell = false
	h.brd.CPUs[cpu].Parked = true
	h.consolef("Parking CPU %d (cell \"%s\")", cpu, h.cellNameOf(cpu))
	h.trace(sim.KindPark, cpu, "cpu_park: %s", sim.Str(reason))
	if c := h.cellOf(cpu); c != nil && c.Guest != nil {
		c.Guest.OnCPUParked(cpu)
	}
}

// panicStop implements panic_stop(): the hypervisor gives up, stopping
// every CPU. The whole machine — root Linux included — freezes, which the
// paper's classifier observes as the system-wide "panic park".
func (h *Hypervisor) panicStop(cpu int, reason string) {
	if h.panicked {
		return
	}
	h.panicked = true
	h.panicMsg = reason
	h.consolef("FATAL: %s", reason)
	h.consolef("Stopping CPU %d (Cell: \"%s\")", cpu, h.cellNameOf(cpu))
	h.trace(sim.KindPanic, cpu, "panic_stop: %s", sim.Str(reason))
	for _, p := range h.percpu {
		p.Parked = true
		p.OnlineInCell = false
	}
	h.brd.Engine.Halt("jailhouse panic_stop: " + reason)
}

// applyDamage realises the live-state component of an injection.
func (h *Hypervisor) applyDamage(cpu int, d Damage) {
	switch d {
	case DamagePerCPU:
		h.PerCPU(cpu).corrupt()
		h.trace(sim.KindInjection, cpu, "stray write corrupted own per-CPU block")
	case DamageCrossCPU:
		other := (cpu + 1) % len(h.percpu)
		h.PerCPU(other).corrupt()
		h.trace(sim.KindInjection, cpu, "per-CPU derivation redirected into cpu%d block", sim.Int(int64(other)))
	case DamageHypAbort:
		h.panicStop(cpu, fmt.Sprintf("unrecoverable abort in HYP mode on CPU %d", cpu))
	}
}

// enterHandler performs the common handler prologue: refuse work after a
// panic, verify per-CPU integrity (escalating the deferred cross-CPU
// corruption), count the exit, then run the injection hook.
// It reports whether the handler may proceed.
func (h *Hypervisor) enterHandler(point InjectionPoint, cpu int, reason VMExit, ctx *armv7.TrapContext) (InjectionResult, bool) {
	if h.panicked || !h.enabled {
		return InjectionResult{}, false
	}
	p := h.PerCPU(cpu)
	if p == nil {
		return InjectionResult{}, false
	}
	if !p.IntegrityOK() {
		h.panicStop(cpu, fmt.Sprintf("per-CPU data structure corrupted on CPU %d", cpu))
		return InjectionResult{}, false
	}
	if h.fwTainted && !p.Parked {
		h.hypTrap(cpu, "corrupted firmware text reached in handler prologue")
		return InjectionResult{}, false
	}
	p.count(reason)
	var res InjectionResult
	if h.Hook != nil {
		res = h.Hook(point, cpu, h.cellNameOf(cpu), ctx)
		if len(res.Fields) > 0 {
			h.trace(sim.KindInjection, cpu, "%s: injected %d flip(s)", sim.Str(point.String()), sim.Int(int64(len(res.Fields))))
		}
		if res.Damage != DamageNone {
			h.applyDamage(cpu, res.Damage)
			if h.panicked {
				return res, false
			}
		}
	}
	return res, true
}

// notifyCorruptedResume tells the guest when corrupted values actually
// reached its saved frame. With the written-slot merge discipline that
// happens only when a flipped slot was also handler-written — e.g. an
// MMIO read whose target-register decode was corrupted. Flips to
// unwritten live registers never propagate (the isolation property the
// merge establishes), so most injections produce no call here.
func (h *Hypervisor) notifyCorruptedResume(cpu int, ctx *armv7.TrapContext, res InjectionResult) {
	if len(res.Fields) == 0 || ctx == nil {
		return
	}
	c := h.cellOf(cpu)
	if c == nil || c.Guest == nil {
		return
	}
	var visible []int
	for _, f := range res.Fields {
		if int(f) < armv7.NumRegs && ctx.Written&(1<<uint(int(f))) != 0 {
			visible = append(visible, int(f))
		}
	}
	if len(visible) > 0 {
		c.Guest.OnCorruptedResume(cpu, visible)
	}
}
