package jailhouse

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/gic"
	"github.com/dessertlab/certify/internal/sim"
)

// IRQChipHandleIRQ is the physical-interrupt entry — Jailhouse's
// irqchip_handle_irq(). Interrupts are routed to HYP mode; the hypervisor
// acknowledges them at the GIC, handles its own management SGIs, and
// injects everything else into the owning cell as a virtual IRQ.
//
// The paper profiled this function as an injection candidate but excluded
// it: the only live datum is the IRQ number, and corrupting it produces a
// predictable "IRQ error". The A3 ablation benchmark verifies that claim
// against this implementation.
func (h *Hypervisor) IRQChipHandleIRQ(cpu int) {
	for {
		irq, src := h.brd.GIC.Acknowledge(cpu)
		if irq == gic.SpuriousIRQ {
			return
		}

		// The injectable frame for this entry point: r0 holds the IRQ
		// number (the handler's only parameter), r1 the source CPU of
		// an SGI. The frame comes from a per-CPU scratch pool; it is
		// released before dispatch, so re-entrant deliveries triggered
		// by guest code see a free scratch (or fall back to a fresh
		// allocation while this one is busy).
		ctx := h.acquireIRQCtx(cpu)
		ctx.Regs[0] = uint32(irq)
		ctx.Regs[1] = uint32(src)
		res, proceed := h.enterHandler(PointIRQChip, cpu, ExitIRQ, ctx)
		effectiveIRQ := int(ctx.Regs[0])
		h.releaseIRQCtx(cpu, ctx)
		if !proceed {
			return
		}

		h.dispatchIRQ(cpu, effectiveIRQ, irq)
		h.brd.GIC.EOI(cpu, irq)
		_ = res
	}
}

// acquireIRQCtx returns a zeroed trap context for the IRQ entry path,
// reusing the per-CPU scratch frame when it is not already in use.
func (h *Hypervisor) acquireIRQCtx(cpu int) *armv7.TrapContext {
	if cpu >= 0 && cpu < len(h.irqCtx) && !h.irqCtxBusy[cpu] {
		h.irqCtxBusy[cpu] = true
		ctx := &h.irqCtx[cpu]
		*ctx = armv7.TrapContext{CPUID: uint32(cpu)}
		return ctx
	}
	return &armv7.TrapContext{CPUID: uint32(cpu)}
}

// releaseIRQCtx returns a scratch frame acquired by acquireIRQCtx.
func (h *Hypervisor) releaseIRQCtx(cpu int, ctx *armv7.TrapContext) {
	if cpu >= 0 && cpu < len(h.irqCtx) && ctx == &h.irqCtx[cpu] {
		h.irqCtxBusy[cpu] = false
	}
}

// dispatchIRQ routes one acknowledged interrupt. effectiveIRQ is what the
// (possibly corrupted) handler believes arrived; rawIRQ is what the GIC
// actually delivered and is used only for EOI bookkeeping by the caller.
func (h *Hypervisor) dispatchIRQ(cpu, effectiveIRQ, rawIRQ int) {
	p := h.PerCPU(cpu)
	cell := p.cell

	switch {
	case effectiveIRQ == sgiEventStart && gic.IsSGI(effectiveIRQ):
		// Cell bring-up: transition this CPU into guest execution. If
		// an injection re-wrote the event, the CPU silently stays
		// offline — the cell is RUNNING with a dead CPU: E2's
		// inconsistent state.
		if cell == nil || cell.State != CellRunning || p.Parked {
			return
		}
		if p.OnlineInCell {
			return
		}
		p.OnlineInCell = true
		h.brd.CPUs[cpu].Online = true
		h.trace(sim.KindCellEvent, cpu, "cpu online in cell %q", sim.Str(cell.Name()))
		if cell.Guest != nil {
			guest := cell.Guest
			h.brd.Engine.After(100*sim.Microsecond, func() {
				if !h.panicked && p.OnlineInCell && !p.Parked {
					guest.Boot(cpu)
				}
			})
		}
	case effectiveIRQ == sgiEventPark && gic.IsSGI(effectiveIRQ):
		h.cpuPark(cpu, "park request SGI")
	case gic.IsSGI(effectiveIRQ):
		// Unknown management SGI — dropped with an error log, the
		// predictable outcome the paper anticipated.
		h.consolef("IRQ error: unexpected SGI %d on CPU %d", effectiveIRQ, cpu)
	case effectiveIRQ >= gic.MaxIRQ || effectiveIRQ < 0:
		// A corrupted IRQ number outside the implemented range.
		h.consolef("IRQ error: spurious IRQ %d on CPU %d", effectiveIRQ, cpu)
	case gic.IsPPI(effectiveIRQ):
		// Private interrupt (timer): belongs to whoever runs on the CPU.
		h.injectToCell(cpu, cell, effectiveIRQ)
	default:
		// SPI: only the owning cell receives it.
		if cell != nil && cell.Config.OwnsIRQ(effectiveIRQ) {
			h.injectToCell(cpu, cell, effectiveIRQ)
			return
		}
		h.consolef("IRQ error: IRQ %d not for cell %q", effectiveIRQ, h.cellNameOf(cpu))
	}
}

// injectToCell delivers a virtual IRQ to the cell's guest on cpu.
func (h *Hypervisor) injectToCell(cpu int, cell *Cell, irq int) {
	if cell == nil || cell.Guest == nil {
		return
	}
	p := h.PerCPU(cpu)
	if p.Parked || !p.OnlineInCell || cell.State != CellRunning {
		return // parked or offline CPUs execute no guest code
	}
	if irq >= len(cell.virqMsg) {
		grown := make([]string, irq+1)
		copy(grown, cell.virqMsg)
		cell.virqMsg = grown
	}
	msg := cell.virqMsg[irq]
	if msg == "" {
		// Rendered exactly as the deferred-format record would have been,
		// so the trace hash is byte-identical.
		msg = fmt.Sprintf("vIRQ %d → cell %q", irq, cell.Name())
		cell.virqMsg[irq] = msg
	}
	h.brd.Trace().Add(h.brd.Now(), sim.KindIRQ, cpu, msg)
	cell.Guest.OnIRQ(cpu, irq)
}
