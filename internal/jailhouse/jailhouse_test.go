package jailhouse

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/memmap"
	"github.com/dessertlab/certify/internal/sim"
)

// fakeInmate records every hypervisor→guest interaction.
type fakeInmate struct {
	name      string
	boots     []int
	irqs      [][2]int
	corrupted [][]int
	parked    []int
	shutdown  bool
}

func (f *fakeInmate) Name() string        { return f.name }
func (f *fakeInmate) Boot(cpu int)        { f.boots = append(f.boots, cpu) }
func (f *fakeInmate) OnIRQ(cpu, irq int)  { f.irqs = append(f.irqs, [2]int{cpu, irq}) }
func (f *fakeInmate) OnCPUParked(cpu int) { f.parked = append(f.parked, cpu) }
func (f *fakeInmate) OnShutdown()         { f.shutdown = true }
func (f *fakeInmate) OnCorruptedResume(cpu int, fields []int) {
	f.corrupted = append(f.corrupted, fields)
}

// rig builds an enabled hypervisor on a fresh board.
func rig(t *testing.T) (*board.Board, *Hypervisor) {
	t.Helper()
	brd := board.New(2022)
	h := New(brd)
	if e := h.Enable(DefaultSystemConfig()); e.Failed() {
		t.Fatalf("Enable: %v", e)
	}
	return brd, h
}

// createFreeRTOSCell drives the full root-side flow: write the config
// blob into root RAM, offline CPU 1, CELL_CREATE, load, start, and spin
// the engine so the bring-up SGI lands.
func createFreeRTOSCell(t *testing.T, brd *board.Board, h *Hypervisor, guest Inmate) *Cell {
	t.Helper()
	blob := FreeRTOSCellConfig().Marshal()
	const gpa = board.DRAMBase + 0x0100_0000
	if err := brd.RAM.Write(gpa, blob); err != nil {
		t.Fatal(err)
	}
	if ret := h.SMC(1, armv7.PSCICPUOff); ret != armv7.PSCIRetSuccess {
		t.Fatalf("CPU_OFF: %d", ret)
	}
	id := h.HVC(0, HCCellCreate, uint32(gpa), 0)
	if id.Failed() {
		t.Fatalf("CELL_CREATE: %v", id)
	}
	if e := h.HVC(0, HCCellSetLoadable, uint32(id), 0); e.Failed() {
		t.Fatalf("SET_LOADABLE: %v", e)
	}
	if e := h.LoadInmate(uint32(id), guest); e.Failed() {
		t.Fatalf("LoadInmate: %v", e)
	}
	if e := h.HVC(0, HCCellStart, uint32(id), 0); e.Failed() {
		t.Fatalf("CELL_START: %v", e)
	}
	if err := brd.Engine.Run(brd.Now() + sim.Millisecond); err != nil {
		t.Fatalf("engine: %v", err)
	}
	cell, ok := h.CellByID(uint32(id))
	if !ok {
		t.Fatal("created cell vanished")
	}
	return cell
}

func TestEnableSetsUpRootCell(t *testing.T) {
	_, h := rig(t)
	root := h.RootCell()
	if root == nil || root.Name() != "banana-pi" || root.State != CellRunning {
		t.Fatalf("root = %v", root)
	}
	if !root.HasCPU(0) || !root.HasCPU(1) {
		t.Fatal("root cell must own both CPUs")
	}
	if got := h.PerCPU(0).Cell(); got != root {
		t.Fatal("percpu cell pointer wrong")
	}
	if e := h.Enable(DefaultSystemConfig()); e != EBUSY {
		t.Fatalf("double Enable = %v, want EBUSY", e)
	}
}

func TestEnableRejectsBadConfig(t *testing.T) {
	brd := board.New(1)
	h := New(brd)
	if e := h.Enable(nil); e != EINVAL {
		t.Fatalf("nil config = %v", e)
	}
	bad := DefaultSystemConfig()
	bad.RootCell.CPUSet = 0
	if e := h.Enable(bad); e != EINVAL {
		t.Fatalf("empty cpuset = %v", e)
	}
}

func TestDisableRequiresLoneRoot(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	cell := createFreeRTOSCell(t, brd, h, guest)
	if e := h.HVC(0, HCDisable, 0, 0); e != EBUSY {
		t.Fatalf("Disable with non-root cell = %v, want EBUSY", e)
	}
	if e := h.HVC(0, HCCellDestroy, uint32(cell.ID), 0); e.Failed() {
		t.Fatalf("destroy: %v", e)
	}
	if e := h.HVC(0, HCDisable, 0, 0); e.Failed() {
		t.Fatalf("Disable: %v", e)
	}
	if h.Enabled() {
		t.Fatal("still enabled")
	}
}

func TestCellConfigMarshalRoundTrip(t *testing.T) {
	cfg := FreeRTOSCellConfig()
	blob := cfg.Marshal()
	got, err := UnmarshalCellConfig(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != cfg.Name || got.CPUSet != cfg.CPUSet || got.ConsoleBase != cfg.ConsoleBase {
		t.Fatalf("header roundtrip: %+v", got)
	}
	if len(got.MemRegions) != len(cfg.MemRegions) || len(got.IRQLines) != len(cfg.IRQLines) {
		t.Fatalf("payload counts: %d regions %d irqs", len(got.MemRegions), len(got.IRQLines))
	}
	for i := range cfg.MemRegions {
		if got.MemRegions[i] != cfg.MemRegions[i] {
			t.Fatalf("region %d: %v != %v", i, got.MemRegions[i], cfg.MemRegions[i])
		}
	}
}

func TestCellConfigUnmarshalRejectsDamage(t *testing.T) {
	good := FreeRTOSCellConfig().Marshal()
	cases := []struct {
		name   string
		mutate func([]byte)
	}{
		{"short blob", func(b []byte) {}},
		{"bad signature", func(b []byte) { b[0] = 'X' }},
		{"bad revision", func(b []byte) { b[6] = 99 }},
		{"empty cpuset", func(b []byte) {
			for i := 40; i < 48; i++ {
				b[i] = 0
			}
		}},
		{"huge region count", func(b []byte) { b[48] = 0xFF }},
		{"unprintable name", func(b []byte) { b[8] = 0x01 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			blob := make([]byte, len(good))
			copy(blob, good)
			if tc.name == "short blob" {
				blob = blob[:10]
			}
			tc.mutate(blob)
			if _, err := UnmarshalCellConfig(blob); err == nil {
				t.Fatal("damaged config accepted")
			}
		})
	}
}

// Property: marshal→unmarshal is the identity on valid configs.
func TestPropertyConfigRoundTrip(t *testing.T) {
	prop := func(nameRaw uint8, cpuset uint8, irqRaw uint8) bool {
		cfg := &CellConfig{
			Name:     "cell-" + string(rune('a'+nameRaw%26)),
			CPUSet:   uint64(cpuset%3 + 1),
			IRQLines: []int{32 + int(irqRaw)%96},
			MemRegions: []memmap.Region{{
				Phys: 0x7000_0000, Virt: 0, Size: 0x1_0000,
				Flags: memmap.FlagRead | memmap.FlagWrite,
			}},
		}
		got, err := UnmarshalCellConfig(cfg.Marshal())
		if err != nil {
			return false
		}
		return got.Name == cfg.Name && got.CPUSet == cfg.CPUSet &&
			len(got.IRQLines) == 1 && got.IRQLines[0] == cfg.IRQLines[0]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCellLifecycle(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	cell := createFreeRTOSCell(t, brd, h, guest)

	if cell.State != CellRunning {
		t.Fatalf("state = %v", cell.State)
	}
	if len(guest.boots) != 1 || guest.boots[0] != 1 {
		t.Fatalf("guest boots = %v, want [1]", guest.boots)
	}
	if !h.PerCPU(1).OnlineInCell {
		t.Fatal("cpu1 not online in cell")
	}
	root := h.RootCell()
	if root.HasCPU(1) {
		t.Fatal("cpu1 still in root cell")
	}
	if st := h.HVC(0, HCCellGetState, uint32(cell.ID), 0); CellState(st) != CellRunning {
		t.Fatalf("GET_STATE = %v", st)
	}

	// Root lost the donated memory window; the cell's RAM resolves only
	// through the cell.
	if _, _, err := root.Stage2.Resolve(FreeRTOSMemBase, memmap.AccessRead); err == nil {
		t.Fatal("root still maps donated cell RAM")
	}
	if _, _, err := cell.Stage2.Resolve(0, memmap.AccessExec); err != nil {
		t.Fatalf("cell cannot reach its own RAM: %v", err)
	}

	// Destroy: everything returns to root.
	if e := h.HVC(0, HCCellDestroy, uint32(cell.ID), 0); e.Failed() {
		t.Fatalf("destroy: %v", e)
	}
	if !guest.shutdown {
		t.Fatal("guest did not get shutdown message")
	}
	if !root.HasCPU(1) {
		t.Fatal("cpu1 did not return to root")
	}
	if _, _, err := root.Stage2.Resolve(FreeRTOSMemBase, memmap.AccessRead); err != nil {
		t.Fatalf("donated RAM did not return to root: %v", err)
	}
	if _, ok := h.CellByName("freertos-cell"); ok {
		t.Fatal("cell still listed after destroy")
	}
}

func TestCellCreateErrnoPaths(t *testing.T) {
	brd, h := rig(t)
	blob := FreeRTOSCellConfig().Marshal()
	const gpa = board.DRAMBase + 0x0100_0000
	if err := brd.RAM.Write(gpa, blob); err != nil {
		t.Fatal(err)
	}

	// CPU not offlined yet → EBUSY.
	if e := h.HVC(0, HCCellCreate, uint32(gpa), 0); e != EBUSY {
		t.Fatalf("create without offline = %v, want EBUSY", e)
	}
	// Unmapped config pointer → EINVAL (paper's E1 signature).
	if e := h.HVC(0, HCCellCreate, 0x1000, 0); e != EINVAL {
		t.Fatalf("bad pointer = %v, want EINVAL", e)
	}
	// Garbage blob → EINVAL.
	if err := brd.RAM.Write(gpa+0x1000, []byte("not a config blob at all......")); err != nil {
		t.Fatal(err)
	}
	if e := h.HVC(0, HCCellCreate, uint32(gpa)+0x1000, 0); e != EINVAL {
		t.Fatalf("garbage blob = %v, want EINVAL", e)
	}

	// Proper create.
	if ret := h.SMC(1, armv7.PSCICPUOff); ret != armv7.PSCIRetSuccess {
		t.Fatal("CPU_OFF failed")
	}
	id := h.HVC(0, HCCellCreate, uint32(gpa), 0)
	if id.Failed() {
		t.Fatalf("create: %v", id)
	}
	// Duplicate name → EEXIST.
	if e := h.HVC(0, HCCellCreate, uint32(gpa), 0); e != EEXIST {
		t.Fatalf("duplicate = %v, want EEXIST", e)
	}
}

func TestNonRootCannotManage(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	cell := createFreeRTOSCell(t, brd, h, guest)
	// The non-root cell's CPU issues a management hypercall → EPERM.
	if e := h.HVC(1, HCCellDestroy, 0, 0); e != EPERM {
		t.Fatalf("non-root destroy = %v, want EPERM", e)
	}
	if e := h.HVC(1, HCCellCreate, 0, 0); e != EPERM {
		t.Fatalf("non-root create = %v, want EPERM", e)
	}
	// But unprivileged calls work.
	if e := h.HVC(1, HCCellGetState, uint32(cell.ID), 0); Errno(CellState(e)) != Errno(CellRunning) {
		t.Fatalf("non-root get_state = %v", e)
	}
}

func TestUnknownHypercall(t *testing.T) {
	_, h := rig(t)
	if e := h.HVC(0, 0xFF, 0, 0); e != ENOSYS {
		t.Fatalf("unknown code = %v, want ENOSYS", e)
	}
	if e := h.HVC(0, HCHypervisorGetInfo, InfoNumCells, 0); int32(e) != 1 {
		t.Fatalf("GET_INFO cells = %v, want 1", e)
	}
}

func TestGICDEmulationOwnershipFilter(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	createFreeRTOSCell(t, brd, h, guest)

	// The cell enables its own IRQ 52: permitted.
	word := board.IRQUart7 / 32
	bit := uint(board.IRQUart7 % 32)
	addr := board.GICDBase + 0x100 + uint64(word*4)
	if err := h.GuestWrite32(1, addr, 1<<bit); err != nil {
		t.Fatal(err)
	}
	if !brd.GIC.IRQEnabled(board.IRQUart7) {
		t.Fatal("cell could not enable its own SPI")
	}

	// The cell tries to enable root's UART0 IRQ 33: silently filtered.
	word = board.IRQUart0 / 32
	bit = uint(board.IRQUart0 % 32)
	addr = board.GICDBase + 0x100 + uint64(word*4)
	if err := h.GuestWrite32(1, addr, 1<<bit); err != nil {
		t.Fatal(err)
	}
	if brd.GIC.IRQEnabled(board.IRQUart0) {
		t.Fatal("isolation breach: cell enabled a foreign SPI")
	}

	// GICD read through emulation works.
	v, err := h.GuestRead32(1, board.GICDBase+0x004) // TYPER
	if err != nil || v == 0 {
		t.Fatalf("GICD read = %#x, %v", v, err)
	}
}

func TestAccessViolationParksNonRootCPU(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	cell := createFreeRTOSCell(t, brd, h, guest)

	// The cell reads root Linux memory — not mapped in its stage-2 and
	// not the GICD → access violation → cpu_park, cell still RUNNING.
	_, _ = h.GuestRead32(1, board.DRAMBase+0x100)
	p := h.PerCPU(1)
	if !p.Parked {
		t.Fatal("violating CPU not parked")
	}
	if len(guest.parked) != 1 || guest.parked[0] != 1 {
		t.Fatalf("guest park notification = %v", guest.parked)
	}
	if cell.State != CellRunning {
		t.Fatalf("cell state = %v — Jailhouse keeps it RUNNING (the paper's dangerous inconsistency)", cell.State)
	}
	if panicked, _ := h.Panicked(); panicked {
		t.Fatal("non-root violation must not panic the system")
	}
	// Root is untouched and can still destroy the cell (paper's E3
	// isolation check).
	if e := h.HVC(0, HCCellDestroy, uint32(cell.ID), 0); e.Failed() {
		t.Fatalf("destroy after park: %v", e)
	}
	if h.PerCPU(1).Parked {
		t.Fatal("destroy did not unpark the CPU")
	}
}

func TestRootViolationPanicsSystem(t *testing.T) {
	brd, h := rig(t)
	// Root reads hypervisor-private memory → panic_stop.
	_, _ = h.GuestRead32(0, HypMemBase+0x100)
	if panicked, _ := h.Panicked(); !panicked {
		t.Fatal("root violation must stop the system")
	}
	if halted, _ := brd.Engine.Halted(); !halted {
		t.Fatal("engine not halted on panic_stop")
	}
}

func TestHookInjectionECFlipParksCPU(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	cell := createFreeRTOSCell(t, brd, h, guest)

	// Flip an EC bit on the next non-root trap: HVC (0x12) becomes an
	// undefined class → "unhandled trap exception" → cpu_park. This is
	// the mechanistic path behind the paper's error code 0x24 outcome.
	h.Hook = func(point InjectionPoint, cpu int, cellName string, ctx *armv7.TrapContext) InjectionResult {
		if point == PointTrap && cpu == 1 {
			ctx.FlipBit(armv7.FieldHSR, 31) // EC high bit
			return InjectionResult{Fields: []armv7.Field{armv7.FieldHSR}}
		}
		return InjectionResult{}
	}
	_ = h.HVC(1, HCCellGetState, uint32(cell.ID), 0)
	if !h.PerCPU(1).Parked {
		t.Fatal("EC flip did not park the CPU")
	}
	if !h.ConsoleContains("unhandled trap exception") {
		t.Fatal("missing unhandled-trap console evidence")
	}
	if cell.State != CellRunning {
		t.Fatal("cell state changed by cpu park")
	}
	_ = brd
}

func TestHookInjectionHVCArgFlipYieldsEINVAL(t *testing.T) {
	brd, h := rig(t)
	blob := FreeRTOSCellConfig().Marshal()
	const gpa = board.DRAMBase + 0x0100_0000
	if err := brd.RAM.Write(gpa, blob); err != nil {
		t.Fatal(err)
	}
	_ = h.SMC(1, armv7.PSCICPUOff)

	// Flip a high bit of the config pointer (r1) on root HVCs: the
	// pointer no longer resolves → EINVAL → cell not allocated. E1.
	h.Hook = func(point InjectionPoint, cpu int, cellName string, ctx *armv7.TrapContext) InjectionResult {
		if point == PointHVC && cpu == 0 {
			ctx.FlipBit(armv7.Field(armv7.RegR1), 31)
			return InjectionResult{Fields: []armv7.Field{armv7.Field(armv7.RegR1)}}
		}
		return InjectionResult{}
	}
	if e := h.HVC(0, HCCellCreate, uint32(gpa), 0); e != EINVAL {
		t.Fatalf("corrupted create = %v, want EINVAL", e)
	}
	if _, ok := h.CellByName("freertos-cell"); ok {
		t.Fatal("cell allocated despite corrupted arguments")
	}
}

func TestCrossCPUDamageDeferredPanic(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	cell := createFreeRTOSCell(t, brd, h, guest)

	fired := false
	h.Hook = func(point InjectionPoint, cpu int, cellName string, ctx *armv7.TrapContext) InjectionResult {
		if point == PointTrap && cpu == 1 && !fired {
			fired = true
			return InjectionResult{Damage: DamageCrossCPU}
		}
		return InjectionResult{}
	}
	// Injection on the non-root CPU corrupts CPU 0's per-CPU block...
	_ = h.HVC(1, HCCellGetState, uint32safe(cell.ID), 0)
	if panicked, _ := h.Panicked(); panicked {
		t.Fatal("panic fired too early — damage must be deferred")
	}
	// ...and the next root-cell trap detects it: system-wide stop.
	h.Hook = nil
	_ = h.HVC(0, HCHypervisorGetInfo, InfoNumCells, 0)
	if panicked, _ := h.Panicked(); !panicked {
		t.Fatal("deferred cross-CPU corruption not detected")
	}
	if !h.ConsoleContains("per-CPU data structure corrupted") {
		t.Fatal("missing integrity-violation console evidence")
	}
	_ = brd
}

// uint32safe documents the narrowing of a cell ID (always small).
func uint32safe(id uint32) uint32 { return id }

func TestHypAbortDamageImmediatePanic(t *testing.T) {
	_, h := rig(t)
	h.Hook = func(point InjectionPoint, cpu int, cellName string, ctx *armv7.TrapContext) InjectionResult {
		return InjectionResult{Damage: DamageHypAbort}
	}
	_ = h.HVC(0, HCHypervisorGetInfo, InfoNumCells, 0)
	if panicked, msg := h.Panicked(); !panicked || !strings.Contains(msg, "HYP mode") {
		t.Fatalf("Panicked = %v %q", panicked, msg)
	}
}

func TestStartSGICorruptionLeavesCellInconsistent(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}

	// Corrupt the IRQ number of every irqchip entry on CPU 1: the
	// bring-up SGI is lost, the CPU never comes online — but the cell
	// reports RUNNING. This is experiment E2's inconsistent state.
	h.Hook = func(point InjectionPoint, cpu int, cellName string, ctx *armv7.TrapContext) InjectionResult {
		if point == PointIRQChip && cpu == 1 {
			ctx.Regs[0] ^= 0x8 // SGI 0 → SGI 8 (unknown management event)
			return InjectionResult{Fields: []armv7.Field{armv7.Field(armv7.RegR0)}}
		}
		return InjectionResult{}
	}

	blob := FreeRTOSCellConfig().Marshal()
	const gpa = board.DRAMBase + 0x0100_0000
	if err := brd.RAM.Write(gpa, blob); err != nil {
		t.Fatal(err)
	}
	_ = h.SMC(1, armv7.PSCICPUOff)
	id := h.HVC(0, HCCellCreate, uint32(gpa), 0)
	_ = h.HVC(0, HCCellSetLoadable, uint32(id), 0)
	_ = h.LoadInmate(uint32(id), guest)
	if e := h.HVC(0, HCCellStart, uint32(id), 0); e.Failed() {
		t.Fatalf("start: %v", e)
	}
	if err := brd.Engine.Run(brd.Now() + 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	cell, _ := h.CellByID(uint32(id))
	if cell.State != CellRunning {
		t.Fatalf("state = %v, want RUNNING (the lie)", cell.State)
	}
	if h.PerCPU(1).OnlineInCell {
		t.Fatal("cpu1 came online despite corrupted bring-up")
	}
	if len(guest.boots) != 0 {
		t.Fatal("guest booted despite corrupted bring-up")
	}
	if !h.ConsoleContains("IRQ error") {
		t.Fatal("missing IRQ error evidence")
	}
	// Shutdown/destroy still returns the resources (paper: "gives the
	// control of the CPU ... back to the root cell").
	h.Hook = nil
	if e := h.HVC(0, HCCellDestroy, uint32(id), 0); e.Failed() {
		t.Fatalf("destroy: %v", e)
	}
	if !h.RootCell().HasCPU(1) {
		t.Fatal("cpu did not return to root")
	}
}

func TestPSCIIsolation(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	createFreeRTOSCell(t, brd, h, guest)

	// Root tries CPU_ON on the donated CPU: denied — it is not root's.
	if ret := h.SMC(0, armv7.PSCICPUOn, 1); ret != armv7.PSCIRetDenied {
		t.Fatalf("foreign CPU_ON = %d, want denied", ret)
	}
	// Version query works from any cell.
	if ret := h.SMC(1, armv7.PSCIVersion); uint32(ret) != armv7.PSCIVersionValue {
		t.Fatalf("PSCI version = %#x", ret)
	}
}

func TestCorruptedResumeOnlyThroughWrittenSlots(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	cell := createFreeRTOSCell(t, brd, h, guest)

	// Flip r7 — a slot the HVC handler never writes. The written-slot
	// merge must keep the corruption away from the guest frame entirely.
	h.Hook = func(point InjectionPoint, cpu int, cellName string, ctx *armv7.TrapContext) InjectionResult {
		if point == PointTrap && cpu == 1 {
			ctx.FlipBit(armv7.Field(armv7.RegR7), 3)
			return InjectionResult{Fields: []armv7.Field{armv7.Field(armv7.RegR7)}}
		}
		return InjectionResult{}
	}
	before := brd.CPUs[1].Reg(armv7.RegR7)
	_ = h.HVC(1, HCCellGetState, uint32(cell.ID), 0)
	if got := brd.CPUs[1].Reg(armv7.RegR7); got != before {
		t.Fatalf("guest r7 corrupted through the merge: %#x → %#x", before, got)
	}
	if len(guest.corrupted) != 0 {
		t.Fatal("guest notified although no written slot was flipped")
	}

	// Flip r0 — the HVC result slot. The handler's write merges, and the
	// guest is told its (written) register carried an injected value.
	h.Hook = func(point InjectionPoint, cpu int, cellName string, ctx *armv7.TrapContext) InjectionResult {
		if point == PointHVC && cpu == 1 {
			ctx.FlipBit(armv7.Field(armv7.RegR0), 5)
			return InjectionResult{Fields: []armv7.Field{armv7.Field(armv7.RegR0)}}
		}
		return InjectionResult{}
	}
	_ = h.HVC(1, HCCellGetState, uint32(cell.ID), 0)
	if len(guest.corrupted) == 0 {
		t.Fatal("guest not notified of corrupted written slot")
	}
	if guest.corrupted[0][0] != armv7.RegR0 {
		t.Fatalf("corrupted fields = %v", guest.corrupted)
	}
}

func TestVMExitStats(t *testing.T) {
	brd, h := rig(t)
	before := h.PerCPU(0).Stats[ExitHVC]
	_ = h.HVC(0, HCHypervisorGetInfo, InfoNumCells, 0)
	_ = h.HVC(0, HCHypervisorGetInfo, InfoCodeVersion, 0)
	p := h.PerCPU(0)
	if p.Stats[ExitHVC] != before+2 {
		t.Fatalf("hvc exits = %d, want %d", p.Stats[ExitHVC], before+2)
	}
	if p.Stats[ExitTotal] < p.Stats[ExitHVC] {
		t.Fatal("total below hvc count")
	}
	_ = brd
}

func TestDebugConsolePutc(t *testing.T) {
	_, h := rig(t)
	for _, b := range []byte("inmate says hi\n") {
		if e := h.HVC(0, HCDebugConsolePutc, uint32(b), 0); e.Failed() {
			t.Fatalf("putc: %v", e)
		}
	}
	if !h.ConsoleContains("inmate says hi") {
		t.Fatal("putc line missing from console")
	}
	if e := h.HVC(0, HCDebugConsolePutc, 0x1FF, 0); e != EINVAL {
		t.Fatalf("putc(0x1FF) = %v, want EINVAL", e)
	}
}

func TestCellStateStringAndErrnoString(t *testing.T) {
	if CellRunning.String() != "running" || CellFailed.String() != "failed" {
		t.Fatal("CellState strings")
	}
	if EINVAL.String() != "Invalid argument" {
		t.Fatalf("EINVAL = %q", EINVAL.String())
	}
	if !EINVAL.Failed() || EOK.Failed() {
		t.Fatal("Failed()")
	}
	if PointTrap.String() != "arch_handle_trap" || PointHVC.String() != "arch_handle_hvc" ||
		PointIRQChip.String() != "irqchip_handle_irq" {
		t.Fatal("injection point names")
	}
}

func TestGetStateOfMissingCell(t *testing.T) {
	_, h := rig(t)
	if e := h.HVC(0, HCCellGetState, 42, 0); e != ENOENT {
		t.Fatalf("GET_STATE(42) = %v, want ENOENT", e)
	}
	if e := h.HVC(0, HCCellDestroy, 42, 0); e != ENOENT {
		t.Fatalf("DESTROY(42) = %v", e)
	}
	if e := h.HVC(0, HCCellStart, 42, 0); e != ENOENT {
		t.Fatalf("START(42) = %v", e)
	}
}

func TestMemmapCarveViaLifecycle(t *testing.T) {
	s := memmap.NewStage2()
	if err := s.Map(memmap.Region{Phys: 0x4000_0000, Virt: 0x4000_0000, Size: 0x1000_0000, Flags: memmap.FlagRead | memmap.FlagWrite}); err != nil {
		t.Fatal(err)
	}
	if n := s.Carve(0x4800_0000, 0x0100_0000); n != 1 {
		t.Fatalf("Carve affected %d regions", n)
	}
	if _, _, err := s.Resolve(0x4800_0000, memmap.AccessRead); err == nil {
		t.Fatal("carved window still resolves")
	}
	// Both remainders still work and translate correctly.
	hpa, _, err := s.Resolve(0x4000_0000, memmap.AccessRead)
	if err != nil || hpa != 0x4000_0000 {
		t.Fatalf("left remainder: %#x %v", hpa, err)
	}
	hpa, _, err = s.Resolve(0x4900_0000, memmap.AccessRead)
	if err != nil || hpa != 0x4900_0000 {
		t.Fatalf("right remainder: %#x %v", hpa, err)
	}
}

func TestGuestMRCEmulation(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	createFreeRTOSCell(t, brd, h, guest)

	// The cell reads its MPIDR through the trapped CP15 path: affinity 1.
	v := h.GuestMRC(1, armv7.CP15MPIDR)
	if v&0xFF != 1 {
		t.Fatalf("cell MPIDR = %#x, want Aff0=1", v)
	}
	if mid := h.GuestMRC(1, armv7.CP15MIDR); mid != 0x410FC075 {
		t.Fatalf("MIDR = %#x, want Cortex-A7", mid)
	}
	// Filtered registers read as zero.
	if act := h.GuestMRC(1, armv7.CP15ACTLR); act != 0 {
		t.Fatalf("ACTLR = %#x, want RAZ", act)
	}
	// The accesses were counted as CP15 exits.
	if h.PerCPU(1).Stats[ExitCP15] < 3 {
		t.Fatalf("cp15 exits = %d", h.PerCPU(1).Stats[ExitCP15])
	}
}
