package jailhouse

import (
	"testing"

	"github.com/dessertlab/certify/internal/memmap"
)

// ivshmemRig builds an enabled hypervisor with the FreeRTOS cell and a
// shared window both cells map.
func ivshmemRig(t *testing.T) (*Hypervisor, *Cell, memmap.Region) {
	t.Helper()
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	cell := createFreeRTOSCell(t, brd, h, guest)
	// The comm-region page is mapped rootshared by both sides.
	shared := memmap.Region{
		Phys: CommRegionBase, Virt: CommRegionBase, Size: CommRegionSize,
		Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagRootShared,
	}
	return h, cell, shared
}

func TestIvshmemLinkSetup(t *testing.T) {
	h, cell, shared := ivshmemRig(t)
	link, err := h.AddIvshmem(0, cell.ID, shared, 60, 61)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.IvshmemLinks()) != 1 {
		t.Fatal("link not registered")
	}
	if !h.ConsoleContains("virtual PCI device") {
		t.Fatal("missing device-add console lines")
	}
	a, b := link.Rings()
	if a != 0 || b != 0 {
		t.Fatal("fresh link has rings")
	}
}

func TestIvshmemSetupValidation(t *testing.T) {
	h, cell, shared := ivshmemRig(t)
	if _, err := h.AddIvshmem(0, 42, shared, 60, 61); err == nil {
		t.Fatal("link to missing cell accepted")
	}
	if _, err := h.AddIvshmem(cell.ID, cell.ID, shared, 60, 61); err == nil {
		t.Fatal("self-loop accepted")
	}
	unmapped := memmap.Region{Phys: 0x7000_0000, Virt: 0x7000_0000, Size: 0x1000}
	if _, err := h.AddIvshmem(0, cell.ID, unmapped, 60, 61); err == nil {
		t.Fatal("link over unmapped window accepted")
	}
}

func TestIvshmemDoorbellDelivery(t *testing.T) {
	h, cell, shared := ivshmemRig(t)
	guest, ok := cell.Guest.(*fakeInmate)
	if !ok {
		t.Fatal("unexpected guest type")
	}
	link, err := h.AddIvshmem(0, cell.ID, shared, 60, 61)
	if err != nil {
		t.Fatal(err)
	}
	// Root rings → the FreeRTOS cell's doorbell SPI 61 arrives.
	if err := h.Ring(link, 0); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, irq := range guest.irqs {
		if irq[0] == 1 && irq[1] == 61 {
			found = true
		}
	}
	if !found {
		t.Fatalf("doorbell not delivered; guest irqs = %v", guest.irqs)
	}
	if a, _ := link.Rings(); a != 1 {
		t.Fatalf("ringsA = %d", a)
	}
}

func TestIvshmemThirdPartyCannotRing(t *testing.T) {
	h, cell, shared := ivshmemRig(t)
	link, err := h.AddIvshmem(0, cell.ID, shared, 60, 61)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Ring(link, 99); err == nil {
		t.Fatal("non-peer ring accepted — isolation breach")
	}
	if err := h.Ring(nil, 0); err == nil {
		t.Fatal("nil link accepted")
	}
}

func TestIvshmemSharedMemoryDataPath(t *testing.T) {
	h, cell, shared := ivshmemRig(t)
	if _, err := h.AddIvshmem(0, cell.ID, shared, 60, 61); err != nil {
		t.Fatal(err)
	}
	// Root writes into the shared window; the cell reads the same word
	// through its own stage-2 mapping.
	if err := h.GuestWrite32(0, shared.Virt+0x10, 0xFEEDC0DE); err != nil {
		t.Fatal(err)
	}
	v, err := h.GuestRead32(1, shared.Virt+0x10)
	if err != nil || v != 0xFEEDC0DE {
		t.Fatalf("shared read = %#x, %v", v, err)
	}
}

func TestRequestShutdownHandshake(t *testing.T) {
	brd, h := rig(t)
	guest := &fakeInmate{name: "freertos"}
	cell := createFreeRTOSCell(t, brd, h, guest)

	if e := h.RequestShutdown(cell.ID); e.Failed() {
		t.Fatalf("RequestShutdown: %v", e)
	}
	if !guest.shutdown {
		t.Fatal("inmate did not receive the shutdown request")
	}
	if cell.CommPending != MsgShutdownRequest {
		t.Fatal("comm region message not latched")
	}
	if e := h.RequestShutdown(0); e != ENOENT {
		t.Fatalf("shutdown of root = %v, want ENOENT", e)
	}
	if e := h.RequestShutdown(77); e != ENOENT {
		t.Fatalf("shutdown of missing cell = %v", e)
	}
	// Follow with SET_LOADABLE (the tool's second half): cell stops.
	if e := h.HVC(0, HCCellSetLoadable, uint32(cell.ID), 0); e.Failed() {
		t.Fatal(e)
	}
	if cell.State != CellShutDown {
		t.Fatalf("state after shutdown = %v", cell.State)
	}
}
