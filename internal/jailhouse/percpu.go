package jailhouse

import "fmt"

// percpuCanary is the integrity tag stored in every per-CPU block. The
// real Jailhouse locates per-CPU data by masking the HYP stack pointer;
// corruption that redirects that derivation shows up as writes landing in
// the wrong block. The canary models Jailhouse's implicit invariants
// (valid cell pointer, sane stack) as one explicit, checkable word.
const percpuCanary uint32 = 0x4A48_7043 // "JHpC"

// VMExit reason counters kept per CPU, mirroring Jailhouse's
// JAILHOUSE_CPU_STAT_* statistics.
type VMExit int

// VMExit reasons. ExitNone marks nested handler entries that must not
// re-count an already-counted exit (arch_handle_hvc is dispatched from
// arch_handle_trap, which counted it).
const (
	ExitNone  VMExit = -1
	ExitTotal VMExit = iota - 1
	ExitHVC
	ExitMMIO
	ExitPSCI
	ExitWFx
	ExitCP15
	ExitIRQ
	ExitUnhandled
	numExitReasons
)

var exitNames = [numExitReasons]string{
	"total", "hvc", "mmio", "psci", "wfx", "cp15", "irq", "unhandled",
}

// String returns the counter name.
func (v VMExit) String() string {
	if v >= 0 && int(v) < len(exitNames) {
		return exitNames[v]
	}
	return fmt.Sprintf("exit(%d)", int(v))
}

// PerCPU is the hypervisor's per-core control block.
type PerCPU struct {
	CPUID int

	// cell owning this CPU right now.
	cell *Cell

	// Parked: the core sits in the hypervisor's parking page
	// (cpu_park() was called). Cleared by CPU reset on cell start or
	// destroy.
	Parked bool

	// ParkReason records why the core was parked (e.g. the paper's
	// "unhandled trap exception, error code 0x24").
	ParkReason string

	// OnlineInCell: the core completed its reset handshake and is
	// executing guest code. False between CPU_OFF and cell start — the
	// "CPU fails to come online" state of experiment E2 is Parked=false,
	// OnlineInCell=false with the owning cell RUNNING.
	OnlineInCell bool

	// Stats counts VM exits by reason.
	Stats [numExitReasons]uint64

	// canary guards the block's integrity; checked on every handler
	// entry. Cross-CPU corruption (a flipped per-CPU derivation on the
	// other core) clears it, and the check escalates to panic_stop —
	// the mechanism behind the paper's system-wide "panic park".
	canary uint32
}

func newPerCPU(id int) *PerCPU {
	return &PerCPU{CPUID: id, canary: percpuCanary}
}

// Cell returns the owning cell (nil before the hypervisor is enabled).
func (p *PerCPU) Cell() *Cell { return p.cell }

// IntegrityOK reports whether the block's canary is intact.
func (p *PerCPU) IntegrityOK() bool { return p.canary == percpuCanary }

// corrupt clobbers the canary, modelling a stray hypervisor write into
// this block.
func (p *PerCPU) corrupt() { p.canary = 0xDEADBEEF }

// repair restores the canary (CPU reset re-initialises per-CPU data).
func (p *PerCPU) repair() { p.canary = percpuCanary }

// count increments a VM-exit counter (plus the total). ExitNone counts
// nothing.
func (p *PerCPU) count(reason VMExit) {
	if reason == ExitNone {
		return
	}
	p.Stats[ExitTotal]++
	if reason > ExitTotal && reason < numExitReasons {
		p.Stats[reason]++
	}
}
