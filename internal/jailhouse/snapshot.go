package jailhouse

import (
	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/memmap"
)

// This file implements the hypervisor's part of the machine-snapshot
// mechanism (see DESIGN.md, "Snapshot-fork machines"): a deep copy of
// every mutable control block taken once after boot, restored in place
// between campaign runs so the boot path is never replayed. Cell and
// guest objects are captured by pointer plus content — the snapshot
// belongs to one machine, and the closures the boot scheduled reference
// exactly these objects, so restoring content into the same objects is
// what keeps those closures valid.

// cellSnapshot is the captured content of one Cell.
type cellSnapshot struct {
	cell        *Cell // the live object the content belongs to
	state       CellState
	loadable    bool
	commPending uint32
	guest       Inmate
	cpus        []int           // assigned CPUs, ascending
	stage2      []memmap.Region // deep copy of the address space
	irqLines    []int           // Config.IRQLines (ivshmem can append)
}

// linkSnapshot is the captured content of one ivshmem link. The peers'
// doorbell IRQ assignments live in their cell configs, which the cell
// snapshots already cover.
type linkSnapshot struct {
	link           *IvshmemLink
	ringsA, ringsB uint64
}

// Snapshot is a deep copy of the hypervisor's mutable state at one
// instant: configuration binding, cell list with per-cell content,
// per-CPU blocks, console, IRQ scratch frames, ivshmem links and the
// firmware-taint latch.
type Snapshot struct {
	sysCfg     *SystemConfig
	enabled    bool
	panicked   bool
	panicMsg   string
	cells      []cellSnapshot
	nextCellID uint32
	percpu     []PerCPU
	offlined   []int
	hook       EntryHook
	console    []string
	putcAccum  []byte
	irqCtx     []armv7.TrapContext
	irqCtxBusy []bool
	ivshmem    []linkSnapshot
	fwTainted  bool
	hypTraps   uint64
}

// CaptureSnapshot deep-copies the hypervisor state. The board is
// captured separately (board.Board.CaptureSnapshot); core.Machine
// composes the two.
func (h *Hypervisor) CaptureSnapshot() *Snapshot {
	s := &Snapshot{
		sysCfg:     h.sysCfg,
		enabled:    h.enabled,
		panicked:   h.panicked,
		panicMsg:   h.panicMsg,
		nextCellID: h.nextCellID,
		hook:       h.Hook,
		console:    append([]string(nil), h.ConsoleLines...),
		putcAccum:  append([]byte(nil), h.putcAccum...),
		irqCtx:     append([]armv7.TrapContext(nil), h.irqCtx...),
		irqCtxBusy: append([]bool(nil), h.irqCtxBusy...),
		fwTainted:  h.fwTainted,
		hypTraps:   h.hypTraps,
	}
	for _, c := range h.cells {
		s.cells = append(s.cells, cellSnapshot{
			cell:        c,
			state:       c.State,
			loadable:    c.Loadable,
			commPending: c.CommPending,
			guest:       c.Guest,
			cpus:        c.CPUList(),
			stage2:      c.Stage2.CaptureSnapshot(),
			irqLines:    append([]int(nil), c.Config.IRQLines...),
		})
	}
	for _, p := range h.percpu {
		s.percpu = append(s.percpu, *p)
	}
	s.offlined = h.OfflinedCPUs()
	for _, l := range h.ivshmem {
		s.ivshmem = append(s.ivshmem, linkSnapshot{link: l, ringsA: l.ringsA, ringsB: l.ringsB})
	}
	return s
}

// RestoreSnapshot rewinds the hypervisor to a captured state in place.
// Cells the run created after the capture are dropped from the cell
// list; cells present at capture get their content written back into
// the same objects, so guest models and scheduled closures holding those
// pointers keep working.
func (h *Hypervisor) RestoreSnapshot(s *Snapshot) {
	h.sysCfg = s.sysCfg
	h.enabled = s.enabled
	h.panicked, h.panicMsg = s.panicked, s.panicMsg
	for i := range h.cells {
		h.cells[i] = nil
	}
	h.cells = h.cells[:0]
	for i := range s.cells {
		cs := &s.cells[i]
		c := cs.cell
		c.State = cs.state
		c.Loadable = cs.loadable
		c.CommPending = cs.commPending
		c.Guest = cs.guest
		clear(c.cpus)
		for _, cpu := range cs.cpus {
			c.cpus[cpu] = true
		}
		c.Stage2.RestoreSnapshot(cs.stage2)
		c.Config.IRQLines = append(c.Config.IRQLines[:0], cs.irqLines...)
		h.cells = append(h.cells, c)
	}
	h.nextCellID = s.nextCellID
	for i, p := range h.percpu {
		*p = s.percpu[i]
	}
	clear(h.rootOfflined)
	for _, cpu := range s.offlined {
		h.rootOfflined[cpu] = true
	}
	h.Hook = s.hook
	old := len(h.ConsoleLines)
	h.ConsoleLines = append(h.ConsoleLines[:0], s.console...)
	for i := len(h.ConsoleLines); i < old; i++ {
		h.ConsoleLines[:old][i] = "" // release retained strings
	}
	h.putcAccum = append(h.putcAccum[:0], s.putcAccum...)
	copy(h.irqCtx, s.irqCtx)
	copy(h.irqCtxBusy, s.irqCtxBusy)
	for i := range h.ivshmem {
		h.ivshmem[i] = nil
	}
	h.ivshmem = h.ivshmem[:0]
	for i := range s.ivshmem {
		ls := &s.ivshmem[i]
		ls.link.ringsA, ls.link.ringsB = ls.ringsA, ls.ringsB
		h.ivshmem = append(h.ivshmem, ls.link)
	}
	h.fwTainted = s.fwTainted
	h.hypTraps = s.hypTraps
}
