package jailhouse

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/memmap"
	"github.com/dessertlab/certify/internal/sim"
)

// maxConfigBlob bounds how much guest memory CELL_CREATE will read — a
// corrupted size cannot drag the hypervisor through the whole of DRAM.
const maxConfigBlob = 64 * 1024

// ArchHandleHVC is the hypercall entry — Jailhouse's arch_handle_hvc().
// The hypercall ABI mirrors the real one: the guest executes
// HVC #0x4a48 with the code in r0 and arguments in r1/r2; the result
// replaces r0. Anything malformed — wrong immediate, unknown code,
// unreadable or unparsable config — produces a negative errno, which the
// root cell's tooling prints as "Invalid argument": the paper's E1
// observation.
func (h *Hypervisor) ArchHandleHVC(cpu int, ctx *armv7.TrapContext) {
	res, proceed := h.enterHandler(PointHVC, cpu, ExitNone, ctx)
	if !proceed {
		return
	}

	if armv7.HVCImmediate(ctx.HSR) != armv7.JailhouseHVCImm {
		// Not a Jailhouse hypercall. Real hardware would deliver an
		// UNDEF to the guest; the model reports ENOSYS.
		ctx.WriteReg(0, errnoWord(ENOSYS))
		h.notifyCorruptedResume(cpu, ctx, res)
		return
	}

	code, arg1, arg2 := ctx.Regs[0], ctx.Regs[1], ctx.Regs[2]
	result := h.hypercall(cpu, code, arg1, arg2)
	h.trace(sim.KindHypercall, cpu, "%s(%#x, %#x) = %d (%s)",
		sim.Str(HypercallName(code)), sim.Uint(uint64(arg1)), sim.Uint(uint64(arg2)),
		sim.Int(int64(int32(result))), sim.Str(result.String()))
	ctx.WriteReg(0, errnoWord(result))
	h.notifyCorruptedResume(cpu, ctx, res)
}

// errnoWord encodes a hypercall result into the r0 register word.
func errnoWord(e Errno) uint32 { return uint32(int32(e)) }

// hypercall dispatches one management hypercall.
func (h *Hypervisor) hypercall(cpu int, code, arg1, arg2 uint32) Errno {
	if code >= numHypercalls {
		return ENOSYS
	}
	cell := h.cellOf(cpu)
	if cell == nil {
		return EPERM
	}
	// Management operations are the root cell's privilege.
	mgmt := code == HCDisable || code == HCCellCreate || code == HCCellStart ||
		code == HCCellSetLoadable || code == HCCellDestroy
	if mgmt && cell.ID != 0 {
		return EPERM
	}

	switch code {
	case HCDisable:
		return h.Disable()
	case HCCellCreate:
		return h.cellCreate(arg1)
	case HCCellStart:
		return h.cellStart(arg1)
	case HCCellSetLoadable:
		return h.cellSetLoadable(arg1)
	case HCCellDestroy:
		return h.cellDestroy(arg1)
	case HCHypervisorGetInfo:
		return h.getInfo(arg1)
	case HCCellGetState:
		return h.cellGetState(arg1)
	case HCCPUGetInfo:
		return h.cpuGetInfo(arg1, arg2)
	case HCDebugConsolePutc:
		if arg1 > 0xFF {
			return EINVAL
		}
		h.consolePutc(byte(arg1))
		return EOK
	default:
		return ENOSYS
	}
}

// consolePutc models the debug-console hypercall's byte sink.
func (h *Hypervisor) consolePutc(b byte) {
	if b == '\n' {
		h.consolef("%s", string(h.putcAccum))
		h.putcAccum = h.putcAccum[:0]
		return
	}
	h.putcAccum = append(h.putcAccum, b)
}

// cellCreate implements CELL_CREATE: read the config blob from root
// memory at guest-physical configGPA, validate everything, and carve the
// new cell out of the root cell's resources.
func (h *Hypervisor) cellCreate(configGPA uint32) Errno {
	root := h.RootCell()

	// The config pointer must resolve through the root cell's own
	// mappings — a corrupted pointer fails here with EINVAL.
	hpa, _, err := root.Stage2.Resolve(uint64(configGPA), memmap.AccessRead)
	if err != nil {
		h.consolef("cell create: cannot access config at %#x", configGPA)
		return EINVAL
	}
	head, err := h.brd.RAM.Read(hpa, configHeaderSize)
	if err != nil {
		return EINVAL
	}
	// Probe the full blob size from the header, bounded.
	probe, err := UnmarshalCellConfig(head)
	var full []byte
	if err != nil {
		// Header alone may be insufficient (region payload follows);
		// retry with the maximum window when the signature is intact.
		if string(head[0:6]) != ConfigSignature {
			h.consolef("cell create: bad config signature")
			return EINVAL
		}
		full, err = h.brd.RAM.Read(hpa, maxConfigBlob)
		if err != nil {
			return EINVAL
		}
		probe, err = UnmarshalCellConfig(full)
		if err != nil {
			h.consolef("cell create: %v", err)
			return EINVAL
		}
	}
	cfg := probe

	if _, exists := h.CellByName(cfg.Name); exists {
		return EEXIST
	}

	// Every CPU the new cell wants must have been offlined by root
	// first (the hotplug handshake), and must belong to root.
	for _, cpu := range cfg.CPUs() {
		p := h.PerCPU(cpu)
		if p == nil {
			return EINVAL
		}
		if p.cell != root {
			return EBUSY
		}
		if !h.rootOfflined[cpu] {
			h.consolef("cell create: CPU %d not offlined by root", cpu)
			return EBUSY
		}
	}

	// Memory regions must not collide with other non-root cells; they
	// are carved from root's space (ROOTSHARED regions stay shared).
	for _, r := range cfg.MemRegions {
		for _, other := range h.cells[1:] {
			for _, or := range other.Config.MemRegions {
				if r.OverlapsPhys(or) && r.Flags&memmap.FlagRootShared == 0 {
					h.consolef("cell create: region %v overlaps cell %q", r, other.Name())
					return EBUSY
				}
			}
		}
		if r.OverlapsPhys(h.sysCfg.HypMemory) {
			return EINVAL
		}
	}

	cell, err := newCell(h.nextCellID, cfg)
	if err != nil {
		return EINVAL
	}
	h.nextCellID++

	// Donate the CPUs.
	for _, cpu := range cfg.CPUs() {
		root.removeCPU(cpu)
		cell.addCPU(cpu)
		p := h.PerCPU(cpu)
		p.cell = cell
		p.Parked = false
		p.OnlineInCell = false
		p.repair()
	}
	// Donate the memory: non-shared regions disappear from the root
	// cell's address space (root is identity-mapped, so the carve window
	// is the physical window).
	for _, r := range cfg.MemRegions {
		if r.Flags&(memmap.FlagRootShared|memmap.FlagCommRegion) == 0 {
			root.Stage2.Carve(r.Phys, r.Size)
		}
	}
	h.cells = append(h.cells, cell)
	h.consolef("Created cell \"%s\"", cfg.Name)
	h.trace(sim.KindCellEvent, -1, "cell %q created (id %d, cpus %v)",
		sim.Str(cfg.Name), sim.Int(int64(cell.ID)), sim.Str(fmt.Sprint(cfg.CPUs())))
	return Errno(cell.ID)
}

// RequestShutdown delivers the comm-region SHUTDOWN_REQUEST message to a
// running cell — the cooperative half of "jailhouse cell shutdown". The
// inmate acknowledges via OnShutdown; an unresponsive (broken) inmate is
// simply overridden by the subsequent SET_LOADABLE, which is exactly how
// the paper's broken cells still shut down cleanly.
func (h *Hypervisor) RequestShutdown(id uint32) Errno {
	cell, ok := h.CellByID(id)
	if !ok || cell.ID == 0 {
		return ENOENT
	}
	cell.CommPending = MsgShutdownRequest
	if cell.Guest != nil {
		cell.Guest.OnShutdown()
	}
	h.trace(sim.KindCellEvent, -1, "cell %q shutdown requested", sim.Str(cell.Name()))
	return EOK
}

// cellSetLoadable implements CELL_SET_LOADABLE: stop the cell and map its
// loadable regions into the root cell so images can be written.
func (h *Hypervisor) cellSetLoadable(id uint32) Errno {
	cell, ok := h.CellByID(id)
	if !ok || cell.ID == 0 {
		return ENOENT
	}
	cell.State = CellShutDown
	cell.Loadable = true
	for _, cpu := range cell.CPUList() {
		p := h.PerCPU(cpu)
		p.OnlineInCell = false
	}
	// Loadable regions become visible to root for image writing.
	root := h.RootCell()
	for _, r := range cell.Config.MemRegions {
		if r.Flags&memmap.FlagLoadable != 0 {
			_ = root.Stage2.Map(memmap.Region{
				Phys: r.Phys, Virt: r.Phys, Size: r.Size,
				Flags: memmap.FlagRead | memmap.FlagWrite,
			})
		}
	}
	h.trace(sim.KindCellEvent, -1, "cell %q set loadable", sim.Str(cell.Name()))
	return EOK
}

// cellStart implements CELL_START: reset the cell's CPUs and kick them
// into the guest via the start SGI. The SGI travels through the real
// interrupt path — IRQChipHandleIRQ on the target CPU — which is exactly
// where the E2 experiment's injections break the bring-up.
func (h *Hypervisor) cellStart(id uint32) Errno {
	cell, ok := h.CellByID(id)
	if !ok || cell.ID == 0 {
		return ENOENT
	}
	if cell.State == CellRunning {
		return EBUSY
	}
	if cell.Guest == nil {
		h.consolef("cell start: no image loaded in \"%s\"", cell.Name())
		return EINVAL
	}
	// Loadable windows leave the root cell again.
	if cell.Loadable {
		root := h.RootCell()
		for _, r := range cell.Config.MemRegions {
			if r.Flags&memmap.FlagLoadable != 0 {
				root.Stage2.Carve(r.Phys, r.Size)
			}
		}
	}
	cell.Loadable = false
	cell.State = CellRunning
	cell.CommPending = MsgNone
	h.consolef("Started cell \"%s\"", cell.Name())
	h.trace(sim.KindCellEvent, -1, "cell %q started", sim.Str(cell.Name()))

	for _, cpu := range cell.CPUList() {
		p := h.PerCPU(cpu)
		p.Parked = false
		p.repair()
		h.brd.CPUs[cpu].Parked = false
		h.brd.CPUs[cpu].Online = true
		// The bring-up kick: SGI 0 to the target CPU, delivered through
		// the distributor like any other interrupt.
		h.brd.GIC.EnableDistributor(true)
		h.brd.GIC.EnableCPUInterface(cpu, true)
		h.brd.GIC.EnableIRQ(sgiEventStart)
		if err := h.brd.GIC.SendSGI(0, 1<<uint(cpu), sgiEventStart); err != nil {
			return EIO
		}
	}
	return EOK
}

// cellDestroy implements CELL_DESTROY: tear the cell down whatever state
// it is in, returning CPUs and memory to the root cell. The paper's E3
// verifies this still works after a CPU park — the fault stayed isolated.
func (h *Hypervisor) cellDestroy(id uint32) Errno {
	cell, ok := h.CellByID(id)
	if !ok || cell.ID == 0 {
		return ENOENT
	}
	root := h.RootCell()
	for _, cpu := range cell.CPUList() {
		p := h.PerCPU(cpu)
		cell.removeCPU(cpu)
		root.addCPU(cpu)
		p.cell = root
		p.Parked = false
		p.OnlineInCell = false
		p.repair()
		h.brd.CPUs[cpu].Parked = false
		h.brd.CPUs[cpu].Online = false
		h.rootOfflined[cpu] = true // back in root's hotplug pool
		h.brd.GIC.ClearCPU(cpu)
		h.brd.StopTimer(cpu)
	}
	if cell.Guest != nil {
		cell.Guest.OnShutdown()
		cell.Guest = nil
	}
	// Memory returns to the root cell (identity-mapped). Overlap errors
	// are impossible for regions that were carved at create time; shared
	// regions were never removed and are skipped.
	for _, r := range cell.Config.MemRegions {
		if r.Flags&(memmap.FlagRootShared|memmap.FlagCommRegion) == 0 {
			_ = root.Stage2.Map(memmap.Region{
				Phys: r.Phys, Virt: r.Phys, Size: r.Size, Flags: r.Flags,
			})
		}
	}
	for i, c := range h.cells {
		if c == cell {
			h.cells = append(h.cells[:i], h.cells[i+1:]...)
			break
		}
	}
	h.consolef("Closed cell \"%s\"", cell.Name())
	h.trace(sim.KindCellEvent, -1, "cell %q destroyed", sim.Str(cell.Name()))
	return EOK
}

// cellGetState implements CELL_GET_STATE.
func (h *Hypervisor) cellGetState(id uint32) Errno {
	cell, ok := h.CellByID(id)
	if !ok {
		return ENOENT
	}
	return Errno(cell.State)
}

// getInfo implements HYPERVISOR_GET_INFO.
func (h *Hypervisor) getInfo(item uint32) Errno {
	switch item {
	case InfoMemPoolSize:
		return Errno(16384)
	case InfoMemPoolUsed:
		return Errno(512 + 128*len(h.cells))
	case InfoNumCells:
		return Errno(len(h.cells))
	case InfoCodeVersion:
		return Errno(12) // v0.12
	default:
		return EINVAL
	}
}

// cpuGetInfo implements CPU_GET_INFO.
func (h *Hypervisor) cpuGetInfo(cpu, item uint32) Errno {
	p := h.PerCPU(int(cpu))
	if p == nil {
		return EINVAL
	}
	switch item {
	case CPUInfoState:
		switch {
		case p.Parked:
			return Errno(CPUStateParked)
		case !p.OnlineInCell:
			return Errno(CPUStateOffline)
		default:
			return Errno(CPUStateRunning)
		}
	case CPUInfoStatParks:
		return Errno(p.Stats[ExitUnhandled])
	default:
		return EINVAL
	}
}

// SGI event IDs used by the hypervisor's management path.
const (
	sgiEventStart = 0 // bring the target CPU online in its cell
	sgiEventPark  = 1 // park the target CPU
)
