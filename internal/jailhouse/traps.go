package jailhouse

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/gic"
	"github.com/dessertlab/certify/internal/sim"
)

// ArchHandleTrap is the hypervisor's central synchronous-exception
// handler — Jailhouse's arch_handle_trap(). Every guest HVC, SMC,
// emulated MMIO access and trapped system-register access funnels through
// here, dispatched on the HSR exception class. It is the paper's primary
// injection point for the Figure 3 experiment.
//
// The context is returned (possibly modified) so callers — the GuestPort
// entry paths — can restore it to the CPU, corrupted or not.
func (h *Hypervisor) ArchHandleTrap(cpu int, ctx *armv7.TrapContext) {
	res, proceed := h.enterHandler(PointTrap, cpu, exitReasonFor(ctx.HSR), ctx)
	if !proceed {
		return
	}

	ec := armv7.HSRClass(ctx.HSR)
	h.trace(sim.KindTrap, cpu, "trap %s from cell %q", sim.Str(ec.String()), sim.Str(h.cellNameOf(cpu)))

	switch ec {
	case armv7.ECHVC:
		// Nested dispatch mirrors Jailhouse: arch_handle_trap calls
		// arch_handle_hvc for hypercall-class exits. A plan targeting
		// only arch_handle_hvc hooks there; one targeting
		// arch_handle_trap corrupts the frame before this dispatch.
		h.ArchHandleHVC(cpu, ctx)
	case armv7.ECSMC:
		h.handlePSCI(cpu, ctx)
	case armv7.ECDABTLow:
		h.handleDataAbort(cpu, ctx)
	case armv7.ECWFx:
		// WFI/WFE: benign, resume the guest past the instruction.
		ctx.ELR += 4
	case armv7.ECCP15_32:
		// Trapped MCR/MRC: emulate the identification registers with
		// their architectural values; everything else reads as zero and
		// ignores writes — Jailhouse's hardening default for the
		// registers it filters.
		reg, rt, read := armv7.DecodeCP15(armv7.HSRISS(ctx.HSR))
		if read {
			v, _ := armv7.CP15Value(h.brd.CPUs[cpu], reg)
			ctx.WriteReg(rt, v)
		}
		h.trace(sim.KindTrap, cpu, "cp15 %s %s", sim.Str(cp15Op(read)), sim.Str(reg.String()))
		ctx.ELR += 4
	case armv7.ECCP15_64, armv7.ECCP14_32:
		// 64-bit and CP14 transfers: write-ignore / read-as-zero.
		da := armv7.HSRISS(ctx.HSR)
		reg := int((da >> 5) & 0xF)
		ctx.WriteReg(reg, 0)
		ctx.ELR += 4
	case armv7.ECIABTLow:
		// Prefetch abort from the guest: it jumped somewhere its cell
		// has no executable mapping — the typical aftermath of a
		// corrupted return address. Not emulatable.
		h.unhandledTrap(cpu, ctx, fmt.Sprintf("prefetch abort at %#x outside cell mapping", ctx.ELR))
		return
	default:
		// Unknown or unexpected exception class — with a corrupted HSR
		// this is where flips in the EC field land.
		h.unhandledTrap(cpu, ctx, fmt.Sprintf("unhandled trap exception, error code %#02x", uint32(ec)))
		return
	}

	h.notifyCorruptedResume(cpu, ctx, res)
}

// exitReasonFor maps a syndrome to the per-CPU statistics bucket.
func exitReasonFor(hsr uint32) VMExit {
	switch armv7.HSRClass(hsr) {
	case armv7.ECHVC:
		return ExitHVC
	case armv7.ECSMC:
		return ExitPSCI
	case armv7.ECDABTLow:
		return ExitMMIO
	case armv7.ECWFx:
		return ExitWFx
	case armv7.ECCP15_32, armv7.ECCP15_64, armv7.ECCP14_32:
		return ExitCP15
	default:
		return ExitUnhandled
	}
}

// unhandledTrap implements Jailhouse's dump-and-die path for traps no
// handler claims: the register frame is dumped to the hypervisor console
// and the CPU is parked — or, for the root cell, the whole system stops,
// since the root cell's health is the hypervisor's own.
func (h *Hypervisor) unhandledTrap(cpu int, ctx *armv7.TrapContext, why string) {
	h.consolef("%s", why)
	h.consolef("pc=%#08x cpsr=%#08x hsr=%#08x", ctx.ELR, ctx.SPSR, ctx.HSR)
	cell := h.cellOf(cpu)
	if cell != nil && cell.ID == 0 {
		h.panicStop(cpu, why)
		return
	}
	h.cpuPark(cpu, why)
}

// handleDataAbort emulates trapped MMIO. Only the interrupt distributor
// is trap-and-emulate in this configuration (direct-assigned device
// windows never fault); anything else is an access violation.
func (h *Hypervisor) handleDataAbort(cpu int, ctx *armv7.TrapContext) {
	cell := h.cellOf(cpu)
	if cell == nil {
		return
	}
	da := armv7.DecodeDataAbort(armv7.HSRISS(ctx.HSR))
	addr := uint64(ctx.HDFAR)

	if !da.Valid {
		// No valid syndrome — the abort cannot be emulated. Jailhouse
		// dumps and parks. This is the canonical "error code 0x24"
		// outcome the paper reports.
		h.unhandledTrap(cpu, ctx, fmt.Sprintf("unhandled trap exception, error code %#02x", uint32(armv7.ECDABTLow)))
		return
	}

	// GIC distributor: always emulated, with cell-ownership filtering.
	if addr >= board.GICDBase && addr < board.GICDBase+gic.RegionSize {
		h.emulateGICD(cpu, cell, addr-board.GICDBase, da, ctx)
		ctx.ELR += 4
		return
	}

	// Inside the cell's own mappings? Then forward to the bus (this only
	// happens when a corrupted fault address re-targets an access that
	// originally trapped elsewhere — the hardware would have satisfied
	// it directly).
	if cell.OwnsMMIO(addr) {
		if da.Write {
			_ = h.brd.Write32(cpu, addr, ctx.Regs[da.Reg])
		} else if v, err := h.brd.Read32(cpu, addr); err == nil {
			ctx.WriteReg(da.Reg, v)
		}
		ctx.ELR += 4
		return
	}

	// Access violation: the cell touched something it does not own.
	op := "read"
	if da.Write {
		op = "write"
	}
	h.unhandledTrap(cpu, ctx, fmt.Sprintf("Unhandled data %s at %#x(%d)", op, addr, da.Size))
}

// emulateGICD applies a cell's distributor access with ownership
// enforcement: a cell may only operate on its own SPIs, its SGI/PPI
// banks, and may only send SGIs to its own CPUs. Writes touching foreign
// interrupts are silently filtered — isolation by construction.
func (h *Hypervisor) emulateGICD(cpu int, cell *Cell, off uint64, da armv7.DataAbort, ctx *armv7.TrapContext) {
	if !da.Write {
		v, err := h.brd.GIC.ReadReg(off)
		if err != nil {
			v = 0 // reads of unimplemented registers return zero
		}
		ctx.WriteReg(da.Reg, v)
		return
	}
	value := ctx.Regs[da.Reg]

	switch {
	case off >= gic.GICDISEnabler && off < gic.GICDISEnabler+uint64(gic.MaxIRQ/8),
		off >= gic.GICDICEnabler && off < gic.GICDICEnabler+uint64(gic.MaxIRQ/8):
		var base uint64 = gic.GICDISEnabler
		if off >= gic.GICDICEnabler {
			base = gic.GICDICEnabler
		}
		word := int(off-base) / 4
		value &= h.ownedIRQMask(cell, word)
		off = base + uint64(word*4)
	case off == gic.GICDSgir:
		// Restrict SGI targets to the cell's own CPUs.
		var own uint32
		for _, c := range cell.CPUList() {
			own |= 1 << uint(c)
		}
		tl := (value >> 16) & 0xFF & own
		value = value&^uint32(0xFF<<16) | tl<<16
	case off == gic.GICDCtlr:
		// Only the root cell may switch the distributor off.
		if cell.ID != 0 && value&1 == 0 {
			return
		}
	}
	if err := h.brd.GIC.WriteReg(off, value, cpu); err != nil {
		// Write to an unimplemented register: ignored, as hardware
		// RAZ/WI behaviour.
		h.trace(sim.KindNote, cpu, "gicd: ignored write at %#x", sim.Uint(off))
	}
}

// ownedIRQMask builds the 32-bit enable-register mask of interrupts the
// cell may operate on in the given register word: its banked SGIs/PPIs
// (word 0) and its configured SPI lines.
func (h *Hypervisor) ownedIRQMask(cell *Cell, word int) uint32 {
	if word == 0 {
		return 0xFFFFFFFF // SGIs+PPIs are banked per CPU: always owned
	}
	var mask uint32
	for _, irq := range cell.Config.IRQLines {
		if irq/32 == word {
			mask |= 1 << uint(irq%32)
		}
	}
	// The virtual timer PPI lives in word 0; SPIs from the config cover
	// the rest.
	return mask
}

// handlePSCI emulates the PSCI SMC interface — the CPU hotplug "swap"
// mechanism: the root cell offlines a core with CPU_OFF before donating
// it, and brings returned cores back with CPU_ON.
func (h *Hypervisor) handlePSCI(cpu int, ctx *armv7.TrapContext) {
	fn := ctx.Regs[0]
	cell := h.cellOf(cpu)
	ret := int32(armv7.PSCIRetNotSupported)

	if armv7.IsPSCICall(fn) {
		switch fn {
		case armv7.PSCIVersion:
			ret = int32(armv7.PSCIVersionValue)
		case armv7.PSCIFeatures:
			ret = armv7.PSCIRetSuccess
		case armv7.PSCICPUOff:
			// The calling CPU goes offline. For the root cell this is
			// the pre-donation hotplug step.
			p := h.PerCPU(cpu)
			p.OnlineInCell = false
			h.brd.CPUs[cpu].Online = false
			if cell != nil && cell.ID == 0 {
				h.rootOfflined[cpu] = true
			}
			h.trace(sim.KindCellEvent, cpu, "psci: CPU_OFF in cell %q", sim.Str(h.cellNameOf(cpu)))
			ret = armv7.PSCIRetSuccess
		case armv7.PSCICPUOn:
			target := int(ctx.Regs[1] & 0xFF) // MPIDR Aff0
			ret = h.psciCPUOn(cell, target)
		case armv7.PSCIAffinityInfo:
			target := int(ctx.Regs[1] & 0xFF)
			if p := h.PerCPU(target); p != nil && p.OnlineInCell {
				ret = 0 // ON
			} else {
				ret = 1 // OFF
			}
		}
	}
	ctx.WriteReg(0, uint32(ret))
	ctx.ELR += 4
	h.trace(sim.KindTrap, cpu, "psci %s → %d", sim.Str(armv7.PSCIName(fn)), sim.Int(int64(ret)))
}

// psciCPUOn validates and performs CPU_ON within the calling cell.
func (h *Hypervisor) psciCPUOn(cell *Cell, target int) int32 {
	p := h.PerCPU(target)
	if p == nil || cell == nil {
		return armv7.PSCIRetInvalidParams
	}
	if !cell.HasCPU(target) {
		return armv7.PSCIRetDenied // isolation: not your CPU
	}
	if p.OnlineInCell {
		return armv7.PSCIRetAlreadyOn
	}
	p.Parked = false
	p.repair()
	h.brd.CPUs[target].Parked = false
	h.brd.CPUs[target].Online = true
	p.OnlineInCell = true
	delete(h.rootOfflined, target)
	if cell.Guest != nil {
		guest := cell.Guest
		h.brd.Engine.After(50*sim.Microsecond, func() {
			if !h.panicked && p.OnlineInCell {
				guest.Boot(target)
			}
		})
	}
	h.trace(sim.KindCellEvent, target, "psci: CPU_ON into cell %q", sim.Str(cell.Name()))
	return armv7.PSCIRetSuccess
}

// cp15Op names the access direction for traces.
func cp15Op(read bool) string {
	if read {
		return "mrc"
	}
	return "mcr"
}
