package jailhouse

import (
	"fmt"

	"github.com/dessertlab/certify/internal/memmap"
	"github.com/dessertlab/certify/internal/sim"
)

// Inter-cell communication via the ivshmem device model: a shared-memory
// window visible to exactly two cells plus a doorbell that raises an
// interrupt in the peer. This is the one sanctioned hole in the
// partitioning — the paper (§II.A) notes that "inter-cell communication
// is allowed through the ivshmem device model". The implementation
// enforces the same isolation discipline as everything else: only the
// two registered peers can ring each other, and the doorbell is an SPI
// owned by the receiving cell.

// IvshmemLink connects two cells through a shared region and a pair of
// doorbell interrupts.
type IvshmemLink struct {
	Region memmap.Region // the shared window (FlagRootShared semantics)
	// Peers by cell ID; doorbell IRQ delivered to the peer when rung.
	PeerA, PeerB         uint32
	DoorbellA, DoorbellB int // SPI raised at A / at B
	ringsA, ringsB       uint64
}

// AddIvshmem registers a shared-memory link between two existing cells.
// Both cells must already map the region (typically with ROOTSHARED) —
// the call validates that neither side gains access it did not configure.
func (h *Hypervisor) AddIvshmem(cellA, cellB uint32, region memmap.Region, doorbellA, doorbellB int) (*IvshmemLink, error) {
	a, okA := h.CellByID(cellA)
	b, okB := h.CellByID(cellB)
	if !okA || !okB {
		return nil, fmt.Errorf("jailhouse: ivshmem needs two existing cells (%d, %d)", cellA, cellB)
	}
	if cellA == cellB {
		return nil, fmt.Errorf("jailhouse: ivshmem cannot loop a cell to itself")
	}
	for _, c := range []*Cell{a, b} {
		if _, ok := c.Stage2.Lookup(region.Virt); !ok {
			return nil, fmt.Errorf("jailhouse: cell %q does not map the shared window %v", c.Name(), region)
		}
	}
	link := &IvshmemLink{
		Region: region,
		PeerA:  cellA, PeerB: cellB,
		DoorbellA: doorbellA, DoorbellB: doorbellB,
	}
	// The doorbell lines become part of each peer's interrupt
	// assignment, as the real device's cell config declares them.
	if !a.Config.OwnsIRQ(doorbellA) {
		a.Config.IRQLines = append(a.Config.IRQLines, doorbellA)
	}
	if !b.Config.OwnsIRQ(doorbellB) {
		b.Config.IRQLines = append(b.Config.IRQLines, doorbellB)
	}
	h.ivshmem = append(h.ivshmem, link)
	h.consolef("Adding virtual PCI device 00:0%d.0 to cell \"%s\"", len(h.ivshmem), a.Name())
	h.consolef("Adding virtual PCI device 00:0%d.0 to cell \"%s\"", len(h.ivshmem), b.Name())
	return link, nil
}

// Ring rings the doorbell from the given cell: the peer receives its
// doorbell interrupt. Only the two registered peers may ring.
func (h *Hypervisor) Ring(link *IvshmemLink, fromCell uint32) error {
	if link == nil {
		return fmt.Errorf("jailhouse: nil ivshmem link")
	}
	var targetCell uint32
	var doorbell int
	switch fromCell {
	case link.PeerA:
		targetCell, doorbell = link.PeerB, link.DoorbellB
		link.ringsA++
	case link.PeerB:
		targetCell, doorbell = link.PeerA, link.DoorbellA
		link.ringsB++
	default:
		// Isolation: a third cell cannot use the link.
		h.consolef("ivshmem: cell %d is not a peer of this link", fromCell)
		return fmt.Errorf("jailhouse: cell %d is not an ivshmem peer: %v", fromCell, EPERM)
	}
	target, ok := h.CellByID(targetCell)
	if !ok || target.State != CellRunning {
		return fmt.Errorf("jailhouse: ivshmem peer cell %d not running: %v", targetCell, ENOENT)
	}
	for _, cpu := range target.CPUList() {
		h.brd.GIC.EnableIRQ(doorbell)
		h.brd.GIC.SetTargets(doorbell, 1<<uint(cpu))
		if err := h.brd.GIC.RaiseSPI(doorbell); err != nil {
			return fmt.Errorf("jailhouse: doorbell %d: %w", doorbell, err)
		}
		h.trace(sim.KindIRQ, cpu, "ivshmem doorbell %d → cell %q", sim.Int(int64(doorbell)), sim.Str(target.Name()))
		return nil // one delivery per ring
	}
	return fmt.Errorf("jailhouse: ivshmem peer cell %d has no CPUs: %v", targetCell, ENOENT)
}

// Rings reports how many times each side rang (A, B).
func (l *IvshmemLink) Rings() (uint64, uint64) { return l.ringsA, l.ringsB }

// IvshmemLinks returns the registered links.
func (h *Hypervisor) IvshmemLinks() []*IvshmemLink {
	out := make([]*IvshmemLink, len(h.ivshmem))
	copy(out, h.ivshmem)
	return out
}
