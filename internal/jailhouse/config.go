package jailhouse

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"github.com/dessertlab/certify/internal/memmap"
)

// Config blob format constants, modelled on Jailhouse's .cell files.
const (
	ConfigSignature = "JHCELL"
	ConfigRevision  = 13

	configHeaderSize = 64
	regionEncSize    = 28
	maxName          = 31
	maxRegions       = 64
	maxIRQLines      = 32
)

// Config validation errors.
var (
	ErrBadSignature = errors.New("jailhouse: bad config signature")
	ErrBadRevision  = errors.New("jailhouse: unsupported config revision")
	ErrBadConfig    = errors.New("jailhouse: malformed cell config")
)

// CellConfig is the static description of one cell: which CPUs, which
// memory windows with which rights, which interrupt lines and which
// console it owns. It mirrors struct jailhouse_cell_desc.
type CellConfig struct {
	Name        string
	CPUSet      uint64 // bitmap of owned CPUs
	MemRegions  []memmap.Region
	IRQLines    []int  // SPIs assigned to this cell
	ConsoleBase uint64 // physical base of the cell's UART (0 = none)
}

// CPUs expands the CPU bitmap into a slice of CPU indices.
func (c *CellConfig) CPUs() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if c.CPUSet&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// HasCPU reports whether the bitmap includes cpu.
func (c *CellConfig) HasCPU(cpu int) bool {
	return cpu >= 0 && cpu < 64 && c.CPUSet&(1<<uint(cpu)) != 0
}

// OwnsIRQ reports whether the config assigns SPI irq to the cell.
func (c *CellConfig) OwnsIRQ(irq int) bool {
	for _, l := range c.IRQLines {
		if l == irq {
			return true
		}
	}
	return false
}

// Validate performs the structural checks Jailhouse's config parser does:
// printable bounded name, at least one CPU, non-overlapping regions.
func (c *CellConfig) Validate() error {
	if c.Name == "" || len(c.Name) > maxName {
		return fmt.Errorf("%w: bad name %q", ErrBadConfig, c.Name)
	}
	for _, r := range c.Name {
		if r < 0x20 || r > 0x7E {
			return fmt.Errorf("%w: unprintable name", ErrBadConfig)
		}
	}
	if c.CPUSet == 0 {
		return fmt.Errorf("%w: empty CPU set", ErrBadConfig)
	}
	if len(c.MemRegions) > maxRegions {
		return fmt.Errorf("%w: %d regions (max %d)", ErrBadConfig, len(c.MemRegions), maxRegions)
	}
	if len(c.IRQLines) > maxIRQLines {
		return fmt.Errorf("%w: %d irq lines (max %d)", ErrBadConfig, len(c.IRQLines), maxIRQLines)
	}
	s2 := memmap.NewStage2()
	for _, r := range c.MemRegions {
		if err := s2.Map(r); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	return nil
}

// Marshal encodes the config into the binary blob the CELL_CREATE
// hypercall consumes.
func (c *CellConfig) Marshal() []byte {
	buf := make([]byte, configHeaderSize+len(c.MemRegions)*regionEncSize+len(c.IRQLines)*4)
	copy(buf[0:6], ConfigSignature)
	binary.LittleEndian.PutUint16(buf[6:8], ConfigRevision)
	copy(buf[8:8+maxName], c.Name)
	binary.LittleEndian.PutUint64(buf[40:48], c.CPUSet)
	binary.LittleEndian.PutUint32(buf[48:52], uint32(len(c.MemRegions)))
	binary.LittleEndian.PutUint32(buf[52:56], uint32(len(c.IRQLines)))
	binary.LittleEndian.PutUint64(buf[56:64], c.ConsoleBase)
	off := configHeaderSize
	for _, r := range c.MemRegions {
		binary.LittleEndian.PutUint64(buf[off:], r.Phys)
		binary.LittleEndian.PutUint64(buf[off+8:], r.Virt)
		binary.LittleEndian.PutUint64(buf[off+16:], r.Size)
		binary.LittleEndian.PutUint32(buf[off+24:], uint32(r.Flags))
		off += regionEncSize
	}
	for _, irq := range c.IRQLines {
		binary.LittleEndian.PutUint32(buf[off:], uint32(irq))
		off += 4
	}
	return buf
}

// UnmarshalCellConfig parses and validates a config blob. Any structural
// damage — the typical product of a corrupted config pointer — yields an
// error that the hypercall layer converts to -EINVAL.
func UnmarshalCellConfig(blob []byte) (*CellConfig, error) {
	if len(blob) < configHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes is below header size", ErrBadConfig, len(blob))
	}
	if string(blob[0:6]) != ConfigSignature {
		return nil, fmt.Errorf("%w: got %q", ErrBadSignature, blob[0:6])
	}
	if rev := binary.LittleEndian.Uint16(blob[6:8]); rev != ConfigRevision {
		return nil, fmt.Errorf("%w: revision %d", ErrBadRevision, rev)
	}
	name := string(blob[8 : 8+maxName])
	if i := strings.IndexByte(name, 0); i >= 0 {
		name = name[:i]
	}
	nRegions := binary.LittleEndian.Uint32(blob[48:52])
	nIRQs := binary.LittleEndian.Uint32(blob[52:56])
	if nRegions > maxRegions || nIRQs > maxIRQLines {
		return nil, fmt.Errorf("%w: counts %d/%d out of range", ErrBadConfig, nRegions, nIRQs)
	}
	want := configHeaderSize + int(nRegions)*regionEncSize + int(nIRQs)*4
	if len(blob) < want {
		return nil, fmt.Errorf("%w: blob %d bytes, need %d", ErrBadConfig, len(blob), want)
	}
	cfg := &CellConfig{
		Name:        name,
		CPUSet:      binary.LittleEndian.Uint64(blob[40:48]),
		ConsoleBase: binary.LittleEndian.Uint64(blob[56:64]),
	}
	off := configHeaderSize
	for i := uint32(0); i < nRegions; i++ {
		cfg.MemRegions = append(cfg.MemRegions, memmap.Region{
			Phys:  binary.LittleEndian.Uint64(blob[off:]),
			Virt:  binary.LittleEndian.Uint64(blob[off+8:]),
			Size:  binary.LittleEndian.Uint64(blob[off+16:]),
			Flags: memmap.Flags(binary.LittleEndian.Uint32(blob[off+24:])),
		})
		off += regionEncSize
	}
	for i := uint32(0); i < nIRQs; i++ {
		cfg.IRQLines = append(cfg.IRQLines, int(binary.LittleEndian.Uint32(blob[off:])))
		off += 4
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// SystemConfig describes the whole machine to the hypervisor: the root
// cell's initial resources (everything) and the memory the hypervisor
// reserves for itself.
type SystemConfig struct {
	RootCell  CellConfig
	HypMemory memmap.Region // hypervisor-private firmware region
}

// Validate checks the system configuration.
func (s *SystemConfig) Validate() error {
	if err := s.RootCell.Validate(); err != nil {
		return fmt.Errorf("root cell: %w", err)
	}
	if s.HypMemory.Size == 0 {
		return fmt.Errorf("%w: hypervisor memory missing", ErrBadConfig)
	}
	for _, r := range s.RootCell.MemRegions {
		if r.OverlapsPhys(s.HypMemory) {
			return fmt.Errorf("%w: root cell region %v overlaps hypervisor memory", ErrBadConfig, r)
		}
	}
	return nil
}
