// Package jailhouse models a Jailhouse-class static partitioning
// hypervisor: a root cell plus statically configured non-root cells, the
// management hypercall interface, trap-and-emulate handling for the
// interrupt distributor, PSCI-based CPU hotplug, and the two failure
// sinks the paper's experiments distinguish — cpu_park() (cell-local)
// and panic_stop() (system-wide).
//
// The three functions the paper instruments exist here under their
// Jailhouse names: ArchHandleTrap, ArchHandleHVC and IRQChipHandleIRQ.
// Each runs an optional entry hook through which the fault-injection
// framework (internal/core) corrupts the trap context, exactly as the
// paper's ~dozen patched lines did on the real hypervisor.
package jailhouse

import "fmt"

// Errno is a negative-errno hypercall result, matching the Linux
// convention Jailhouse returns to its driver. Zero or positive values are
// success.
type Errno int32

// Errno values used by the hypercall interface (negated Linux errnos).
const (
	EOK    Errno = 0
	EPERM  Errno = -1
	ENOENT Errno = -2
	EIO    Errno = -5
	E2BIG  Errno = -7
	ENOMEM Errno = -12
	EBUSY  Errno = -16
	EEXIST Errno = -17
	EINVAL Errno = -22
	ERANGE Errno = -34
	ENOSYS Errno = -38
)

var errnoNames = map[Errno]string{
	EOK: "OK", EPERM: "Operation not permitted", ENOENT: "No such cell",
	EIO: "I/O error", E2BIG: "Argument list too long", ENOMEM: "Out of memory",
	EBUSY: "Device or resource busy", EEXIST: "Cell already exists",
	EINVAL: "Invalid argument", ERANGE: "Result out of range",
	ENOSYS: "Function not implemented",
}

// String renders the errno the way the jailhouse tool prints it
// ("Invalid argument" is the paper's "invalid arguments" observation).
func (e Errno) String() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return fmt.Sprintf("errno(%d)", int32(e))
}

// Failed reports whether the value is an error result.
func (e Errno) Failed() bool { return e < 0 }
