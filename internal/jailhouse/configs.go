package jailhouse

import (
	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/memmap"
	"github.com/dessertlab/certify/internal/uart"
)

// Memory layout constants for the Banana Pi deployment, mirroring the
// jailhouse-images bananapi demo: the hypervisor firmware reserves the
// top of DRAM, and the FreeRTOS cell gets a 64 MiB carve-out below it.
const (
	HypMemBase uint64 = 0x7F00_0000 // top 16 MiB of the 1 GiB DRAM
	HypMemSize uint64 = 0x0100_0000

	// The inmate RAM is mapped at guest-virtual 0 and must stay below
	// the identity-mapped device windows (UARTs at 0x01C2_xxxx).
	FreeRTOSMemBase uint64 = 0x7B00_0000 // 16 MiB inmate RAM
	FreeRTOSMemSize uint64 = 0x0100_0000

	CommRegionBase uint64 = 0x7AF0_0000 // comm region page
	CommRegionSize uint64 = 0x0000_1000
)

// DefaultSystemConfig returns the system (root cell) configuration for
// the Banana Pi: Linux owns both CPUs, all of DRAM below the hypervisor
// reservation, and the devices except the GIC distributor (which is
// always trap-and-emulate).
func DefaultSystemConfig() *SystemConfig {
	return &SystemConfig{
		RootCell: CellConfig{
			Name:   "banana-pi",
			CPUSet: 0b11, // CPUs 0 and 1
			MemRegions: []memmap.Region{
				{
					Phys: board.DRAMBase, Virt: board.DRAMBase,
					Size:  HypMemBase - board.DRAMBase,
					Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagExecute | memmap.FlagDMA,
				},
				{
					Phys: board.UART0Base, Virt: board.UART0Base,
					Size:  uart.RegionSize,
					Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagIO,
				},
				{
					Phys: board.UART7Base, Virt: board.UART7Base,
					Size:  uart.RegionSize,
					Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagIO,
				},
				{
					Phys: board.GPIOBase, Virt: board.GPIOBase,
					Size:  board.GPIOSize,
					Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagIO,
				},
			},
			IRQLines:    []int{board.IRQUart0, board.IRQUart7},
			ConsoleBase: board.UART0Base,
		},
		HypMemory: memmap.Region{
			Phys: HypMemBase, Virt: HypMemBase, Size: HypMemSize,
			Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagExecute,
		},
	}
}

// FreeRTOSCellConfig returns the non-root cell configuration of the
// paper's experiments: CPU core 1, a loadable RAM window, the UART7
// console ("USART"), the LED GPIO bank (shared with root) and the UART7
// interrupt line.
func FreeRTOSCellConfig() *CellConfig {
	return &CellConfig{
		Name:   "freertos-cell",
		CPUSet: 0b10, // CPU core 1 — statically assigned, as in the paper
		MemRegions: []memmap.Region{
			{
				Phys: FreeRTOSMemBase, Virt: 0x0000_0000,
				Size:  FreeRTOSMemSize,
				Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagExecute | memmap.FlagLoadable,
			},
			{
				Phys: board.UART7Base, Virt: board.UART7Base,
				Size:  uart.RegionSize,
				Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagIO,
			},
			{
				Phys: board.GPIOBase, Virt: board.GPIOBase,
				Size:  board.GPIOSize,
				Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagIO | memmap.FlagRootShared,
			},
			{
				Phys: CommRegionBase, Virt: CommRegionBase,
				Size:  CommRegionSize,
				Flags: memmap.FlagRead | memmap.FlagWrite | memmap.FlagCommRegion | memmap.FlagRootShared,
			},
		},
		IRQLines:    []int{board.IRQUart7},
		ConsoleBase: board.UART7Base,
	}
}
