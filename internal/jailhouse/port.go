package jailhouse

import (
	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/gic"
	"github.com/dessertlab/certify/internal/memmap"
)

// GuestPort is the surface guests use to interact with the machine while
// the hypervisor is armed. Each method models the architectural operation
// a real guest would perform — executing HVC/SMC, or issuing a load/store
// that either passes straight through stage-2 or traps for emulation.
//
// Guests first materialise their register image onto the virtual CPU (see
// the guest packages), because trap contexts are captured from it and
// corrupted frames are restored into it.

// HVC executes a hypervisor call from the guest running on cpu with the
// Jailhouse immediate. Returns the hypercall result from r0.
func (h *Hypervisor) HVC(cpu int, code, arg1, arg2 uint32) Errno {
	c := h.brd.CPUs[cpu]
	c.SetReg(armv7.RegR0, code)
	c.SetReg(armv7.RegR1, arg1)
	c.SetReg(armv7.RegR2, arg2)
	hsr := armv7.BuildHSR(armv7.ECHVC, true, armv7.BuildHVCISS(armv7.JailhouseHVCImm))
	ctx := h.guestTrap(cpu, hsr, 0)
	return Errno(ctx.Regs[armv7.RegR0])
}

// SMC executes a secure-monitor call (the PSCI path) from the guest on
// cpu. Returns the PSCI result from r0.
func (h *Hypervisor) SMC(cpu int, fn uint32, args ...uint32) int32 {
	c := h.brd.CPUs[cpu]
	c.SetReg(armv7.RegR0, fn)
	for i, a := range args {
		if 1+i < armv7.NumRegs {
			c.SetReg(1+i, a)
		}
	}
	hsr := armv7.BuildHSR(armv7.ECSMC, true, 0)
	ctx := h.guestTrap(cpu, hsr, 0)
	return int32(ctx.Regs[armv7.RegR0])
}

// GuestRead32 performs a 32-bit guest load at guest-physical gpa.
// Direct-assigned windows and RAM go straight to the bus; everything else
// takes the trap-and-emulate path through ArchHandleTrap.
func (h *Hypervisor) GuestRead32(cpu int, gpa uint64) (uint32, error) {
	cell := h.cellOf(cpu)
	if cell == nil {
		return 0, ErrNotEnabled
	}
	if hpa, _, err := cell.Stage2.Resolve(gpa, memmap.AccessRead); err == nil {
		return h.brd.Read32(cpu, hpa)
	}
	// Stage-2 fault → synchronous data abort into HYP.
	iss := armv7.BuildDataAbortISS(4, armv7.RegR0, false, armv7.FSCTranslationL2)
	hsr := armv7.BuildHSR(armv7.ECDABTLow, true, iss)
	ctx := h.guestTrap(cpu, hsr, uint32(gpa))
	return ctx.Regs[armv7.RegR0], nil
}

// GuestWrite32 performs a 32-bit guest store at guest-physical gpa.
func (h *Hypervisor) GuestWrite32(cpu int, gpa uint64, value uint32) error {
	cell := h.cellOf(cpu)
	if cell == nil {
		return ErrNotEnabled
	}
	if hpa, _, err := cell.Stage2.Resolve(gpa, memmap.AccessWrite); err == nil {
		return h.brd.Write32(cpu, hpa, value)
	}
	c := h.brd.CPUs[cpu]
	c.SetReg(armv7.RegR0, value)
	iss := armv7.BuildDataAbortISS(4, armv7.RegR0, true, armv7.FSCTranslationL2)
	hsr := armv7.BuildHSR(armv7.ECDABTLow, true, iss)
	h.guestTrap(cpu, hsr, uint32(gpa))
	return nil
}

// GuestMRC models a trapped MRC (CP15 read) from the guest on cpu: the
// access takes the full trap round-trip through ArchHandleTrap's
// system-register emulation and returns the value the guest receives.
func (h *Hypervisor) GuestMRC(cpu int, reg armv7.CP15Reg) uint32 {
	iss := armv7.BuildCP15ISS(reg, armv7.RegR0, true)
	hsr := armv7.BuildHSR(armv7.ECCP15_32, true, iss)
	ctx := h.guestTrap(cpu, hsr, 0)
	return ctx.Regs[armv7.RegR0]
}

// GuestFetch models an instruction fetch at guest-physical gpa — the
// path a corrupted return address takes. Fetching outside the cell's
// executable mappings raises a prefetch abort into the hypervisor, which
// cannot handle it and parks the CPU.
func (h *Hypervisor) GuestFetch(cpu int, gpa uint64) error {
	cell := h.cellOf(cpu)
	if cell == nil {
		return ErrNotEnabled
	}
	if _, _, err := cell.Stage2.Resolve(gpa, memmap.AccessExec); err == nil {
		return nil
	}
	hsr := armv7.BuildHSR(armv7.ECIABTLow, true, armv7.FSCTranslationL1)
	h.guestTrap(cpu, hsr, uint32(gpa))
	return nil
}

// guestTrap performs a full trap round-trip: capture the guest frame,
// enter HYP, dispatch, and restore. Only the slots the handler
// legitimately wrote are merged back into the pristine frame — injected
// corruption of the handler's live registers never reaches the guest's
// saved state directly (see armv7.TrapContext.Written).
func (h *Hypervisor) guestTrap(cpu int, hsr, hdfar uint32) armv7.TrapContext {
	c := h.brd.CPUs[cpu]
	c.HDFAR = hdfar
	c.EnterHyp(hsr, c.Reg(armv7.RegPC)+4)
	pre := armv7.CaptureContext(c)
	ctx := pre
	h.ArchHandleTrap(cpu, &ctx)
	merged := ctx.MergeWritten(pre)
	merged.Restore(c)
	c.ExitHyp()
	// Return the handler's view so callers read results (r0, MMIO data).
	return ctx
}

// LoadInmate attaches guest software to a created cell — the modelling
// counterpart of "jailhouse cell load". The cell must exist and be in
// the loadable/shut-down state.
func (h *Hypervisor) LoadInmate(id uint32, guest Inmate) Errno {
	cell, ok := h.CellByID(id)
	if !ok || cell.ID == 0 {
		return ENOENT
	}
	if cell.State == CellRunning {
		return EBUSY
	}
	cell.Guest = guest
	h.consolef("Cell \"%s\" can be loaded", cell.Name())
	return EOK
}

// AssignRootInmate attaches the root cell's OS (done at Enable time by
// the boot flow, before any hypercalls run).
func (h *Hypervisor) AssignRootInmate(guest Inmate) Errno {
	root := h.RootCell()
	if root == nil {
		return EINVAL
	}
	root.Guest = guest
	return EOK
}

// GICMaxIRQ re-exports the distributor size for guests building their
// interrupt setup loops without importing the gic package directly.
const GICMaxIRQ = gic.MaxIRQ

// GICDBase re-exports the distributor base address for guests.
const GICDBase = board.GICDBase
