// Package gpio models the Banana Pi's LED port. The paper's FreeRTOS
// workload includes "a task to blink an onboard led"; the toggle trace is
// a liveness signal the classifier can use alongside the USART transcript.
package gpio

import "github.com/dessertlab/certify/internal/sim"

// LEDGreen is the Banana Pi M1 green LED pin (PH24 on the A20).
const LEDGreen = 24

// Toggle records one LED state change.
type Toggle struct {
	At sim.Time
	On bool
}

// Port is a bank of GPIO lines with per-line toggle capture.
type Port struct {
	now     func() sim.Time
	state   map[int]bool
	toggles map[int][]Toggle
}

// New returns an all-low port.
func New(now func() sim.Time) *Port {
	return &Port{
		now:     now,
		state:   make(map[int]bool),
		toggles: make(map[int][]Toggle),
	}
}

// Reset drives every line low and forgets the toggle history while
// keeping the capture buffers allocated, and rebinds the clock — the
// warm machine-reuse path between campaign runs.
func (p *Port) Reset(now func() sim.Time) {
	p.now = now
	clear(p.state)
	for pin := range p.toggles {
		p.toggles[pin] = p.toggles[pin][:0]
	}
}

// Snapshot is a deep copy of the port's line levels and toggle history.
type Snapshot struct {
	state   map[int]bool
	toggles map[int][]Toggle
}

// CaptureSnapshot deep-copies the port state.
func (p *Port) CaptureSnapshot() *Snapshot {
	s := &Snapshot{
		state:   make(map[int]bool, len(p.state)),
		toggles: make(map[int][]Toggle, len(p.toggles)),
	}
	for pin, on := range p.state {
		s.state[pin] = on
	}
	for pin, ts := range p.toggles {
		s.toggles[pin] = append([]Toggle(nil), ts...)
	}
	return s
}

// RestoreSnapshot rewinds the port to a captured state, reusing the live
// capture buffers where pins overlap.
func (p *Port) RestoreSnapshot(s *Snapshot) {
	clear(p.state)
	for pin, on := range s.state {
		p.state[pin] = on
	}
	for pin := range p.toggles {
		if _, ok := s.toggles[pin]; !ok {
			p.toggles[pin] = p.toggles[pin][:0]
		}
	}
	for pin, ts := range s.toggles {
		p.toggles[pin] = append(p.toggles[pin][:0], ts...)
	}
}

// Set drives pin to level on.
func (p *Port) Set(pin int, on bool) {
	if p.state[pin] == on {
		return
	}
	p.state[pin] = on
	p.toggles[pin] = append(p.toggles[pin], Toggle{At: p.now(), On: on})
}

// Get reads the current level of pin.
func (p *Port) Get(pin int) bool { return p.state[pin] }

// Toggles returns the recorded transitions of pin.
func (p *Port) Toggles(pin int) []Toggle {
	src := p.toggles[pin]
	out := make([]Toggle, len(src))
	copy(out, src)
	return out
}

// ToggleCount returns how many transitions pin has made.
func (p *Port) ToggleCount(pin int) int { return len(p.toggles[pin]) }

// LastToggle returns the time of pin's most recent transition, and whether
// it ever toggled.
func (p *Port) LastToggle(pin int) (sim.Time, bool) {
	ts := p.toggles[pin]
	if len(ts) == 0 {
		return 0, false
	}
	return ts[len(ts)-1].At, true
}
