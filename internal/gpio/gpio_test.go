package gpio

import (
	"testing"

	"github.com/dessertlab/certify/internal/sim"
)

func TestSetRecordsToggles(t *testing.T) {
	now := sim.Time(0)
	p := New(func() sim.Time { return now })
	p.Set(LEDGreen, true)
	now = sim.Second
	p.Set(LEDGreen, false)
	if p.ToggleCount(LEDGreen) != 2 {
		t.Fatalf("ToggleCount = %d", p.ToggleCount(LEDGreen))
	}
	ts := p.Toggles(LEDGreen)
	if !ts[0].On || ts[1].On || ts[1].At != sim.Second {
		t.Fatalf("Toggles = %v", ts)
	}
}

func TestRedundantSetIsNoToggle(t *testing.T) {
	p := New(func() sim.Time { return 0 })
	p.Set(5, true)
	p.Set(5, true)
	if p.ToggleCount(5) != 1 {
		t.Fatalf("redundant Set recorded: %d", p.ToggleCount(5))
	}
	if !p.Get(5) {
		t.Fatal("Get lost state")
	}
}

func TestLastToggle(t *testing.T) {
	now := sim.Time(0)
	p := New(func() sim.Time { return now })
	if _, ok := p.LastToggle(1); ok {
		t.Fatal("untouched pin reports toggle")
	}
	now = 3 * sim.Second
	p.Set(1, true)
	at, ok := p.LastToggle(1)
	if !ok || at != 3*sim.Second {
		t.Fatalf("LastToggle = %v %v", at, ok)
	}
}
