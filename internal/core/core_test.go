package core

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

func TestIntensityParameters(t *testing.T) {
	if IntensityMedium.DefaultRate() != 100 || IntensityHigh.DefaultRate() != 50 {
		t.Fatal("paper occurrence rates wrong")
	}
	if IntensityMedium.String() != "medium" || IntensityHigh.String() != "high" {
		t.Fatal("intensity names")
	}
	if _, ok := IntensityMedium.Model(nil).(*SingleBitFlip); !ok {
		t.Fatal("medium must be single bit-flip")
	}
	if _, ok := IntensityHigh.Model(nil).(*MultiRegisterBitFlip); !ok {
		t.Fatal("high must be multi-register flip")
	}
}

func TestSingleBitFlipPlansOneFlip(t *testing.T) {
	rng := sim.NewRNG(1)
	m := &SingleBitFlip{}
	for i := 0; i < 200; i++ {
		flips := m.Plan(rng)
		if len(flips) != 1 {
			t.Fatalf("flips = %d, want 1", len(flips))
		}
		if int(flips[0].Field) < 0 || int(flips[0].Field) >= armv7.NumRegs {
			t.Fatalf("field %v outside the paper's register set", flips[0].Field)
		}
		if flips[0].Bit >= 32 {
			t.Fatalf("bit %d out of range", flips[0].Bit)
		}
	}
}

func TestMultiRegisterFlipDistinctFields(t *testing.T) {
	rng := sim.NewRNG(2)
	m := &MultiRegisterBitFlip{K: 3}
	for i := 0; i < 200; i++ {
		flips := m.Plan(rng)
		if len(flips) != 3 {
			t.Fatalf("flips = %d, want 3", len(flips))
		}
		seen := map[armv7.Field]bool{}
		for _, f := range flips {
			if seen[f.Field] {
				t.Fatalf("duplicate field %v in one injection", f.Field)
			}
			seen[f.Field] = true
		}
	}
	// K larger than the field set saturates without panicking.
	m2 := &MultiRegisterBitFlip{K: 99, Fields: ArgFields}
	if got := len(m2.Plan(rng)); got != len(ArgFields) {
		t.Fatalf("saturated K = %d, want %d", got, len(ArgFields))
	}
}

func TestPropertyBitFlipModelIsInvolution(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		var ctx armv7.TrapContext
		orig := ctx
		flips := (&SingleBitFlip{}).Plan(rng)
		for _, fl := range flips {
			ctx.FlipBit(fl.Field, fl.Bit)
		}
		if ctx == orig {
			return false // one flip must change state
		}
		for _, fl := range flips {
			ctx.FlipBit(fl.Field, fl.Bit)
		}
		return ctx == orig
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		plan TestPlan
		ok   bool
	}{
		{"valid", *PlanE3Fig3(), true},
		{"no name", TestPlan{Points: []jailhouse.InjectionPoint{jailhouse.PointTrap}, Intensity: IntensityMedium}, false},
		{"no points", TestPlan{Name: "x", Intensity: IntensityMedium}, false},
		{"bad intensity", TestPlan{Name: "x", Points: []jailhouse.InjectionPoint{jailhouse.PointTrap}}, false},
		{"negative rate", TestPlan{Name: "x", Points: []jailhouse.InjectionPoint{jailhouse.PointTrap}, Intensity: IntensityMedium, Rate: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestPlanDefaults(t *testing.T) {
	p := PlanE3Fig3()
	if p.EffectiveRate() != 100 {
		t.Fatalf("rate = %d", p.EffectiveRate())
	}
	if p.EffectiveDuration() != sim.Minute {
		t.Fatalf("duration = %v", p.EffectiveDuration())
	}
	if !p.TargetsPoint(jailhouse.PointTrap) || p.TargetsPoint(jailhouse.PointHVC) {
		t.Fatal("point targeting")
	}
	s := p.String()
	for _, want := range []string{"arch_handle_trap", "medium", "1/100", "cpu1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan string %q missing %q", s, want)
		}
	}
}

func TestPlanMatrix(t *testing.T) {
	plans := PlanMatrix(
		[]jailhouse.InjectionPoint{jailhouse.PointTrap, jailhouse.PointHVC},
		[]Intensity{IntensityMedium, IntensityHigh},
		[]int{25, 50, 100},
		TestPlan{Name: "A1", TargetCPU: 1, Workload: WorkloadSteady},
	)
	if len(plans) != 12 {
		t.Fatalf("matrix size = %d, want 12", len(plans))
	}
	names := map[string]bool{}
	for _, p := range plans {
		if err := p.Validate(); err != nil {
			t.Fatalf("matrix plan invalid: %v", err)
		}
		if names[p.Name] {
			t.Fatalf("duplicate plan name %q", p.Name)
		}
		names[p.Name] = true
	}
}

func TestInjectorFilterAndRate(t *testing.T) {
	plan := &TestPlan{
		Name:      "t",
		Points:    []jailhouse.InjectionPoint{jailhouse.PointTrap},
		Intensity: IntensityMedium,
		Rate:      10,
		TargetCPU: 1,
	}
	rng := sim.NewRNG(3)
	inj, err := NewInjector(plan, DefaultProfile(), rng, func() sim.Time { return sim.Second })
	if err != nil {
		t.Fatal(err)
	}
	ctx := &armv7.TrapContext{HSR: armv7.BuildHSR(armv7.ECWFx, true, 0)}

	// Wrong point and wrong CPU never count or inject.
	for i := 0; i < 100; i++ {
		if r := inj.Hook(jailhouse.PointHVC, 1, "c", ctx); len(r.Fields) > 0 {
			t.Fatal("injected at untargeted point")
		}
		if r := inj.Hook(jailhouse.PointTrap, 0, "c", ctx); len(r.Fields) > 0 {
			t.Fatal("injected at untargeted cpu")
		}
	}
	if inj.TotalCalls() != 0 {
		t.Fatalf("filtered calls counted: %d", inj.TotalCalls())
	}

	// Matching calls: exactly one injection per 10 calls.
	injections := 0
	for i := 0; i < 100; i++ {
		if r := inj.Hook(jailhouse.PointTrap, 1, "c", ctx); len(r.Fields) > 0 {
			injections++
		}
	}
	if injections != 10 {
		t.Fatalf("injections = %d, want 10 (1 per 10 calls)", injections)
	}
	if inj.TotalCalls() != 100 {
		t.Fatalf("calls = %d", inj.TotalCalls())
	}
	if got := len(inj.Records()); got != 10 {
		t.Fatalf("records = %d", got)
	}
}

func TestInjectorDisarmAndWindow(t *testing.T) {
	plan := &TestPlan{
		Name:      "t",
		Points:    []jailhouse.InjectionPoint{jailhouse.PointTrap},
		Intensity: IntensityMedium,
		Rate:      1, // every matching call
		TargetCPU: AnyCPU,
	}
	now := sim.Time(0)
	rng := sim.NewRNG(4)
	inj, err := NewInjector(plan, DefaultProfile(), rng, func() sim.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	ctx := &armv7.TrapContext{HSR: armv7.BuildHSR(armv7.ECWFx, true, 0)}

	inj.Disarm()
	if r := inj.Hook(jailhouse.PointTrap, 0, "c", ctx); len(r.Fields) > 0 {
		t.Fatal("disarmed injector injected")
	}

	// Window [10s, 20s].
	inj.ArmWindow(10*sim.Second, 20*sim.Second)
	now = 5 * sim.Second
	if r := inj.Hook(jailhouse.PointTrap, 0, "c", ctx); len(r.Fields) > 0 {
		t.Fatal("injected before window")
	}
	now = 15 * sim.Second
	if r := inj.Hook(jailhouse.PointTrap, 0, "c", ctx); len(r.Fields) == 0 {
		t.Fatal("did not inject inside window")
	}
	now = 25 * sim.Second
	if r := inj.Hook(jailhouse.PointTrap, 0, "c", ctx); len(r.Fields) > 0 {
		t.Fatal("injected after window (duration control failed)")
	}
}

func TestInjectorCellFilter(t *testing.T) {
	plan := &TestPlan{
		Name:       "t",
		Points:     []jailhouse.InjectionPoint{jailhouse.PointTrap},
		Intensity:  IntensityMedium,
		Rate:       1,
		TargetCPU:  AnyCPU,
		TargetCell: "freertos-cell",
	}
	rng := sim.NewRNG(5)
	inj, err := NewInjector(plan, DefaultProfile(), rng, func() sim.Time { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	ctx := &armv7.TrapContext{HSR: armv7.BuildHSR(armv7.ECWFx, true, 0)}
	if r := inj.Hook(jailhouse.PointTrap, 1, "banana-pi", ctx); len(r.Fields) > 0 {
		t.Fatal("cell filter failed")
	}
	if r := inj.Hook(jailhouse.PointTrap, 1, "freertos-cell", ctx); len(r.Fields) == 0 {
		t.Fatal("matching cell not injected")
	}
}

func TestRemapLiveField(t *testing.T) {
	dabtHSR := armv7.BuildHSR(armv7.ECDABTLow, true, armv7.BuildDataAbortISS(4, 0, false, 0x06))
	hvcHSR := armv7.BuildHSR(armv7.ECHVC, true, armv7.BuildHVCISS(armv7.JailhouseHVCImm))

	if got := remapLiveField(jailhouse.PointTrap, dabtHSR, armv7.Field(armv7.RegR1)); got != armv7.FieldHSR {
		t.Fatalf("r1 on dabt → %v, want hsr", got)
	}
	if got := remapLiveField(jailhouse.PointTrap, dabtHSR, armv7.Field(armv7.RegR2)); got != armv7.FieldHDFAR {
		t.Fatalf("r2 on dabt → %v, want hdfar", got)
	}
	if got := remapLiveField(jailhouse.PointTrap, dabtHSR, armv7.Field(armv7.RegR4)); got != armv7.Field(armv7.RegR4) {
		t.Fatal("r4 must map to itself")
	}
	if got := remapLiveField(jailhouse.PointTrap, hvcHSR, armv7.Field(armv7.RegR1)); got != armv7.Field(armv7.RegR1) {
		t.Fatal("hvc-class r1 is the hypercall argument, not the syndrome")
	}
	if got := remapLiveField(jailhouse.PointHVC, dabtHSR, armv7.Field(armv7.RegR1)); got != armv7.Field(armv7.RegR1) {
		t.Fatal("hvc point must not remap")
	}
}

func TestProfileTableSelection(t *testing.T) {
	p := DefaultProfile()
	dabtRead := armv7.BuildHSR(armv7.ECDABTLow, true, armv7.BuildDataAbortISS(4, 0, false, 0x06))
	dabtWrite := armv7.BuildHSR(armv7.ECDABTLow, true, armv7.BuildDataAbortISS(4, 0, true, 0x06))
	hvcClass := armv7.BuildHSR(armv7.ECHVC, true, 0)

	if got := p.table(jailhouse.PointTrap, dabtRead); &got == nil || got[armv7.Field(armv7.RegR0)] != 0.90 {
		t.Fatal("dabt read must use the deep table")
	}
	if got := p.table(jailhouse.PointTrap, dabtWrite); got[armv7.Field(armv7.RegR0)] != 0.05 {
		t.Fatal("dabt write must use the shallow table")
	}
	if got := p.table(jailhouse.PointTrap, hvcClass); got[armv7.Field(armv7.RegR0)] != 0.05 {
		t.Fatal("hvc-class trap must use the shallow table")
	}
	if got := p.table(jailhouse.PointIRQChip, 0); len(got) != 0 {
		t.Fatal("irqchip table must be empty (paper: predictable outcome)")
	}
	var nilProfile *SensitivityProfile
	if d := nilProfile.Sample(sim.NewRNG(1), jailhouse.PointTrap, dabtRead, GPRFields); d != jailhouse.DamageNone {
		t.Fatal("nil profile must be inert")
	}
}

func TestGoldenRunIsCorrectAndProfiled(t *testing.T) {
	gp, err := GoldenRun(1, 10*sim.Second)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if gp.Activation[jailhouse.PointIRQChip] == 0 {
		t.Fatal("irqchip never activated")
	}
	if gp.Activation[jailhouse.PointTrap] == 0 {
		t.Fatal("trap never activated")
	}
	if gp.Activation[jailhouse.PointHVC] == 0 {
		t.Fatal("hvc never activated")
	}
	// The paper's profiling found irqchip the hottest (IRQs beat traps).
	if gp.Activation[jailhouse.PointIRQChip] < gp.Activation[jailhouse.PointTrap] {
		t.Fatal("activation ordering unexpected")
	}
	if gp.CellLines == 0 || gp.LEDToggles == 0 {
		t.Fatal("golden run produced no observable liveness")
	}
}

func TestGoldenRunDeterministicHash(t *testing.T) {
	a, err := GoldenRun(99, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GoldenRun(99, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatal("golden runs with same seed differ")
	}
}

func TestRunExperimentProducesArtifacts(t *testing.T) {
	plan := PlanE3Fig3()
	short := *plan
	short.Duration = 20 * sim.Second
	res, err := RunExperiment(&short, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != "E3-fig3" || res.Seed != 12345 {
		t.Fatal("metadata lost")
	}
	if res.CellTranscript == "" || res.RootTranscript == "" {
		t.Fatal("transcripts missing")
	}
	if len(res.HVConsole) == 0 {
		t.Fatal("hypervisor console missing")
	}
	if res.CallCounts[jailhouse.PointTrap] == 0 {
		t.Fatal("no matching calls recorded")
	}
	if res.Outcome() < OutcomeCorrect || res.Outcome() >= numOutcomes {
		t.Fatalf("outcome = %v", res.Outcome())
	}
}

func TestRunExperimentDeterministicPerSeed(t *testing.T) {
	plan := *PlanE3Fig3()
	plan.Duration = 15 * sim.Second
	a, err := RunExperiment(&plan, 777)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment(&plan, 777)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome() != b.Outcome() || a.CellTranscript != b.CellTranscript ||
		len(a.Injections) != len(b.Injections) {
		t.Fatal("same-seed experiment runs diverged")
	}
}

func TestOutcomeNamesAndOrder(t *testing.T) {
	all := AllOutcomes()
	if len(all) != 9 {
		t.Fatalf("outcome classes = %d, want 9", len(all))
	}
	want := map[Outcome]string{
		OutcomeCorrect:        "correct",
		OutcomePanicPark:      "panic-park",
		OutcomeCPUPark:        "cpu-park",
		OutcomeInvalidArgs:    "invalid-arguments",
		OutcomeHypervisorTrap: "hypervisor-trap",
		OutcomeMachineWedge:   "machine-wedge",
		OutcomeSimFault:       "sim-fault",
	}
	for o, name := range want {
		if o.String() != name {
			t.Fatalf("%d.String() = %q, want %q", o, o.String(), name)
		}
	}
}

func TestClassifyGoldenMachineCorrect(t *testing.T) {
	m, err := BuildMachine(DefaultMachineOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(5 * sim.Second)
	v := Classify(m)
	if v.Outcome != OutcomeCorrect {
		t.Fatalf("golden machine classified %v: %v", v.Outcome, v.Evidence)
	}
	if len(v.Evidence) == 0 {
		t.Fatal("no evidence recorded")
	}
}

func TestClassifyDetectsKernelPanicOnConsole(t *testing.T) {
	m, err := BuildMachine(DefaultMachineOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2 * sim.Second)
	// Force a root oops through the register-image contract.
	for i := 0; i < 256; i++ {
		m.Linux.OnCorruptedResume(0, []int{armv7.RegSP})
		if p, _ := m.Linux.Panicked(); p {
			break
		}
	}
	v := Classify(m)
	if v.Outcome != OutcomePanicPark {
		t.Fatalf("outcome = %v, want panic-park", v.Outcome)
	}
}
