package core

import (
	"fmt"
	"sort"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/gic"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// DefaultFaultModelName names the paper's register bit-flip model — the
// model a plan runs when no fault model is selected. Plans render the
// default as the *absence* of the plan-file "fault" key, so every
// pre-registry plan hash and shard artefact stays valid.
const DefaultFaultModelName = "register"

// MachineFaulter is the full-machine extension of FaultModel: instead of
// planning register flips, the model reaches into the assembled machine —
// RAM, GIC, guests, event queue — when the injection trigger fires.
// ApplyMachine returns a description of the damage for the injection log.
// Implementations must draw every random choice from rng in a fixed
// order, so runs replay bit-identically across shards.
type MachineFaulter interface {
	FaultModel
	ApplyMachine(m *Machine, rng *sim.RNG, point jailhouse.InjectionPoint, cpu int) string
}

// faultModelFactory builds a model instance for a plan; registered
// factories receive the plan so register-class models can honour its
// field set.
type faultModelFactory func(p *TestPlan) FaultModel

// faultModelRegistry maps registry names to factories. Populated at init;
// read-only afterwards, so concurrent campaign workers need no locking.
var faultModelRegistry = map[string]faultModelFactory{}

// RegisterFaultModel adds a named model factory to the registry. Names
// are plan-file values and shard-manifest identities; registering a
// duplicate name panics (a programming error, caught at init).
func RegisterFaultModel(name string, factory faultModelFactory) {
	if name == "" || factory == nil {
		panic("core: RegisterFaultModel needs a name and a factory")
	}
	if _, dup := faultModelRegistry[name]; dup {
		panic(fmt.Sprintf("core: fault model %q registered twice", name))
	}
	faultModelRegistry[name] = factory
}

// FaultModelRegistered reports whether name is a known fault model.
func FaultModelRegistered(name string) bool {
	_, ok := faultModelRegistry[name]
	return ok
}

// FaultModelNames returns the registered model names, sorted.
func FaultModelNames() []string {
	out := make([]string, 0, len(faultModelRegistry))
	for name := range faultModelRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// newFaultModelFor builds the plan's named model, or nil when the name is
// unknown (Validate rejects that before any run starts).
func newFaultModelFor(p *TestPlan) FaultModel {
	if f, ok := faultModelRegistry[p.FaultName]; ok {
		return f(p)
	}
	return nil
}

func init() {
	RegisterFaultModel(DefaultFaultModelName, func(p *TestPlan) FaultModel {
		return p.Intensity.Model(p.Fields)
	})
	RegisterFaultModel("burst", func(p *TestPlan) FaultModel {
		return &RegisterBurst{Fields: p.Fields}
	})
	RegisterFaultModel("ram", func(p *TestPlan) FaultModel {
		return &RAMFault{}
	})
	RegisterFaultModel("gic", func(p *TestPlan) FaultModel {
		return &GICFault{}
	})
	RegisterFaultModel("irq-storm", func(p *TestPlan) FaultModel {
		return &IRQStorm{}
	})
	// The earlier extended register models join the registry so plan
	// files (and the soak sweep) can select them by name too.
	RegisterFaultModel("stuck-at-0", func(p *TestPlan) FaultModel {
		return &StuckAtModel{Fields: p.Fields}
	})
	RegisterFaultModel("stuck-at-1", func(p *TestPlan) FaultModel {
		return &StuckAtModel{One: true, Fields: p.Fields}
	})
	RegisterFaultModel("intermittent", func(p *TestPlan) FaultModel {
		return &IntermittentModel{Fields: p.Fields}
	})
	RegisterFaultModel("double-bit", func(p *TestPlan) FaultModel {
		return &DoubleBitAdjacentModel{Fields: p.Fields}
	})
}

// ---- burst: multi-bit register bursts ----

// RegisterBurst flips a contiguous run of 2–8 bits in one register — the
// multi-bit-upset class a particle strike produces in adjacent cells of
// one storage row. The burst wraps around bit 31.
type RegisterBurst struct {
	// Fields to draw from; nil means GPRFields.
	Fields []armv7.Field
}

var _ FaultModel = (*RegisterBurst)(nil)

// Name implements FaultModel.
func (b *RegisterBurst) Name() string { return "register-burst" }

// Plan implements FaultModel.
func (b *RegisterBurst) Plan(rng *sim.RNG) []Flip {
	fields := b.Fields
	if len(fields) == 0 {
		fields = GPRFields
	}
	f := fields[rng.Intn(len(fields))]
	width := 2 + rng.Intn(7) // 2..8 adjacent bits
	start := uint(rng.Intn(32))
	out := make([]Flip, 0, width)
	for i := 0; i < width; i++ {
		out = append(out, Flip{Field: f, Bit: (start + uint(i)) % 32})
	}
	return out
}

// ---- ram: RAM bit-flips through memmap.RAM ----

// Strata of the ram model, expressed as offsets into the physical map.
// The windows match the layout in jailhouse/configs.go.
const (
	ramKernelTextOff    = 0x0000_8000 // root kernel text at DRAM base + 32 KiB
	ramKernelTextWindow = 8 << 20     // 8 MiB of kernel text/rodata
	ramStratumWindow    = 0x00F0_0000 // probed window inside a 16 MiB region
	pTextFetchFatal     = 0.25        // chance the damaged line is fetched
)

// RAMFault flips one bit of physical RAM in a randomly chosen stratum —
// root-kernel text, the FreeRTOS cell's heap (its task control blocks),
// or the hypervisor's private firmware region. The bit really changes in
// memmap.RAM (visible in the machine state digest); the architectural
// consequence is modelled through the owning layer's own failure path.
type RAMFault struct{}

var (
	_ FaultModel     = (*RAMFault)(nil)
	_ MachineFaulter = (*RAMFault)(nil)
)

// Name implements FaultModel.
func (r *RAMFault) Name() string { return "ram-bitflip" }

// Plan implements FaultModel. Machine faults plan no register flips.
func (r *RAMFault) Plan(rng *sim.RNG) []Flip { return nil }

// flipWord XORs one bit of a RAM word, tolerating out-of-range addresses
// (graceful degradation: a fault that misses RAM is a no-op strike).
func flipWord(m *Machine, addr uint64, bit uint) {
	w, err := m.Board.RAM.ReadWord(addr)
	if err != nil {
		return
	}
	_ = m.Board.RAM.WriteWord(addr, w^(1<<(bit%32)))
}

// ApplyMachine implements MachineFaulter.
func (r *RAMFault) ApplyMachine(m *Machine, rng *sim.RNG, point jailhouse.InjectionPoint, cpu int) string {
	bit := uint(rng.Intn(32))
	switch rng.Intn(3) {
	case 0: // root-kernel text
		addr := board.DRAMBase + ramKernelTextOff + uint64(rng.Intn(ramKernelTextWindow))&^3
		flipWord(m, addr, bit)
		if rng.Bool(pTextFetchFatal) {
			m.Linux.KernelTextFault(addr)
			return fmt.Sprintf("ram flip in kernel text @%#x (fetched)", addr)
		}
		return fmt.Sprintf("ram flip in kernel text @%#x (latent)", addr)
	case 1: // guest heap: the cell's task control blocks
		addr := jailhouse.FreeRTOSMemBase + uint64(rng.Intn(ramStratumWindow))&^3
		flipWord(m, addr, bit)
		if m.RTOS != nil {
			return "ram flip in guest heap: " + m.RTOS.CorruptRandomTCB(rng)
		}
		return fmt.Sprintf("ram flip in guest heap @%#x (no cell loaded)", addr)
	default: // hypervisor firmware region
		addr := jailhouse.HypMemBase + uint64(rng.Intn(ramStratumWindow))&^3
		flipWord(m, addr, bit)
		m.HV.TaintFirmware(fmt.Sprintf("ram flip @%#x", addr))
		return fmt.Sprintf("ram flip in hypervisor firmware @%#x", addr)
	}
}

// ---- gic: distributor/peripheral state corruption ----

// GICFault corrupts interrupt-controller state: disabling lines, wrecking
// priorities or target masks, masking a CPU interface, raising spurious
// interrupts, or switching the whole distributor off. These are the
// peripheral-path faults the mixed-criticality surveys flag as
// under-assessed; a partitioning hypervisor's isolation story depends on
// surviving them.
type GICFault struct{}

var (
	_ FaultModel     = (*GICFault)(nil)
	_ MachineFaulter = (*GICFault)(nil)
)

// Name implements FaultModel.
func (g *GICFault) Name() string { return "gic-corruption" }

// Plan implements FaultModel.
func (g *GICFault) Plan(rng *sim.RNG) []Flip { return nil }

// gicVictimIRQ picks a consequential line: the virtual timer, one of the
// consoles, or a random SPI.
func gicVictimIRQ(rng *sim.RNG) int {
	switch rng.Intn(4) {
	case 0:
		return gic.IRQVirtualTimer
	case 1:
		return board.IRQUart0
	case 2:
		return board.IRQUart7
	default:
		return gic.NumSGI + gic.NumPPI + rng.Intn(gic.NumSPI)
	}
}

// ApplyMachine implements MachineFaulter.
func (g *GICFault) ApplyMachine(m *Machine, rng *sim.RNG, point jailhouse.InjectionPoint, cpu int) string {
	d := m.Board.GIC
	switch rng.Intn(6) {
	case 0:
		irq := gicVictimIRQ(rng)
		d.DisableIRQ(irq)
		return fmt.Sprintf("gic: enable bit of IRQ %d cleared", irq)
	case 1:
		irq := gicVictimIRQ(rng)
		d.SetPriority(irq, 0xFF)
		return fmt.Sprintf("gic: priority of IRQ %d forced to 0xFF (masked)", irq)
	case 2:
		irq := gic.NumSGI + gic.NumPPI + rng.Intn(gic.NumSPI)
		mask := uint8(rng.Intn(256))
		d.SetTargets(irq, mask)
		return fmt.Sprintf("gic: target mask of SPI %d scrambled to %#x", irq, mask)
	case 3:
		victim := rng.Intn(board.NumCPUs)
		d.SetPriorityMask(victim, 0x00)
		return fmt.Sprintf("gic: CPU %d priority mask dropped to 0 (all IRQs masked)", victim)
	case 4:
		irq := gic.NumSGI + gic.NumPPI + rng.Intn(gic.NumSPI)
		// Raised after the current handler unwinds, not from inside it —
		// the hardware analogue of a pending bit set by a glitch.
		m.Board.Engine.After(0, func() { _ = d.RaiseSPI(irq) })
		return fmt.Sprintf("gic: spurious SPI %d latched pending", irq)
	default:
		d.EnableDistributor(false)
		return "gic: distributor enable bit cleared"
	}
}

// ---- irq-storm: interrupt storms through the event queue ----

// Storm shape parameters.
const (
	stormMinEvents = 128
	stormMaxExtra  = 129 // events drawn as stormMinEvents + Intn(stormMaxExtra)
	stormSpan      = 5 * sim.Millisecond
)

// IRQStorm floods the machine with interrupts: a burst of spurious SPIs
// and management-range SGIs scheduled over a few milliseconds of virtual
// time through the engine's own event path. A healthy hypervisor sheds
// the storm (dropped SGIs, "IRQ error" logs); an unhealthy one livelocks,
// which the engine's bounded-progress watchdog converts into a
// machine-wedge outcome.
type IRQStorm struct{}

var (
	_ FaultModel     = (*IRQStorm)(nil)
	_ MachineFaulter = (*IRQStorm)(nil)
)

// Name implements FaultModel.
func (s *IRQStorm) Name() string { return "irq-storm" }

// Plan implements FaultModel.
func (s *IRQStorm) Plan(rng *sim.RNG) []Flip { return nil }

// ApplyMachine implements MachineFaulter. All random draws happen here,
// up front; the scheduled closures replay them deterministically.
func (s *IRQStorm) ApplyMachine(m *Machine, rng *sim.RNG, point jailhouse.InjectionPoint, cpu int) string {
	d := m.Board.GIC
	eng := m.Board.Engine
	n := stormMinEvents + rng.Intn(stormMaxExtra)
	for i := 0; i < n; i++ {
		at := sim.Time(rng.Intn(int(stormSpan) + 1))
		if rng.Bool(0.75) {
			irq := gic.NumSGI + gic.NumPPI + rng.Intn(gic.NumSPI)
			eng.After(at, func() { _ = d.RaiseSPI(irq) })
		} else {
			// SGIs 2..15: outside the hypervisor's management IDs (0, 1),
			// so the storm exercises the unexpected-SGI shedding path
			// rather than faking cell lifecycle commands.
			id := 2 + rng.Intn(gic.NumSGI-2)
			src := rng.Intn(board.NumCPUs)
			mask := uint8(1 << uint(rng.Intn(board.NumCPUs)))
			eng.After(at, func() { _ = d.SendSGI(src, mask, id) })
		}
	}
	return fmt.Sprintf("irq storm: %d spurious interrupts over %v", n, stormSpan.Duration())
}
