package core

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/dessertlab/certify/internal/sim"
)

// soakModels are the four full-machine fault models this harness must
// prove panic-free: whatever state they corrupt, every run ends in a
// taxonomy verdict — worst case sim-fault, never a dead test process.
var soakModels = []string{"burst", "ram", "gic", "irq-storm"}

// soakPlans are the experiment bases the sweep crosses the models with:
// the paper's E3 cell-trap stream, E1's root-context management
// workload, and E2's bring-up window — all cut to 8 virtual seconds.
func soakPlans() []*TestPlan {
	var out []*TestPlan
	for _, base := range []*TestPlan{PlanE3Fig3(), PlanE1HVC(), PlanE2Core1()} {
		p := *base
		p.Name = "soak-" + p.Name
		p.Duration = 8 * sim.Second
		out = append(out, &p)
	}
	return out
}

// soakEnvInt reads an integer knob from the environment, so scripts/
// soak.sh can scale the same sweep from a CI smoke to a 10k-run soak.
func soakEnvInt(t *testing.T, key string, def int) int {
	v := os.Getenv(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("%s=%q: want a positive integer", key, v)
	}
	return n
}

// TestSoakFaultModels sweeps every full-machine model across every
// experiment base as parallel distribution-mode campaigns and asserts
// the graceful-degradation contract in aggregate: no campaign errors,
// no run lost, and zero sim-fault verdicts — i.e. zero recovered Go
// panics anywhere in the machine under any model. Run counts scale
// with CERTIFY_SOAK_RUNS (per model×plan combination) and the seed
// base with CERTIFY_SOAK_SEED, so one binary serves both the default
// CI smoke and the scripts/soak.sh 10k-run campaign.
func TestSoakFaultModels(t *testing.T) {
	runs := soakEnvInt(t, "CERTIFY_SOAK_RUNS", 12)
	seed := uint64(soakEnvInt(t, "CERTIFY_SOAK_SEED", 1))
	if testing.Short() && os.Getenv("CERTIFY_SOAK_RUNS") == "" {
		runs = 4
	}
	total := 0
	for _, model := range soakModels {
		for _, base := range soakPlans() {
			model, base := model, base
			t.Run(fmt.Sprintf("%s/%s", model, base.Name), func(t *testing.T) {
				t.Parallel()
				plan := *base
				plan.FaultName = model
				if err := plan.Validate(); err != nil {
					t.Fatal(err)
				}
				c := &Campaign{Plan: &plan, Runs: runs, MasterSeed: seed + plan.Hash(), Mode: ModeDistribution}
				res, err := c.Execute(context.Background())
				if err != nil {
					t.Fatalf("campaign error: %v", err)
				}
				if res.Total() != runs {
					t.Fatalf("campaign lost runs: %d of %d", res.Total(), runs)
				}
				if n := res.Count(OutcomeSimFault); n != 0 {
					t.Fatalf("%d sim-fault run(s): a fault model panicked inside the machine", n)
				}
			})
			total += runs
		}
	}
	t.Cleanup(func() {
		if !t.Failed() {
			t.Logf("soak: %d runs across %d models x %d plans, zero sim-faults",
				total, len(soakModels), len(soakPlans()))
		}
	})
}

// FuzzFaultInjection randomises the model x seed x experiment triple
// and holds every draw to the soak contract, plus the reproducibility
// one: the run must not error, must not end in sim-fault, and must
// replay to the identical trace hash. `go test -fuzz=FuzzFaultInjection`
// explores beyond the checked-in corpus; a plain `go test` run replays
// the corpus as regression seeds.
func FuzzFaultInjection(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0))
	f.Add(uint64(2022), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(2), uint8(2))
	f.Add(uint64(0xDEAD), uint8(3), uint8(0))
	f.Add(uint64(0), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, modelIdx, planIdx uint8) {
		model := soakModels[int(modelIdx)%len(soakModels)]
		plan := *soakPlans()[int(planIdx)%len(soakPlans())]
		plan.FaultName = model
		opts := RunOptions{CaptureTraceHash: true}
		a, err := RunExperimentOpts(&plan, seed, opts)
		if err != nil {
			t.Fatalf("%s seed %d: %v", model, seed, err)
		}
		if a.Outcome() == OutcomeSimFault {
			t.Fatalf("%s seed %d: fault model panicked inside the machine:\n%v",
				model, seed, a.Verdict.Evidence)
		}
		b, err := RunExperimentOpts(&plan, seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.TraceHash != b.TraceHash || a.Outcome() != b.Outcome() {
			t.Fatalf("%s seed %d: replay diverged: %v/%#x vs %v/%#x",
				model, seed, a.Outcome(), a.TraceHash, b.Outcome(), b.TraceHash)
		}
	})
}
