package core

import (
	"context"
	"testing"

	"github.com/dessertlab/certify/internal/sim"
)

// These integration tests lock the reproduction to the paper's reported
// phenomenology. Campaign sizes are kept moderate for test time; the
// benchmarks in bench_test.go run the full-size campaigns. Bands are
// deliberately loose — they encode the paper's qualitative shape, not
// this model's exact calibration point.

func runCampaign(t *testing.T, plan *TestPlan, runs int, seed uint64) *CampaignResult {
	t.Helper()
	c := &Campaign{Plan: plan, Runs: runs, MasterSeed: seed}
	res, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// E3 / Figure 3: medium intensity on the non-root cell's trap stream —
// "the cell behaves correctly in the majority of cases, although in the
// 30% a panic park happens [...] a limited number of tests brings to a
// CPU park".
func TestE3Figure3Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	res := runCampaign(t, PlanE3Fig3(), 120, 2022)

	correct := res.Fraction(OutcomeCorrect) + res.Fraction(OutcomeSilentDegradation)
	panicPark := res.Fraction(OutcomePanicPark)
	cpuPark := res.Fraction(OutcomeCPUPark)

	if correct < 0.50 {
		t.Errorf("correct = %.0f%%, want majority (>50%%)", 100*correct)
	}
	if panicPark < 0.15 || panicPark > 0.45 {
		t.Errorf("panic park = %.0f%%, want ≈30%%", 100*panicPark)
	}
	if cpuPark <= 0 || cpuPark > 0.15 {
		t.Errorf("cpu park = %.0f%%, want present but limited", 100*cpuPark)
	}
	if panicPark <= cpuPark {
		t.Errorf("panic park (%.0f%%) must dominate cpu park (%.0f%%)", 100*panicPark, 100*cpuPark)
	}
}

// E3's isolation claim: after a CPU park the destroy still works and the
// root cell is unharmed — "the fault has been successfully isolated".
func TestE3CPUParkIsIsolated(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	res := runCampaign(t, PlanE3Fig3(), 150, 555)
	found := 0
	for _, run := range res.Runs {
		if run.Outcome() != OutcomeCPUPark {
			continue
		}
		found++
		// Root console must not show a kernel panic in a cpu-park run.
		if containsLine(run.RootTranscript, "Kernel panic") {
			t.Fatalf("cpu-park run %d has root kernel panic:\n%s", run.Seed, run.RootTranscript)
		}
		// The hypervisor console shows the park, and the error-code
		// evidence of the unhandled trap path.
		parkSeen := false
		for _, l := range run.HVConsole {
			if containsLine(l, "Parking CPU 1") {
				parkSeen = true
			}
		}
		if !parkSeen {
			t.Fatal("cpu-park run lacks parking console evidence")
		}
	}
	if found == 0 {
		t.Skip("no cpu-park outcome in this campaign (distribution tail)")
	}
}

// E1: high intensity on arch_handle_hvc / arch_handle_trap in root-cell
// context — management calls fail with "Invalid argument", the cell is
// not allocated, and the root cell survives.
func TestE1InvalidArgumentsDominant(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	for _, plan := range []*TestPlan{PlanE1HVC(), PlanE1Trap()} {
		t.Run(plan.Name, func(t *testing.T) {
			res := runCampaign(t, plan, 80, 99)
			inval := res.Fraction(OutcomeInvalidArgs)
			panicPark := res.Fraction(OutcomePanicPark)
			if inval < 0.30 {
				t.Errorf("invalid-arguments = %.0f%%, want the dominant failure class", 100*inval)
			}
			if panicPark > 0.25 {
				t.Errorf("panic park = %.0f%%, root-context injections must rarely crash the system", 100*panicPark)
			}
			if inval <= panicPark {
				t.Errorf("EINVAL (%.0f%%) must dominate panics (%.0f%%)", 100*inval, 100*panicPark)
			}
			// Every invalid-arguments run carries the tool's errno line.
			for _, run := range res.Runs {
				if run.Outcome() == OutcomeInvalidArgs && !containsLine(run.RootTranscript, "failed") {
					t.Fatal("invalid-arguments run lacks tool error evidence")
				}
			}
		})
	}
}

// E2: high intensity filtered to CPU core 1 — the cell is allocated but
// broken (blank USART) while Jailhouse reports it RUNNING; shutdown still
// returns the resources.
func TestE2InconsistentStateReachable(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	res := runCampaign(t, PlanE2Core1(), 100, 4242)
	inconsistent := res.Count(OutcomeInconsistent)
	if inconsistent == 0 {
		t.Fatal("E2 never reached the paper's inconsistent state")
	}
	// Verify the signature on one inconsistent run: cell reported
	// RUNNING by the watchdog while the cell console stayed blank.
	verified := false
	for _, run := range res.Runs {
		if run.Outcome() != OutcomeInconsistent {
			continue
		}
		hasEvidence := false
		for _, e := range run.Verdict.Evidence {
			if containsLine(e, "USART") || containsLine(e, "never") || containsLine(e, "silent") || containsLine(e, "non-executable") {
				hasEvidence = true
			}
		}
		if hasEvidence {
			verified = true
			break
		}
	}
	if !verified {
		t.Fatal("no inconsistent run carries blank-console evidence")
	}
}

// E2 follow-through: after the broken state, destroy must return the CPU
// to the root cell without error (the paper's recovery observation).
func TestE2DestroyRecoversBrokenCell(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	// Reproduce a deterministic inconsistent run, then destroy.
	res := runCampaign(t, PlanE2Core1(), 60, 4242)
	var seed uint64
	found := false
	for _, run := range res.Runs {
		if run.Outcome() == OutcomeInconsistent {
			seed = run.Seed
			found = true
			break
		}
	}
	if !found {
		t.Skip("no inconsistent outcome in this batch")
	}

	// Re-run the same seed manually so we hold the machine afterwards.
	m, err := BuildMachine(MachineOptions{Seed: seed, DelayedCreate: true, StateWatchdog: true})
	if err != nil {
		t.Fatal(err)
	}
	injSeed := seed
	rng := simNewRNGFrom(&injSeed)
	inj, err := NewInjector(PlanE2Core1(), DefaultProfile(), rng, m.Board.Now)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(0)
	m.HV.Hook = inj.Hook
	m.Run(PlanE2Core1().EffectiveDuration())

	if v := Classify(m); v.Outcome != OutcomeInconsistent {
		t.Skipf("replay classified %v (engine state differs before destroy)", v.Outcome)
	}
	m.HV.Hook = nil
	cell, ok := m.HV.CellByName("freertos-cell")
	if !ok {
		t.Fatal("cell missing")
	}
	if err := m.Linux.CellDestroy(cell.ID); err != nil {
		t.Fatalf("destroy of broken cell failed: %v", err)
	}
	if !m.HV.RootCell().HasCPU(1) {
		t.Fatal("CPU 1 did not return to the root cell")
	}
}

// A3: the injection point the paper excluded — corrupting the IRQ number
// yields a predictable, harmless IRQ error.
func TestA3IRQChipPredictable(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	res := runCampaign(t, PlanA3IRQ(), 40, 31337)
	correct := res.Fraction(OutcomeCorrect) + res.Fraction(OutcomeSilentDegradation)
	if correct < 0.90 {
		t.Errorf("irqchip injections correct = %.0f%%, want ≥90%% (predictable per the paper)", 100*correct)
	}
	// And the predictable "IRQ error" evidence shows up somewhere.
	seen := false
	for _, run := range res.Runs {
		for _, l := range run.HVConsole {
			if containsLine(l, "IRQ error") {
				seen = true
			}
		}
	}
	if !seen {
		t.Error("no IRQ-error console evidence across the A3 campaign")
	}
}

// The deterministic-replay property at campaign level: same master seed,
// same distribution.
func TestCampaignReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	plan := *PlanE3Fig3()
	plan.Duration = 15e9 // 15 virtual seconds keeps it quick
	a := runCampaign(t, &plan, 30, 1)
	b := runCampaign(t, &plan, 30, 1)
	for _, o := range AllOutcomes() {
		if a.Count(o) != b.Count(o) {
			t.Fatalf("distribution differs for %v: %d vs %d", o, a.Count(o), b.Count(o))
		}
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before scheduling
	c := &Campaign{Plan: PlanE3Fig3(), Runs: 50, MasterSeed: 5}
	if _, err := c.Execute(ctx); err == nil {
		t.Fatal("fully cancelled campaign must error (no runs)")
	}
}

func TestSEooCReportFindsViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	report, err := QuickAssessment(2022, 20, 20e9)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalRuns != 60 {
		t.Fatalf("runs = %d, want 60", report.TotalRuns)
	}
	// The paper's conclusion: Jailhouse is NOT ready for SEooC — both
	// the inconsistent-state and propagation claims fall.
	if report.Violated() == 0 {
		t.Fatal("assessment found no violations — contradicts the paper's conclusion")
	}
	text := report.Render()
	for _, want := range []string{"AoU-1", "AoU-5", "VIOLATED", "requires change"} {
		if !containsLine(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

// containsLine is a tiny substring helper.
func containsLine(haystack, needle string) bool {
	return len(needle) > 0 && len(haystack) >= len(needle) && indexOfSub(haystack, needle) >= 0
}

func indexOfSub(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// simNewRNGFrom derives an injector RNG the same way RunExperiment does.
func simNewRNGFrom(seed *uint64) *sim.RNG {
	return sim.NewRNG(sim.SplitMix64(seed))
}
