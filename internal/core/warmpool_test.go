package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/dessertlab/certify/internal/sim"
)

// runFingerprint is everything the differential suite compares per run:
// the classification, the latency evidence and the byte-identity
// fingerprint of the whole event stream.
type runFingerprint struct {
	outcome    Outcome
	injections int
	detection  sim.Time
	horizon    sim.Time
	cellLines  int
	traceHash  uint64
	rootText   string // ModeFull only
	cellText   string // ModeFull only
}

func fingerprint(r *RunResult) runFingerprint {
	return runFingerprint{
		outcome:    r.Outcome(),
		injections: len(r.Injections),
		detection:  r.DetectionLatency,
		horizon:    r.Horizon,
		cellLines:  r.CellLines,
		traceHash:  r.TraceHash,
		rootText:   r.RootTranscript,
		cellText:   r.CellTranscript,
	}
}

// campaignSeeds replays the campaign's seed chain: MasterSeed through
// SplitMix64, one output per run.
func campaignSeeds(master uint64, n int) []uint64 {
	state := master
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = sim.SplitMix64(&state)
	}
	return seeds
}

// coldReference runs every seed on a freshly built machine — no scratch,
// no pool — the ground truth the warm paths must reproduce byte for
// byte.
func coldReference(t *testing.T, plan *TestPlan, seeds []uint64, mode CampaignMode) []runFingerprint {
	t.Helper()
	out := make([]runFingerprint, len(seeds))
	for i, seed := range seeds {
		r, err := RunExperimentOpts(plan, seed, RunOptions{Mode: mode, CaptureTraceHash: true})
		if err != nil {
			t.Fatalf("cold run %d (seed %#x): %v", i, seed, err)
		}
		out[i] = fingerprint(r)
	}
	return out
}

// shortPlans returns the three experiment families at differential-suite
// durations: long enough for E1 to complete recreate cycles and for E2's
// delayed bring-up window to open, short enough to run the full
// plan × seed × mode matrix.
func shortPlans() []*TestPlan {
	e1 := *PlanE1HVC()
	e1.Duration = 12 * sim.Second
	e1.Name = "E1-warmdiff"
	e2 := *PlanE2Core1()
	e2.Duration = 8 * sim.Second
	e2.Name = "E2-warmdiff"
	e3 := *PlanE3Fig3()
	e3.Duration = 8 * sim.Second
	e3.Name = "E3-warmdiff"
	return []*TestPlan{&e1, &e2, &e3}
}

// TestWarmPoolDifferentialDeterminism is the admissibility proof for
// machine reuse: for every plan family (E1/E2/E3), several master
// seeds and both retention modes, a campaign over a shared warm pool —
// and one over the default per-worker warm scratch — must be
// byte-identical to cold fresh-build runs: same outcome, same injection
// count, same detection latency, same per-run trace hash, and in Full
// mode the very same transcripts.
func TestWarmPoolDifferentialDeterminism(t *testing.T) {
	runs := 6
	masters := []uint64{2022, 7, 0xfeedface}
	if testing.Short() {
		// The race gate runs this too; keep the full plan × mode matrix
		// but trim the seed axis and the per-cell run count.
		runs = 3
		masters = masters[:1]
	}
	for _, plan := range shortPlans() {
		for _, master := range masters {
			for _, mode := range []CampaignMode{ModeFull, ModeDistribution} {
				name := fmt.Sprintf("%s/seed-%d/%s", plan.Name, master, mode)
				t.Run(name, func(t *testing.T) {
					seeds := campaignSeeds(master, runs)
					cold := coldReference(t, plan, seeds, mode)

					for _, cfg := range []struct {
						label string
						pool  *MachinePool
					}{
						{"shared-pool", NewMachinePool()},
						{"worker-scratch", nil},
					} {
						var mu sync.Mutex
						warm := make([]runFingerprint, runs)
						c := &Campaign{
							Plan: plan, Runs: runs, MasterSeed: master,
							Mode: mode, Pool: cfg.pool,
							OnRun: func(index int, r *RunResult) {
								mu.Lock()
								warm[index] = fingerprint(r)
								mu.Unlock()
							},
						}
						if _, err := c.Execute(context.Background()); err != nil {
							t.Fatalf("%s campaign: %v", cfg.label, err)
						}
						for i := range cold {
							if warm[i] != cold[i] {
								t.Fatalf("%s diverged from cold build on run %d (seed %#x):\nwarm: %+v\ncold: %+v",
									cfg.label, i, seeds[i], warm[i], cold[i])
							}
						}
						if cfg.pool != nil {
							if _, reuses := cfg.pool.Stats(); reuses == 0 && runs > 1 {
								t.Fatal("shared pool never reused a machine — the warm path was not exercised")
							}
						}
					}
				})
			}
		}
	}
}

// TestSnapshotDifferentialFaultModels sweeps the snapshot-restore pool
// across every registered fault model: each model rewrites different
// state (GIC bitmaps, RAM words, register frames, IRQ storms), so each
// is an independent chance for a restore to miss a dirtied layer. For
// every model × plan family × master seed × retention mode, a pooled
// campaign must reproduce the cold fresh-build fingerprints exactly.
func TestSnapshotDifferentialFaultModels(t *testing.T) {
	runs := 4
	masters := []uint64{2022, 7, 0xfeedface}
	plans := shortPlans()
	if testing.Short() {
		// The race gate runs this too: keep every fault model but trim
		// the seed and plan axes.
		runs = 2
		masters = masters[:1]
		plans = plans[2:] // E3, the paper's main campaign family
	}
	for _, model := range FaultModelNames() {
		for _, base := range plans {
			plan := *base
			plan.FaultName = model
			plan.Name = base.Name + "-" + model
			for _, master := range masters {
				for _, mode := range []CampaignMode{ModeFull, ModeDistribution} {
					name := fmt.Sprintf("%s/%s/seed-%d/%s", model, base.Name, master, mode)
					t.Run(name, func(t *testing.T) {
						seeds := campaignSeeds(master, runs)
						cold := coldReference(t, &plan, seeds, mode)
						pool := NewMachinePool()
						var mu sync.Mutex
						warm := make([]runFingerprint, runs)
						c := &Campaign{
							Plan: &plan, Runs: runs, MasterSeed: master,
							Mode: mode, Pool: pool,
							OnRun: func(index int, r *RunResult) {
								mu.Lock()
								warm[index] = fingerprint(r)
								mu.Unlock()
							},
						}
						if _, err := c.Execute(context.Background()); err != nil {
							t.Fatalf("pooled campaign: %v", err)
						}
						for i := range cold {
							if warm[i] != cold[i] {
								t.Fatalf("model %s diverged from cold build on run %d (seed %#x):\nwarm: %+v\ncold: %+v",
									model, i, seeds[i], warm[i], cold[i])
							}
						}
						if _, reuses := pool.Stats(); reuses == 0 && runs > 1 {
							t.Fatal("pool never restored a machine — the snapshot path was not exercised")
						}
					})
				}
			}
		}
	}
}

// TestWarmPoolGoldenSerial pins the seed-2022 40-run E3 campaign — the
// repo's golden split — under the shared warm pool: 23 correct, 1
// inconsistent, 16 panic-park, 56 injections, exactly the cold numbers.
func TestWarmPoolGoldenSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	want := map[Outcome]int{
		OutcomeCorrect:      23,
		OutcomeInconsistent: 1,
		OutcomePanicPark:    16,
	}
	pool := NewMachinePool()
	for _, mode := range []CampaignMode{ModeFull, ModeDistribution} {
		c := &Campaign{Plan: PlanE3Fig3(), Runs: 40, MasterSeed: 2022, Mode: mode, Pool: pool}
		res, err := c.Execute(context.Background())
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for _, o := range AllOutcomes() {
			if res.Count(o) != want[o] {
				t.Fatalf("mode %v: count(%v) = %d, want %d", mode, o, res.Count(o), want[o])
			}
		}
		if res.Total() != 40 || res.InjectionsTotal() != 56 {
			t.Fatalf("mode %v: total=%d injections=%d, want 40/56", mode, res.Total(), res.InjectionsTotal())
		}
	}
	if builds, reuses := pool.Stats(); reuses == 0 {
		t.Fatalf("pool stats builds=%d reuses=%d — golden campaign never reused", builds, reuses)
	}
}

// TestWarmPoolGoldenMinuteTraceHash proves a deep-reset machine replays
// the fault-free golden minute bit for bit: a machine dirtied by a
// high-intensity injection run, drawn warm from the pool, must produce
// the pinned golden trace hash and liveness counters.
func TestWarmPoolGoldenMinuteTraceHash(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration golden run")
	}
	pool := NewMachinePool()
	dirty := *PlanE1HVC()
	dirty.Duration = 12 * sim.Second
	dirty.Name = "E1-dirty"
	if _, err := RunExperimentOpts(&dirty, 99, RunOptions{Pool: pool}); err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 2022} {
		m, err := pool.Get(DefaultMachineOptions(seed))
		if err != nil {
			t.Fatalf("warm Get(seed %d): %v", seed, err)
		}
		gp, err := goldenProfileOn(m, seed, sim.Minute)
		if err != nil {
			t.Fatalf("warm golden run (seed %d): %v", seed, err)
		}
		if gp.TraceHash != goldenMinuteTraceHash {
			t.Fatalf("warm golden run (seed %d) trace hash = %#x, want golden %#x",
				seed, gp.TraceHash, goldenMinuteTraceHash)
		}
		if gp.CellLines != 291 || gp.RootLines != 10 || gp.LEDToggles != 120 {
			t.Fatalf("warm golden run (seed %d) liveness = (cell %d, root %d, led %d), want (291, 10, 120)",
				seed, gp.CellLines, gp.RootLines, gp.LEDToggles)
		}
		pool.Put(m)
	}
	if _, reuses := pool.Stats(); reuses == 0 {
		t.Fatal("golden minute never ran on a reused machine")
	}
}

// TestStateLeakFuzzDeepResetMatchesFresh is the leak detector: run a
// randomly chosen plan at a random seed (dirtying every layer —
// injections park CPUs, panic the hypervisor, halt kernels, fill
// UARTs), deep-reset the machine to fresh options, and demand the full
// observable state digest — pending/active IRQ bitmaps, UART buffers,
// engine queue, cell states, trace, RAM content, guest state — equals a
// freshly built machine's, bit for bit.
func TestStateLeakFuzzDeepResetMatchesFresh(t *testing.T) {
	plans := shortPlans()
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for iter := 0; iter < 12; iter++ {
		plan := plans[rng.Intn(len(plans))]
		dirtySeed := rng.Uint64()
		scratch := NewRunScratch()
		if _, err := RunExperimentOpts(plan, dirtySeed, RunOptions{Scratch: scratch}); err != nil {
			t.Fatalf("iter %d: dirty run (%s, seed %#x): %v", iter, plan.Name, dirtySeed, err)
		}
		if scratch.machine == nil {
			t.Fatal("scratch did not retain the warm machine")
		}

		// Reset the dirty machine to a fresh configuration and hold its
		// digest against a cold build with the same options.
		freshSeed := rng.Uint64()
		opts := DefaultMachineOptions(freshSeed)
		if rng.Intn(2) == 1 {
			opts.LeanCapture = true
		}
		if rng.Intn(3) == 0 {
			opts.DelayedCreate = true
		}
		if err := scratch.machine.DeepReset(opts); err != nil {
			t.Fatalf("iter %d: deep reset: %v", iter, err)
		}
		fresh, err := BuildMachine(opts)
		if err != nil {
			t.Fatalf("iter %d: fresh build: %v", iter, err)
		}
		warmDigest, freshDigest := scratch.machine.StateDigest(), fresh.StateDigest()
		if warmDigest != freshDigest {
			t.Fatalf("iter %d: state leak after %s (dirty seed %#x): deep-reset digest %#x != fresh digest %#x (opts %+v)",
				iter, plan.Name, dirtySeed, warmDigest, freshDigest, opts)
		}

		// The digest must also agree after both machines run the same
		// horizon — a leak in unobserved state (e.g. RNG position) shows
		// up as divergence once events fire.
		scratch.machine.Run(3 * sim.Second)
		fresh.Run(3 * sim.Second)
		if w, f := scratch.machine.StateDigest(), fresh.StateDigest(); w != f {
			t.Fatalf("iter %d: divergence after running the reset machine: %#x != %#x", iter, w, f)
		}
	}
}

// TestStateLeakFuzzSnapshotRestoreMatchesFresh is the snapshot twin of
// the deep-reset leak fuzz: dirty a machine with a random plan and seed,
// restore it from its post-boot image (twice — the second restore is
// guaranteed to take the snapshot path, since the first may have had to
// capture a new profile), and demand the full state digest equals a
// freshly built machine's, before and after both run the same horizon.
func TestStateLeakFuzzSnapshotRestoreMatchesFresh(t *testing.T) {
	plans := shortPlans()
	rng := rand.New(rand.NewSource(0xBADC0DE))
	iters := 12
	if testing.Short() {
		iters = 4
	}
	for iter := 0; iter < iters; iter++ {
		plan := plans[rng.Intn(len(plans))]
		dirtySeed := rng.Uint64()
		scratch := NewRunScratch()
		if _, err := RunExperimentOpts(plan, dirtySeed, RunOptions{Scratch: scratch}); err != nil {
			t.Fatalf("iter %d: dirty run (%s, seed %#x): %v", iter, plan.Name, dirtySeed, err)
		}
		m := scratch.machine
		if m == nil {
			t.Fatal("scratch did not retain the warm machine")
		}

		freshSeed := rng.Uint64()
		opts := DefaultMachineOptions(freshSeed)
		if rng.Intn(2) == 1 {
			opts.LeanCapture = true
		}
		if err := m.Restore(opts); err != nil {
			t.Fatalf("iter %d: first restore: %v", iter, err)
		}
		// Dirty the restored machine again, then restore once more: this
		// one replays the captured post-boot image, the path under test.
		m.Run(2 * sim.Second)
		if err := m.Restore(opts); err != nil {
			t.Fatalf("iter %d: snapshot restore: %v", iter, err)
		}

		fresh, err := BuildMachine(opts)
		if err != nil {
			t.Fatalf("iter %d: fresh build: %v", iter, err)
		}
		if w, f := m.StateDigest(), fresh.StateDigest(); w != f {
			t.Fatalf("iter %d: state leak after %s (dirty seed %#x): restored digest %#x != fresh digest %#x (opts %+v)",
				iter, plan.Name, dirtySeed, w, f, opts)
		}
		m.Run(3 * sim.Second)
		fresh.Run(3 * sim.Second)
		if w, f := m.StateDigest(), fresh.StateDigest(); w != f {
			t.Fatalf("iter %d: divergence after running the restored machine: %#x != %#x", iter, w, f)
		}
	}
}

// TestPoolDropsWedgedMachine is the regression for the pool accepting
// unusable machines: a machine whose engine tripped the bounded-progress
// watchdog (or recorded a simulator fault) is tainted — Put must drop it
// on the floor and count the drop, and the next Get must serve a cold
// build indistinguishable from a fresh machine.
func TestPoolDropsWedgedMachine(t *testing.T) {
	pool := NewMachinePool()
	opts := DefaultMachineOptions(5)
	m, err := pool.Get(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Wedge the machine: a zero-delay self-rescheduling event executes
	// forever at one virtual instant until the watchdog halts the run.
	var spin func()
	spin = func() { m.Board.Engine.After(0, spin) }
	m.Board.Engine.After(0, spin)
	m.Run(1 * sim.Second)
	if !m.Tainted() {
		t.Fatal("wedged machine does not report tainted")
	}

	drops := metPoolDrops.Value()
	pool.Put(m)
	if got := metPoolDrops.Value(); got != drops+1 {
		t.Fatalf("tainted drop counter = %d, want %d", got, drops+1)
	}

	m2, err := pool.Get(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m2 == m {
		t.Fatal("pool handed the wedged machine back out")
	}
	fresh, err := BuildMachine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m2.StateDigest() != fresh.StateDigest() {
		t.Fatalf("post-wedge rebuild digest %#x != cold build %#x", m2.StateDigest(), fresh.StateDigest())
	}
}

// TestStateDigestDiscriminates guards the digest itself: machines with
// different seeds or different boot options must not collide (else the
// leak fuzz proves nothing).
func TestStateDigestDiscriminates(t *testing.T) {
	a, err := BuildMachine(DefaultMachineOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMachine(DefaultMachineOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("identical builds digest differently")
	}
	a.Run(2 * sim.Second)
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("running the machine did not change the digest")
	}
	c, err := BuildMachine(MachineOptions{Seed: 1, StateWatchdog: true, DelayedCreate: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.StateDigest() == b.StateDigest() {
		t.Fatal("different boot options digest identically")
	}
}

// TestMachinePoolConcurrentWorkers exercises the pool from many
// goroutines at once — the configuration the bench.sh race gate runs —
// and checks the shared-pool campaign still lands on the serial
// aggregate.
func TestMachinePoolConcurrentWorkers(t *testing.T) {
	plan := *PlanE3Fig3()
	plan.Duration = 6 * sim.Second
	plan.Name = "E3-pool-race"
	const runs = 24

	serial := &Campaign{Plan: &plan, Runs: runs, MasterSeed: 11, Workers: 1}
	want, err := serial.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	pool := NewMachinePool()
	parallel := &Campaign{Plan: &plan, Runs: runs, MasterSeed: 11, Workers: 8, Pool: pool}
	got, err := parallel.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range AllOutcomes() {
		if got.Count(o) != want.Count(o) {
			t.Fatalf("count(%v) = %d pooled, %d serial", o, got.Count(o), want.Count(o))
		}
	}
	if got.InjectionsTotal() != want.InjectionsTotal() {
		t.Fatalf("injections %d pooled, %d serial", got.InjectionsTotal(), want.InjectionsTotal())
	}
	builds, reuses := pool.Stats()
	if builds+reuses != runs {
		t.Fatalf("pool served %d machines for %d runs", builds+reuses, runs)
	}
	if builds > 8 {
		t.Fatalf("pool built %d machines for 8 workers — reuse is not happening", builds)
	}
}

// TestRunScratchKeepsWarmMachine pins the scratch lifecycle: the first
// run builds and parks a machine, later runs deep-reset that same
// machine in place.
func TestRunScratchKeepsWarmMachine(t *testing.T) {
	plan := *PlanE3Fig3()
	plan.Duration = 6 * sim.Second
	scratch := NewRunScratch()
	if _, err := RunExperimentOpts(&plan, 1, RunOptions{Scratch: scratch}); err != nil {
		t.Fatal(err)
	}
	first := scratch.machine
	if first == nil {
		t.Fatal("first run did not park its machine in the scratch")
	}
	if _, err := RunExperimentOpts(&plan, 2, RunOptions{Scratch: scratch}); err != nil {
		t.Fatal(err)
	}
	if scratch.machine != first {
		t.Fatal("second run rebuilt instead of deep-resetting the warm machine")
	}
}
