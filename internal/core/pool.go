package core

import (
	"sync"
	"time"
)

// MachinePool recycles fully built machines across experiment runs: Get
// hands out a warm machine rewound to its post-boot state via
// Machine.Restore — a snapshot restore that copies back only dirtied RAM
// pages and captured control blocks, never replaying the boot path —
// building cold only when the pool is empty. Because boot replay is the
// dominant reset cost once the event slab and trace are pooled (see
// DESIGN.md "Snapshot-fork machines"), the snapshot restore is what
// lifts campaign throughput past the deep-reset warm pool.
//
// The pool is safe for concurrent use; the machines it hands out are
// not — exactly one goroutine owns a machine between Get and Put. A
// pooled machine must only be Put back when nothing still reads from it
// (transcripts are copied out by the runner before release).
//
// Admissibility rests on the differential determinism suite: a run on a
// pooled machine must be byte-identical — outcomes, latencies, per-run
// trace hashes — to the same run on a cold-built machine. Get therefore
// never hides a DeepReset failure by quietly rebuilding: a warm boot
// that fails where a cold boot would succeed is a state leak, and it
// must surface.
type MachinePool struct {
	mu     sync.Mutex
	idle   []*Machine
	builds uint64
	reuses uint64
}

// NewMachinePool returns an empty pool. The zero value is also ready to
// use; the constructor exists for call sites that share one pool across
// components.
func NewMachinePool() *MachinePool { return &MachinePool{} }

// Get returns a machine booted for opts: a pooled machine rewound via
// Machine.Restore when one is idle, a cold build otherwise. A cold
// build captures its post-boot snapshot before first use, so the
// machine's later Gets restore instead of resetting. opts.Scratch is
// ignored for pooled machines (they recycle their own buffers).
func (p *MachinePool) Get(opts MachineOptions) (*Machine, error) {
	start := time.Now()
	defer metPoolGet.ObserveSince(start)
	p.mu.Lock()
	var m *Machine
	if n := len(p.idle); n > 0 {
		m = p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.reuses++
	} else {
		p.builds++
	}
	p.mu.Unlock()

	if m == nil {
		opts.Scratch = nil // pool machines own their buffers
		metPoolColdBuilds.Inc()
		m, err := BuildMachine(opts)
		if err != nil {
			return nil, err
		}
		m.CaptureSnapshot(opts)
		return m, nil
	}
	resetStart := time.Now()
	if err := m.Restore(opts); err != nil {
		// The machine is mid-boot garbage now; drop it rather than pool
		// it, and report the failure instead of masking a possible leak
		// with a silent rebuild.
		return nil, err
	}
	metDeepReset.ObserveSince(resetStart)
	metPoolReuses.Inc()
	return m, nil
}

// Put returns a machine to the pool for the next Get to rewind — unless
// the run left it tainted (sim-fault or machine wedge): a recovered
// panic or a wedged event storm may have corrupted layer state in ways
// no in-place rewind is trusted to undo, so such machines are dropped
// (counted on /metrics) and the pool rebuilds cold later. Put(nil) is a
// no-op.
func (p *MachinePool) Put(m *Machine) {
	if m == nil {
		return
	}
	if m.Tainted() {
		metPoolDrops.Inc()
		return
	}
	start := time.Now()
	p.mu.Lock()
	p.idle = append(p.idle, m)
	p.mu.Unlock()
	metPoolPut.ObserveSince(start)
}

// Size reports how many machines sit idle in the pool.
func (p *MachinePool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Stats reports how many Gets built cold and how many reused a warm
// machine — the bench and the race test read these.
func (p *MachinePool) Stats() (builds, reuses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.builds, p.reuses
}
