package core

import (
	"context"
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/sim"
)

// TestFaultModelRegistryContents pins the registry surface: the four
// full-machine models and the register-class family are selectable by
// name, names come back sorted, and unknown names are rejected at plan
// validation with the registry listed in the error.
func TestFaultModelRegistryContents(t *testing.T) {
	for _, name := range []string{
		"register", "burst", "ram", "gic", "irq-storm",
		"stuck-at-0", "stuck-at-1", "intermittent", "double-bit",
	} {
		if !FaultModelRegistered(name) {
			t.Errorf("model %q not registered", name)
		}
	}
	names := FaultModelNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("FaultModelNames not sorted: %v", names)
		}
	}

	p := *PlanE3Fig3()
	p.FaultName = "no-such-model"
	err := p.Validate()
	if err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if !strings.Contains(err.Error(), "irq-storm") {
		t.Errorf("rejection does not list the registry: %v", err)
	}
}

// TestFaultNamePlanFileRoundTrip pins the plan-file encoding: non-default
// models write a fault key and parse back; the default register model
// writes no key at all, and an explicit "register" in a plan file
// canonicalises to the empty spelling — both keep pre-registry plan
// hashes bit-identical.
func TestFaultNamePlanFileRoundTrip(t *testing.T) {
	p := *PlanE3Fig3()
	p.FaultName = "ram"
	text := MarshalPlan(&p)
	if !strings.Contains(text, "fault") {
		t.Fatalf("plan file lost the fault key:\n%s", text)
	}
	back, err := ParsePlan(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.FaultName != "ram" {
		t.Fatalf("round-trip FaultName = %q, want ram", back.FaultName)
	}
	if back.Hash() != p.Hash() {
		t.Fatal("round-trip changed the plan hash")
	}

	// The default model is the absence of the key.
	q := *PlanE3Fig3()
	if strings.Contains(MarshalPlan(&q), "fault ") {
		t.Fatalf("default plan writes a fault key:\n%s", MarshalPlan(&q))
	}
	explicit := *PlanE3Fig3()
	explicit.FaultName = "register"
	if explicit.Hash() != q.Hash() {
		t.Fatal("explicit register model changed the plan hash")
	}
	reparsed, err := ParsePlan(MarshalPlan(&q) + "fault     = register\n")
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.FaultName != "" {
		t.Fatalf("explicit register not canonicalised: FaultName = %q", reparsed.FaultName)
	}
}

// TestRegisterFactoryMatchesIntensityModel proves the registry's default
// factory is the paper's intensity-derived model: same rng stream, same
// planned flips.
func TestRegisterFactoryMatchesIntensityModel(t *testing.T) {
	p := *PlanE3Fig3()
	p.FaultName = DefaultFaultModelName
	viaRegistry := newFaultModelFor(&p)
	direct := p.Intensity.Model(p.Fields)
	for seed := uint64(1); seed <= 8; seed++ {
		s1, s2 := seed, seed
		a := viaRegistry.Plan(sim.NewRNG(sim.SplitMix64(&s1)))
		b := direct.Plan(sim.NewRNG(sim.SplitMix64(&s2)))
		if len(a) != len(b) {
			t.Fatalf("seed %d: registry planned %d flips, direct %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d flip %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestRegistryPreservesGoldenResults is the anchor the whole registry
// refactor must not move: with the default register model — selected
// explicitly, through the registry — the fault-free golden run still
// hashes to the PR 1 baseline, and the paper's E3/Figure-3 campaign
// still lands 23 correct / 1 inconsistent / 16 panic-park over 40 runs
// with 56 injections.
func TestRegistryPreservesGoldenResults(t *testing.T) {
	gp, err := GoldenRun(2022, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if gp.TraceHash != goldenMinuteTraceHash {
		t.Fatalf("golden trace hash = %#x, want %#x", gp.TraceHash, goldenMinuteTraceHash)
	}
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	plan := *PlanE3Fig3()
	plan.FaultName = "register" // explicit spelling of the default
	c := &Campaign{Plan: &plan, Runs: 40, MasterSeed: 2022, Mode: ModeDistribution}
	res, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := map[Outcome]int{
		OutcomeCorrect:      23,
		OutcomeInconsistent: 1,
		OutcomePanicPark:    16,
	}
	for _, o := range AllOutcomes() {
		if res.Count(o) != want[o] {
			t.Fatalf("count(%v) = %d, want %d", o, res.Count(o), want[o])
		}
	}
	if res.Total() != 40 || res.InjectionsTotal() != 56 {
		t.Fatalf("total=%d injections=%d, want 40/56", res.Total(), res.InjectionsTotal())
	}
}
