package core

import (
	"context"
	"testing"

	"github.com/dessertlab/certify/internal/sim"
)

// goldenMinuteTraceHash is the Trace.Hash() of a fault-free one-minute
// golden run, recorded from the pre-pool, eager-formatting engine (PR 1
// baseline). The event-slab, deferred-formatting and machine-reuse
// rewrites must keep the rendered trace byte-identical, so this value is
// load-bearing: if it moves, the engine's observable behaviour changed.
const goldenMinuteTraceHash = uint64(0xa10df7f198db0642)

func TestGoldenRunTraceHashUnchangedByEngineRewrite(t *testing.T) {
	for _, seed := range []uint64{1, 2022} {
		gp, err := GoldenRun(seed, sim.Minute)
		if err != nil {
			t.Fatalf("GoldenRun(%d): %v", seed, err)
		}
		if gp.TraceHash != goldenMinuteTraceHash {
			t.Fatalf("GoldenRun(%d) trace hash = %#x, want golden %#x", seed, gp.TraceHash, goldenMinuteTraceHash)
		}
		if gp.CellLines != 291 || gp.RootLines != 10 || gp.LEDToggles != 120 {
			t.Fatalf("GoldenRun(%d) liveness = (cell %d, root %d, led %d), want (291, 10, 120)",
				seed, gp.CellLines, gp.RootLines, gp.LEDToggles)
		}
	}
}

// TestCampaignDistributionGolden pins the full E3/Figure-3 campaign
// aggregate for a fixed master seed to the values produced by the
// pre-rewrite engine: the throughput overhaul must not move a single run
// between outcome classes.
func TestCampaignDistributionGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration campaign")
	}
	want := map[Outcome]int{
		OutcomeCorrect:      23,
		OutcomeInconsistent: 1,
		OutcomePanicPark:    16,
	}
	for _, mode := range []CampaignMode{ModeFull, ModeDistribution} {
		c := &Campaign{Plan: PlanE3Fig3(), Runs: 40, MasterSeed: 2022, Mode: mode}
		res, err := c.Execute(context.Background())
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for _, o := range AllOutcomes() {
			if res.Count(o) != want[o] {
				t.Fatalf("mode %v: count(%v) = %d, want %d", mode, o, res.Count(o), want[o])
			}
		}
		if res.Total() != 40 || res.InjectionsTotal() != 56 {
			t.Fatalf("mode %v: total=%d injections=%d, want 40/56", mode, res.Total(), res.InjectionsTotal())
		}
	}
}

// TestSerialAndParallelCampaignsAgree is the property the campaign's
// seed-derivation scheme promises: worker count must never perturb the
// aggregate. Runs use a shortened plan to keep the test quick.
func TestSerialAndParallelCampaignsAgree(t *testing.T) {
	plan := *PlanE3Fig3()
	plan.Duration = 8 * sim.Second
	plan.Name = "E3-determinism"

	distributions := make([]map[Outcome]int, 0, 3)
	injections := make([]int, 0, 3)
	configs := []struct {
		workers int
		mode    CampaignMode
	}{
		{1, ModeFull},
		{8, ModeFull},
		{8, ModeDistribution},
	}
	for _, cfg := range configs {
		c := &Campaign{Plan: &plan, Runs: 24, MasterSeed: 77, Workers: cfg.workers, Mode: cfg.mode}
		res, err := c.Execute(context.Background())
		if err != nil {
			t.Fatalf("workers=%d mode=%v: %v", cfg.workers, cfg.mode, err)
		}
		distributions = append(distributions, res.Distribution())
		injections = append(injections, res.InjectionsTotal())
	}
	for i := 1; i < len(distributions); i++ {
		for _, o := range AllOutcomes() {
			if distributions[i][o] != distributions[0][o] {
				t.Fatalf("config %d diverged on %v: %d vs %d (serial)", i, o, distributions[i][o], distributions[0][o])
			}
		}
		if injections[i] != injections[0] {
			t.Fatalf("config %d diverged on injections: %d vs %d", i, injections[i], injections[0])
		}
	}
}

// TestScratchReuseDoesNotPerturbRuns runs the same seed list twice —
// once with a shared worker scratch (machine reuse), once cold — and
// demands identical verdicts and artefact counts.
func TestScratchReuseDoesNotPerturbRuns(t *testing.T) {
	plan := *PlanE3Fig3()
	plan.Duration = 8 * sim.Second
	seeds := []uint64{3, 42, 1011, 0xfeed}

	scratch := NewRunScratch()
	for _, seed := range seeds {
		warm, err := RunExperimentOpts(&plan, seed, RunOptions{Scratch: scratch})
		if err != nil {
			t.Fatalf("warm run seed %d: %v", seed, err)
		}
		cold, err := RunExperiment(&plan, seed)
		if err != nil {
			t.Fatalf("cold run seed %d: %v", seed, err)
		}
		if warm.Outcome() != cold.Outcome() {
			t.Fatalf("seed %d: scratch reuse changed outcome %v → %v", seed, cold.Outcome(), warm.Outcome())
		}
		if len(warm.Injections) != len(cold.Injections) || warm.CellLines != cold.CellLines ||
			warm.DetectionLatency != cold.DetectionLatency || warm.Horizon != cold.Horizon {
			t.Fatalf("seed %d: scratch reuse changed artefacts: warm=%+v cold=%+v", seed, warm, cold)
		}
		if warm.RootTranscript != cold.RootTranscript || warm.CellTranscript != cold.CellTranscript {
			t.Fatalf("seed %d: scratch reuse changed transcripts", seed)
		}
	}
}

// TestDistributionModeDropsHeavyArtefacts pins what ModeDistribution is
// allowed to omit — and what it must still deliver.
func TestDistributionModeDropsHeavyArtefacts(t *testing.T) {
	plan := *PlanE3Fig3()
	plan.Duration = 8 * sim.Second
	r, err := RunExperimentOpts(&plan, 42, RunOptions{Mode: ModeDistribution})
	if err != nil {
		t.Fatal(err)
	}
	if r.RootTranscript != "" || r.CellTranscript != "" || r.HVConsole != nil || r.CallCounts != nil {
		t.Fatal("distribution mode retained transcripts/console/call counts")
	}
	full, err := RunExperiment(&plan, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome() != full.Outcome() || len(r.Injections) != len(full.Injections) {
		t.Fatalf("distribution mode changed classification: %v/%d vs %v/%d",
			r.Outcome(), len(r.Injections), full.Outcome(), len(full.Injections))
	}
}

// TestCampaignResultZeroValue guards the nil-map safety of the streaming
// aggregate: a zero-value result must answer every query without
// panicking, and MergeFrom must start from it.
func TestCampaignResultZeroValue(t *testing.T) {
	var zero CampaignResult
	if zero.Total() != 0 || zero.Count(OutcomeCorrect) != 0 || zero.Fraction(OutcomePanicPark) != 0 {
		t.Fatal("zero-value result returned non-zero aggregates")
	}
	if zero.InjectionsTotal() != 0 || zero.MeanDetectionLatency() != -1 {
		t.Fatal("zero-value injections/latency wrong")
	}
	d := zero.Distribution()
	for o, n := range d {
		if n != 0 {
			t.Fatalf("zero-value distribution has %v=%d", o, n)
		}
	}

	var acc CampaignResult
	other := &CampaignResult{}
	other.addRun(&RunResult{Verdict: Verdict{Outcome: OutcomeCorrect}, DetectionLatency: -1}, false)
	other.addRun(&RunResult{Verdict: Verdict{Outcome: OutcomePanicPark}, DetectionLatency: 10}, false)
	acc.MergeFrom(other)
	acc.MergeFrom(nil) // must be a no-op
	if acc.Total() != 2 || acc.Count(OutcomeCorrect) != 1 || acc.Count(OutcomePanicPark) != 1 {
		t.Fatalf("MergeFrom into zero value: total=%d dist=%v", acc.Total(), acc.Distribution())
	}
	if acc.MeanDetectionLatency() != 10 {
		t.Fatalf("MeanDetectionLatency = %v, want 10", acc.MeanDetectionLatency())
	}
}
