package core

import (
	"context"
	"fmt"
	"strings"

	"github.com/dessertlab/certify/internal/sim"
)

// SEooC evidence generation — the certification-facing output of the
// framework. ISO 26262 allows integrating a Safety Element out of Context
// when its assumptions of use are stated and verified; for a partitioning
// hypervisor the central assumption is spatial/temporal isolation between
// cells. The report maps campaign evidence onto explicit isolation
// claims, the way §II.B of the paper frames the certification question.

// Claim is one verifiable isolation assumption of use.
type Claim struct {
	ID        string
	Statement string
	// Holds is the verdict; Violations counts contradicting runs.
	Holds      bool
	Violations int
	Supporting int
	Notes      []string
}

// SEooCReport is the assembled evidence dossier.
type SEooCReport struct {
	Element         string
	Standard        string
	Campaigns       []*CampaignResult
	Claims          []Claim
	TotalRuns       int
	TotalInjections int
}

// BuildSEooCReport evaluates the isolation claims against one or more
// campaigns.
func BuildSEooCReport(campaigns ...*CampaignResult) *SEooCReport {
	r := &SEooCReport{
		Element:  "Jailhouse-class partitioning hypervisor (model)",
		Standard: "ISO 26262-6 SEooC fault-injection evidence",
	}
	r.Campaigns = append(r.Campaigns, campaigns...)

	var (
		cSpatial = Claim{ID: "AoU-1", Statement: "A fault activated in a non-root cell never corrupts another cell's memory or devices", Holds: true}
		cParks   = Claim{ID: "AoU-2", Statement: "A parked cell CPU leaves the root cell able to reclaim all resources (shutdown/destroy succeed)", Holds: true}
		cReject  = Claim{ID: "AoU-3", Statement: "Malformed management requests are rejected with an error and no partial allocation", Holds: true}
		cReport  = Claim{ID: "AoU-4", Statement: "The hypervisor's reported cell state reflects the cell's actual health", Holds: true}
		cNoProp  = Claim{ID: "AoU-5", Statement: "Faults in hypervisor handlers never propagate to a system-wide failure", Holds: true}
	)

	for _, c := range r.Campaigns {
		for _, run := range c.Runs {
			r.TotalRuns++
			r.TotalInjections += len(run.Injections)
			switch run.Outcome() {
			case OutcomeCPUPark:
				cParks.Supporting++
				cSpatial.Supporting++
			case OutcomeInvalidArgs:
				cReject.Supporting++
			case OutcomeInconsistent:
				cReport.Violations++
				cReport.Holds = false
			case OutcomePanicPark:
				cNoProp.Violations++
				cNoProp.Holds = false
			case OutcomeCorrect, OutcomeSilentDegradation:
				cSpatial.Supporting++
			}
		}
	}
	if cReport.Violations > 0 {
		cReport.Notes = append(cReport.Notes,
			"cells broken during bring-up are still reported RUNNING (blank-console state); operator-visible state is misleading")
	}
	if cNoProp.Violations > 0 {
		cNoProp.Notes = append(cNoProp.Notes,
			"register corruption inside deep trap handlers can reach per-CPU state shared with other cells: panic_stop takes the whole platform down")
	}
	r.Claims = []Claim{cSpatial, cParks, cReject, cReport, cNoProp}
	return r
}

// Render produces the human-readable dossier.
func (r *SEooCReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SEooC FAULT-INJECTION EVIDENCE REPORT\n")
	fmt.Fprintf(&b, "Element under assessment: %s\n", r.Element)
	fmt.Fprintf(&b, "Reference process:        %s\n", r.Standard)
	fmt.Fprintf(&b, "Campaigns: %d, runs: %d, injections: %d\n\n", len(r.Campaigns), r.TotalRuns, r.TotalInjections)
	for _, c := range r.Claims {
		verdict := "HOLDS"
		if !c.Holds {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(&b, "[%s] %-8s %s\n", c.ID, verdict, c.Statement)
		fmt.Fprintf(&b, "        supporting runs: %d, violating runs: %d\n", c.Supporting, c.Violations)
		for _, n := range c.Notes {
			fmt.Fprintf(&b, "        note: %s\n", n)
		}
	}
	b.WriteString("\nConclusion: ")
	if r.Violated() == 0 {
		b.WriteString("no isolation assumption was violated under the executed fault model.\n")
	} else {
		fmt.Fprintf(&b, "%d assumption(s) violated — the element requires change before SEooC integration (matching the paper's conclusion for Jailhouse v0.12).\n", r.Violated())
	}
	return b.String()
}

// Violated counts violated claims.
func (r *SEooCReport) Violated() int {
	n := 0
	for _, c := range r.Claims {
		if !c.Holds {
			n++
		}
	}
	return n
}

// QuickAssessment runs a compact standard campaign set (one plan per
// experiment family, small N) and builds the report — the one-call
// entry point used by the example and the CLI.
func QuickAssessment(masterSeed uint64, runsPerPlan int, duration sim.Time) (*SEooCReport, error) {
	plans := []*TestPlan{PlanE1HVC(), PlanE2Core1(), PlanE3Fig3()}
	var campaigns []*CampaignResult
	for i, p := range plans {
		if duration > 0 {
			cp := *p
			cp.Duration = duration
			p = &cp
		}
		c := &Campaign{Plan: p, Runs: runsPerPlan, MasterSeed: masterSeed + uint64(i)}
		res, err := c.Execute(contextBackground())
		if err != nil {
			return nil, fmt.Errorf("campaign %s: %w", p.Name, err)
		}
		campaigns = append(campaigns, res)
	}
	return BuildSEooCReport(campaigns...), nil
}

// contextBackground isolates the context import to this helper.
func contextBackground() context.Context { return context.Background() }
