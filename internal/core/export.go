package core

import (
	"encoding/json"
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
)

// JSON export of run artefacts — the machine-readable form of the log
// files the paper's rig collected, suitable for archiving in a
// certification dossier or post-processing outside Go.

// MarshalJSON renders the outcome as its taxonomy name.
func (o Outcome) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.String())
}

// UnmarshalJSON parses a taxonomy name back into an outcome.
func (o *Outcome) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for _, cand := range AllOutcomes() {
		if cand.String() == s {
			*o = cand
			return nil
		}
	}
	return fmt.Errorf("core: unknown outcome %q", s)
}

// runExport is the stable JSON shape of one run.
type runExport struct {
	Plan            string            `json:"plan"`
	Seed            string            `json:"seed"` // hex, stable across json number precision
	Outcome         Outcome           `json:"outcome"`
	Evidence        []string          `json:"evidence"`
	Injections      []injectionExport `json:"injections"`
	CellLines       int               `json:"cell_console_lines"`
	LEDToggles      int               `json:"led_toggles"`
	HorizonNS       int64             `json:"horizon_ns"`
	DetectionNS     int64             `json:"detection_latency_ns"`
	TraceHash       string            `json:"trace_hash,omitempty"` // hex; only when captured
	RootTranscript  string            `json:"root_transcript"`
	CellTranscript  string            `json:"cell_transcript"`
	HypervisorLines []string          `json:"hypervisor_console"`
}

type injectionExport struct {
	AtNS   int64    `json:"at_ns"`
	Point  string   `json:"point"`
	CPU    int      `json:"cpu"`
	Cell   string   `json:"cell"`
	Fields []string `json:"fields"`
	CallNo uint64   `json:"call_no"`
	Damage uint8    `json:"damage"`
}

// ExportJSON renders the run as indented JSON.
func (r *RunResult) ExportJSON() ([]byte, error) {
	exp := runExport{
		Plan:            r.Plan,
		Seed:            fmt.Sprintf("%#x", r.Seed),
		Outcome:         r.Outcome(),
		Evidence:        r.Verdict.Evidence,
		CellLines:       r.CellLines,
		LEDToggles:      r.LEDToggles,
		HorizonNS:       int64(r.Horizon),
		DetectionNS:     int64(r.DetectionLatency),
		RootTranscript:  r.RootTranscript,
		CellTranscript:  r.CellTranscript,
		HypervisorLines: r.HVConsole,
	}
	if r.TraceHash != 0 {
		exp.TraceHash = fmt.Sprintf("%#x", r.TraceHash)
	}
	for _, rec := range r.Injections {
		names := make([]string, len(rec.Fields))
		for i, f := range rec.Fields {
			names[i] = armv7.FieldName(f)
		}
		exp.Injections = append(exp.Injections, injectionExport{
			AtNS:   int64(rec.At),
			Point:  rec.Point.String(),
			CPU:    rec.CPU,
			Cell:   rec.Cell,
			Fields: names,
			CallNo: rec.CallNo,
			Damage: uint8(rec.Damage),
		})
	}
	return json.MarshalIndent(exp, "", "  ")
}

// campaignExport is the stable JSON shape of a campaign summary.
type campaignExport struct {
	Plan         string         `json:"plan"`
	Runs         int            `json:"runs"`
	Distribution map[string]int `json:"distribution"`
	Injections   int            `json:"injections_total"`
	MeanDetectNS int64          `json:"mean_detection_latency_ns"`
}

// ExportJSON renders the campaign summary as indented JSON.
func (c *CampaignResult) ExportJSON() ([]byte, error) {
	dist := make(map[string]int, len(c.byClass))
	for _, o := range AllOutcomes() {
		dist[o.String()] = c.byClass[o]
	}
	exp := campaignExport{
		Plan:         c.Plan,
		Runs:         c.Total(),
		Distribution: dist,
		Injections:   c.InjectionsTotal(),
		MeanDetectNS: int64(c.MeanDetectionLatency()),
	}
	return json.MarshalIndent(exp, "", "  ")
}
