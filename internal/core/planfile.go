package core

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// Plan files let campaigns be described as reviewable text — a
// certification workflow wants the executed test plan in the dossier.
// The format is line-oriented "key = value":
//
//	name      = E3-custom
//	points    = arch_handle_trap, arch_handle_hvc
//	intensity = medium            # or high
//	rate      = 100               # 0 = intensity default
//	cpu       = 1                 # -1 = any
//	cell      = freertos-cell     # empty = any
//	fields    = gprs              # gprs|args|callee|control|syndrome
//	duration  = 60s
//	workload  = steady            # steady|management|delayed-create
//
// '#' starts a comment; unknown keys are errors (a mistyped key in a
// certification test plan must not be silently ignored).

// MarshalPlan renders a plan in the plan-file format.
func MarshalPlan(p *TestPlan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name      = %s\n", p.Name)
	pts := make([]string, len(p.Points))
	for i, pt := range p.Points {
		pts[i] = pt.String()
	}
	fmt.Fprintf(&b, "points    = %s\n", strings.Join(pts, ", "))
	fmt.Fprintf(&b, "intensity = %s\n", p.Intensity)
	fmt.Fprintf(&b, "rate      = %d\n", p.Rate)
	fmt.Fprintf(&b, "cpu       = %d\n", p.TargetCPU)
	fmt.Fprintf(&b, "cell      = %s\n", p.TargetCell)
	fmt.Fprintf(&b, "fields    = %s\n", fieldSetName(p.Fields))
	fmt.Fprintf(&b, "duration  = %s\n", p.EffectiveDuration().Duration())
	fmt.Fprintf(&b, "workload  = %s\n", p.Workload)
	// The fault key is emitted only for non-default models: the default
	// rendering (and so every pre-registry plan hash and artefact) stays
	// byte-identical.
	if p.FaultName != "" && p.FaultName != DefaultFaultModelName {
		fmt.Fprintf(&b, "fault     = %s\n", p.FaultName)
	}
	return b.String()
}

// Hash returns a stable digest of the plan's canonical plan-file
// rendering. It is the fingerprint sharded campaigns write into their
// artefact manifests: two shard processes may only be merged when they
// ran the same plan, and "same plan" is defined as equal Hash. Custom
// fault models (NewCustomPlan) fall back to the nearest named field set
// in MarshalPlan, so plans that differ only in an in-process custom
// model are indistinguishable here — plan files cannot express those
// either.
func (p *TestPlan) Hash() uint64 {
	return sim.HashString(MarshalPlan(p))
}

// ParsePlan parses the plan-file format.
func ParsePlan(text string) (*TestPlan, error) {
	p := &TestPlan{TargetCPU: AnyCPU}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("core: plan line %d: missing '='", lineNo)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if err := applyPlanKey(p, key, value); err != nil {
			return nil, fmt.Errorf("core: plan line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func applyPlanKey(p *TestPlan, key, value string) error {
	switch key {
	case "name":
		p.Name = value
	case "points":
		for _, part := range strings.Split(value, ",") {
			pt, err := parsePoint(strings.TrimSpace(part))
			if err != nil {
				return err
			}
			p.Points = append(p.Points, pt)
		}
	case "intensity":
		switch value {
		case "medium":
			p.Intensity = IntensityMedium
		case "high":
			p.Intensity = IntensityHigh
		default:
			return fmt.Errorf("unknown intensity %q", value)
		}
	case "rate":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("bad rate %q", value)
		}
		p.Rate = n
	case "cpu":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("bad cpu %q", value)
		}
		p.TargetCPU = n
	case "cell":
		p.TargetCell = value
	case "fields":
		fs, err := parseFieldSet(value)
		if err != nil {
			return err
		}
		p.Fields = fs
	case "duration":
		d, err := time.ParseDuration(value)
		if err != nil {
			return fmt.Errorf("bad duration %q", value)
		}
		p.Duration = sim.Time(d)
	case "fault":
		if value != "" && !FaultModelRegistered(value) {
			return fmt.Errorf("unknown fault model %q (known: %s)", value, strings.Join(FaultModelNames(), ", "))
		}
		if value == DefaultFaultModelName {
			value = "" // canonical: the default model is the absent key
		}
		p.FaultName = value
	case "workload":
		switch value {
		case "steady":
			p.Workload = WorkloadSteady
		case "management", "management-cycle":
			p.Workload = WorkloadManagement
		case "delayed-create":
			p.Workload = WorkloadDelayedCreate
		default:
			return fmt.Errorf("unknown workload %q", value)
		}
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

func parsePoint(s string) (jailhouse.InjectionPoint, error) {
	switch s {
	case "arch_handle_trap":
		return jailhouse.PointTrap, nil
	case "arch_handle_hvc":
		return jailhouse.PointHVC, nil
	case "irqchip_handle_irq":
		return jailhouse.PointIRQChip, nil
	default:
		return 0, fmt.Errorf("unknown injection point %q", s)
	}
}

func parseFieldSet(s string) ([]armv7.Field, error) {
	switch s {
	case "", "gprs":
		return nil, nil // paper default
	case "args":
		return ArgFields, nil
	case "callee":
		return CalleeSavedFields, nil
	case "control":
		return ControlFields, nil
	case "syndrome":
		return SyndromeFields, nil
	default:
		return nil, fmt.Errorf("unknown field set %q", s)
	}
}

func fieldSetName(fs []armv7.Field) string {
	switch {
	case len(fs) == 0:
		return "gprs"
	case sameFields(fs, ArgFields):
		return "args"
	case sameFields(fs, CalleeSavedFields):
		return "callee"
	case sameFields(fs, ControlFields):
		return "control"
	case sameFields(fs, SyndromeFields):
		return "syndrome"
	default:
		return "gprs"
	}
}

func sameFields(a, b []armv7.Field) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
