package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/sim"
)

func TestOutcomeJSONRoundTrip(t *testing.T) {
	for _, o := range AllOutcomes() {
		data, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		var got Outcome
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got != o {
			t.Fatalf("roundtrip %v → %v", o, got)
		}
	}
	var bad Outcome
	if err := json.Unmarshal([]byte(`"weird"`), &bad); err == nil {
		t.Fatal("unknown outcome name accepted")
	}
	if err := json.Unmarshal([]byte(`17`), &bad); err == nil {
		t.Fatal("non-string outcome accepted")
	}
}

func TestRunExportJSON(t *testing.T) {
	plan := *PlanE3Fig3()
	plan.Duration = 15 * sim.Second
	res, err := RunExperiment(&plan, 7)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	for _, key := range []string{"plan", "seed", "outcome", "evidence", "cell_transcript", "detection_latency_ns"} {
		if _, ok := parsed[key]; !ok {
			t.Fatalf("export missing %q", key)
		}
	}
	if parsed["plan"] != "E3-fig3" {
		t.Fatalf("plan = %v", parsed["plan"])
	}
	if !strings.HasPrefix(parsed["seed"].(string), "0x") {
		t.Fatalf("seed = %v", parsed["seed"])
	}
}

func TestCampaignExportAndDetectionLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	plan := *PlanE3Fig3()
	plan.Duration = 20 * sim.Second
	plan.Rate = 10 // hot: force detections
	c := &Campaign{Plan: &plan, Runs: 20, MasterSeed: 3}
	res, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed campaignExport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Runs != 20 || parsed.Plan != "E3-fig3" {
		t.Fatalf("summary = %+v", parsed)
	}
	// At this injection rate some run must have detected a failure, and
	// the latency must be a plausible virtual duration.
	if res.MeanDetectionLatency() < 0 {
		t.Skip("no detected failures in this batch")
	}
	if res.MeanDetectionLatency() > 60*sim.Second {
		t.Fatalf("mean detection latency = %v", res.MeanDetectionLatency())
	}
}
