package core

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"io"

	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/gic"
	"github.com/dessertlab/certify/internal/gpio"
)

// fold is an incremental FNV-1a accumulator (stdlib hash/fnv) over the
// machine's observable state. Everything is serialised through
// fixed-width values in a fixed visit order, so two machines digest
// equal iff every visited observable matches.
type fold struct{ h hash.Hash64 }

func newFold() *fold { return &fold{h: fnv.New64a()} }

func (f *fold) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	f.h.Write(b[:])
}

func (f *fold) i64(v int64) { f.u64(uint64(v)) }

func (f *fold) b(v bool) {
	if v {
		f.u64(1)
	} else {
		f.u64(0)
	}
}

func (f *fold) str(s string) {
	f.u64(uint64(len(s)))
	io.WriteString(f.h, s)
}

// StateDigest fingerprints every layer of the machine's observable
// state: engine clock and queue depth, the rendered trace, both UART
// captures, the GIC's full register file and per-CPU pending/active
// bitmaps, the LED history, RAM content, each CPU's architectural state,
// the hypervisor's cells/per-CPU blocks/console/ivshmem links, root
// Linux's lifecycle state and the FreeRTOS kernel's scheduler state.
//
// The leak-detection property test relies on this being discriminating:
// a freshly built machine and a deep-reset machine booted with the same
// options must digest identically, for any amount of damage the
// previous run inflicted. When extending a layer with new mutable state,
// either cover it here or reset it provably — the fuzz test is the
// enforcement.
func (m *Machine) StateDigest() uint64 {
	f := newFold()

	// Engine and trace.
	eng := m.Board.Engine
	f.i64(int64(eng.Now()))
	f.i64(int64(eng.Pending()))
	halted, haltMsg := eng.Halted()
	f.b(halted)
	f.str(haltMsg)
	f.u64(m.Board.Trace().Hash())
	f.i64(int64(m.Board.Trace().Len()))

	// UART captures (lines carry timestamps via Transcript; the raw byte
	// log length covers the byte-capture channel).
	for _, u := range []interface {
		LineCount() int
		Transcript() string
		Bytes() []byte
	}{m.Board.UART0, m.Board.UART7} {
		f.i64(int64(u.LineCount()))
		f.str(u.Transcript())
		f.i64(int64(len(u.Bytes())))
	}

	// GIC: distributor register file plus per-CPU banked state.
	d := m.Board.GIC
	f.b(d.DistributorEnabled())
	for irq := 0; irq < gic.MaxIRQ; irq++ {
		f.b(d.IRQEnabled(irq))
		f.u64(uint64(d.Priority(irq)))
		f.u64(uint64(d.Targets(irq)))
	}
	for cpu := 0; cpu < board.NumCPUs; cpu++ {
		f.b(d.CPUInterfaceEnabled(cpu))
		f.u64(uint64(d.PriorityMask(cpu)))
		for irq := 0; irq < gic.MaxIRQ; irq++ {
			f.b(d.Pending(cpu, irq))
			f.b(d.Active(cpu, irq))
		}
		for id := 0; id < gic.NumSGI; id++ {
			f.i64(int64(d.SGISource(cpu, id)))
		}
	}

	// GPIO and RAM.
	f.i64(int64(m.Board.GPIO.ToggleCount(gpio.LEDGreen)))
	f.b(m.Board.GPIO.Get(gpio.LEDGreen))
	f.u64(m.Board.RAM.Digest())

	// CPUs: the complete architectural state — current-mode GPRs, every
	// banked register copy, FIQ banks, HYP/control registers and
	// power/park status (armv7.CPU.VisitState enumerates all of it, so a
	// reset that forgets a banked register is visible here).
	for _, c := range m.Board.CPUs {
		c.VisitState(func(w uint32) { f.u64(uint64(w)) })
	}

	// Hypervisor: lifecycle, cells, per-CPU blocks, console, ivshmem.
	hv := m.HV
	f.b(hv.Enabled())
	panicked, panicMsg := hv.Panicked()
	f.b(panicked)
	f.str(panicMsg)
	f.b(hv.FirmwareTainted())
	f.u64(hv.HypTraps())
	f.u64(uint64(hv.NextCellID()))
	for _, cpu := range hv.OfflinedCPUs() {
		f.i64(int64(cpu))
	}
	cells := hv.Cells()
	f.i64(int64(len(cells)))
	for _, c := range cells {
		f.u64(uint64(c.ID))
		f.str(c.Name())
		f.u64(uint64(c.State))
		f.b(c.Loadable)
		f.u64(uint64(c.CommPending))
		for _, cpu := range c.CPUList() {
			f.i64(int64(cpu))
		}
		for _, r := range c.Stage2.Regions() {
			f.u64(r.Phys)
			f.u64(r.Virt)
			f.u64(r.Size)
			f.u64(uint64(r.Flags))
		}
		if c.Guest != nil {
			f.str(c.Guest.Name())
		} else {
			f.str("")
		}
	}
	for cpu := 0; cpu < board.NumCPUs; cpu++ {
		p := hv.PerCPU(cpu)
		f.b(p.Parked)
		f.str(p.ParkReason)
		f.b(p.OnlineInCell)
		f.b(p.IntegrityOK())
		for _, n := range p.Stats {
			f.u64(n)
		}
	}
	f.i64(int64(len(hv.ConsoleLines)))
	for _, line := range hv.ConsoleLines {
		f.str(line)
	}
	links := hv.IvshmemLinks()
	f.i64(int64(len(links)))
	for _, l := range links {
		a, b := l.Rings()
		f.u64(a)
		f.u64(b)
		f.u64(uint64(l.PeerA))
		f.u64(uint64(l.PeerB))
		f.i64(int64(l.DoorbellA))
		f.i64(int64(l.DoorbellB))
	}

	// Root Linux lifecycle state.
	lp, lw := m.Linux.Panicked()
	f.b(lp)
	f.str(lw)
	f.u64(uint64(m.Linux.CellID))
	f.u64(m.Linux.StateQueries)
	f.u64(uint64(m.Linux.LastState))
	f.i64(int64(m.Linux.LastStartAt))

	// FreeRTOS kernel (absent until the cell is loaded).
	f.b(m.RTOS != nil)
	if m.RTOS != nil {
		k := m.RTOS
		f.u64(k.Tick())
		kh, kw := k.Halted()
		f.b(kh)
		f.str(kw)
		f.u64(k.ContextSwitches)
		f.u64(k.TicksSeen)
		tasks := k.Tasks()
		f.i64(int64(len(tasks)))
		for _, t := range tasks {
			f.str(t.Name)
			f.i64(int64(t.Priority))
			f.u64(uint64(t.State))
			f.b(t.Asserted)
			for _, w := range t.Work {
				f.u64(uint64(w))
			}
		}
		for _, q := range k.Queues() {
			f.i64(int64(q.Len()))
			f.u64(q.Sends)
			f.u64(q.Receives)
		}
	}

	f.u64(uint64(m.CellID))
	f.str(m.simFault)
	return f.h.Sum64()
}
