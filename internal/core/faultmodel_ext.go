package core

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/sim"
)

// Extended fault models — the paper's future work ("expanding the fault
// injection testing framework by applying a wider and customizable set
// of fault models"). All compose with the same injector, plans and
// classifier as the paper's bit-flip models.

// StuckAtModel forces a whole register to all-zeros or all-ones,
// emulating a stuck bus or a latched register cell — a harsher model
// than a transient flip: the value is unconditionally destroyed.
type StuckAtModel struct {
	// One forces 0xFFFFFFFF; otherwise 0x00000000.
	One bool
	// Fields to draw from; nil means GPRFields.
	Fields []armv7.Field
}

var _ FaultModel = (*StuckAtModel)(nil)

// Name implements FaultModel.
func (m *StuckAtModel) Name() string {
	if m.One {
		return "stuck-at-1"
	}
	return "stuck-at-0"
}

// Plan implements FaultModel: flipping every bit that differs from the
// stuck value forces the register to it. Since the injector applies
// flips, a stuck-at is expressed as the set of 32 conditional flips —
// here simplified to 32 unconditional flips against the current value by
// flipping all bits twice where they already match. To stay within the
// pure-flip interface the model emits one flip per bit; the applied
// result is value XOR 0xFFFFFFFF for stuck-at-1 on a zero register, etc.
// For classification purposes what matters is that the register is
// thoroughly destroyed, which 32 flips guarantee.
func (m *StuckAtModel) Plan(rng *sim.RNG) []Flip {
	fields := m.Fields
	if len(fields) == 0 {
		fields = GPRFields
	}
	f := fields[rng.Intn(len(fields))]
	out := make([]Flip, 0, 32)
	for bit := uint(0); bit < 32; bit++ {
		out = append(out, Flip{Field: f, Bit: bit})
	}
	return out
}

// IntermittentModel fires a burst of single-bit flips in one register —
// the intermittent-contact fault class: the same location disturbed
// several times within one activation.
type IntermittentModel struct {
	// Burst is the number of flips (default 4).
	Burst int
	// Fields to draw from; nil means GPRFields.
	Fields []armv7.Field
}

var _ FaultModel = (*IntermittentModel)(nil)

// Name implements FaultModel.
func (m *IntermittentModel) Name() string {
	b := m.Burst
	if b <= 0 {
		b = 4
	}
	return fmt.Sprintf("intermittent(burst=%d)", b)
}

// Plan implements FaultModel.
func (m *IntermittentModel) Plan(rng *sim.RNG) []Flip {
	fields := m.Fields
	if len(fields) == 0 {
		fields = GPRFields
	}
	burst := m.Burst
	if burst <= 0 {
		burst = 4
	}
	f := fields[rng.Intn(len(fields))]
	out := make([]Flip, 0, burst)
	for i := 0; i < burst; i++ {
		out = append(out, Flip{Field: f, Bit: uint(rng.Intn(32))})
	}
	return out
}

// DoubleBitAdjacentModel flips two adjacent bits of one register — the
// multi-bit-upset class that ECC-style detection misses most often.
type DoubleBitAdjacentModel struct {
	// Fields to draw from; nil means GPRFields.
	Fields []armv7.Field
}

var _ FaultModel = (*DoubleBitAdjacentModel)(nil)

// Name implements FaultModel.
func (m *DoubleBitAdjacentModel) Name() string { return "double-bit-adjacent" }

// Plan implements FaultModel.
func (m *DoubleBitAdjacentModel) Plan(rng *sim.RNG) []Flip {
	fields := m.Fields
	if len(fields) == 0 {
		fields = GPRFields
	}
	f := fields[rng.Intn(len(fields))]
	bit := uint(rng.Intn(31)) // leave room for the neighbour
	return []Flip{{Field: f, Bit: bit}, {Field: f, Bit: bit + 1}}
}

// NewCustomPlan builds a plan around an arbitrary fault model, keeping
// the paper's orchestration (rate, filters, duration, workload).
func NewCustomPlan(name string, base *TestPlan, model FaultModel) *TestPlan {
	p := *base
	p.Name = name
	p.custom = model
	return &p
}
