package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/dessertlab/certify/internal/sim"
)

// CampaignMode selects how much per-run evidence a campaign retains.
type CampaignMode uint8

const (
	// ModeFull retains every RunResult with full transcripts and
	// per-point call counts — the certification-dossier configuration.
	ModeFull CampaignMode = iota
	// ModeDistribution streams each run into aggregate counters and
	// drops the run immediately after classification: no transcripts, no
	// retained []*RunResult. Use it for large campaigns where only the
	// outcome distribution (Figure 3 shape) matters. Aggregates are
	// identical to ModeFull for the same MasterSeed.
	ModeDistribution
)

// String names the mode for logs and CLI flags.
func (m CampaignMode) String() string {
	if m == ModeDistribution {
		return "distribution"
	}
	return "full"
}

// ParseCampaignMode maps a mode name (CLI flag value, serialized spec)
// back to the mode. "dist" is accepted as CLI shorthand.
func ParseCampaignMode(s string) (CampaignMode, error) {
	switch s {
	case "full":
		return ModeFull, nil
	case "distribution", "dist":
		return ModeDistribution, nil
	}
	return 0, fmt.Errorf("core: unknown campaign mode %q (want full or distribution)", s)
}

// CampaignResult aggregates a batch of runs of one plan. The zero value
// is a valid empty result; workers fold runs into private results and the
// campaign merges them with MergeFrom.
type CampaignResult struct {
	Plan string
	// Runs holds the per-run records in ModeFull; empty in
	// ModeDistribution, where only the counters below survive. It is
	// read-only output: the aggregate accessors (Total, Fraction,
	// InjectionsTotal, ...) answer from internal counters maintained by
	// addRun/MergeFrom, so populating or trimming Runs by hand does not
	// update them.
	Runs []*RunResult

	// Stop records the certified-prefix decision of an adaptive
	// campaign: the aggregate covers exactly runs [0, Stop.DecidedAt) of
	// the master seed chain. Nil for fixed-N campaigns and for adaptive
	// campaigns cancelled before a decision was reached.
	Stop *StopDecision

	byClass    map[Outcome]int
	total      int
	injections int
	detectSum  sim.Time
	detectN    int
}

// Count returns how many runs ended in the given outcome.
func (c *CampaignResult) Count(o Outcome) int { return c.byClass[o] }

// Total returns the number of completed runs.
func (c *CampaignResult) Total() int { return c.total }

// Fraction returns the share of runs with the given outcome in [0,1].
func (c *CampaignResult) Fraction(o Outcome) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.byClass[o]) / float64(c.total)
}

// Distribution returns outcome → count for all classes (including zero
// entries, so tables always have the same shape).
func (c *CampaignResult) Distribution() map[Outcome]int {
	out := make(map[Outcome]int, int(numOutcomes))
	for _, o := range AllOutcomes() {
		out[o] = c.byClass[o]
	}
	return out
}

// InjectionsTotal sums performed injections across runs.
func (c *CampaignResult) InjectionsTotal() int { return c.injections }

// MeanDetectionLatency averages the detection latency over the runs that
// detected a failure (park or panic); -1 when none did.
func (c *CampaignResult) MeanDetectionLatency() sim.Time {
	if c.detectN == 0 {
		return -1
	}
	return c.detectSum / sim.Time(c.detectN)
}

// AddSample folds one run's classification into the aggregate without a
// RunResult — the path dist.Merge uses to rebuild a CampaignResult from
// streamed JSONL records. detection < 0 means "nothing detected" and is
// excluded from the latency mean, mirroring RunResult.DetectionLatency.
func (c *CampaignResult) AddSample(o Outcome, injections int, detection sim.Time) {
	if c.byClass == nil {
		c.byClass = make(map[Outcome]int, int(numOutcomes))
	}
	c.byClass[o]++
	c.total++
	c.injections += injections
	if detection >= 0 {
		c.detectSum += detection
		c.detectN++
	}
}

// addRun folds one classified run into the aggregate. retain keeps the
// RunResult itself (ModeFull); otherwise only the counters are updated
// and the run becomes garbage immediately.
func (c *CampaignResult) addRun(r *RunResult, retain bool) {
	c.AddSample(r.Outcome(), len(r.Injections), r.DetectionLatency)
	if retain {
		c.Runs = append(c.Runs, r)
	}
}

// MergeFrom folds another result's aggregates (and any retained runs)
// into c. Counters are commutative, so per-worker partial results merge
// into the same totals regardless of scheduling order — the property that
// keeps parallel campaigns seed-reproducible.
func (c *CampaignResult) MergeFrom(o *CampaignResult) {
	if o == nil {
		return
	}
	if c.Plan == "" {
		c.Plan = o.Plan
	}
	if len(o.byClass) > 0 && c.byClass == nil {
		c.byClass = make(map[Outcome]int, int(numOutcomes))
	}
	for k, v := range o.byClass {
		c.byClass[k] += v
	}
	c.total += o.total
	c.injections += o.injections
	c.detectSum += o.detectSum
	c.detectN += o.detectN
	c.Runs = append(c.Runs, o.Runs...)
}

// Campaign runs a plan N times with independent derived seeds, fanning
// out across workers. Every run is an isolated deterministic machine, so
// parallelism cannot perturb results; the aggregate is seed-reproducible.
// Each worker keeps one warm machine (via its RunScratch): after the
// first cold build, consecutive runs deep-reset the whole stack — board,
// hypervisor, both guests — back to power-on state instead of
// reallocating it. Setting Pool shares warm machines across workers and
// across campaigns instead. The differential determinism suite pins
// warm == cold, so neither reuse mode can perturb results.
type Campaign struct {
	// Plan to execute.
	Plan *TestPlan
	// Runs is the number of runs (the paper's campaign size per class).
	Runs int
	// MasterSeed derives per-run seeds via SplitMix64.
	MasterSeed uint64
	// Workers bounds parallelism; 0 = GOMAXPROCS.
	Workers int
	// Mode selects evidence retention; the zero value is ModeFull.
	Mode CampaignMode
	// Offset is the global index of this campaign's first run in the
	// MasterSeed chain: the campaign executes runs [Offset, Offset+Runs)
	// of the larger campaign the chain describes. Seeds are derived by
	// advancing the SplitMix64 chain Offset times before taking Runs
	// outputs, so the union of shard campaigns over disjoint windows is
	// bit-identical to one campaign covering the whole range. Zero for
	// ordinary (unsharded) campaigns.
	Offset int
	// OnRun, when non-nil, observes every classified run before
	// Distribution mode drops it: the streaming-artefact hook. It
	// receives the run's global index (Offset + scheduling index) and the
	// full RunResult, including TraceHash, which is computed only when
	// this hook is set. Workers call it concurrently and in completion
	// order, not index order — the callback must be goroutine-safe and
	// must not retain r past the call in ModeDistribution.
	OnRun func(index int, r *RunResult)
	// Pool, when non-nil, supplies warm machines to all workers from one
	// shared pool instead of one private warm machine per worker. Pass
	// the same pool to successive campaigns (or shards executing in the
	// same process) to keep machines warm across them.
	Pool *MachinePool
	// ColdBuild disables machine reuse entirely: every run constructs a
	// fresh stack. This is the pre-reuse baseline — kept for the warm
	// bench's comparison row and for bisecting a suspected reuse bug
	// (results must never differ from the warm paths; the differential
	// determinism suite enforces exactly that).
	ColdBuild bool
	// Stop, when non-nil, makes the campaign adaptive. Classified runs
	// are committed in strict global-index order (a reorder buffer holds
	// out-of-order worker completions); the policy observes each
	// committed run, and the first observation that returns true ends
	// the campaign — runs with higher indices are discarded even when
	// already executed. OnRun is then invoked in index order, only for
	// committed runs, so a streamed artefact of a stopped campaign is
	// byte-identical to a truncation of the full campaign's canonical
	// artefact. CampaignResult.Stop records the decision. Runs acts as
	// the max-N guard: an adaptive campaign never exceeds it.
	Stop StopPolicy
	// Stratify rotates runs across the register-class strata of the
	// plan's field set (StratifyPlan): run with global index g draws its
	// injection fields from stratum g mod 3. The stratum assignment is a
	// pure function of the global index, so stratified campaigns shard,
	// resume and early-stop exactly like uniform ones. Stratification is
	// campaign identity — dist specs and manifests carry it.
	Stratify bool
}

// Execute runs the campaign. ctx cancellation stops scheduling new runs
// (in-flight runs complete; they are fast).
func (c *Campaign) Execute(ctx context.Context) (*CampaignResult, error) {
	if c.Plan == nil {
		return nil, fmt.Errorf("core: campaign has no plan")
	}
	if err := c.Plan.Validate(); err != nil {
		return nil, err
	}
	n := c.Runs
	if n <= 0 {
		n = 100
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	if c.Offset < 0 {
		return nil, fmt.Errorf("core: campaign offset %d is negative", c.Offset)
	}

	// Pre-derive all seeds so the assignment is order-independent. The
	// chain is advanced past the Offset window first: shard campaigns draw
	// the same seeds the full campaign would have assigned to their runs.
	state := c.MasterSeed
	for i := 0; i < c.Offset; i++ {
		sim.SplitMix64(&state)
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = sim.SplitMix64(&state)
	}

	planFor := func(int) *TestPlan { return c.Plan }
	if c.Stratify {
		strata, err := StratifyPlan(c.Plan)
		if err != nil {
			return nil, err
		}
		planFor = func(idx int) *TestPlan { return strata[(c.Offset+idx)%len(strata)] }
	}

	if c.Stop != nil {
		return c.executeAdaptive(ctx, n, workers, seeds, planFor)
	}

	retain := c.Mode == ModeFull
	var (
		results []*RunResult // ModeFull: per-index, preserves seed order
		partial = make([]*CampaignResult, 0, workers)
		errs    = make([]error, n)
		wg      sync.WaitGroup
		work    = make(chan int)
	)
	if retain {
		results = make([]*RunResult, n)
	}

	for w := 0; w < workers; w++ {
		var local *CampaignResult
		if !retain {
			local = &CampaignResult{Plan: c.Plan.Name}
			partial = append(partial, local)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ro := RunOptions{
				Mode:             c.Mode,
				CaptureTraceHash: c.OnRun != nil,
			}
			switch {
			case c.ColdBuild:
				// fresh build per run
			case c.Pool != nil:
				ro.Pool = c.Pool
			default:
				ro.Scratch = NewRunScratch()
			}
			for idx := range work {
				r, err := RunExperimentOpts(planFor(idx), seeds[idx], ro)
				if err != nil {
					errs[idx] = err
					continue
				}
				if c.OnRun != nil {
					c.OnRun(c.Offset+idx, r)
				}
				if retain {
					results[idx] = r
				} else {
					local.addRun(r, false)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break feed
		case work <- i:
		}
	}
	close(work)
	wg.Wait()

	agg := &CampaignResult{Plan: c.Plan.Name}
	for i, err := range errs {
		if err != nil {
			// Report the global index: artefacts, manifests and OnRun all
			// identify runs that way, so the operator can cross-reference.
			return nil, fmt.Errorf("run %d (seed %#x): %w", c.Offset+i, seeds[i], err)
		}
	}
	if retain {
		for _, r := range results {
			if r == nil {
				continue // cancelled before scheduling
			}
			agg.addRun(r, true)
		}
	} else {
		for _, p := range partial {
			agg.MergeFrom(p)
		}
	}
	if agg.total == 0 {
		// Distinguish "cancelled before the first run finished" from a
		// genuinely empty campaign: callers (the serve daemon's job
		// executor, the fan-out supervisor) branch on errors.Is(err,
		// context.Canceled) to record an abort instead of a failure.
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: campaign cancelled before any run completed: %w", cerr)
		}
		return nil, fmt.Errorf("core: campaign produced no runs")
	}
	return agg, nil
}

// executeAdaptive is the Stop-policy execution path: workers still race
// over the run indices, but classified runs are committed — OnRun,
// aggregation, policy observation — in strict global-index order
// through a reorder buffer. The stop decision is therefore a pure
// function of the seed-chain prefix: a stopped campaign's committed
// runs are bit-identical to the first K runs of the full campaign, no
// matter how many workers raced or in what order they finished.
func (c *Campaign) executeAdaptive(ctx context.Context, n, workers int, seeds []uint64, planFor func(int) *TestPlan) (*CampaignResult, error) {
	retain := c.Mode == ModeFull
	c.Stop.Reset()

	type completion struct {
		idx int
		r   *RunResult
		err error
	}
	var (
		wg       sync.WaitGroup
		work     = make(chan int)
		finished = make(chan completion, workers)
		stopFeed = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ro := RunOptions{
				Mode:             c.Mode,
				CaptureTraceHash: c.OnRun != nil,
			}
			switch {
			case c.ColdBuild:
				// fresh build per run
			case c.Pool != nil:
				ro.Pool = c.Pool
			default:
				ro.Scratch = NewRunScratch()
			}
			for idx := range work {
				r, err := RunExperimentOpts(planFor(idx), seeds[idx], ro)
				finished <- completion{idx, r, err}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := 0; i < n; i++ {
			select {
			case <-ctx.Done():
				return
			case <-stopFeed:
				return
			case work <- i:
			}
		}
	}()
	go func() { wg.Wait(); close(finished) }()

	agg := &CampaignResult{Plan: c.Plan.Name}
	pending := make(map[int]completion, workers)
	next := 0    // next index to commit; committed prefix is [0, next)
	stopAt := -1 // committed prefix length at the stop decision
	var fatal error
	for done := range finished {
		if stopAt >= 0 || fatal != nil {
			continue // decision made or campaign doomed: drain the workers
		}
		pending[done.idx] = done
		for {
			e, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if e.err != nil {
				fatal = fmt.Errorf("run %d (seed %#x): %w", c.Offset+next, seeds[next], e.err)
				close(stopFeed)
				break
			}
			if c.OnRun != nil {
				c.OnRun(c.Offset+next, e.r)
			}
			agg.addRun(e.r, retain)
			fired := c.Stop.Observe(c.Offset+next, e.r.Outcome())
			next++
			if fired {
				stopAt = next
				close(stopFeed)
				break
			}
		}
	}
	if fatal != nil {
		return nil, fatal
	}
	if agg.total == 0 {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: campaign cancelled before any run completed: %w", cerr)
		}
		return nil, fmt.Errorf("core: campaign produced no runs")
	}
	switch {
	case stopAt >= 0:
		agg.Stop = &StopDecision{DecidedAt: c.Offset + stopAt, Fired: stopAt < n}
	case next == n:
		// Max-N guard: the chain ran out before the target was met. The
		// whole window is the certified prefix.
		agg.Stop = &StopDecision{DecidedAt: c.Offset + n, Fired: false}
	default:
		// Cancelled before a decision: the committed prefix [0, next) is
		// a resumable remnant, not a certified stop — leave Stop nil so
		// callers (dist.ExecuteShard) treat the artefact as incomplete.
	}
	return agg, nil
}
