package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/dessertlab/certify/internal/sim"
)

// CampaignResult aggregates a batch of runs of one plan.
type CampaignResult struct {
	Plan    string
	Runs    []*RunResult
	byClass map[Outcome]int
}

// Count returns how many runs ended in the given outcome.
func (c *CampaignResult) Count(o Outcome) int { return c.byClass[o] }

// Total returns the number of completed runs.
func (c *CampaignResult) Total() int { return len(c.Runs) }

// Fraction returns the share of runs with the given outcome in [0,1].
func (c *CampaignResult) Fraction(o Outcome) float64 {
	if len(c.Runs) == 0 {
		return 0
	}
	return float64(c.byClass[o]) / float64(len(c.Runs))
}

// Distribution returns outcome → count for all classes (including zero
// entries, so tables always have the same shape).
func (c *CampaignResult) Distribution() map[Outcome]int {
	out := make(map[Outcome]int, int(numOutcomes))
	for _, o := range AllOutcomes() {
		out[o] = c.byClass[o]
	}
	return out
}

// InjectionsTotal sums performed injections across runs.
func (c *CampaignResult) InjectionsTotal() int {
	n := 0
	for _, r := range c.Runs {
		n += len(r.Injections)
	}
	return n
}

// Campaign runs a plan N times with independent derived seeds, fanning
// out across workers. Every run is an isolated deterministic machine, so
// parallelism cannot perturb results; the aggregate is seed-reproducible.
type Campaign struct {
	// Plan to execute.
	Plan *TestPlan
	// Runs is the number of runs (the paper's campaign size per class).
	Runs int
	// MasterSeed derives per-run seeds via SplitMix64.
	MasterSeed uint64
	// Workers bounds parallelism; 0 = GOMAXPROCS.
	Workers int
}

// Execute runs the campaign. ctx cancellation stops scheduling new runs
// (in-flight runs complete; they are fast).
func (c *Campaign) Execute(ctx context.Context) (*CampaignResult, error) {
	if c.Plan == nil {
		return nil, fmt.Errorf("core: campaign has no plan")
	}
	if err := c.Plan.Validate(); err != nil {
		return nil, err
	}
	n := c.Runs
	if n <= 0 {
		n = 100
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Pre-derive all seeds so the assignment is order-independent.
	seeds := make([]uint64, n)
	state := c.MasterSeed
	for i := range seeds {
		seeds[i] = sim.SplitMix64(&state)
	}

	results := make([]*RunResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	work := make(chan int)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				results[idx], errs[idx] = RunExperiment(c.Plan, seeds[idx])
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break feed
		case work <- i:
		}
	}
	close(work)
	wg.Wait()

	agg := &CampaignResult{Plan: c.Plan.Name, byClass: make(map[Outcome]int)}
	for i, r := range results {
		if errs[i] != nil {
			return nil, fmt.Errorf("run %d (seed %#x): %w", i, seeds[i], errs[i])
		}
		if r == nil {
			continue // cancelled before scheduling
		}
		agg.Runs = append(agg.Runs, r)
		agg.byClass[r.Outcome()]++
	}
	if len(agg.Runs) == 0 {
		return nil, fmt.Errorf("core: campaign produced no runs (cancelled?)")
	}
	return agg, nil
}
