package core

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
)

// StopPolicyCIWidth is the registered adaptive stop policy: halt when
// every tracked outcome class's confidence interval is narrower than
// the target width. The implementation lives in internal/analytics
// (analytics.NewStopPolicy); core only names the seam so specs and
// manifests can carry the identity without an import cycle.
const StopPolicyCIWidth = "ci-width"

// Stop-spec interval kinds. Clopper-Pearson is the default: the exact
// interval never under-covers, which is the conservative choice for a
// stopping rule that prunes certification evidence.
const (
	IntervalClopperPearson = "clopper-pearson"
	IntervalWilson         = "wilson"
)

// StopSpec is the serializable identity of an adaptive stop policy.
// It travels in dist specs and shard manifests exactly like the fault
// model does: two campaigns whose stop specs differ are different
// campaigns — their artefacts must never merge and the result cache
// must never answer one with the other, because the stopped prefix
// they certify differs.
//
// The target width is stored in basis points of the [0,1] proportion
// scale (500 = 5 percentage points) so the identity is an integer —
// float formatting can never make two equal policies encode
// differently.
type StopSpec struct {
	// Policy names the stop rule; StopPolicyCIWidth is the only
	// registered one.
	Policy string `json:"policy"`
	// WidthBP is the target full CI width in basis points (1..10000).
	WidthBP int `json:"width_bp"`
	// Interval selects the CI construction ("" = clopper-pearson).
	Interval string `json:"interval,omitempty"`
	// MinRuns forbids stopping before this many runs were observed.
	MinRuns int `json:"min_runs,omitempty"`
	// CheckEvery evaluates the stop condition every k-th run (0 = 1).
	CheckEvery int `json:"check_every,omitempty"`
}

// Validate checks the spec and normalises its defaults in place
// (Interval, CheckEvery), so every validated spec of the same policy
// encodes to identical JSON — the byte-stability the manifest identity
// block needs.
func (s *StopSpec) Validate() error {
	if s == nil {
		return nil
	}
	if s.Policy != StopPolicyCIWidth {
		return fmt.Errorf("core: unknown stop policy %q (want %s)", s.Policy, StopPolicyCIWidth)
	}
	if s.WidthBP <= 0 || s.WidthBP > 10000 {
		return fmt.Errorf("core: stop target width %d basis points out of range (0, 10000]", s.WidthBP)
	}
	switch s.Interval {
	case "":
		s.Interval = IntervalClopperPearson
	case IntervalClopperPearson, IntervalWilson:
	default:
		return fmt.Errorf("core: unknown stop interval %q (want %s or %s)", s.Interval, IntervalClopperPearson, IntervalWilson)
	}
	if s.MinRuns < 0 {
		return fmt.Errorf("core: stop min-runs %d is negative", s.MinRuns)
	}
	if s.CheckEvery < 0 {
		return fmt.Errorf("core: stop check-every %d is negative", s.CheckEvery)
	}
	if s.CheckEvery == 0 {
		s.CheckEvery = 1
	}
	return nil
}

// Identity renders the spec as its canonical identity string — the
// form campaign-identity comparisons (manifest matches, spec
// SameCampaign, the serve cache key) use. Nil means "fixed-N campaign"
// and renders empty. The string is filesystem-safe: the serve cache
// embeds it in entry directory names.
func (s *StopSpec) Identity() string {
	if s == nil {
		return ""
	}
	interval := s.Interval
	if interval == "" {
		interval = IntervalClopperPearson
	}
	every := s.CheckEvery
	if every <= 0 {
		every = 1
	}
	return fmt.Sprintf("%s_%s_w%d_m%d_e%d", s.Policy, interval, s.WidthBP, s.MinRuns, every)
}

// Clone returns a deep copy (StopSpec has no reference fields, so a
// value copy suffices; the method keeps call sites honest about
// aliasing a spec that Validate may normalise in place).
func (s *StopSpec) Clone() *StopSpec {
	if s == nil {
		return nil
	}
	c := *s
	return &c
}

// StopPolicy is the campaign driver's adaptive-stop seam. The policy
// observes classified runs in strict global-index order starting at
// index 0 and reports, after each, whether the campaign may halt: a
// true return after observing index i certifies the prefix [0, i+1).
//
// Implementations must be pure functions of the observed outcome
// prefix — no clocks, no randomness, no external state — because the
// same decision is replayed at merge time over shard artefacts and
// must land on the same index. Reset returns the policy to its initial
// state; the campaign driver and the merge replay both call it before
// the first observation.
type StopPolicy interface {
	Reset()
	Observe(index int, o Outcome) bool
}

// StopDecision records where an adaptive campaign's certified prefix
// ends. DecidedAt is the prefix length K: the campaign's evidence is
// exactly runs [0, K) of the master seed chain. Fired reports whether
// the policy halted the campaign before its max-N guard (K < Runs);
// a campaign that reached N with the target unmet has Fired == false
// and DecidedAt == N.
type StopDecision struct {
	DecidedAt int
	Fired     bool
}

// stratumControl is the third register-class stratum: the control-flow
// registers plus r12 (the intra-procedure scratch register), so the
// three strata together cover the paper's full 16-register set.
var stratumControl = append([]armv7.Field{armv7.Field(armv7.RegR12)}, ControlFields...)

// StratifyPlan partitions the plan's injection space into the
// register-class strata an adaptive campaign rotates over: argument
// registers (r0-r3), callee-saved registers (r4-r11) and control-flow
// registers (r12, sp, lr, pc). Run i of a stratified campaign draws
// its injection fields from stratum i mod 3 — a pure function of the
// global run index, so stratified campaigns shard, stop and replay
// exactly like uniform ones.
//
// Only plans over the full register file stratify; a plan that already
// restricts Fields has chosen its own stratum and is refused.
func StratifyPlan(p *TestPlan) ([]*TestPlan, error) {
	if p == nil {
		return nil, fmt.Errorf("core: no plan to stratify")
	}
	if len(p.Fields) != 0 && !sameFields(p.Fields, GPRFields) {
		return nil, fmt.Errorf("core: plan %s restricts its field set to %d registers — stratification needs the full register file", p.Name, len(p.Fields))
	}
	strata := [][]armv7.Field{ArgFields, CalleeSavedFields, stratumControl}
	out := make([]*TestPlan, len(strata))
	for i, fs := range strata {
		v := *p
		v.Fields = fs
		out[i] = &v
	}
	return out, nil
}
