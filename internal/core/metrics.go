package core

import "github.com/dessertlab/certify/internal/obs"

// Flight-recorder instrumentation for the experiment hot path. Naming
// follows certify_<layer>_<what>_<unit> (see DESIGN.md "Observability &
// flight recorder"). Everything here is out-of-band: the metrics read
// wall clocks and engine telemetry, never run state, so instrumented
// campaigns stay bit-identical to uninstrumented ones (pinned by
// TestInstrumentationIsOutOfBand in internal/dist).
var (
	metRunsTotal = obs.Default.NewCounter(
		"certify_core_runs_total",
		"Experiment runs completed (all verdicts).")
	metRunDuration = obs.Default.NewHistogram(
		"certify_core_run_duration_seconds",
		"Wall time of one experiment run, machine acquisition included.",
		obs.LatencyBuckets)
	metSimEvents = obs.Default.NewCounter(
		"certify_core_sim_events_total",
		"Simulation events delivered across all runs.")
	metSimEventsPerRun = obs.Default.NewHistogram(
		"certify_core_sim_events_per_run",
		"Simulation events delivered in one run.",
		obs.ExpBuckets(256, 4, 12))

	metPoolGet = obs.Default.NewHistogram(
		"certify_pool_get_seconds",
		"MachinePool.Get latency (deep reset or cold build included).",
		obs.LatencyBuckets)
	metPoolPut = obs.Default.NewHistogram(
		"certify_pool_put_seconds",
		"MachinePool.Put latency.",
		obs.LatencyBuckets)
	metDeepReset = obs.Default.NewHistogram(
		"certify_pool_deep_reset_seconds",
		"Machine.DeepReset latency on the pool and scratch warm paths.",
		obs.LatencyBuckets)
	metPoolColdBuilds = obs.Default.NewCounter(
		"certify_pool_cold_builds_total",
		"Pool Gets that built a machine cold (pool empty).")
	metPoolReuses = obs.Default.NewCounter(
		"certify_pool_reuses_total",
		"Pool Gets answered by deep-resetting a warm machine.")

	metScratchReuses = obs.Default.NewCounter(
		"certify_core_scratch_reuses_total",
		"Runs that deep-reset a per-worker scratch machine.")
	metScratchColdBuilds = obs.Default.NewCounter(
		"certify_core_scratch_cold_builds_total",
		"Runs that built a machine cold (first scratch use or no reuse).")

	metSnapshotRestore = obs.Default.NewHistogram(
		"certify_core_snapshot_restore_seconds",
		"Machine.Restore latency when answered from a post-boot snapshot.",
		obs.LatencyBuckets)
	metPagesDirtied = obs.Default.NewCounter(
		"certify_core_snapshot_pages_dirtied_total",
		"RAM pages the preceding run touched, summed over snapshot restores.")
	metPagesRestored = obs.Default.NewCounter(
		"certify_core_snapshot_pages_restored_total",
		"RAM pages copied back from post-boot snapshot images.")
	metPoolDrops = obs.Default.NewCounter(
		"certify_pool_tainted_drops_total",
		"Machines dropped at MachinePool.Put because the run ended in a sim-fault or machine wedge.")
)
