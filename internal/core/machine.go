// Package core is the paper's contribution: the fault-injection testing
// framework for assessing a partitioning hypervisor as an ISO 26262
// Safety Element out of Context (SEooC). It provides the bit-flip fault
// models, the intensity levels and occurrence control of the paper's test
// plans, the experiment runner and campaign orchestration, the outcome
// classifier that reads the serial captures the way the paper's analytics
// did, and the SEooC evidence report generator.
package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/guest/freertos"
	"github.com/dessertlab/certify/internal/guest/rootlinux"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// Machine is one fully assembled experiment target: the Banana Pi board,
// the hypervisor, root Linux and the FreeRTOS cell with the paper's
// workload.
type Machine struct {
	Board *board.Board
	HV    *jailhouse.Hypervisor
	Linux *rootlinux.Linux
	RTOS  *freertos.Kernel

	// CellID of the FreeRTOS cell.
	CellID uint32

	// rtosArena recycles FreeRTOS kernels across deep resets (and across
	// the E1 recreate loop's cycles within one run): each boot draws
	// kernels from the arena in order, deep-resetting recycled ones, so a
	// warm machine re-creates its cell workload without reallocating task
	// control blocks. rtosNext is the next arena slot to hand out.
	rtosArena []*freertos.Kernel
	rtosNext  int

	// simFault records a Go panic recovered during Run — a defect in the
	// simulation itself, surfaced as a truthful sim-fault outcome instead
	// of killing the campaign worker.
	simFault string

	// snapshots holds one post-boot image per MachineOptions profile
	// (options minus seed and scratch). Restore rewinds the machine from
	// the image instead of replaying the boot path — the snapshot-fork
	// mechanism MachinePool and the warm scratch path ride on. Snapshots
	// reference this machine's own objects (cells, kernels, scheduled
	// closures) and must never be shared across machines.
	snapshots map[profileKey]*machineSnapshot
}

// profileKey identifies a boot profile: every MachineOptions field that
// shapes the post-boot state. Seed is excluded — boot draws nothing from
// the RNG, so one image serves every seed (restore reseeds) — and so is
// Scratch, which only selects buffer recycling.
type profileKey struct {
	skipCellStart   bool
	recreateLoop    bool
	recreatePeriod  sim.Time
	delayedCreate   bool
	delayedCreateAt sim.Time
	stateWatchdog   bool
	leanCapture     bool
	traceRecords    int
	traceArgs       int
}

func profileOf(opts MachineOptions) profileKey {
	return profileKey{
		skipCellStart:   opts.SkipCellStart,
		recreateLoop:    opts.RecreateLoop,
		recreatePeriod:  opts.RecreatePeriod,
		delayedCreate:   opts.DelayedCreate,
		delayedCreateAt: opts.DelayedCreateAt,
		stateWatchdog:   opts.StateWatchdog,
		leanCapture:     opts.LeanCapture,
		traceRecords:    opts.TraceRecords,
		traceArgs:       opts.TraceArgs,
	}
}

// machineSnapshot composes the per-layer images of one post-boot state.
type machineSnapshot struct {
	board    *board.Snapshot
	hv       *jailhouse.Snapshot
	linux    *rootlinux.Snapshot
	rtos     *freertos.Kernel // the kernel bound at capture (nil if none yet)
	rtosSnap freertos.KernelSnapshot
	rtosNext int
	cellID   uint32
}

// MachineOptions tunes the assembly.
type MachineOptions struct {
	// Seed drives every random decision in the run.
	Seed uint64
	// SkipCellStart leaves the FreeRTOS cell created-but-not-started
	// (used by plans that inject into the start path itself).
	SkipCellStart bool
	// RecreateLoop arms the E1 management workload: the root cell
	// destroys and recreates the FreeRTOS cell every RecreatePeriod.
	RecreateLoop   bool
	RecreatePeriod sim.Time
	// DelayedCreate postpones the single cell create/load/start by
	// DelayedCreateAt (default 2 s) — the E2 workload, where the
	// injector is already armed when the bring-up happens.
	DelayedCreate   bool
	DelayedCreateAt sim.Time
	// StateWatchdog arms the periodic "jailhouse cell state" probe.
	StateWatchdog bool
	// Scratch, when non-nil, recycles the engine (event slab, heap,
	// trace) and UART buffers of a previous build — the campaign
	// workers' machine-reuse path. Never share between goroutines.
	// Ignored by Machine.DeepReset, which reuses the machine's own
	// buffers wholesale.
	Scratch *RunScratch
	// LeanCapture disables the UARTs' raw byte logs; line capture (the
	// classifier's channel) is unaffected. Set by Distribution mode.
	LeanCapture bool
	// TraceRecords/TraceArgs pre-size the engine's trace arenas — the
	// plan-profile hint from TraceBudget. Zero leaves the arenas to
	// grow by appending; campaign runs set both via RunExperimentOpts.
	TraceRecords int
	TraceArgs    int
}

// RunScratch carries the reusable state one campaign worker threads
// through consecutive runs: the board's heavy buffers for the first
// (cold) build, and after that the warm machine itself, which later runs
// deep-reset instead of rebuilding. Never share between goroutines.
type RunScratch struct {
	board   board.Scratch
	machine *Machine
}

// NewRunScratch returns an empty scratch; the first run through it
// builds cold and parks its machine here, every following run deep-resets
// that machine.
func NewRunScratch() *RunScratch { return &RunScratch{} }

// DefaultMachineOptions returns the configuration of the paper's main
// workload: cell started, state watchdog on.
func DefaultMachineOptions(seed uint64) MachineOptions {
	return MachineOptions{Seed: seed, StateWatchdog: true}
}

// BuildMachine boots the full stack: board power-on, root Linux boot,
// hypervisor enable, FreeRTOS cell create/load/start. The returned
// machine is ready for its engine to run the experiment horizon.
func BuildMachine(opts MachineOptions) (*Machine, error) {
	bopts := board.Options{
		NoByteCapture:   opts.LeanCapture,
		TraceRecordHint: opts.TraceRecords,
		TraceArgHint:    opts.TraceArgs,
	}
	if opts.Scratch != nil {
		bopts.Scratch = &opts.Scratch.board
	}
	brd := board.NewWithOptions(opts.Seed, bopts)
	hv := jailhouse.New(brd)
	linux := rootlinux.New(hv)
	m := &Machine{Board: brd, HV: hv, Linux: linux}
	if err := m.boot(opts); err != nil {
		return nil, err
	}
	return m, nil
}

// DeepReset restores every layer of the machine — engine, board
// peripherals, hypervisor, both guests — to its power-on-equivalent
// state in place and replays the boot flow for the new options. The
// result must be observably indistinguishable from BuildMachine with the
// same options: same trace, same transcripts, same classification for
// any subsequent run. The differential determinism suite
// (warmpool_test.go) and the state-digest property test hold it to that
// promise; MachinePool and RunScratch reuse ride on it.
//
// opts.Scratch is ignored: a warm machine recycles its own buffers.
func (m *Machine) DeepReset(opts MachineOptions) error {
	m.Board.DeepReset(opts.Seed, board.Options{
		NoByteCapture:   opts.LeanCapture,
		TraceRecordHint: opts.TraceRecords,
		TraceArgHint:    opts.TraceArgs,
	})
	m.HV.DeepReset()
	m.Linux.DeepReset()
	m.RTOS = nil
	m.CellID = 0
	m.rtosNext = 0
	m.simFault = ""
	return m.boot(opts)
}

// newRTOS hands out the next FreeRTOS kernel for a cell load: a recycled
// arena kernel (deep-reset, workload re-installed) when one is free, a
// freshly built one otherwise. The choice is invisible to the
// simulation — a deep-reset kernel is state-identical to a new one.
func (m *Machine) newRTOS() *freertos.Kernel {
	if m.rtosNext < len(m.rtosArena) {
		k := m.rtosArena[m.rtosNext]
		m.rtosNext++
		k.DeepReset(1)
		k.InstallPaperWorkload()
		return k
	}
	k := freertos.NewPaperWorkload(m.HV, 1)
	m.rtosArena = append(m.rtosArena, k)
	m.rtosNext = len(m.rtosArena)
	return k
}

// boot runs the bring-up flow on a pristine (fresh or deep-reset) stack:
// hypervisor enable, root Linux boot, then the cell lifecycle the
// options select. It is the single boot path for cold and warm builds,
// which is what makes warm==cold a structural property rather than a
// maintained coincidence.
func (m *Machine) boot(opts MachineOptions) error {
	if err := m.Linux.HypervisorEnable(jailhouse.DefaultSystemConfig()); err != nil {
		return fmt.Errorf("enable: %w", err)
	}
	m.Linux.Boot(0)

	cfg := jailhouse.FreeRTOSCellConfig()

	if opts.RecreateLoop {
		period := opts.RecreatePeriod
		if period <= 0 {
			period = 5 * sim.Second
		}
		m.Linux.StartRecreateLoop(cfg, func() jailhouse.Inmate {
			k := m.newRTOS()
			m.RTOS = k
			return k
		}, period)
		if opts.StateWatchdog {
			m.Linux.StartStateWatchdog(0) // follows the current cycle's cell
		}
		return nil
	}

	if opts.DelayedCreate {
		at := opts.DelayedCreateAt
		if at <= 0 {
			at = 2 * sim.Second
		}
		m.Board.Engine.Schedule(at, func() {
			if err := m.Linux.CellCreate(cfg); err != nil {
				return // tool error already on the console
			}
			m.CellID = m.Linux.CellID
			m.RTOS = m.newRTOS()
			if err := m.Linux.CellLoad(m.CellID, inmateImage(), m.RTOS); err != nil {
				return
			}
			if err := m.Linux.CellStart(m.CellID); err != nil {
				return
			}
			if opts.StateWatchdog {
				m.Linux.StartStateWatchdog(m.CellID)
			}
		})
		return nil
	}

	if err := m.Linux.CellCreate(cfg); err != nil {
		return fmt.Errorf("cell create: %w", err)
	}
	m.CellID = m.Linux.CellID
	m.RTOS = m.newRTOS()
	if err := m.Linux.CellLoad(m.CellID, inmateImage(), m.RTOS); err != nil {
		return fmt.Errorf("cell load: %w", err)
	}
	if !opts.SkipCellStart {
		if err := m.Linux.CellStart(m.CellID); err != nil {
			return fmt.Errorf("cell start: %w", err)
		}
	}
	if opts.StateWatchdog {
		m.Linux.StartStateWatchdog(m.CellID)
	}
	return nil
}

// Tainted reports whether the machine may carry corrupted layer state: a
// recovered Go panic (sim-fault) left the simulation mid-mutation, and a
// machine wedge left an event storm mid-flight. Such machines must not
// be parked in a pool or warm-reused; callers rebuild cold instead.
func (m *Machine) Tainted() bool {
	if m.simFault != "" {
		return true
	}
	halted, msg := m.Board.Engine.Halted()
	return halted && strings.HasPrefix(msg, "machine wedge")
}

// CaptureSnapshot stores the machine's current state as the post-boot
// image for the given options' profile. Must be called on a freshly
// booted machine, before its first Run — the FreeRTOS capture relies on
// no task slice having executed yet.
func (m *Machine) CaptureSnapshot(opts MachineOptions) {
	if m.snapshots == nil {
		m.snapshots = make(map[profileKey]*machineSnapshot)
	}
	s := &machineSnapshot{
		board:    m.Board.CaptureSnapshot(),
		hv:       m.HV.CaptureSnapshot(),
		linux:    m.Linux.CaptureSnapshot(),
		rtos:     m.RTOS,
		rtosNext: m.rtosNext,
		cellID:   m.CellID,
	}
	if m.RTOS != nil {
		s.rtosSnap = m.RTOS.CaptureSnapshot()
	}
	m.snapshots[profileOf(opts)] = s
}

// Restore brings the machine back to the post-boot state for opts: from
// the profile's snapshot when one exists (copying back only dirtied RAM
// pages and the captured control blocks — no boot replay), falling back
// to a full DeepReset otherwise. The first reset of a new profile
// captures its image, so every later Restore of that profile is cheap.
// A tainted machine (sim-fault, machine wedge) always deep-resets and
// never captures — its state is not trusted as a snapshot source. The
// observable result must be indistinguishable from BuildMachine with the
// same options; warmpool_test.go's differential suites hold it to that.
func (m *Machine) Restore(opts MachineOptions) error {
	s := m.snapshots[profileOf(opts)]
	if s == nil || m.Tainted() {
		if err := m.DeepReset(opts); err != nil {
			return err
		}
		if s == nil {
			m.CaptureSnapshot(opts)
		}
		return nil
	}
	start := time.Now()
	dirtied, restored := m.Board.RestoreSnapshot(s.board, opts.Seed)
	m.HV.RestoreSnapshot(s.hv)
	m.Linux.RestoreSnapshot(s.linux)
	m.RTOS = s.rtos
	if s.rtos != nil {
		s.rtos.RestoreSnapshot(s.rtosSnap)
	}
	m.rtosNext = s.rtosNext
	m.CellID = s.cellID
	m.simFault = ""
	metSnapshotRestore.ObserveSince(start)
	metPagesDirtied.Add(uint64(dirtied))
	metPagesRestored.Add(uint64(restored))
	return nil
}

// inmateImage produces the opaque "freertos.bin" bytes the tool writes
// into the loadable region — content is irrelevant to the model but the
// write path (root access to the loadable window) is exercised.
func inmateImage() []byte {
	img := make([]byte, 4096)
	copy(img, "FREERTOS-INMATE-IMAGE v10.4.3")
	return img
}

// Run executes the machine for the given virtual duration. A halted
// engine (hypervisor panic_stop) is not an error at this level — it is
// an experiment outcome. A Go panic escaping the event loop — the
// simulation itself failing under an injected fault — is recovered here,
// halts the engine, and classifies as sim-fault: one bad run must never
// kill a shard worker or poison a campaign aggregate.
func (m *Machine) Run(d sim.Time) {
	defer func() {
		if r := recover(); r != nil {
			m.simFault = fmt.Sprintf("%v", r)
			m.Board.Engine.Halt("sim fault: " + m.simFault)
		}
	}()
	_ = m.Board.Engine.Run(m.Board.Now() + d)
}

// SimFault returns the recovered panic message of a simulation fault
// during Run, or "" for a healthy run.
func (m *Machine) SimFault() string { return m.simFault }
