// Package core is the paper's contribution: the fault-injection testing
// framework for assessing a partitioning hypervisor as an ISO 26262
// Safety Element out of Context (SEooC). It provides the bit-flip fault
// models, the intensity levels and occurrence control of the paper's test
// plans, the experiment runner and campaign orchestration, the outcome
// classifier that reads the serial captures the way the paper's analytics
// did, and the SEooC evidence report generator.
package core

import (
	"fmt"

	"github.com/dessertlab/certify/internal/board"
	"github.com/dessertlab/certify/internal/guest/freertos"
	"github.com/dessertlab/certify/internal/guest/rootlinux"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// Machine is one fully assembled experiment target: the Banana Pi board,
// the hypervisor, root Linux and the FreeRTOS cell with the paper's
// workload.
type Machine struct {
	Board *board.Board
	HV    *jailhouse.Hypervisor
	Linux *rootlinux.Linux
	RTOS  *freertos.Kernel

	// CellID of the FreeRTOS cell.
	CellID uint32
}

// MachineOptions tunes the assembly.
type MachineOptions struct {
	// Seed drives every random decision in the run.
	Seed uint64
	// SkipCellStart leaves the FreeRTOS cell created-but-not-started
	// (used by plans that inject into the start path itself).
	SkipCellStart bool
	// RecreateLoop arms the E1 management workload: the root cell
	// destroys and recreates the FreeRTOS cell every RecreatePeriod.
	RecreateLoop   bool
	RecreatePeriod sim.Time
	// DelayedCreate postpones the single cell create/load/start by
	// DelayedCreateAt (default 2 s) — the E2 workload, where the
	// injector is already armed when the bring-up happens.
	DelayedCreate   bool
	DelayedCreateAt sim.Time
	// StateWatchdog arms the periodic "jailhouse cell state" probe.
	StateWatchdog bool
	// Scratch, when non-nil, recycles the engine (event slab, heap,
	// trace) and UART buffers of a previous build — the campaign
	// workers' machine-reuse path. Never share between goroutines.
	Scratch *RunScratch
	// LeanCapture disables the UARTs' raw byte logs; line capture (the
	// classifier's channel) is unaffected. Set by Distribution mode.
	LeanCapture bool
}

// RunScratch carries the reusable buffers one campaign worker threads
// through consecutive machine builds.
type RunScratch struct {
	board board.Scratch
}

// NewRunScratch returns an empty scratch; buffers materialise on first
// use and are recycled on every following build.
func NewRunScratch() *RunScratch { return &RunScratch{} }

// DefaultMachineOptions returns the configuration of the paper's main
// workload: cell started, state watchdog on.
func DefaultMachineOptions(seed uint64) MachineOptions {
	return MachineOptions{Seed: seed, StateWatchdog: true}
}

// BuildMachine boots the full stack: board power-on, root Linux boot,
// hypervisor enable, FreeRTOS cell create/load/start. The returned
// machine is ready for its engine to run the experiment horizon.
func BuildMachine(opts MachineOptions) (*Machine, error) {
	bopts := board.Options{NoByteCapture: opts.LeanCapture}
	if opts.Scratch != nil {
		bopts.Scratch = &opts.Scratch.board
	}
	brd := board.NewWithOptions(opts.Seed, bopts)
	hv := jailhouse.New(brd)
	linux := rootlinux.New(hv)

	if err := linux.HypervisorEnable(jailhouse.DefaultSystemConfig()); err != nil {
		return nil, fmt.Errorf("enable: %w", err)
	}
	linux.Boot(0)

	m := &Machine{Board: brd, HV: hv, Linux: linux}
	cfg := jailhouse.FreeRTOSCellConfig()

	if opts.RecreateLoop {
		period := opts.RecreatePeriod
		if period <= 0 {
			period = 5 * sim.Second
		}
		linux.StartRecreateLoop(cfg, func() jailhouse.Inmate {
			k := freertos.NewPaperWorkload(hv, 1)
			m.RTOS = k
			return k
		}, period)
		if opts.StateWatchdog {
			linux.StartStateWatchdog(0) // follows the current cycle's cell
		}
		return m, nil
	}

	if opts.DelayedCreate {
		at := opts.DelayedCreateAt
		if at <= 0 {
			at = 2 * sim.Second
		}
		brd.Engine.Schedule(at, func() {
			if err := linux.CellCreate(cfg); err != nil {
				return // tool error already on the console
			}
			m.CellID = linux.CellID
			m.RTOS = freertos.NewPaperWorkload(hv, 1)
			if err := linux.CellLoad(m.CellID, inmateImage(), m.RTOS); err != nil {
				return
			}
			if err := linux.CellStart(m.CellID); err != nil {
				return
			}
			if opts.StateWatchdog {
				linux.StartStateWatchdog(m.CellID)
			}
		})
		return m, nil
	}

	if err := linux.CellCreate(cfg); err != nil {
		return nil, fmt.Errorf("cell create: %w", err)
	}
	m.CellID = linux.CellID
	m.RTOS = freertos.NewPaperWorkload(hv, 1)
	if err := linux.CellLoad(m.CellID, inmateImage(), m.RTOS); err != nil {
		return nil, fmt.Errorf("cell load: %w", err)
	}
	if !opts.SkipCellStart {
		if err := linux.CellStart(m.CellID); err != nil {
			return nil, fmt.Errorf("cell start: %w", err)
		}
	}
	if opts.StateWatchdog {
		linux.StartStateWatchdog(m.CellID)
	}
	return m, nil
}

// inmateImage produces the opaque "freertos.bin" bytes the tool writes
// into the loadable region — content is irrelevant to the model but the
// write path (root access to the loadable window) is exercised.
func inmateImage() []byte {
	img := make([]byte, 4096)
	copy(img, "FREERTOS-INMATE-IMAGE v10.4.3")
	return img
}

// Run executes the machine for the given virtual duration. A halted
// engine (hypervisor panic_stop) is not an error at this level — it is
// an experiment outcome.
func (m *Machine) Run(d sim.Time) {
	_ = m.Board.Engine.Run(m.Board.Now() + d)
}
