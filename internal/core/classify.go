package core

import (
	"fmt"
	"strings"

	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
	"github.com/dessertlab/certify/internal/uart"
)

// Outcome is the classifier's verdict for one run, using the paper's
// taxonomy (§III and Figure 3) plus the latent-degradation class.
type Outcome int

// Outcomes, ordered by severity for reporting.
const (
	// OutcomeCorrect: the cell behaved correctly for the whole run.
	OutcomeCorrect Outcome = iota + 1
	// OutcomeSilentDegradation: system alive and producing output, but
	// a latent deviation exists (task asserts, sequence errors).
	OutcomeSilentDegradation
	// OutcomeInvalidArgs: a management hypercall was rejected with a
	// negative errno; the cell was not allocated. The paper's E1 result
	// — a correct, safe failure.
	OutcomeInvalidArgs
	// OutcomeInconsistent: the hypervisor reports the cell RUNNING but
	// the cell is broken — CPU never online, or console dead. E2.
	OutcomeInconsistent
	// OutcomeCPUPark: cpu_park() fired; the cell's core is parked, the
	// rest of the system is untouched. Figure 3's "CPU park".
	OutcomeCPUPark
	// OutcomePanicPark: the fault propagated system-wide — hypervisor
	// panic_stop or root kernel panic. Figure 3's "panic park".
	OutcomePanicPark
	// OutcomeHypervisorTrap: the fault corrupted hypervisor-private state
	// and the hypervisor itself took an internal HYP-mode trap — caught
	// by its vector, offending CPU parked, machine alive.
	OutcomeHypervisorTrap
	// OutcomeMachineWedge: the machine stopped making progress — the
	// engine's bounded-progress watchdog tripped on a livelocked event
	// loop (e.g. an interrupt storm the system could not shed).
	OutcomeMachineWedge
	// OutcomeSimFault: the *simulation* failed — a recovered Go panic
	// during the run. Not a verdict about the hypervisor; recorded
	// truthfully so defective runs are visible instead of fatal.
	OutcomeSimFault
	numOutcomes
)

var outcomeNames = map[Outcome]string{
	OutcomeCorrect:           "correct",
	OutcomeSilentDegradation: "silent-degradation",
	OutcomeInvalidArgs:       "invalid-arguments",
	OutcomeInconsistent:      "inconsistent",
	OutcomeCPUPark:           "cpu-park",
	OutcomePanicPark:         "panic-park",
	OutcomeHypervisorTrap:    "hypervisor-trap",
	OutcomeMachineWedge:      "machine-wedge",
	OutcomeSimFault:          "sim-fault",
}

// String implements fmt.Stringer.
func (o Outcome) String() string {
	if s, ok := outcomeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// AllOutcomes lists the classifier's classes in reporting order.
func AllOutcomes() []Outcome {
	out := make([]Outcome, 0, int(numOutcomes)-1)
	for o := OutcomeCorrect; o < numOutcomes; o++ {
		out = append(out, o)
	}
	return out
}

// Verdict is the classifier's full answer: outcome plus the evidence
// lines a certification dossier needs.
type Verdict struct {
	Outcome  Outcome
	Evidence []string
}

// livenessWindow is how recently the cell console must have spoken for
// the cell to count as alive at the end of a run (four blink periods).
const livenessWindow = 2 * sim.Second

// Classify reads the machine's post-run state — exactly the artefacts
// the paper's rig collected: serial transcripts, hypervisor console,
// final cell and CPU states — and renders the verdict.
func Classify(m *Machine) Verdict {
	var ev []string
	addf := func(format string, args ...any) {
		ev = append(ev, fmt.Sprintf(format, args...))
	}

	// 0. Simulation fault: a recovered Go panic during the run. The
	// machine state below it is unreliable, so this verdict comes first
	// and is never mistaken for a hypervisor failure mode.
	if why := m.SimFault(); why != "" {
		addf("simulation fault (recovered Go panic): %s", why)
		return Verdict{Outcome: OutcomeSimFault, Evidence: ev}
	}

	// 1. System-wide death: hypervisor panic_stop, a wedged (livelocked)
	// machine, or a root kernel panic.
	if panicked, why := m.HV.Panicked(); panicked {
		addf("hypervisor panic_stop: %s", why)
		return Verdict{Outcome: OutcomePanicPark, Evidence: ev}
	}
	if halted, why := m.Board.Engine.Halted(); halted {
		if strings.HasPrefix(why, "machine wedge") {
			addf("bounded-progress watchdog: %s", why)
			return Verdict{Outcome: OutcomeMachineWedge, Evidence: ev}
		}
		addf("machine halted: %s", why)
		return Verdict{Outcome: OutcomePanicPark, Evidence: ev}
	}
	if m.Board.UART0.Contains("Kernel panic - not syncing") {
		addf("root console shows kernel panic")
		return Verdict{Outcome: OutcomePanicPark, Evidence: ev}
	}
	if m.Linux != nil {
		if panicked, why := m.Linux.Panicked(); panicked {
			addf("root kernel dead: %s", why)
			return Verdict{Outcome: OutcomePanicPark, Evidence: ev}
		}
	}

	// 1b. Internal hypervisor trap: corrupted firmware reached in a
	// handler, caught by the HYP vector. The offending CPU is parked as a
	// consequence, so this check precedes the generic park branch.
	if n := m.HV.HypTraps(); n > 0 {
		addf("%d internal HYP-mode trap(s); hypervisor caught them and parked the CPU", n)
		return Verdict{Outcome: OutcomeHypervisorTrap, Evidence: ev}
	}

	// 2. Parked non-root CPU. If the cell had produced workload output
	// since its last start, this is the cleanly contained "CPU park" of
	// Figure 3; if the cell never spoke, it was parked during bring-up
	// and the observable state is E2's "non-executable cell, blank
	// USART, reported running" inconsistency.
	for cpu := 0; cpu < len(m.Board.CPUs); cpu++ {
		p := m.HV.PerCPU(cpu)
		if p == nil || !p.Parked {
			continue
		}
		addf("cpu%d parked: %s", cpu, p.ParkReason)
		spokeAfterStart := false
		if m.Linux != nil {
			m.Board.UART7.ScanLinesAfter(m.Linux.LastStartAt, func(l uart.Line) bool {
				if strings.Contains(l.Text, "[") { // any workload line
					spokeAfterStart = true
					return false
				}
				return true
			})
		}
		if spokeAfterStart {
			return Verdict{Outcome: OutcomeCPUPark, Evidence: ev}
		}
		addf("cell never produced output after start: non-executable state")
		return Verdict{Outcome: OutcomeInconsistent, Evidence: ev}
	}

	cell, cellExists := m.HV.CellByName("freertos-cell")

	// 3. Management rejection: the tool printed an errno and the cell
	// is absent — the paper's "invalid arguments, cell not allocated".
	rejections := countToolFailures(m)
	if rejections > 0 && !cellExists {
		addf("%d management call(s) rejected; cell not allocated", rejections)
		return Verdict{Outcome: OutcomeInvalidArgs, Evidence: ev}
	}

	// 4. Inconsistency: cell claims RUNNING while broken.
	if cellExists && cell.State == jailhouse.CellRunning {
		online := false
		for _, cpu := range cell.CPUList() {
			if p := m.HV.PerCPU(cpu); p != nil && p.OnlineInCell {
				online = true
			}
		}
		last, spoke := m.Board.UART7.LastActivity()
		alive := spoke && m.Board.Now()-last <= livenessWindow
		switch {
		case !online:
			addf("cell RUNNING but its CPU never came online (blank USART)")
			return Verdict{Outcome: OutcomeInconsistent, Evidence: ev}
		case !alive:
			if spoke {
				addf("cell RUNNING but console silent since %v", last)
			} else {
				addf("cell RUNNING with completely blank USART")
			}
			if m.RTOS != nil {
				if halted, why := m.RTOS.Halted(); halted {
					addf("guest kernel halted: %s", why)
				}
			}
			return Verdict{Outcome: OutcomeInconsistent, Evidence: ev}
		}
	}

	// 5. Alive: correct or latently degraded.
	if m.RTOS != nil {
		if asserted := m.RTOS.AssertedTasks(); len(asserted) > 0 {
			addf("alive but degraded: asserted tasks %v", asserted)
			return Verdict{Outcome: OutcomeSilentDegradation, Evidence: ev}
		}
	}
	if m.Board.UART7.Contains("ASSERT") {
		addf("alive but assert messages on cell console")
		return Verdict{Outcome: OutcomeSilentDegradation, Evidence: ev}
	}
	if rejections > 0 {
		// Rejected management calls but the cell came up on a later
		// cycle — still the safe-failure signature.
		addf("%d management call(s) rejected before a clean cycle", rejections)
		return Verdict{Outcome: OutcomeInvalidArgs, Evidence: ev}
	}

	addf("cell alive until horizon; no deviations observed")
	return Verdict{Outcome: OutcomeCorrect, Evidence: ev}
}

// countToolFailures counts the root tool's errno lines on UART0.
func countToolFailures(m *Machine) int {
	n := 0
	m.Board.UART0.ScanLines(func(l uart.Line) bool {
		if strings.Contains(l.Text, "jailhouse:") && strings.Contains(l.Text, "failed") {
			n++
		}
		return true
	})
	return n
}
