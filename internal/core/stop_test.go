package core

import (
	"context"
	"sync"
	"testing"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/sim"
)

// shortFig3 shortens the Figure-3 plan so an adaptive-driver test run
// costs a fraction of the paper's minute.
func shortFig3() *TestPlan {
	p := *PlanE3Fig3()
	p.Duration = 5 * sim.Second
	p.Name = "E3-stop"
	return &p
}

// countStop is a trivial pure StopPolicy for driver tests: fire after
// exactly k observations. Implemented here because core cannot import
// the real CI policy (internal/analytics) without a cycle.
type countStop struct{ k, n int }

func (p *countStop) Reset() { p.n = 0 }
func (p *countStop) Observe(index int, o Outcome) bool {
	p.n++
	return p.n >= p.k
}

// collectHashes runs a campaign and returns per-index trace hashes and
// outcomes as the streaming hook saw them, plus the hook's call order.
func collectHashes(t *testing.T, c *Campaign) (*CampaignResult, map[int]uint64, map[int]Outcome, []int) {
	t.Helper()
	var mu sync.Mutex
	hashes := make(map[int]uint64)
	outcomes := make(map[int]Outcome)
	var order []int
	c.OnRun = func(index int, r *RunResult) {
		mu.Lock()
		hashes[index] = r.TraceHash
		outcomes[index] = r.Outcome()
		order = append(order, index)
		mu.Unlock()
	}
	res, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, hashes, outcomes, order
}

// TestAdaptiveCampaignIsCertifiedPrefix is the core of the adaptive
// engine's contract: a stopped campaign is bit-identical to the first K
// runs of the full campaign — same trace hashes, same outcomes, same
// aggregate — with the streaming hook called exactly once per certified
// index, in strict index order, regardless of worker parallelism.
func TestAdaptiveCampaignIsCertifiedPrefix(t *testing.T) {
	plan := shortFig3()
	const n, k = 12, 5
	full, fullHashes, fullOutcomes, _ := collectHashes(t, &Campaign{
		Plan: plan, Runs: n, MasterSeed: 2022, Workers: 1,
	})
	if full.Stop != nil {
		t.Fatal("fixed-N campaign must not carry a stop decision")
	}

	adaptive := &Campaign{
		Plan: plan, Runs: n, MasterSeed: 2022, Workers: 4,
		Stop: &countStop{k: k},
	}
	res, hashes, outcomes, order := collectHashes(t, adaptive)
	if res.Stop == nil || !res.Stop.Fired || res.Stop.DecidedAt != k {
		t.Fatalf("stop decision = %+v, want fired at %d", res.Stop, k)
	}
	if res.Total() != k {
		t.Fatalf("aggregate holds %d runs, want the %d-run certified prefix", res.Total(), k)
	}
	if len(order) != k {
		t.Fatalf("OnRun called %d times, want %d", len(order), k)
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("OnRun call %d delivered index %d — adaptive commits must be in index order", i, idx)
		}
		if hashes[i] != fullHashes[i] {
			t.Fatalf("run %d: adaptive trace hash %#x != full campaign %#x", i, hashes[i], fullHashes[i])
		}
		if outcomes[i] != fullOutcomes[i] {
			t.Fatalf("run %d: adaptive outcome %s != full campaign %s", i, outcomes[i], fullOutcomes[i])
		}
	}
	// The aggregate equals a refold of the full campaign's first K runs.
	for _, o := range AllOutcomes() {
		want := 0
		for i := 0; i < k; i++ {
			if fullOutcomes[i] == o {
				want++
			}
		}
		if res.Count(o) != want {
			t.Fatalf("%s: adaptive count %d, prefix refold %d", o, res.Count(o), want)
		}
	}
}

// TestAdaptiveCampaignMaxNGuard: a policy that never fires runs the
// full N and records a not-fired decision at N — distinguishable from
// both a fixed-N campaign (nil) and a genuine stop.
func TestAdaptiveCampaignMaxNGuard(t *testing.T) {
	plan := shortFig3()
	const n = 6
	fixed, fixedHashes, _, _ := collectHashes(t, &Campaign{Plan: plan, Runs: n, MasterSeed: 7, Workers: 1})
	res, hashes, _, _ := collectHashes(t, &Campaign{
		Plan: plan, Runs: n, MasterSeed: 7, Workers: 3,
		Stop: &countStop{k: n + 1000},
	})
	if res.Stop == nil || res.Stop.Fired || res.Stop.DecidedAt != n {
		t.Fatalf("stop decision = %+v, want not-fired at %d", res.Stop, n)
	}
	if res.Total() != fixed.Total() {
		t.Fatalf("guard campaign ran %d, fixed ran %d", res.Total(), fixed.Total())
	}
	for i := 0; i < n; i++ {
		if hashes[i] != fixedHashes[i] {
			t.Fatalf("run %d: guard hash %#x != fixed %#x", i, hashes[i], fixedHashes[i])
		}
	}
	// A policy that fires exactly at N: every run executed, yet the
	// decision records Fired — the prefix [0, N) is certified by the
	// policy, not the guard.
	res, _, _, _ = collectHashes(t, &Campaign{
		Plan: plan, Runs: n, MasterSeed: 7, Workers: 3,
		Stop: &countStop{k: n},
	})
	if res.Stop == nil || res.Stop.Fired || res.Stop.DecidedAt != n {
		t.Fatalf("exact-N decision = %+v, want not-fired at %d (records == window convention)", res.Stop, n)
	}
}

func TestStratifyPlanPartition(t *testing.T) {
	strata, err := StratifyPlan(shortFig3())
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 3 {
		t.Fatalf("got %d strata, want 3", len(strata))
	}
	// The strata partition the full 16-register file exactly.
	seen := make(map[armv7.Field]int)
	for _, s := range strata {
		for _, f := range s.Fields {
			seen[f]++
		}
	}
	if len(seen) != len(GPRFields) {
		t.Fatalf("strata cover %d fields, want %d", len(seen), len(GPRFields))
	}
	for _, f := range GPRFields {
		if seen[f] != 1 {
			t.Fatalf("field %d appears %d times across strata, want exactly once", f, seen[f])
		}
	}
	// A plan that already restricts its fields has chosen its stratum.
	restricted := shortFig3()
	restricted.Fields = ArgFields
	if _, err := StratifyPlan(restricted); err == nil {
		t.Fatal("restricted plan stratified")
	}
	if _, err := StratifyPlan(nil); err == nil {
		t.Fatal("nil plan stratified")
	}
}

// TestStratifiedCampaignShardInvariance: stratum selection is a pure
// function of the global run index (i mod 3), so every injection in run
// i draws from stratum i mod 3, and a stratified campaign split at an
// arbitrary offset reproduces the serial runs bit for bit — the
// property that lets stratified campaigns shard and stop like uniform
// ones. Uses the full paper-duration plan so injections actually land.
func TestStratifiedCampaignShardInvariance(t *testing.T) {
	plan := PlanE3Fig3()
	const n, cut = 9, 4
	strata, err := StratifyPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	inStratum := make([]map[armv7.Field]bool, len(strata))
	for si, s := range strata {
		inStratum[si] = make(map[armv7.Field]bool)
		for _, f := range s.Fields {
			inStratum[si][f] = true
		}
	}

	var mu sync.Mutex
	serial := make(map[int]uint64)
	fields := make(map[int][]armv7.Field)
	c := &Campaign{Plan: plan, Runs: n, MasterSeed: 2022, Workers: 1, Stratify: true}
	c.OnRun = func(index int, r *RunResult) {
		mu.Lock()
		serial[index] = r.TraceHash
		for _, inj := range r.Injections {
			fields[index] = append(fields[index], inj.Fields...)
		}
		mu.Unlock()
	}
	if _, err := c.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += len(fields[i])
		for _, f := range fields[i] {
			if !inStratum[i%len(strata)][f] {
				t.Fatalf("run %d injected field %d outside stratum %d", i, f, i%len(strata))
			}
		}
	}
	if total == 0 {
		t.Fatal("no injections landed — stratification unexercised")
	}

	lo, loHashes, _, _ := collectHashes(t, &Campaign{
		Plan: plan, Runs: cut, MasterSeed: 2022, Workers: 2, Stratify: true,
	})
	hi, hiHashes, _, _ := collectHashes(t, &Campaign{
		Plan: plan, Runs: n - cut, MasterSeed: 2022, Offset: cut, Workers: 2, Stratify: true,
	})
	if lo.Total()+hi.Total() != n {
		t.Fatalf("split ran %d+%d runs, want %d", lo.Total(), hi.Total(), n)
	}
	for i := 0; i < cut; i++ {
		if loHashes[i] != serial[i] {
			t.Fatalf("run %d: low shard hash %#x != serial %#x", i, loHashes[i], serial[i])
		}
	}
	for i := cut; i < n; i++ {
		if hiHashes[i] != serial[i] {
			t.Fatalf("run %d: high shard hash %#x != serial %#x", i, hiHashes[i], serial[i])
		}
	}
}

func TestStopSpecValidateIdentityClone(t *testing.T) {
	var nilSpec *StopSpec
	if err := nilSpec.Validate(); err != nil {
		t.Fatal("nil spec (fixed-N) must validate")
	}
	if nilSpec.Identity() != "" {
		t.Fatalf("nil identity = %q, want empty", nilSpec.Identity())
	}
	if nilSpec.Clone() != nil {
		t.Fatal("nil clone must stay nil")
	}
	s := &StopSpec{Policy: StopPolicyCIWidth, WidthBP: 500}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Interval != IntervalClopperPearson || s.CheckEvery != 1 {
		t.Fatalf("Validate did not normalise defaults: %+v", s)
	}
	if got := s.Identity(); got != "ci-width_clopper-pearson_w500_m0_e1" {
		t.Fatalf("identity = %q", got)
	}
	// Identity is stable whether or not Validate normalised the spec.
	raw := &StopSpec{Policy: StopPolicyCIWidth, WidthBP: 500}
	if raw.Identity() != s.Identity() {
		t.Fatalf("raw identity %q != validated %q", raw.Identity(), s.Identity())
	}
	c := s.Clone()
	c.WidthBP = 100
	if s.WidthBP != 500 {
		t.Fatal("clone aliases the original")
	}
	for name, bad := range map[string]*StopSpec{
		"unknown policy":   {Policy: "by-vibes", WidthBP: 100},
		"zero width":       {Policy: StopPolicyCIWidth, WidthBP: 0},
		"width over 100%":  {Policy: StopPolicyCIWidth, WidthBP: 10001},
		"unknown interval": {Policy: StopPolicyCIWidth, WidthBP: 100, Interval: "gaussian"},
		"negative min":     {Policy: StopPolicyCIWidth, WidthBP: 100, MinRuns: -1},
		"negative every":   {Policy: StopPolicyCIWidth, WidthBP: 100, CheckEvery: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
