package core

import (
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// shortPlan is PlanE3Fig3 cut to 8 virtual seconds — long enough for
// the cell to come up (2s) and the first injection to fire (~6.5s),
// short enough to sweep many runs per test second.
func shortPlan() *TestPlan {
	p := *PlanE3Fig3()
	p.Name = "E3-short"
	p.Duration = 8 * sim.Second
	return &p
}

// taintModel corrupts the hypervisor's firmware region when triggered:
// the next handler entry on an unparked CPU takes an internal HYP trap.
type taintModel struct{}

func (taintModel) Name() string             { return "test-taint" }
func (taintModel) Plan(rng *sim.RNG) []Flip { return nil }
func (taintModel) ApplyMachine(m *Machine, rng *sim.RNG, point jailhouse.InjectionPoint, cpu int) string {
	m.HV.TaintFirmware("test: firmware text corrupted")
	return "firmware tainted"
}

// wedgeModel livelocks the event loop: a zero-delay event that reposts
// itself forever, with the watchdog budget tightened so the trip costs
// milliseconds of test time instead of the default 2^17 events.
type wedgeModel struct{}

func (wedgeModel) Name() string             { return "test-wedge" }
func (wedgeModel) Plan(rng *sim.RNG) []Flip { return nil }
func (wedgeModel) ApplyMachine(m *Machine, rng *sim.RNG, point jailhouse.InjectionPoint, cpu int) string {
	eng := m.Board.Engine
	eng.SetWedgeLimit(4096)
	var spin func()
	spin = func() { eng.After(0, spin) }
	eng.After(0, spin)
	return "event-loop livelock armed"
}

// panicModel is a defective fault model: its planner panics. The run
// boundary must recover it into a sim-fault verdict, not a dead process.
type panicModel struct{}

func (panicModel) Name() string             { return "test-panic" }
func (panicModel) Plan(rng *sim.RNG) []Flip { panic("defective fault model") }

// TestClassifyGracefulDegradation drives each degradation path end to
// end through RunExperiment — trigger, outcome class, evidence wording,
// and the detection-latency semantics: internal HYP traps and watchdog
// trips are detection events (latency >= 0 measured from the first
// injection); a recovered simulation fault is not a detection.
func TestClassifyGracefulDegradation(t *testing.T) {
	for _, tc := range []struct {
		name         string
		model        FaultModel
		want         Outcome
		evidence     string
		wantDetected bool
		// wantInjection: the trigger completes and logs a record. False
		// for the sim-fault case — the panic unwinds the injection
		// mid-flight, before its record could be appended.
		wantInjection bool
	}{
		{"hypervisor-trap", taintModel{}, OutcomeHypervisorTrap, "HYP-mode trap", true, true},
		{"machine-wedge", wedgeModel{}, OutcomeMachineWedge, "bounded-progress watchdog", true, true},
		{"sim-fault", panicModel{}, OutcomeSimFault, "simulation fault", false, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := NewCustomPlan("graceful-"+tc.name, shortPlan(), tc.model)
			res, err := RunExperiment(plan, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome() != tc.want {
				t.Fatalf("outcome = %v, want %v (evidence: %v)", res.Outcome(), tc.want, res.Verdict.Evidence)
			}
			found := false
			for _, e := range res.Verdict.Evidence {
				if strings.Contains(e, tc.evidence) {
					found = true
				}
			}
			if !found {
				t.Errorf("evidence %v does not mention %q", res.Verdict.Evidence, tc.evidence)
			}
			if tc.wantInjection && len(res.Injections) == 0 {
				t.Fatal("no injection recorded — the trigger never fired")
			}
			if detected := res.DetectionLatency >= 0; detected != tc.wantDetected {
				t.Errorf("detection latency = %v, want detected=%v", res.DetectionLatency, tc.wantDetected)
			}
		})
	}
}

// TestGracefulRunsAreDeterministic pins that the degradation paths stay
// inside the reproducibility contract: same plan, same seed, same trace.
func TestGracefulRunsAreDeterministic(t *testing.T) {
	for _, model := range []FaultModel{taintModel{}, wedgeModel{}} {
		plan := NewCustomPlan("graceful-determinism", shortPlan(), model)
		a, err := RunExperimentOpts(plan, 9, RunOptions{CaptureTraceHash: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunExperimentOpts(plan, 9, RunOptions{CaptureTraceHash: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.TraceHash != b.TraceHash || a.Outcome() != b.Outcome() {
			t.Fatalf("%s: replay diverged: %v/%#x vs %v/%#x",
				model.Name(), a.Outcome(), a.TraceHash, b.Outcome(), b.TraceHash)
		}
	}
}

// TestCampaignResultMergesNewClasses pins the aggregate layer: the three
// degradation classes fold through AddSample and MergeFrom like any
// paper-taxonomy class, including the detection-latency mean.
func TestCampaignResultMergesNewClasses(t *testing.T) {
	a := &CampaignResult{}
	a.AddSample(OutcomeHypervisorTrap, 2, 5*sim.Millisecond)
	a.AddSample(OutcomeCorrect, 1, -1)
	b := &CampaignResult{}
	b.AddSample(OutcomeMachineWedge, 1, 15*sim.Millisecond)
	b.AddSample(OutcomeSimFault, 0, -1)

	a.MergeFrom(b)
	for o, want := range map[Outcome]int{
		OutcomeHypervisorTrap: 1,
		OutcomeMachineWedge:   1,
		OutcomeSimFault:       1,
		OutcomeCorrect:        1,
	} {
		if got := a.Count(o); got != want {
			t.Errorf("count(%v) = %d, want %d", o, got, want)
		}
	}
	if a.Total() != 4 || a.InjectionsTotal() != 4 {
		t.Errorf("total=%d injections=%d, want 4/4", a.Total(), a.InjectionsTotal())
	}
	if got := a.MeanDetectionLatency(); got != 10*sim.Millisecond {
		t.Errorf("mean detection latency = %v, want 10ms", got)
	}
}
