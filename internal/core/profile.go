package core

import (
	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// SensitivityProfile models the live-register component of an injection.
//
// The paper's injector (a dozen lines inside Jailhouse) flips live
// architecture registers at handler entry. At that moment a register
// holds either a saved-guest value (whose corruption our guest models
// handle mechanistically) or live hypervisor working state — the per-CPU
// pointer in r0, the HYP stack pointer in sp, spilled locals in the
// callee-saved range. A functional model cannot know which compiled-code
// slot was live, so the profile captures it as documented per-register
// probabilities, split by handler depth:
//
//   - arch_handle_trap runs the deepest code (MMIO decode, dispatch
//     tables) → highest liveness;
//   - arch_handle_hvc is a shallow argument-validating leaf → lowest
//     (which is why the paper's E1 sees clean EINVALs, not crashes);
//   - irqchip_handle_irq holds only the IRQ number → minimal.
//
// The damage split mirrors the three architectural failure routes: a wild
// hypervisor pointer (immediate HYP abort → panic_stop), a redirected
// per-CPU derivation (cross-CPU corruption → deferred panic), and a stray
// write into the own block (detected at the next integrity check).
// EXPERIMENTS.md documents the calibration: the defaults land the
// Figure 3 campaign inside the paper's reported bands.
type SensitivityProfile struct {
	// DeepTrap is the per-field liveness on the deep emulation path
	// (MMIO read emulation, prefetch-abort handling): the longest code,
	// the most live registers.
	DeepTrap map[armv7.Field]float64
	// ShallowTrap is the liveness on short trap paths: store emulation,
	// the HVC/SMC dispatch stubs, WFx and CP15 filtering. Arguments are
	// consumed immediately; little hypervisor state is in flight.
	ShallowTrap map[armv7.Field]float64
	// HVC is the liveness inside arch_handle_hvc itself — a leaf that
	// validates guest-supplied arguments: flips there produce EINVAL
	// mechanically, almost never hypervisor damage (the paper's E1).
	HVC map[armv7.Field]float64
	// IRQ is the liveness in irqchip_handle_irq. The handler holds only
	// the IRQ number; the paper excluded this point because corrupting
	// it yields a predictable IRQ error, and the table reflects that.
	IRQ map[armv7.Field]float64
	// Split gives the damage-kind weights (HypAbort, CrossCPU, PerCPU)
	// used when a live hit occurs.
	Split [3]float64
}

// DefaultProfile returns the calibrated sensitivity profile.
func DefaultProfile() *SensitivityProfile {
	deep := map[armv7.Field]float64{
		armv7.Field(armv7.RegR0): 0.90, // per-CPU data pointer
		armv7.Field(armv7.RegSP): 0.90, // HYP stack pointer
		armv7.Field(armv7.RegLR): 0.70, // handler return address
	}
	for i := armv7.RegR4; i <= armv7.RegR11; i++ {
		deep[armv7.Field(i)] = 0.15 // spilled locals, sometimes live
	}
	for _, f := range []int{armv7.RegR1, armv7.RegR2, armv7.RegR3, armv7.RegR12} {
		deep[armv7.Field(f)] = 0.06 // consumed scratch
	}

	shallow := map[armv7.Field]float64{
		armv7.Field(armv7.RegR0): 0.05,
		armv7.Field(armv7.RegSP): 0.05,
		armv7.Field(armv7.RegLR): 0.03,
	}
	hvc := map[armv7.Field]float64{
		armv7.Field(armv7.RegSP): 0.02,
		armv7.Field(armv7.RegLR): 0.01,
	}
	return &SensitivityProfile{
		DeepTrap:    deep,
		ShallowTrap: shallow,
		HVC:         hvc,
		IRQ:         map[armv7.Field]float64{},    // tiny handler: no live state
		Split:       [3]float64{0.45, 0.40, 0.15}, // HypAbort, CrossCPU, PerCPU
	}
}

// Trace arena profile. The simulated stack emits trace records at a
// rate dominated by the periodic machinery (scheduler ticks, UART
// lines, state-watchdog probes, IRQ traffic), measured at ~1.0–1.3k
// records/virtual-second across the paper's plans with ~2 deferred
// format arguments per record. The budget below over-provisions that
// steady-state rate slightly so one up-front arena allocation covers a
// whole run — closing the PR 1 leftover of pre-sizing the trace record
// arena from a profile of the plan instead of growing it by doubling
// while the run streams events.
const (
	// traceRecordsPerSecond is the provisioning rate per virtual second.
	traceRecordsPerSecond = 1400
	// traceArgsPerRecord sizes the deferred-format argument arena.
	traceArgsPerRecord = 2
	// traceBudgetSlack covers boot records and short-horizon variance.
	traceBudgetSlack = 4096
)

// TraceBudget estimates the trace arena a run of the plan needs:
// record and argument capacities derived from the plan's effective
// duration. The estimate is a capacity hint, never a cap — a run that
// outgrows it just falls back to append growth.
func TraceBudget(plan *TestPlan) (records, args int) {
	secs := int(plan.EffectiveDuration()/sim.Second) + 1
	records = secs*traceRecordsPerSecond + traceBudgetSlack
	return records, records * traceArgsPerRecord
}

// table selects the liveness table for an injection at the given point,
// using the pre-injection syndrome to judge handler depth.
func (p *SensitivityProfile) table(point jailhouse.InjectionPoint, hsrAtEntry uint32) map[armv7.Field]float64 {
	switch point {
	case jailhouse.PointHVC:
		return p.HVC
	case jailhouse.PointIRQChip:
		return p.IRQ
	default:
		ec := armv7.HSRClass(hsrAtEntry)
		switch ec {
		case armv7.ECDABTLow:
			da := armv7.DecodeDataAbort(armv7.HSRISS(hsrAtEntry))
			if da.Write {
				return p.ShallowTrap // store emulation: short path
			}
			return p.DeepTrap // load emulation: value injection path
		case armv7.ECIABTLow, armv7.ECDABTCur, armv7.ECUnknown:
			return p.DeepTrap
		default:
			// HVC/SMC dispatch stubs, WFx, CP15 filtering.
			return p.ShallowTrap
		}
	}
}

// Sample decides the live-state damage for one injection that flipped the
// given fields at the given point. hsrAtEntry is the syndrome before the
// fault model ran — what the handler was actually doing.
func (p *SensitivityProfile) Sample(rng *sim.RNG, point jailhouse.InjectionPoint, hsrAtEntry uint32, fields []armv7.Field) jailhouse.Damage {
	if p == nil {
		return jailhouse.DamageNone
	}
	table := p.table(point, hsrAtEntry)
	for _, f := range fields {
		if prob, ok := table[f]; ok && rng.Bool(prob) {
			switch rng.Pick(p.Split[:]) {
			case 0:
				return jailhouse.DamageHypAbort
			case 1:
				return jailhouse.DamageCrossCPU
			default:
				return jailhouse.DamagePerCPU
			}
		}
	}
	return jailhouse.DamageNone
}
