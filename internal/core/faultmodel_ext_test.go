package core

import (
	"context"
	"testing"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/sim"
)

func TestStuckAtDestroysRegister(t *testing.T) {
	rng := sim.NewRNG(1)
	m := &StuckAtModel{One: true}
	flips := m.Plan(rng)
	if len(flips) != 32 {
		t.Fatalf("flips = %d, want 32", len(flips))
	}
	field := flips[0].Field
	seen := map[uint]bool{}
	for _, fl := range flips {
		if fl.Field != field {
			t.Fatal("stuck-at spread across registers")
		}
		if seen[fl.Bit] {
			t.Fatalf("bit %d flipped twice", fl.Bit)
		}
		seen[fl.Bit] = true
	}
	// Applying all 32 flips inverts the register completely.
	var ctx armv7.TrapContext
	ctx.Set(field, 0x12345678)
	for _, fl := range flips {
		ctx.FlipBit(fl.Field, fl.Bit)
	}
	if got := ctx.Get(field); got != ^uint32(0x12345678) {
		t.Fatalf("stuck-at application = %#x", got)
	}
	if (&StuckAtModel{}).Name() != "stuck-at-0" || m.Name() != "stuck-at-1" {
		t.Fatal("names")
	}
}

func TestIntermittentBurstSingleRegister(t *testing.T) {
	rng := sim.NewRNG(2)
	m := &IntermittentModel{Burst: 6}
	flips := m.Plan(rng)
	if len(flips) != 6 {
		t.Fatalf("burst = %d", len(flips))
	}
	for _, fl := range flips {
		if fl.Field != flips[0].Field {
			t.Fatal("burst spread across registers")
		}
	}
	if (&IntermittentModel{}).Name() != "intermittent(burst=4)" {
		t.Fatalf("default name = %q", (&IntermittentModel{}).Name())
	}
}

func TestDoubleBitAdjacent(t *testing.T) {
	rng := sim.NewRNG(3)
	m := &DoubleBitAdjacentModel{}
	for i := 0; i < 100; i++ {
		flips := m.Plan(rng)
		if len(flips) != 2 {
			t.Fatalf("flips = %d", len(flips))
		}
		if flips[1].Bit != flips[0].Bit+1 {
			t.Fatalf("bits %d,%d not adjacent", flips[0].Bit, flips[1].Bit)
		}
		if flips[0].Field != flips[1].Field {
			t.Fatal("adjacent flips in different registers")
		}
	}
}

func TestCustomPlanRoutesModel(t *testing.T) {
	base := PlanE3Fig3()
	p := NewCustomPlan("E3-stuck", base, &StuckAtModel{})
	if p.Model().Name() != "stuck-at-0" {
		t.Fatalf("custom model not routed: %s", p.Model().Name())
	}
	if base.Model().Name() != "single-bitflip" {
		t.Fatal("base plan mutated")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomModelCampaignRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	base := *PlanE3Fig3()
	base.Duration = 15 * sim.Second
	plan := NewCustomPlan("E3-stuck-at", &base, &StuckAtModel{One: true})
	c := &Campaign{Plan: plan, Runs: 20, MasterSeed: 8}
	res, err := c.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 20 {
		t.Fatalf("runs = %d", res.Total())
	}
	// A stuck-at register is at least as harmful as a single flip: the
	// campaign must show some non-correct runs.
	if res.Count(OutcomeCorrect) == res.Total() {
		t.Fatal("stuck-at model produced zero deviations over 20 runs")
	}
}
