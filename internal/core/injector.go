package core

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// InjectionRecord documents one performed injection — the framework's
// equivalent of the paper's log entries.
type InjectionRecord struct {
	At     sim.Time
	Point  jailhouse.InjectionPoint
	CPU    int
	Cell   string
	Fields []armv7.Field
	Damage jailhouse.Damage
	CallNo uint64 // which matching call triggered it

	// Note describes a machine-level fault (MachineFaulter models); empty
	// for the register-flip models.
	Note string
}

// String renders the record for logs.
func (r InjectionRecord) String() string {
	if r.Note != "" {
		return fmt.Sprintf("%s inject@%s cpu%d cell=%s call#%d %s",
			r.At, r.Point, r.CPU, r.Cell, r.CallNo, r.Note)
	}
	names := make([]string, len(r.Fields))
	for i, f := range r.Fields {
		names[i] = armv7.FieldName(f)
	}
	return fmt.Sprintf("%s inject@%s cpu%d cell=%s call#%d fields=%v damage=%d",
		r.At, r.Point, r.CPU, r.Cell, r.CallNo, names, r.Damage)
}

// Injector implements the paper's instrumentation: it counts calls to the
// targeted handlers that match the plan's filter and corrupts the trap
// context on every Nth one. Wire it with Injector.Hook as the
// hypervisor's EntryHook.
type Injector struct {
	plan    *TestPlan
	model   FaultModel
	profile *SensitivityProfile
	rng     *sim.RNG
	now     func() sim.Time

	armed     bool
	armFrom   sim.Time // injections suppressed before this instant
	disarmAt  sim.Time // 0 = no deadline
	phase     uint64   // random trigger phase within the rate window
	calls     map[jailhouse.InjectionPoint]uint64
	records   []InjectionRecord
	callTotal uint64

	// machine is the bound experiment target for machine-level fault
	// models (MachineFaulter); nil for pure register models.
	machine *Machine
}

// NewInjector builds an injector for the plan. rng must be the target
// machine's engine RNG (or a stream derived from the run seed) so runs
// replay bit-identically; now supplies virtual time for records.
func NewInjector(plan *TestPlan, profile *SensitivityProfile, rng *sim.RNG, now func() sim.Time) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		plan:    plan,
		model:   plan.Model(),
		profile: profile,
		rng:     rng,
		now:     now,
		armed:   true,
		// The rig's arming instant is asynchronous to the workload, so
		// the first trigger lands uniformly inside the rate window.
		phase: uint64(rng.Intn(plan.EffectiveRate())),
		calls: make(map[jailhouse.InjectionPoint]uint64),
	}, nil
}

// Arm (re)enables injection; until is an optional virtual-time deadline
// (0 = no deadline), implementing the paper's test-duration control.
func (in *Injector) Arm(until sim.Time) {
	in.armed = true
	in.disarmAt = until
}

// ArmWindow enables injection only inside [from, until] of virtual time;
// matching calls are still counted outside the window (profiling).
func (in *Injector) ArmWindow(from, until sim.Time) {
	in.armed = true
	in.armFrom = from
	in.disarmAt = until
}

// Disarm stops all future injections.
func (in *Injector) Disarm() { in.armed = false }

// BindMachine attaches the experiment target so machine-level fault
// models (MachineFaulter) can reach RAM, the GIC, the guests and the
// event queue. Register models ignore the binding.
func (in *Injector) BindMachine(m *Machine) { in.machine = m }

// Records returns the performed injections.
func (in *Injector) Records() []InjectionRecord {
	out := make([]InjectionRecord, len(in.records))
	copy(out, in.records)
	return out
}

// FirstInjectionAt returns the virtual time of the first performed
// injection, or -1 when none happened.
func (in *Injector) FirstInjectionAt() sim.Time {
	if len(in.records) == 0 {
		return -1
	}
	return in.records[0].At
}

// Calls returns how many filter-matching calls each point has seen —
// the golden-run profiling counters that led the paper to its three
// candidate functions.
func (in *Injector) Calls() map[jailhouse.InjectionPoint]uint64 {
	out := make(map[jailhouse.InjectionPoint]uint64, len(in.calls))
	for k, v := range in.calls {
		out[k] = v
	}
	return out
}

// TotalCalls returns all matching calls across points.
func (in *Injector) TotalCalls() uint64 { return in.callTotal }

// Hook is the jailhouse.EntryHook adapter.
func (in *Injector) Hook(point jailhouse.InjectionPoint, cpu int, cell string, ctx *armv7.TrapContext) jailhouse.InjectionResult {
	if !in.plan.TargetsPoint(point) {
		return jailhouse.InjectionResult{}
	}
	if in.plan.TargetCPU != AnyCPU && cpu != in.plan.TargetCPU {
		return jailhouse.InjectionResult{}
	}
	if in.plan.TargetCell != "" && cell != in.plan.TargetCell {
		return jailhouse.InjectionResult{}
	}
	in.calls[point]++
	in.callTotal++

	if !in.armed {
		return jailhouse.InjectionResult{}
	}
	if in.armFrom > 0 && in.now() < in.armFrom {
		return jailhouse.InjectionResult{}
	}
	if in.disarmAt > 0 && in.now() > in.disarmAt {
		return jailhouse.InjectionResult{}
	}
	if (in.callTotal+in.phase)%uint64(in.plan.EffectiveRate()) != 0 {
		return jailhouse.InjectionResult{}
	}

	if mf, ok := in.model.(MachineFaulter); ok && in.machine != nil {
		note := mf.ApplyMachine(in.machine, in.rng, point, cpu)
		in.machine.Board.Trace().Addf(in.now(), sim.KindInjection, cpu,
			"%s: machine fault: %s", sim.Str(point.String()), sim.Str(note))
		in.records = append(in.records, InjectionRecord{
			At:     in.now(),
			Point:  point,
			CPU:    cpu,
			Cell:   cell,
			CallNo: in.callTotal,
			Note:   note,
		})
		return jailhouse.InjectionResult{}
	}

	hsrAtEntry := ctx.HSR
	flips := in.model.Plan(in.rng)
	fields := make([]armv7.Field, 0, len(flips))
	for _, fl := range flips {
		ctx.FlipBit(remapLiveField(point, hsrAtEntry, fl.Field), fl.Bit)
		fields = append(fields, fl.Field)
	}
	damage := in.profile.Sample(in.rng, point, hsrAtEntry, fields)
	in.records = append(in.records, InjectionRecord{
		At:     in.now(),
		Point:  point,
		CPU:    cpu,
		Cell:   cell,
		Fields: fields,
		Damage: damage,
		CallNo: in.callTotal,
	})
	return jailhouse.InjectionResult{Fields: fields, Damage: damage}
}

// remapLiveField maps a flipped *live* register to the datum it holds at
// the instrumented entry. In the data-abort path of arch_handle_trap, r1
// holds the syndrome and r2 the fault address (the handler's working
// copies of HSR/HDFAR) — flipping them corrupts the handler's *view* of
// the trap, which is how the paper's "error code 0x24 → cpu_park()"
// outcome arises. Elsewhere the registers carry the guest's argument
// values and map to themselves.
func remapLiveField(point jailhouse.InjectionPoint, hsrAtEntry uint32, f armv7.Field) armv7.Field {
	if point != jailhouse.PointTrap {
		return f
	}
	if armv7.HSRClass(hsrAtEntry) != armv7.ECDABTLow {
		return f
	}
	switch int(f) {
	case armv7.RegR1:
		return armv7.FieldHSR
	case armv7.RegR2:
		return armv7.FieldHDFAR
	default:
		return f
	}
}
