package core

import (
	"fmt"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/sim"
)

// Flip is one planned bit flip: which register slot and which bit.
type Flip struct {
	Field armv7.Field
	Bit   uint
}

// FaultModel plans the flips for one injection. Models are pure: they
// draw random choices from rng and return the flips; the injector applies
// them to the trap context (with the live-register semantic remapping).
// The paper uses the classical single bit-flip model at two intensity
// levels.
type FaultModel interface {
	// Name identifies the model in plans and reports.
	Name() string
	// Plan draws the flips for one injection.
	Plan(rng *sim.RNG) []Flip
}

// Register-class field sets selectable by plans (ablation A2 compares
// them). The paper's model draws from the 16 architecture registers.
var (
	// GPRFields is the paper's register set: r0-r12, sp, lr, pc.
	GPRFields = func() []armv7.Field {
		out := make([]armv7.Field, armv7.NumRegs)
		for i := range out {
			out[i] = armv7.Field(i)
		}
		return out
	}()

	// ArgFields covers the procedure-call argument registers.
	ArgFields = []armv7.Field{
		armv7.Field(armv7.RegR0), armv7.Field(armv7.RegR1),
		armv7.Field(armv7.RegR2), armv7.Field(armv7.RegR3),
	}

	// CalleeSavedFields covers r4-r11.
	CalleeSavedFields = func() []armv7.Field {
		var out []armv7.Field
		for i := armv7.RegR4; i <= armv7.RegR11; i++ {
			out = append(out, armv7.Field(i))
		}
		return out
	}()

	// ControlFields covers the control-flow registers.
	ControlFields = []armv7.Field{
		armv7.Field(armv7.RegSP), armv7.Field(armv7.RegLR), armv7.Field(armv7.RegPC),
	}

	// SyndromeFields covers the trap syndrome and return state — outside
	// the paper's model, exercised by the A2 ablation.
	SyndromeFields = []armv7.Field{
		armv7.FieldHSR, armv7.FieldSPSR, armv7.FieldELR, armv7.FieldHDFAR,
	}
)

// SingleBitFlip is the paper's medium-intensity model: one random bit of
// one random register from the field set.
type SingleBitFlip struct {
	// Fields to draw from; nil means GPRFields.
	Fields []armv7.Field
}

var _ FaultModel = (*SingleBitFlip)(nil)

// Name implements FaultModel.
func (s *SingleBitFlip) Name() string { return "single-bitflip" }

// Plan implements FaultModel.
func (s *SingleBitFlip) Plan(rng *sim.RNG) []Flip {
	fields := s.Fields
	if len(fields) == 0 {
		fields = GPRFields
	}
	f := fields[rng.Intn(len(fields))]
	return []Flip{{Field: f, Bit: uint(rng.Intn(32))}}
}

// MultiRegisterBitFlip is the paper's high-intensity model: "a bit flip
// of multiple registers at the time" — K distinct registers, one random
// bit each.
type MultiRegisterBitFlip struct {
	// K is how many distinct registers to hit (default 3).
	K int
	// Fields to draw from; nil means GPRFields.
	Fields []armv7.Field
}

var _ FaultModel = (*MultiRegisterBitFlip)(nil)

// Name implements FaultModel.
func (m *MultiRegisterBitFlip) Name() string {
	k := m.K
	if k <= 0 {
		k = 3
	}
	return fmt.Sprintf("multi-bitflip(k=%d)", k)
}

// Plan implements FaultModel.
func (m *MultiRegisterBitFlip) Plan(rng *sim.RNG) []Flip {
	fields := m.Fields
	if len(fields) == 0 {
		fields = GPRFields
	}
	k := m.K
	if k <= 0 {
		k = 3
	}
	if k > len(fields) {
		k = len(fields)
	}
	// Partial Fisher-Yates over a copy for k distinct picks.
	pool := make([]armv7.Field, len(fields))
	copy(pool, fields)
	out := make([]Flip, 0, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		out = append(out, Flip{Field: pool[i], Bit: uint(rng.Intn(32))})
	}
	return out
}

// Intensity is the paper's fault-intensity level.
type Intensity int

// Intensity levels with the paper's parameters: medium = single-register
// flip once every 100 calls, high = multi-register flip once every 50.
const (
	IntensityMedium Intensity = iota + 1
	IntensityHigh
)

// String returns "medium" or "high".
func (i Intensity) String() string {
	switch i {
	case IntensityMedium:
		return "medium"
	case IntensityHigh:
		return "high"
	default:
		return fmt.Sprintf("intensity(%d)", int(i))
	}
}

// Model returns the fault model of the intensity level over the given
// field set (nil = paper default).
func (i Intensity) Model(fields []armv7.Field) FaultModel {
	switch i {
	case IntensityHigh:
		return &MultiRegisterBitFlip{K: 3, Fields: fields}
	default:
		return &SingleBitFlip{Fields: fields}
	}
}

// DefaultRate returns the paper's occurrence rate for the intensity:
// one injection per N matching calls.
func (i Intensity) DefaultRate() int {
	switch i {
	case IntensityHigh:
		return 50
	default:
		return 100
	}
}
