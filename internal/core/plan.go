package core

import (
	"fmt"
	"strings"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// AnyCPU disables CPU filtering in a plan.
const AnyCPU = -1

// TestPlan is one row of the paper's test plan: which handler(s) to
// inject into, at which intensity and rate, filtered to which CPU, for
// how long, under which workload.
type TestPlan struct {
	// Name labels the plan in reports ("E3-fig3", ...).
	Name string

	// Points are the instrumented functions to target.
	Points []jailhouse.InjectionPoint

	// Intensity selects the paper's fault model level.
	Intensity Intensity

	// Rate is the occurrence: one injection per Rate matching calls.
	// Zero means the intensity's paper default (100 medium / 50 high).
	Rate int

	// TargetCPU filters injection to one core (AnyCPU = no filter).
	TargetCPU int

	// TargetCell filters by the name of the cell running on the
	// trapping CPU ("" = no filter).
	TargetCell string

	// Fields restricts the register set (nil = paper's 16 GPRs).
	Fields []armv7.Field

	// Duration is the test length; the paper uses one minute.
	Duration sim.Time

	// Workload selects the root-cell activity.
	Workload WorkloadKind

	// FaultName selects a registered fault model by name ("" = the
	// paper's intensity-derived register bit-flip model). Named models
	// are recorded in the plan file and therefore in TestPlan.Hash, so
	// shard artefacts from different models can never be merged.
	FaultName string

	// custom overrides the intensity-derived fault model when set (see
	// NewCustomPlan); nil uses the paper's models.
	custom FaultModel
}

// WorkloadKind selects what the root cell does during the run.
type WorkloadKind int

// Workload kinds.
const (
	// WorkloadSteady: cell created once and left running (Figure 3).
	WorkloadSteady WorkloadKind = iota
	// WorkloadManagement: the recreate loop keeping the management
	// hypercall path hot (E1).
	WorkloadManagement
	// WorkloadDelayedCreate: the cell is created, loaded and started a
	// couple of seconds into the run, with the injector armed from the
	// start — the bring-up window is the experiment's subject (E2).
	WorkloadDelayedCreate
)

// String implements fmt.Stringer.
func (w WorkloadKind) String() string {
	switch w {
	case WorkloadManagement:
		return "management-cycle"
	case WorkloadDelayedCreate:
		return "delayed-create"
	default:
		return "steady"
	}
}

// EffectiveRate returns the plan's occurrence rate with the paper default
// applied.
func (p *TestPlan) EffectiveRate() int {
	if p.Rate > 0 {
		return p.Rate
	}
	return p.Intensity.DefaultRate()
}

// EffectiveDuration returns the plan duration, defaulting to the paper's
// one minute.
func (p *TestPlan) EffectiveDuration() sim.Time {
	if p.Duration > 0 {
		return p.Duration
	}
	return sim.Minute
}

// Model builds the plan's fault model: the paper's intensity-derived
// bit-flip models, unless a custom model was attached via NewCustomPlan
// or a registered model was selected by name (FaultName).
func (p *TestPlan) Model() FaultModel {
	if p.custom != nil {
		return p.custom
	}
	if p.FaultName != "" && p.FaultName != DefaultFaultModelName {
		if m := newFaultModelFor(p); m != nil {
			return m
		}
	}
	return p.Intensity.Model(p.Fields)
}

// EffectiveFaultName returns the registry name of the model the plan will
// run — the identity shard manifests record. Custom in-process models
// (NewCustomPlan) report the default name, matching their plan-file
// rendering.
func (p *TestPlan) EffectiveFaultName() string {
	if p.custom != nil || p.FaultName == "" {
		return DefaultFaultModelName
	}
	return p.FaultName
}

// TargetsPoint reports whether the plan instruments the given function.
func (p *TestPlan) TargetsPoint(pt jailhouse.InjectionPoint) bool {
	for _, x := range p.Points {
		if x == pt {
			return true
		}
	}
	return false
}

// Validate checks plan consistency.
func (p *TestPlan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("core: plan needs a name")
	}
	if len(p.Points) == 0 {
		return fmt.Errorf("core: plan %q targets no injection point", p.Name)
	}
	if p.Intensity != IntensityMedium && p.Intensity != IntensityHigh {
		return fmt.Errorf("core: plan %q has invalid intensity", p.Name)
	}
	if p.Rate < 0 {
		return fmt.Errorf("core: plan %q has negative rate", p.Name)
	}
	if p.TargetCPU < AnyCPU {
		return fmt.Errorf("core: plan %q has invalid target cpu", p.Name)
	}
	if p.FaultName != "" && !FaultModelRegistered(p.FaultName) {
		return fmt.Errorf("core: plan %q selects unknown fault model %q (known: %s)",
			p.Name, p.FaultName, strings.Join(FaultModelNames(), ", "))
	}
	return nil
}

// String renders the plan like the paper's test-plan table rows.
func (p *TestPlan) String() string {
	pts := make([]string, len(p.Points))
	for i, pt := range p.Points {
		pts[i] = pt.String()
	}
	cpu := "any-cpu"
	if p.TargetCPU != AnyCPU {
		cpu = fmt.Sprintf("cpu%d", p.TargetCPU)
	}
	cell := p.TargetCell
	if cell == "" {
		cell = "any-cell"
	}
	return fmt.Sprintf("%s: %s intensity, 1/%d calls, %s on [%s], filter %s/%s, %v",
		p.Name, p.Intensity, p.EffectiveRate(), p.Model().Name(),
		strings.Join(pts, ","), cpu, cell, p.EffectiveDuration().Duration())
}

// ---- The paper's plans ----

// PlanE1HVC is experiment E1 on arch_handle_hvc: high intensity in the
// root-cell context with the management workload.
func PlanE1HVC() *TestPlan {
	return &TestPlan{
		Name:       "E1-hvc",
		Points:     []jailhouse.InjectionPoint{jailhouse.PointHVC},
		Intensity:  IntensityHigh,
		TargetCPU:  0,
		TargetCell: "banana-pi",
		Workload:   WorkloadManagement,
	}
}

// PlanE1Trap is experiment E1 on arch_handle_trap in root context.
func PlanE1Trap() *TestPlan {
	return &TestPlan{
		Name:       "E1-trap",
		Points:     []jailhouse.InjectionPoint{jailhouse.PointTrap},
		Intensity:  IntensityHigh,
		TargetCPU:  0,
		TargetCell: "banana-pi",
		Workload:   WorkloadManagement,
	}
}

// PlanE2Core1 is experiment E2: the same functions as E1 (arch_handle_hvc
// and arch_handle_trap) at high intensity, but filtered to CPU core 1 —
// the cell's bring-up and boot windows.
func PlanE2Core1() *TestPlan {
	return &TestPlan{
		Name:      "E2-core1",
		Points:    []jailhouse.InjectionPoint{jailhouse.PointHVC, jailhouse.PointTrap},
		Intensity: IntensityHigh,
		TargetCPU: 1,
		Workload:  WorkloadDelayedCreate, // the bring-up window is exposed
	}
}

// PlanE3Fig3 is the Figure 3 experiment: medium intensity on the
// non-root cell's arch_handle_trap stream.
func PlanE3Fig3() *TestPlan {
	return &TestPlan{
		Name:       "E3-fig3",
		Points:     []jailhouse.InjectionPoint{jailhouse.PointTrap},
		Intensity:  IntensityMedium,
		TargetCPU:  1,
		TargetCell: "freertos-cell",
		Workload:   WorkloadSteady,
	}
}

// PlanA3IRQ is ablation A3: the irqchip point the paper excluded.
func PlanA3IRQ() *TestPlan {
	return &TestPlan{
		Name:      "A3-irqchip",
		Points:    []jailhouse.InjectionPoint{jailhouse.PointIRQChip},
		Intensity: IntensityMedium,
		TargetCPU: 1,
		Workload:  WorkloadSteady,
	}
}

// BuiltinPlanNames lists the named plans in presentation order — the
// order `certify plans` prints and the serve API advertises.
func BuiltinPlanNames() []string {
	return []string{"E1-hvc", "E1-trap", "E2-core1", "E3-fig3", "A3-irqchip"}
}

// PlanByName returns a fresh instance of the built-in plan with that
// name. Both the CLI and the campaign server resolve request plan names
// through this single registry, so "E3-fig3" means the same campaign
// everywhere a spec can enter the system.
func PlanByName(name string) (*TestPlan, error) {
	switch name {
	case "E1-hvc":
		return PlanE1HVC(), nil
	case "E1-trap":
		return PlanE1Trap(), nil
	case "E2-core1":
		return PlanE2Core1(), nil
	case "E3-fig3":
		return PlanE3Fig3(), nil
	case "A3-irqchip":
		return PlanA3IRQ(), nil
	}
	return nil, fmt.Errorf("core: unknown plan %q (known: %s)", name, strings.Join(BuiltinPlanNames(), ", "))
}

// PlanMatrix expands a cartesian sweep of points × intensities × rates
// into plans, for the A1 occurrence ablation.
func PlanMatrix(points []jailhouse.InjectionPoint, intensities []Intensity, rates []int, base TestPlan) []*TestPlan {
	var out []*TestPlan
	for _, pt := range points {
		for _, in := range intensities {
			for _, r := range rates {
				p := base // copy
				p.Points = []jailhouse.InjectionPoint{pt}
				p.Intensity = in
				p.Rate = r
				p.Name = fmt.Sprintf("%s/%s/%s/1-%d", base.Name, pt, in, r)
				out = append(out, &p)
			}
		}
	}
	return out
}
