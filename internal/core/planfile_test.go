package core

import (
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

func TestPlanFileRoundTrip(t *testing.T) {
	for _, orig := range []*TestPlan{PlanE1HVC(), PlanE1Trap(), PlanE2Core1(), PlanE3Fig3(), PlanA3IRQ()} {
		t.Run(orig.Name, func(t *testing.T) {
			text := MarshalPlan(orig)
			got, err := ParsePlan(text)
			if err != nil {
				t.Fatalf("parse:\n%s\n%v", text, err)
			}
			if got.Name != orig.Name || got.Intensity != orig.Intensity ||
				got.TargetCPU != orig.TargetCPU || got.TargetCell != orig.TargetCell ||
				got.Workload != orig.Workload {
				t.Fatalf("roundtrip mismatch:\n%+v\n%+v", orig, got)
			}
			if len(got.Points) != len(orig.Points) {
				t.Fatalf("points: %v vs %v", got.Points, orig.Points)
			}
			if got.EffectiveDuration() != orig.EffectiveDuration() {
				t.Fatalf("duration: %v vs %v", got.EffectiveDuration(), orig.EffectiveDuration())
			}
		})
	}
}

func TestParsePlanCommentsAndWhitespace(t *testing.T) {
	text := `
# certification test plan, revision 2
name      = custom   # trailing comment
points    = arch_handle_trap, irqchip_handle_irq

intensity = high
rate      = 25
cpu       = -1
cell      =
fields    = control
duration  = 30s
workload  = management
`
	p, err := ParsePlan(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "custom" || p.Rate != 25 || p.TargetCPU != AnyCPU {
		t.Fatalf("parsed = %+v", p)
	}
	if len(p.Points) != 2 || p.Points[1] != jailhouse.PointIRQChip {
		t.Fatalf("points = %v", p.Points)
	}
	if len(p.Fields) != len(ControlFields) {
		t.Fatalf("fields = %v", p.Fields)
	}
	if p.Duration != 30*sim.Second {
		t.Fatalf("duration = %v", p.Duration)
	}
	if p.Workload != WorkloadManagement {
		t.Fatalf("workload = %v", p.Workload)
	}
}

func TestParsePlanRejectsMistakes(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"missing equals", "name E3", "missing '='"},
		{"unknown key", "name = x\npoints = arch_handle_trap\nintensity = medium\nspeed = 9", "unknown key"},
		{"unknown point", "name = x\npoints = arch_handle_foo\nintensity = medium", "unknown injection point"},
		{"unknown intensity", "name = x\npoints = arch_handle_trap\nintensity = extreme", "unknown intensity"},
		{"bad rate", "name = x\npoints = arch_handle_trap\nintensity = medium\nrate = ten", "bad rate"},
		{"bad duration", "name = x\npoints = arch_handle_trap\nintensity = medium\nduration = soon", "bad duration"},
		{"unknown workload", "name = x\npoints = arch_handle_trap\nintensity = medium\nworkload = chaos", "unknown workload"},
		{"unknown fields", "name = x\npoints = arch_handle_trap\nintensity = medium\nfields = floats", "unknown field set"},
		{"invalid plan", "name = x\nintensity = medium", "targets no injection point"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePlan(tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestFieldSetNames(t *testing.T) {
	if fieldSetName(nil) != "gprs" || fieldSetName(ArgFields) != "args" ||
		fieldSetName(CalleeSavedFields) != "callee" || fieldSetName(SyndromeFields) != "syndrome" {
		t.Fatal("field set naming")
	}
}
