package core

import (
	"fmt"
	"time"

	"github.com/dessertlab/certify/internal/armv7"
	"github.com/dessertlab/certify/internal/jailhouse"
	"github.com/dessertlab/certify/internal/sim"
)

// RunResult is the record of one experiment run — everything the paper's
// rig wrote to its log file, machine-readable.
type RunResult struct {
	Plan    string
	Seed    uint64
	Verdict Verdict

	// Injections performed during the run.
	Injections []InjectionRecord
	// CallCounts per injection point (matching calls).
	CallCounts map[jailhouse.InjectionPoint]uint64

	// Console artefacts.
	RootTranscript string
	CellTranscript string
	HVConsole      []string

	// Liveness stats.
	CellLines  int
	LEDToggles int
	Horizon    sim.Time

	// DetectionLatency is the virtual time between the first injection
	// and the first observable failure event (park or panic); -1 when
	// no injection happened or nothing was detected. Certification
	// cares about this number: it bounds how long a corrupted system
	// runs before anyone notices.
	DetectionLatency sim.Time

	// TraceHash is the stable digest of the run's full event trace
	// (sim.Trace.Hash), the per-run reproducibility fingerprint shard
	// artefacts carry: two processes that claim the same run of the same
	// campaign must produce the same hash. Zero unless
	// RunOptions.CaptureTraceHash was set — hashing renders every trace
	// message, so ordinary campaigns skip it.
	TraceHash uint64
}

// Outcome is shorthand for the verdict's outcome.
func (r *RunResult) Outcome() Outcome { return r.Verdict.Outcome }

// RunOptions tunes one experiment execution.
type RunOptions struct {
	// Mode selects evidence retention: ModeFull builds transcripts and
	// call-count maps; ModeDistribution skips them, keeping only what the
	// classifier and the streaming aggregator need.
	Mode CampaignMode
	// Scratch, when non-nil, keeps one warm machine per worker: the
	// first run through a scratch builds cold, every following run
	// deep-resets that machine instead of rebuilding the stack. Never
	// share between goroutines.
	Scratch *RunScratch
	// Pool, when non-nil, draws the machine from a shared warm pool
	// (Get before the run, Put after) and takes precedence over Scratch.
	// Use it to share warm machines across workers, campaigns or shards.
	Pool *MachinePool
	// CaptureTraceHash computes RunResult.TraceHash after classification.
	// Campaigns enable it when a streaming artefact hook is installed.
	CaptureTraceHash bool
}

// RunExperiment executes one fault-injection run with full evidence
// retention: build the machine for the plan's workload, arm the injector,
// run the horizon, classify.
func RunExperiment(plan *TestPlan, seed uint64) (*RunResult, error) {
	return RunExperimentOpts(plan, seed, RunOptions{})
}

// RunExperimentOpts is RunExperiment with explicit retention mode and
// machine reuse — the campaign workers' entry point.
func RunExperimentOpts(plan *TestPlan, seed uint64, ro RunOptions) (*RunResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	started := time.Now()
	opts := MachineOptions{Seed: seed, StateWatchdog: true}
	// Pre-size the trace arenas from the plan profile: one allocation
	// per arena up front instead of a doubling cascade during the run.
	// Reused machines (scratch, pool) keep their grown arenas either way.
	opts.TraceRecords, opts.TraceArgs = TraceBudget(plan)
	if ro.Mode == ModeDistribution {
		opts.LeanCapture = true
	}
	switch plan.Workload {
	case WorkloadManagement:
		opts.RecreateLoop = true
		opts.RecreatePeriod = 5 * sim.Second
	case WorkloadDelayedCreate:
		opts.DelayedCreate = true
	}
	m, release, err := acquireMachine(ro, opts)
	if err != nil {
		return nil, err
	}
	defer release()
	if ro.CaptureTraceHash {
		// Fold the digest on append: end-of-run hashing then reads a
		// finished state instead of rendering the whole trace. Records the
		// machine build already emitted are caught up here.
		m.Board.Trace().SetIncrementalHash(true)
	}

	// Derive the injector's random stream from the run seed so the
	// workload's own draws do not perturb injection choices.
	injSeed := seed
	rng := sim.NewRNG(sim.SplitMix64(&injSeed))
	inj, err := NewInjector(plan, DefaultProfile(), rng, m.Board.Now)
	if err != nil {
		return nil, err
	}
	// Steady workloads arm after the cell is up (the rig starts its test
	// once the workload runs); management workloads inject from the
	// start — create/boot windows are their subject.
	from := m.Board.Now()
	if plan.Workload == WorkloadSteady {
		from += 2 * sim.Second
	}
	inj.ArmWindow(from, m.Board.Now()+plan.EffectiveDuration())
	inj.BindMachine(m)
	m.HV.Hook = inj.Hook

	m.Run(plan.EffectiveDuration())

	res := &RunResult{
		Plan:             plan.Name,
		Seed:             seed,
		Verdict:          Classify(m),
		Injections:       inj.Records(),
		CellLines:        m.Board.UART7.LineCount(),
		Horizon:          m.Board.Now(),
		DetectionLatency: detectionLatency(m, inj.FirstInjectionAt()),
	}
	if ro.CaptureTraceHash {
		res.TraceHash = m.Board.Trace().Hash()
	}
	if ro.Mode == ModeFull {
		res.CallCounts = inj.Calls()
		res.RootTranscript = m.Board.UART0.Transcript()
		res.CellTranscript = m.Board.UART7.Transcript()
		res.HVConsole = append([]string(nil), m.HV.ConsoleLines...)
	}
	if m.RTOS != nil {
		res.LEDToggles = m.RTOS.LEDToggleCount()
	}
	metRunsTotal.Inc()
	metRunDuration.ObserveSince(started)
	if ev := m.Board.Engine.Executed(); ev > 0 {
		metSimEvents.Add(ev)
		metSimEventsPerRun.Observe(float64(ev))
	}
	return res, nil
}

// noRelease is the release stub for machines nobody reclaims.
func noRelease() {}

// acquireMachine resolves the run's machine source: a shared pool, a
// per-worker scratch (warm after its first run), or a cold build. The
// release callback returns pooled machines; everything the caller still
// needs from the machine (transcripts, counters) must be copied out
// before release runs — RunExperimentOpts copies during result
// assembly, so its deferred release is safe.
func acquireMachine(ro RunOptions, opts MachineOptions) (*Machine, func(), error) {
	switch {
	case ro.Pool != nil:
		m, err := ro.Pool.Get(opts)
		if err != nil {
			return nil, nil, fmt.Errorf("pool machine: %w", err)
		}
		return m, func() { ro.Pool.Put(m) }, nil
	case ro.Scratch != nil && ro.Scratch.machine != nil && !ro.Scratch.machine.Tainted():
		start := time.Now()
		if err := ro.Scratch.machine.Restore(opts); err != nil {
			return nil, nil, fmt.Errorf("restore machine: %w", err)
		}
		metDeepReset.ObserveSince(start)
		metScratchReuses.Inc()
		return ro.Scratch.machine, noRelease, nil
	case ro.Scratch != nil:
		// First use — or the previous run left the scratch machine tainted
		// (sim-fault, machine wedge); drop it and rebuild cold, exactly as
		// the pool does.
		ro.Scratch.machine = nil
		opts.Scratch = ro.Scratch
		m, err := BuildMachine(opts)
		if err != nil {
			return nil, nil, fmt.Errorf("build machine: %w", err)
		}
		m.CaptureSnapshot(opts)
		ro.Scratch.machine = m // warm from now on
		metScratchColdBuilds.Inc()
		return m, noRelease, nil
	default:
		m, err := BuildMachine(opts)
		if err != nil {
			return nil, nil, fmt.Errorf("build machine: %w", err)
		}
		metScratchColdBuilds.Inc()
		return m, noRelease, nil
	}
}

// detectionLatency measures first-injection → first detection evidence:
// a park, a panic, an internal HYP trap or the bounded-progress watchdog.
// first is the virtual time of the first injection (-1 when none
// happened). The trace is scanned in place without rendering messages.
func detectionLatency(m *Machine, first sim.Time) sim.Time {
	if first < 0 {
		return -1
	}
	latency := sim.Time(-1)
	m.Board.Trace().ScanMeta(func(at sim.Time, kind sim.Kind, _ int) bool {
		switch kind {
		case sim.KindPark, sim.KindPanic, sim.KindHypTrap, sim.KindWedge:
			if at >= first {
				latency = at - first
				return false
			}
		}
		return true
	})
	return latency
}

// GoldenProfile is the result of a fault-free profiling run: activation
// counts of the three candidate functions, the paper's §III profiling
// step that selected the injection points.
type GoldenProfile struct {
	Seed       uint64
	Duration   sim.Time
	Activation map[jailhouse.InjectionPoint]uint64
	CellLines  int
	RootLines  int
	LEDToggles int
	TraceHash  uint64
}

// GoldenRun executes a fault-free run with counting hooks only.
func GoldenRun(seed uint64, d sim.Time) (*GoldenProfile, error) {
	m, err := BuildMachine(DefaultMachineOptions(seed))
	if err != nil {
		return nil, err
	}
	return goldenProfileOn(m, seed, d)
}

// goldenProfileOn runs the fault-free profile on an already-built
// machine — shared by GoldenRun and the warm-pool golden test, which
// feeds it a deep-reset machine to prove warm golden runs hash
// identically.
func goldenProfileOn(m *Machine, seed uint64, d sim.Time) (*GoldenProfile, error) {
	counts := make(map[jailhouse.InjectionPoint]uint64)
	m.HV.Hook = func(point jailhouse.InjectionPoint, cpu int, cell string, ctx *armv7.TrapContext) jailhouse.InjectionResult {
		counts[point]++
		return jailhouse.InjectionResult{}
	}
	m.Run(d)

	gp := &GoldenProfile{
		Seed:       seed,
		Duration:   d,
		Activation: counts,
		CellLines:  m.Board.UART7.LineCount(),
		RootLines:  m.Board.UART0.LineCount(),
		TraceHash:  m.Board.Trace().Hash(),
	}
	if m.RTOS != nil {
		gp.LEDToggles = m.RTOS.LEDToggleCount()
	}
	if v := Classify(m); v.Outcome != OutcomeCorrect {
		return gp, fmt.Errorf("golden run classified %v: %v", v.Outcome, v.Evidence)
	}
	return gp, nil
}
