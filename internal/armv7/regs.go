// Package armv7 models the ARMv7-A architectural state relevant to a
// partitioning hypervisor built on the virtualization extensions: the
// general-purpose register file with per-mode banking, program status
// registers, the HYP-mode syndrome/return registers, and the PSCI call
// surface used for CPU hotplug.
//
// The model is functional, not cycle-accurate: it exists so the fault
// injector can flip bits in the same architectural locations the paper's
// injector targeted on the Cortex-A7, and so the hypervisor model consumes
// those locations through the same decode paths (HSR exception class,
// hypercall argument registers, banked SP) as Jailhouse's ARM port.
package armv7

import "fmt"

// Mode is an ARMv7 processor mode (the low five CPSR bits).
type Mode uint32

// ARMv7 processor modes.
const (
	ModeUSR Mode = 0x10
	ModeFIQ Mode = 0x11
	ModeIRQ Mode = 0x12
	ModeSVC Mode = 0x13
	ModeMON Mode = 0x16
	ModeABT Mode = 0x17
	ModeHYP Mode = 0x1A
	ModeUND Mode = 0x1B
	ModeSYS Mode = 0x1F
)

var modeNames = map[Mode]string{
	ModeUSR: "usr", ModeFIQ: "fiq", ModeIRQ: "irq", ModeSVC: "svc",
	ModeMON: "mon", ModeABT: "abt", ModeHYP: "hyp", ModeUND: "und", ModeSYS: "sys",
}

// String returns the conventional lowercase mode mnemonic.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%#x)", uint32(m))
}

// Valid reports whether m is an architecturally defined mode.
func (m Mode) Valid() bool {
	_, ok := modeNames[m]
	return ok
}

// CPSR bit positions (beyond the mode field).
const (
	CPSRThumb uint32 = 1 << 5  // T
	CPSRFIQ   uint32 = 1 << 6  // F: FIQ masked
	CPSRIRQ   uint32 = 1 << 7  // I: IRQ masked
	CPSRAbort uint32 = 1 << 8  // A: asynchronous abort masked
	CPSREndia uint32 = 1 << 9  // E
	CPSRFlagV uint32 = 1 << 28 // V
	CPSRFlagC uint32 = 1 << 29 // C
	CPSRFlagZ uint32 = 1 << 30 // Z
	CPSRFlagN uint32 = 1 << 31 // N
)

// Register indices for the 16 architecturally visible GPRs. SP, LR and PC
// are plain registers on ARM, which is exactly why the paper's "flip a
// random register" model can reach the stack pointer and program counter.
const (
	RegR0 = iota
	RegR1
	RegR2
	RegR3
	RegR4
	RegR5
	RegR6
	RegR7
	RegR8
	RegR9
	RegR10
	RegR11 // FP in the AAPCS frame-pointer convention
	RegR12 // IP, intra-procedure scratch
	RegSP  // r13
	RegLR  // r14
	RegPC  // r15
	NumRegs
)

// RegName returns the conventional name of GPR index i.
func RegName(i int) string {
	switch i {
	case RegSP:
		return "sp"
	case RegLR:
		return "lr"
	case RegPC:
		return "pc"
	default:
		if i >= 0 && i < NumRegs {
			return fmt.Sprintf("r%d", i)
		}
		return fmt.Sprintf("reg(%d)", i)
	}
}

// bankKey identifies which banked copy of SP/LR/SPSR a mode uses.
// USR and SYS share one bank; every exception mode has its own.
func bankKey(m Mode) Mode {
	if m == ModeSYS {
		return ModeUSR
	}
	return m
}

// bank holds the per-mode banked registers.
type bank struct {
	sp, lr, spsr uint32
}

// CPU is the architectural state of one ARMv7-A core with the
// virtualization extensions.
type CPU struct {
	// Index is the linear CPU number (0-based); MPIDR affinity derives
	// from it.
	Index int

	regs  [NumRegs]uint32
	cpsr  uint32
	banks map[Mode]*bank

	// fiqBank holds r8-r12 for FIQ mode (FIQ banks more registers).
	fiqBank   [5]uint32
	fiqShadow [5]uint32
	inFIQRegs bool

	// HYP-mode virtualization registers.
	ELRHyp  uint32 // preferred return address after a hyp trap
	SPSRHyp uint32 // saved guest CPSR at hyp entry
	HSR     uint32 // hyp syndrome register
	HVBAR   uint32 // hyp vector base
	HCR     uint32 // hyp configuration
	VTTBR   uint64 // stage-2 translation base (VMID in bits 48+)
	HDFAR   uint32 // hyp data fault address
	HIFAR   uint32 // hyp instruction fault address
	HPFAR   uint32 // hyp IPA fault address (bits 31:4 = IPA[39:12])

	// Core identification / control.
	MIDR  uint32
	MPIDR uint32
	SCTLR uint32
	VBAR  uint32

	// Online mirrors the PSCI power state of the core: false after
	// CPU_OFF, true after reset or successful CPU_ON.
	Online bool

	// Parked is set by the hypervisor's cpu_park(): the core spins in a
	// parking page and executes no guest code until reset.
	Parked bool
}

// NewCPU returns a powered-on core in SVC mode with IRQ/FIQ masked, the
// state an ARMv7 core has right out of reset (before a boot ROM runs).
func NewCPU(index int) *CPU {
	c := &CPU{
		Index: index,
		banks: make(map[Mode]*bank),
	}
	for _, m := range []Mode{ModeUSR, ModeFIQ, ModeIRQ, ModeSVC, ModeMON, ModeABT, ModeHYP, ModeUND} {
		c.banks[m] = &bank{}
	}
	c.Reset()
	return c
}

// Reset restores the core to its power-on state in place — the warm
// machine-reuse path. Every architectural register, banked copy and the
// HYP virtualization state return to the values NewCPU establishes; the
// bank map itself is kept allocated.
func (c *CPU) Reset() {
	c.regs = [NumRegs]uint32{}
	c.cpsr = uint32(ModeSVC) | CPSRIRQ | CPSRFIQ | CPSRAbort
	for _, b := range c.banks {
		*b = bank{}
	}
	c.fiqBank = [5]uint32{}
	c.fiqShadow = [5]uint32{}
	c.inFIQRegs = false
	c.ELRHyp, c.SPSRHyp, c.HSR, c.HVBAR, c.HCR = 0, 0, 0, 0, 0
	c.VTTBR = 0
	c.HDFAR, c.HIFAR, c.HPFAR = 0, 0, 0
	// Cortex-A7 MIDR: implementer 0x41 'A', architecture 0xF,
	// part number 0xC07.
	c.MIDR = 0x410FC075
	c.MPIDR = 0x80000000 | uint32(c.Index) // U=0 multiprocessor, Aff0=index
	c.SCTLR, c.VBAR = 0, 0
	c.Online = c.Index == 0 // secondary cores wait for CPU_ON
	c.Parked = false
}

// Snapshot is a deep copy of one core's full architectural state —
// everything VisitState enumerates.
type Snapshot struct {
	regs      [NumRegs]uint32
	cpsr      uint32
	banks     map[Mode]bank
	fiqBank   [5]uint32
	fiqShadow [5]uint32
	inFIQRegs bool

	elrHyp, spsrHyp, hsr, hvbar, hcr uint32
	vttbr                            uint64
	hdfar, hifar, hpfar              uint32

	midr, mpidr, sctlr, vbar uint32
	online, parked           bool
}

// CaptureSnapshot deep-copies the core's architectural state.
func (c *CPU) CaptureSnapshot() *Snapshot {
	s := &Snapshot{
		regs: c.regs, cpsr: c.cpsr,
		banks:     make(map[Mode]bank, len(c.banks)),
		fiqBank:   c.fiqBank,
		fiqShadow: c.fiqShadow,
		inFIQRegs: c.inFIQRegs,
		elrHyp:    c.ELRHyp, spsrHyp: c.SPSRHyp, hsr: c.HSR,
		hvbar: c.HVBAR, hcr: c.HCR, vttbr: c.VTTBR,
		hdfar: c.HDFAR, hifar: c.HIFAR, hpfar: c.HPFAR,
		midr: c.MIDR, mpidr: c.MPIDR, sctlr: c.SCTLR, vbar: c.VBAR,
		online: c.Online, parked: c.Parked,
	}
	for m, b := range c.banks {
		s.banks[m] = *b
	}
	return s
}

// RestoreSnapshot rewinds the core to a captured state in place (the
// bank map's entries are written through, not replaced).
func (c *CPU) RestoreSnapshot(s *Snapshot) {
	c.regs, c.cpsr = s.regs, s.cpsr
	for m, b := range c.banks {
		*b = s.banks[m]
	}
	c.fiqBank, c.fiqShadow, c.inFIQRegs = s.fiqBank, s.fiqShadow, s.inFIQRegs
	c.ELRHyp, c.SPSRHyp, c.HSR = s.elrHyp, s.spsrHyp, s.hsr
	c.HVBAR, c.HCR, c.VTTBR = s.hvbar, s.hcr, s.vttbr
	c.HDFAR, c.HIFAR, c.HPFAR = s.hdfar, s.hifar, s.hpfar
	c.MIDR, c.MPIDR, c.SCTLR, c.VBAR = s.midr, s.mpidr, s.sctlr, s.vbar
	c.Online, c.Parked = s.online, s.parked
}

// VisitState feeds every architectural state word of the core to f in a
// fixed order: current-mode GPRs, CPSR, all banked SP/LR/SPSR copies,
// the FIQ high-register banks, the HYP virtualization registers, the
// identification/control registers and the power/park status. It exists
// for power-on-equivalence digests (core.Machine.StateDigest): a reset
// that forgets any of this state must be visible to the leak detector.
func (c *CPU) VisitState(f func(uint32)) {
	for _, r := range c.regs {
		f(r)
	}
	f(c.cpsr)
	for _, m := range []Mode{ModeUSR, ModeFIQ, ModeIRQ, ModeSVC, ModeMON, ModeABT, ModeHYP, ModeUND} {
		b := c.banks[m]
		f(b.sp)
		f(b.lr)
		f(b.spsr)
	}
	for _, r := range c.fiqBank {
		f(r)
	}
	for _, r := range c.fiqShadow {
		f(r)
	}
	if c.inFIQRegs {
		f(1)
	} else {
		f(0)
	}
	f(c.ELRHyp)
	f(c.SPSRHyp)
	f(c.HSR)
	f(c.HVBAR)
	f(c.HCR)
	f(uint32(c.VTTBR))
	f(uint32(c.VTTBR >> 32))
	f(c.HDFAR)
	f(c.HIFAR)
	f(c.HPFAR)
	f(c.MIDR)
	f(c.MPIDR)
	f(c.SCTLR)
	f(c.VBAR)
	if c.Online {
		f(1)
	} else {
		f(0)
	}
	if c.Parked {
		f(1)
	} else {
		f(0)
	}
}

// Mode returns the current processor mode from CPSR.
func (c *CPU) Mode() Mode { return Mode(c.cpsr & 0x1F) }

// CPSR returns the current program status register.
func (c *CPU) CPSR() uint32 { return c.cpsr }

// SetCPSR replaces CPSR, performing register re-banking if the mode field
// changed. Invalid target modes are still written (hardware would take an
// illegal-state exception; our callers detect it via Mode().Valid()).
func (c *CPU) SetCPSR(v uint32) {
	oldMode := c.Mode()
	newMode := Mode(v & 0x1F)
	if oldMode != newMode {
		c.rebank(oldMode, newMode)
	}
	c.cpsr = v
}

// SetMode switches processor mode preserving the other CPSR bits.
func (c *CPU) SetMode(m Mode) {
	c.SetCPSR((c.cpsr &^ 0x1F) | uint32(m))
}

// rebank saves the current SP/LR into the old mode's bank and loads the
// new mode's bank, handling FIQ's extended r8-r12 banking.
func (c *CPU) rebank(old, new Mode) {
	ob := c.banks[bankKey(old)]
	if ob != nil {
		ob.sp, ob.lr = c.regs[RegSP], c.regs[RegLR]
	}
	nb := c.banks[bankKey(new)]
	if nb != nil {
		c.regs[RegSP], c.regs[RegLR] = nb.sp, nb.lr
	}
	switch {
	case new == ModeFIQ && !c.inFIQRegs:
		copy(c.fiqShadow[:], c.regs[RegR8:RegR12+1])
		copy(c.regs[RegR8:RegR12+1], c.fiqBank[:])
		c.inFIQRegs = true
	case old == ModeFIQ && new != ModeFIQ && c.inFIQRegs:
		copy(c.fiqBank[:], c.regs[RegR8:RegR12+1])
		copy(c.regs[RegR8:RegR12+1], c.fiqShadow[:])
		c.inFIQRegs = false
	}
}

// Reg returns GPR i in the current mode. Out-of-range indices return 0.
func (c *CPU) Reg(i int) uint32 {
	if i < 0 || i >= NumRegs {
		return 0
	}
	return c.regs[i]
}

// SetReg writes GPR i in the current mode. Out-of-range indices are ignored.
func (c *CPU) SetReg(i int, v uint32) {
	if i < 0 || i >= NumRegs {
		return
	}
	c.regs[i] = v
}

// Regs returns a snapshot of the 16 current-mode GPRs.
func (c *CPU) Regs() [NumRegs]uint32 { return c.regs }

// SetRegs replaces all 16 current-mode GPRs (used on exception return,
// when the possibly-corrupted trap context is restored to the guest).
func (c *CPU) SetRegs(r [NumRegs]uint32) { c.regs = r }

// SPSR returns the saved program status register of the current mode.
// USR/SYS have no SPSR; reading it returns 0 (UNPREDICTABLE on hardware).
func (c *CPU) SPSR() uint32 {
	b := c.banks[bankKey(c.Mode())]
	if b == nil || c.Mode() == ModeUSR || c.Mode() == ModeSYS {
		return 0
	}
	return b.spsr
}

// SetSPSR writes the current mode's SPSR.
func (c *CPU) SetSPSR(v uint32) {
	if c.Mode() == ModeUSR || c.Mode() == ModeSYS {
		return
	}
	if b := c.banks[bankKey(c.Mode())]; b != nil {
		b.spsr = v
	}
}

// BankedSP returns mode m's banked stack pointer without switching modes.
func (c *CPU) BankedSP(m Mode) uint32 {
	if m == c.Mode() || bankKey(m) == bankKey(c.Mode()) {
		return c.regs[RegSP]
	}
	if b := c.banks[bankKey(m)]; b != nil {
		return b.sp
	}
	return 0
}

// SetBankedSP writes mode m's banked stack pointer without switching modes.
func (c *CPU) SetBankedSP(m Mode, v uint32) {
	if m == c.Mode() || bankKey(m) == bankKey(c.Mode()) {
		c.regs[RegSP] = v
		return
	}
	if b := c.banks[bankKey(m)]; b != nil {
		b.sp = v
	}
}

// EnterHyp performs the architectural part of a trap into HYP mode:
// saves the return address and guest CPSR, loads HSR with the syndrome,
// switches to HYP mode with IRQs masked.
func (c *CPU) EnterHyp(hsr, returnAddr uint32) {
	c.ELRHyp = returnAddr
	c.SPSRHyp = c.cpsr
	c.HSR = hsr
	c.SetMode(ModeHYP)
	c.cpsr |= CPSRIRQ | CPSRAbort
}

// ExitHyp performs ERET from HYP mode: restores the guest CPSR from
// SPSR_hyp and returns the resume address (ELR_hyp). The caller (the
// hypervisor model) is responsible for having written back any register
// changes first.
func (c *CPU) ExitHyp() (resumeAddr uint32) {
	resume := c.ELRHyp
	c.SetCPSR(c.SPSRHyp)
	c.regs[RegPC] = resume
	return resume
}

// String summarises the core state for traces.
func (c *CPU) String() string {
	state := "online"
	if !c.Online {
		state = "offline"
	}
	if c.Parked {
		state = "parked"
	}
	return fmt.Sprintf("cpu%d(%s,%s,pc=%#x)", c.Index, c.Mode(), state, c.regs[RegPC])
}
