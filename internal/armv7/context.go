package armv7

import (
	"fmt"
	"strings"
)

// TrapContext is the register frame a hypervisor saves on entry from a
// guest — the exact structure the paper's injector corrupts. It mirrors
// Jailhouse's per-CPU saved state on ARM: the 16 guest GPRs (the banked
// user-mode view), the syndrome register, the saved guest PSR, the
// preferred return address and the fault address registers.
//
// Everything the three instrumented handlers (ArchHandleTrap,
// ArchHandleHVC, IRQChipHandleIRQ) know about the interrupted guest flows
// through this structure, which is why register bit-flips at handler entry
// reproduce the paper's failure modes.
type TrapContext struct {
	Regs  [NumRegs]uint32 // guest r0-r12, sp, lr, pc at trap time
	HSR   uint32          // syndrome: why we trapped
	SPSR  uint32          // guest CPSR at trap time
	ELR   uint32          // preferred return address
	HDFAR uint32          // faulting virtual address (data aborts)
	HPFAR uint32          // faulting IPA >> 4 (stage-2 aborts)

	// CPUID is the hypervisor's cached linear CPU number for this frame.
	// Jailhouse derives its per-CPU data pointer from the HYP stack
	// pointer; corrupting the frame's notion of "which CPU am I" is the
	// mechanism behind cross-CPU state corruption (panic park).
	CPUID uint32

	// Written is a bitmask of GPR slots the handler legitimately wrote
	// (hypercall results, MMIO read data, emulated system registers).
	// Exception return merges exactly these slots into the guest frame:
	// an injector corrupting the handler's *live* registers therefore
	// cannot reach the guest's saved state except through a written
	// slot — which is why the paper's E1 sees clean EINVAL failures and
	// never a corrupted root kernel.
	Written uint32
}

// WriteReg records a legitimate handler write to GPR slot i.
func (tc *TrapContext) WriteReg(i int, v uint32) {
	if i < 0 || i >= NumRegs {
		return
	}
	tc.Regs[i] = v
	tc.Written |= 1 << uint(i)
}

// MergeWritten folds the handler's legitimate writes (and the advanced
// return state) into the pristine pre-trap frame, returning the frame to
// restore to the guest.
func (tc *TrapContext) MergeWritten(pre TrapContext) TrapContext {
	out := pre
	for i := 0; i < NumRegs; i++ {
		if tc.Written&(1<<uint(i)) != 0 {
			out.Regs[i] = tc.Regs[i]
		}
	}
	out.ELR = tc.ELR // the handler owns the resume address
	return out
}

// CaptureContext builds a TrapContext from the live CPU state at HYP entry.
func CaptureContext(c *CPU) TrapContext {
	return TrapContext{
		Regs:  c.Regs(),
		HSR:   c.HSR,
		SPSR:  c.SPSRHyp,
		ELR:   c.ELRHyp,
		HDFAR: c.HDFAR,
		HPFAR: c.HPFAR,
		CPUID: uint32(c.Index),
	}
}

// Restore writes the (possibly modified) context back to the CPU prior to
// exception return, mirroring the hypervisor's register-restore path. The
// guest resumes with whatever is in the frame — corrupted or not.
func (tc *TrapContext) Restore(c *CPU) {
	c.SetRegs(tc.Regs)
	c.SPSRHyp = tc.SPSR
	c.ELRHyp = tc.ELR
}

// Field identifies one 32-bit slot of the trap context addressable by the
// fault injector. Slots 0..15 are the GPRs; the named constants address
// the control fields.
type Field int

// Injectable context fields beyond the 16 GPRs.
const (
	FieldHSR Field = NumRegs + iota
	FieldSPSR
	FieldELR
	FieldHDFAR
	FieldCPUID
	NumFields // total addressable 32-bit slots
)

// FieldName returns a human-readable name for an injectable slot.
func FieldName(f Field) string {
	switch {
	case int(f) < NumRegs:
		return RegName(int(f))
	case f == FieldHSR:
		return "hsr"
	case f == FieldSPSR:
		return "spsr"
	case f == FieldELR:
		return "elr"
	case f == FieldHDFAR:
		return "hdfar"
	case f == FieldCPUID:
		return "cpuid"
	default:
		return fmt.Sprintf("field(%d)", int(f))
	}
}

// Get reads an injectable slot.
func (tc *TrapContext) Get(f Field) uint32 {
	switch {
	case int(f) < NumRegs && f >= 0:
		return tc.Regs[f]
	case f == FieldHSR:
		return tc.HSR
	case f == FieldSPSR:
		return tc.SPSR
	case f == FieldELR:
		return tc.ELR
	case f == FieldHDFAR:
		return tc.HDFAR
	case f == FieldCPUID:
		return tc.CPUID
	default:
		return 0
	}
}

// Set writes an injectable slot.
func (tc *TrapContext) Set(f Field, v uint32) {
	switch {
	case int(f) < NumRegs && f >= 0:
		tc.Regs[f] = v
	case f == FieldHSR:
		tc.HSR = v
	case f == FieldSPSR:
		tc.SPSR = v
	case f == FieldELR:
		tc.ELR = v
	case f == FieldHDFAR:
		tc.HDFAR = v
	case f == FieldCPUID:
		tc.CPUID = v
	}
}

// FlipBit XORs a single bit of slot f. It is its own inverse, a property
// the injection tests rely on.
func (tc *TrapContext) FlipBit(f Field, bit uint) {
	tc.Set(f, tc.Get(f)^(1<<(bit%32)))
}

// Dump renders the frame the way hypervisor panic messages do.
func (tc *TrapContext) Dump() string {
	var b strings.Builder
	for i := 0; i < NumRegs; i++ {
		fmt.Fprintf(&b, "%s=%08x ", RegName(i), tc.Regs[i])
		if i%4 == 3 {
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "hsr=%08x (%s) spsr=%08x elr=%08x hdfar=%08x cpu=%d\n",
		tc.HSR, HSRClass(tc.HSR), tc.SPSR, tc.ELR, tc.HDFAR, tc.CPUID)
	return b.String()
}
