package armv7

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewCPUResetState(t *testing.T) {
	c := NewCPU(0)
	if c.Mode() != ModeSVC {
		t.Fatalf("reset mode = %v, want svc", c.Mode())
	}
	if c.CPSR()&CPSRIRQ == 0 || c.CPSR()&CPSRFIQ == 0 {
		t.Fatal("IRQ/FIQ should be masked at reset")
	}
	if !c.Online {
		t.Fatal("cpu0 should be online at reset")
	}
	if NewCPU(1).Online {
		t.Fatal("secondary cpu should be offline at reset")
	}
	if got := NewCPU(1).MPIDR & 0xFF; got != 1 {
		t.Fatalf("cpu1 MPIDR Aff0 = %d, want 1", got)
	}
}

func TestModeValidAndString(t *testing.T) {
	valid := []Mode{ModeUSR, ModeFIQ, ModeIRQ, ModeSVC, ModeMON, ModeABT, ModeHYP, ModeUND, ModeSYS}
	for _, m := range valid {
		if !m.Valid() {
			t.Errorf("mode %v should be valid", m)
		}
	}
	if Mode(0x00).Valid() || Mode(0x1E).Valid() {
		t.Error("undefined mode encodings reported valid")
	}
	if ModeHYP.String() != "hyp" {
		t.Errorf("ModeHYP.String() = %q", ModeHYP.String())
	}
	if !strings.Contains(Mode(0x0).String(), "0x0") {
		t.Errorf("invalid mode string = %q", Mode(0).String())
	}
}

func TestRegisterBanking(t *testing.T) {
	c := NewCPU(0)
	c.SetReg(RegSP, 0x1000) // svc sp
	c.SetReg(RegLR, 0x2000) // svc lr
	c.SetReg(RegR4, 0x44)

	c.SetMode(ModeIRQ)
	if c.Reg(RegSP) == 0x1000 {
		t.Fatal("IRQ mode sees SVC sp")
	}
	if c.Reg(RegR4) != 0x44 {
		t.Fatal("r4 is not banked and must survive mode switch")
	}
	c.SetReg(RegSP, 0x3000)

	c.SetMode(ModeSVC)
	if c.Reg(RegSP) != 0x1000 || c.Reg(RegLR) != 0x2000 {
		t.Fatalf("svc bank lost: sp=%#x lr=%#x", c.Reg(RegSP), c.Reg(RegLR))
	}
	c.SetMode(ModeIRQ)
	if c.Reg(RegSP) != 0x3000 {
		t.Fatalf("irq bank lost: sp=%#x", c.Reg(RegSP))
	}
}

func TestUsrSysShareBank(t *testing.T) {
	c := NewCPU(0)
	c.SetMode(ModeUSR)
	c.SetReg(RegSP, 0xAAAA)
	c.SetMode(ModeSYS)
	if c.Reg(RegSP) != 0xAAAA {
		t.Fatal("sys mode must share usr sp bank")
	}
	c.SetMode(ModeSVC)
	c.SetMode(ModeUSR)
	if c.Reg(RegSP) != 0xAAAA {
		t.Fatal("usr sp lost after svc roundtrip")
	}
}

func TestFIQBanksR8R12(t *testing.T) {
	c := NewCPU(0)
	c.SetReg(RegR8, 0x88)
	c.SetReg(RegR12, 0xCC)
	c.SetMode(ModeFIQ)
	if c.Reg(RegR8) == 0x88 {
		t.Fatal("fiq mode must bank r8")
	}
	c.SetReg(RegR8, 0xF8)
	c.SetMode(ModeSVC)
	if c.Reg(RegR8) != 0x88 || c.Reg(RegR12) != 0xCC {
		t.Fatalf("r8/r12 corrupted after fiq roundtrip: %#x %#x", c.Reg(RegR8), c.Reg(RegR12))
	}
	c.SetMode(ModeFIQ)
	if c.Reg(RegR8) != 0xF8 {
		t.Fatalf("fiq r8 bank lost: %#x", c.Reg(RegR8))
	}
}

func TestBankedSPAccessWithoutModeSwitch(t *testing.T) {
	c := NewCPU(0)
	c.SetBankedSP(ModeHYP, 0xD00D)
	if got := c.BankedSP(ModeHYP); got != 0xD00D {
		t.Fatalf("BankedSP(hyp) = %#x", got)
	}
	if c.Mode() != ModeSVC {
		t.Fatal("BankedSP changed the active mode")
	}
	// Current-mode access goes straight to the live register.
	c.SetBankedSP(ModeSVC, 0x5555)
	if c.Reg(RegSP) != 0x5555 {
		t.Fatal("SetBankedSP on current mode must hit live sp")
	}
}

func TestEnterExitHyp(t *testing.T) {
	c := NewCPU(0)
	c.SetReg(RegPC, 0x8000)
	guestCPSR := c.CPSR()
	hsr := BuildHSR(ECHVC, true, BuildHVCISS(JailhouseHVCImm))
	c.EnterHyp(hsr, 0x8004)

	if c.Mode() != ModeHYP {
		t.Fatalf("mode after EnterHyp = %v", c.Mode())
	}
	if c.HSR != hsr || c.ELRHyp != 0x8004 || c.SPSRHyp != guestCPSR {
		t.Fatal("EnterHyp did not latch syndrome/return state")
	}
	if c.CPSR()&CPSRIRQ == 0 {
		t.Fatal("IRQs must be masked in hyp mode")
	}

	resume := c.ExitHyp()
	if resume != 0x8004 {
		t.Fatalf("ExitHyp resume = %#x", resume)
	}
	if c.Mode() != ModeSVC {
		t.Fatalf("mode after ExitHyp = %v, want guest svc", c.Mode())
	}
	if c.Reg(RegPC) != 0x8004 {
		t.Fatalf("pc after ExitHyp = %#x", c.Reg(RegPC))
	}
}

func TestRegNameAndBounds(t *testing.T) {
	tests := map[int]string{0: "r0", 11: "r11", 12: "r12", 13: "sp", 14: "lr", 15: "pc"}
	for i, want := range tests {
		if got := RegName(i); got != want {
			t.Errorf("RegName(%d) = %q, want %q", i, got, want)
		}
	}
	c := NewCPU(0)
	c.SetReg(-1, 7)
	c.SetReg(99, 7)
	if c.Reg(-1) != 0 || c.Reg(99) != 0 {
		t.Fatal("out-of-range register access must be inert")
	}
}

func TestHSRRoundTrip(t *testing.T) {
	hsr := BuildHSR(ECDABTLow, true, 0x123456)
	if got := HSRClass(hsr); got != ECDABTLow {
		t.Fatalf("class = %v", got)
	}
	if !HSRIL(hsr) {
		t.Fatal("IL lost")
	}
	if got := HSRISS(hsr); got != 0x123456 {
		t.Fatalf("iss = %#x", got)
	}
}

func TestHSRPropertyRoundTrip(t *testing.T) {
	prop := func(ecRaw uint8, il bool, iss uint32) bool {
		ec := EC(ecRaw & 0x3F)
		hsr := BuildHSR(ec, il, iss)
		return HSRClass(hsr) == ec && HSRIL(hsr) == il && HSRISS(hsr) == iss&0x01FFFFFF
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECKnownAndString(t *testing.T) {
	if !ECHVC.Known() || !ECDABTLow.Known() {
		t.Fatal("architectural ECs reported unknown")
	}
	if EC(0x3F).Known() {
		t.Fatal("EC 0x3f should be unknown")
	}
	if got := ECDABTLow.String(); !strings.Contains(got, "0x24") || !strings.Contains(got, "dabt-low") {
		t.Fatalf("ECDABTLow.String() = %q", got)
	}
}

func TestDataAbortISSRoundTrip(t *testing.T) {
	tests := []struct {
		size  int
		reg   int
		write bool
	}{
		{1, 0, false}, {2, 3, true}, {4, 12, true}, {4, 15, false},
	}
	for _, tt := range tests {
		iss := BuildDataAbortISS(tt.size, tt.reg, tt.write, FSCTranslationL2)
		da := DecodeDataAbort(iss)
		if !da.Valid {
			t.Fatalf("ISV lost for %+v", tt)
		}
		if da.Size != tt.size || da.Reg != tt.reg || da.Write != tt.write {
			t.Fatalf("roundtrip %+v => %+v", tt, da)
		}
		if da.FSC != FSCTranslationL2 {
			t.Fatalf("fsc = %#x", da.FSC)
		}
	}
}

func TestDataAbortInvalidSyndrome(t *testing.T) {
	// ISV clear: undecodable.
	da := DecodeDataAbort(0)
	if da.Valid {
		t.Fatal("ISV=0 decoded as valid")
	}
	// Reserved SAS encoding (0b11) must invalidate the decode: this is
	// one of the mechanisms by which an HSR bit-flip turns an emulatable
	// MMIO access into an unhandled trap.
	iss := BuildDataAbortISS(4, 1, false, 0) | 3<<22 | 1<<24
	if DecodeDataAbort(iss).Valid {
		t.Fatal("reserved SAS decoded as valid")
	}
}

func TestHVCImmediate(t *testing.T) {
	hsr := BuildHSR(ECHVC, true, BuildHVCISS(JailhouseHVCImm))
	if got := HVCImmediate(hsr); got != JailhouseHVCImm {
		t.Fatalf("imm = %#x, want %#x", got, JailhouseHVCImm)
	}
}

func TestTrapContextCaptureRestore(t *testing.T) {
	c := NewCPU(1)
	c.SetReg(RegR0, 4) // hypercall code in r0
	c.SetReg(RegR1, 0xDEAD)
	c.EnterHyp(BuildHSR(ECHVC, true, BuildHVCISS(JailhouseHVCImm)), 0x9000)

	tc := CaptureContext(c)
	if tc.CPUID != 1 || tc.Regs[RegR0] != 4 || tc.ELR != 0x9000 {
		t.Fatalf("capture = %+v", tc)
	}

	tc.Regs[RegR0] = 0xFFFFFFEA // hypervisor writes return value
	tc.ELR = 0x9004
	tc.Restore(c)
	c.ExitHyp()
	if c.Reg(RegR0) != 0xFFFFFFEA {
		t.Fatalf("r0 after restore = %#x", c.Reg(RegR0))
	}
	if c.Reg(RegPC) != 0x9004 {
		t.Fatalf("pc after restore = %#x", c.Reg(RegPC))
	}
}

func TestTrapContextFieldAccess(t *testing.T) {
	var tc TrapContext
	for f := Field(0); f < NumFields; f++ {
		tc.Set(f, uint32(f)+100)
	}
	for f := Field(0); f < NumFields; f++ {
		if got := tc.Get(f); got != uint32(f)+100 {
			t.Fatalf("field %s = %d, want %d", FieldName(f), got, uint32(f)+100)
		}
	}
	// Out-of-range fields are inert.
	tc.Set(NumFields+5, 1)
	if tc.Get(NumFields+5) != 0 {
		t.Fatal("out-of-range field not inert")
	}
}

func TestFlipBitInvolution(t *testing.T) {
	prop := func(fRaw uint8, bit uint8, seedVal uint32) bool {
		f := Field(int(fRaw) % int(NumFields))
		var tc TrapContext
		tc.Set(f, seedVal)
		before := tc.Get(f)
		tc.FlipBit(f, uint(bit))
		if tc.Get(f) == before {
			return false // a flip must change the value
		}
		tc.FlipBit(f, uint(bit))
		return tc.Get(f) == before // and be its own inverse
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldNames(t *testing.T) {
	if FieldName(Field(RegSP)) != "sp" {
		t.Error("sp name")
	}
	if FieldName(FieldHSR) != "hsr" || FieldName(FieldCPUID) != "cpuid" {
		t.Error("control field names")
	}
}

func TestTrapContextDump(t *testing.T) {
	var tc TrapContext
	tc.HSR = BuildHSR(ECDABTLow, true, 0)
	d := tc.Dump()
	for _, want := range []string{"r0=", "pc=", "dabt-low", "cpu=0"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Dump missing %q:\n%s", want, d)
		}
	}
}

func TestPSCI(t *testing.T) {
	if !IsPSCICall(PSCICPUOn) || !IsPSCICall(PSCICPUOff) {
		t.Fatal("CPU_ON/CPU_OFF not recognised as PSCI")
	}
	if IsPSCICall(0x12345678) {
		t.Fatal("non-PSCI fn recognised")
	}
	if PSCIName(PSCICPUOn) != "CPU_ON" {
		t.Fatalf("PSCIName = %q", PSCIName(PSCICPUOn))
	}
	if !strings.Contains(PSCIName(0x8400001E), "PSCI(") {
		t.Fatal("unknown PSCI fn name")
	}
}

func TestCPUStringStates(t *testing.T) {
	c := NewCPU(1)
	if !strings.Contains(c.String(), "offline") {
		t.Fatalf("String() = %q", c.String())
	}
	c.Online = true
	c.Parked = true
	if !strings.Contains(c.String(), "parked") {
		t.Fatalf("String() = %q", c.String())
	}
}
