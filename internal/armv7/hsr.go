package armv7

import "fmt"

// EC is the 6-bit exception class from HSR[31:26]. The values are the
// architectural AArch32 encodings; EC 0x24 (data abort from a lower
// exception level) is the "error code 0x24" the paper reports for the
// unhandled-trap → cpu_park outcome.
type EC uint32

// Exception classes relevant to a partitioning hypervisor.
const (
	ECUnknown EC = 0x00 // unknown reason
	ECWFx     EC = 0x01 // trapped WFI or WFE
	ECCP15_32 EC = 0x03 // trapped MCR/MRC to CP15
	ECCP15_64 EC = 0x04 // trapped MCRR/MRRC to CP15
	ECCP14_32 EC = 0x05 // trapped MCR/MRC to CP14
	ECCP14_LS EC = 0x06 // trapped LDC/STC to CP14
	ECHCPTR   EC = 0x07 // access to CP0..CP13 trapped by HCPTR
	ECCP10    EC = 0x08 // trapped VMRS
	ECJazelle EC = 0x09 // trapped BXJ
	ECCP14_64 EC = 0x0C // trapped MRRC to CP14
	ECSVC     EC = 0x11 // SVC taken in hyp (not routed from guests here)
	ECHVC     EC = 0x12 // hypervisor call
	ECSMC     EC = 0x13 // trapped SMC
	ECIABTLow EC = 0x20 // prefetch abort from a lower exception level
	ECIABTCur EC = 0x21 // prefetch abort taken in hyp mode itself
	ECDABTLow EC = 0x24 // data abort from a lower exception level
	ECDABTCur EC = 0x25 // data abort taken in hyp mode itself
)

var ecNames = map[EC]string{
	ECUnknown: "unknown", ECWFx: "wfx", ECCP15_32: "cp15-32", ECCP15_64: "cp15-64",
	ECCP14_32: "cp14-32", ECCP14_LS: "cp14-ls", ECHCPTR: "hcptr", ECCP10: "cp10",
	ECJazelle: "bxj", ECCP14_64: "cp14-64", ECSVC: "svc", ECHVC: "hvc", ECSMC: "smc",
	ECIABTLow: "iabt-low", ECIABTCur: "iabt-cur", ECDABTLow: "dabt-low", ECDABTCur: "dabt-cur",
}

// String returns the mnemonic plus the numeric code, matching the style of
// hypervisor panic dumps ("dabt-low(0x24)").
func (e EC) String() string {
	if e < EC(len(ecStrings)) {
		return ecStrings[e]
	}
	return ecString(e)
}

func ecString(e EC) string {
	name, ok := ecNames[e]
	if !ok {
		name = "invalid"
	}
	return fmt.Sprintf("%s(%#02x)", name, uint32(e))
}

// ecStrings pre-renders every 6-bit class: the trap path stringifies the
// EC on each trapped access, so String must not format.
var ecStrings = func() (s [64]string) {
	for i := range s {
		s[i] = ecString(EC(i))
	}
	return s
}()

// Known reports whether the EC value is architecturally defined in this
// model. Bit-flips in HSR routinely produce unknown classes; the
// hypervisor's dispatch treats those as unhandled traps.
func (e EC) Known() bool {
	_, ok := ecNames[e]
	return ok
}

// HSR field layout.
const (
	hsrECShift = 26
	hsrECMask  = 0x3F
	hsrILBit   = 1 << 25
	hsrISSMask = 0x01FFFFFF
)

// BuildHSR assembles a syndrome register value from exception class,
// instruction-length bit and ISS payload (truncated to 25 bits).
func BuildHSR(ec EC, il32 bool, iss uint32) uint32 {
	v := (uint32(ec) & hsrECMask) << hsrECShift
	if il32 {
		v |= hsrILBit
	}
	return v | (iss & hsrISSMask)
}

// HSRClass extracts the exception class from a syndrome value.
func HSRClass(hsr uint32) EC { return EC((hsr >> hsrECShift) & hsrECMask) }

// HSRIL reports the instruction-length bit (true = 32-bit instruction).
func HSRIL(hsr uint32) bool { return hsr&hsrILBit != 0 }

// HSRISS extracts the 25-bit instruction-specific syndrome.
func HSRISS(hsr uint32) uint32 { return hsr & hsrISSMask }

// Data-abort ISS fields (EC 0x24/0x25), as used by MMIO emulation.
const (
	dabtISVBit   = 1 << 24 // syndrome valid: SAS/SRT/WnR populated
	dabtSASShift = 22      // access size: 0=byte 1=half 2=word
	dabtSASMask  = 0x3
	dabtSRTShift = 16 // register transfer: GPR index of the data register
	dabtSRTMask  = 0xF
	dabtWnRBit   = 1 << 6 // write-not-read
	dabtFSCMask  = 0x3F   // fault status code
)

// Data-abort fault status codes (subset).
const (
	FSCTranslationL1 = 0x05 // stage-2 translation fault, level 1
	FSCTranslationL2 = 0x06
	FSCPermissionL1  = 0x0D
	FSCPermissionL2  = 0x0E
)

// DataAbort describes a decoded stage-2 data abort.
type DataAbort struct {
	Valid bool   // ISV: decode below is meaningful
	Size  int    // access size in bytes: 1, 2 or 4
	Reg   int    // GPR index holding/receiving the data
	Write bool   // true for stores
	FSC   uint32 // fault status code
}

// BuildDataAbortISS encodes a data-abort ISS for a single-register MMIO
// access, the only form the Cortex-A7 generates for the device accesses
// our guests make.
func BuildDataAbortISS(sizeBytes int, reg int, write bool, fsc uint32) uint32 {
	var sas uint32
	switch sizeBytes {
	case 1:
		sas = 0
	case 2:
		sas = 1
	default:
		sas = 2
	}
	iss := uint32(dabtISVBit) | sas<<dabtSASShift | (uint32(reg)&dabtSRTMask)<<dabtSRTShift | (fsc & dabtFSCMask)
	if write {
		iss |= dabtWnRBit
	}
	return iss
}

// DecodeDataAbort parses a data-abort ISS. If ISV is clear the returned
// DataAbort has Valid=false and only FSC is meaningful — exactly the
// situation a hypervisor cannot emulate and must treat as unhandled.
func DecodeDataAbort(iss uint32) DataAbort {
	da := DataAbort{
		Valid: iss&dabtISVBit != 0,
		Write: iss&dabtWnRBit != 0,
		FSC:   iss & dabtFSCMask,
		Reg:   int((iss >> dabtSRTShift) & dabtSRTMask),
	}
	switch (iss >> dabtSASShift) & dabtSASMask {
	case 0:
		da.Size = 1
	case 1:
		da.Size = 2
	case 2:
		da.Size = 4
	default:
		da.Size = 0 // reserved encoding: undecodable
		da.Valid = false
	}
	return da
}

// HVC ISS: the 16-bit immediate of the HVC instruction. Jailhouse marks its
// hypercalls with immediate 0x4a48 ("JH") and ignores HVCs with any other
// immediate as not-for-us.
const JailhouseHVCImm = 0x4a48

// BuildHVCISS encodes an HVC immediate into the ISS field.
func BuildHVCISS(imm uint16) uint32 { return uint32(imm) }

// HVCImmediate extracts the HVC immediate from a syndrome's ISS.
func HVCImmediate(hsr uint32) uint16 { return uint16(HSRISS(hsr) & 0xFFFF) }
