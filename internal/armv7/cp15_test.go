package armv7

import "testing"

func TestCP15ISSRoundTrip(t *testing.T) {
	for _, reg := range []CP15Reg{CP15MIDR, CP15MPIDR, CP15CCSIDR, CP15ACTLR} {
		for _, rt := range []int{0, 7, 12} {
			for _, read := range []bool{true, false} {
				iss := BuildCP15ISS(reg, rt, read)
				gotReg, gotRt, gotRead := DecodeCP15(iss)
				if gotReg != reg || gotRt != rt || gotRead != read {
					t.Fatalf("roundtrip %v/%d/%v → %v/%d/%v", reg, rt, read, gotReg, gotRt, gotRead)
				}
			}
		}
	}
}

func TestCP15Values(t *testing.T) {
	c := NewCPU(1)
	v, ok := CP15Value(c, CP15MPIDR)
	if !ok || v != c.MPIDR {
		t.Fatalf("MPIDR = %#x ok=%v", v, ok)
	}
	v, ok = CP15Value(c, CP15MIDR)
	if !ok || v != 0x410FC075 {
		t.Fatalf("MIDR = %#x", v)
	}
	if _, ok := CP15Value(c, CP15ACTLR); ok {
		t.Fatal("ACTLR must be unimplemented (RAZ)")
	}
	if CP15MIDR.String() != "p15,0,c0,c0,0" {
		t.Fatalf("String = %q", CP15MIDR.String())
	}
}
