package armv7

import "fmt"

// CP15 register addressing: the (opc1, CRn, CRm, opc2) tuple of the
// MCR/MRC instruction, as encoded in the HSR ISS for EC 0x03.
type CP15Reg struct {
	Opc1, CRn, CRm, Opc2 uint32
}

// Well-known CP15 registers a hypervisor typically traps or emulates.
var (
	CP15MIDR   = CP15Reg{0, 0, 0, 0} // main ID
	CP15CTR    = CP15Reg{0, 0, 0, 1} // cache type
	CP15MPIDR  = CP15Reg{0, 0, 0, 5} // multiprocessor affinity
	CP15IDPFR0 = CP15Reg{0, 0, 1, 0} // processor feature 0
	CP15CCSIDR = CP15Reg{1, 0, 0, 0} // current cache size ID
	CP15CLIDR  = CP15Reg{1, 0, 0, 1} // cache level ID
	CP15ACTLR  = CP15Reg{0, 1, 0, 1} // auxiliary control (write-sensitive)
)

// String renders the register in the assembler's p15 operand order.
func (r CP15Reg) String() string {
	return fmt.Sprintf("p15,%d,c%d,c%d,%d", r.Opc1, r.CRn, r.CRm, r.Opc2)
}

// CP15 ISS field layout (EC 0x03, MCR/MRC 32-bit).
const (
	cp15Opc2Shift = 17
	cp15Opc1Shift = 14
	cp15CRnShift  = 10
	cp15RtShift   = 5
	cp15CRmShift  = 1
	cp15ReadBit   = 1 << 0 // direction: 1 = MRC (read)
)

// BuildCP15ISS encodes a trapped MCR/MRC access into an ISS value.
func BuildCP15ISS(reg CP15Reg, rt int, read bool) uint32 {
	iss := (reg.Opc2&0x7)<<cp15Opc2Shift |
		(reg.Opc1&0x7)<<cp15Opc1Shift |
		(reg.CRn&0xF)<<cp15CRnShift |
		(uint32(rt)&0xF)<<cp15RtShift |
		(reg.CRm&0xF)<<cp15CRmShift
	if read {
		iss |= cp15ReadBit
	}
	return iss
}

// DecodeCP15 parses a CP15 ISS into the register tuple, the transfer
// register and the direction.
func DecodeCP15(iss uint32) (reg CP15Reg, rt int, read bool) {
	reg = CP15Reg{
		Opc2: (iss >> cp15Opc2Shift) & 0x7,
		Opc1: (iss >> cp15Opc1Shift) & 0x7,
		CRn:  (iss >> cp15CRnShift) & 0xF,
		CRm:  (iss >> cp15CRmShift) & 0xF,
	}
	rt = int((iss >> cp15RtShift) & 0xF)
	read = iss&cp15ReadBit != 0
	return reg, rt, read
}

// CP15Value returns the architecturally correct read value of an
// emulated CP15 register for the given CPU, and whether the register is
// one the model implements. Unimplemented registers read as zero
// (RAZ), the hardening default a hypervisor applies to filtered IDs.
func CP15Value(c *CPU, reg CP15Reg) (uint32, bool) {
	switch reg {
	case CP15MIDR:
		return c.MIDR, true
	case CP15MPIDR:
		return c.MPIDR, true
	case CP15CTR:
		// Cortex-A7 CTR: 64-byte cache lines, VIPT.
		return 0x84448003, true
	case CP15IDPFR0:
		// ARM/Thumb state support.
		return 0x00001131, true
	case CP15CCSIDR:
		// 32 KiB 4-way L1D, 64-byte lines.
		return 0x700FE01A, true
	case CP15CLIDR:
		// L1 separate I/D, L2 unified.
		return 0x0A200023, true
	default:
		return 0, false
	}
}
