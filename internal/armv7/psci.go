package armv7

import "fmt"

// PSCI (Power State Coordination Interface) function identifiers, SMC32
// calling convention. Jailhouse traps guests' PSCI calls and implements
// CPU on/off itself: this is the "swap feature of the CPU hot plug" the
// paper mentions — the root cell offlines a core via PSCI CPU_OFF, the
// hypervisor reassigns it, and the new cell brings it up via CPU_ON.
const (
	PSCIVersion      uint32 = 0x84000000
	PSCICPUSuspend   uint32 = 0x84000001
	PSCICPUOff       uint32 = 0x84000002
	PSCICPUOn        uint32 = 0x84000003
	PSCIAffinityInfo uint32 = 0x84000004
	PSCISystemOff    uint32 = 0x84000008
	PSCISystemReset  uint32 = 0x84000009
	PSCIFeatures     uint32 = 0x8400000A
)

// PSCI return codes (ARM DEN 0022).
const (
	PSCIRetSuccess       int32 = 0
	PSCIRetNotSupported  int32 = -1
	PSCIRetInvalidParams int32 = -2
	PSCIRetDenied        int32 = -3
	PSCIRetAlreadyOn     int32 = -4
	PSCIRetOnPending     int32 = -5
	PSCIRetInternalFail  int32 = -6
	PSCIRetNotPresent    int32 = -7
	PSCIRetDisabled      int32 = -8
)

// PSCIVersionValue is the version this model reports: PSCI 0.2.
const PSCIVersionValue uint32 = 0x00000002

// IsPSCICall reports whether an SMC/HVC function id is in the PSCI space.
func IsPSCICall(fn uint32) bool {
	return fn >= PSCIVersion && fn <= PSCIVersion+0x1F
}

// PSCIName returns the mnemonic for a PSCI function id.
func PSCIName(fn uint32) string {
	switch fn {
	case PSCIVersion:
		return "PSCI_VERSION"
	case PSCICPUSuspend:
		return "CPU_SUSPEND"
	case PSCICPUOff:
		return "CPU_OFF"
	case PSCICPUOn:
		return "CPU_ON"
	case PSCIAffinityInfo:
		return "AFFINITY_INFO"
	case PSCISystemOff:
		return "SYSTEM_OFF"
	case PSCISystemReset:
		return "SYSTEM_RESET"
	case PSCIFeatures:
		return "PSCI_FEATURES"
	default:
		return fmt.Sprintf("PSCI(%#x)", fn)
	}
}
