package uart

import (
	"strings"
	"testing"

	"github.com/dessertlab/certify/internal/sim"
)

func fixedClock(t sim.Time) func() sim.Time {
	return func() sim.Time { return t }
}

func TestWriteStringCapturesLines(t *testing.T) {
	now := sim.Time(0)
	u := New("uart0", func() sim.Time { return now })
	u.PutString("hello\n")
	now = 5 * sim.Second
	u.PutString("world")
	if u.LineCount() != 1 {
		t.Fatalf("LineCount = %d, want 1 (second line incomplete)", u.LineCount())
	}
	u.PutByte('\n')
	lines := u.Lines()
	if len(lines) != 2 || lines[0].Text != "hello" || lines[1].Text != "world" {
		t.Fatalf("Lines = %v", lines)
	}
	if lines[0].At != 0 || lines[1].At != 5*sim.Second {
		t.Fatalf("timestamps = %v %v", lines[0].At, lines[1].At)
	}
}

func TestCarriageReturnStripped(t *testing.T) {
	u := New("uart0", fixedClock(0))
	u.PutString("abc\r\n")
	if got := u.Lines()[0].Text; got != "abc" {
		t.Fatalf("line = %q", got)
	}
}

func TestOnLineCallback(t *testing.T) {
	u := New("uart0", fixedClock(7))
	var got []Line
	u.OnLine = func(l Line) { got = append(got, l) }
	u.PutString("one\ntwo\n")
	if len(got) != 2 || got[1].Text != "two" {
		t.Fatalf("callback lines = %v", got)
	}
}

func TestMMIOTHRWrite(t *testing.T) {
	u := New("uart0", fixedClock(0))
	for _, b := range []byte("ok\n") {
		if err := u.WriteReg(RegTHR, uint32(b)); err != nil {
			t.Fatal(err)
		}
	}
	if !u.Contains("ok") {
		t.Fatal("MMIO path did not capture")
	}
}

func TestMMIORegisters(t *testing.T) {
	u := New("uart0", fixedClock(0))
	if err := u.WriteReg(RegIER, 0x5); err != nil {
		t.Fatal(err)
	}
	v, err := u.ReadReg(RegIER)
	if err != nil || v != 0x5 {
		t.Fatalf("IER = %#x, %v", v, err)
	}
	lsr, _ := u.ReadReg(RegLSR)
	if lsr&LSRTHREmpty == 0 {
		t.Fatal("LSR must report THR empty")
	}
	if v, _ := u.ReadReg(RegRBR); v != 0 {
		t.Fatalf("RBR = %#x", v)
	}
	if v, _ := u.ReadReg(0x3C); v != 0 {
		t.Fatal("unmodelled register must read 0")
	}
}

func TestLastActivityAndLinesAfter(t *testing.T) {
	now := sim.Time(0)
	u := New("uart7", func() sim.Time { return now })
	if _, ok := u.LastActivity(); ok {
		t.Fatal("fresh UART reports activity — the E2 'blank USART' check depends on this")
	}
	u.PutString("boot\n")
	now = 10 * sim.Second
	u.PutString("tick\n")
	at, ok := u.LastActivity()
	if !ok || at != 10*sim.Second {
		t.Fatalf("LastActivity = %v %v", at, ok)
	}
	after := u.LinesAfter(5 * sim.Second)
	if len(after) != 1 || after[0].Text != "tick" {
		t.Fatalf("LinesAfter = %v", after)
	}
}

func TestTranscriptAndBytes(t *testing.T) {
	u := New("uart0", fixedClock(1042*sim.Millisecond))
	u.PutString("Kernel panic - not syncing\n")
	tr := u.Transcript()
	if !strings.Contains(tr, "[    1.042]") || !strings.Contains(tr, "not syncing") {
		t.Fatalf("Transcript = %q", tr)
	}
	if string(u.Bytes()) != "Kernel panic - not syncing\n" {
		t.Fatalf("Bytes = %q", u.Bytes())
	}
}
