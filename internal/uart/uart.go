// Package uart models the 8250/16550-class serial ports of the Allwinner
// A20. The serial line is the paper's only observation channel: every
// outcome in Figure 3 was classified from what did — or did not — appear
// on the board's UARTs. The model therefore captures transmitted bytes
// with virtual timestamps so the classifier can ask questions like "did
// the non-root cell produce any output after the injection?".
package uart

import (
	"strings"

	"github.com/dessertlab/certify/internal/sim"
)

// 16550 register offsets (in 32-bit register units ×4, as the A20 maps them).
const (
	RegTHR = 0x00 // transmit holding (write)
	RegRBR = 0x00 // receive buffer (read)
	RegIER = 0x04 // interrupt enable
	RegFCR = 0x08 // FIFO control (write)
	RegLCR = 0x0C // line control
	RegLSR = 0x14 // line status
)

// LSR bits.
const (
	LSRDataReady    = 1 << 0
	LSRTHREmpty     = 1 << 5
	LSRTransmitDone = 1 << 6
)

// RegionSize is the MMIO window size of one UART.
const RegionSize = 0x400

// Line is one captured output line with the virtual time of its final byte.
type Line struct {
	At   sim.Time
	Text string
}

// UART is a functional serial port. Transmission is instantaneous (the
// experiments measure liveness, not baud rates); every byte is captured.
type UART struct {
	name    string
	now     func() sim.Time
	ier     uint32
	lcr     uint32
	txLog   []byte
	noBytes bool // when set, the raw byte log is not kept
	lines   []Line
	cur     strings.Builder

	// OnLine, when set, is called for each completed output line.
	OnLine func(Line)
}

// New returns a UART named name (e.g. "uart0"). now supplies virtual time
// for capture timestamps.
func New(name string, now func() sim.Time) *UART {
	return &UART{name: name, now: now}
}

// Name returns the device name.
func (u *UART) Name() string { return u.name }

// SetCaptureBytes toggles the raw transmitted-byte log. Line capture (the
// classifier's observation channel) is unaffected. Campaigns that only
// need outcome distributions disable byte capture to skip the copy.
func (u *UART) SetCaptureBytes(on bool) {
	u.noBytes = !on
	if !on {
		u.txLog = u.txLog[:0]
	}
}

// Reset empties the capture state while keeping the line and byte buffers
// allocated, and rebinds the clock — the machine-reuse path between
// consecutive campaign runs on one worker.
func (u *UART) Reset(name string, now func() sim.Time) {
	u.name = name
	u.now = now
	u.ier, u.lcr = 0, 0
	u.txLog = u.txLog[:0]
	for i := range u.lines {
		u.lines[i] = Line{} // release retained strings
	}
	u.lines = u.lines[:0]
	u.cur.Reset()
	u.OnLine = nil
}

// Snapshot is a deep copy of a UART's register and capture state at one
// instant. The line hook is captured as a func value: the machine's boot
// wires it to objects the snapshot belongs to, so restoring the same
// value is exact.
type Snapshot struct {
	ier     uint32
	lcr     uint32
	txLog   []byte
	noBytes bool
	lines   []Line
	cur     string
	onLine  func(Line)
}

// CaptureSnapshot deep-copies the UART state.
func (u *UART) CaptureSnapshot() *Snapshot {
	return &Snapshot{
		ier:     u.ier,
		lcr:     u.lcr,
		txLog:   append([]byte(nil), u.txLog...),
		noBytes: u.noBytes,
		lines:   append([]Line(nil), u.lines...),
		cur:     u.cur.String(),
		onLine:  u.OnLine,
	}
}

// RestoreSnapshot rewinds the UART to a captured state, reusing the live
// line/byte buffers. Lines the run appended beyond the snapshot are
// zeroed so their strings are released.
func (u *UART) RestoreSnapshot(s *Snapshot) {
	u.ier, u.lcr = s.ier, s.lcr
	u.noBytes = s.noBytes
	u.txLog = append(u.txLog[:0], s.txLog...)
	old := len(u.lines)
	u.lines = append(u.lines[:0], s.lines...)
	for i := len(u.lines); i < old; i++ {
		u.lines[:old][i] = Line{}
	}
	u.cur.Reset()
	u.cur.WriteString(s.cur)
	u.OnLine = s.onLine
}

// PutByte transmits one byte.
func (u *UART) PutByte(b byte) {
	if !u.noBytes {
		u.txLog = append(u.txLog, b)
	}
	if b == '\n' {
		line := Line{At: u.now(), Text: u.cur.String()}
		u.lines = append(u.lines, line)
		u.cur.Reset()
		if u.OnLine != nil {
			u.OnLine(line)
		}
		return
	}
	if b != '\r' {
		u.cur.WriteByte(b)
	}
}

// PutString transmits a string.
func (u *UART) PutString(s string) {
	for i := 0; i < len(s); i++ {
		u.PutByte(s[i])
	}
}

// ReadReg implements the MMIO read interface.
func (u *UART) ReadReg(offset uint64) (uint32, error) {
	switch offset {
	case RegRBR:
		return 0, nil // no receive path modelled
	case RegIER:
		return u.ier, nil
	case RegLCR:
		return u.lcr, nil
	case RegLSR:
		// Always ready to transmit: guests never need to spin.
		return LSRTHREmpty | LSRTransmitDone, nil
	default:
		return 0, nil // unmodelled registers read as zero
	}
}

// WriteReg implements the MMIO write interface.
func (u *UART) WriteReg(offset uint64, value uint32) error {
	switch offset {
	case RegTHR:
		u.PutByte(byte(value))
	case RegIER:
		u.ier = value
	case RegLCR:
		u.lcr = value
	}
	return nil
}

// Bytes returns a copy of everything transmitted so far.
func (u *UART) Bytes() []byte {
	out := make([]byte, len(u.txLog))
	copy(out, u.txLog)
	return out
}

// Lines returns a copy of all completed output lines. Debug/test
// convenience — hot paths use ScanLines to avoid the per-call copy.
func (u *UART) Lines() []Line {
	out := make([]Line, len(u.lines))
	copy(out, u.lines)
	return out
}

// ScanLines visits every completed line in order without copying the
// backing slice. Return false from fn to stop early.
func (u *UART) ScanLines(fn func(Line) bool) {
	for _, l := range u.lines {
		if !fn(l) {
			return
		}
	}
}

// ScanLinesAfter visits the completed lines with timestamps strictly
// after t, in order, without allocating. Return false from fn to stop.
func (u *UART) ScanLinesAfter(t sim.Time, fn func(Line) bool) {
	for _, l := range u.lines {
		if l.At > t && !fn(l) {
			return
		}
	}
}

// LineCount returns the number of completed lines.
func (u *UART) LineCount() int { return len(u.lines) }

// LastActivity returns the timestamp of the most recent completed line and
// whether any line has completed at all. A blank USART — the paper's E2
// signature — shows up as ok == false.
func (u *UART) LastActivity() (sim.Time, bool) {
	if len(u.lines) == 0 {
		return 0, false
	}
	return u.lines[len(u.lines)-1].At, true
}

// LinesAfter returns the completed lines with timestamps strictly after
// t. Debug/test convenience — hot paths use ScanLinesAfter.
func (u *UART) LinesAfter(t sim.Time) []Line {
	var out []Line
	for _, l := range u.lines {
		if l.At > t {
			out = append(out, l)
		}
	}
	return out
}

// Contains reports whether any completed line contains substr.
func (u *UART) Contains(substr string) bool {
	for _, l := range u.lines {
		if strings.Contains(l.Text, substr) {
			return true
		}
	}
	return false
}

// Transcript renders all completed lines, newline-separated — the "log
// file" of the paper's framework.
func (u *UART) Transcript() string {
	var b strings.Builder
	for _, l := range u.lines {
		b.WriteString(l.At.String())
		b.WriteByte(' ')
		b.WriteString(l.Text)
		b.WriteByte('\n')
	}
	return b.String()
}
