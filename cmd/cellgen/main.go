// Command cellgen builds and inspects binary cell-configuration blobs —
// the .cell files Jailhouse's CELL_CREATE hypercall consumes.
//
// Usage:
//
//	cellgen dump             # print the built-in configurations
//	cellgen emit  <file>     # write the FreeRTOS cell blob
//	cellgen parse <file>     # validate and print a blob
package main

import (
	"fmt"
	"os"

	"github.com/dessertlab/certify/internal/jailhouse"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cellgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cellgen dump | emit <file> | parse <file>")
	}
	switch args[0] {
	case "dump":
		dumpConfig("root cell (system config)", &jailhouse.DefaultSystemConfig().RootCell)
		dumpConfig("freertos-cell", jailhouse.FreeRTOSCellConfig())
		return nil
	case "emit":
		if len(args) < 2 {
			return fmt.Errorf("emit needs a target file")
		}
		blob := jailhouse.FreeRTOSCellConfig().Marshal()
		if err := os.WriteFile(args[1], blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes to %s\n", len(blob), args[1])
		return nil
	case "parse":
		if len(args) < 2 {
			return fmt.Errorf("parse needs a source file")
		}
		blob, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		cfg, err := jailhouse.UnmarshalCellConfig(blob)
		if err != nil {
			return fmt.Errorf("invalid blob: %w", err)
		}
		dumpConfig(args[1], cfg)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func dumpConfig(label string, cfg *jailhouse.CellConfig) {
	fmt.Printf("%s:\n", label)
	fmt.Printf("  name:    %s\n", cfg.Name)
	fmt.Printf("  cpus:    %v (bitmap %#x)\n", cfg.CPUs(), cfg.CPUSet)
	fmt.Printf("  console: %#x\n", cfg.ConsoleBase)
	fmt.Printf("  regions (%d):\n", len(cfg.MemRegions))
	for _, r := range cfg.MemRegions {
		fmt.Printf("    %v\n", r)
	}
	fmt.Printf("  irq lines: %v\n", cfg.IRQLines)
}
