package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDump(t *testing.T) {
	if err := run([]string{"dump"}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitParseRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "freertos.cell")
	if err := run([]string{"emit", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"parse", path}); err != nil {
		t.Fatal(err)
	}
	// A corrupted blob must be rejected.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[0] = 'X'
	bad := filepath.Join(t.TempDir(), "bad.cell")
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"parse", bad}); err == nil {
		t.Fatal("corrupted blob accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"emit"}); err == nil {
		t.Fatal("emit without file accepted")
	}
	if err := run([]string{"parse"}); err == nil {
		t.Fatal("parse without file accepted")
	}
	if err := run([]string{"parse", "/nonexistent/x.cell"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"wat"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}
