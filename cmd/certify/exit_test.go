package main

import (
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/dessertlab/certify/internal/dist"
	"github.com/dessertlab/certify/internal/serve"
)

// newLocalServer exposes a serve.Server over loopback HTTP for CLI
// round-trip tests and tears it down with the test.
func newLocalServer(t *testing.T, s *serve.Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts.URL
}

// TestExitCodeMapping pins the CLI exit-code contract documented in the
// usage text: 0 ok, 1 failure, 2 usage, 3 campaign identity mismatch —
// for local errors, wrapped sentinels, and server error classes alike.
func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"plain failure", fmt.Errorf("disk on fire"), exitFailure},
		{"usage", usagef("need -runs"), exitUsage},
		{"wrapped usage", fmt.Errorf("context: %w", usagef("need -runs")), exitUsage},
		{"campaign mismatch", dist.ErrCampaignMismatch, exitMismatch},
		{"wrapped mismatch", fmt.Errorf("shard 2: %w", dist.ErrCampaignMismatch), exitMismatch},
		{"server usage class", &serve.APIError{Status: 400, Class: serve.ClassUsage, Msg: "no plan"}, exitUsage},
		{"server mismatch class", &serve.APIError{Status: 500, Class: serve.ClassMismatch, Msg: "foreign artefact"}, exitMismatch},
		{"server internal class", &serve.APIError{Status: 500, Class: serve.ClassInternal, Msg: "boom"}, exitFailure},
		{"server not-found class", &serve.APIError{Status: 404, Class: serve.ClassNotFound, Msg: "job"}, exitFailure},
		{"wrapped server class", fmt.Errorf("submit: %w", &serve.APIError{Status: 400, Class: serve.ClassUsage}), exitUsage},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestUsageErrorsFromRun: malformed invocations surface as usage errors
// (exit 2) through the real dispatch path, not as generic failures.
func TestUsageErrorsFromRun(t *testing.T) {
	cases := [][]string{
		nil,                              // missing subcommand
		{"frobnicate"},                   // unknown subcommand
		{"campaign", "-runs", "0"},       // invalid flag value
		{"campaign", "-bogus"},           // unknown flag
		{"inject", "-plan", "missing"},   // unknown plan
		{"campaign", "-mode", "turbo"},   // unknown mode
		{"fanout", "-runs", "0"},         // fanout validation
		{"merge"},                        // merge without inputs
		{"watch", "-server", "http://x"}, // watch without a job id
	}
	for _, args := range cases {
		err := run(args)
		if err == nil {
			t.Errorf("run(%v) accepted", args)
			continue
		}
		if got := exitCode(err); got != exitUsage {
			t.Errorf("run(%v): exit %d (%v), want %d", args, got, err, exitUsage)
		}
	}
	// help exits clean even though run returns flag.ErrHelp upstream.
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help: %v", err)
	}
	if err := run([]string{"campaign", "-h"}); err != flag.ErrHelp {
		t.Fatalf("campaign -h = %v, want flag.ErrHelp", err)
	}
}

// TestMergeMismatchExitCode drives two real single-run campaigns with
// different seeds and pins that merging them exits 3: the artefacts are
// individually sound, so only the cross-campaign identity check fires.
func TestMergeMismatchExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	planfile := shortPlanFile(t)
	dir := t.TempDir()
	paths := make([]string, 2)
	for i, seed := range []string{"1", "2"} {
		paths[i] = filepath.Join(dir, "seed"+seed+".jsonl")
		if err := cmdCampaign([]string{
			"-planfile", planfile, "-runs", "1", "-seed", seed,
			"-mode", "distribution", "-out", paths[i], "-csv",
		}); err != nil {
			t.Fatalf("campaign seed %s: %v", seed, err)
		}
	}
	err := cmdMerge(append([]string{"-csv"}, paths...))
	if err == nil {
		t.Fatal("merge of two different campaigns accepted")
	}
	if got := exitCode(err); got != exitMismatch {
		t.Fatalf("merge mismatch exit = %d (%v), want %d", got, err, exitMismatch)
	}
}

// TestSubmitAgainstServer drives certify submit end to end against an
// in-process server: a successful remote campaign exits 0, a usage-class
// rejection exits 2 — the same codes local execution produces.
func TestSubmitAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	s, err := serve.New(serve.Config{
		DataDir: t.TempDir(), SkipGoldenCheck: true, WorkersPerJob: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLocalServer(t, s)
	planfile := shortPlanFile(t)

	if err := cmdSubmit([]string{
		"-server", ts, "-planfile", planfile, "-runs", "4", "-seed", "5",
	}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Second submission is a cache hit — still exit 0.
	if err := cmdSubmit([]string{
		"-server", ts, "-planfile", planfile, "-runs", "4", "-seed", "5",
	}); err != nil {
		t.Fatalf("cached submit: %v", err)
	}
	// A server-side usage rejection maps to exit 2, like a local one.
	err = cmdSubmit([]string{"-server", ts, "-plan", "no-such-plan", "-runs", "4"})
	if got := exitCode(err); got != exitUsage {
		t.Fatalf("remote unknown plan: exit %d (%v), want %d", got, err, exitUsage)
	}
	// An unreachable server is an I/O failure: exit 1.
	err = cmdSubmit([]string{"-server", "http://127.0.0.1:1", "-plan", "E3-fig3", "-runs", "4"})
	if got := exitCode(err); got != exitFailure {
		t.Fatalf("unreachable server: exit %d (%v), want %d", got, err, exitFailure)
	}
}
