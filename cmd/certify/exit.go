package main

import (
	"errors"
	"flag"
	"fmt"

	"github.com/dessertlab/certify/internal/dist"
	"github.com/dessertlab/certify/internal/serve"
)

// The CLI's documented exit codes. Scripts driving certify (CI gates,
// fan-out wrappers) branch on these instead of parsing stderr.
const (
	exitOK       = 0 // success
	exitFailure  = 1 // I/O or execution failure
	exitUsage    = 2 // operator mistake: bad flags, unknown plan, bad combination
	exitMismatch = 3 // campaign identity mismatch: foreign artefact, corrupt spec
)

// usageError marks an operator mistake, as opposed to a runtime
// failure — the distinction exit codes carry.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usage-classed error.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// asUsage reclassifies err as a usage error (nil stays nil).
func asUsage(err error) error {
	if err == nil {
		return nil
	}
	return usageError{err}
}

// parseFlags wraps FlagSet.Parse so malformed flags exit with the usage
// code. -h/--help passes through as flag.ErrHelp, which main treats as
// a clean exit after the FlagSet printed its defaults.
func parseFlags(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return usageError{err}
}

// exitCode maps an error from run() onto the exit-code contract.
// Campaign-server errors carry their class across the wire: `certify
// submit` against a server that rejects the request (usage) or refuses
// a foreign artefact (mismatch) exits exactly as the local subcommands
// would.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	var ue usageError
	if errors.As(err, &ue) {
		return exitUsage
	}
	var ae *serve.APIError
	if errors.As(err, &ae) {
		switch ae.Class {
		case serve.ClassUsage:
			return exitUsage
		case serve.ClassMismatch:
			return exitMismatch
		}
		return exitFailure
	}
	if errors.Is(err, dist.ErrCampaignMismatch) {
		return exitMismatch
	}
	return exitFailure
}
